// Command rnrsim runs one workload/input under one or more prefetcher
// configurations on the scaled Table II machine and prints the paper's
// headline metrics for each against the no-prefetch baseline.
//
// Usage:
//
//	rnrsim -workload pagerank -input urand -prefetchers rnr,nextline
//	rnrsim -workload spcg -input bbmat -scale test -window 64
//	rnrsim -prefetchers rnr,bingo,misb,droplet -j 4   # simulate 4-wide
//
// With -j > 1 the selected prefetchers simulate concurrently over a
// bounded worker pool; rows still print in the order given on the
// command line (each simulation is independent and deterministic, so
// the output is identical to a serial run). -j 1 streams rows as they
// finish, exactly as before.
//
// Observability (see DESIGN.md "Observability"):
//
//	rnrsim -workload pagerank -input amazon -prefetchers rnr \
//	       -metrics out.jsonl -trace-out trace.json -sample-interval 5000
//
// -metrics writes a cycle-sampled JSONL series (IPC, MPKI, occupancies,
// rnr.replay_distance, ...); -trace-out writes Chrome trace-event JSON —
// open it at https://ui.perfetto.dev or chrome://tracing. With several
// prefetchers the prefetcher name is inserted before the extension
// (out.rnr.jsonl). -cpuprofile/-memprofile write runtime/pprof profiles
// of the simulator itself.
//
// -obs attaches the prefetch-lifecycle flight recorder (see DESIGN.md
// "Prefetch lifecycle observability"): every prefetch is attributed to
// one outcome, latency structure lands in histograms, and RnR replay
// gets a divergence score. -json writes each run's rnrsim.v1 export
// (lifecycle and histogram sections included under -obs) — the input
// cmd/rnrreport renders into a report.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"rnrsim/internal/apps"
	"rnrsim/internal/audit"
	"rnrsim/internal/multicore"
	"rnrsim/internal/obs"
	"rnrsim/internal/rnr"
	"rnrsim/internal/sim"
	"rnrsim/internal/telemetry"
)

func main() {
	workload := flag.String("workload", "pagerank", "pagerank, hyperanf or spcg")
	input := flag.String("input", "urand", "input name (see DESIGN.md Table III)")
	scale := flag.String("scale", "bench", "input scale: test, bench or large")
	cores := flag.Int("cores", 0, "core-count override for the SPMD workload (0 = machine default)")
	corun := flag.String("corun", "",
		`multi-programmed co-run "workload.input,workload.input,...": one program per core behind a `+
			`coherent 2-bank shared LLC (overrides -workload/-input; conflicts with -cores)`)
	crosscore := flag.Bool("crosscore", false,
		"attach the cooperative cross-core LLC prefetcher (trained on LLC miss streams, issues across cores)")
	pfs := flag.String("prefetchers", "rnr,rnr-combined,nextline",
		"comma-separated prefetchers (none,nextline,stream,ghb,misb,bingo,stems,droplet,imp,rnr,rnr-combined)")
	window := flag.Uint64("window", 0, "RnR window size in lines (0 = half the L2)")
	control := flag.String("control", "window+pace", "RnR timing control: nocontrol, window, window+pace")
	iters := flag.Int("iters", 100, "iterations speedups are composed to")
	metrics := flag.String("metrics", "", "write cycle-sampled telemetry series (JSONL) to this file")
	traceOut := flag.String("trace-out", "", "write Chrome trace-event JSON (Perfetto-loadable) to this file")
	sampleInt := flag.Uint64("sample-interval", telemetry.DefaultSampleInterval,
		"cycles between telemetry samples")
	auditOn := flag.Bool("audit", false,
		"attach the correctness auditor: sweep every component's invariants periodically and fail the run on any violation")
	auditInt := flag.Uint64("audit-interval", audit.DefaultInterval, "cycles between invariant sweeps (with -audit)")
	obsOn := flag.Bool("obs", false,
		"attach the prefetch-lifecycle flight recorder: per-outcome attribution, latency histograms and RnR divergence scores (printed, and exported with -json)")
	jsonOut := flag.String("json", "",
		"write each run's rnrsim.v1 result export (JSON) to this file; with several prefetchers the name is inserted before the extension")
	cpuprofile := flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a runtime/pprof heap profile to this file")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0),
		"prefetcher simulations run in parallel (1 = stream rows as they finish)")
	coreParallel := flag.Bool("core-parallel", false,
		"run each simulated core's private domain on its own goroutine between shared-level events "+
			"(results are byte-identical to the serial engine; no-op for 1-core and coherent co-run machines)")
	coreParallelWorkers := flag.Int("core-parallel-workers", 0,
		"worker-pool bound for -core-parallel (0 = GOMAXPROCS, capped at the core count)")
	flag.Parse()

	if err := validateFlags(flagValues{
		Cores:               *cores,
		CoRun:               *corun,
		CrossCore:           *crosscore,
		CoreParallel:        *coreParallel,
		CoreParallelWorkers: *coreParallelWorkers,
		Jobs:                *jobs,
	}); err != nil {
		fatal("%v", err)
	}

	stopProf, err := telemetry.StartCPUProfile(*cpuprofile)
	if err != nil {
		fatal("%v", err)
	}
	defer stopProf()

	var sc apps.Scale
	switch *scale {
	case "test":
		sc = apps.ScaleTest
	case "bench":
		sc = apps.ScaleBench
	case "large":
		sc = apps.ScaleLarge
	default:
		fatal("unknown scale %q", *scale)
	}
	var ctl rnr.TimingControl
	switch *control {
	case "nocontrol":
		ctl = rnr.NoControl
	case "window":
		ctl = rnr.WindowControl
	case "window+pace":
		ctl = rnr.WindowPaceControl
	default:
		fatal("unknown control %q", *control)
	}

	var app *apps.App
	switch {
	case *corun != "":
		var jobSpecs []multicore.JobSpec
		for _, field := range strings.Split(*corun, ",") {
			j, err := multicore.ParseJob(strings.TrimSpace(field))
			if err != nil {
				fatal("%v", err)
			}
			jobSpecs = append(jobSpecs, j)
		}
		app, err = multicore.Compose(sc, jobSpecs)
	case *cores > 0:
		app, err = apps.BuildCores(*workload, *input, sc, *cores)
	default:
		app, err = apps.Build(*workload, *input, sc)
	}
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "built %s/%s: %d cores, %d records, %d instructions\n",
		app.Name, app.Input, app.Cores, app.Records(), app.Instructions())

	mk := func(pf sim.PrefetcherKind) sim.Config {
		// Pair the machine with the input scale: the miniature machine
		// keeps the tiny test inputs DRAM-bound, like the scaled machine
		// does for the bench inputs.
		cfg := sim.Scaled()
		if sc == apps.ScaleTest {
			cfg = sim.Test()
		}
		cfg.Prefetcher = pf
		cfg.RnRWindow = *window
		cfg.RnRControl = ctl
		if *corun != "" {
			// One core per composed program, interacting only through the
			// coherent shared LLC.
			cfg.Cores = app.Cores
			cfg.Coherence = true
			cfg.LLCBanks = 2
		} else if *cores > 0 {
			cfg.Cores = *cores
		}
		cfg.CrossCore = *crosscore
		cfg.CoreParallel = *coreParallel
		cfg.CoreParallelWorkers = *coreParallelWorkers
		if *auditOn {
			cfg.Audit = &audit.Config{Interval: *auditInt}
		}
		if *obsOn {
			cfg.Obs = &obs.Config{}
		}
		return cfg
	}
	base, err := sim.Run(mk(sim.PFNone), app)
	if err != nil {
		fatal("baseline: %v", err)
	}
	fmt.Printf("%-14s %10s %8s %8s %8s %9s %9s\n",
		"prefetcher", "cycles", "IPC", "L2MPKI", "speedup", "coverage", "accuracy")
	fmt.Printf("%-14s %10d %8.3f %8.1f %8s %9s %9s\n",
		"baseline", base.Cycles, base.IPC(), base.L2MPKI(), "1.00", "-", "-")

	var selected []sim.PrefetcherKind
	for _, name := range strings.Split(*pfs, ",") {
		pf := sim.PrefetcherKind(strings.TrimSpace(name))
		if pf == sim.PFNone || pf == "" {
			continue
		}
		selected = append(selected, pf)
	}
	multi := len(selected) > 1
	type outcome struct {
		res *sim.Result
		rec *telemetry.Recorder
		err error
	}
	results := make([]outcome, len(selected))

	// simulate runs the i-th prefetcher; each run gets its own Config and
	// Recorder, and the shared App is read-only, so runs are independent.
	simulate := func(i int) {
		cfg := mk(selected[i])
		var rec *telemetry.Recorder
		if *metrics != "" || *traceOut != "" {
			rec = telemetry.New(telemetry.Config{SampleInterval: *sampleInt})
			cfg.Telemetry = rec
		}
		r, err := sim.Run(cfg, app)
		results[i] = outcome{res: r, rec: rec, err: err}
	}

	// report prints the i-th row (and writes its telemetry files) in
	// command-line order, so -j N output is identical to -j 1.
	report := func(i int) {
		pf, o := selected[i], results[i]
		if o.err != nil {
			fatal("%s: %v", pf, o.err)
		}
		r := o.res
		fmt.Printf("%-14s %10d %8.3f %8.1f %8.2f %9.2f %9.2f\n",
			pf, r.Cycles, r.IPC(), r.L2MPKI(),
			r.ComposedSpeedup(base, *iters), r.Coverage(base), r.Accuracy())
		if pf == sim.PFRnR || pf == sim.PFRnRCombined {
			tl := r.TimelinessBreakdown()
			fmt.Printf("  rnr: recorded %d entries in %d windows, metadata %.1f KB (%.1f%% of input), "+
				"record overhead %.1f%%, timeliness on-time %.0f%% early %.0f%% late %.0f%% out-of-window %.0f%%\n",
				r.RnR.RecordedEntries, r.RnR.RecordedWindows,
				float64(r.RnR.MetadataBytes())/1024, r.StorageOverheadPct(),
				r.RecordOverheadPct(base),
				tl.OnTime*100, tl.Early*100, tl.Late*100, tl.OutOfWindow*100)
		}
		if r.Coherence != nil {
			fmt.Printf("  coherence: fills %d upgrades %d invalidations %d downgrades %d evicts %d\n",
				r.Coherence.Fills, r.Coherence.Upgrades, r.Coherence.Invalidations,
				r.Coherence.Downgrades, r.Coherence.Evicts)
		}
		if r.CrossCore != nil {
			fmt.Printf("  crosscore: trained %d lookups %d issued %d dropped %d\n",
				r.CrossCore.Trained, r.CrossCore.Lookups, r.CrossCore.Issued, r.CrossCore.Dropped)
		}
		if r.Obs != nil {
			lc := r.Obs.Lifecycle
			fmt.Printf("  obs: issued %d | timely %d late %d unused-evicted %d unused-at-end %d redundant %d | late stall shaved %d cycles\n",
				lc.Issued, lc.Timely, lc.Late, lc.UnusedEvicted, lc.UnusedAtEnd,
				lc.Redundant, lc.LateStallShaved)
			if d := lc.Divergence; d != nil {
				fmt.Printf("  obs: divergence mean %.3f max %.3f over %d replay windows\n",
					d.MeanScore, d.MaxScore, d.WindowsScored)
			}
		}
		if *jsonOut != "" {
			if err := writeResultJSON(perRunPath(*jsonOut, string(pf), multi), r); err != nil {
				fatal("%v", err)
			}
		}
		if o.rec != nil {
			if err := o.rec.WriteMetricsFile(perRunPath(*metrics, string(pf), multi)); err != nil {
				fatal("%v", err)
			}
			if err := o.rec.WriteTraceFile(perRunPath(*traceOut, string(pf), multi)); err != nil {
				fatal("%v", err)
			}
		}
	}

	if *jobs <= 1 || len(selected) <= 1 {
		for i := range selected {
			simulate(i)
			report(i)
		}
	} else {
		workers := *jobs
		if workers > len(selected) {
			workers = len(selected)
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					simulate(i)
				}
			}()
		}
		for i := range selected {
			next <- i
		}
		close(next)
		wg.Wait()
		for i := range selected {
			report(i)
		}
	}

	if err := telemetry.WriteHeapProfile(*memprofile); err != nil {
		fatal("%v", err)
	}
}

// flagValues carries the command-line values cross-flag validation
// needs, so the rules are testable without running main.
type flagValues struct {
	Cores               int
	CoRun               string
	CrossCore           bool
	CoreParallel        bool
	CoreParallelWorkers int
	Jobs                int
}

// validateFlags rejects flag misuse at parse time, naming the offending
// flag, instead of silently ignoring a value or failing deep inside
// sim.Config validation with an internal config name. The two shapes it
// exists for: a negative -cores used to be silently treated as "machine
// default" (the build switch only tested > 0), and -crosscore without a
// -corun job list only made sense by accident (the cross-core prefetcher
// trains on multiple cores' LLC miss streams; with one SPMD program the
// serving layer rejects the same combination at submission time).
func validateFlags(v flagValues) error {
	if v.Cores < 0 {
		return fmt.Errorf("-cores must be positive (got %d); omit it for the machine default", v.Cores)
	}
	if v.CoRun != "" && v.Cores > 0 {
		return fmt.Errorf("-cores conflicts with -corun (the co-run runs one core per job)")
	}
	if v.CrossCore && v.CoRun == "" && v.Cores < 2 {
		return fmt.Errorf("-crosscore needs multiple cores: give a -corun job list or -cores >= 2")
	}
	if v.CoreParallelWorkers < 0 {
		return fmt.Errorf("-core-parallel-workers must be >= 0 (got %d)", v.CoreParallelWorkers)
	}
	if v.CoreParallelWorkers > 0 && !v.CoreParallel {
		return fmt.Errorf("-core-parallel-workers is set but -core-parallel is not")
	}
	if v.Jobs < 1 {
		return fmt.Errorf("-j must be >= 1 (got %d)", v.Jobs)
	}
	return nil
}

// writeResultJSON writes one run's stamped export.
func writeResultJSON(path string, r *sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// perRunPath returns base unchanged for a single instrumented run, and
// inserts the prefetcher name before the extension ("out.rnr.jsonl")
// when several runs share one flag value.
func perRunPath(base, pf string, multi bool) string {
	if base == "" || !multi {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "." + pf + ext
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rnrsim: "+format+"\n", args...)
	os.Exit(1)
}
