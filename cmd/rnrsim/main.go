// Command rnrsim runs one workload/input under one or more prefetcher
// configurations on the scaled Table II machine and prints the paper's
// headline metrics for each against the no-prefetch baseline.
//
// Usage:
//
//	rnrsim -workload pagerank -input urand -prefetchers rnr,nextline
//	rnrsim -workload spcg -input bbmat -scale test -window 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rnrsim/internal/apps"
	"rnrsim/internal/rnr"
	"rnrsim/internal/sim"
)

func main() {
	workload := flag.String("workload", "pagerank", "pagerank, hyperanf or spcg")
	input := flag.String("input", "urand", "input name (see DESIGN.md Table III)")
	scale := flag.String("scale", "bench", "input scale: test, bench or large")
	pfs := flag.String("prefetchers", "rnr,rnr-combined,nextline",
		"comma-separated prefetchers (none,nextline,stream,ghb,misb,bingo,stems,droplet,imp,rnr,rnr-combined)")
	window := flag.Uint64("window", 0, "RnR window size in lines (0 = half the L2)")
	control := flag.String("control", "window+pace", "RnR timing control: nocontrol, window, window+pace")
	iters := flag.Int("iters", 100, "iterations speedups are composed to")
	flag.Parse()

	var sc apps.Scale
	switch *scale {
	case "test":
		sc = apps.ScaleTest
	case "bench":
		sc = apps.ScaleBench
	case "large":
		sc = apps.ScaleLarge
	default:
		fatal("unknown scale %q", *scale)
	}
	var ctl rnr.TimingControl
	switch *control {
	case "nocontrol":
		ctl = rnr.NoControl
	case "window":
		ctl = rnr.WindowControl
	case "window+pace":
		ctl = rnr.WindowPaceControl
	default:
		fatal("unknown control %q", *control)
	}

	app, err := apps.Build(*workload, *input, sc)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "built %s/%s: %d records, %d instructions\n",
		app.Name, app.Input, app.Records(), app.Instructions())

	mk := func(pf sim.PrefetcherKind) sim.Config {
		// Pair the machine with the input scale: the miniature machine
		// keeps the tiny test inputs DRAM-bound, like the scaled machine
		// does for the bench inputs.
		cfg := sim.Scaled()
		if sc == apps.ScaleTest {
			cfg = sim.Test()
		}
		cfg.Prefetcher = pf
		cfg.RnRWindow = *window
		cfg.RnRControl = ctl
		return cfg
	}
	base, err := sim.Run(mk(sim.PFNone), app)
	if err != nil {
		fatal("baseline: %v", err)
	}
	fmt.Printf("%-14s %10s %8s %8s %8s %9s %9s\n",
		"prefetcher", "cycles", "IPC", "L2MPKI", "speedup", "coverage", "accuracy")
	fmt.Printf("%-14s %10d %8.3f %8.1f %8s %9s %9s\n",
		"baseline", base.Cycles, base.IPC(), base.L2MPKI(), "1.00", "-", "-")
	for _, name := range strings.Split(*pfs, ",") {
		pf := sim.PrefetcherKind(strings.TrimSpace(name))
		if pf == sim.PFNone || pf == "" {
			continue
		}
		r, err := sim.Run(mk(pf), app)
		if err != nil {
			fatal("%s: %v", pf, err)
		}
		fmt.Printf("%-14s %10d %8.3f %8.1f %8.2f %9.2f %9.2f\n",
			pf, r.Cycles, r.IPC(), r.L2MPKI(),
			r.ComposedSpeedup(base, *iters), r.Coverage(base), r.Accuracy())
		if pf == sim.PFRnR || pf == sim.PFRnRCombined {
			tl := r.TimelinessBreakdown()
			fmt.Printf("  rnr: recorded %d entries in %d windows, metadata %.1f KB (%.1f%% of input), "+
				"record overhead %.1f%%, timeliness on-time %.0f%% early %.0f%% late %.0f%% out-of-window %.0f%%\n",
				r.RnR.RecordedEntries, r.RnR.RecordedWindows,
				float64(r.RnR.MetadataBytes())/1024, r.StorageOverheadPct(),
				r.RecordOverheadPct(base),
				tl.OnTime*100, tl.Early*100, tl.Late*100, tl.OutOfWindow*100)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rnrsim: "+format+"\n", args...)
	os.Exit(1)
}
