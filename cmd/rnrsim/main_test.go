package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins the parse-time flag rules. The first two cases
// are the silent-misuse regressions: a negative -cores used to fall
// through the `> 0` build switch and silently run the machine default,
// and -crosscore on a single-program single-core run attached a shared
// prefetcher that can never train. Both must now fail fast, naming the
// offending flag.
func TestValidateFlags(t *testing.T) {
	for _, tc := range []struct {
		name    string
		v       flagValues
		wantErr string // substring of the error; "" = must pass
	}{
		{"negative cores rejected", flagValues{Cores: -3, Jobs: 1}, "-cores"},
		{"crosscore without corun or cores", flagValues{CrossCore: true, Jobs: 1}, "-crosscore"},
		{"cores conflicts with corun", flagValues{Cores: 2, CoRun: "pagerank.urand,spcg.bbmat", Jobs: 1}, "-cores"},
		{"negative parallel workers", flagValues{CoreParallel: true, CoreParallelWorkers: -1, Jobs: 1}, "-core-parallel-workers"},
		{"workers without core-parallel", flagValues{CoreParallelWorkers: 2, Jobs: 1}, "-core-parallel"},
		{"zero jobs", flagValues{Jobs: 0}, "-j"},

		{"defaults pass", flagValues{Jobs: 1}, ""},
		{"cores pass", flagValues{Cores: 4, Jobs: 8}, ""},
		{"crosscore with corun", flagValues{CoRun: "pagerank.urand,spcg.bbmat", CrossCore: true, Jobs: 1}, ""},
		{"crosscore with cores", flagValues{Cores: 2, CrossCore: true, Jobs: 1}, ""},
		{"core-parallel pass", flagValues{Cores: 4, CoreParallel: true, CoreParallelWorkers: 2, Jobs: 1}, ""},
	} {
		err := validateFlags(tc.v)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted %+v", tc.name, tc.v)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.wantErr)
		}
	}
}
