// Command fuzztrace drives the seeded trace fuzzer (internal/audit)
// against the simulator with the invariant checker enabled: randomized
// marker/load interleavings, including pathological shapes real
// workloads never emit, run on the miniature test machine under every
// selected prefetcher, every K cycles swept for invariant violations.
//
// Usage:
//
//	fuzztrace                         # 64 seeds from 1, pathological on
//	fuzztrace -seeds 512 -start 1000  # a bigger sweep
//	fuzztrace -fuzz-seed 42 -v        # reproduce one seed, print stats
//	fuzztrace -prefetchers rnr -pathological=false
//	fuzztrace -force-cycle-stepped    # same sweep on the legacy engine
//	fuzztrace -core-parallel          # same sweep on the parallel engine
//
// Every failure prints the seed, the prefetcher, and each retained
// violation (cycle, component, law), so a red sweep reproduces with
// -fuzz-seed alone. The exit status is the number of failing runs
// (capped at 125).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rnrsim/internal/audit"
	"rnrsim/internal/obs"
	"rnrsim/internal/sim"
)

func main() {
	seeds := flag.Int("seeds", 64, "number of consecutive seeds to sweep")
	start := flag.Int64("start", 1, "first seed of the sweep")
	one := flag.Int64("fuzz-seed", 0, "run exactly this seed (overrides -seeds/-start)")
	pfs := flag.String("prefetchers", "none,nextline,stream,rnr,rnr-combined",
		"comma-separated prefetchers to fuzz under")
	patho := flag.Bool("pathological", true,
		"emit pathological marker shapes (nested/unmatched markers, zero-length iterations, huge IterEnd aux)")
	cores := flag.Int("cores", 2, "SPMD cores per fuzzed workload")
	iters := flag.Int("iterations", 4, "kernel iterations per fuzzed workload")
	loads := flag.Int("loads", 96, "approximate loads per iteration per core")
	seqCap := flag.Uint64("seq-cap", 64, "sequence-table capacity in entries (small forces mid-window overflow)")
	interval := flag.Uint64("audit-interval", 64, "cycles between invariant sweeps")
	maxCycles := flag.Uint64("max-cycles", 5_000_000, "abort a wedged interleaving after this many cycles")
	forceStepped := flag.Bool("force-cycle-stepped", false,
		"drive the sweep with the legacy cycle-stepped engine instead of the event-driven scheduler (differential debugging: a hash that changes with this flag is a wakeup bug)")
	coreParallel := flag.Bool("core-parallel", false,
		"run each core's private domain on its own goroutine between shared-level events (differential debugging: a hash that changes with this flag is a domain-span bug)")
	coherent := flag.Bool("coherence", false,
		"attach the MESI-lite coherence directory so its invariants (single owner, sharer masks, no stale hits) are fuzzed too — the fuzzer's shared store targets are the directory's worst case")
	llcBanks := flag.Int("llc-banks", 0, "split the shared LLC into this many banks (power of two; 0 = monolithic)")
	crossCore := flag.Bool("crosscore", false,
		"attach the cooperative cross-core LLC prefetcher so its table state is folded into the fuzzed hash")
	obsOn := flag.Bool("obs", false,
		"attach the prefetch-lifecycle flight recorder so its conservation law is fuzzed alongside the architectural invariants")
	verbose := flag.Bool("v", false, "print one line per run instead of a final summary")
	flag.Parse()

	var kinds []sim.PrefetcherKind
	for _, name := range strings.Split(*pfs, ",") {
		if name = strings.TrimSpace(name); name != "" {
			kinds = append(kinds, sim.PrefetcherKind(name))
		}
	}

	first, n := *start, *seeds
	if *one != 0 {
		first, n = *one, 1
	}

	runs, failures := 0, 0
	for s := int64(0); s < int64(n); s++ {
		seed := first + s
		fc := audit.FuzzConfig{
			Seed: seed, Cores: *cores, Iterations: *iters,
			Loads: *loads, SeqCap: *seqCap, Pathological: *patho,
		}.WithDefaults()
		app := audit.Fuzz(fc)
		for _, pf := range kinds {
			runs++
			cfg := sim.Test()
			cfg.Cores = fc.Cores
			cfg.Prefetcher = pf
			cfg.Audit = &audit.Config{Interval: *interval}
			cfg.MaxCycles = *maxCycles
			cfg.ForceCycleStepped = *forceStepped
			cfg.CoreParallel = *coreParallel
			cfg.Coherence = *coherent
			cfg.LLCBanks = *llcBanks
			cfg.CrossCore = *crossCore
			if *obsOn {
				cfg.Obs = &obs.Config{}
			}
			sys, err := sim.New(cfg, app)
			if err != nil {
				fmt.Fprintf(os.Stderr, "seed %d %s: %v\n", seed, pf, err)
				failures++
				continue
			}
			r, err := sys.RunAll()
			if err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "FAIL seed %d %s: %v\n", seed, pf, err)
				for _, v := range sys.Audit().Violations() {
					fmt.Fprintf(os.Stderr, "  %s\n", v)
				}
				if d := sys.Audit().Dropped(); d > 0 {
					fmt.Fprintf(os.Stderr, "  (+%d violations dropped)\n", d)
				}
				continue
			}
			if *verbose {
				fmt.Printf("ok   seed %d %-12s %8d cycles  %6d sweeps  hash %016x\n",
					seed, pf, r.Cycles, sys.Audit().Checks(), r.StateHash)
			}
		}
	}

	fmt.Printf("fuzztrace: %d runs (%d seeds x %d prefetchers), %d failures\n",
		runs, n, len(kinds), failures)
	if failures > 125 {
		failures = 125 // keep the exit status meaningful
	}
	os.Exit(failures)
}
