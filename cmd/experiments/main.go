// Command experiments regenerates the paper's evaluation: every table and
// figure of §VI-§VII, as text tables on stdout and optionally as a
// markdown report.
//
// Usage:
//
//	experiments [-scale test|bench|large] [-only fig6,fig8] [-md out.md]
//	experiments -j 8                  # prewarm runs over 8 workers
//	experiments -only fig6 -json results.json
//	experiments -only fig10 -metrics series.jsonl -trace-out trace.json
//
// Expect the full bench-scale suite to take tens of minutes on a laptop:
// it simulates every workload x input x prefetcher combination. -j N
// plans the selected experiments' runs up front and executes them over
// N workers before the (serial, all-cache-hit) table assembly; the
// printed tables are byte-identical to -j 1 because the plan only
// changes when runs happen, never which results feed which cells.
//
// -json writes every simulated run's counters and derived metrics as a
// machine-readable array next to the text tables. -metrics/-trace-out
// instrument every fresh run and write one file per run, with the run
// key inserted before the extension (series.pagerank_urand_rnr.jsonl);
// prefer combining them with -only to bound the file count.
// -cpuprofile/-memprofile profile the simulator itself via runtime/pprof.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"rnrsim/internal/apps"
	"rnrsim/internal/audit"
	"rnrsim/internal/bench"
	"rnrsim/internal/telemetry"
)

func main() {
	scale := flag.String("scale", "bench", "input scale: test, bench or large")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	md := flag.String("md", "", "also write a markdown report to this file")
	iters := flag.Int("iters", 100, "iterations speedups are composed to")
	jsonOut := flag.String("json", "", "write all run results as JSON to this file")
	metrics := flag.String("metrics", "", "per-run telemetry series (JSONL); run key inserted before the extension")
	traceOut := flag.String("trace-out", "", "per-run Chrome trace JSON; run key inserted before the extension")
	sampleInt := flag.Uint64("sample-interval", telemetry.DefaultSampleInterval,
		"cycles between telemetry samples")
	auditOn := flag.Bool("audit", false,
		"attach the correctness auditor to every run: periodic invariant sweeps, any violation fails the run")
	auditInt := flag.Uint64("audit-interval", audit.DefaultInterval, "cycles between invariant sweeps (with -audit)")
	cpuprofile := flag.String("cpuprofile", "", "write a runtime/pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a runtime/pprof heap profile to this file")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0),
		"simulations run in parallel (1 = fully serial, identical to the pre-planner path)")
	flag.Parse()

	stopProf, err := telemetry.StartCPUProfile(*cpuprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	var sc apps.Scale
	switch *scale {
	case "test":
		sc = apps.ScaleTest
	case "bench":
		sc = apps.ScaleBench
	case "large":
		sc = apps.ScaleLarge
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	suite := bench.NewSuite(sc)
	suite.ComposeIters = *iters
	suite.Parallelism = *jobs
	if *auditOn {
		suite.Config.Audit = &audit.Config{Interval: *auditInt}
	}
	start := time.Now()

	// Progress is invoked from worker goroutines once -j > 1; serialize
	// the writes and count completions against the planned total so the
	// interleaved output stays legible ("[ 12/57] ... 1.3s").
	var (
		progMu    sync.Mutex
		runsDone  int
		runsTotal int // set once the plan is known; grows if exceeded
	)
	suite.Progress = func(key string) {
		progMu.Lock()
		fmt.Fprintf(os.Stderr, "[%7.1fs] simulating %s\n", time.Since(start).Seconds(), key)
		progMu.Unlock()
	}
	suite.OnRunDone = func(key string, elapsed time.Duration) {
		progMu.Lock()
		runsDone++
		if runsDone > runsTotal {
			runsTotal = runsDone
		}
		fmt.Fprintf(os.Stderr, "[%3d/%3d] done %-45s %6.1fs\n",
			runsDone, runsTotal, key, elapsed.Seconds())
		progMu.Unlock()
	}
	if *metrics != "" || *traceOut != "" {
		suite.Instrument = func(string) *telemetry.Recorder {
			return telemetry.New(telemetry.Config{SampleInterval: *sampleInt})
		}
		suite.OnInstrumented = func(key string, rec *telemetry.Recorder) {
			if err := rec.WriteMetricsFile(keyedPath(*metrics, key)); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			}
			if err := rec.WriteTraceFile(keyedPath(*traceOut, key)); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			}
		}
	}

	selected := bench.ExperimentIDs
	if *only != "" {
		selected = nil
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if _, ok := suite.Runner(id); !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (have %s)\n",
					id, strings.Join(bench.ExperimentIDs, ", "))
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}

	// With -j > 1, enumerate the selected experiments' runs up front and
	// execute them over the worker pool; the serial table assembly below
	// is then entirely memoisation hits. With -j 1 the plan is only used
	// for the progress denominator and the runs happen lazily, exactly as
	// the serial path always did.
	plan := suite.Plan(selected...)
	progMu.Lock()
	runsTotal = len(plan)
	progMu.Unlock()
	if *jobs > 1 && len(plan) > 0 {
		fmt.Fprintf(os.Stderr, "planned %d runs for %d experiment(s), prewarming over %d workers\n",
			len(plan), len(selected), *jobs)
		suite.Prewarm(plan)
	}

	var tables []*bench.Table
	for _, id := range selected {
		run, _ := suite.Runner(id)
		t := run()
		tables = append(tables, t)
		fmt.Println(t.Format())
	}

	if *jsonOut != "" {
		if err := suite.WriteResultsFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	if *md != "" {
		var b strings.Builder
		fmt.Fprintf(&b, "# RnR reproduction — experiment results\n\n")
		fmt.Fprintf(&b, "Scale: %s; speedups composed to %d iterations; generated by cmd/experiments.\n\n", *scale, *iters)
		for _, t := range tables {
			b.WriteString(t.Markdown())
		}
		if err := os.WriteFile(*md, []byte(b.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *md)
	}
	if err := telemetry.WriteHeapProfile(*memprofile); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %.1fs\n", time.Since(start).Seconds())
}

// keyedPath inserts a filesystem-safe form of the run key before the
// path's extension: keyedPath("out.jsonl", "pagerank/urand/rnr/") is
// "out.pagerank_urand_rnr.jsonl". Empty base stays empty (disabled).
func keyedPath(base, key string) string {
	if base == "" {
		return ""
	}
	safe := strings.Trim(strings.NewReplacer("/", "_", " ", "_", "+", "_").Replace(key), "_")
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "." + safe + ext
}
