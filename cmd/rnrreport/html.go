package main

import (
	"fmt"
	"html/template"
	"io"
)

// renderHTML writes the report as a single self-contained HTML page:
// inline CSS, no scripts, no external fetches — the file survives being
// mailed around or attached to a CI run long after the build is gone.
func renderHTML(w io.Writer, rep report) error {
	return htmlTmpl.Execute(w, rep)
}

var htmlTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"pct":   func(f float64) float64 { return f * 100 },
	"uint":  formatUint,
	"f3":    func(f float64) string { return fmt.Sprintf("%.3f", f) },
	"f1":    func(f float64) string { return fmt.Sprintf("%.1f", f) },
	"multi": func(rep report) bool { return len(rep.Runs) > 1 },
}).Parse(htmlPage))

const htmlPage = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #1a1a1a; padding: 0 1rem; }
  h1 { font-size: 1.5rem; border-bottom: 2px solid #ddd; padding-bottom: .4rem; }
  h2 { font-size: 1.2rem; margin-top: 2rem; }
  h3 { font-size: 1rem; margin-top: 1.5rem; }
  table { border-collapse: collapse; margin: .6rem 0 1rem; }
  th, td { border: 1px solid #ddd; padding: .25rem .6rem; text-align: right; }
  th:first-child, td:first-child { text-align: left; }
  th { background: #f5f5f5; }
  .meta { color: #666; font-size: .85rem; }
  .meta code { background: #f2f2f2; padding: 0 .3em; border-radius: 3px; }
  .bar { display: inline-block; height: .75em; background: #4a7db5; vertical-align: baseline; }
  .barcell { text-align: left; min-width: 10rem; border-left: none; }
  .note { color: #666; font-style: italic; }
  .speedup { font-size: 1.1rem; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
{{with .Compare}}
<h2>A/B: {{.LabelA}} &rarr; {{.LabelB}}</h2>
<p class="speedup">Speedup (A cycles / B cycles): <strong>{{f3 .Speedup}}&times;</strong></p>
<table>
<tr><th>metric</th><th>A</th><th>B</th><th>&Delta; B vs A</th></tr>
{{range .Rows}}<tr><td>{{.Metric}}</td><td>{{.A}}</td><td>{{.B}}</td><td>{{.Delta}}</td></tr>
{{end}}</table>
{{end}}
{{$rep := .}}
{{range .Runs}}
<h2>{{if multi $rep}}Run: {{end}}{{.Label}}</h2>
<p class="meta">{{range $i, $m := .Meta}}{{if $i}} &middot; {{end}}{{$m.K}} <code>{{$m.V}}</code>{{end}}</p>
<table>
<tr><th>metric</th><th>value</th></tr>
{{range .Metrics}}<tr><td>{{.K}}</td><td>{{.V}}</td></tr>
{{end}}</table>
{{if .Lifecycle}}
<h3>Prefetch lifecycle</h3>
<table>
<tr><th>outcome</th><th>count</th><th>share</th><th class="barcell"></th></tr>
{{range .Lifecycle}}<tr><td>{{.Name}}</td><td>{{uint .Count}}</td><td>{{f1 (pct .Share)}}%</td><td class="barcell"><span class="bar" style="width:{{f1 (pct .Share)}}%"></span></td></tr>
{{end}}</table>
<p>Late prefetches still shaved <strong>{{uint .LateShaved}}</strong> stall cycles off their demands.</p>
{{range .Histograms}}
<h3>Histogram: {{.Name}}</h3>
<p class="meta">{{uint .Count}} samples, mean {{f1 .Mean}}</p>
<table>
<tr><th>range</th><th>count</th><th class="barcell"></th></tr>
{{range .Rows}}<tr><td>{{.Range}}</td><td>{{uint .Count}}</td><td class="barcell"><span class="bar" style="width:{{f1 (pct .Frac)}}%"></span></td></tr>
{{end}}</table>
{{end}}
{{if .Iterations}}
<h3>Per-iteration outcomes</h3>
<table>
<tr><th>iter</th><th>end cycle</th><th>issued</th><th>timely</th><th>late</th><th>unused-evicted</th><th>redundant</th></tr>
{{range .Iterations}}<tr><td>{{.Iter}}</td><td>{{uint .EndCycle}}</td><td>{{uint .Issued}}</td><td>{{uint .Timely}}</td><td>{{uint .Late}}</td><td>{{uint .UnusedEvicted}}</td><td>{{uint .Redundant}}</td></tr>
{{end}}</table>
{{end}}
{{with .Divergence}}
<h3>Replay divergence</h3>
<p>Mean score <strong>{{f3 .Mean}}</strong>, max <strong>{{f3 .Max}}</strong> over {{uint .Windows}} replay windows
(0 = every miss explained by the recording, 1 = full drift).</p>
{{if .Worst}}
<table>
<tr><th>core</th><th>window</th><th>predicted</th><th>observed</th><th>unexplained</th><th>score</th></tr>
{{range .Worst}}<tr><td>{{.Core}}</td><td>{{.Window}}</td><td>{{.Predicted}}</td><td>{{.Observed}}</td><td>{{.EditDistance}}</td><td>{{f3 .Score}}</td></tr>
{{end}}</table>
{{end}}
{{end}}
{{else}}
<p class="note">No lifecycle section: the run was made without -obs.</p>
{{end}}
{{end}}
</body>
</html>
`
