package main

import (
	"strings"
	"testing"

	"rnrsim/internal/obs"
	"rnrsim/internal/sim"
	"rnrsim/internal/telemetry"
)

func sampleRun(pf string, cycles uint64) sim.ResultJSON {
	return sim.ResultJSON{
		SchemaVersion: sim.ExportSchemaVersion,
		GeneratedAt:   "2026-08-08T00:00:00Z",
		Config:        "test",
		Prefetcher:    pf,
		App:           "pagerank",
		Input:         "urand",
		Cycles:        cycles,
		Instructions:  500000,
		Iterations:    4,
		IPC:           0.8,
		L2MPKI:        12.5,
		Accuracy:      0.9,
		StateHash:     "00000000deadbeef",
		Lifecycle: &obs.LifecycleJSON{
			Issued: 100, Timely: 70, Late: 20, UnusedEvicted: 5,
			UnusedAtEnd: 1, Redundant: 4, LateStallShaved: 1234,
			Iterations: []obs.IterOutcomesJSON{
				{Iter: 1, EndCycle: 1000, Issued: 40, Timely: 30, Late: 10},
				{Iter: 2, EndCycle: 2000, Issued: 60, Timely: 40, Late: 10},
			},
			Divergence: &obs.DivergenceJSON{
				WindowsScored: 3, MeanScore: 0.1, MaxScore: 0.25,
				Windows: []obs.WindowScoreJSON{
					{Core: 0, Window: 0, Predicted: 8, Observed: 4, EditDistance: 1, Score: 0.25},
					{Core: 0, Window: 1, Predicted: 8, Observed: 2},
					{Core: 1, Window: 0, Predicted: 8, Observed: 5, EditDistance: 0, Score: 0.05},
				},
			},
		},
		Histograms: map[string]telemetry.HistogramJSON{
			"fill_latency_cycles": {
				Count: 4, Sum: 1004,
				Buckets: []telemetry.HistogramBucketJSON{
					{UpperBound: "0", Count: 1},
					{UpperBound: "1", Count: 1},
					{UpperBound: "3", Count: 1},
					{UpperBound: "1023", Count: 1},
				},
			},
		},
	}
}

func TestMarkdownSingleRun(t *testing.T) {
	rep := buildReport("", []sim.ResultJSON{sampleRun("rnr", 100000)})
	md := renderMarkdown(rep)
	for _, want := range []string{
		"# rnrsim run report: rnr pagerank/urand",
		"| cycles | 100,000 |",
		"### Prefetch lifecycle",
		"| timely | 70 | 70.0% |",
		"**1,234** stall cycles",
		"### Histogram: fill_latency_cycles",
		"| 512–1023 | 1 |",
		"### Per-iteration outcomes",
		"### Replay divergence",
		"**0.100**",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q\n%s", want, md)
		}
	}
	if strings.Contains(md, "A/B") {
		t.Error("single-run report grew an A/B section")
	}
}

func TestMarkdownABPair(t *testing.T) {
	a := sampleRun("nextline", 120000)
	b := sampleRun("rnr", 100000)
	rep := buildReport("", []sim.ResultJSON{a, b})
	md := renderMarkdown(rep)
	for _, want := range []string{
		"## A/B: nextline pagerank/urand → rnr pagerank/urand",
		"**1.200×**",
		"| cycles | 120,000 | 100,000 | -16.67% |",
		"## Run: nextline pagerank/urand",
		"## Run: rnr pagerank/urand",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("A/B markdown missing %q\n%s", want, md)
		}
	}
}

func TestMarkdownWithoutObs(t *testing.T) {
	r := sampleRun("stream", 100000)
	r.Lifecycle = nil
	r.Histograms = nil
	md := renderMarkdown(buildReport("", []sim.ResultJSON{r}))
	if !strings.Contains(md, "without `-obs`") {
		t.Errorf("obs-less report should say the sections are absent:\n%s", md)
	}
	if strings.Contains(md, "### Prefetch lifecycle") {
		t.Error("obs-less report rendered a lifecycle section")
	}
}

func TestHTMLSelfContained(t *testing.T) {
	rep := buildReport("my title", []sim.ResultJSON{
		sampleRun("nextline", 120000), sampleRun("rnr", 100000)})
	var b strings.Builder
	if err := renderHTML(&b, rep); err != nil {
		t.Fatal(err)
	}
	html := b.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<title>my title</title>",
		"Prefetch lifecycle",
		"fill_latency_cycles",
		"Replay divergence",
		"class=\"bar\"",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("html missing %q", want)
		}
	}
	for _, banned := range []string{"<script", "http://", "https://"} {
		if strings.Contains(html, banned) {
			t.Errorf("html is not self-contained: found %q", banned)
		}
	}
}

func TestBucketRange(t *testing.T) {
	cases := map[string]string{
		"0":    "0",
		"1":    "1",
		"3":    "2–3",
		"7":    "4–7",
		"1023": "512–1023",
		"+Inf": "≥ 2^63",
	}
	for le, want := range cases {
		if got := bucketRange(le); got != want {
			t.Errorf("bucketRange(%q) = %q, want %q", le, got, want)
		}
	}
}

func TestDeltaPct(t *testing.T) {
	cases := []struct {
		a, b float64
		want string
	}{
		{100, 100, "0.00%"},
		{100, 110, "+10.00%"},
		{100, 90, "-10.00%"},
		{0, 0, "—"},
		{0, 5, "n/a"},
	}
	for _, c := range cases {
		if got := deltaPct(c.a, c.b); got != c.want {
			t.Errorf("deltaPct(%v, %v) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

func TestFormatUint(t *testing.T) {
	cases := map[uint64]string{
		0: "0", 999: "999", 1000: "1,000", 37212: "37,212", 1234567: "1,234,567",
	}
	for v, want := range cases {
		if got := formatUint(v); got != want {
			t.Errorf("formatUint(%d) = %q, want %q", v, got, want)
		}
	}
}
