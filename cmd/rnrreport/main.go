// Command rnrreport renders one or two rnrsim.v1 result exports into a
// self-contained report: headline metrics, the prefetch-lifecycle
// outcome breakdown, latency histograms, per-iteration trajectories and
// RnR replay-divergence scores. Exports come from `rnrsim -json` (add
// `-obs` for the lifecycle sections) or from rnrd's result payloads.
//
// Usage:
//
//	rnrreport run.json                      # markdown to stdout
//	rnrreport -o report.md run.json
//	rnrreport -html -o report.html run.json # single-file HTML, no scripts
//	rnrreport -title "rnr vs nextline" a.json b.json
//
// With two inputs the report opens with an A/B table (speedup, metric
// deltas, lifecycle deltas) and then details each run. The HTML output
// inlines all styling, so the file can be archived as a CI artifact and
// opened anywhere.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rnrsim/internal/sim"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	html := flag.Bool("html", false, "render a self-contained HTML page instead of markdown")
	title := flag.String("title", "", "report title (default derived from the runs)")
	flag.Parse()

	paths := flag.Args()
	if len(paths) < 1 || len(paths) > 2 {
		fmt.Fprintln(os.Stderr, "usage: rnrreport [-o out] [-html] [-title t] run.json [b.json]")
		os.Exit(2)
	}

	runs := make([]sim.ResultJSON, 0, len(paths))
	for _, p := range paths {
		r, err := loadResult(p)
		if err != nil {
			fatal("%v", err)
		}
		runs = append(runs, r)
	}

	rep := buildReport(*title, runs)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal("%v", err)
			}
		}()
		w = f
	}
	if *html {
		if err := renderHTML(w, rep); err != nil {
			fatal("render: %v", err)
		}
		return
	}
	if _, err := w.WriteString(renderMarkdown(rep)); err != nil {
		fatal("write: %v", err)
	}
}

// loadResult reads and validates one export. An unknown schema version
// is an error, not a guess: the envelope exists precisely so stale
// artefacts fail loudly instead of rendering wrong numbers.
func loadResult(path string) (sim.ResultJSON, error) {
	var r sim.ResultJSON
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	if r.SchemaVersion != sim.ExportSchemaVersion {
		return r, fmt.Errorf("%s: schema %q, want %q (re-export with this build's rnrsim)",
			path, r.SchemaVersion, sim.ExportSchemaVersion)
	}
	return r, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rnrreport: "+format+"\n", args...)
	os.Exit(1)
}
