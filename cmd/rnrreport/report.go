package main

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"rnrsim/internal/obs"
	"rnrsim/internal/sim"
	"rnrsim/internal/telemetry"
)

// report is the renderer-neutral view of one or two runs: both the
// markdown and the HTML backends walk this, so the two outputs can
// never drift apart in content.
type report struct {
	Title     string
	Generated string
	Runs      []runView
	Compare   *compareView // nil for a single-run report
}

type runView struct {
	Label      string
	Meta       []kv
	Metrics    []kv
	Lifecycle  []outcomeRow // empty when the run had no -obs
	LateShaved uint64
	Histograms []histView
	Iterations []obs.IterOutcomesJSON
	Divergence *divView
}

type kv struct{ K, V string }

type outcomeRow struct {
	Name  string
	Count uint64
	Share float64 // of issued
}

type histView struct {
	Name  string
	Count uint64
	Mean  float64
	Rows  []histRow
}

type histRow struct {
	Range string
	Count uint64
	Frac  float64 // of the histogram's total count
}

type divView struct {
	Mean, Max float64
	Windows   uint64
	Worst     []obs.WindowScoreJSON
}

type compareView struct {
	LabelA, LabelB string
	Rows           []cmpRow
	Speedup        float64 // A cycles / B cycles
}

type cmpRow struct{ Metric, A, B, Delta string }

// maxWorstWindows bounds the "worst divergence windows" table.
const maxWorstWindows = 5

func buildReport(title string, runs []sim.ResultJSON) report {
	rep := report{Title: title}
	if title == "" {
		if len(runs) == 2 {
			rep.Title = fmt.Sprintf("rnrsim A/B report: %s vs %s",
				runLabel(runs[0]), runLabel(runs[1]))
		} else {
			rep.Title = "rnrsim run report: " + runLabel(runs[0])
		}
	}
	if len(runs) > 0 {
		rep.Generated = runs[0].GeneratedAt
	}
	for _, r := range runs {
		rep.Runs = append(rep.Runs, buildRunView(r))
	}
	if len(runs) == 2 {
		rep.Compare = buildCompare(runs[0], runs[1])
	}
	return rep
}

func runLabel(r sim.ResultJSON) string {
	return fmt.Sprintf("%s %s/%s", r.Prefetcher, r.App, r.Input)
}

func buildRunView(r sim.ResultJSON) runView {
	v := runView{
		Label: runLabel(r),
		Meta: []kv{
			{"schema", r.SchemaVersion},
			{"generated", r.GeneratedAt},
			{"config", r.Config},
			{"state hash", r.StateHash},
		},
		Metrics: []kv{
			{"cycles", formatUint(r.Cycles)},
			{"instructions", formatUint(r.Instructions)},
			{"IPC", fmt.Sprintf("%.3f", r.IPC)},
			{"L2 MPKI", fmt.Sprintf("%.1f", r.L2MPKI)},
			{"prefetch accuracy", fmt.Sprintf("%.2f", r.Accuracy)},
			{"iterations", strconv.Itoa(r.Iterations)},
			{"timeliness on-time/early/late/OoW", fmt.Sprintf("%.0f%% / %.0f%% / %.0f%% / %.0f%%",
				r.Timeliness.OnTime*100, r.Timeliness.Early*100,
				r.Timeliness.Late*100, r.Timeliness.OutOfWindow*100)},
		},
	}
	lc := r.Lifecycle
	if lc == nil {
		return v
	}
	issued := lc.Issued
	share := func(n uint64) float64 {
		if issued == 0 {
			return 0
		}
		return float64(n) / float64(issued)
	}
	v.Lifecycle = []outcomeRow{
		{"timely", lc.Timely, share(lc.Timely)},
		{"late", lc.Late, share(lc.Late)},
		{"unused-evicted", lc.UnusedEvicted, share(lc.UnusedEvicted)},
		{"unused-at-end", lc.UnusedAtEnd, share(lc.UnusedAtEnd)},
		{"redundant", lc.Redundant, share(lc.Redundant)},
	}
	v.LateShaved = lc.LateStallShaved
	v.Iterations = lc.Iterations
	if d := lc.Divergence; d != nil {
		dv := &divView{Mean: d.MeanScore, Max: d.MaxScore, Windows: d.WindowsScored}
		worst := append([]obs.WindowScoreJSON(nil), d.Windows...)
		sort.SliceStable(worst, func(i, j int) bool { return worst[i].Score > worst[j].Score })
		if len(worst) > maxWorstWindows {
			worst = worst[:maxWorstWindows]
		}
		dv.Worst = worst
		v.Divergence = dv
	}
	for _, name := range sortedKeys(r.Histograms) {
		v.Histograms = append(v.Histograms, buildHistView(name, r.Histograms[name]))
	}
	return v
}

func sortedKeys(m map[string]telemetry.HistogramJSON) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func buildHistView(name string, h telemetry.HistogramJSON) histView {
	v := histView{Name: name, Count: h.Count}
	if h.Count > 0 {
		v.Mean = float64(h.Sum) / float64(h.Count)
	}
	for _, b := range h.Buckets {
		frac := 0.0
		if h.Count > 0 {
			frac = float64(b.Count) / float64(h.Count)
		}
		v.Rows = append(v.Rows, histRow{
			Range: bucketRange(b.UpperBound),
			Count: b.Count,
			Frac:  frac,
		})
	}
	return v
}

// bucketRange renders a bucket's value range from its inclusive upper
// bound: exponential base-2 buckets cover [2^(i-1), 2^i-1], so the
// lower bound recovers as (le+1)/2.
func bucketRange(le string) string {
	if le == "+Inf" {
		return "≥ 2^63"
	}
	hi, err := strconv.ParseUint(le, 10, 64)
	if err != nil {
		return le
	}
	if hi <= 1 {
		return le
	}
	lo := (hi + 1) / 2
	return fmt.Sprintf("%d–%d", lo, hi)
}

func buildCompare(a, b sim.ResultJSON) *compareView {
	c := &compareView{LabelA: runLabel(a), LabelB: runLabel(b)}
	if b.Cycles > 0 {
		c.Speedup = float64(a.Cycles) / float64(b.Cycles)
	}
	addU := func(name string, va, vb uint64) {
		c.Rows = append(c.Rows, cmpRow{name, formatUint(va), formatUint(vb), deltaPct(float64(va), float64(vb))})
	}
	addF := func(name, format string, va, vb float64) {
		c.Rows = append(c.Rows, cmpRow{name, fmt.Sprintf(format, va), fmt.Sprintf(format, vb), deltaPct(va, vb)})
	}
	addU("cycles", a.Cycles, b.Cycles)
	addF("IPC", "%.3f", a.IPC, b.IPC)
	addF("L2 MPKI", "%.1f", a.L2MPKI, b.L2MPKI)
	addF("accuracy", "%.2f", a.Accuracy, b.Accuracy)
	if a.Lifecycle != nil && b.Lifecycle != nil {
		la, lb := a.Lifecycle, b.Lifecycle
		addU("prefetches issued", la.Issued, lb.Issued)
		addU("timely", la.Timely, lb.Timely)
		addU("late", la.Late, lb.Late)
		addU("unused-evicted", la.UnusedEvicted, lb.UnusedEvicted)
		addU("redundant", la.Redundant, lb.Redundant)
		addU("late stall shaved", la.LateStallShaved, lb.LateStallShaved)
		if la.Divergence != nil && lb.Divergence != nil {
			addF("divergence mean", "%.3f", la.Divergence.MeanScore, lb.Divergence.MeanScore)
		}
	}
	return c
}

func deltaPct(a, b float64) string {
	if a == 0 {
		if b == 0 {
			return "—"
		}
		return "n/a"
	}
	d := (b - a) / a * 100
	if math.Abs(d) < 0.005 {
		return "0.00%"
	}
	return fmt.Sprintf("%+.2f%%", d)
}

// formatUint groups digits ("37212" → "37,212") — report numbers run
// into the millions of cycles and raw digit strings stop being legible.
func formatUint(v uint64) string {
	s := strconv.FormatUint(v, 10)
	if len(s) <= 3 {
		return s
	}
	var b strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		b.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s[i : i+3])
	}
	return b.String()
}

// ---- markdown backend -------------------------------------------------

const barWidth = 24

func bar(frac float64) string {
	n := int(frac*barWidth + 0.5)
	if n == 0 && frac > 0 {
		n = 1
	}
	if n > barWidth {
		n = barWidth
	}
	return strings.Repeat("█", n)
}

func renderMarkdown(rep report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n\n", rep.Title)
	if rep.Compare != nil {
		writeCompareMarkdown(&b, rep.Compare)
	}
	for _, r := range rep.Runs {
		writeRunMarkdown(&b, r, len(rep.Runs) > 1)
	}
	return b.String()
}

func writeCompareMarkdown(b *strings.Builder, c *compareView) {
	fmt.Fprintf(b, "## A/B: %s → %s\n\n", c.LabelA, c.LabelB)
	fmt.Fprintf(b, "Speedup (A cycles / B cycles): **%.3f×**\n\n", c.Speedup)
	fmt.Fprintf(b, "| metric | A | B | Δ B vs A |\n|---|---:|---:|---:|\n")
	for _, row := range c.Rows {
		fmt.Fprintf(b, "| %s | %s | %s | %s |\n", row.Metric, row.A, row.B, row.Delta)
	}
	b.WriteString("\n")
}

func writeRunMarkdown(b *strings.Builder, r runView, multi bool) {
	if multi {
		fmt.Fprintf(b, "## Run: %s\n\n", r.Label)
	} else {
		fmt.Fprintf(b, "## %s\n\n", r.Label)
	}
	var meta []string
	for _, m := range r.Meta {
		meta = append(meta, fmt.Sprintf("%s `%s`", m.K, m.V))
	}
	fmt.Fprintf(b, "%s\n\n", strings.Join(meta, " · "))

	b.WriteString("| metric | value |\n|---|---:|\n")
	for _, m := range r.Metrics {
		fmt.Fprintf(b, "| %s | %s |\n", m.K, m.V)
	}
	b.WriteString("\n")

	if len(r.Lifecycle) == 0 {
		b.WriteString("_No lifecycle section: the run was made without `-obs`._\n\n")
		return
	}

	b.WriteString("### Prefetch lifecycle\n\n")
	b.WriteString("| outcome | count | share | |\n|---|---:|---:|---|\n")
	for _, o := range r.Lifecycle {
		fmt.Fprintf(b, "| %s | %s | %.1f%% | %s |\n", o.Name, formatUint(o.Count), o.Share*100, bar(o.Share))
	}
	fmt.Fprintf(b, "\nLate prefetches still shaved **%s** stall cycles off their demands.\n\n",
		formatUint(r.LateShaved))

	for _, h := range r.Histograms {
		fmt.Fprintf(b, "### Histogram: %s\n\n", h.Name)
		fmt.Fprintf(b, "%s samples, mean %.1f\n\n", formatUint(h.Count), h.Mean)
		b.WriteString("| range | count | |\n|---|---:|---|\n")
		for _, row := range h.Rows {
			fmt.Fprintf(b, "| %s | %s | %s |\n", row.Range, formatUint(row.Count), bar(row.Frac))
		}
		b.WriteString("\n")
	}

	if len(r.Iterations) > 0 {
		b.WriteString("### Per-iteration outcomes\n\n")
		b.WriteString("| iter | end cycle | issued | timely | late | unused-evicted | redundant |\n")
		b.WriteString("|---:|---:|---:|---:|---:|---:|---:|\n")
		for _, it := range r.Iterations {
			fmt.Fprintf(b, "| %d | %s | %s | %s | %s | %s | %s |\n",
				it.Iter, formatUint(it.EndCycle), formatUint(it.Issued), formatUint(it.Timely),
				formatUint(it.Late), formatUint(it.UnusedEvicted), formatUint(it.Redundant))
		}
		b.WriteString("\n")
	}

	if d := r.Divergence; d != nil {
		b.WriteString("### Replay divergence\n\n")
		fmt.Fprintf(b, "Mean score **%.3f**, max **%.3f** over %s replay windows "+
			"(0 = every miss explained by the recording, 1 = full drift).\n\n",
			d.Mean, d.Max, formatUint(d.Windows))
		if len(d.Worst) > 0 && d.Worst[0].Score > 0 {
			b.WriteString("Worst windows:\n\n")
			b.WriteString("| core | window | predicted | observed | unexplained | score |\n")
			b.WriteString("|---:|---:|---:|---:|---:|---:|\n")
			for _, w := range d.Worst {
				if w.Score == 0 {
					break
				}
				fmt.Fprintf(b, "| %d | %d | %d | %d | %d | %.3f |\n",
					w.Core, w.Window, w.Predicted, w.Observed, w.EditDistance, w.Score)
			}
			b.WriteString("\n")
		}
	}
}
