// Command rnrd is the experiment-serving daemon: a long-lived HTTP
// front-end over the parallel evaluation engine. It accepts simulation
// and experiment jobs, coalesces duplicates onto a content-addressed
// result cache, streams progress over SSE and drains gracefully on
// SIGTERM.
//
// Usage:
//
//	rnrd [-addr :8080] [-scale bench] [-workers N] [-queue 64]
//	     [-parallelism N] [-job-timeout 0] [-drain-timeout 30s]
//	     [-audit] [-obs]
//
// Cluster modes:
//
//	rnrd -coordinator [-heartbeat-interval 1s] [-replicate-check 0.1]
//	    runs the scale-out coordinator instead of a worker: jobs are
//	    routed to registered workers by consistent hashing, with health
//	    tracking, retries and sampled cross-worker hash verification.
//
//	rnrd -join http://coordinator:8080 [-advertise http://me:8081]
//	     [-worker-id w1]
//	    runs a normal worker that registers itself with a coordinator
//	    on startup and answers its heartbeats on /v1/worker/status.
//
// See DESIGN.md ("Serving layer", "Cluster layer") for the API.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rnrsim/internal/audit"
	"rnrsim/internal/cluster"
	"rnrsim/internal/obs"
	"rnrsim/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		scale        = flag.String("scale", "bench", "default input scale for submissions that omit one (test|bench|large)")
		workers      = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "bounded job-queue depth (full queue answers 429)")
		parallelism  = flag.Int("parallelism", 0, "simulations run in parallel inside one experiment job (0 = GOMAXPROCS)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job lifetime cap, queue wait included (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before cancelling them")
		quiet        = flag.Bool("quiet", false, "suppress per-job logging")
		auditOn      = flag.Bool("audit", false,
			"attach the correctness auditor to every served simulation: periodic invariant sweeps, any violation fails the job instead of caching a corrupt result")
		auditInt = flag.Uint64("audit-interval", audit.DefaultInterval, "cycles between invariant sweeps (with -audit)")
		obsOn    = flag.Bool("obs", false,
			"attach the prefetch-lifecycle flight recorder to every served simulation: results carry lifecycle/histogram sections and /metrics exposes obs_* histograms")

		coordinator = flag.Bool("coordinator", false,
			"run as cluster coordinator: route jobs to joined workers by consistent hashing instead of simulating locally")
		join = flag.String("join", "",
			"coordinator base URL to register with on startup (worker mode)")
		advertise = flag.String("advertise", "",
			"base URL the coordinator should dial this worker at (default http://<listen-addr>)")
		workerID = flag.String("worker-id", "",
			"stable worker identity for registration and routing (default the advertise address)")
		heartbeatInterval = flag.Duration("heartbeat-interval", time.Second,
			"coordinator health-probe period (with -coordinator)")
		replicateCheck = flag.Float64("replicate-check", 0,
			"fraction of dispatches duplicated to a second worker for state-hash cross-checking, 0..1 (with -coordinator)")
		dispatchTimeout = flag.Duration("dispatch-timeout", 2*time.Minute,
			"per-attempt dispatch cap (with -coordinator)")
	)
	flag.Parse()
	var auditCfg *audit.Config
	if *auditOn {
		auditCfg = &audit.Config{Interval: *auditInt}
	}
	var obsCfg *obs.Config
	if *obsOn {
		obsCfg = &obs.Config{}
	}
	var err error
	if *coordinator {
		err = runCoordinator(*addr, *scale, *heartbeatInterval, *replicateCheck,
			*dispatchTimeout, *drainTimeout, *quiet)
	} else {
		err = run(*addr, *scale, *workers, *queueDepth, *parallelism,
			*jobTimeout, *drainTimeout, *quiet, auditCfg, obsCfg,
			*join, *advertise, *workerID)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rnrd:", err)
		os.Exit(1)
	}
}

func run(addr, scale string, workers, queueDepth, parallelism int,
	jobTimeout, drainTimeout time.Duration, quiet bool,
	auditCfg *audit.Config, obsCfg *obs.Config,
	join, advertise, workerID string) error {
	if _, ok := serve.ParseScale(scale); !ok {
		return fmt.Errorf("unknown scale %q (have %v)", scale, serve.ScaleNames)
	}
	logf := log.Printf
	if quiet {
		logf = func(string, ...any) {}
	}
	mgr := serve.NewManager(serve.Options{
		DefaultScale: scale,
		QueueDepth:   queueDepth,
		Workers:      workers,
		JobTimeout:   jobTimeout,
		Parallelism:  parallelism,
		Audit:        auditCfg,
		Obs:          obsCfg,
		WorkerID:     workerID,
		Logf:         logf,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewServer(mgr)}
	log.Printf("rnrd listening on http://%s (default scale %s)", ln.Addr(), scale)

	if join != "" {
		if advertise == "" {
			advertise = "http://" + ln.Addr().String()
		}
		if workerID == "" {
			workerID = advertise
		}
		if err := registerWithCoordinator(join, workerID, advertise); err != nil {
			ln.Close()
			return fmt.Errorf("joining %s: %w", join, err)
		}
		log.Printf("rnrd: joined cluster at %s as %s (%s)", join, workerID, advertise)
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain order matters: first stop accepting jobs and let in-flight
	// work finish (watchers on open SSE streams still receive their
	// terminal events), then close the HTTP server. A draining worker
	// reports Draining over /v1/worker/status, so the coordinator stops
	// routing to it before the listener goes away.
	log.Printf("rnrd: signal received, draining (timeout %s)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := mgr.Shutdown(drainCtx); err != nil {
		log.Printf("rnrd: drain incomplete, jobs cancelled: %v", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		srv.Close()
	}
	log.Printf("rnrd: shutdown complete")
	return nil
}

// registerWithCoordinator announces this worker to the coordinator,
// retrying briefly so worker and coordinator processes can start in
// either order.
func registerWithCoordinator(base, id, advertise string) error {
	body, _ := json.Marshal(struct {
		ID  string `json:"id"`
		URL string `json:"url"`
	}{id, advertise})
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			time.Sleep(500 * time.Millisecond)
		}
		resp, err := http.Post(base+"/v1/cluster/join", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		payload, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		lastErr = fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(payload))
		if resp.StatusCode == http.StatusBadRequest {
			return lastErr // not transient: bad id/url
		}
	}
	return lastErr
}

// runCoordinator serves the cluster front-end: no local simulation,
// just routing, health and sweeps.
func runCoordinator(addr, scale string, heartbeatInterval time.Duration,
	replicateCheck float64, dispatchTimeout, drainTimeout time.Duration, quiet bool) error {
	if _, ok := serve.ParseScale(scale); !ok {
		return fmt.Errorf("unknown scale %q (have %v)", scale, serve.ScaleNames)
	}
	if replicateCheck < 0 || replicateCheck > 1 {
		return fmt.Errorf("replicate-check %v outside [0,1]", replicateCheck)
	}
	logf := log.Printf
	if quiet {
		logf = func(string, ...any) {}
	}
	coord := cluster.NewCoordinator(cluster.Config{
		DefaultScale:      scale,
		HeartbeatInterval: heartbeatInterval,
		ReplicateCheck:    replicateCheck,
		DispatchTimeout:   dispatchTimeout,
		Logf:              logf,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		coord.Close()
		return err
	}
	srv := &http.Server{Handler: cluster.NewServer(coord)}
	log.Printf("rnrd coordinator listening on http://%s (default scale %s)", ln.Addr(), scale)

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		coord.Close()
		return err
	case <-ctx.Done():
	}

	log.Printf("rnrd coordinator: signal received, shutting down (timeout %s)", drainTimeout)
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), drainTimeout)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		srv.Close()
	}
	coord.Close()
	log.Printf("rnrd coordinator: shutdown complete")
	return nil
}
