// Command rnrd is the experiment-serving daemon: a long-lived HTTP
// front-end over the parallel evaluation engine. It accepts simulation
// and experiment jobs, coalesces duplicates onto a content-addressed
// result cache, streams progress over SSE and drains gracefully on
// SIGTERM.
//
// Usage:
//
//	rnrd [-addr :8080] [-scale bench] [-workers N] [-queue 64]
//	     [-parallelism N] [-job-timeout 0] [-drain-timeout 30s]
//	     [-audit] [-obs]
//
// See DESIGN.md ("Serving layer") for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rnrsim/internal/audit"
	"rnrsim/internal/obs"
	"rnrsim/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		scale        = flag.String("scale", "bench", "default input scale for submissions that omit one (test|bench|large)")
		workers      = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 64, "bounded job-queue depth (full queue answers 429)")
		parallelism  = flag.Int("parallelism", 0, "simulations run in parallel inside one experiment job (0 = GOMAXPROCS)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job lifetime cap, queue wait included (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs before cancelling them")
		quiet        = flag.Bool("quiet", false, "suppress per-job logging")
		auditOn      = flag.Bool("audit", false,
			"attach the correctness auditor to every served simulation: periodic invariant sweeps, any violation fails the job instead of caching a corrupt result")
		auditInt = flag.Uint64("audit-interval", audit.DefaultInterval, "cycles between invariant sweeps (with -audit)")
		obsOn    = flag.Bool("obs", false,
			"attach the prefetch-lifecycle flight recorder to every served simulation: results carry lifecycle/histogram sections and /metrics exposes obs_* histograms")
	)
	flag.Parse()
	var auditCfg *audit.Config
	if *auditOn {
		auditCfg = &audit.Config{Interval: *auditInt}
	}
	var obsCfg *obs.Config
	if *obsOn {
		obsCfg = &obs.Config{}
	}
	if err := run(*addr, *scale, *workers, *queueDepth, *parallelism,
		*jobTimeout, *drainTimeout, *quiet, auditCfg, obsCfg); err != nil {
		fmt.Fprintln(os.Stderr, "rnrd:", err)
		os.Exit(1)
	}
}

func run(addr, scale string, workers, queueDepth, parallelism int,
	jobTimeout, drainTimeout time.Duration, quiet bool,
	auditCfg *audit.Config, obsCfg *obs.Config) error {
	if _, ok := serve.ParseScale(scale); !ok {
		return fmt.Errorf("unknown scale %q (have %v)", scale, serve.ScaleNames)
	}
	logf := log.Printf
	if quiet {
		logf = func(string, ...any) {}
	}
	mgr := serve.NewManager(serve.Options{
		DefaultScale: scale,
		QueueDepth:   queueDepth,
		Workers:      workers,
		JobTimeout:   jobTimeout,
		Parallelism:  parallelism,
		Audit:        auditCfg,
		Obs:          obsCfg,
		Logf:         logf,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewServer(mgr)}
	log.Printf("rnrd listening on http://%s (default scale %s)", ln.Addr(), scale)

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain order matters: first stop accepting jobs and let in-flight
	// work finish (watchers on open SSE streams still receive their
	// terminal events), then close the HTTP server.
	log.Printf("rnrd: signal received, draining (timeout %s)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := mgr.Shutdown(drainCtx); err != nil {
		log.Printf("rnrd: drain incomplete, jobs cancelled: %v", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		srv.Close()
	}
	log.Printf("rnrd: shutdown complete")
	return nil
}
