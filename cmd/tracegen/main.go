// Command tracegen builds a workload and writes its per-core memory
// traces (including the RnR software-interface markers) in the binary
// trace format, one file per core. The traces can be inspected with
// -dump or fed back into the simulator by custom tools.
//
// Usage:
//
//	tracegen -workload pagerank -input amazon -scale test -out /tmp/pr
//	tracegen -workload spcg -input bbmat -dump -n 40
package main

import (
	"flag"
	"fmt"
	"os"

	"rnrsim/internal/apps"
	"rnrsim/internal/trace"
)

func main() {
	workload := flag.String("workload", "pagerank", "pagerank, hyperanf or spcg")
	input := flag.String("input", "urand", "input name (see DESIGN.md Table III)")
	scale := flag.String("scale", "test", "input scale: test, bench or large")
	out := flag.String("out", "", "output prefix; writes <prefix>.core<N>.rnrt")
	dump := flag.Bool("dump", false, "print the head of core 0's trace instead of writing")
	n := flag.Int("n", 20, "records to print with -dump")
	flag.Parse()

	var sc apps.Scale
	switch *scale {
	case "test":
		sc = apps.ScaleTest
	case "bench":
		sc = apps.ScaleBench
	case "large":
		sc = apps.ScaleLarge
	default:
		fatal("unknown scale %q", *scale)
	}

	app, err := apps.Build(*workload, *input, sc)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "%s/%s: %d cores, %d records, %d instructions, input %.2f MB\n",
		app.Name, app.Input, app.Cores, app.Records(), app.Instructions(),
		float64(app.InputBytes)/(1<<20))

	if *dump {
		for i, rec := range app.Traces[0] {
			if i >= *n {
				break
			}
			fmt.Println(rec)
		}
		return
	}
	if *out == "" {
		fatal("need -out or -dump")
	}
	for c, recs := range app.Traces {
		name := fmt.Sprintf("%s.core%d.rnrt", *out, c)
		f, err := os.Create(name)
		if err != nil {
			fatal("%v", err)
		}
		if err := trace.Write(f, recs); err != nil {
			fatal("writing %s: %v", name, err)
		}
		if err := f.Close(); err != nil {
			fatal("closing %s: %v", name, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d records)\n", name, len(recs))
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
