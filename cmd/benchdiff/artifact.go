package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Artifact is one BENCH_*.json perf-trajectory point: every benchmark
// the suite ran, under the same rnrsim.v1 envelope as the simulator's
// result exports so downstream tooling shares one schema check.
type Artifact struct {
	SchemaVersion string  `json:"schema_version"`
	GeneratedAt   string  `json:"generated_at"`
	Commit        string  `json:"commit,omitempty"`
	Benchmarks    []Bench `json:"benchmarks"`
}

// Bench is one benchmark's measurements: the standard testing metrics
// plus any custom b.ReportMetric units (cycles/s, ...), keyed by unit.
type Bench struct {
	Name    string             `json:"name"`
	Iters   uint64             `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
}

// gomaxprocsSuffix strips the "-8" GOMAXPROCS tail from a benchmark
// name so artifacts recorded on machines with different core counts
// still line up. Sub-benchmark names keep their full path.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput reads `go test -bench` text: lines of the form
//
//	BenchmarkName-8   100   123 ns/op   5.0e+06 cycles/s   16 B/op   2 allocs/op
//
// interleaved with ok/PASS noise, which is skipped. A benchmark that
// appears more than once (same name from several packages, or -count >
// 1) keeps the later measurement.
func parseBenchOutput(r io.Reader) (Artifact, error) {
	var art Artifact
	index := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{
			Name:    gomaxprocsSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), ""),
			Iters:   iters,
			Metrics: map[string]float64{},
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return art, fmt.Errorf("bad metric value in %q", line)
			}
			b.Metrics[fields[i+1]] = v
		}
		if at, ok := index[b.Name]; ok {
			art.Benchmarks[at] = b
			continue
		}
		index[b.Name] = len(art.Benchmarks)
		art.Benchmarks = append(art.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return art, err
	}
	sort.Slice(art.Benchmarks, func(i, j int) bool {
		return art.Benchmarks[i].Name < art.Benchmarks[j].Name
	})
	return art, nil
}

// higherIsBetter classifies a metric unit's good direction: rates
// (anything per second) should go up, costs (ns/op, B/op, allocs/op
// and any other per-op unit) should go down.
func higherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s")
}

// Delta is one (benchmark, metric) comparison.
type Delta struct {
	Bench, Unit string
	Old, New    float64
	Change      float64 // relative: (new-old)/old
	Regression  bool
}

// Diff is the comparison of two artifacts.
type Diff struct {
	Deltas      []Delta
	Regressions []Delta
	OnlyOld     []string // benchmarks that disappeared
	OnlyNew     []string // benchmarks that appeared
}

func diff(old, cur Artifact, threshold float64) Diff {
	var d Diff
	oldBy := map[string]Bench{}
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	curSeen := map[string]bool{}
	for _, nb := range cur.Benchmarks {
		curSeen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			d.OnlyNew = append(d.OnlyNew, nb.Name)
			continue
		}
		units := make([]string, 0, len(nb.Metrics))
		for u := range nb.Metrics {
			if _, ok := ob.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			ov, nv := ob.Metrics[u], nb.Metrics[u]
			delta := Delta{Bench: nb.Name, Unit: u, Old: ov, New: nv}
			if ov != 0 {
				delta.Change = (nv - ov) / ov
			}
			worse := delta.Change > 0
			if higherIsBetter(u) {
				worse = delta.Change < 0
			}
			if ov != 0 && worse && abs(delta.Change) > threshold {
				delta.Regression = true
				d.Regressions = append(d.Regressions, delta)
			}
			d.Deltas = append(d.Deltas, delta)
		}
	}
	for _, ob := range old.Benchmarks {
		if !curSeen[ob.Name] {
			d.OnlyOld = append(d.OnlyOld, ob.Name)
		}
	}
	return d
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

func (d Diff) write(w io.Writer, oldLabel, newLabel string) {
	if oldLabel == "" {
		oldLabel = "old"
	}
	if newLabel == "" {
		newLabel = "new"
	}
	fmt.Fprintf(w, "%-44s %-10s %14s %14s %9s\n", "benchmark", "metric", oldLabel, newLabel, "change")
	for _, dl := range d.Deltas {
		flag := ""
		if dl.Regression {
			flag = "  << REGRESSION"
		}
		fmt.Fprintf(w, "%-44s %-10s %14.4g %14.4g %+8.1f%%%s\n",
			dl.Bench, dl.Unit, dl.Old, dl.New, dl.Change*100, flag)
	}
	for _, n := range d.OnlyNew {
		fmt.Fprintf(w, "%-44s (new benchmark, no baseline)\n", n)
	}
	for _, n := range d.OnlyOld {
		fmt.Fprintf(w, "%-44s (gone: present only in %s)\n", n, oldLabel)
	}
	if len(d.Regressions) > 0 {
		fmt.Fprintf(w, "\n%d regression(s)\n", len(d.Regressions))
	}
}
