package main

import (
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: rnrsim/internal/sim
cpu: some CPU
BenchmarkSimulatorThroughput-8   	       1	 95000000 ns/op	   1.2e+06 cycles/s	 5000000 B/op	   12345 allocs/op
BenchmarkSimulatorThroughput/obs-8   	   1	100000000 ns/op	   1.1e+06 cycles/s	 5100000 B/op	   12400 allocs/op
PASS
ok  	rnrsim/internal/sim	1.2s
pkg: rnrsim/internal/telemetry
BenchmarkCounterInc-8           	1000000	       2.1 ns/op	       0 B/op	       0 allocs/op
ok  	rnrsim/internal/telemetry	0.5s
`

func TestParseBenchOutput(t *testing.T) {
	art, err := parseBenchOutput(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(art.Benchmarks), art.Benchmarks)
	}
	byName := map[string]Bench{}
	for _, b := range art.Benchmarks {
		byName[b.Name] = b
	}
	st, ok := byName["SimulatorThroughput"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", art.Benchmarks)
	}
	if st.Metrics["cycles/s"] != 1.2e6 || st.Metrics["ns/op"] != 95000000 {
		t.Errorf("metrics = %+v", st.Metrics)
	}
	if _, ok := byName["SimulatorThroughput/obs"]; !ok {
		t.Error("sub-benchmark name lost")
	}
	if byName["CounterInc"].Metrics["ns/op"] != 2.1 {
		t.Errorf("CounterInc = %+v", byName["CounterInc"])
	}
}

func TestParseKeepsLaterDuplicate(t *testing.T) {
	text := "BenchmarkX-4 1 100 ns/op\nBenchmarkX-4 1 50 ns/op\n"
	art, err := parseBenchOutput(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 1 || art.Benchmarks[0].Metrics["ns/op"] != 50 {
		t.Errorf("duplicates not collapsed to the later run: %+v", art.Benchmarks)
	}
}

func mkArtifact(metrics map[string]map[string]float64) Artifact {
	var a Artifact
	for name, m := range metrics {
		a.Benchmarks = append(a.Benchmarks, Bench{Name: name, Iters: 1, Metrics: m})
	}
	return a
}

func TestDiffDirectionAware(t *testing.T) {
	old := mkArtifact(map[string]map[string]float64{
		"Sim": {"cycles/s": 1e6, "ns/op": 100},
	})
	// cycles/s fell 20%, ns/op rose 20%: both are regressions at 10%.
	cur := mkArtifact(map[string]map[string]float64{
		"Sim": {"cycles/s": 0.8e6, "ns/op": 120},
	})
	d := diff(old, cur, 0.10)
	if len(d.Regressions) != 2 {
		t.Fatalf("regressions = %+v, want 2", d.Regressions)
	}
	// The same moves pass a 50% threshold.
	if d := diff(old, cur, 0.50); len(d.Regressions) != 0 {
		t.Errorf("lenient threshold still flagged: %+v", d.Regressions)
	}
	// Moves in the good direction are never regressions, however large.
	better := mkArtifact(map[string]map[string]float64{
		"Sim": {"cycles/s": 5e6, "ns/op": 10},
	})
	if d := diff(old, better, 0.01); len(d.Regressions) != 0 {
		t.Errorf("improvements flagged as regressions: %+v", d.Regressions)
	}
}

func TestDiffDisjointBenchmarks(t *testing.T) {
	old := mkArtifact(map[string]map[string]float64{
		"Gone": {"ns/op": 1}, "Shared": {"ns/op": 1}})
	cur := mkArtifact(map[string]map[string]float64{
		"Fresh": {"ns/op": 1}, "Shared": {"ns/op": 1}})
	d := diff(old, cur, 0.10)
	if len(d.OnlyOld) != 1 || d.OnlyOld[0] != "Gone" {
		t.Errorf("OnlyOld = %v", d.OnlyOld)
	}
	if len(d.OnlyNew) != 1 || d.OnlyNew[0] != "Fresh" {
		t.Errorf("OnlyNew = %v", d.OnlyNew)
	}
	// Appearing/disappearing benchmarks never fail the diff.
	if len(d.Regressions) != 0 {
		t.Errorf("regressions = %+v", d.Regressions)
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	old := mkArtifact(map[string]map[string]float64{"Z": {"allocs/op": 0}})
	cur := mkArtifact(map[string]map[string]float64{"Z": {"allocs/op": 5}})
	// A zero baseline cannot produce a relative change; it must not
	// panic or divide by zero, and is reported without a verdict.
	d := diff(old, cur, 0.10)
	if len(d.Regressions) != 0 || len(d.Deltas) != 1 {
		t.Errorf("diff = %+v", d)
	}
}

func TestWriteDiff(t *testing.T) {
	old := mkArtifact(map[string]map[string]float64{"Sim": {"ns/op": 100}})
	cur := mkArtifact(map[string]map[string]float64{"Sim": {"ns/op": 200}})
	d := diff(old, cur, 0.10)
	var b strings.Builder
	d.write(&b, "fc150d6", "abc1234")
	out := b.String()
	for _, want := range []string{"fc150d6", "abc1234", "<< REGRESSION", "+100.0%", "1 regression(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}
