// Command benchdiff maintains the repo's perf trajectory (ROADMAP item
// 3): it converts `go test -bench` output into committed BENCH_*.json
// artifacts and compares two such artifacts with a configurable
// regression threshold, failing loudly (exit 1) when a metric moved the
// wrong way.
//
// Usage:
//
//	go test -bench . -benchtime=1x -run NONE ./... | benchdiff -parse -commit fc150d6 -o BENCH_fc150d6.json
//	benchdiff BENCH_fc150d6.json BENCH_new.json              # default 10% threshold
//	benchdiff -threshold 0.5 BENCH_fc150d6.json BENCH_new.json
//
// Comparison is direction-aware: for throughput metrics (any unit
// ending in "/s", e.g. the simulator's cycles/s) lower is a regression;
// for cost metrics (ns/op, B/op, allocs/op) higher is. Benchmarks
// present in only one file are reported but never fail the diff — new
// benchmarks appear and old ones retire as the codebase grows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"rnrsim/internal/sim"
)

func main() {
	parse := flag.Bool("parse", false, "read `go test -bench` text on stdin and write a BENCH_*.json artifact")
	commit := flag.String("commit", "", "commit label stored in the artifact (with -parse)")
	out := flag.String("o", "", "output file (with -parse; default stdout)")
	threshold := flag.Float64("threshold", 0.10,
		"relative change beyond which a wrong-direction move is a regression (0.10 = 10%)")
	flag.Parse()

	if *parse {
		if err := runParse(os.Stdin, *out, *commit); err != nil {
			fatal("%v", err)
		}
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.1] old.json new.json\n       benchdiff -parse [-commit c] [-o out.json] < bench.txt")
		os.Exit(2)
	}
	old, err := loadArtifact(flag.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	cur, err := loadArtifact(flag.Arg(1))
	if err != nil {
		fatal("%v", err)
	}
	d := diff(old, cur, *threshold)
	d.write(os.Stdout, old.Commit, cur.Commit)
	if len(d.Regressions) > 0 {
		os.Exit(1)
	}
}

func runParse(in io.Reader, out, commit string) error {
	art, err := parseBenchOutput(in)
	if err != nil {
		return err
	}
	if len(art.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin (expected `go test -bench` output)")
	}
	art.SchemaVersion, art.GeneratedAt = sim.Stamp()
	art.Commit = commit
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(art)
}

func loadArtifact(path string) (Artifact, error) {
	var a Artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("%s: %v", path, err)
	}
	if a.SchemaVersion != sim.ExportSchemaVersion {
		return a, fmt.Errorf("%s: schema %q, want %q", path, a.SchemaVersion, sim.ExportSchemaVersion)
	}
	return a, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
