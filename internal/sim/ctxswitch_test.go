package sim

import (
	"testing"
)

func TestContextSwitchesStallAndPollute(t *testing.T) {
	app := testApp(t)
	plain := runOne(t, testConfig(), app)

	cfg := testConfig()
	cfg.CtxSwitch = CtxSwitchConfig{Period: 20000, Duration: 5000}
	switched := runOne(t, cfg, app)

	// Same work retired despite the interruptions.
	if switched.Instructions != plain.Instructions {
		t.Fatalf("instructions %d != %d", switched.Instructions, plain.Instructions)
	}
	// Descheduling time plus cold-cache warmup must cost cycles.
	if switched.Cycles <= plain.Cycles {
		t.Errorf("context switches were free: %d vs %d cycles", switched.Cycles, plain.Cycles)
	}
	// Pollution shows up as extra misses.
	if switched.L2.DemandMisses <= plain.L2.DemandMisses {
		t.Errorf("no pollution misses: %d vs %d", switched.L2.DemandMisses, plain.L2.DemandMisses)
	}
}

func TestContextSwitchRnRResumesWithoutRetraining(t *testing.T) {
	app := testApp(t)
	cfg := testConfig().WithPrefetcher(PFRnR)
	cfg.CtxSwitch = CtxSwitchConfig{Period: 20000, Duration: 5000}
	res := runOne(t, cfg, app)

	// The engine must have been paused and resumed by the OS at least once.
	if res.RnR.Pauses == 0 || res.RnR.Resumes == 0 {
		t.Fatalf("no OS pause/resume recorded: %+v", res.RnR)
	}
	// The recording must be intact (one record iteration's worth, no
	// truncation from the switches) and replay must still work.
	plain := runOne(t, testConfig().WithPrefetcher(PFRnR), app)
	if res.RnR.RecordedEntries == 0 {
		t.Fatal("recording lost across context switches")
	}
	// Within 25% of the undisturbed recording (pollution adds misses).
	lo := plain.RnR.RecordedEntries * 3 / 4
	hi := plain.RnR.RecordedEntries * 3 / 2
	if res.RnR.RecordedEntries < lo || res.RnR.RecordedEntries > hi {
		t.Errorf("recorded %d entries vs %d undisturbed", res.RnR.RecordedEntries, plain.RnR.RecordedEntries)
	}
	if res.RnR.Prefetches == 0 {
		t.Error("replay dead after context switches")
	}
	if acc := res.Accuracy(); acc < 0.5 {
		t.Errorf("accuracy %.2f collapsed under context switches", acc)
	}
}

func TestContextSwitchRnRAdvantage(t *testing.T) {
	// The paper's §IV-C claim, measured: under context switches RnR keeps
	// its recorded pattern (metadata in memory) while a temporal
	// prefetcher loses its tables and must retrain. RnR's relative
	// slowdown from switching must not exceed the conventional one's by
	// much — and its accuracy must stay high.
	app := testApp(t)
	sw := CtxSwitchConfig{Period: 30000, Duration: 2000}

	cfgR := testConfig().WithPrefetcher(PFRnR)
	cfgR.CtxSwitch = sw
	rnrSwitched := runOne(t, cfgR, app)

	if acc := rnrSwitched.Accuracy(); acc < 0.6 {
		t.Errorf("RnR accuracy %.2f under switching, want >= 0.6", acc)
	}

	cfgG := testConfig().WithPrefetcher(PFGHB)
	cfgG.CtxSwitch = sw
	ghbSwitched := runOne(t, cfgG, app)
	if ghbSwitched.Instructions != rnrSwitched.Instructions {
		t.Fatal("mismatched work")
	}
	// RnR must outperform the retraining temporal prefetcher under
	// switching on the irregular input.
	if rnrSwitched.Cycles >= ghbSwitched.Cycles {
		t.Errorf("RnR (%d cycles) not faster than GHB (%d) under context switches",
			rnrSwitched.Cycles, ghbSwitched.Cycles)
	}
}

func TestContextSwitchDisabledByDefault(t *testing.T) {
	cfg := testConfig()
	if cfg.CtxSwitch.Period != 0 {
		t.Fatal("context switching enabled by default")
	}
	app := testApp(t)
	a := runOne(t, cfg, app)
	b := runOne(t, testConfig(), app)
	if a.Cycles != b.Cycles {
		t.Error("zero-period config changed behaviour")
	}
}
