// Package sim assembles the full simulated machine — cores, private
// L1/L2 caches, shared LLC, DRAM, prefetchers and the RnR engines — runs a
// workload's traces through it and collects the statistics the paper's
// evaluation reports.
package sim

import (
	"fmt"

	"rnrsim/internal/audit"
	"rnrsim/internal/cache"
	"rnrsim/internal/coherence"
	"rnrsim/internal/cpu"
	"rnrsim/internal/dram"
	"rnrsim/internal/obs"
	"rnrsim/internal/rnr"
	"rnrsim/internal/telemetry"
)

// PrefetcherKind names the prefetcher configuration under test.
type PrefetcherKind string

// The evaluated configurations (§VII): the paper's four baselines, the
// extended baselines (GHB, MISB, IMP from Fig. 1/related work), RnR alone,
// and RnR-Combined (RnR for the target structure + next-line for the
// rest, §V-D).
const (
	PFNone        PrefetcherKind = "none"
	PFNextLine    PrefetcherKind = "nextline"
	PFStream      PrefetcherKind = "stream"
	PFGHB         PrefetcherKind = "ghb"
	PFMISB        PrefetcherKind = "misb"
	PFBingo       PrefetcherKind = "bingo"
	PFSteMS       PrefetcherKind = "stems"
	PFDroplet     PrefetcherKind = "droplet"
	PFIMP         PrefetcherKind = "imp"
	PFBestOffset  PrefetcherKind = "bestoffset"
	PFDomino      PrefetcherKind = "domino"
	PFRnR         PrefetcherKind = "rnr"
	PFRnRCombined PrefetcherKind = "rnr-combined"
)

// AllPrefetchers lists every configuration the harness can run.
var AllPrefetchers = []PrefetcherKind{
	PFNone, PFNextLine, PFStream, PFGHB, PFMISB, PFBingo, PFSteMS,
	PFDroplet, PFIMP, PFBestOffset, PFDomino, PFRnR, PFRnRCombined,
}

// Config describes one simulated machine configuration.
type Config struct {
	Name  string
	Cores int

	CPU  cpu.Config
	L1   cache.Config
	L2   cache.Config
	LLC  cache.Config
	DRAM dram.Config

	Prefetcher PrefetcherKind
	RnRControl rnr.TimingControl
	RnRWindow  uint64 // 0 = half the L2 in lines (the paper's default)
	RnRLead    int    // pace-control lead in entries; 0 = a quarter of the L2
	// RnRRecordAll switches the record engine to the naive
	// every-access recording §III rejects (ablation).
	RnRRecordAll bool
	// RnRPrefetchToLLC redirects replay prefetches to the shared LLC
	// instead of the private L2 (§III's destination choice, ablation).
	RnRPrefetchToLLC bool

	// IdealLLC replaces the LLC with an infinite cache (the "ideal" bar
	// of Fig. 6: only cold misses reach memory).
	IdealLLC bool

	// PerCorePrefetchers assigns one prefetcher kind per core for
	// multi-programmed runs (len must equal Cores); empty means every
	// core runs Prefetcher. RnR tuning knobs (window, lead, control)
	// stay global.
	PerCorePrefetchers []PrefetcherKind

	// Coherence attaches the MESI-lite directory (internal/coherence)
	// in front of the shared LLC: stores invalidate remote private
	// copies, remote fills downgrade Modified lines. With one core the
	// directory can never invalidate anything, so a 1-core coherent
	// machine is state-hash-identical to an uncoherent one.
	Coherence bool

	// LLCBanks splits the shared LLC into this many equal banks (power
	// of two; 0 or 1 keeps the single monolithic LLC), each bank an
	// independently scheduled cache covering the lines whose low
	// line-address bits select it.
	LLCBanks int

	// CrossCore attaches the Pickle-style cooperative LLC prefetcher
	// (prefetch.CrossCore): one shared correlation table trained on the
	// per-core LLC demand-miss streams, issuing prefetches into the LLC
	// on behalf of the predicted consumer. Requires a real LLC.
	CrossCore bool
	// CrossCoreEntries sizes the correlation table (0 = default 4096).
	CrossCoreEntries int

	// CtxSwitch enables periodic OS context switches (§IV-C): cache
	// pollution plus prefetcher reset for conventional designs, pause /
	// save / restore / resume for RnR.
	CtxSwitch CtxSwitchConfig

	// MaxCycles aborts runaway simulations; 0 = a generous default.
	MaxCycles uint64

	// Audit, when non-nil, attaches the correctness layer: an invariant
	// checker sweeps every component's conservation laws every
	// Audit.EffectiveInterval() cycles (plus once after the run drains)
	// and any violation fails the run with the cycle, component and law.
	// Nil costs one pointer compare per Tick, like Telemetry.
	Audit *audit.Config

	// Obs, when non-nil, attaches the prefetch-lifecycle flight recorder
	// (internal/obs): every prefetch issued into the instrumented level
	// gets a lifecycle record attributed to exactly one outcome, latency
	// structure lands in exponential histograms, and RnR engines get a
	// divergence probe scoring the observed replay-time miss stream
	// against the recording. Purely observational — state hashes are
	// identical with or without it — and nil costs one pointer compare
	// per cache event.
	Obs *obs.Config

	// Telemetry, when non-nil, attaches the observability layer: every
	// component registers its probes into the recorder at construction,
	// the system samples the series every Telemetry.SampleInterval()
	// cycles and emits trace spans (iterations, RnR state machine, DRAM
	// drains, context switches). Nil costs one pointer compare per Tick.
	Telemetry *telemetry.Recorder

	// OnIteration, if set, is called each time the SPMD iteration
	// barrier opens, with the iteration index and the cycle it opened
	// at. The serving layer (internal/serve) uses it as the source of
	// live per-phase progress ticks. It runs on the simulation
	// goroutine: it must be cheap and must not block.
	OnIteration func(iter int, cycle uint64)

	// ForceCycleStepped disables the event-driven scheduler and runs the
	// legacy one-Tick-per-cycle loop. Results are byte-identical either
	// way (the differential tests prove it); this exists as the reference
	// engine for those tests and as an escape hatch while debugging
	// wakeup computations.
	ForceCycleStepped bool

	// CoreParallel runs each core's private domain (core + L1 + L2 +
	// per-core prefetcher + RnR engine) on its own goroutine between
	// shared-level wakeups. Results are byte-identical to the serial
	// engines — the parallel differential tests prove it — so this is a
	// pure wall-clock knob. It is a no-op with one core, under
	// ForceCycleStepped, and in configurations where private-domain
	// activity can reach shared state mid-window (coherence directory,
	// RnRPrefetchToLLC); those fall back to the serial event engine.
	CoreParallel bool
	// CoreParallelWorkers bounds the worker pool (0 = GOMAXPROCS,
	// capped at Cores).
	CoreParallelWorkers int
}

// Baseline returns the paper's Table II machine: 4-core 4 GHz OoO with
// 64 KB L1s, 256 KB L2s, 8 MB LLC and one DDR4-2400 channel.
func Baseline() Config {
	return Config{
		Name:  "tableII",
		Cores: 4,
		CPU:   cpu.Default(),
		L1: cache.Config{
			Name: "L1D", SizeBytes: 64 * 1024, Ways: 8, Latency: 4,
			MSHRs: 8, ReadQ: 32, PrefQ: 8, WriteQ: 32, Bandwidth: 2,
		},
		L2: cache.Config{
			Name: "L2", SizeBytes: 256 * 1024, Ways: 8, Latency: 12,
			MSHRs: 16, ReadQ: 32, PrefQ: 32, WriteQ: 32, Bandwidth: 1,
			PrefBandwidth: 2,
		},
		LLC: cache.Config{
			Name: "LLC", SizeBytes: 8 * 1024 * 1024, Ways: 16, Latency: 42,
			MSHRs: 128, ReadQ: 64, PrefQ: 64, WriteQ: 64, Bandwidth: 4,
		},
		DRAM:       dram.Default(),
		Prefetcher: PFNone,
		RnRControl: rnr.WindowPaceControl,
	}
}

// Scaled returns the Table II machine with capacities scaled down by 16x
// to pair with the scaled inputs (see apps.Scale): miss ratios land in the
// same regimes as the paper's full-size runs, and the whole suite runs on
// a laptop. Latencies and queue depths are unchanged.
func Scaled() Config {
	c := Baseline()
	c.Name = "tableII/32"
	c.L1.SizeBytes = 4 * 1024
	c.L2.SizeBytes = 16 * 1024
	// The LLC scales harder than the private levels so that the target
	// structures miss it, as the paper's full-size inputs miss the 8 MB
	// LLC: the baseline's irregular accesses must pay DRAM latency or
	// there is nothing for any prefetcher to win.
	c.LLC.SizeBytes = 64 * 1024
	// More L2 miss concurrency: with scaled capacities the prefetch
	// streams need the extra MSHRs to cover the same latency window the
	// paper's full-size configuration covers.
	c.L2.MSHRs = 32
	// Extra channels keep the scaled baseline *latency-bound* (MLP-limited)
	// rather than bus-bound, matching the regime the paper's speedups
	// imply: a prefetcher can only win when the bus has headroom.
	c.DRAM.Channels = 4
	c.DRAM.MaxInFlight = 24
	return c
}

// Test returns a miniature machine paired with the ScaleTest inputs:
// capacities shrink below the test working sets so the workloads stay
// DRAM-bound, the regime the paper evaluates in. Useful for unit tests
// and quick examples.
func Test() Config {
	c := Scaled()
	c.Name = "test"
	c.L1.SizeBytes = 1024
	c.L2.SizeBytes = 4 * 1024
	c.LLC.SizeBytes = 8 * 1024
	return c
}

// DefaultWindowLines returns the RnR default window: half the L2 in cache
// lines, for double buffering (§IV-B).
func (c Config) DefaultWindowLines() uint64 {
	return c.L2.SizeBytes / 64 / 2
}

// WithPrefetcher returns a copy configured for the given prefetcher.
func (c Config) WithPrefetcher(p PrefetcherKind) Config {
	c.Prefetcher = p
	c.Name = fmt.Sprintf("%s+%s", c.Name, p)
	return c
}

func (c Config) validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: config %q has %d cores", c.Name, c.Cores)
	}
	isKnown := func(k PrefetcherKind) bool {
		for _, p := range AllPrefetchers {
			if k == p {
				return true
			}
		}
		return false
	}
	if !isKnown(c.Prefetcher) {
		return fmt.Errorf("sim: unknown prefetcher %q", c.Prefetcher)
	}
	if n := len(c.PerCorePrefetchers); n != 0 {
		if n != c.Cores {
			return fmt.Errorf("sim: config %q assigns %d per-core prefetchers to %d cores", c.Name, n, c.Cores)
		}
		for i, k := range c.PerCorePrefetchers {
			if !isKnown(k) {
				return fmt.Errorf("sim: unknown prefetcher %q for core %d", k, i)
			}
		}
	}
	if c.Coherence && c.Cores > coherence.MaxCores {
		return fmt.Errorf("sim: config %q has %d cores, coherence supports at most %d",
			c.Name, c.Cores, coherence.MaxCores)
	}
	if b := c.LLCBanks; b > 1 {
		if b&(b-1) != 0 {
			return fmt.Errorf("sim: config %q has %d LLC banks, want a power of two", c.Name, b)
		}
		if c.IdealLLC {
			return fmt.Errorf("sim: config %q banks the ideal LLC", c.Name)
		}
	} else if b < 0 {
		return fmt.Errorf("sim: config %q has %d LLC banks", c.Name, b)
	}
	if c.CrossCore && c.IdealLLC {
		return fmt.Errorf("sim: config %q attaches the cross-core prefetcher to the ideal LLC", c.Name)
	}
	if c.CoreParallelWorkers < 0 {
		return fmt.Errorf("sim: config %q has %d parallel workers", c.Name, c.CoreParallelWorkers)
	}
	return nil
}
