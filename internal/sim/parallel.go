package sim

// Parallel per-core execution: between two consecutive shared-level
// wakeups, each core's private domain (core + L1 + L2 + per-core
// prefetcher + RnR engine) touches no state outside itself, so the event
// scheduler can fan the domains' tick spans out over a bounded worker
// pool and join before the next shared-state mutation. Determinism is by
// construction, not by locking: the span horizon T is sized so that no
// private-domain action can reach the shared level — or any other
// domain — before cycle T, every domain replays exactly the per-cycle
// component order tickGated would have used, and the cycle T itself is
// simulated serially by the regular event path. State hashes, per-core
// sub-hashes, telemetry JSONL and the export envelope are byte-identical
// to the serial engines; the differential matrix in parallel_test.go and
// the fuzz harness hold it to that.
//
// The central soundness invariant is the *frozen L2*: within a window
// (now, T) no private L2 ever processes a queue entry. Everything a
// domain does in-window — core retire/fetch, L1 hit processing, L1 miss
// children and writebacks enqueued into the L2, prefetcher OnCycle
// issues into the L2 prefetch queue — either stays above the L2 or lands
// in an L2 input queue with a ready stamp >= T. Since the L2 is the only
// private component with a reference to shared state (the LLC banks, the
// DRAM controller via RnR metadata reads), a frozen L2 means no shared
// access, no cross-domain write, and no hook (OnAccess/OnFill/OnEvict,
// prefetcher training, RnR record-mode metadata) fires mid-window.
//
// The horizon terms that enforce it, all derived from the wakeup
// contract's "earliest first action" lower bounds (see mem.WakeupNever):
//
//   shared caps   T <= first wakeup of ctx switch, telemetry sample,
//                 audit sweep, every LLC bank, the ideal LLC, DRAM.
//   frozen L2     T <= l2.Wakeup(now): nothing already queued may ripen.
//   L1 feed       T <= l1.Wakeup(now) + L2.Latency - 1: an L1 action at
//                 cycle u enqueues into the L2 with ready u-1+L2.Latency.
//   pf feed       T <= pfWakeup(now) + L2.Latency: OnCycle at cycle u
//                 runs after the L2's clock reached u, so its issues
//                 ripen at u+L2.Latency.
//   fresh loads   T <= dispatch(memU) + L1.Latency + L2.Latency - 2: a
//                 load dispatched at cycle d is processed by the L1 at
//                 d-1+L1.Latency and its miss child ripens in the L2 at
//                 d-2+L1.Latency+L2.Latency.
//   markers       T <= dispatch(markU): marker dispatch fires OnMarker
//                 (barrier arrivals, RnR record finalisation) and must
//                 stay serial.
//   drain         T <= now + ceil(drainU/W): a core going Done mid-span
//                 could open a barrier or end the run earlier than the
//                 span's end, which only the serial loop may observe.
//
// where dispatch(n) = now + ceil((n+1)/W) is the earliest cycle the
// (n+1)-th fetch unit can dispatch at width W, and memU/markU/drainU
// come from Core.QuietScan (trace lookahead). Configurations whose
// private domains reach shared state mid-window by construction — the
// coherence directory hooks L1 demand processing, RnRPrefetchToLLC
// issues into the LLC banks — never open windows at all.

import (
	"runtime"
	"sync"

	"rnrsim/internal/mem"
	"rnrsim/internal/prefetch"
)

// parallelMinSpan is the minimum number of in-window cycles worth
// dispatching to the pool: shorter spans pay more in channel traffic and
// join latency than they save, so they fall through to the serial path.
const parallelMinSpan = 8

// corePool is the worker pool domain spans are fanned out over.
type corePool struct {
	jobs    chan spanJob
	span    sync.WaitGroup // joins the in-flight span's domains
	workers sync.WaitGroup // joins worker exit on shutdown

	domTicks []uint64 // per-domain simulated-cycle counts, element-exclusive
}

// spanJob asks a worker to run core c's domain over cycles (from, to].
type spanJob struct {
	c        int
	from, to uint64
}

// parallelEligible reports whether the configuration permits domain
// spans at all. Coherence hooks the L1s' demand processing into the
// shared directory (an in-window action by construction), and the §III
// LLC-destination ablation routes per-core prefetch issues into the
// shared banks; both keep the serial engine.
func (s *System) parallelEligible() bool {
	return s.cfg.CoreParallel && s.cfg.Cores > 1 &&
		!s.cfg.Coherence && !s.cfg.RnRPrefetchToLLC
}

func (s *System) startPool() {
	n := s.cfg.CoreParallelWorkers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > s.cfg.Cores {
		n = s.cfg.Cores
	}
	p := &corePool{
		jobs:     make(chan spanJob, s.cfg.Cores),
		domTicks: make([]uint64, s.cfg.Cores),
	}
	for i := 0; i < n; i++ {
		p.workers.Add(1)
		go func() {
			defer p.workers.Done()
			for j := range p.jobs {
				p.domTicks[j.c] = s.runDomain(j.c, j.from, j.to)
				p.span.Done()
			}
		}()
	}
	s.par = p
}

func (s *System) stopPool() {
	close(s.par.jobs)
	s.par.workers.Wait()
	s.par = nil
}

// satAdd returns a+b, saturating at WakeupNever so a "never" wakeup
// stays never instead of wrapping into the past.
func satAdd(a, b uint64) uint64 {
	if a >= mem.WakeupNever-b {
		return mem.WakeupNever
	}
	return a + b
}

// quietHorizon returns the first cycle T at which shared-level state can
// next be touched, such that the domains are provably independent over
// (s.cycle, T), or 0 when no worthwhile window exists (shared activity
// too soon, a domain's actions would escape, or fewer than two domains
// have anything to do). The caller runs cycles s.cycle+1 .. T-1 in
// parallel and leaves cycle T to the serial event path.
func (s *System) quietHorizon(limit uint64) uint64 {
	now := s.cycle
	dead := now + parallelMinSpan // t must stay above this to be worth it
	if limit <= dead {
		return 0
	}
	s.refreshGates()
	t := limit
	lower := func(w uint64) bool {
		if w <= now {
			w = now + 1
		}
		if w < t {
			t = w
		}
		return t <= dead
	}

	// Shared-level caps: the window closes strictly before the first
	// cycle any shared component or scheduled event can act.
	if s.ctxOn && lower(s.ctx.wakeup()) {
		return 0
	}
	if s.tel != nil && lower(s.nextSampleAt) {
		return 0
	}
	if s.aud != nil && lower(s.nextAuditAt) {
		return 0
	}
	for b := range s.llcs {
		if lower(s.llcWakeAt(b, now)) {
			return 0
		}
	}
	if s.ideal != nil && lower(s.ideal.wakeup(now)) {
		return 0
	}
	if lower(s.mcWakeAt(now)) {
		return 0
	}

	l1Lat := uint64(s.cfg.L1.Latency)
	l2Lat := uint64(s.cfg.L2.Latency)
	if l1Lat == 0 || l2Lat == 0 {
		return 0 // degenerate latencies void the feed-through slack
	}
	w := uint64(s.cfg.CPU.FetchWidth)
	out := s.ctx.out
	active := 0
	for c := range s.cores {
		// A replaying RnR engine with metadata reads left to issue can
		// unblock its in-fly throttle mid-window and reach the DRAM
		// controller; refuse the window outright.
		if e := s.engines[c]; e != nil && e.MetaStreamPending() {
			return 0
		}
		domMin := uint64(mem.WakeupNever) // domain's first action, for the active count

		// Frozen L2: nothing already queued in the L2 may ripen in-window.
		h2 := s.l2WakeAt(c, now)
		if h2 <= now {
			h2 = now + 1
		}
		if h2 < domMin {
			domMin = h2
		}
		if lower(h2) {
			return 0
		}
		// L1 feed-through: an L1 action at cycle u >= h1 enqueues into the
		// L2 with ready u-1+l2Lat, which must not ripen before T.
		h1 := s.l1WakeAt(c, now)
		if h1 <= now {
			h1 = now + 1
		}
		if h1 < domMin {
			domMin = h1
		}
		if lower(satAdd(h1, l2Lat-1)) {
			return 0
		}
		// Prefetcher feed: OnCycle at u issues with ready u+l2Lat (the
		// L2's clock has already reached u when the prefetcher runs).
		if s.cycleDriven[c] {
			pw := s.pfWake[c]
			if pw == nil {
				return 0 // wakeup unknown: dense-stepping territory
			}
			p := pw.Wakeup(now)
			if p <= now {
				p = now + 1
			}
			if p < domMin {
				domMin = p
			}
			if lower(satAdd(p, l2Lat)) {
				return 0
			}
		}
		if !out {
			cw := s.coreWakeAt(c, now)
			if cw <= now {
				cw = now + 1
			}
			if cw < domMin {
				domMin = cw
			}
			core := s.cores[c]
			if !s.barriers[s.coreGrp[c]].gated(s.coreSlot[c]) {
				// Trace lookahead: fresh loads, markers and the drain edge.
				memU, markU, drainU := core.QuietScan((t - now) * w)
				if lower(now + (memU+w)/w + l1Lat + l2Lat - 2) {
					return 0
				}
				if lower(now + (markU+w)/w) {
					return 0
				}
				dt := (drainU + w - 1) / w
				if dt == 0 {
					dt = 1
				}
				if lower(now + dt) {
					return 0
				}
			} else if core.Drained() && !core.Done() {
				// A gated core cannot fetch, so the lookahead terms are
				// moot — but one that already drained its trace can still
				// go Done through retirement alone, mid-window, which only
				// the serial loop may observe (barrier opens, run end).
				return 0
			}
		}
		if domMin < t {
			active++
		}
	}
	if active < 2 {
		return 0 // nothing to overlap; the serial path is cheaper
	}
	return t
}

// runSpan fans the window (s.cycle, t) out over the pool, joins, and
// fast-forwards the shared level to t-1 — exactly what advanceTo's gap
// handling would have done, since no shared component acted in-window.
// The serial loop then simulates cycle t (the shared event) normally.
func (s *System) runSpan(t uint64) {
	p := s.par
	now := s.cycle
	to := t - 1
	p.span.Add(len(s.cores))
	for c := range s.cores {
		p.jobs <- spanJob{c: c, from: now, to: to}
	}
	p.span.Wait()
	for _, llc := range s.llcs {
		llc.AdvanceClock(to)
	}
	if s.ideal != nil {
		s.ideal.advanceClock(to)
	}
	s.mc.AdvanceClock(to)
	s.cycle = to
	s.doneDirty = true
	var maxTicks uint64
	for c := range p.domTicks {
		if p.domTicks[c] > maxTicks {
			maxTicks = p.domTicks[c]
		}
	}
	s.ticked += maxTicks
	s.parSpans++
	s.parSpanCycles += to - now
}

// ParallelSpans reports how many domain spans the parallel scheduler
// executed and how many in-window cycles they covered. Diagnostics and
// tests only — like TickedCycles, deliberately not part of Result.
func (s *System) ParallelSpans() (spans, cycles uint64) {
	return s.parSpans, s.parSpanCycles
}

// runDomain simulates core c's private domain over cycles (from, to],
// alone on a worker goroutine. It is tickGated restricted to one
// domain: the same per-cycle component order (core, L1, L2, prefetcher),
// the same wake-cache discipline (all slices element-exclusive by core
// index; the pool join publishes every write before the serial loop
// reads them), and the same idle batching as advanceTo — a gap where
// the domain's own minimum wakeup says nothing happens is charged via
// SkipIdle/AdvanceClock in one jump, which is sound because no other
// domain and no shared component can touch this domain mid-window.
func (s *System) runDomain(c int, from, to uint64) uint64 {
	out := s.ctx.out
	core, l1, l2 := s.cores[c], s.l1s[c], s.l2s[c]
	cd := s.cycleDriven[c]
	var pw prefetch.CycleDriven
	if cd {
		pw = s.pfWake[c] // non-nil: quietHorizon refused the window otherwise
	}
	cur := from
	var ticks uint64
	for cur < to {
		nw := uint64(mem.WakeupNever)
		if !out {
			if w := s.coreWakeAt(c, cur); w < nw {
				nw = w
			}
		}
		if w := s.l1WakeAt(c, cur); w < nw {
			nw = w
		}
		if w := s.l2WakeAt(c, cur); w < nw {
			nw = w
		}
		if cd {
			if w := pw.Wakeup(cur); w < nw {
				nw = w
			}
		}
		if nw <= cur {
			nw = cur + 1
		}
		if nw > to {
			// Idle through the rest of the span.
			if !out {
				core.SkipIdle(to - cur)
			}
			l1.AdvanceClock(to)
			l2.AdvanceClock(to)
			break
		}
		if gap := nw - cur - 1; gap > 0 {
			if !out {
				core.SkipIdle(gap)
			}
			l1.AdvanceClock(nw - 1)
			l2.AdvanceClock(nw - 1)
		}
		cur = nw
		ticks++
		s.coreCycle[c] = cur
		prev := cur - 1
		if !out {
			if s.coreWakeAt(c, prev) <= cur {
				s.coreWakeOK[c] = false
				core.Tick(cur)
			} else {
				core.SkipIdle(1)
			}
		}
		if s.l1WakeAt(c, prev) <= cur {
			s.l1WakeOK[c] = false
			// Core.Wakeup probes L1 demand capacity (same rule as
			// tickGated): an L1 tick may free queue space the cached core
			// wakeup could not see.
			s.coreWakeOK[c] = false
			l1.Tick(cur)
		} else {
			l1.AdvanceClock(cur)
		}
		if s.l2WakeAt(c, prev) <= cur {
			s.l2WakeOK[c] = false
			l2.Tick(cur)
		} else {
			l2.AdvanceClock(cur)
		}
		if cd {
			if pw.Wakeup(prev) <= cur {
				s.prefs[c].OnCycle(cur, s.issueFns[c])
			}
		}
	}
	s.coreCycle[c] = to
	return ticks
}
