package sim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"rnrsim/internal/obs"
	"rnrsim/internal/telemetry"
)

func obsCfg() *obs.Config { return &obs.Config{} }

// TestObsClassificationEndToEnd runs the RnR machine with the flight
// recorder attached and checks the headline acceptance invariant: the
// sum of the outcome counters equals the prefetches issued, and every
// histogram saw the samples its outcomes imply.
func TestObsClassificationEndToEnd(t *testing.T) {
	app := testApp(t)
	cfg := testConfig().WithPrefetcher(PFRnR)
	cfg.Obs = obsCfg()
	r := runOne(t, cfg, app)

	if r.Obs == nil {
		t.Fatal("Config.Obs attached but Result.Obs is nil")
	}
	lc := r.Obs.Lifecycle
	if lc.Issued == 0 {
		t.Fatal("RnR run issued no observed prefetches")
	}
	closed := lc.Timely + lc.Late + lc.UnusedEvicted + lc.UnusedAtEnd + lc.Redundant
	if lc.Issued != closed {
		t.Fatalf("issued %d != sum of outcomes %d (%+v)", lc.Issued, closed, lc)
	}
	if lc.OpenAtEnd != 0 {
		t.Fatalf("%d records still open after a drained run", lc.OpenAtEnd)
	}
	if lc.Timely == 0 {
		t.Error("an accurate RnR replay produced no timely prefetches")
	}
	// Every issue feeds the MSHR histogram; non-redundant ones are the
	// only records that can fill. Redundant events never allocate, so
	// fills are bounded by issued - redundant.
	h := r.Obs.Histograms["mshr_at_issue"]
	if lc.Issued < h.Count || h.Count == 0 {
		t.Errorf("mshr_at_issue count %d vs issued %d", h.Count, lc.Issued)
	}
	fills := r.Obs.Histograms["fill_latency_cycles"].Count
	if fills == 0 || fills > lc.Issued-lc.Redundant {
		t.Errorf("fill count %d vs issued %d redundant %d", fills, lc.Issued, lc.Redundant)
	}
	if use := r.Obs.Histograms["prefetch_to_use_cycles"].Count; use != lc.Timely {
		t.Errorf("prefetch_to_use count %d != timely %d", use, lc.Timely)
	}
	// Iteration deltas must reconcile with the totals they partition.
	if len(lc.Iterations) == 0 {
		t.Fatal("no per-iteration outcome rows")
	}
	var iterIssued uint64
	for _, it := range lc.Iterations {
		iterIssued += it.Issued
	}
	if iterIssued > lc.Issued {
		t.Errorf("iteration deltas sum to %d > total issued %d", iterIssued, lc.Issued)
	}
}

// TestObsStateHashParity is the acceptance criterion that the flight
// recorder observes without perturbing: with obs on and off the run
// produces the identical result — architectural state hash included —
// for both the plain and the LLC-destination machines.
func TestObsStateHashParity(t *testing.T) {
	app := testApp(t)
	for _, llcDest := range []bool{false, true} {
		cfg := testConfig().WithPrefetcher(PFRnR)
		cfg.RnRPrefetchToLLC = llcDest
		plain := runOne(t, cfg, app)

		cfgObs := cfg
		cfgObs.Obs = obsCfg()
		observed := runOne(t, cfgObs, app)

		if observed.Obs == nil || observed.Obs.Lifecycle.Issued == 0 {
			t.Fatalf("llcDest=%v: recorder attached but saw nothing", llcDest)
		}
		if observed.StateHash != plain.StateHash {
			t.Errorf("llcDest=%v: obs perturbed the state hash: %016x vs %016x",
				llcDest, observed.StateHash, plain.StateHash)
		}
		observed.Obs = nil
		if !reflect.DeepEqual(plain, observed) {
			t.Errorf("llcDest=%v: obs changed the result beyond its own section:\n plain %+v\n obs   %+v",
				llcDest, plain, observed)
		}
	}
}

// TestObsCtxSwitchNoLeak drives the save/restore path: context-switch
// invalidations must close resident prefetched-unused records instead
// of leaking them, and the conservation law must survive the churn.
func TestObsCtxSwitchNoLeak(t *testing.T) {
	app := testApp(t)
	cfg := testConfig().WithPrefetcher(PFRnR)
	cfg.CtxSwitch = CtxSwitchConfig{Period: 20000, Duration: 5000}
	cfg.Obs = obsCfg()
	s, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if r.RnR.Pauses == 0 {
		t.Fatal("no context switch ever fired")
	}
	if open := s.Obs().OpenRecords(); open != 0 {
		t.Fatalf("%d lifecycle records leaked across context switches", open)
	}
	lc := r.Obs.Lifecycle
	closed := lc.Timely + lc.Late + lc.UnusedEvicted + lc.UnusedAtEnd + lc.Redundant
	if lc.Issued != closed {
		t.Fatalf("conservation broke under context switches: issued %d != closed %d (%+v)",
			lc.Issued, closed, lc)
	}
	s.Obs().CheckInvariants(func(msg string) { t.Errorf("invariant: %s", msg) })
}

// TestObsAuditClean runs audit and obs together: the auditor sweeps the
// recorder's conservation law and the divergence monotone watchers on
// every pass and the run must stay clean.
func TestObsAuditClean(t *testing.T) {
	app := testApp(t)
	cfg := testConfig().WithPrefetcher(PFRnR)
	cfg.Obs = obsCfg()
	cfg.Audit = auditCfg()
	s, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RunAll()
	if err != nil {
		t.Fatalf("audited+observed run failed: %v", err)
	}
	if s.Audit().Checks() == 0 {
		t.Fatal("auditor never swept")
	}
	if v := s.Audit().Violations(); len(v) > 0 {
		t.Fatalf("%d violations, first: %s", len(v), v[0])
	}
	if r.Obs == nil || r.Obs.Lifecycle.Issued == 0 {
		t.Fatal("recorder empty under audit")
	}
}

// TestObsDivergenceLowOnFaithfulReplay: replaying the very trace that
// was recorded, the observed miss stream should mostly be explained by
// the recording — the divergence signal stays well below the re-record
// threshold a staleness policy would use.
func TestObsDivergenceLowOnFaithfulReplay(t *testing.T) {
	app := testApp(t)
	cfg := testConfig().WithPrefetcher(PFRnR)
	cfg.Obs = obsCfg()
	r := runOne(t, cfg, app)

	d := r.Obs.Lifecycle.Divergence
	if d == nil {
		t.Fatal("RnR run produced no divergence section")
	}
	if d.WindowsScored == 0 || len(d.Windows) == 0 {
		t.Fatalf("no windows scored: %+v", d)
	}
	// A faithful replay should score near zero: nearly every replay-time
	// miss is a line the engine prefetched from the script (covered), and
	// the few uncovered ones sit inside the window's recorded
	// neighbourhood. 0.1 leaves headroom for boundary noise while still
	// rejecting a probe that misattributes timing skew as drift.
	if d.MeanScore > 0.1 {
		t.Errorf("faithful replay diverged: mean %.3f (%+v)", d.MeanScore, d)
	}
	if d.MaxScore > 1 || d.MeanScore < 0 {
		t.Errorf("score out of range: %+v", d)
	}
	for _, w := range d.Windows {
		if w.Core < 0 || w.Core >= cfg.Cores {
			t.Errorf("window labelled with bad core: %+v", w)
		}
	}
}

// TestObsDisabledLeavesNoTrace: a nil Config.Obs must leave the result
// without lifecycle sections and the export without the new keys.
func TestObsDisabledLeavesNoTrace(t *testing.T) {
	app := testApp(t)
	r := runOne(t, testConfig().WithPrefetcher(PFRnR), app)
	if r.Obs != nil {
		t.Fatal("Result.Obs set without Config.Obs")
	}
	out, err := json.Marshal(r.Export())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"lifecycle"`, `"histograms"`} {
		if bytes.Contains(out, []byte(key)) {
			t.Errorf("disabled run exported %s", key)
		}
	}
}

// TestObsExportGolden locks the lifecycle/histograms serialisation of a
// fixed observed Result against a golden file, envelope included.
func TestObsExportGolden(t *testing.T) {
	fixedExportClock(t, time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC))
	hist := &telemetry.Histogram{}
	hist.Observe(3)
	hist.Observe(100)
	r := &Result{
		ConfigName:   "pagerank/urand/rnr/",
		Prefetcher:   PFRnR,
		App:          "pagerank",
		Input:        "urand",
		Cycles:       1000,
		Instructions: 1700,
		Iterations:   2,
		InputBytes:   4096,
		Obs: &obs.Summary{
			Lifecycle: obs.LifecycleJSON{
				Issued: 10, Timely: 6, Late: 2, UnusedEvicted: 1,
				Redundant: 1, LateStallShaved: 40,
				Iterations: []obs.IterOutcomesJSON{
					{Iter: 0, EndCycle: 400, Issued: 4, Timely: 2, Late: 2},
					{Iter: 1, EndCycle: 1000, Issued: 6, Timely: 4, UnusedEvicted: 1, Redundant: 1},
				},
				Divergence: &obs.DivergenceJSON{
					WindowsScored: 2, MeanScore: 0.125, MaxScore: 0.25,
					Windows: []obs.WindowScoreJSON{
						{Core: 0, Window: 0, Predicted: 4, Observed: 4, EditDistance: 1, Score: 0.25},
						{Core: 0, Window: 1, Predicted: 4, Observed: 2},
					},
				},
			},
			Histograms: map[string]telemetry.HistogramJSON{
				"fill_latency_cycles": hist.JSON(),
			},
		},
	}
	got, err := json.MarshalIndent(r.Export(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "export_obs.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("obs export drifted from golden (regenerate with -update and bump ExportSchemaVersion if intentional)\n got: %s\nwant: %s", got, want)
	}
}
