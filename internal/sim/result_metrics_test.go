package sim

import (
	"math"
	"testing"

	"rnrsim/internal/cache"
)

// finite fails the test if v is NaN or infinite.
func finite(t *testing.T, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("%s = %v, want a finite value", name, v)
	}
}

// allMetricsFinite sweeps every derived ratio metric on r against base.
func allMetricsFinite(t *testing.T, r, base *Result) {
	t.Helper()
	finite(t, "IPC", r.IPC())
	finite(t, "L2MPKI", r.L2MPKI())
	finite(t, "Accuracy", r.Accuracy())
	finite(t, "Coverage", r.Coverage(base))
	finite(t, "Speedup", r.Speedup(base))
	finite(t, "SteadyIterCycles", r.SteadyIterCycles())
	finite(t, "ComposedCycles", r.ComposedCycles(100))
	finite(t, "ComposedSpeedup", r.ComposedSpeedup(base, 100))
	finite(t, "RecordOverheadPct", r.RecordOverheadPct(base))
	finite(t, "AdditionalTrafficPct", r.AdditionalTrafficPct(base))
	finite(t, "StorageOverheadPct", r.StorageOverheadPct())
	tl := r.TimelinessBreakdown()
	finite(t, "Timeliness.OnTime", tl.OnTime)
	finite(t, "Timeliness.Early", tl.Early)
	finite(t, "Timeliness.Late", tl.Late)
	finite(t, "Timeliness.OutOfWindow", tl.OutOfWindow)
}

// TestMetricsZeroCycleResult: a result that never ran (zero cycles,
// zero instructions, no misses) must yield zeros, not NaN from 0/0.
func TestMetricsZeroCycleResult(t *testing.T) {
	empty := &Result{}
	allMetricsFinite(t, empty, empty)
	if v := empty.IPC(); v != 0 {
		t.Errorf("IPC of empty result = %v, want 0", v)
	}
	if v := empty.Speedup(empty); v != 0 {
		t.Errorf("Speedup of empty result = %v, want 0", v)
	}
	if v := empty.ComposedSpeedup(empty, 100); v != 0 {
		t.Errorf("ComposedSpeedup of empty result = %v, want 0", v)
	}
}

// TestMetricsZeroMissBaseline: coverage against a baseline that never
// missed (infinite-cache regime) must be 0, not +Inf.
func TestMetricsZeroMissBaseline(t *testing.T) {
	r := &Result{
		Cycles: 1000,
		L2:     cache.Stats{PrefetchUseful: 40, PrefetchFillsDone: 50},
	}
	base := &Result{Cycles: 2000} // zero DemandMisses
	finite(t, "Coverage", r.Coverage(base))
	if v := r.Coverage(base); v != 0 {
		t.Errorf("Coverage vs zero-miss baseline = %v, want 0", v)
	}
	if v := r.Coverage(nil); v != 0 {
		t.Errorf("Coverage vs nil baseline = %v, want 0", v)
	}
}

// TestMetricsIterEndHoles: an iteration table with holes (a barrier
// index that never opened leaves a zero stamp) must not produce
// negative or overflowed durations.
func TestMetricsIterEndHoles(t *testing.T) {
	r := &Result{
		Cycles:       10_000,
		Instructions: 5_000,
		Iterations:   5,
		// Iteration 2 never opened; iteration 3 stamps *earlier* than 1
		// (a corrupt table, as a hostile trace can produce).
		IterEnd: []uint64{100, 400, 0, 300, 9000},
	}
	if v := r.IterCycles(2); v != 0 {
		t.Errorf("IterCycles over a hole = %d, want 0", v)
	}
	if v := r.IterCycles(3); v != 0 {
		t.Errorf("IterCycles from a hole = %d, want 0", v)
	}
	if v := r.IterCycles(4); v != 0 && v != 8700 {
		t.Errorf("IterCycles(4) = %d", v)
	}
	finite(t, "SteadyIterCycles", r.SteadyIterCycles())
	if v := r.SteadyIterCycles(); v < 0 {
		t.Errorf("SteadyIterCycles = %v, want >= 0", v)
	}
	allMetricsFinite(t, r, r)

	// Out-of-range indices are defined too.
	if r.IterCycles(-1) != 0 || r.IterCycles(99) != 0 {
		t.Error("IterCycles out of range != 0")
	}
}

// TestMetricsShorterBaseline: composing/covering against a baseline
// with fewer recorded iterations (shorter IterEnd/IterL2) must stay
// finite — the steady-state window falls back to whole-run stats.
func TestMetricsShorterBaseline(t *testing.T) {
	r := &Result{
		Cycles:       20_000,
		Instructions: 10_000,
		Iterations:   4,
		IterEnd:      []uint64{100, 300, 600, 1000},
		IterL2: []cache.Stats{
			{DemandMisses: 10, DemandAccesses: 40},
			{DemandMisses: 25, DemandAccesses: 90},
			{DemandMisses: 30, DemandAccesses: 140},
			{DemandMisses: 32, DemandAccesses: 190},
		},
		L2: cache.Stats{DemandMisses: 32, DemandAccesses: 190, DemandHits: 158,
			PrefetchUseful: 8, PrefetchFillsDone: 10},
	}
	base := &Result{
		Cycles:       40_000,
		Instructions: 10_000,
		Iterations:   1,
		IterEnd:      []uint64{900}, // only one iteration recorded
		L2:           cache.Stats{DemandMisses: 64, DemandAccesses: 200},
	}
	allMetricsFinite(t, r, base)
	if v := r.Coverage(base); v < 0 || v > 1 {
		t.Errorf("Coverage vs shorter baseline = %v, want within [0,1]", v)
	}
	finite(t, "base.SteadyIterCycles", base.SteadyIterCycles())
}

// TestMetricsAccuracyZeroPrefetches: zero issued prefetches is 0/0
// territory for accuracy and timeliness; both must return zeros.
func TestMetricsAccuracyZeroPrefetches(t *testing.T) {
	r := &Result{Cycles: 1000, Instructions: 500,
		L2: cache.Stats{DemandMisses: 100, DemandAccesses: 400}}
	if v := r.Accuracy(); v != 0 {
		t.Errorf("Accuracy with zero prefetches = %v, want 0", v)
	}
	if tl := r.TimelinessBreakdown(); tl != (Timeliness{}) {
		t.Errorf("TimelinessBreakdown with zero prefetches = %+v, want zeros", tl)
	}
}
