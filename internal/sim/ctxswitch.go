package sim

import (
	"rnrsim/internal/rnr"
	"rnrsim/internal/trace"
)

// Context-switch injection (§IV-C): the OS periodically deschedules the
// workload. While switched out, the process's cache contents are evicted
// by whoever runs in its place; on switch-in, a conventional prefetcher's
// training state belongs to the other process and must retrain, whereas
// RnR saves its 86.5 B of registers, keeps its metadata in (the
// process's own) memory, and resumes exactly where it paused.

// CtxSwitchConfig enables periodic context switches.
type CtxSwitchConfig struct {
	// Period is the descheduling interval in cycles; 0 disables.
	Period uint64
	// Duration is how long the process stays switched out.
	Duration uint64
}

// ctxSwitch is the runtime state of the injector.
type ctxSwitch struct {
	cfg      CtxSwitchConfig
	nextAt   uint64
	resumeAt uint64
	out      bool
	outStart uint64 // cycle of the current switch-out, for trace spans
	switches uint64
	saved    []rnr.SavedState // per-core RnR snapshots while switched out
	hasSaved []bool
}

func newCtxSwitch(cfg CtxSwitchConfig) *ctxSwitch {
	return &ctxSwitch{cfg: cfg, nextAt: cfg.Period}
}

// tick drives the switch state machine; returns true while switched out.
func (cs *ctxSwitch) tick(s *System, now uint64) bool {
	if cs.cfg.Period == 0 {
		return false
	}
	if cs.out {
		if now >= cs.resumeAt {
			cs.switchIn(s, now)
		}
		return cs.out
	}
	if now >= cs.nextAt {
		cs.switchOut(s, now)
	}
	return cs.out
}

// wakeup reports the next cycle at which the state machine transitions:
// the scheduled switch-in while descheduled, the next switch-out
// otherwise. A Duration of 0 makes resumeAt == the switch-out cycle — a
// genuine in-the-past wakeup that the scheduler must clamp to now+1.
func (cs *ctxSwitch) wakeup() uint64 {
	if cs.cfg.Period == 0 {
		return WakeupNever
	}
	if cs.out {
		return cs.resumeAt
	}
	return cs.nextAt
}

func (cs *ctxSwitch) switchOut(s *System, now uint64) {
	cs.out = true
	cs.outStart = now
	cs.resumeAt = now + cs.cfg.Duration
	cs.switches++
	cs.saved = cs.saved[:0]
	cs.hasSaved = cs.hasSaved[:0]
	for c := range s.cores {
		// The OS pauses an active record/replay (§IV-C) and saves the
		// architectural + internal registers.
		if e := s.engines[c]; e != nil {
			e.HandleMarker(trace.Mark(trace.MarkPause, 0, 0, 0), now)
			cs.saved = append(cs.saved, e.Save())
			cs.hasSaved = append(cs.hasSaved, true)
		} else {
			cs.saved = append(cs.saved, rnr.SavedState{})
			cs.hasSaved = append(cs.hasSaved, false)
		}
	}
}

func (cs *ctxSwitch) switchIn(s *System, now uint64) {
	cs.out = false
	cs.nextAt = now + cs.cfg.Period
	// One span per descheduling episode (nil-safe when telemetry is off).
	s.tel.Span("sched", "switched-out", cs.outStart, now)
	for c := range s.cores {
		// The other process polluted the private caches.
		s.l1s[c].InvalidateAll()
		s.l2s[c].InvalidateAll()
		if e := s.engines[c]; e != nil {
			// RnR restores its registers and resumes; the metadata lives
			// in the process's heap and survived untouched.
			if cs.hasSaved[c] {
				e.Restore(cs.saved[c])
			}
			e.HandleMarker(trace.Mark(trace.MarkResume, 0, 0, 0), now)
		} else {
			// A conventional prefetcher's tables were trained by (and
			// shared with) whoever ran meanwhile: model the paper's
			// "needs retraining" by resetting it. The L2 hooks resolve
			// the prefetcher dynamically, so swapping the instance is
			// enough.
			s.wirePrefetcher(c)
		}
	}
	for _, llc := range s.llcs {
		// The LLC is shared; the other process evicted this one's share.
		llc.InvalidateAll()
	}
	if s.dir != nil {
		// InvalidateAll bypasses the per-line eviction hooks, so the
		// directory's sharer masks would go stale; drop them wholesale to
		// match the now-empty tag arrays.
		s.dir.Reset()
	}
	if s.xcore != nil {
		// The shared correlation table was trained by whoever ran
		// meanwhile — same retraining rule as the per-core prefetchers.
		s.xcore.Reset()
	}
}
