package sim

import (
	"fmt"
	"testing"

	"rnrsim/internal/audit"
	"rnrsim/internal/trace"
)

// fuzzMachine is the miniature machine the fuzz harness drives: the
// test machine resized to the fuzzer's core count, with the auditor
// sweeping at a tight cadence and a hard cycle ceiling so a wedged
// interleaving fails fast instead of hanging the suite.
func fuzzMachine(cores int) Config {
	cfg := Test()
	cfg.Cores = cores
	cfg.Audit = &audit.Config{Interval: 64}
	cfg.MaxCycles = 5_000_000
	return cfg
}

// TestFuzzedTracesAuditClean is the fuzz harness: randomized
// marker/load interleavings — including the pathological shapes real
// workloads never emit — run under the invariant checker and the
// rnr.Stats monotonicity watcher on every RnR configuration. Any
// violation fails with the seed, so a red run reproduces from the test
// log alone. Short mode trims the seed pool, full mode sweeps more.
func TestFuzzedTracesAuditClean(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8, 42, 1337, 99991, 2026}
	if testing.Short() {
		seeds = seeds[:4]
	}
	kinds := []PrefetcherKind{PFNone, PFNextLine, PFStream, PFRnR, PFRnRCombined}
	for _, patho := range []bool{false, true} {
		for _, pf := range kinds {
			patho, pf := patho, pf
			name := fmt.Sprintf("%s/patho=%v", pf, patho)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				for _, seed := range seeds {
					fc := audit.FuzzConfig{Seed: seed, Pathological: patho}.WithDefaults()
					app := audit.Fuzz(fc)
					cfg := fuzzMachine(fc.Cores).WithPrefetcher(pf)
					s, err := New(cfg, app)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					if _, err := s.RunAll(); err != nil {
						t.Errorf("seed %d: %v", seed, err)
						for _, v := range s.Audit().Violations() {
							t.Logf("seed %d: %s", seed, v)
						}
					}
				}
			})
		}
	}
}

// TestFuzzedTracesDeterministic pins the fuzzer's reproducibility end
// to end: same seed, same app, same machine, same state hash. This is
// what makes a fuzz failure reportable as a seed.
func TestFuzzedTracesDeterministic(t *testing.T) {
	fc := audit.FuzzConfig{Seed: 7, Pathological: true}.WithDefaults()
	run := func() uint64 {
		s, err := New(fuzzMachine(fc.Cores).WithPrefetcher(PFRnR), audit.Fuzz(fc))
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		return r.StateHash
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed hashed %016x then %016x", a, b)
	}
}

// TestFuzzedHugeIterAuxBounded is the Bug H harness-level regression: a
// pathological trace marks iteration indices around 2^20, far past
// maxTrackedIterations. The run must complete without ballooning the
// per-iteration bookkeeping (the slices stay far below the cap, since
// the huge index is dropped rather than allocated) and without wedging
// the barrier.
func TestFuzzedHugeIterAuxBounded(t *testing.T) {
	// Sweep seeds until one actually emits the huge-Aux marker
	// (probability a few percent per iteration per core).
	hit := false
	for seed := int64(1); seed <= 40 && !hit; seed++ {
		fc := audit.FuzzConfig{Seed: seed, Pathological: true, Iterations: 6}.WithDefaults()
		app := audit.Fuzz(fc)
		huge := false
		for _, tr := range app.Traces {
			for _, rec := range tr {
				if rec.Marker == trace.MarkIterEnd && int(rec.Aux) >= maxTrackedIterations {
					huge = true
				}
			}
		}
		if !huge {
			continue
		}
		hit = true
		s, err := New(fuzzMachine(fc.Cores), app)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.RunAll()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The huge index must have been dropped, not allocated: the
		// tables stay sized by the real iteration count, not the Aux.
		if len(r.IterEnd) > 4*fc.Iterations {
			t.Fatalf("seed %d: IterEnd grew to %d entries for a %d-iteration trace",
				seed, len(r.IterEnd), fc.Iterations)
		}
	}
	if !hit {
		t.Fatal("no seed in the sweep emitted a huge IterEnd Aux; fuzzer changed?")
	}
}

// TestFuzzedTracesEngineDifferential is the event-engine safety net the
// curated differential matrix cannot provide: every fuzz seed —
// randomized marker/load interleavings including pathological shapes —
// runs through both the event-driven and cycle-stepped engines, and the
// final state hashes and architectural statistics must be identical.
// A divergence here is a wakeup-computation bug (a component reported a
// wakeup later than its true next state change, and the scheduler
// skipped a cycle that mattered).
func TestFuzzedTracesEngineDifferential(t *testing.T) {
	seeds := make([]int64, 0, 32)
	for s := int64(1); s <= 32; s++ {
		seeds = append(seeds, s)
	}
	if testing.Short() {
		seeds = seeds[:8]
	}
	for _, patho := range []bool{false, true} {
		patho := patho
		t.Run(fmt.Sprintf("patho=%v", patho), func(t *testing.T) {
			t.Parallel()
			for _, seed := range seeds {
				fc := audit.FuzzConfig{Seed: seed, Pathological: patho}.WithDefaults()
				app := audit.Fuzz(fc)
				run := func(stepped bool) *Result {
					cfg := fuzzMachine(fc.Cores).WithPrefetcher(PFRnR)
					cfg.ForceCycleStepped = stepped
					s, err := New(cfg, app)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					r, err := s.RunAll()
					if err != nil {
						t.Fatalf("seed %d (stepped=%v): %v", seed, stepped, err)
					}
					return r
				}
				ev, st := run(false), run(true)
				if ev.StateHash != st.StateHash {
					t.Errorf("seed %d: state hash event %016x != stepped %016x",
						seed, ev.StateHash, st.StateHash)
				}
				if ev.Cycles != st.Cycles || ev.Instructions != st.Instructions {
					t.Errorf("seed %d: cycles/instructions diverged: event %d/%d, stepped %d/%d",
						seed, ev.Cycles, ev.Instructions, st.Cycles, st.Instructions)
				}
				if ev.L2 != st.L2 || ev.LLC != st.LLC || ev.DRAM != st.DRAM {
					t.Errorf("seed %d: memory-system stats diverged between engines", seed)
				}
			}
		})
	}
}
