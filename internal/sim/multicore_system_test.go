package sim

import (
	"reflect"
	"testing"

	"rnrsim/internal/apps"
	"rnrsim/internal/audit"
	"rnrsim/internal/multicore"
	"rnrsim/internal/trace"
)

// oneCoreConfig is the miniature machine resized to one core.
func oneCoreConfig() Config {
	cfg := Test()
	cfg.Cores = 1
	return cfg
}

// normalizeMulticore strips the fields the multicore subsystem adds
// (workload naming from composition, the optional stats sections) so a
// composed 1-job run can be compared field-for-field against the legacy
// single-program run it must be equivalent to.
func normalizeMulticore(r *Result) *Result {
	c := *r
	c.App, c.Input, c.ConfigName = "", "", ""
	c.Coherence = nil
	c.CrossCore = nil
	return &c
}

// TestMulticoreOneCoreIdentity is the tentpole's anchoring differential:
// a 1-core machine with the multicore features switched on (coherence
// directory attached, app built through multicore.Compose) produces a
// byte-identical result — state hash, per-core sub-hash, every counter —
// to today's single-core system running the plain single-program build.
// With one core the directory can never invalidate anything and a
// 1-bank LLC is the monolithic LLC, so any divergence is a wiring bug.
func TestMulticoreOneCoreIdentity(t *testing.T) {
	for _, pf := range []PrefetcherKind{PFNone, PFNextLine, PFRnR} {
		pf := pf
		t.Run(string(pf), func(t *testing.T) {
			legacyApp, err := apps.BuildCores("pagerank", "urand", apps.ScaleTest, 1)
			if err != nil {
				t.Fatal(err)
			}
			composed, err := multicore.Compose(apps.ScaleTest,
				[]multicore.JobSpec{{Workload: "pagerank", Input: "urand"}})
			if err != nil {
				t.Fatal(err)
			}

			legacy := runOne(t, oneCoreConfig().WithPrefetcher(pf), legacyApp)

			cfg := oneCoreConfig().WithPrefetcher(pf)
			cfg.Coherence = true
			cfg.LLCBanks = 1
			multi := runOne(t, cfg, composed)

			if multi.Coherence == nil {
				t.Fatal("coherent run exported no coherence section")
			}
			if n := multi.Coherence.Invalidations; n != 0 {
				t.Errorf("1-core directory invalidated %d lines", n)
			}
			if legacy.StateHash != multi.StateHash {
				t.Errorf("state hash: legacy %016x != multicore %016x", legacy.StateHash, multi.StateHash)
			}
			if len(legacy.CoreHashes) != 1 || len(multi.CoreHashes) != 1 ||
				legacy.CoreHashes[0] != multi.CoreHashes[0] {
				t.Errorf("core-0 sub-hash: legacy %v != multicore %v", legacy.CoreHashes, multi.CoreHashes)
			}
			if !reflect.DeepEqual(normalizeMulticore(legacy), normalizeMulticore(multi)) {
				t.Errorf("results differ beyond the multicore fields:\n legacy %+v\n multi  %+v",
					normalizeMulticore(legacy), normalizeMulticore(multi))
			}
		})
	}
}

// TestMulticoreIdleCoreSubHash pins the per-core sub-hash contract: a
// 2-core coherent machine whose second core has an empty trace finishes
// with the same core-0 sub-hash (and the same cycle count) as the solo
// 1-core run. The combined hash legitimately differs — it folds the idle
// core's empty caches — which is exactly what the sub-hashes see through.
func TestMulticoreIdleCoreSubHash(t *testing.T) {
	composed, err := multicore.Compose(apps.ScaleTest,
		[]multicore.JobSpec{{Workload: "pagerank", Input: "urand"}})
	if err != nil {
		t.Fatal(err)
	}

	solo := runOne(t, oneCoreConfig().WithPrefetcher(PFRnR), composed)

	padded := *composed
	padded.Cores = 2
	padded.Traces = [][]trace.Record{composed.Traces[0], nil}
	padded.Groups = nil // one SPMD group; the drained core counts as arrived
	cfg := Test().WithPrefetcher(PFRnR)
	cfg.Cores = 2
	cfg.Coherence = true
	duo := runOne(t, cfg, &padded)

	if solo.Cycles != duo.Cycles {
		t.Errorf("idle second core changed the cycle count: solo %d, duo %d", solo.Cycles, duo.Cycles)
	}
	if len(duo.CoreHashes) != 2 {
		t.Fatalf("2-core run exported %d core hashes", len(duo.CoreHashes))
	}
	if solo.CoreHashes[0] != duo.CoreHashes[0] {
		t.Errorf("core-0 sub-hash: solo %016x != duo %016x", solo.CoreHashes[0], duo.CoreHashes[0])
	}
	if solo.StateHash == duo.StateHash {
		t.Error("combined hash ignored the extra core's state")
	}
}

// coRunApp composes the canonical 2-core multi-programmed workload:
// PageRank on core 0, spCG on core 1, disjoint address slices, one
// barrier group per job.
func coRunApp(t *testing.T) *apps.App {
	t.Helper()
	app, err := multicore.Compose(apps.ScaleTest, []multicore.JobSpec{
		{Workload: "pagerank", Input: "urand"},
		{Workload: "spcg", Input: "bbmat"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// coRunConfig is the full multicore machine for the composed workload:
// per-core prefetchers, coherence, a 2-bank LLC and the cooperative
// cross-core prefetcher.
func coRunConfig() Config {
	cfg := Test()
	cfg.Cores = 2
	cfg.PerCorePrefetchers = []PrefetcherKind{PFRnR, PFNextLine}
	cfg.Coherence = true
	cfg.LLCBanks = 2
	cfg.CrossCore = true
	return cfg
}

// TestCoRunAuditClean runs the composed 2-core workload on the full
// multicore machine under the invariant checker: coherence laws, banked
// LLC conservation and the per-core RnR laws all sweep clean, and the
// per-group iteration bookkeeping reaches the result.
func TestCoRunAuditClean(t *testing.T) {
	cfg := coRunConfig()
	cfg.Audit = auditCfg()
	s, err := New(cfg, coRunApp(t))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RunAll()
	if err != nil {
		t.Fatalf("audited co-run failed: %v", err)
	}
	if s.Audit().Checks() == 0 {
		t.Fatal("auditor attached but never swept")
	}
	if len(r.GroupIterEnd) != 2 {
		t.Fatalf("co-run exported %d iteration groups, want 2", len(r.GroupIterEnd))
	}
	for g, ends := range r.GroupIterEnd {
		if len(ends) == 0 {
			t.Errorf("group %d recorded no iteration ends", g)
		}
	}
	if len(r.CoreL2) != 2 {
		t.Fatalf("co-run exported %d per-core L2 sections, want 2", len(r.CoreL2))
	}
	for c, l2 := range r.CoreL2 {
		if l2.DemandAccesses == 0 {
			t.Errorf("core %d's private L2 saw no demand traffic", c)
		}
	}
	if r.CrossCore == nil || r.CrossCore.Trained == 0 {
		t.Error("cross-core prefetcher never trained on the LLC miss streams")
	}
}

// TestCoRunEngineDifferential extends the event-vs-stepped safety net to
// the full multicore machine: banked LLC wakeups, barrier groups and the
// cross-core prefetcher must not open a gap between the two engines.
func TestCoRunEngineDifferential(t *testing.T) {
	app := coRunApp(t)
	run := func(stepped bool) *Result {
		cfg := coRunConfig()
		cfg.ForceCycleStepped = stepped
		s, err := New(cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.RunAll()
		if err != nil {
			t.Fatalf("stepped=%v: %v", stepped, err)
		}
		return r
	}
	ev, st := run(false), run(true)
	if ev.StateHash != st.StateHash {
		t.Errorf("state hash: event %016x != stepped %016x", ev.StateHash, st.StateHash)
	}
	if !reflect.DeepEqual(ev.CoreHashes, st.CoreHashes) {
		t.Errorf("core sub-hashes diverged: event %v, stepped %v", ev.CoreHashes, st.CoreHashes)
	}
	if !reflect.DeepEqual(ev, st) {
		t.Error("results diverged between engines beyond the hashes")
	}
}

// TestCoRunDeterministic pins run-to-run determinism of the composed
// machine, including the per-core sub-hashes the co-run experiment
// compares against solo runs.
func TestCoRunDeterministic(t *testing.T) {
	app := coRunApp(t)
	a := runOne(t, coRunConfig(), app)
	b := runOne(t, coRunConfig(), app)
	if a.StateHash != b.StateHash || !reflect.DeepEqual(a.CoreHashes, b.CoreHashes) {
		t.Errorf("co-run not deterministic: %016x/%v vs %016x/%v",
			a.StateHash, a.CoreHashes, b.StateHash, b.CoreHashes)
	}
}

// TestFuzzedCoherenceAuditClean drives the coherence directory with the
// fuzzer's 2-core traces — both cores store into one shared target
// region, the sharing pattern the composed co-runs (disjoint address
// slices) never produce — under the full audit sweep, on both engines.
// At least one seed must actually exercise invalidations, otherwise the
// harness is vacuous.
func TestFuzzedCoherenceAuditClean(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 42}
	if testing.Short() {
		seeds = seeds[:3]
	}
	var invalidations uint64
	for _, seed := range seeds {
		fc := audit.FuzzConfig{Seed: seed}.WithDefaults()
		app := audit.Fuzz(fc)
		var hashes [2]uint64
		for i, stepped := range []bool{false, true} {
			cfg := fuzzMachine(fc.Cores).WithPrefetcher(PFRnR)
			cfg.Coherence = true
			cfg.LLCBanks = 2
			cfg.CrossCore = true
			cfg.ForceCycleStepped = stepped
			s, err := New(cfg, app)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			r, err := s.RunAll()
			if err != nil {
				t.Errorf("seed %d (stepped=%v): %v", seed, stepped, err)
				for _, v := range s.Audit().Violations() {
					t.Logf("seed %d: %s", seed, v)
				}
				continue
			}
			hashes[i] = r.StateHash
			if !stepped && r.Coherence != nil {
				invalidations += r.Coherence.Invalidations
			}
		}
		if hashes[0] != hashes[1] {
			t.Errorf("seed %d: coherent machine diverged between engines: %016x vs %016x",
				seed, hashes[0], hashes[1])
		}
	}
	if invalidations == 0 {
		t.Error("no fuzz seed triggered a coherence invalidation; the harness is vacuous")
	}
}

// TestPerCorePrefetcherValidation covers the multicore config errors
// surfaced through New rather than panics.
func TestPerCorePrefetcherValidation(t *testing.T) {
	app := coRunApp(t)
	bad := []func(*Config){
		func(c *Config) { c.PerCorePrefetchers = []PrefetcherKind{PFRnR} },
		func(c *Config) { c.PerCorePrefetchers = []PrefetcherKind{PFRnR, "bogus"} },
		func(c *Config) { c.LLCBanks = 3 },
		func(c *Config) { c.LLCBanks = 2; c.IdealLLC = true; c.CrossCore = false; c.Coherence = false },
		func(c *Config) { c.CrossCore = true; c.LLCBanks = 0; c.Coherence = false; c.IdealLLC = true },
	}
	for i, mutate := range bad {
		cfg := coRunConfig()
		mutate(&cfg)
		if _, err := New(cfg, app); err == nil {
			t.Errorf("case %d: invalid multicore config accepted", i)
		} else if !testing.Short() {
			t.Logf("case %d: %v", i, err)
		}
	}
}
