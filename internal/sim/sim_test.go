package sim

import (
	"testing"

	"rnrsim/internal/apps"
	"rnrsim/internal/graph"
	"rnrsim/internal/rnr"
	"rnrsim/internal/sparse"
)

// testConfig is the miniature machine paired with tiny test inputs.
func testConfig() Config { return Test() }

func testApp(t *testing.T) *apps.App {
	t.Helper()
	g := graph.Uniform(1200, 6, 99)
	return apps.PageRank(g, "urand", apps.PageRankConfig{Cores: 4, Iterations: 4})
}

func runOne(t *testing.T, cfg Config, app *apps.App) *Result {
	t.Helper()
	r, err := Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBaselineRunCompletes(t *testing.T) {
	app := testApp(t)
	r := runOne(t, testConfig(), app)
	if r.Instructions != app.Instructions() {
		t.Errorf("retired %d instructions, trace has %d", r.Instructions, app.Instructions())
	}
	if r.Cycles == 0 || r.IPC() <= 0 {
		t.Errorf("cycles=%d ipc=%f", r.Cycles, r.IPC())
	}
	if r.L2.DemandMisses == 0 {
		t.Error("no L2 misses on a working set larger than the L2")
	}
	if r.DRAM.Reads == 0 {
		t.Error("no DRAM reads")
	}
	// Every iteration barrier must have opened.
	for i := 0; i < app.Iterations; i++ {
		if r.IterCycles(i) == 0 {
			t.Errorf("iteration %d has no recorded span", i)
		}
	}
}

func TestRnRBeatsBaselineOnUrand(t *testing.T) {
	app := testApp(t)
	base := runOne(t, testConfig(), app)
	rnrRes := runOne(t, testConfig().WithPrefetcher(PFRnR), app)

	if rnrRes.RnR.RecordedEntries == 0 {
		t.Fatal("RnR recorded nothing")
	}
	if rnrRes.RnR.Prefetches == 0 {
		t.Fatal("RnR issued no replay prefetches")
	}
	// Replay iterations must be faster than baseline's.
	if rnrRes.SteadyIterCycles() >= base.SteadyIterCycles() {
		t.Errorf("RnR steady iteration %.0f cycles >= baseline %.0f",
			rnrRes.SteadyIterCycles(), base.SteadyIterCycles())
	}
	if sp := rnrRes.ComposedSpeedup(base, 100); sp < 1.1 {
		t.Errorf("composed speedup %.2f, want > 1.1 on urand", sp)
	}
	// The paper's headline: accuracy and coverage both high.
	if acc := rnrRes.Accuracy(); acc < 0.8 {
		t.Errorf("RnR accuracy %.2f, want > 0.8", acc)
	}
	if cov := rnrRes.Coverage(base); cov < 0.3 {
		t.Errorf("RnR coverage %.2f, want > 0.3", cov)
	}
}

func TestRnRRecordMatchesReplayMisses(t *testing.T) {
	// The number of recorded entries should be close to the number of L2
	// misses of the target structure during the record iteration.
	app := testApp(t)
	res := runOne(t, testConfig().WithPrefetcher(PFRnR), app)
	if res.RnR.SeqOverflows != 0 {
		t.Errorf("sequence table overflowed %d times", res.RnR.SeqOverflows)
	}
	if res.RnR.RecordedWindows == 0 {
		t.Error("no division-table windows recorded")
	}
	if res.RnR.MetaWriteLines == 0 || res.RnR.MetaReadLines == 0 {
		t.Errorf("metadata traffic: %d writes, %d reads",
			res.RnR.MetaWriteLines, res.RnR.MetaReadLines)
	}
	if res.DRAM.MetaReads == 0 || res.DRAM.MetaWrites == 0 {
		t.Errorf("DRAM metadata: %d reads, %d writes", res.DRAM.MetaReads, res.DRAM.MetaWrites)
	}
}

func TestAllPrefetchersRunPageRank(t *testing.T) {
	app := testApp(t)
	base := runOne(t, testConfig(), app)
	for _, p := range AllPrefetchers {
		if p == PFNone {
			continue
		}
		res := runOne(t, testConfig().WithPrefetcher(p), app)
		if res.Instructions != base.Instructions {
			t.Errorf("%s retired %d instructions, baseline %d", p, res.Instructions, base.Instructions)
		}
		if p != PFNone && res.TotalPrefetches() == 0 && p != PFStream {
			t.Errorf("%s issued no prefetches", p)
		}
	}
}

func TestIdealLLCBoundsEveryone(t *testing.T) {
	app := testApp(t)
	base := runOne(t, testConfig(), app)
	cfgIdeal := testConfig()
	cfgIdeal.IdealLLC = true
	ideal := runOne(t, cfgIdeal, app)
	if ideal.Cycles >= base.Cycles {
		t.Errorf("ideal LLC (%d cycles) not faster than baseline (%d)", ideal.Cycles, base.Cycles)
	}
	rnrRes := runOne(t, testConfig().WithPrefetcher(PFRnR), app)
	// Ideal steady iterations should be at least as fast as RnR's.
	if ideal.SteadyIterCycles() > rnrRes.SteadyIterCycles()*1.2 {
		t.Errorf("ideal steady %.0f much slower than RnR %.0f",
			ideal.SteadyIterCycles(), rnrRes.SteadyIterCycles())
	}
}

func TestSpCGWithRnR(t *testing.T) {
	m := sparse.Stencil3D(8, 8, 8)
	app := apps.SpCG(m, "atmosmodj", apps.SpCGConfig{Cores: 4, Iterations: 4})
	base := runOne(t, testConfig(), app)
	res := runOne(t, testConfig().WithPrefetcher(PFRnR), app)
	if res.RnR.RecordedEntries == 0 {
		t.Fatal("spCG recorded nothing")
	}
	if res.SteadyIterCycles() >= base.SteadyIterCycles() {
		t.Errorf("spCG RnR steady %.0f >= baseline %.0f",
			res.SteadyIterCycles(), base.SteadyIterCycles())
	}
}

func TestWindowControlAblation(t *testing.T) {
	// Window control must beat no-control on replay iterations (Fig. 10).
	app := testApp(t)
	mk := func(ctl rnr.TimingControl) *Result {
		cfg := testConfig().WithPrefetcher(PFRnR)
		cfg.RnRControl = ctl
		return runOne(t, cfg, app)
	}
	none := mk(rnr.NoControl)
	win := mk(rnr.WindowControl)
	pace := mk(rnr.WindowPaceControl)
	// The full mechanism (window+pace) must clearly beat uncontrolled
	// replay; plain window control sits in between at bench scale but is
	// noisy at this tiny test scale, so only the direction is asserted.
	if pace.SteadyIterCycles() >= none.SteadyIterCycles() {
		t.Errorf("window+pace %.0f cycles >= no control %.0f",
			pace.SteadyIterCycles(), none.SteadyIterCycles())
	}
	if win.SteadyIterCycles() > none.SteadyIterCycles()*1.15 {
		t.Errorf("window control %.0f cycles far worse than no control %.0f",
			win.SteadyIterCycles(), none.SteadyIterCycles())
	}
	if pace.Accuracy() <= none.Accuracy() {
		t.Errorf("pace accuracy %.2f <= no-control accuracy %.2f",
			pace.Accuracy(), none.Accuracy())
	}
	// No-control should show poor timeliness: most prefetches early or
	// out of window.
	tl := none.TimelinessBreakdown()
	if tl.OnTime > 0.7 {
		t.Errorf("no-control on-time fraction %.2f unexpectedly high", tl.OnTime)
	}
}

func TestResultMetricsSanity(t *testing.T) {
	app := testApp(t)
	base := runOne(t, testConfig(), app)
	res := runOne(t, testConfig().WithPrefetcher(PFNextLine), app)
	if acc := res.Accuracy(); acc < 0 || acc > 1 {
		t.Errorf("accuracy %f out of range", acc)
	}
	if cov := res.Coverage(base); cov < 0 || cov > 1 {
		t.Errorf("coverage %f out of range", cov)
	}
	tl := res.TimelinessBreakdown()
	if sum := tl.OnTime + tl.Early + tl.Late + tl.OutOfWindow; sum > 1.5 {
		t.Errorf("timeliness fractions sum to %f", sum)
	}
	if base.Coverage(nil) != 0 {
		t.Error("coverage vs nil baseline should be 0")
	}
	if s := res.String(); s == "" {
		t.Error("empty String()")
	}
}

func TestConfigMismatchRejected(t *testing.T) {
	app := testApp(t)
	cfg := testConfig()
	cfg.Cores = 2
	if _, err := New(cfg, app); err == nil {
		t.Error("New accepted core-count mismatch")
	}
	bad := testConfig()
	bad.Prefetcher = "nope"
	if _, err := New(bad, app); err == nil {
		t.Error("New accepted unknown prefetcher")
	}
}

func TestDeterminism(t *testing.T) {
	app := testApp(t)
	a := runOne(t, testConfig().WithPrefetcher(PFRnR), app)
	b := runOne(t, testConfig().WithPrefetcher(PFRnR), app)
	if a.Cycles != b.Cycles || a.L2.DemandMisses != b.L2.DemandMisses ||
		a.RnR.Prefetches != b.RnR.Prefetches {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}
