package sim

import (
	"context"
	"fmt"

	"rnrsim/internal/apps"
	"rnrsim/internal/audit"
	"rnrsim/internal/cache"
	"rnrsim/internal/coherence"
	"rnrsim/internal/cpu"
	"rnrsim/internal/dram"
	"rnrsim/internal/mem"
	"rnrsim/internal/obs"
	"rnrsim/internal/prefetch"
	"rnrsim/internal/rnr"
	"rnrsim/internal/telemetry"
	"rnrsim/internal/trace"
)

// System is one assembled machine bound to one workload. Build it with
// New, run it with Run (or step it with Tick for tests).
type System struct {
	cfg Config
	app *apps.App

	cores    []*cpu.Core
	l1s      []*cache.Cache
	l2s      []*cache.Cache
	llcs     []*cache.Cache // LLC banks; one element for the monolithic LLC
	ideal    *idealLLC
	mc       *dram.Controller
	engines  []*rnr.Engine
	prefs    []prefetch.Prefetcher
	droplets []*prefetch.Droplet // for resolver rebinding on base swaps

	// Multicore extensions (nil when the config leaves them off).
	dir   *coherence.Directory // MESI-lite directory over the private caches
	xcore *prefetch.CrossCore  // cooperative LLC prefetcher
	// staleHits counts demand hits on private lines the directory lost
	// track of — always zero under the coherence protocol; audited.
	staleHits uint64

	issueFns []prefetch.IssueFunc // one per core, built once

	ctx *ctxSwitch

	cycle uint64
	// Barrier groups: groups[g] lists the member cores of barrier g,
	// coreGrp/coreSlot locate a core inside its group. Single-program
	// apps have one group holding every core (the legacy shape); the
	// multicore composer gives each job its own group so co-scheduled
	// programs free-run against each other. Group 0's per-iteration
	// bookkeeping occupies the legacy Result/state-hash positions.
	barriers  []*barrier
	groups    [][]int
	coreGrp   []int
	coreSlot  []int
	iterEnd   [][]uint64
	iterSnaps [][]cache.Stats // cumulative group-L2 stats at each iteration end

	// Telemetry (nil = disabled; the Tick fast path is one pointer
	// compare). See internal/telemetry and registerTelemetry.
	tel         *telemetry.Recorder
	sampleEvery uint64
	lastIterEnd []uint64 // per barrier group, for iteration spans

	// Audit (nil = disabled; same one-pointer-compare fast path). See
	// internal/audit and registerAudit.
	aud        *audit.Checker
	auditEvery uint64

	// Flight recorder (nil = disabled; the cache-event fast path is one
	// pointer compare). See internal/obs and registerObs.
	obsRec *obs.Recorder

	// Tick fast-path gates, fixed at construction: ctxOn skips the
	// context-switch state machine when injection is disabled, and
	// cycleDriven[c] skips the per-cycle prefetcher dispatch for the many
	// prefetchers whose OnCycle is a no-op (only DROPLET and the RnR
	// engine issue from the cycle loop). Context switches swap prefetcher
	// *instances*, never kinds, so the flags stay valid across swaps.
	ctxOn       bool
	cycleDriven []bool

	// Event-driven scheduler state (see runEventDriven). pfWake caches
	// the CycleDriven assertion per core (refreshed whenever the
	// prefetcher instance is swapped); nil with cycleDriven set means the
	// prefetcher's wakeup is unknown and every cycle must be simulated.
	pfWake       []prefetch.CycleDriven
	nextSampleAt uint64 // next telemetry sample event (WakeupNever when off)
	nextAuditAt  uint64 // next audit sweep event (WakeupNever when off)
	ticked       uint64 // cycles actually simulated (diagnostics/tests only)

	// Cached per-component wakeups. A cached value stays valid until the
	// component ticks (the scheduler clears the OK flag) or receives
	// external input (the component sets its wake-dirty flag, checked at
	// every use via TakeWakeDirty). Cores additionally invalidate when
	// their L1 ticks (Core.Wakeup probes L1 demand capacity) and when the
	// iteration barrier opens or a context switch fires (both change the
	// fetch gate without touching the core).
	coreWake   []uint64
	l1Wake     []uint64
	l2Wake     []uint64
	llcWake    []uint64
	mcWake     uint64
	coreWakeOK []bool
	l1WakeOK   []bool
	l2WakeOK   []bool
	llcWakeOK  []bool
	mcWakeOK   bool

	// Done memoisation: Tick sets doneDirty, Done recomputes at most once
	// per tick, and coresDone latches the (monotone) all-cores-drained
	// scan so steady-state Done checks skip the core loop entirely.
	doneDirty  bool
	doneCached bool
	coresDone  bool

	// coreCycle mirrors the cycle a core's private domain is currently
	// simulating. The per-core issue/metadata closures stamp requests from
	// it instead of s.cycle: during a parallel domain span (see
	// parallel.go) each domain runs at its own local cycle while s.cycle
	// still holds the span's start, and a stale stamp would skew the
	// lead-time attribution in the flight recorder — a hash-visible
	// divergence, not a data race. The serial engines keep it equal to
	// s.cycle, so behaviour is unchanged when spans never form.
	coreCycle []uint64

	// par is the parallel per-core execution state (nil unless the config
	// enables CoreParallel and the machine shape permits it). parSpans /
	// parSpanCycles count executed windows for diagnostics and tests.
	par           *corePool
	parSpans      uint64
	parSpanCycles uint64
}

// WakeupNever is re-exported for components and tests that interact with
// the scheduler through the sim package.
const WakeupNever = mem.WakeupNever

// barrier implements the SPMD iteration barrier of §VI for one barrier
// group: member workers wait at iteration ends until every member (or a
// drained member) arrives. A single-program app has one barrier over
// every core; a composed multi-programmed app has one per job.
type barrier struct {
	members []int  // core ids, fixed at construction
	waiting []bool // parallel to members
	iter    []int32
	done    func(core int) bool
	onOpen  func(iter int32)
	// flipped records that an open released at least one waiting core —
	// their fetch gates changed without any core-local event, so the
	// event scheduler must invalidate cached core wakeups.
	flipped bool
}

func newBarrier(members []int) *barrier {
	return &barrier{
		members: members,
		waiting: make([]bool, len(members)),
		iter:    make([]int32, len(members)),
	}
}

func (b *barrier) arrive(slot int, iter int32) {
	b.waiting[slot] = true
	b.iter[slot] = iter
	b.maybeOpen()
}

func (b *barrier) maybeOpen() {
	for i, c := range b.members {
		if !b.waiting[i] && !b.done(c) {
			return
		}
	}
	iter := int32(-1)
	for i := range b.waiting {
		if b.waiting[i] {
			iter = b.iter[i]
			b.flipped = true
		}
		b.waiting[i] = false
	}
	if b.onOpen != nil && iter >= 0 {
		b.onOpen(iter)
	}
}

func (b *barrier) gated(slot int) bool { return b.waiting[slot] }

// New wires a machine for the given workload.
func New(cfg Config, app *apps.App) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Cores != app.Cores {
		return nil, fmt.Errorf("sim: config has %d cores, app %q has %d", cfg.Cores, app.Name, app.Cores)
	}
	s := &System{cfg: cfg, app: app, mc: dram.New(cfg.DRAM)}
	if err := s.buildGroups(); err != nil {
		return nil, err
	}
	s.ctx = newCtxSwitch(cfg.CtxSwitch)
	s.ctxOn = cfg.CtxSwitch.Period != 0
	s.tel = cfg.Telemetry
	s.sampleEvery = cfg.Telemetry.SampleInterval()
	s.mc.Tel = s.tel

	// Shared LLC (real or ideal) on top of DRAM. LLCBanks > 1 splits the
	// capacity into independently scheduled banks, line-interleaved; the
	// single-bank path is byte-identical to the historical monolithic
	// LLC (one-element slice, same tick position, same hash fold).
	var llcBackend mem.Backend
	if cfg.IdealLLC {
		s.ideal = newIdealLLC(cfg.LLC.Latency, s.mc)
		llcBackend = s.ideal
	} else {
		banks := cfg.LLCBanks
		if banks < 2 {
			banks = 1
		}
		s.llcs = make([]*cache.Cache, banks)
		for b := range s.llcs {
			bcfg := cfg.LLC
			if banks > 1 {
				bcfg.Name = fmt.Sprintf("%s.b%d", cfg.LLC.Name, b)
				bcfg.SizeBytes = cfg.LLC.SizeBytes / uint64(banks)
			}
			s.llcs[b] = cache.New(bcfg)
			s.llcs[b].SetLower(s.mc)
		}
		if banks == 1 {
			llcBackend = s.llcs[0]
		} else {
			llcBackend = &bankRouter{sys: s}
		}
	}
	s.llcWake = make([]uint64, len(s.llcs))
	s.llcWakeOK = make([]bool, len(s.llcs))

	sources := app.Sources()
	s.cores = make([]*cpu.Core, cfg.Cores)
	s.l1s = make([]*cache.Cache, cfg.Cores)
	s.l2s = make([]*cache.Cache, cfg.Cores)
	s.engines = make([]*rnr.Engine, cfg.Cores)
	s.prefs = make([]prefetch.Prefetcher, cfg.Cores)
	s.droplets = make([]*prefetch.Droplet, cfg.Cores)
	s.issueFns = make([]prefetch.IssueFunc, cfg.Cores)
	s.cycleDriven = make([]bool, cfg.Cores)
	s.pfWake = make([]prefetch.CycleDriven, cfg.Cores)
	s.coreWake = make([]uint64, cfg.Cores)
	s.l1Wake = make([]uint64, cfg.Cores)
	s.l2Wake = make([]uint64, cfg.Cores)
	s.coreWakeOK = make([]bool, cfg.Cores)
	s.l1WakeOK = make([]bool, cfg.Cores)
	s.l2WakeOK = make([]bool, cfg.Cores)
	s.coreCycle = make([]uint64, cfg.Cores)

	for c := 0; c < cfg.Cores; c++ {
		l2cfg := cfg.L2
		l2cfg.Name = fmt.Sprintf("L2.%d", c)
		l2 := cache.New(l2cfg)
		l2.SetLower(llcBackend)
		l1cfg := cfg.L1
		l1cfg.Name = fmt.Sprintf("L1D.%d", c)
		l1 := cache.New(l1cfg)
		l1.SetLower(l2)
		core := cpu.New(c, cfg.CPU, sources[c], l1)

		s.cores[c], s.l1s[c], s.l2s[c] = core, l1, l2
		s.wirePrefetcher(c)
		s.wireCore(c)
	}
	for g := range s.barriers {
		b := s.barriers[g]
		b.done = func(core int) bool { return s.cores[core].Done() }
		b.onOpen = s.makeOnOpen(g)
	}
	if cfg.Coherence {
		s.wireCoherence()
	}
	if cfg.CrossCore {
		s.wireCrossCore()
	}
	s.registerObs()
	s.registerTelemetry()
	s.registerAudit()
	// Sampling and audit sweeps become scheduled events so the event-
	// driven loop fires them at exactly the cycles the stepped loop would
	// (the scheduler never jumps past nextSampleAt/nextAuditAt).
	s.nextSampleAt = WakeupNever
	if s.tel != nil {
		s.nextSampleAt = s.sampleEvery
	}
	s.nextAuditAt = WakeupNever
	if s.aud != nil {
		s.nextAuditAt = s.auditEvery
	}
	s.doneDirty = true
	return s, nil
}

// prefKind resolves core c's prefetcher kind: the per-core assignment
// when Config.PerCorePrefetchers is set, the global kind otherwise.
func (s *System) prefKind(c int) PrefetcherKind {
	if len(s.cfg.PerCorePrefetchers) > 0 {
		return s.cfg.PerCorePrefetchers[c]
	}
	return s.cfg.Prefetcher
}

// wirePrefetcher builds the per-core prefetcher stack for prefKind(c).
func (s *System) wirePrefetcher(c int) {
	cfg, app := s.cfg, s.app
	kind := s.prefKind(c)
	// Only these kinds do per-cycle work in OnCycle; for every other
	// prefetcher the System.Tick loop skips the interface dispatch.
	switch kind {
	case PFDroplet, PFRnR, PFRnRCombined:
		s.cycleDriven[c] = true
	default:
		s.cycleDriven[c] = false
	}
	switch kind {
	case PFNone:
		s.prefs[c] = prefetch.Nop{}
	case PFNextLine:
		s.prefs[c] = prefetch.NewNextLine(1)
	case PFStream:
		s.prefs[c] = prefetch.NewStream()
	case PFGHB:
		s.prefs[c] = prefetch.NewGHB()
	case PFMISB:
		m := prefetch.NewMISB()
		m.Meta = s.metaHook(c)
		s.prefs[c] = m
	case PFBingo:
		s.prefs[c] = prefetch.NewBingo()
	case PFBestOffset:
		s.prefs[c] = prefetch.NewBestOffset()
	case PFDomino:
		s.prefs[c] = prefetch.NewDomino()
	case PFSteMS:
		s.prefs[c] = prefetch.NewSteMS()
	case PFDroplet:
		d := prefetch.NewDroplet()
		edge := app.EdgeRegion
		d.EdgeRegion = func(l mem.Addr) bool { return edge.Contains(l) }
		d.Resolve = app.Resolve
		s.droplets[c] = d
		s.prefs[c] = d
	case PFIMP:
		p := prefetch.NewIMP()
		edge := app.EdgeRegion
		p.IndexRegion = func(l mem.Addr) bool { return edge.Contains(l) }
		p.Resolve = app.Resolve
		s.prefs[c] = p
	case PFRnR, PFRnRCombined:
		e := rnr.NewEngine(c, s.mc)
		e.Control = cfg.RnRControl
		e.DefaultWindow = cfg.RnRWindow
		if e.DefaultWindow == 0 {
			e.DefaultWindow = cfg.DefaultWindowLines()
		}
		// Pace control's prefetch distance: a quarter of the L2, far
		// enough to hide fill latency, small enough that pending lines
		// survive until their demand.
		e.LeadEntries = cfg.RnRLead
		if e.LeadEntries == 0 {
			e.LeadEntries = int(cfg.L2.SizeBytes / 64 / 4)
		}
		// And in reads: at most one L2's worth of demand churn may pass
		// between a prefetch and its demand.
		e.LeadReadsCap = int(cfg.L2.SizeBytes / 64)
		e.RecordAllAccesses = cfg.RnRRecordAll
		if cfg.RnRPrefetchToLLC {
			// §III ablation: the LLC-destination variant widens the lead
			// bounds to the LLC's capacity.
			e.LeadEntries = int(cfg.LLC.SizeBytes / 64 / 4)
			e.LeadReadsCap = int(cfg.LLC.SizeBytes / 64)
		}
		s.engines[c] = e
		if kind == PFRnRCombined {
			// RnR for the target structure, next-line for everything
			// else, fenced out of the RnR range (§V-D).
			nl := &prefetch.RegionFilter{
				Inner:    prefetch.NewNextLine(1),
				Excluded: e.InRange,
			}
			s.prefs[c] = prefetch.Combine{e, nl}
		} else {
			s.prefs[c] = e
		}
	}
	// Cache the CycleDriven assertion for the scheduler. wirePrefetcher
	// also runs on context switch-in (instance swap), so the cache stays
	// in sync with s.prefs[c].
	s.pfWake[c] = nil
	if s.cycleDriven[c] {
		if cd, ok := s.prefs[c].(prefetch.CycleDriven); ok {
			s.pfWake[c] = cd
		}
	}
}

// wireCore connects the core's hooks, the L2's hooks and the prefetcher.
func (s *System) wireCore(c int) {
	core, l2 := s.cores[c], s.l2s[c]
	engine := s.engines[c]

	issue := s.issueFunc(c)
	s.issueFns[c] = issue
	// The hooks resolve s.prefs[c] at call time so a context switch can
	// swap in a freshly-reset prefetcher (see ctxswitch.go).
	l2.OnAccess = func(ev cache.AccessInfo) { s.prefs[c].OnAccess(ev, issue) }
	l2.OnFill = func(line mem.Addr, prefetchFill bool, cycle uint64) {
		s.prefs[c].OnFill(line, prefetchFill, cycle)
	}
	if engine != nil {
		core.PreAccess = engine.PreAccess
		l2.OnEvict = engine.OnEvict
	}

	grpBarrier, slot := s.barriers[s.coreGrp[c]], s.coreSlot[c]
	core.OnMarker = func(rec trace.Record, cycle uint64) {
		if engine != nil {
			engine.HandleMarker(rec, cycle)
		}
		if rec.Marker == trace.MarkAddrBaseSet && rec.Aux == 0 &&
			s.droplets[c] != nil && s.app.MakeResolver != nil {
			s.droplets[c].Resolve = s.app.MakeResolver(rec.Addr)
		}
		if rec.Marker == trace.MarkIterEnd {
			grpBarrier.arrive(slot, rec.Aux)
		}
	}
	core.Gate = func() bool { return !grpBarrier.gated(slot) }
}

// makeOnOpen builds barrier group g's open hook: per-iteration cycle
// stamps and cumulative L2 snapshots over the group's members. Group 0
// additionally drives the flight recorder's iteration axis and the
// OnIteration progress callback, preserving their single-group
// semantics (a composed run's extra groups keep their own bookkeeping
// but do not multiplex those single-stream consumers).
func (s *System) makeOnOpen(g int) func(iter int32) {
	return func(iter int32) {
		// The iteration tables are indexed by the trace's iteration
		// number; a corrupt or adversarial trace (the fuzzer emits
		// MarkIterEnd with Aux around 2^20) must not be able to grow
		// them without bound — each slot carries a cache.Stats snapshot,
		// so an unchecked append was an OOM (found by fuzzing). Real
		// workloads run a few dozen iterations; past the cap the barrier
		// still opens, only the bookkeeping is dropped.
		if int(iter) < maxTrackedIterations {
			for int(iter) >= len(s.iterEnd[g]) {
				s.iterEnd[g] = append(s.iterEnd[g], 0)
				s.iterSnaps[g] = append(s.iterSnaps[g], cache.Stats{})
			}
			s.iterEnd[g][iter] = s.cycle
			var snap cache.Stats
			for _, c := range s.groups[g] {
				snap.Add(s.l2s[c].Stats)
			}
			s.iterSnaps[g][iter] = snap
		}
		if g == 0 {
			if s.obsRec != nil {
				// The recorder caps hostile indices itself.
				s.obsRec.IterEnd(int(iter), s.cycle)
			}
			if s.cfg.OnIteration != nil {
				s.cfg.OnIteration(int(iter), s.cycle)
			}
		}
		if s.tel != nil {
			// One span per iteration per group, ending exactly at
			// Result.IterEnd[iter] (group 0 keeps the historical track
			// name; extra groups get their own track).
			track := "iterations"
			if g > 0 {
				track = fmt.Sprintf("iterations.g%d", g)
			}
			s.tel.Span(track, fmt.Sprintf("iter %d", iter), s.lastIterEnd[g], s.cycle)
			s.lastIterEnd[g] = s.cycle
		}
	}
}

// buildGroups resolves the app's barrier groups (nil = one SPMD group
// over every core), validates that they partition the cores, and sizes
// the per-group iteration bookkeeping.
func (s *System) buildGroups() error {
	groups := s.app.Groups
	if len(groups) == 0 {
		all := make([]int, s.cfg.Cores)
		for c := range all {
			all[c] = c
		}
		groups = [][]int{all}
	}
	s.groups = groups
	s.coreGrp = make([]int, s.cfg.Cores)
	s.coreSlot = make([]int, s.cfg.Cores)
	for c := range s.coreGrp {
		s.coreGrp[c] = -1
	}
	s.barriers = make([]*barrier, len(groups))
	for g, members := range groups {
		if len(members) == 0 {
			return fmt.Errorf("sim: app %q barrier group %d is empty", s.app.Name, g)
		}
		for slot, c := range members {
			if c < 0 || c >= s.cfg.Cores {
				return fmt.Errorf("sim: app %q barrier group %d names core %d of %d", s.app.Name, g, c, s.cfg.Cores)
			}
			if s.coreGrp[c] != -1 {
				return fmt.Errorf("sim: app %q assigns core %d to two barrier groups", s.app.Name, c)
			}
			s.coreGrp[c] = g
			s.coreSlot[c] = slot
		}
		s.barriers[g] = newBarrier(members)
	}
	for c, g := range s.coreGrp {
		if g == -1 {
			return fmt.Errorf("sim: app %q leaves core %d without a barrier group", s.app.Name, c)
		}
	}
	s.iterEnd = make([][]uint64, len(groups))
	s.iterSnaps = make([][]cache.Stats, len(groups))
	s.lastIterEnd = make([]uint64, len(groups))
	return nil
}

// bankOf selects the LLC bank covering line (bank 0 when monolithic):
// the lowest line-address bits above the 64 B offset interleave lines
// round-robin across banks.
func (s *System) bankOf(line mem.Addr) int {
	return int((uint64(line) >> 6) & uint64(len(s.llcs)-1))
}

// bankRouter is the mem.Backend the private L2s sit on when the LLC is
// banked: it forwards each request to the bank owning its line.
type bankRouter struct{ sys *System }

func (r *bankRouter) TryEnqueue(req *mem.Request) bool {
	return r.sys.llcs[r.sys.bankOf(req.Line)].TryEnqueue(req)
}

// wireCoherence attaches the MESI-lite directory: every private fill
// registers a sharer, a store invalidates remote private copies, and a
// private eviction drops the sharer bit once neither private level
// holds the line (the hierarchy is non-inclusive, so the bit must
// survive as long as either level has it). Invalidations bypass OnEvict
// by design — remote stores must not perturb RnR's eviction
// bookkeeping — so with one core, where no remote store exists, the
// wiring is observationally inert and state hashes are unchanged.
func (s *System) wireCoherence() {
	s.dir = coherence.NewDirectory(s.cfg.Cores)
	for c := range s.cores {
		c := c
		l1, l2 := s.l1s[c], s.l2s[c]
		l1.OnAccess = func(ev cache.AccessInfo) {
			if ev.Type == mem.ReqStore {
				for _, v := range s.dir.OnStore(c, ev.Line) {
					s.l1s[v].Invalidate(ev.Line)
					s.l2s[v].Invalidate(ev.Line)
				}
			} else if ev.Hit && s.aud != nil && !s.dir.HasSharer(c, ev.Line) {
				// A demand hit on a line the directory does not credit
				// to this core is a stale copy a remote store could
				// never invalidate. Checked only under audit: the map
				// lookup is too hot for unaudited runs. The sweep in
				// registerAudit reports the count.
				s.staleHits++
			}
		}
		l1.OnFill = func(line mem.Addr, _ bool, _ uint64) { s.dir.OnFill(c, line) }
		l1.OnEvict = func(line mem.Addr, _ bool, _ uint64) {
			if !l2.Lookup(line) {
				s.dir.OnEvict(c, line)
			}
		}
		prevFill := l2.OnFill
		l2.OnFill = func(line mem.Addr, pf bool, cycle uint64) {
			s.dir.OnFill(c, line)
			if prevFill != nil {
				prevFill(line, pf, cycle)
			}
		}
		prevEvict := l2.OnEvict
		l2.OnEvict = func(line mem.Addr, unused bool, cycle uint64) {
			if !l1.Lookup(line) {
				s.dir.OnEvict(c, line)
			}
			if prevEvict != nil {
				prevEvict(line, unused, cycle)
			}
		}
	}
}

// wireCrossCore attaches the cooperative LLC prefetcher: each bank's
// demand-miss stream trains the shared correlation table, and predicted
// successors are issued into whichever bank owns them, tagged with the
// consuming core. Purely reactive — it participates in the event
// scheduler only through the wake-dirty flags its TryPrefetch calls
// set on the receiving banks.
func (s *System) wireCrossCore() {
	s.xcore = prefetch.NewCrossCore(s.cfg.Cores, s.cfg.CrossCoreEntries)
	s.xcore.Issue = func(core int, line mem.Addr) bool {
		req := mem.NewRequest(mem.ReqPrefetch, line, 0, core, s.cycle)
		return s.llcs[s.bankOf(line)].TryPrefetch(req)
	}
	for b := range s.llcs {
		bank := s.llcs[b]
		bank.OnAccess = func(ev cache.AccessInfo) {
			// notifyAccess already filters writebacks and prefetches;
			// what remains is the demand traffic the L2s missed. Merges
			// joined an in-flight miss that already trained the table.
			if !ev.Hit && !ev.Merged {
				s.xcore.OnMiss(ev)
			}
		}
	}
}

// issueFunc returns the prefetch-issue path into core c's L2 (or the
// shared LLC under the §III destination ablation).
func (s *System) issueFunc(c int) prefetch.IssueFunc {
	// Issue stamps read the per-core cycle mirror, not s.cycle: during a
	// parallel domain span s.cycle lags at the span start while the domain
	// runs ahead at its own local cycle (see coreCycle).
	if s.cfg.RnRPrefetchToLLC && len(s.llcs) > 0 {
		return func(line mem.Addr) bool {
			req := mem.NewRequest(mem.ReqPrefetch, line, 0, c, s.coreCycle[c])
			return s.llcs[s.bankOf(line)].TryPrefetch(req)
		}
	}
	l2 := s.l2s[c]
	return func(line mem.Addr) bool {
		req := mem.NewRequest(mem.ReqPrefetch, line, 0, c, s.coreCycle[c])
		return l2.TryPrefetch(req)
	}
}

// metaHook returns MISB's off-chip metadata path.
func (s *System) metaHook(c int) func(write bool, addr mem.Addr) {
	return func(write bool, addr mem.Addr) {
		t := mem.ReqMetaRead
		if write {
			t = mem.ReqMetaWrite
		}
		req := mem.NewRequest(t, addr, 0, c, s.coreCycle[c])
		// Best effort: a full queue drops the transaction; the traffic
		// model is what matters for MISB.
		s.mc.TryEnqueue(req)
	}
}

// Tick advances the machine one cycle.
func (s *System) Tick() {
	s.cycle++
	s.ticked++
	s.doneDirty = true
	now := s.cycle
	switchedOut := false
	if s.ctxOn {
		switchedOut = s.ctx.tick(s, now)
	}
	if !switchedOut {
		// The process is descheduled while switched out: cores make no
		// progress (the memory system below still drains).
		for c := range s.cores {
			s.cores[c].Tick(now)
		}
	}
	for c := range s.cores {
		s.coreCycle[c] = now
		s.l1s[c].Tick(now)
		s.l2s[c].Tick(now)
		if s.cycleDriven[c] {
			s.prefs[c].OnCycle(now, s.issueFns[c])
		}
	}
	for _, llc := range s.llcs {
		llc.Tick(now)
	}
	if s.ideal != nil {
		s.ideal.Tick(now)
	}
	s.mc.Tick(now)
	for _, b := range s.barriers {
		b.maybeOpen()
	}
	if s.tel != nil && now >= s.nextSampleAt {
		// Record the last crossed sampleEvery multiple, not now: a caller
		// stepping the clock in jumps may land past the multiple, and the
		// sample must carry the cycle stamp the stepped engine would have
		// used. (The event-driven scheduler additionally never jumps past
		// nextSampleAt, because probes read live state — e.g. cpu ipc
		// reads Stats.Cycles — so the machine must be ticked at exactly
		// the sample cycle for the values to match the stepped engine.)
		stamp := now - now%s.sampleEvery
		s.tel.Sample(stamp)
		s.nextSampleAt = stamp + s.sampleEvery
	}
	if s.aud != nil && now >= s.nextAuditAt {
		s.aud.Check(now)
		s.nextAuditAt = now - now%s.auditEvery + s.auditEvery
	}
}

// refreshGates invalidates cached core wakeups when the iteration
// barrier released waiting cores: their fetch gates changed without any
// core-local event, which cached values cannot see.
func (s *System) refreshGates() {
	flipped := false
	for _, b := range s.barriers {
		if b.flipped {
			b.flipped = false
			flipped = true
		}
	}
	if flipped {
		for i := range s.coreWakeOK {
			s.coreWakeOK[i] = false
		}
	}
}

// The *WakeAt accessors return the component's wakeup, recomputing only
// when the cached value is gone (component ticked) or stale (external
// input set the component's wake-dirty flag). Frozen components — the
// common case — cost two boolean loads per cycle instead of a wakeup
// evaluation.

func (s *System) coreWakeAt(i int, now uint64) uint64 {
	if s.cores[i].TakeWakeDirty() || !s.coreWakeOK[i] {
		s.coreWake[i] = s.cores[i].Wakeup(now)
		s.coreWakeOK[i] = true
	}
	return s.coreWake[i]
}

func (s *System) l1WakeAt(i int, now uint64) uint64 {
	if s.l1s[i].TakeWakeDirty() || !s.l1WakeOK[i] {
		s.l1Wake[i] = s.l1s[i].Wakeup(now)
		s.l1WakeOK[i] = true
	}
	return s.l1Wake[i]
}

func (s *System) l2WakeAt(i int, now uint64) uint64 {
	if s.l2s[i].TakeWakeDirty() || !s.l2WakeOK[i] {
		s.l2Wake[i] = s.l2s[i].Wakeup(now)
		s.l2WakeOK[i] = true
	}
	return s.l2Wake[i]
}

func (s *System) llcWakeAt(b int, now uint64) uint64 {
	if s.llcs[b].TakeWakeDirty() || !s.llcWakeOK[b] {
		s.llcWake[b] = s.llcs[b].Wakeup(now)
		s.llcWakeOK[b] = true
	}
	return s.llcWake[b]
}

func (s *System) mcWakeAt(now uint64) uint64 {
	if s.mc.TakeWakeDirty() || !s.mcWakeOK {
		s.mcWake = s.mc.Wakeup(now)
		s.mcWakeOK = true
	}
	return s.mcWake
}

// tickGated simulates one cycle like Tick, but consults each component's
// wakeup just-in-time — in tick order, so work enqueued upstream earlier
// in the same cycle is visible — and skips the component's Tick when it
// has nothing due, charging the one-cycle accounting (Core.SkipIdle,
// AdvanceClock) instead. This is the event engine's dense-region fast
// path: in regions where *some* component acts every cycle (so the
// global next-wakeup jump degenerates to stepping), most individual
// components are still idle, and a skipped component Tick is provably a
// no-op by the same wakeup contract that justifies multi-cycle jumps.
// State evolution is byte-identical to Tick.
func (s *System) tickGated() {
	s.cycle++
	s.ticked++
	s.doneDirty = true
	now := s.cycle
	prev := now - 1
	switchedOut := false
	if s.ctxOn {
		outBefore := s.ctx.out
		switchedOut = s.ctx.tick(s, now)
		if s.ctx.out != outBefore {
			// A switch fired: fetch gating changed under every core.
			for i := range s.coreWakeOK {
				s.coreWakeOK[i] = false
			}
		}
	}
	if !switchedOut {
		for c := range s.cores {
			// A barrier release earlier in this loop (the last worker's
			// marker dispatch) un-gates cores later in tick order, so the
			// flip check runs per core, not once per cycle.
			s.refreshGates()
			if s.coreWakeAt(c, prev) <= now {
				s.coreWakeOK[c] = false
				s.cores[c].Tick(now)
			} else {
				s.cores[c].SkipIdle(1)
			}
		}
	}
	for c := range s.cores {
		s.coreCycle[c] = now
		if s.l1WakeAt(c, prev) <= now {
			s.l1WakeOK[c] = false
			// Core.Wakeup probes L1 demand capacity; an L1 tick may free
			// read-queue space the cached core wakeup could not see.
			s.coreWakeOK[c] = false
			s.l1s[c].Tick(now)
		} else {
			s.l1s[c].AdvanceClock(now)
		}
		if s.l2WakeAt(c, prev) <= now {
			s.l2WakeOK[c] = false
			s.l2s[c].Tick(now)
		} else {
			s.l2s[c].AdvanceClock(now)
		}
		if s.cycleDriven[c] {
			if pw := s.pfWake[c]; pw == nil || pw.Wakeup(prev) <= now {
				s.prefs[c].OnCycle(now, s.issueFns[c])
			}
		}
	}
	for b := range s.llcs {
		if s.llcWakeAt(b, prev) <= now {
			s.llcWakeOK[b] = false
			s.llcs[b].Tick(now)
		} else {
			s.llcs[b].AdvanceClock(now)
		}
	}
	if s.ideal != nil {
		if s.ideal.wakeup(prev) <= now {
			s.ideal.Tick(now)
		} else {
			s.ideal.advanceClock(now)
		}
	}
	if s.mcWakeAt(prev) <= now {
		s.mcWakeOK = false
		s.mc.Tick(now)
	} else {
		s.mc.AdvanceClock(now)
	}
	for _, b := range s.barriers {
		b.maybeOpen()
	}
	if s.tel != nil && now >= s.nextSampleAt {
		stamp := now - now%s.sampleEvery
		s.tel.Sample(stamp)
		s.nextSampleAt = stamp + s.sampleEvery
	}
	if s.aud != nil && now >= s.nextAuditAt {
		s.aud.Check(now)
		s.nextAuditAt = now - now%s.auditEvery + s.auditEvery
	}
}

// Done reports whether every core has drained and the memory system is
// quiet. The scan is memoised: Tick invalidates, so repeated Done calls
// between ticks (the run loops make two per cycle) cost one bool check,
// and the per-core scan latches once all cores drain — core doneness is
// monotone (a drained core never refills), the memory side is not (a
// posted writeback can leave the controller momentarily quiet).
func (s *System) Done() bool {
	if s.doneDirty {
		s.doneDirty = false
		s.doneCached = s.computeDone()
	}
	return s.doneCached
}

func (s *System) computeDone() bool {
	if !s.coresDone {
		for _, c := range s.cores {
			if !c.Done() {
				return false
			}
		}
		s.coresDone = true
	}
	for i := range s.l1s {
		if s.l1s[i].Pending() > 0 || s.l2s[i].Pending() > 0 {
			return false
		}
	}
	for _, llc := range s.llcs {
		if llc.Pending() > 0 {
			return false
		}
	}
	return s.mc.Pending() == 0
}

// legacyDone is the original unmemoised predicate, kept verbatim (and
// side-effect free) as the reference for the Done regression test.
func (s *System) legacyDone() bool {
	for _, c := range s.cores {
		if !c.Done() {
			return false
		}
	}
	for i := range s.l1s {
		if s.l1s[i].Pending() > 0 || s.l2s[i].Pending() > 0 {
			return false
		}
	}
	for _, llc := range s.llcs {
		if llc.Pending() > 0 {
			return false
		}
	}
	return s.mc.Pending() == 0
}

// TickedCycles reports how many cycles were actually simulated (as
// opposed to skipped by the event-driven scheduler). Diagnostics only —
// deliberately not part of Result, which must be engine-independent.
func (s *System) TickedCycles() uint64 { return s.ticked }

// Cycle reports the current simulated cycle.
func (s *System) Cycle() uint64 { return s.cycle }

// Run drives the machine to completion and returns the collected result.
func Run(cfg Config, app *apps.App) (*Result, error) {
	return RunContext(context.Background(), cfg, app)
}

// RunContext is Run with cancellation: the tick loop polls ctx every
// CancelCheckInterval cycles, so a cancelled simulation stops within one
// tick batch instead of running to completion.
func RunContext(ctx context.Context, cfg Config, app *apps.App) (*Result, error) {
	s, err := New(cfg, app)
	if err != nil {
		return nil, err
	}
	return s.RunAllContext(ctx)
}

// CancelCheckInterval is the tick-batch granularity at which
// RunAllContext polls its context: cancellation latency is bounded by
// one batch of simulated cycles, while the per-cycle hot path stays
// free of context checks.
const CancelCheckInterval = 4096

// maxTrackedIterations bounds the per-iteration bookkeeping (IterEnd
// cycle stamps and cumulative L2 snapshots). A hostile or fuzzed trace
// can mark an iteration index of any size (MarkIterEnd carries it in
// Aux); without a cap the barrier would allocate slices sized by that
// index and an adversarial 2^40 index is an instant OOM. 2^16
// iterations is far beyond any real workload (the paper's evaluation
// composes ~100) and keeps the worst-case bookkeeping near 9 MB.
// Iterations past the cap still open the barrier, fire OnIteration and
// emit telemetry spans; only the per-iteration statistics are dropped.
const maxTrackedIterations = 1 << 16

// CounterRunsCancelled names the telemetry.Default counter incremented
// every time a simulation run is abandoned because its context was
// cancelled (client disconnect, job timeout, daemon shutdown).
const CounterRunsCancelled = "sim.runs_cancelled"

var runsCancelled = telemetry.Default.Counter(CounterRunsCancelled)

// RunAll drives an assembled system to completion.
func (s *System) RunAll() (*Result, error) {
	return s.RunAllContext(context.Background())
}

// RunAllContext drives an assembled system to completion, checking ctx
// every CancelCheckInterval cycles. A cancelled run returns a wrapped
// ctx error (matching errors.Is against context.Canceled or
// context.DeadlineExceeded) and increments CounterRunsCancelled.
//
// Two engines drive the same Tick: the event-driven scheduler (default)
// jumps straight to the next cycle at which any component, sample,
// audit sweep or context switch can act, and the legacy cycle-stepped
// loop (Config.ForceCycleStepped) ticks every cycle. Results, state
// hashes, telemetry and audit sweeps are byte-identical between the two;
// the differential tests in event_test.go and the fuzz harness hold the
// engines to that.
func (s *System) RunAllContext(ctx context.Context) (*Result, error) {
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 2_000_000_000
	}
	var err error
	if s.cfg.ForceCycleStepped {
		err = s.runCycleStepped(ctx, maxCycles)
	} else {
		err = s.runEventDriven(ctx, maxCycles)
	}
	if err != nil {
		return nil, err
	}
	if s.tel != nil && s.cycle%s.sampleEvery != 0 {
		s.tel.Sample(s.cycle) // capture the final, post-drain state
	}
	if s.aud != nil {
		s.aud.Check(s.cycle) // one final sweep over the drained machine
		if err := s.aud.Err(); err != nil {
			return nil, fmt.Errorf("sim: %s on %s/%s: %w",
				s.cfg.Name, s.app.Name, s.app.Input, err)
		}
	}
	return s.collect(), nil
}

// runCycleStepped is the legacy engine: one Tick per cycle.
func (s *System) runCycleStepped(ctx context.Context, maxCycles uint64) error {
	for !s.Done() {
		if err := ctx.Err(); err != nil {
			runsCancelled.Inc()
			return fmt.Errorf("sim: %s on %s/%s cancelled at cycle %d: %w",
				s.cfg.Name, s.app.Name, s.app.Input, s.cycle, err)
		}
		batchEnd := s.cycle + CancelCheckInterval
		for !s.Done() && s.cycle < batchEnd {
			if s.cycle >= maxCycles {
				return fmt.Errorf("sim: %s on %s/%s exceeded %d cycles",
					s.cfg.Name, s.app.Name, s.app.Input, maxCycles)
			}
			s.Tick()
		}
		// FailFast aborts at tick-batch boundaries, so a violating run
		// stops within one batch of the failing sweep.
		if s.aud != nil && s.aud.FailFast() {
			if err := s.aud.Err(); err != nil {
				return fmt.Errorf("sim: %s on %s/%s: %w",
					s.cfg.Name, s.app.Name, s.app.Input, err)
			}
		}
	}
	return nil
}

// runEventDriven is the next-wakeup engine. It mirrors runCycleStepped's
// structure exactly — same cancellation batches, same maxCycles check,
// same FailFast points — but instead of ticking every cycle it asks
// every component for its wakeup and simulates only the minimum. Cycles
// in between are provably inert: skipping them is accounted for by
// Core.SkipIdle (stall/cycle counters) and the AdvanceClock calls
// (internal clock stamps), after which the regular Tick runs unchanged.
func (s *System) runEventDriven(ctx context.Context, maxCycles uint64) error {
	if s.parallelEligible() {
		s.startPool()
		defer s.stopPool()
	}
	for !s.Done() {
		if err := ctx.Err(); err != nil {
			runsCancelled.Inc()
			return fmt.Errorf("sim: %s on %s/%s cancelled at cycle %d: %w",
				s.cfg.Name, s.app.Name, s.app.Input, s.cycle, err)
		}
		batchEnd := s.cycle + CancelCheckInterval
		for !s.Done() && s.cycle < batchEnd {
			if s.cycle >= maxCycles {
				return fmt.Errorf("sim: %s on %s/%s exceeded %d cycles",
					s.cfg.Name, s.app.Name, s.app.Input, maxCycles)
			}
			limit := batchEnd
			if maxCycles < limit {
				limit = maxCycles
			}
			if s.par != nil {
				if t := s.quietHorizon(limit); t > 0 {
					s.runSpan(t)
					continue
				}
			}
			s.advanceTo(s.nextWakeup(limit))
		}
		if s.aud != nil && s.aud.FailFast() {
			if err := s.aud.Err(); err != nil {
				return fmt.Errorf("sim: %s on %s/%s: %w",
					s.cfg.Name, s.app.Name, s.app.Input, err)
			}
		}
	}
	return nil
}

// nextWakeup returns the next cycle worth simulating: the minimum over
// all component wakeups and scheduled events (telemetry sample, audit
// sweep, context switch), clamped to (s.cycle, limit]. Wakeups at or
// before s.cycle — legal under the contract, meaning "as soon as
// possible" — are treated as s.cycle+1, never skipped. The scan early-
// exits once the minimum hits s.cycle+1 since nothing can beat it.
func (s *System) nextWakeup(limit uint64) uint64 {
	now := s.cycle
	s.refreshGates()
	min := limit
	consider := func(w uint64) bool {
		if w <= now {
			w = now + 1
		}
		if w < min {
			min = w
		}
		return min == now+1
	}
	if s.ctxOn && consider(s.ctx.wakeup()) {
		return min
	}
	if s.tel != nil && consider(s.nextSampleAt) {
		return min
	}
	if s.aud != nil && consider(s.nextAuditAt) {
		return min
	}
	if !s.ctx.out {
		// While descheduled the cores are frozen — their wakeups are
		// meaningless until the switch-in (already counted above) — and
		// they must not drag the scheduler into dense stepping.
		for i := range s.cores {
			if consider(s.coreWakeAt(i, now)) {
				return min
			}
		}
	}
	for i := range s.l1s {
		if consider(s.l1WakeAt(i, now)) {
			return min
		}
		if consider(s.l2WakeAt(i, now)) {
			return min
		}
	}
	for c := range s.prefs {
		if !s.cycleDriven[c] {
			continue
		}
		if pw := s.pfWake[c]; pw != nil {
			if consider(pw.Wakeup(now)) {
				return min
			}
		} else {
			// Cycle-driven prefetcher without a Wakeup: simulate densely.
			return now + 1
		}
	}
	for b := range s.llcs {
		if consider(s.llcWakeAt(b, now)) {
			return min
		}
	}
	if s.ideal != nil && consider(s.ideal.wakeup(now)) {
		return min
	}
	consider(s.mcWakeAt(now))
	return min
}

// advanceTo jumps the machine to cycle next and simulates it. The
// skipped cycles (s.cycle, next) are charged to the cores' idle-cycle
// accounting (suppressed while descheduled, when stepped cores would
// not tick either) and the component clocks are fast-forwarded to
// next-1, exactly the state a stepped run would carry into cycle next.
func (s *System) advanceTo(next uint64) {
	if gap := next - s.cycle - 1; gap > 0 {
		if !s.ctx.out {
			for _, c := range s.cores {
				c.SkipIdle(gap)
			}
		}
		prev := next - 1
		for i := range s.l1s {
			s.l1s[i].AdvanceClock(prev)
			s.l2s[i].AdvanceClock(prev)
		}
		for _, llc := range s.llcs {
			llc.AdvanceClock(prev)
		}
		if s.ideal != nil {
			s.ideal.advanceClock(prev)
		}
		s.mc.AdvanceClock(prev)
		s.cycle = prev
	}
	s.tickGated()
}

// Snapshot returns a one-line progress dump for debugging stalled runs.
func (s *System) Snapshot() string {
	out := fmt.Sprintf("cycle=%d", s.cycle)
	for c := range s.cores {
		out += fmt.Sprintf(" core%d[done=%v instr=%d gated=%v l1p=%d l2p=%d]",
			c, s.cores[c].Done(), s.cores[c].Stats.Instructions,
			s.barriers[s.coreGrp[c]].gated(s.coreSlot[c]), s.l1s[c].Pending(), s.l2s[c].Pending())
	}
	for b, llc := range s.llcs {
		out += fmt.Sprintf(" llcp%d=%d", b, llc.Pending())
	}
	out += fmt.Sprintf(" mcp=%d rq=%d wq=%d", s.mc.Pending(), s.mc.ReadQLen(), s.mc.WriteQLen())
	return out
}

func (s *System) collect() *Result {
	r := &Result{
		ConfigName: s.cfg.Name,
		Prefetcher: s.cfg.Prefetcher,
		App:        s.app.Name,
		Input:      s.app.Input,
		Cycles:     s.cycle,
		Iterations: s.app.Iterations,
		IterEnd:    append([]uint64(nil), s.iterEnd[0]...),
		IterL2:     append([]cache.Stats(nil), s.iterSnaps[0]...),
		DRAM:       s.mc.Stats,
		InputBytes: s.app.InputBytes,
		Check:      s.app.Check,
		StateHash:  s.stateHash(),
		CoreHashes: s.coreHashes(),
	}
	if len(s.groups) > 1 {
		r.GroupIterEnd = make([][]uint64, len(s.groups))
		for g := range s.groups {
			r.GroupIterEnd[g] = append([]uint64(nil), s.iterEnd[g]...)
		}
	}
	for c := range s.cores {
		st := s.cores[c].Stats
		r.CoreStats = append(r.CoreStats, st)
		r.Instructions += st.Instructions
		r.L1.Add(s.l1s[c].Stats)
		r.L2.Add(s.l2s[c].Stats)
		r.CoreL2 = append(r.CoreL2, s.l2s[c].Stats)
		if s.engines[c] != nil {
			addRnRStats(&r.RnR, s.engines[c].Stats)
		}
	}
	for _, llc := range s.llcs {
		r.LLC.Add(llc.Stats)
	}
	if s.dir != nil {
		st := s.dir.Stats
		r.Coherence = &st
	}
	if s.xcore != nil {
		st := s.xcore.Stats
		r.CrossCore = &st
	}
	s.collectObs(r)
	return r
}

func addRnRStats(dst *rnr.Stats, s rnr.Stats) {
	dst.StructReads += s.StructReads
	dst.RecordedEntries += s.RecordedEntries
	dst.RecordedWindows += s.RecordedWindows
	dst.SeqOverflows += s.SeqOverflows
	dst.MetaWriteLines += s.MetaWriteLines
	dst.MetaReadLines += s.MetaReadLines
	dst.TLBLookups += s.TLBLookups
	dst.Prefetches += s.Prefetches
	dst.Replays += s.Replays
	dst.Pauses += s.Pauses
	dst.Resumes += s.Resumes
	dst.EarlyPrefetches += s.EarlyPrefetches
	dst.OutOfWindow += s.OutOfWindow
	dst.SeqTableBytes += s.SeqTableBytes
	dst.DivTableBytes += s.DivTableBytes
	dst.ReplayStructMisses += s.ReplayStructMisses
	dst.ReplayMissesCovered += s.ReplayMissesCovered
	dst.SkippedEntries += s.SkippedEntries
}

// Engines exposes the per-core RnR engines (nil entries when RnR is not
// configured); used by tests and debugging tools.
func (s *System) Engines() []*rnr.Engine { return s.engines }

// Occupancy returns a diagnostic line of queue occupancies for core c.
func (s *System) Occupancy(c int) string {
	rob, lsq := s.cores[c].Occupancy()
	r1, p1, w1, m1 := s.l1s[c].Occupancy()
	r2, p2, w2, m2 := s.l2s[c].Occupancy()
	out := fmt.Sprintf("rob=%d lsq=%d L1[r%d p%d w%d m%d] L2[r%d p%d w%d m%d]",
		rob, lsq, r1, p1, w1, m1, r2, p2, w2, m2)
	for _, llc := range s.llcs {
		r3, p3, w3, m3 := llc.Occupancy()
		out += fmt.Sprintf(" LLC[r%d p%d w%d m%d]", r3, p3, w3, m3)
	}
	out += fmt.Sprintf(" DRAM[r%d w%d]", s.mc.ReadQLen(), s.mc.WriteQLen())
	return out
}
