package sim

import (
	"context"
	"fmt"

	"rnrsim/internal/apps"
	"rnrsim/internal/audit"
	"rnrsim/internal/cache"
	"rnrsim/internal/cpu"
	"rnrsim/internal/dram"
	"rnrsim/internal/mem"
	"rnrsim/internal/obs"
	"rnrsim/internal/prefetch"
	"rnrsim/internal/rnr"
	"rnrsim/internal/telemetry"
	"rnrsim/internal/trace"
)

// System is one assembled machine bound to one workload. Build it with
// New, run it with Run (or step it with Tick for tests).
type System struct {
	cfg Config
	app *apps.App

	cores    []*cpu.Core
	l1s      []*cache.Cache
	l2s      []*cache.Cache
	llc      *cache.Cache
	ideal    *idealLLC
	mc       *dram.Controller
	engines  []*rnr.Engine
	prefs    []prefetch.Prefetcher
	droplets []*prefetch.Droplet // for resolver rebinding on base swaps

	issueFns []prefetch.IssueFunc // one per core, built once

	ctx *ctxSwitch

	cycle     uint64
	barrier   *barrier
	iterEnd   []uint64
	iterSnaps []cache.Stats // cumulative L2 stats at each iteration end

	// Telemetry (nil = disabled; the Tick fast path is one pointer
	// compare). See internal/telemetry and registerTelemetry.
	tel         *telemetry.Recorder
	sampleEvery uint64
	lastIterEnd uint64

	// Audit (nil = disabled; same one-pointer-compare fast path). See
	// internal/audit and registerAudit.
	aud        *audit.Checker
	auditEvery uint64

	// Flight recorder (nil = disabled; the cache-event fast path is one
	// pointer compare). See internal/obs and registerObs.
	obsRec *obs.Recorder

	// Tick fast-path gates, fixed at construction: ctxOn skips the
	// context-switch state machine when injection is disabled, and
	// cycleDriven[c] skips the per-cycle prefetcher dispatch for the many
	// prefetchers whose OnCycle is a no-op (only DROPLET and the RnR
	// engine issue from the cycle loop). Context switches swap prefetcher
	// *instances*, never kinds, so the flags stay valid across swaps.
	ctxOn       bool
	cycleDriven []bool
}

// barrier implements the SPMD iteration barrier of §VI: workers wait at
// iteration ends until every core (or a drained core) arrives.
type barrier struct {
	waiting []bool
	done    func(core int) bool
	onOpen  func(iter int32)
	iter    []int32
}

func newBarrier(n int) *barrier {
	return &barrier{waiting: make([]bool, n), iter: make([]int32, n)}
}

func (b *barrier) arrive(core int, iter int32) {
	b.waiting[core] = true
	b.iter[core] = iter
	b.maybeOpen()
}

func (b *barrier) maybeOpen() {
	for c := range b.waiting {
		if !b.waiting[c] && !b.done(c) {
			return
		}
	}
	iter := int32(-1)
	for c := range b.waiting {
		if b.waiting[c] {
			iter = b.iter[c]
		}
		b.waiting[c] = false
	}
	if b.onOpen != nil && iter >= 0 {
		b.onOpen(iter)
	}
}

func (b *barrier) gated(core int) bool { return b.waiting[core] }

// New wires a machine for the given workload.
func New(cfg Config, app *apps.App) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Cores != app.Cores {
		return nil, fmt.Errorf("sim: config has %d cores, app %q has %d", cfg.Cores, app.Name, app.Cores)
	}
	s := &System{cfg: cfg, app: app, mc: dram.New(cfg.DRAM)}
	s.barrier = newBarrier(cfg.Cores)
	s.ctx = newCtxSwitch(cfg.CtxSwitch)
	s.ctxOn = cfg.CtxSwitch.Period != 0
	s.tel = cfg.Telemetry
	s.sampleEvery = cfg.Telemetry.SampleInterval()
	s.mc.Tel = s.tel

	// Shared LLC (real or ideal) on top of DRAM.
	var llcBackend mem.Backend
	if cfg.IdealLLC {
		s.ideal = newIdealLLC(cfg.LLC.Latency, s.mc)
		llcBackend = s.ideal
	} else {
		s.llc = cache.New(cfg.LLC)
		s.llc.SetLower(s.mc)
		llcBackend = s.llc
	}

	sources := app.Sources()
	s.cores = make([]*cpu.Core, cfg.Cores)
	s.l1s = make([]*cache.Cache, cfg.Cores)
	s.l2s = make([]*cache.Cache, cfg.Cores)
	s.engines = make([]*rnr.Engine, cfg.Cores)
	s.prefs = make([]prefetch.Prefetcher, cfg.Cores)
	s.droplets = make([]*prefetch.Droplet, cfg.Cores)
	s.issueFns = make([]prefetch.IssueFunc, cfg.Cores)
	s.cycleDriven = make([]bool, cfg.Cores)

	for c := 0; c < cfg.Cores; c++ {
		l2cfg := cfg.L2
		l2cfg.Name = fmt.Sprintf("L2.%d", c)
		l2 := cache.New(l2cfg)
		l2.SetLower(llcBackend)
		l1cfg := cfg.L1
		l1cfg.Name = fmt.Sprintf("L1D.%d", c)
		l1 := cache.New(l1cfg)
		l1.SetLower(l2)
		core := cpu.New(c, cfg.CPU, sources[c], l1)

		s.cores[c], s.l1s[c], s.l2s[c] = core, l1, l2
		s.wirePrefetcher(c)
		s.wireCore(c)
	}
	s.registerObs()
	s.registerTelemetry()
	s.registerAudit()
	return s, nil
}

// wirePrefetcher builds the per-core prefetcher stack for cfg.Prefetcher.
func (s *System) wirePrefetcher(c int) {
	cfg, app := s.cfg, s.app
	// Only these kinds do per-cycle work in OnCycle; for every other
	// prefetcher the System.Tick loop skips the interface dispatch.
	switch cfg.Prefetcher {
	case PFDroplet, PFRnR, PFRnRCombined:
		s.cycleDriven[c] = true
	default:
		s.cycleDriven[c] = false
	}
	switch cfg.Prefetcher {
	case PFNone:
		s.prefs[c] = prefetch.Nop{}
	case PFNextLine:
		s.prefs[c] = prefetch.NewNextLine(1)
	case PFStream:
		s.prefs[c] = prefetch.NewStream()
	case PFGHB:
		s.prefs[c] = prefetch.NewGHB()
	case PFMISB:
		m := prefetch.NewMISB()
		m.Meta = s.metaHook(c)
		s.prefs[c] = m
	case PFBingo:
		s.prefs[c] = prefetch.NewBingo()
	case PFBestOffset:
		s.prefs[c] = prefetch.NewBestOffset()
	case PFDomino:
		s.prefs[c] = prefetch.NewDomino()
	case PFSteMS:
		s.prefs[c] = prefetch.NewSteMS()
	case PFDroplet:
		d := prefetch.NewDroplet()
		edge := app.EdgeRegion
		d.EdgeRegion = func(l mem.Addr) bool { return edge.Contains(l) }
		d.Resolve = app.Resolve
		s.droplets[c] = d
		s.prefs[c] = d
	case PFIMP:
		p := prefetch.NewIMP()
		edge := app.EdgeRegion
		p.IndexRegion = func(l mem.Addr) bool { return edge.Contains(l) }
		p.Resolve = app.Resolve
		s.prefs[c] = p
	case PFRnR, PFRnRCombined:
		e := rnr.NewEngine(c, s.mc)
		e.Control = cfg.RnRControl
		e.DefaultWindow = cfg.RnRWindow
		if e.DefaultWindow == 0 {
			e.DefaultWindow = cfg.DefaultWindowLines()
		}
		// Pace control's prefetch distance: a quarter of the L2, far
		// enough to hide fill latency, small enough that pending lines
		// survive until their demand.
		e.LeadEntries = cfg.RnRLead
		if e.LeadEntries == 0 {
			e.LeadEntries = int(cfg.L2.SizeBytes / 64 / 4)
		}
		// And in reads: at most one L2's worth of demand churn may pass
		// between a prefetch and its demand.
		e.LeadReadsCap = int(cfg.L2.SizeBytes / 64)
		e.RecordAllAccesses = cfg.RnRRecordAll
		if cfg.RnRPrefetchToLLC {
			// §III ablation: the LLC-destination variant widens the lead
			// bounds to the LLC's capacity.
			e.LeadEntries = int(cfg.LLC.SizeBytes / 64 / 4)
			e.LeadReadsCap = int(cfg.LLC.SizeBytes / 64)
		}
		s.engines[c] = e
		if cfg.Prefetcher == PFRnRCombined {
			// RnR for the target structure, next-line for everything
			// else, fenced out of the RnR range (§V-D).
			nl := &prefetch.RegionFilter{
				Inner:    prefetch.NewNextLine(1),
				Excluded: e.InRange,
			}
			s.prefs[c] = prefetch.Combine{e, nl}
		} else {
			s.prefs[c] = e
		}
	}
}

// wireCore connects the core's hooks, the L2's hooks and the prefetcher.
func (s *System) wireCore(c int) {
	core, l2 := s.cores[c], s.l2s[c]
	engine := s.engines[c]

	issue := s.issueFunc(c)
	s.issueFns[c] = issue
	// The hooks resolve s.prefs[c] at call time so a context switch can
	// swap in a freshly-reset prefetcher (see ctxswitch.go).
	l2.OnAccess = func(ev cache.AccessInfo) { s.prefs[c].OnAccess(ev, issue) }
	l2.OnFill = func(line mem.Addr, prefetchFill bool, cycle uint64) {
		s.prefs[c].OnFill(line, prefetchFill, cycle)
	}
	if engine != nil {
		core.PreAccess = engine.PreAccess
		l2.OnEvict = engine.OnEvict
	}

	core.OnMarker = func(rec trace.Record, cycle uint64) {
		if engine != nil {
			engine.HandleMarker(rec, cycle)
		}
		if rec.Marker == trace.MarkAddrBaseSet && rec.Aux == 0 &&
			s.droplets[c] != nil && s.app.MakeResolver != nil {
			s.droplets[c].Resolve = s.app.MakeResolver(rec.Addr)
		}
		if rec.Marker == trace.MarkIterEnd {
			s.barrier.arrive(c, rec.Aux)
		}
	}
	core.Gate = func() bool { return !s.barrier.gated(c) }
	s.barrier.done = func(core int) bool { return s.cores[core].Done() }
	s.barrier.onOpen = func(iter int32) {
		// The iteration tables are indexed by the trace's iteration
		// number; a corrupt or adversarial trace (the fuzzer emits
		// MarkIterEnd with Aux around 2^20) must not be able to grow
		// them without bound — each slot carries a cache.Stats snapshot,
		// so an unchecked append was an OOM (found by fuzzing). Real
		// workloads run a few dozen iterations; past the cap the barrier
		// still opens, only the bookkeeping is dropped.
		if int(iter) < maxTrackedIterations {
			for int(iter) >= len(s.iterEnd) {
				s.iterEnd = append(s.iterEnd, 0)
				s.iterSnaps = append(s.iterSnaps, cache.Stats{})
			}
			s.iterEnd[iter] = s.cycle
			var snap cache.Stats
			for c := range s.l2s {
				snap.Add(s.l2s[c].Stats)
			}
			s.iterSnaps[iter] = snap
		}
		if s.obsRec != nil {
			// The recorder caps hostile indices itself.
			s.obsRec.IterEnd(int(iter), s.cycle)
		}
		if s.cfg.OnIteration != nil {
			s.cfg.OnIteration(int(iter), s.cycle)
		}
		if s.tel != nil {
			// One span per iteration on the "iterations" track, ending
			// exactly at Result.IterEnd[iter].
			s.tel.Span("iterations", fmt.Sprintf("iter %d", iter), s.lastIterEnd, s.cycle)
			s.lastIterEnd = s.cycle
		}
	}
}

// issueFunc returns the prefetch-issue path into core c's L2 (or the
// shared LLC under the §III destination ablation).
func (s *System) issueFunc(c int) prefetch.IssueFunc {
	if s.cfg.RnRPrefetchToLLC && s.llc != nil {
		llc := s.llc
		return func(line mem.Addr) bool {
			req := mem.NewRequest(mem.ReqPrefetch, line, 0, c, s.cycle)
			return llc.TryPrefetch(req)
		}
	}
	l2 := s.l2s[c]
	return func(line mem.Addr) bool {
		req := mem.NewRequest(mem.ReqPrefetch, line, 0, c, s.cycle)
		return l2.TryPrefetch(req)
	}
}

// metaHook returns MISB's off-chip metadata path.
func (s *System) metaHook(c int) func(write bool, addr mem.Addr) {
	return func(write bool, addr mem.Addr) {
		t := mem.ReqMetaRead
		if write {
			t = mem.ReqMetaWrite
		}
		req := mem.NewRequest(t, addr, 0, c, s.cycle)
		// Best effort: a full queue drops the transaction; the traffic
		// model is what matters for MISB.
		s.mc.TryEnqueue(req)
	}
}

// Tick advances the machine one cycle.
func (s *System) Tick() {
	s.cycle++
	now := s.cycle
	switchedOut := false
	if s.ctxOn {
		switchedOut = s.ctx.tick(s, now)
	}
	if !switchedOut {
		// The process is descheduled while switched out: cores make no
		// progress (the memory system below still drains).
		for c := range s.cores {
			s.cores[c].Tick(now)
		}
	}
	for c := range s.cores {
		s.l1s[c].Tick(now)
		s.l2s[c].Tick(now)
		if s.cycleDriven[c] {
			s.prefs[c].OnCycle(now, s.issueFns[c])
		}
	}
	if s.llc != nil {
		s.llc.Tick(now)
	}
	if s.ideal != nil {
		s.ideal.Tick(now)
	}
	s.mc.Tick(now)
	s.barrier.maybeOpen()
	if s.tel != nil && now%s.sampleEvery == 0 {
		s.tel.Sample(now)
	}
	if s.aud != nil && now%s.auditEvery == 0 {
		s.aud.Check(now)
	}
}

// Done reports whether every core has drained and the memory system is
// quiet.
func (s *System) Done() bool {
	for _, c := range s.cores {
		if !c.Done() {
			return false
		}
	}
	for i := range s.l1s {
		if s.l1s[i].Pending() > 0 || s.l2s[i].Pending() > 0 {
			return false
		}
	}
	if s.llc != nil && s.llc.Pending() > 0 {
		return false
	}
	return s.mc.Pending() == 0
}

// Run drives the machine to completion and returns the collected result.
func Run(cfg Config, app *apps.App) (*Result, error) {
	return RunContext(context.Background(), cfg, app)
}

// RunContext is Run with cancellation: the tick loop polls ctx every
// CancelCheckInterval cycles, so a cancelled simulation stops within one
// tick batch instead of running to completion.
func RunContext(ctx context.Context, cfg Config, app *apps.App) (*Result, error) {
	s, err := New(cfg, app)
	if err != nil {
		return nil, err
	}
	return s.RunAllContext(ctx)
}

// CancelCheckInterval is the tick-batch granularity at which
// RunAllContext polls its context: cancellation latency is bounded by
// one batch of simulated cycles, while the per-cycle hot path stays
// free of context checks.
const CancelCheckInterval = 4096

// maxTrackedIterations bounds the per-iteration bookkeeping (IterEnd
// cycle stamps and cumulative L2 snapshots). A hostile or fuzzed trace
// can mark an iteration index of any size (MarkIterEnd carries it in
// Aux); without a cap the barrier would allocate slices sized by that
// index and an adversarial 2^40 index is an instant OOM. 2^16
// iterations is far beyond any real workload (the paper's evaluation
// composes ~100) and keeps the worst-case bookkeeping near 9 MB.
// Iterations past the cap still open the barrier, fire OnIteration and
// emit telemetry spans; only the per-iteration statistics are dropped.
const maxTrackedIterations = 1 << 16

// CounterRunsCancelled names the telemetry.Default counter incremented
// every time a simulation run is abandoned because its context was
// cancelled (client disconnect, job timeout, daemon shutdown).
const CounterRunsCancelled = "sim.runs_cancelled"

var runsCancelled = telemetry.Default.Counter(CounterRunsCancelled)

// RunAll drives an assembled system to completion.
func (s *System) RunAll() (*Result, error) {
	return s.RunAllContext(context.Background())
}

// RunAllContext drives an assembled system to completion, checking ctx
// every CancelCheckInterval cycles. A cancelled run returns a wrapped
// ctx error (matching errors.Is against context.Canceled or
// context.DeadlineExceeded) and increments CounterRunsCancelled.
func (s *System) RunAllContext(ctx context.Context) (*Result, error) {
	maxCycles := s.cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 2_000_000_000
	}
	for !s.Done() {
		if err := ctx.Err(); err != nil {
			runsCancelled.Inc()
			return nil, fmt.Errorf("sim: %s on %s/%s cancelled at cycle %d: %w",
				s.cfg.Name, s.app.Name, s.app.Input, s.cycle, err)
		}
		batchEnd := s.cycle + CancelCheckInterval
		for !s.Done() && s.cycle < batchEnd {
			if s.cycle >= maxCycles {
				return nil, fmt.Errorf("sim: %s on %s/%s exceeded %d cycles",
					s.cfg.Name, s.app.Name, s.app.Input, maxCycles)
			}
			s.Tick()
		}
		// FailFast aborts at tick-batch boundaries, so a violating run
		// stops within one batch of the failing sweep.
		if s.aud != nil && s.aud.FailFast() {
			if err := s.aud.Err(); err != nil {
				return nil, fmt.Errorf("sim: %s on %s/%s: %w",
					s.cfg.Name, s.app.Name, s.app.Input, err)
			}
		}
	}
	if s.tel != nil && s.cycle%s.sampleEvery != 0 {
		s.tel.Sample(s.cycle) // capture the final, post-drain state
	}
	if s.aud != nil {
		s.aud.Check(s.cycle) // one final sweep over the drained machine
		if err := s.aud.Err(); err != nil {
			return nil, fmt.Errorf("sim: %s on %s/%s: %w",
				s.cfg.Name, s.app.Name, s.app.Input, err)
		}
	}
	return s.collect(), nil
}

// Snapshot returns a one-line progress dump for debugging stalled runs.
func (s *System) Snapshot() string {
	out := fmt.Sprintf("cycle=%d", s.cycle)
	for c := range s.cores {
		out += fmt.Sprintf(" core%d[done=%v instr=%d gated=%v l1p=%d l2p=%d]",
			c, s.cores[c].Done(), s.cores[c].Stats.Instructions,
			s.barrier.gated(c), s.l1s[c].Pending(), s.l2s[c].Pending())
	}
	if s.llc != nil {
		out += fmt.Sprintf(" llcp=%d", s.llc.Pending())
	}
	out += fmt.Sprintf(" mcp=%d rq=%d wq=%d", s.mc.Pending(), s.mc.ReadQLen(), s.mc.WriteQLen())
	return out
}

func (s *System) collect() *Result {
	r := &Result{
		ConfigName: s.cfg.Name,
		Prefetcher: s.cfg.Prefetcher,
		App:        s.app.Name,
		Input:      s.app.Input,
		Cycles:     s.cycle,
		Iterations: s.app.Iterations,
		IterEnd:    append([]uint64(nil), s.iterEnd...),
		IterL2:     append([]cache.Stats(nil), s.iterSnaps...),
		DRAM:       s.mc.Stats,
		InputBytes: s.app.InputBytes,
		Check:      s.app.Check,
		StateHash:  s.stateHash(),
	}
	for c := range s.cores {
		st := s.cores[c].Stats
		r.CoreStats = append(r.CoreStats, st)
		r.Instructions += st.Instructions
		r.L1.Add(s.l1s[c].Stats)
		r.L2.Add(s.l2s[c].Stats)
		if s.engines[c] != nil {
			addRnRStats(&r.RnR, s.engines[c].Stats)
		}
	}
	if s.llc != nil {
		r.LLC = s.llc.Stats
	}
	s.collectObs(r)
	return r
}

func addRnRStats(dst *rnr.Stats, s rnr.Stats) {
	dst.StructReads += s.StructReads
	dst.RecordedEntries += s.RecordedEntries
	dst.RecordedWindows += s.RecordedWindows
	dst.SeqOverflows += s.SeqOverflows
	dst.MetaWriteLines += s.MetaWriteLines
	dst.MetaReadLines += s.MetaReadLines
	dst.TLBLookups += s.TLBLookups
	dst.Prefetches += s.Prefetches
	dst.Replays += s.Replays
	dst.Pauses += s.Pauses
	dst.Resumes += s.Resumes
	dst.EarlyPrefetches += s.EarlyPrefetches
	dst.OutOfWindow += s.OutOfWindow
	dst.SeqTableBytes += s.SeqTableBytes
	dst.DivTableBytes += s.DivTableBytes
	dst.ReplayStructMisses += s.ReplayStructMisses
	dst.ReplayMissesCovered += s.ReplayMissesCovered
	dst.SkippedEntries += s.SkippedEntries
}

// Engines exposes the per-core RnR engines (nil entries when RnR is not
// configured); used by tests and debugging tools.
func (s *System) Engines() []*rnr.Engine { return s.engines }

// Occupancy returns a diagnostic line of queue occupancies for core c.
func (s *System) Occupancy(c int) string {
	rob, lsq := s.cores[c].Occupancy()
	r1, p1, w1, m1 := s.l1s[c].Occupancy()
	r2, p2, w2, m2 := s.l2s[c].Occupancy()
	out := fmt.Sprintf("rob=%d lsq=%d L1[r%d p%d w%d m%d] L2[r%d p%d w%d m%d]",
		rob, lsq, r1, p1, w1, m1, r2, p2, w2, m2)
	if s.llc != nil {
		r3, p3, w3, m3 := s.llc.Occupancy()
		out += fmt.Sprintf(" LLC[r%d p%d w%d m%d]", r3, p3, w3, m3)
	}
	out += fmt.Sprintf(" DRAM[r%d w%d]", s.mc.ReadQLen(), s.mc.WriteQLen())
	return out
}
