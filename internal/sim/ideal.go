package sim

import "rnrsim/internal/mem"

// idealLLC is an infinite last-level cache for the "ideal" configuration
// of Fig. 6: every line misses exactly once (cold) and hits forever after.
// It is map-backed so capacity costs nothing until touched.
type idealLLC struct {
	latency  uint64
	lower    mem.Backend
	resident map[mem.Addr]struct{}
	clock    uint64
	pending  []pendingHit
}

type pendingHit struct {
	req    *mem.Request
	finish uint64
}

func newIdealLLC(latency uint64, lower mem.Backend) *idealLLC {
	return &idealLLC{latency: latency, lower: lower, resident: make(map[mem.Addr]struct{})}
}

// TryEnqueue implements mem.Backend.
func (c *idealLLC) TryEnqueue(r *mem.Request) bool {
	switch r.Type {
	case mem.ReqWriteback, mem.ReqMetaWrite:
		// Absorbed: an infinite LLC never writes back data lines; RnR
		// metadata still goes to memory to keep accounting honest.
		if r.Type == mem.ReqMetaWrite {
			return c.lower.TryEnqueue(r)
		}
		r.Complete(c.clock)
		return true
	case mem.ReqMetaRead:
		return c.lower.TryEnqueue(r)
	}
	if _, ok := c.resident[r.Line]; ok {
		c.pending = append(c.pending, pendingHit{r, c.clock + c.latency})
		return true
	}
	line := r.Line
	inner := *r
	inner.Done = func(cycle uint64) {
		c.resident[line] = struct{}{}
		r.Complete(cycle)
	}
	return c.lower.TryEnqueue(&inner)
}

// wakeup reports the earliest pending-hit completion, or mem.WakeupNever
// when nothing is buffered (misses complete via the lower backend's
// callbacks, not this tick).
func (c *idealLLC) wakeup(now uint64) uint64 {
	w := mem.WakeupNever
	for _, p := range c.pending {
		if p.finish < w {
			w = p.finish
		}
	}
	if w != mem.WakeupNever && w <= now {
		w = now + 1
	}
	return w
}

// advanceClock fast-forwards the clock over skipped idle cycles; the
// clock timestamps hit completions and absorbed writebacks.
func (c *idealLLC) advanceClock(now uint64) { c.clock = now }

// Tick completes buffered hits.
func (c *idealLLC) Tick(now uint64) {
	c.clock = now
	kept := c.pending[:0]
	for _, p := range c.pending {
		if p.finish <= now {
			p.req.Complete(now)
		} else {
			kept = append(kept, p)
		}
	}
	c.pending = kept
}
