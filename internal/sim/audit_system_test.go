package sim

import (
	"reflect"
	"strings"
	"testing"

	"rnrsim/internal/apps"
	"rnrsim/internal/audit"
	"rnrsim/internal/mem"
	"rnrsim/internal/trace"
)

func auditCfg() *audit.Config { return &audit.Config{Interval: 256} }

// TestAuditCleanAcrossPrefetchers is the headline acceptance check: the
// test-scale workload runs clean under the auditor for every major
// prefetcher configuration, and the audited result is byte-identical to
// the unaudited one (the auditor observes, never perturbs).
func TestAuditCleanAcrossPrefetchers(t *testing.T) {
	app := testApp(t)
	kinds := []PrefetcherKind{
		PFNone, PFNextLine, PFStream, PFGHB, PFBingo, PFRnR, PFRnRCombined,
	}
	for _, pf := range kinds {
		pf := pf
		t.Run(string(pf), func(t *testing.T) {
			plain := runOne(t, testConfig().WithPrefetcher(pf), app)

			cfg := testConfig().WithPrefetcher(pf)
			cfg.Audit = auditCfg()
			s, err := New(cfg, app)
			if err != nil {
				t.Fatal(err)
			}
			audited, err := s.RunAll()
			if err != nil {
				t.Fatalf("audited run failed: %v", err)
			}
			if s.Audit() == nil || s.Audit().Checks() == 0 {
				t.Fatal("auditor attached but never swept")
			}
			if v := s.Audit().Violations(); len(v) > 0 {
				t.Fatalf("%d violations, first: %s", len(v), v[0])
			}
			if !reflect.DeepEqual(plain, audited) {
				t.Errorf("audited result differs from unaudited result:\n plain   %+v\n audited %+v", plain, audited)
			}
		})
	}
}

// TestStateHashDeterministic pins the digest's two core properties:
// identical runs hash identically, and a change to the machine (a
// different prefetcher over the same trace) changes the hash.
func TestStateHashDeterministic(t *testing.T) {
	app := testApp(t)
	a := runOne(t, testConfig(), app)
	b := runOne(t, testConfig(), app)
	if a.StateHash == 0 {
		t.Fatal("StateHash is zero; collect never hashed the machine")
	}
	if a.StateHash != b.StateHash {
		t.Errorf("identical runs hash differently: %016x vs %016x", a.StateHash, b.StateHash)
	}
	c := runOne(t, testConfig().WithPrefetcher(PFRnR), app)
	if c.StateHash == a.StateHash {
		t.Errorf("RnR run hashes identically to baseline: %016x", c.StateHash)
	}
	// Auditing must not perturb the digest.
	cfg := testConfig()
	cfg.Audit = auditCfg()
	s, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if d.StateHash != a.StateHash {
		t.Errorf("audited hash %016x != unaudited %016x", d.StateHash, a.StateHash)
	}
}

// TestStateHashIdealLLC covers the map-backed ideal LLC's sorted hash.
func TestStateHashIdealLLC(t *testing.T) {
	app := testApp(t)
	cfg := testConfig()
	cfg.IdealLLC = true
	a := runOne(t, cfg, app)
	b := runOne(t, cfg, app)
	if a.StateHash != b.StateHash {
		t.Errorf("ideal-LLC runs hash differently: %016x vs %016x", a.StateHash, b.StateHash)
	}
}

// corruptL2 breaks the demand-accounting conservation law
// (hits + misses + merges == accesses) on core 0's private L2.
func corruptL2(s *System) { s.l2s[0].Stats.DemandAccesses += 3 }

// TestAuditDetectsCorruption injects a counter corruption mid-run and
// asserts the final sweep fails the run with the component and law.
func TestAuditDetectsCorruption(t *testing.T) {
	app := testApp(t)
	cfg := testConfig()
	cfg.Audit = auditCfg()
	s, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		s.Tick()
	}
	corruptL2(s)
	_, err = s.RunAll()
	if err == nil {
		t.Fatal("corrupted run completed without an audit error")
	}
	if !strings.Contains(err.Error(), "audit:") {
		t.Fatalf("error is not an audit failure: %v", err)
	}
	v := s.Audit().Violations()
	if len(v) == 0 {
		t.Fatal("no violations retained")
	}
	if v[0].Component != "l2.0" {
		t.Errorf("violation blamed %q, want l2.0", v[0].Component)
	}
	if !strings.Contains(v[0].Law, "demand accounting") {
		t.Errorf("violation law %q does not name the broken invariant", v[0].Law)
	}
}

// TestAuditFailFastAborts pins that FailFast stops a violating run at a
// tick-batch boundary instead of running to completion.
func TestAuditFailFastAborts(t *testing.T) {
	app := testApp(t)

	// Measure the healthy run length first.
	healthy := runOne(t, testConfig(), app)

	cfg := testConfig()
	cfg.Audit = &audit.Config{Interval: 64, FailFast: true}
	s, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 128; i++ {
		s.Tick()
	}
	corruptL2(s)
	_, err = s.RunAll()
	if err == nil {
		t.Fatal("FailFast run completed despite corruption")
	}
	if !strings.Contains(err.Error(), "audit:") {
		t.Fatalf("error is not an audit failure: %v", err)
	}
	// The abort must land within one cancel batch of the corruption,
	// far before the healthy run's end.
	if s.cycle >= healthy.Cycles {
		t.Errorf("FailFast aborted at cycle %d, healthy run ends at %d", s.cycle, healthy.Cycles)
	}
	if s.cycle > 128+2*CancelCheckInterval {
		t.Errorf("FailFast aborted at cycle %d, want within two batches of the corruption at 128", s.cycle)
	}
}

// TestHugeIterationIndexBounded is the direct regression for the
// iteration-bookkeeping OOM: a trace that marks an iteration index of
// 2^28 (MarkIterEnd carries the index in Aux) must not make the
// simulator allocate 2^28 IterEnd slots and cache.Stats snapshots. The
// barrier still opens — the run drains — but the bookkeeping is capped.
func TestHugeIterationIndexBounded(t *testing.T) {
	al := mem.NewAllocator(0x1_0000)
	region := al.AllocPage("bugh.target", 4096)
	b := trace.NewBuilder(16)
	b.IterBegin(0)
	for i := 0; i < 4; i++ {
		b.Exec(2)
		b.Load(0x7000, region.Base+mem.Addr(i*64), 8, int32(region.ID))
	}
	// The hostile marker: an iteration index far past the cap.
	b.Mark(trace.MarkIterEnd, 0, 0, 1<<28)
	b.IterEnd(0)
	app := &apps.App{
		Name: "bugh", Input: "direct", Cores: 1,
		Traces:     [][]trace.Record{b.Records()},
		Iterations: 1,
		Targets:    []mem.Region{region},
		InputBytes: region.Size,
	}
	cfg := testConfig()
	cfg.Cores = 1
	cfg.Audit = auditCfg()
	cfg.MaxCycles = 1_000_000
	s, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.IterEnd) > 2 {
		t.Fatalf("IterEnd grew to %d entries for a 1-iteration trace", len(r.IterEnd))
	}
	if len(r.IterL2) != len(r.IterEnd) {
		t.Errorf("IterL2 has %d entries, IterEnd %d", len(r.IterL2), len(r.IterEnd))
	}
}

// TestAuditExportStateHashHex pins the JSON export shape: 16 hex digits,
// round-trippable back to the uint64.
func TestAuditExportStateHashHex(t *testing.T) {
	r := &Result{StateHash: 0x0123_4567_89ab_cdef}
	j := r.Export()
	if j.StateHash != "0123456789abcdef" {
		t.Errorf("state_hash exported as %q", j.StateHash)
	}
	r.StateHash = 0
	if j := r.Export(); j.StateHash != "0000000000000000" {
		t.Errorf("zero hash exported as %q", j.StateHash)
	}
}
