package sim

import "testing"

func TestBestOffsetAndDominoRunEndToEnd(t *testing.T) {
	app := testApp(t)
	base := runOne(t, testConfig(), app)
	for _, pf := range []PrefetcherKind{PFBestOffset, PFDomino} {
		res := runOne(t, testConfig().WithPrefetcher(pf), app)
		if res.Instructions != base.Instructions {
			t.Errorf("%s retired %d instructions, baseline %d", pf, res.Instructions, base.Instructions)
		}
		// Domino must issue prefetches on the irregular input; Best-Offset
		// legitimately turns itself off when no offset scores (that IS the
		// design), so only bookkeeping sanity is asserted for it.
		if pf == PFDomino && res.TotalPrefetches() == 0 {
			t.Errorf("%s issued no prefetches", pf)
		}
		if acc := res.Accuracy(); acc < 0 || acc > 1 {
			t.Errorf("%s accuracy %f out of range", pf, acc)
		}
	}
}

func TestDominoBeatsGHBOnInterleavedStreams(t *testing.T) {
	// The motivation example of §II: interleaved per-core streams create
	// shared addresses with divergent successors. Pair-indexed Domino
	// should reach at least GHB's usefulness on the irregular input.
	app := testApp(t)
	ghb := runOne(t, testConfig().WithPrefetcher(PFGHB), app)
	dom := runOne(t, testConfig().WithPrefetcher(PFDomino), app)
	if dom.UsefulPrefetches() == 0 && ghb.UsefulPrefetches() > 0 {
		t.Errorf("domino useless (%d) where GHB works (%d)",
			dom.UsefulPrefetches(), ghb.UsefulPrefetches())
	}
}

func TestIterationStatSlicing(t *testing.T) {
	app := testApp(t)
	res := runOne(t, testConfig().WithPrefetcher(PFRnR), app)
	if len(res.IterL2) != app.Iterations {
		t.Fatalf("iteration snapshots = %d, want %d", len(res.IterL2), app.Iterations)
	}
	// Snapshots must be monotonically non-decreasing in every counter.
	for i := 1; i < len(res.IterL2); i++ {
		if res.IterL2[i].DemandAccesses < res.IterL2[i-1].DemandAccesses {
			t.Errorf("iteration %d snapshot regressed", i)
		}
	}
	// The steady-state slice must exclude the warm-up/record prefix.
	steady := res.steadyL2()
	if steady.DemandAccesses >= res.L2.DemandAccesses {
		t.Error("steadyL2 did not subtract the warm-up iterations")
	}
	if steady.PrefetchUseful > res.L2.PrefetchUseful {
		t.Error("steadyL2 produced more useful prefetches than the whole run")
	}
}
