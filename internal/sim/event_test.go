package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"rnrsim/internal/audit"
	"rnrsim/internal/obs"
	"rnrsim/internal/telemetry"

	"rnrsim/internal/apps"
)

// exportBytes serialises the full export envelope; the export clock must
// already be pinned by the caller so generated_at cannot differ.
func exportBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.MarshalIndent(r.Export(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runEngine builds and runs one system, returning the result and the
// system itself (for TickedCycles / internals).
func runEngine(t *testing.T, cfg Config, app *apps.App, stepped bool) (*Result, *System) {
	t.Helper()
	cfg.ForceCycleStepped = stepped
	s, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	return r, s
}

// requireIdentical runs cfg under both engines and fails unless the
// final Result — state hash included — serialises to byte-identical
// export envelopes. This is the tentpole's correctness bar: the
// event-driven scheduler may only skip cycles that are provably inert,
// so no architectural or statistical state is allowed to differ.
// Callers must pin the export clock (fixedExportClock) first — in the
// parent test when subtests run in parallel, so the global is not
// mutated while children are in flight.
func requireIdentical(t *testing.T, cfg Config, app *apps.App) (*System, *System) {
	t.Helper()
	re, se := runEngine(t, cfg, app, false)
	rs, ss := runEngine(t, cfg, app, true)
	if re.StateHash != rs.StateHash {
		t.Errorf("state hash: event %016x != stepped %016x", re.StateHash, rs.StateHash)
	}
	be, bs := exportBytes(t, re), exportBytes(t, rs)
	if !bytes.Equal(be, bs) {
		t.Errorf("export envelope differs between engines\nevent:   %s\nstepped: %s", be, bs)
	}
	return se, ss
}

// TestEventSteppedDifferentialMatrix sweeps the configurations whose
// wakeup paths differ — every prefetcher family, audit sweeps, the
// lifecycle observer, the ideal-LLC bar, context switching — and holds
// the two engines to byte-identical export envelopes on each.
func TestEventSteppedDifferentialMatrix(t *testing.T) {
	fixedExportClock(t, time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC))
	app := testApp(t)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"none", testConfig().WithPrefetcher(PFNone)},
		{"nextline", testConfig().WithPrefetcher(PFNextLine)},
		{"stream", testConfig().WithPrefetcher(PFStream)},
		{"rnr", testConfig().WithPrefetcher(PFRnR)},
		{"rnr-combined", testConfig().WithPrefetcher(PFRnRCombined)},
	}
	audited := testConfig().WithPrefetcher(PFRnR)
	audited.Audit = &audit.Config{Interval: 256}
	cases = append(cases, struct {
		name string
		cfg  Config
	}{"rnr+audit", audited})

	observed := testConfig().WithPrefetcher(PFRnR)
	observed.Obs = &obs.Config{}
	cases = append(cases, struct {
		name string
		cfg  Config
	}{"rnr+obs", observed})

	ideal := testConfig().WithPrefetcher(PFNone)
	ideal.IdealLLC = true
	cases = append(cases, struct {
		name string
		cfg  Config
	}{"ideal-llc", ideal})

	ctxCfg := testConfig().WithPrefetcher(PFRnR)
	ctxCfg.CtxSwitch = CtxSwitchConfig{Period: 20_000, Duration: 7_000}
	cases = append(cases, struct {
		name string
		cfg  Config
	}{"rnr+ctx", ctxCfg})

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			requireIdentical(t, tc.cfg, app)
		})
	}
}

// TestEventEngineSkipsCycles pins that the event engine actually skips:
// on an idle-heavy run (long descheduled windows) it must simulate far
// fewer cycles than it reports, while the stepped engine ticks them all.
func TestEventEngineSkipsCycles(t *testing.T) {
	app := testApp(t)
	cfg := testConfig().WithPrefetcher(PFNone)
	cfg.CtxSwitch = CtxSwitchConfig{Period: 10_000, Duration: 100_000}

	re, se := runEngine(t, cfg, app, false)
	if se.TickedCycles() >= re.Cycles {
		t.Errorf("event engine ticked %d of %d cycles; expected skipping", se.TickedCycles(), re.Cycles)
	}
	rs, ss := runEngine(t, cfg, app, true)
	if ss.TickedCycles() != rs.Cycles {
		t.Errorf("stepped engine ticked %d of %d cycles; must tick all", ss.TickedCycles(), rs.Cycles)
	}
	if re.StateHash != rs.StateHash {
		t.Errorf("state hash: event %016x != stepped %016x", re.StateHash, rs.StateHash)
	}
}

// TestTelemetrySampleCyclesIdentical is the sampler-jump regression: the
// event engine lands on cycles past a sampleEvery multiple, and the
// sampler must still stamp the exact multiples the stepped engine does.
// The whole JSONL series — stamps and values — must be byte-identical.
func TestTelemetrySampleCyclesIdentical(t *testing.T) {
	app := testApp(t)
	const interval = 1000
	series := func(stepped bool) []byte {
		cfg := testConfig().WithPrefetcher(PFRnR)
		rec := telemetry.New(telemetry.Config{SampleInterval: interval})
		cfg.Telemetry = rec
		runEngine(t, cfg, app, stepped)
		var buf bytes.Buffer
		if err := rec.WriteMetricsJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	ev, st := series(false), series(true)
	if !bytes.Equal(ev, st) {
		t.Errorf("telemetry JSONL differs between engines\nevent:   %.512s\nstepped: %.512s", ev, st)
	}
	// And the stamps sit on the sample grid (bar the final post-drain row).
	lines := bytes.Split(bytes.TrimSpace(ev), []byte("\n"))
	for i, ln := range lines {
		var row map[string]float64
		if err := json.Unmarshal(ln, &row); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if c := uint64(row["cycle"]); c%interval != 0 && i != len(lines)-1 {
			t.Errorf("row %d stamped off-grid cycle %d (interval %d)", i, c, interval)
		}
	}
}

// TestDoneMatchesLegacyPredicate is the System.Done regression: the
// memoised predicate must agree with the original O(components) rescan
// at every step of a run, including the final drained state.
func TestDoneMatchesLegacyPredicate(t *testing.T) {
	fc := audit.FuzzConfig{Seed: 11}.WithDefaults()
	s, err := New(fuzzMachine(fc.Cores).WithPrefetcher(PFRnR), audit.Fuzz(fc))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2_000_000; step++ {
		legacy := s.legacyDone()
		if got := s.Done(); got != legacy {
			t.Fatalf("cycle %d: Done() = %v, legacy predicate = %v", s.Cycle(), got, legacy)
		}
		if legacy {
			return
		}
		s.Tick()
	}
	t.Fatal("run did not drain within 2M cycles")
}

// TestNextWakeupClampsPastEvents pins the "wakeup in the past" contract:
// an event cycle at or before now must be treated as "now" (simulate the
// next cycle), never returned as-is (which would wedge advanceTo) and
// never skipped past.
func TestNextWakeupClampsPastEvents(t *testing.T) {
	app := testApp(t)
	cfg := testConfig().WithPrefetcher(PFNone)
	rec := telemetry.New(telemetry.Config{SampleInterval: 500})
	cfg.Telemetry = rec
	s, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		s.Tick()
	}
	// Force a sample event 100 cycles in the past; the scheduler must
	// clamp it to the very next cycle rather than jumping backwards.
	s.nextSampleAt = s.cycle - 100
	if next := s.nextWakeup(s.cycle + 10_000); next != s.cycle+1 {
		t.Errorf("nextWakeup with past sample event = %d, want %d", next, s.cycle+1)
	}
	s.nextSampleAt = s.cycle - s.cycle%s.sampleEvery + s.sampleEvery

	// And across a driven run, the scheduler never stalls or reverses.
	for i := 0; i < 2_000 && !s.Done(); i++ {
		next := s.nextWakeup(s.cycle + CancelCheckInterval)
		if next <= s.cycle {
			t.Fatalf("nextWakeup returned %d at cycle %d (not in the future)", next, s.cycle)
		}
		s.advanceTo(next)
	}
}

// TestCtxSwitchZeroDuration exercises the genuine past-wakeup shape the
// ctx machinery documents: Duration 0 makes resumeAt equal the
// switch-out cycle, so the switch-in wakeup is already in the past when
// the scheduler sees it. Both engines must agree bit-for-bit.
func TestCtxSwitchZeroDuration(t *testing.T) {
	fixedExportClock(t, time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC))
	app := testApp(t)
	cfg := testConfig().WithPrefetcher(PFRnR)
	cfg.CtxSwitch = CtxSwitchConfig{Period: 5_000, Duration: 0}
	requireIdentical(t, cfg, app)
}

// TestCtxSwitchStormDegeneratesGracefully forces switch flips every few
// dozen cycles: the event engine degenerates to dense per-cycle stepping
// and must stay byte-identical to the stepped engine.
func TestCtxSwitchStormDegeneratesGracefully(t *testing.T) {
	fixedExportClock(t, time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC))
	fc := audit.FuzzConfig{Seed: 3}.WithDefaults()
	app := audit.Fuzz(fc)
	cfg := fuzzMachine(fc.Cores).WithPrefetcher(PFRnR)
	cfg.Audit = nil
	// Flips every 25-50 cycles — under the memory round-trip, so the
	// machine never drains between switches. (Even faster storms, e.g.
	// period 7, livelock the modeled machine itself identically under
	// both engines: the private caches are invalidated before any fill
	// can be used.)
	cfg.CtxSwitch = CtxSwitchConfig{Period: 50, Duration: 25}
	se, _ := requireIdentical(t, cfg, app)
	// The storm leaves few skippable gaps: the event engine must have
	// degenerated to mostly per-cycle stepping (rather than wedging, or
	// worse, skipping active cycles), simulating the large majority of
	// cycles densely.
	if ticked, total := se.TickedCycles(), se.Cycle(); ticked*2 < total {
		t.Errorf("event engine ticked only %d of %d cycles in a ctx storm", ticked, total)
	}
}

// TestSimultaneousWakeupsPreserveTickOrder: with every component due on
// the same cycle — dense fuzz traffic keeps cores, caches, LLC and DRAM
// all active — architectural equality with the stepped engine proves the
// event engine dispatches same-cycle work in the fixed Tick order
// (cores → L1/L2/prefetch → LLC → DRAM); any reordering would reshuffle
// queue contents and change the hashed state.
func TestSimultaneousWakeupsPreserveTickOrder(t *testing.T) {
	fixedExportClock(t, time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC))
	for _, seed := range []int64{5, 17} {
		fc := audit.FuzzConfig{Seed: seed, Pathological: true}.WithDefaults()
		app := audit.Fuzz(fc)
		cfg := fuzzMachine(fc.Cores).WithPrefetcher(PFRnRCombined)
		cfg.Audit = nil
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			requireIdentical(t, cfg, app)
		})
	}
}
