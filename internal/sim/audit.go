package sim

import (
	"fmt"
	"sort"

	"rnrsim/internal/audit"
	"rnrsim/internal/mem"
)

// registerAudit builds the invariant checker and registers every
// component's laws. Called once from New; a nil cfg.Audit leaves s.aud
// nil, which is the zero-overhead disabled path (one pointer compare
// per Tick, matching the telemetry pattern).
//
// Laws checked per sweep (see DESIGN.md "Correctness auditing"):
//
//	cpu<N>       ROB/LSQ occupancy and ring geometry, dispatch registers
//	cpu<N>/lsq   LSQ slots == demand requests held by the private L1
//	l1.<N> l2.<N> llc  queue caps, MSHR conservation, demand accounting,
//	             ring-deque integrity
//	rnr.c<N>     replay cursor geometry, metadata credits, division-table
//	             monotonicity, footprint consistency, prefetch
//	             classification, Cur Window episode monotonicity, and
//	             cumulative-counter monotonicity of rnr.Stats
//	rnr.c<N>/l2  useful + late + early + out-of-window <= issued (RnR
//	             alone only: rnr-combined shares the L2 counters with
//	             next-line, the LLC-destination ablation bypasses the L2)
//	dram         queue caps, read conservation, traffic-class accounting,
//	             row-buffer accounting, bank-register sanity
//	obs          flight-recorder conservation (issued == sum of outcomes
//	             + open) and outcome-counter monotonicity
//	obs/div.c<N> divergence-counter monotonicity, compared <= observed,
//	             unmatched <= compared
func (s *System) registerAudit() {
	if s.cfg.Audit == nil {
		return
	}
	s.aud = audit.New(*s.cfg.Audit)
	s.auditEvery = s.cfg.Audit.EffectiveInterval()

	for c := range s.cores {
		core, l1 := s.cores[c], s.l1s[c]
		s.aud.Register(fmt.Sprintf("cpu%d", c), core.AuditInvariants)
		s.aud.Register(fmt.Sprintf("cpu%d/lsq", c), func(report func(string)) {
			_, lsq := core.Occupancy()
			if held := l1.AuditDemandHolds(); held != lsq {
				report(fmt.Sprintf("LSQ conservation: %d slots used != %d demand requests held by L1", lsq, held))
			}
		})
		s.aud.Register(fmt.Sprintf("l1.%d", c), s.l1s[c].AuditInvariants)
		s.aud.Register(fmt.Sprintf("l2.%d", c), s.l2s[c].AuditInvariants)
		if e := s.engines[c]; e != nil {
			a := e.NewAuditor()
			// SeqTableBytes/DivTableBytes are footprint gauges recomputed
			// at each record finalization, not cumulative counters.
			mono := audit.NewMonotone("SeqTableBytes", "DivTableBytes")
			eng := e
			s.aud.Register(fmt.Sprintf("rnr.c%d", c), func(report func(string)) {
				a.Check(report)
				mono.Check(&eng.Stats, report)
			})
			if s.prefKind(c) == PFRnR && !s.cfg.RnRPrefetchToLLC {
				// With RnR alone prefetching into the L2, the engine's
				// replay prefetches are the only prefetch traffic there,
				// so the four timeliness classes partition a subset of
				// the issued prefetches.
				l2 := s.l2s[c]
				s.aud.Register(fmt.Sprintf("rnr.c%d/l2", c), func(report func(string)) {
					classified := l2.Stats.PrefetchUseful + l2.Stats.PrefetchLate +
						eng.Stats.EarlyPrefetches + eng.Stats.OutOfWindow
					if classified > eng.Stats.Prefetches {
						report(fmt.Sprintf(
							"classification: useful %d + late %d + early %d + out-of-window %d > issued %d",
							l2.Stats.PrefetchUseful, l2.Stats.PrefetchLate,
							eng.Stats.EarlyPrefetches, eng.Stats.OutOfWindow, eng.Stats.Prefetches))
					}
				})
			}
		}
	}
	if len(s.llcs) == 1 {
		s.aud.Register("llc", s.llcs[0].AuditInvariants)
	} else {
		for b := range s.llcs {
			s.aud.Register(fmt.Sprintf("llc.b%d", b), s.llcs[b].AuditInvariants)
		}
	}
	if s.dir != nil {
		s.aud.Register("coherence", func(report func(string)) {
			// Directory-internal laws (single-M owner, no empty or
			// Invalid entries) plus the inclusion law sharer-mask ⊇
			// actual holders, with the holder masks swept from the
			// private tag arrays.
			holders := make(map[mem.Addr]uint64)
			for c := range s.cores {
				bit := uint64(1) << uint(c)
				s.l1s[c].ForEachResident(func(line mem.Addr) { holders[line] |= bit })
				s.l2s[c].ForEachResident(func(line mem.Addr) { holders[line] |= bit })
			}
			s.dir.AuditInvariants(func(line mem.Addr) uint64 { return holders[line] }, report)
			// The dual direction, no stale-line demand hits, is counted
			// on the L1 access path (see wireCoherence): a demand hit on
			// a line the directory does not credit to the hitting core.
			if s.staleHits > 0 {
				report(fmt.Sprintf("%d demand hits on lines outside the directory's sharer masks", s.staleHits))
			}
		})
	}
	s.aud.Register("dram", s.mc.AuditInvariants)
	if rec := s.obsRec; rec != nil {
		// The flight recorder's conservation law (every prefetch has
		// exactly one outcome) plus monotonicity of its outcome counters
		// and of each engine's divergence counters.
		mono := audit.NewMonotone()
		s.aud.Register("obs", func(report func(string)) {
			rec.CheckInvariants(report)
			st := rec.Stats()
			mono.Check(&st, report)
		})
		for c := range s.engines {
			e := s.engines[c]
			if e == nil || e.Divergence() == nil {
				continue
			}
			divMono := audit.NewMonotone()
			p := e.Divergence()
			s.aud.Register(fmt.Sprintf("obs/div.c%d", c), func(report func(string)) {
				divMono.Check(&p.Stats, report)
				if p.Stats.UnmatchedMisses > p.Stats.ComparedMisses {
					report(fmt.Sprintf("divergence: unmatched %d > compared %d",
						p.Stats.UnmatchedMisses, p.Stats.ComparedMisses))
				}
				if p.Stats.ComparedMisses > p.Stats.ObservedMisses {
					report(fmt.Sprintf("divergence: compared %d > observed %d",
						p.Stats.ComparedMisses, p.Stats.ObservedMisses))
				}
			})
		}
	}
}

// Audit returns the invariant checker attached at construction (nil
// when auditing is disabled). Tests use it to inspect violations
// beyond the summary error.
func (s *System) Audit() *audit.Checker { return s.aud }

// stateHash folds the architectural state of every simulated component
// — core ROB/LSQ and dispatch registers, cache tag arrays with
// LRU/dirty state, queues and MSHRs, the DRAM controller's banks and
// queues, and the RnR engines' registers, metadata tables and stats —
// into one FNV-1a digest. It runs once per run in collect (never on the
// tick path) and is independent of the audit configuration, so audited
// and unaudited runs of the same key produce identical results.
func (s *System) stateHash() uint64 {
	h := audit.NewHash()
	mix := h.Mix()
	mix(s.cycle)
	for c := range s.cores {
		s.cores[c].HashState(mix)
		s.l1s[c].HashState(mix)
		s.l2s[c].HashState(mix)
		if e := s.engines[c]; e != nil {
			e.HashState(mix)
		}
	}
	for _, llc := range s.llcs {
		llc.HashState(mix)
	}
	if s.xcore != nil {
		// Folded only when the cross-core prefetcher is attached, so
		// configurations without it keep their historical hashes.
		s.xcore.HashState(mix)
	}
	if s.ideal != nil {
		s.ideal.HashState(mix)
	}
	s.mc.HashState(mix)
	// Group 0's iteration stamps occupy the historical fold position;
	// extra barrier groups (composed co-runs only) fold after. The
	// coherence directory is deliberately excluded: its observable
	// effects are already hashed through the private tag arrays, and
	// with one core it can never act — which is exactly what keeps a
	// 1-core coherence-enabled machine hash-identical (see
	// internal/coherence).
	mix(uint64(len(s.iterEnd[0])))
	for _, v := range s.iterEnd[0] {
		mix(v)
	}
	for g := 1; g < len(s.iterEnd); g++ {
		mix(uint64(len(s.iterEnd[g])))
		for _, v := range s.iterEnd[g] {
			mix(v)
		}
	}
	return h.Sum()
}

// coreHashes folds each core's private domain — core, L1, L2, RnR
// engine — into its own digest, so a multi-programmed run can compare
// one core's final state against the same program's solo run (the idle
// cores of a partially loaded machine fold empty caches into the
// combined hash, which per-core digests see through).
func (s *System) coreHashes() []uint64 {
	out := make([]uint64, len(s.cores))
	for c := range s.cores {
		h := audit.NewHash()
		mix := h.Mix()
		s.cores[c].HashState(mix)
		s.l1s[c].HashState(mix)
		s.l2s[c].HashState(mix)
		if e := s.engines[c]; e != nil {
			e.HashState(mix)
		}
		out[c] = h.Sum()
	}
	return out
}

// HashState folds the ideal LLC's state: the resident set (sorted — the
// map has no deterministic order) and the buffered hits.
func (c *idealLLC) HashState(mix func(uint64)) {
	lines := make([]mem.Addr, 0, len(c.resident))
	for l := range c.resident {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	mix(uint64(len(lines)))
	for _, l := range lines {
		mix(uint64(l))
	}
	mix(uint64(len(c.pending)))
	for _, p := range c.pending {
		mix(p.finish)
		mix(uint64(p.req.Line))
	}
}
