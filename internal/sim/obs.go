package sim

import (
	"fmt"

	"rnrsim/internal/obs"
	"rnrsim/internal/rnr"
)

// registerObs builds the flight recorder and attaches one lifecycle
// view per prefetch destination plus a divergence probe per RnR engine.
// Called once from New, before registerTelemetry (so the telemetry
// layer can register divergence probes) and before registerAudit (so
// the audit layer can watch the recorder's counters). A nil cfg.Obs
// leaves s.obsRec nil — the disabled path is one pointer compare per
// cache event, the same discipline as telemetry and audit.
//
// Views attach where prefetches are issued (see issueFunc): the shared
// LLC under the §III destination ablation, each private L2 otherwise.
// Prefetch children that a miss propagates to lower levels carry a
// completion callback and are not counted — the lifecycle of a prefetch
// belongs to the level it was issued into.
func (s *System) registerObs() {
	if s.cfg.Obs == nil {
		return
	}
	s.obsRec = obs.NewRecorder(*s.cfg.Obs)
	if s.cfg.RnRPrefetchToLLC || s.cfg.CrossCore {
		// Prefetches land in the shared LLC (destination ablation or the
		// cooperative cross-core prefetcher): one view per bank, with the
		// single-bank machine keeping the historical "llc" view name.
		for b := range s.llcs {
			name := "llc"
			if len(s.llcs) > 1 {
				name = fmt.Sprintf("llc.b%d", b)
			}
			s.llcs[b].Lifecycle = s.obsRec.View(name)
		}
	}
	if !s.cfg.RnRPrefetchToLLC {
		for c := range s.l2s {
			s.l2s[c].Lifecycle = s.obsRec.View(fmt.Sprintf("l2.%d", c))
		}
	}
	maxCompare := s.obsRec.Config().DivergenceMaxCompare
	for _, e := range s.engines {
		if e != nil {
			e.AttachDivergence(&rnr.DivergenceProbe{MaxCompare: maxCompare})
		}
	}
}

// Obs returns the flight recorder attached at construction (nil when
// lifecycle observability is disabled). Tests use it to inspect open
// records and per-view stats mid-run.
func (s *System) Obs() *obs.Recorder { return s.obsRec }

// collectObs finalizes the flight recorder and builds Result.Obs:
// the lifecycle summary plus the divergence windows gathered from
// every engine in core order.
func (s *System) collectObs(r *Result) {
	if s.obsRec == nil {
		return
	}
	s.obsRec.Finalize(s.cycle)
	sum := s.obsRec.Summarize()
	var windows []obs.WindowScoreJSON
	for c, e := range s.engines {
		if e == nil || e.Divergence() == nil {
			continue
		}
		for _, w := range e.Divergence().WindowScores() {
			windows = append(windows, obs.WindowScoreJSON{
				Core:         c,
				Window:       w.Window,
				Predicted:    w.Predicted,
				Observed:     w.Observed,
				EditDistance: w.EditDistance,
				Score:        w.Score,
			})
		}
	}
	sum.AttachDivergence(windows)
	r.Obs = sum
}
