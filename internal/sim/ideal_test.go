package sim

import (
	"testing"

	"rnrsim/internal/mem"
)

// instantMem completes reads immediately for idealLLC unit tests.
type instantMem struct {
	reads  int
	writes int
	clock  uint64
}

func (m *instantMem) TryEnqueue(r *mem.Request) bool {
	switch r.Type {
	case mem.ReqWriteback, mem.ReqMetaWrite:
		m.writes++
		r.Complete(m.clock)
	default:
		m.reads++
		r.Complete(m.clock + 100)
	}
	return true
}

func TestIdealLLCColdMissThenHit(t *testing.T) {
	lower := &instantMem{}
	c := newIdealLLC(40, lower)

	var first, second uint64
	r1 := mem.NewRequest(mem.ReqLoad, 0x1000, 1, 0, 0)
	r1.Done = func(cy uint64) { first = cy }
	c.TryEnqueue(r1)
	if lower.reads != 1 {
		t.Fatalf("cold miss did not reach memory (reads=%d)", lower.reads)
	}
	if first == 0 {
		t.Fatal("cold miss never completed")
	}

	r2 := mem.NewRequest(mem.ReqLoad, 0x1000, 1, 0, 0)
	r2.Done = func(cy uint64) { second = cy }
	c.TryEnqueue(r2)
	for i := uint64(1); i <= 60; i++ {
		c.Tick(i)
	}
	if second == 0 {
		t.Fatal("hit never completed")
	}
	if lower.reads != 1 {
		t.Errorf("hit leaked to memory (reads=%d)", lower.reads)
	}
}

func TestIdealLLCAbsorbsWritebacksButNotMetadata(t *testing.T) {
	lower := &instantMem{}
	c := newIdealLLC(40, lower)

	wb := mem.NewRequest(mem.ReqWriteback, 0x2000, 0, -1, 0)
	done := false
	wb.Done = func(uint64) { done = true }
	c.TryEnqueue(wb)
	if lower.writes != 0 {
		t.Error("ideal LLC forwarded a data writeback")
	}
	if !done {
		t.Error("absorbed writeback not completed")
	}

	mw := mem.NewRequest(mem.ReqMetaWrite, 0x3000, 0, 0, 0)
	c.TryEnqueue(mw)
	if lower.writes != 1 {
		t.Error("metadata write must reach memory for honest accounting")
	}
	mr := mem.NewRequest(mem.ReqMetaRead, 0x3000, 0, 0, 0)
	mr.Done = func(uint64) {}
	c.TryEnqueue(mr)
	if lower.reads != 1 {
		t.Error("metadata read must bypass the ideal LLC")
	}
}

func TestBarrierOpensWhenAllArrive(t *testing.T) {
	b := newBarrier([]int{0, 1, 2})
	doneCores := map[int]bool{}
	b.done = func(c int) bool { return doneCores[c] }
	opened := []int32{}
	b.onOpen = func(iter int32) { opened = append(opened, iter) }

	b.arrive(0, 5)
	b.arrive(1, 5)
	if len(opened) != 0 {
		t.Fatal("barrier opened early")
	}
	if !b.gated(0) || !b.gated(1) || b.gated(2) {
		t.Error("gating state wrong mid-barrier")
	}
	b.arrive(2, 5)
	if len(opened) != 1 || opened[0] != 5 {
		t.Fatalf("opened = %v", opened)
	}
	if b.gated(0) || b.gated(1) || b.gated(2) {
		t.Error("cores still gated after open")
	}
}

func TestBarrierTreatsDrainedCoresAsArrived(t *testing.T) {
	b := newBarrier([]int{0, 1})
	doneCores := map[int]bool{1: true} // core 1 finished its trace
	b.done = func(c int) bool { return doneCores[c] }
	opened := 0
	b.onOpen = func(int32) { opened++ }
	b.arrive(0, 7)
	if opened != 1 {
		t.Errorf("barrier did not open with a drained core (opened=%d)", opened)
	}
}
