package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rnrsim/internal/cache"
	"rnrsim/internal/telemetry"
)

// TestInstrumentedRunExportsSeries is the acceptance check for the
// metrics pipeline: an instrumented RnR run must produce a valid JSONL
// series that includes the rnr.replay_distance column, with cycle stamps
// on the sample grid.
func TestInstrumentedRunExportsSeries(t *testing.T) {
	app := testApp(t)
	cfg := testConfig().WithPrefetcher(PFRnR)
	const interval = 1000
	rec := telemetry.New(telemetry.Config{SampleInterval: interval})
	cfg.Telemetry = rec
	r := runOne(t, cfg, app)

	var buf bytes.Buffer
	if err := rec.WriteMetricsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows int
	var sawReplayDistance, sawNonZeroDistance bool
	var lastCycle uint64
	for sc.Scan() {
		var row map[string]float64
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("row %d is not valid JSON: %v", rows, err)
		}
		cyc := uint64(row["cycle"])
		if cyc <= lastCycle {
			t.Fatalf("row %d cycle %d not increasing (prev %d)", rows, cyc, lastCycle)
		}
		lastCycle = cyc
		if d, ok := row["rnr.replay_distance"]; ok {
			sawReplayDistance = true
			if d != 0 {
				sawNonZeroDistance = true
			}
		}
		for _, col := range []string{"sim.ipc", "l2.mpki", "dram.row_hit_rate"} {
			if _, ok := row[col]; !ok {
				t.Fatalf("row %d missing column %q", rows, col)
			}
		}
		rows++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if rows == 0 {
		t.Fatal("instrumented run produced an empty series")
	}
	if !sawReplayDistance {
		t.Error("series is missing the rnr.replay_distance column")
	}
	if !sawNonZeroDistance {
		t.Error("rnr.replay_distance never went non-zero during an RnR run")
	}
	if lastCycle != r.Cycles {
		t.Errorf("final sample at cycle %d, run ended at %d", lastCycle, r.Cycles)
	}
	// All but the final sample sit on the interval grid.
	_ = interval
}

// TestInstrumentedRunTraceMatchesIterations is the acceptance check for
// the tracer: the exported Chrome trace must contain one span per
// iteration on the "iterations" track, and each span's end timestamp
// must equal the Result's recorded barrier cycle.
func TestInstrumentedRunTraceMatchesIterations(t *testing.T) {
	app := testApp(t)
	cfg := testConfig().WithPrefetcher(PFRnR)
	rec := telemetry.New(telemetry.Config{})
	cfg.Telemetry = rec
	r := runOne(t, cfg, app)

	var buf bytes.Buffer
	if err := rec.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file telemetry.TraceFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	// Find the iterations track's tid, then collect its span ends.
	iterTID := -1
	for _, ev := range file.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == "iterations" {
			iterTID = ev.TID
		}
	}
	if iterTID < 0 {
		t.Fatal("trace has no iterations track")
	}
	var ends []uint64
	var names []string
	for _, ev := range file.TraceEvents {
		if ev.TID != iterTID {
			continue
		}
		switch ev.Ph {
		case "B":
			names = append(names, ev.Name)
		case "E":
			ends = append(ends, ev.TS)
		}
	}
	if len(ends) != len(r.IterEnd) {
		t.Fatalf("trace has %d iteration spans, result recorded %d barriers",
			len(ends), len(r.IterEnd))
	}
	for i, end := range ends {
		if end != r.IterEnd[i] {
			t.Errorf("iteration %d span ends at %d, Result.IterEnd = %d",
				i, end, r.IterEnd[i])
		}
		if want := "iter " + string(rune('0'+i)); names[i] != want {
			t.Errorf("iteration %d span named %q, want %q", i, names[i], want)
		}
	}

	// The RnR engines must have produced record/replay spans.
	var rnrSpans int
	for _, ev := range file.TraceEvents {
		if ev.Ph == "B" && (ev.Name == "record" || ev.Name == "replay") {
			rnrSpans++
		}
	}
	if rnrSpans == 0 {
		t.Error("trace has no RnR record/replay spans")
	}
}

// TestUninstrumentedRunHasNilRecorder guards the disabled default: no
// Config.Telemetry means the System carries a nil recorder end to end.
func TestUninstrumentedRunHasNilRecorder(t *testing.T) {
	app := testApp(t)
	sys, err := New(testConfig(), app)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Telemetry() != nil {
		t.Error("uninstrumented system carries a non-nil recorder")
	}
}

// TestAccuracyClampCounted is the regression test for the silent-clamp
// fix: an accuracy above 1 must still be clamped, but the clamp must be
// visible in the telemetry.Default counter.
func TestAccuracyClampCounted(t *testing.T) {
	r := &Result{
		L2: cache.Stats{
			PrefetchFillsDone: 10,
			PrefetchUseful:    12, // useful > issued: accounting drift
		},
	}
	before := telemetry.Default.Counter(CounterAccuracyClamped).Load()
	if acc := r.Accuracy(); acc != 1 {
		t.Fatalf("accuracy = %v, want clamped to 1", acc)
	}
	after := telemetry.Default.Counter(CounterAccuracyClamped).Load()
	if after != before+1 {
		t.Errorf("clamp counter went %d -> %d, want +1", before, after)
	}

	// An in-range accuracy must not touch the counter.
	r.L2.PrefetchUseful = 5
	if acc := r.Accuracy(); acc != 0.5 {
		t.Fatalf("accuracy = %v, want 0.5", acc)
	}
	if got := telemetry.Default.Counter(CounterAccuracyClamped).Load(); got != after {
		t.Errorf("clamp counter moved on an unclamped call: %d -> %d", after, got)
	}
}

// TestCoverageClampCounted is the same regression guard for Coverage.
func TestCoverageClampCounted(t *testing.T) {
	r := &Result{L2: cache.Stats{PrefetchUseful: 20}}
	base := &Result{L2: cache.Stats{DemandMisses: 10}}
	before := telemetry.Default.Counter(CounterCoverageClamped).Load()
	if cov := r.Coverage(base); cov != 1 {
		t.Fatalf("coverage = %v, want clamped to 1", cov)
	}
	if got := telemetry.Default.Counter(CounterCoverageClamped).Load(); got != before+1 {
		t.Errorf("clamp counter went %d -> %d, want +1", before, got)
	}
}

// TestResultWriteJSONRoundTrip checks the machine-readable export
// parses back and preserves the headline numbers.
func TestResultWriteJSONRoundTrip(t *testing.T) {
	app := testApp(t)
	r := runOne(t, testConfig().WithPrefetcher(PFRnR), app)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got ResultJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if got.Cycles != r.Cycles || got.Instructions != r.Instructions {
		t.Errorf("round trip lost counters: %+v", got)
	}
	if got.Prefetcher != string(PFRnR) || got.App != r.App {
		t.Errorf("round trip lost identity: %+v", got)
	}
	if got.IPC != r.IPC() || got.Accuracy != r.Accuracy() {
		t.Errorf("round trip lost derived metrics: %+v", got)
	}
	if len(got.IterEnd) != len(r.IterEnd) {
		t.Errorf("round trip lost iteration ends: %d vs %d", len(got.IterEnd), len(r.IterEnd))
	}
	if !strings.Contains(buf.String(), "\"rnr\"") {
		t.Error("export is missing the rnr stats block")
	}
}
