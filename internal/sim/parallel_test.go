package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"rnrsim/internal/audit"
	"rnrsim/internal/obs"
	"rnrsim/internal/telemetry"

	"rnrsim/internal/apps"
)

// runParallel builds and runs one system with the parallel per-core
// scheduler enabled, returning the result and the system (for the span
// diagnostics).
func runParallel(t *testing.T, cfg Config, app *apps.App) (*Result, *System) {
	t.Helper()
	cfg.CoreParallel = true
	cfg.ForceCycleStepped = false
	s, err := New(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	return r, s
}

// requireParallelIdentical is the three-way differential: the parallel
// engine vs the serial event engine vs the legacy cycle-stepped engine,
// held to identical state hashes, per-core sub-hashes and byte-identical
// export envelopes. Callers must pin the export clock first (in the
// parent test when subtests run in parallel). Returns the parallel
// system so callers can assert on span formation.
func requireParallelIdentical(t *testing.T, cfg Config, app *apps.App) *System {
	t.Helper()
	rp, sp := runParallel(t, cfg, app)
	re, _ := runEngine(t, cfg, app, false)
	rs, _ := runEngine(t, cfg, app, true)
	if rp.StateHash != re.StateHash {
		t.Errorf("state hash: parallel %016x != event %016x", rp.StateHash, re.StateHash)
	}
	if rp.StateHash != rs.StateHash {
		t.Errorf("state hash: parallel %016x != stepped %016x", rp.StateHash, rs.StateHash)
	}
	if !reflect.DeepEqual(rp.CoreHashes, re.CoreHashes) {
		t.Errorf("core sub-hashes: parallel %v != event %v", rp.CoreHashes, re.CoreHashes)
	}
	bp, be, bs := exportBytes(t, rp), exportBytes(t, re), exportBytes(t, rs)
	if !bytes.Equal(bp, be) {
		t.Errorf("export envelope differs: parallel vs event\nparallel: %.2048s\nevent:    %.2048s", bp, be)
	}
	if !bytes.Equal(bp, bs) {
		t.Errorf("export envelope differs: parallel vs stepped")
	}
	return sp
}

// parallelCoRunConfig is the multicore co-run machine minus the
// coherence directory: per-core prefetchers, a banked LLC and the
// cooperative cross-core prefetcher — everything that is window-safe
// (the cross-core table trains and issues only inside LLC bank ticks,
// which the horizon freezes). Coherence itself hooks private L1 demand
// processing into the shared directory, so coherent machines keep the
// serial engine; TestParallelCoherenceFallback covers that path.
func parallelCoRunConfig() Config {
	cfg := Test()
	cfg.Cores = 2
	cfg.PerCorePrefetchers = []PrefetcherKind{PFRnR, PFNextLine}
	cfg.LLCBanks = 2
	cfg.CrossCore = true
	return cfg
}

// TestParallelDifferentialMatrix sweeps the configurations whose
// in-window behaviour differs — every prefetcher family (demand-trained
// and cycle-driven), audit sweeps, the lifecycle observer, the ideal
// LLC, context switching, banked LLCs with the cross-core prefetcher,
// and mixed per-core assignments — and holds the parallel engine to
// byte-identical export envelopes against both serial engines.
func TestParallelDifferentialMatrix(t *testing.T) {
	fixedExportClock(t, time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC))
	app := testApp(t)
	type tcase struct {
		name string
		cfg  Config
	}
	cases := []tcase{
		{"none", testConfig().WithPrefetcher(PFNone)},
		{"nextline", testConfig().WithPrefetcher(PFNextLine)},
		{"stream", testConfig().WithPrefetcher(PFStream)},
		{"misb", testConfig().WithPrefetcher(PFMISB)},
		{"droplet", testConfig().WithPrefetcher(PFDroplet)},
		{"rnr", testConfig().WithPrefetcher(PFRnR)},
		{"rnr-combined", testConfig().WithPrefetcher(PFRnRCombined)},
	}

	mixed := testConfig()
	mixed.Name = "test+mixed"
	mixed.PerCorePrefetchers = []PrefetcherKind{PFRnR, PFNextLine, PFStream, PFNone}
	cases = append(cases, tcase{"mixed-per-core", mixed})

	audited := testConfig().WithPrefetcher(PFRnR)
	audited.Audit = &audit.Config{Interval: 256}
	cases = append(cases, tcase{"rnr+audit", audited})

	observed := testConfig().WithPrefetcher(PFRnR)
	observed.Obs = &obs.Config{}
	cases = append(cases, tcase{"rnr+obs", observed})

	ideal := testConfig().WithPrefetcher(PFNone)
	ideal.IdealLLC = true
	cases = append(cases, tcase{"ideal-llc", ideal})

	ctxCfg := testConfig().WithPrefetcher(PFRnR)
	ctxCfg.CtxSwitch = CtxSwitchConfig{Period: 20_000, Duration: 7_000}
	cases = append(cases, tcase{"rnr+ctx", ctxCfg})

	banked := testConfig().WithPrefetcher(PFNextLine)
	banked.LLCBanks = 2
	cases = append(cases, tcase{"nextline+2banks", banked})

	oneWorker := testConfig().WithPrefetcher(PFRnR)
	oneWorker.Name = "test+rnr+1worker"
	oneWorker.CoreParallelWorkers = 1
	cases = append(cases, tcase{"rnr+1worker", oneWorker})

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			requireParallelIdentical(t, tc.cfg, app)
		})
	}
}

// TestParallelCoRunDifferential runs the multi-programmed co-run shape
// (disjoint jobs, per-core prefetchers, banked LLC, cross-core
// prefetcher) through the three-way differential, and requires that the
// parallel scheduler actually formed domain spans — a vacuously serial
// "parallel" run would pass any differential.
func TestParallelCoRunDifferential(t *testing.T) {
	fixedExportClock(t, time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC))
	sp := requireParallelIdentical(t, parallelCoRunConfig(), coRunApp(t))
	spans, cycles := sp.ParallelSpans()
	if spans == 0 || cycles == 0 {
		t.Errorf("parallel scheduler formed no domain spans (spans=%d, cycles=%d); differential is vacuous",
			spans, cycles)
	}
	t.Logf("co-run: %d spans covering %d cycles of %d total", spans, cycles, sp.Cycle())
}

// TestParallelSpansForm pins, per matrix family, that quiet windows
// actually open on the SPMD workload — the horizon terms are allowed to
// refuse individual windows, but a family where no window ever opens
// means the parallel path is dead code for it.
func TestParallelSpansForm(t *testing.T) {
	app := testApp(t)
	for _, pf := range []PrefetcherKind{PFNone, PFNextLine, PFRnR, PFRnRCombined} {
		pf := pf
		t.Run(string(pf), func(t *testing.T) {
			t.Parallel()
			_, sp := runParallel(t, testConfig().WithPrefetcher(pf), app)
			spans, cycles := sp.ParallelSpans()
			if spans == 0 {
				t.Errorf("%s: no domain spans formed over %d cycles", pf, sp.Cycle())
			}
			t.Logf("%s: %d spans / %d in-window cycles / %d total", pf, spans, cycles, sp.Cycle())
		})
	}
}

// TestParallelCoherenceFallback pins the eligibility gate: a coherent
// machine must never open a window (the directory hooks private L1
// demand processing into shared state), and the flag must degrade to
// the serial engine with identical results rather than erroring.
func TestParallelCoherenceFallback(t *testing.T) {
	fixedExportClock(t, time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC))
	cfg := coRunConfig() // coherent co-run machine
	sp := requireParallelIdentical(t, cfg, coRunApp(t))
	if spans, _ := sp.ParallelSpans(); spans != 0 {
		t.Errorf("coherent machine ran %d parallel spans; must fall back serial", spans)
	}
}

// TestParallelSingleCoreNoop pins the other fallback: one core has
// nothing to overlap, so the flag is a no-op and results are identical.
func TestParallelSingleCoreNoop(t *testing.T) {
	fixedExportClock(t, time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC))
	cfg := oneCoreConfig().WithPrefetcher(PFRnR)
	app, err := apps.BuildCores("pagerank", "urand", apps.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp := requireParallelIdentical(t, cfg, app)
	if spans, _ := sp.ParallelSpans(); spans != 0 {
		t.Errorf("1-core machine ran %d parallel spans", spans)
	}
}

// TestParallelTelemetryJSONLIdentical extends the sampler-jump
// regression to the parallel engine: windows must close strictly before
// every sample event, so the JSONL series — stamps and values — is
// byte-identical to the serial engines'.
func TestParallelTelemetryJSONLIdentical(t *testing.T) {
	app := testApp(t)
	series := func(parallel bool) []byte {
		cfg := testConfig().WithPrefetcher(PFRnR)
		cfg.CoreParallel = parallel
		rec := telemetry.New(telemetry.Config{SampleInterval: 1000})
		cfg.Telemetry = rec
		runEngine(t, cfg, app, false)
		var buf bytes.Buffer
		if err := rec.WriteMetricsJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	pl, ev := series(true), series(false)
	if !bytes.Equal(pl, ev) {
		t.Errorf("telemetry JSONL differs\nparallel: %.512s\nserial:   %.512s", pl, ev)
	}
}

// TestParallelIssueStampRegression pins the in-window issue-stamp path:
// prefetch-issue and RnR-metadata requests used to be stamped from the
// shared cycle counter (s.cycle), which the parallel scheduler only
// advances at span boundaries — in-window issues would carry the span's
// *start* cycle. The stamps are transient (they live only while the
// request sits in a queue, and the final state hash runs on drained
// queues), so today's differentials cannot see the difference; the
// per-core cycle mirror (System.coreCycle) exists to keep Request.Issue
// exact anyway, for mid-run state hashing and any future latency
// accounting. This test holds the configuration where in-window issues
// are densest — cycle-driven replay prefetching under the lifecycle
// observer — to byte-equality, and requires that spans actually formed.
func TestParallelIssueStampRegression(t *testing.T) {
	fixedExportClock(t, time.Date(2026, 3, 4, 5, 6, 7, 0, time.UTC))
	cfg := testConfig().WithPrefetcher(PFRnRCombined)
	cfg.Obs = &obs.Config{}
	sp := requireParallelIdentical(t, cfg, testApp(t))
	if spans, _ := sp.ParallelSpans(); spans == 0 {
		t.Skip("no spans formed; regression not exercised on this machine shape")
	}
}

// TestFuzzedTracesParallelDifferential is the fuzz safety net for the
// parallel scheduler: randomized marker/load interleavings — including
// pathological shapes — run through the parallel and serial event
// engines, and the final state hashes, per-core sub-hashes and
// architectural statistics must be identical. A divergence here means a
// horizon term is unsound (a private-domain action escaped into the
// window, or a domain observed stale shared state).
func TestFuzzedTracesParallelDifferential(t *testing.T) {
	seeds := make([]int64, 0, 32)
	for s := int64(1); s <= 32; s++ {
		seeds = append(seeds, s)
	}
	if testing.Short() {
		seeds = seeds[:8]
	}
	for _, patho := range []bool{false, true} {
		patho := patho
		t.Run(fmt.Sprintf("patho=%v", patho), func(t *testing.T) {
			t.Parallel()
			var spansTotal uint64
			for _, seed := range seeds {
				fc := audit.FuzzConfig{Seed: seed, Pathological: patho}.WithDefaults()
				app := audit.Fuzz(fc)
				run := func(parallel bool) (*Result, *System) {
					cfg := fuzzMachine(fc.Cores).WithPrefetcher(PFRnR)
					cfg.CoreParallel = parallel
					s, err := New(cfg, app)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					r, err := s.RunAll()
					if err != nil {
						t.Fatalf("seed %d (parallel=%v): %v", seed, parallel, err)
					}
					return r, s
				}
				pl, sp := run(true)
				ev, _ := run(false)
				if pl.StateHash != ev.StateHash {
					t.Errorf("seed %d: state hash parallel %016x != serial %016x",
						seed, pl.StateHash, ev.StateHash)
				}
				if !reflect.DeepEqual(pl.CoreHashes, ev.CoreHashes) {
					t.Errorf("seed %d: core sub-hashes parallel %v != serial %v",
						seed, pl.CoreHashes, ev.CoreHashes)
				}
				if pl.Cycles != ev.Cycles || pl.Instructions != ev.Instructions {
					t.Errorf("seed %d: cycles/instructions diverged: parallel %d/%d, serial %d/%d",
						seed, pl.Cycles, pl.Instructions, ev.Cycles, ev.Instructions)
				}
				if pl.L2 != ev.L2 || pl.LLC != ev.LLC || pl.DRAM != ev.DRAM {
					t.Errorf("seed %d: memory-system stats diverged", seed)
				}
				spans, _ := sp.ParallelSpans()
				spansTotal += spans
			}
			// The fuzz traces are load-dense and audited every 64 cycles,
			// so individual seeds may open few windows — but across the
			// whole pool at least some must form, or the harness is
			// exercising nothing.
			if spansTotal == 0 {
				t.Error("no seed opened a single domain span; fuzz differential is vacuous")
			}
			t.Logf("patho=%v: %d spans across %d seeds", patho, spansTotal, len(seeds))
		})
	}
}

// TestFuzzedCoherentParallelDifferential mirrors the coherent fuzz
// sweep with the parallel flag set: shared-store interleavings drive
// the directory, the eligibility gate must keep every run serial, and
// results must match the serial engine exactly.
func TestFuzzedCoherentParallelDifferential(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 42, 99991, 2026}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		fc := audit.FuzzConfig{Seed: seed}.WithDefaults()
		app := audit.Fuzz(fc)
		run := func(parallel bool) *Result {
			cfg := fuzzMachine(fc.Cores).WithPrefetcher(PFRnR)
			cfg.Coherence = true
			cfg.CoreParallel = parallel
			s, err := New(cfg, app)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			r, err := s.RunAll()
			if err != nil {
				t.Fatalf("seed %d (parallel=%v): %v", seed, parallel, err)
			}
			return r
		}
		pl, ev := run(true), run(false)
		if pl.StateHash != ev.StateHash || !reflect.DeepEqual(pl.CoreHashes, ev.CoreHashes) {
			t.Errorf("seed %d: coherent fallback diverged: %016x/%v vs %016x/%v",
				seed, pl.StateHash, pl.CoreHashes, ev.StateHash, ev.CoreHashes)
		}
	}
}

// TestParallelDeterministic pins run-to-run determinism of the parallel
// engine itself: the pool's scheduling order varies freely between runs
// (workers race for jobs), and none of it may leak into results.
func TestParallelDeterministic(t *testing.T) {
	app := testApp(t)
	run := func() *Result {
		r, _ := runParallel(t, testConfig().WithPrefetcher(PFRnRCombined), app)
		return r
	}
	a, b := run(), run()
	if a.StateHash != b.StateHash || !reflect.DeepEqual(a.CoreHashes, b.CoreHashes) {
		t.Errorf("parallel runs diverged: %016x/%v vs %016x/%v",
			a.StateHash, a.CoreHashes, b.StateHash, b.CoreHashes)
	}
}
