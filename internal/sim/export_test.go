package sim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rnrsim/internal/coherence"
	"rnrsim/internal/prefetch"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fixedExportClock pins the export clock for the duration of a test so
// generated_at is deterministic.
func fixedExportClock(t *testing.T, at time.Time) {
	t.Helper()
	old := exportNow
	exportNow = func() time.Time { return at }
	t.Cleanup(func() { exportNow = old })
}

// TestStampEnvelope pins the export envelope contract: a fixed schema
// version plus an RFC 3339 UTC timestamp.
func TestStampEnvelope(t *testing.T) {
	fixedExportClock(t, time.Date(2026, 1, 2, 3, 4, 5, 987654321, time.FixedZone("X", 7*3600)))
	schema, generated := Stamp()
	if schema != "rnrsim.v1" {
		t.Fatalf("schema = %q, want %q", schema, "rnrsim.v1")
	}
	if schema != ExportSchemaVersion {
		t.Fatalf("Stamp schema %q != ExportSchemaVersion %q", schema, ExportSchemaVersion)
	}
	// Sub-second precision is dropped and the zone normalised to UTC.
	if generated != "2026-01-01T20:04:05Z" {
		t.Fatalf("generated_at = %q, want 2026-01-01T20:04:05Z", generated)
	}
}

// TestExportEnvelopeGolden locks the full export serialisation of a
// fixed Result against a golden file, envelope included. Run with
// -update to regenerate after an intentional schema change (which
// should also bump ExportSchemaVersion).
func TestExportEnvelopeGolden(t *testing.T) {
	fixedExportClock(t, time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC))
	r := &Result{
		ConfigName:   "pagerank/urand/none/",
		Prefetcher:   PFNone,
		App:          "pagerank",
		Input:        "urand",
		Cycles:       1000,
		Instructions: 1700,
		Iterations:   4,
		IterEnd:      []uint64{200, 400, 700, 1000},
		GroupIterEnd: [][]uint64{{200, 400, 700, 1000}, {350, 900}},
		InputBytes:   4096,
		Check:        42.5,
		CoreHashes:   []uint64{0x0123456789abcdef, 0xfedcba9876543210},
		Coherence:    &coherence.Stats{Upgrades: 3, Invalidations: 5, Downgrades: 2, Fills: 40, Evicts: 31},
		CrossCore:    &prefetch.CrossCoreStats{Trained: 12, Lookups: 9, Issued: 7, Dropped: 2},
	}
	got, err := json.MarshalIndent(r.Export(), "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "export_envelope.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("export drifted from golden (regenerate with -update and bump ExportSchemaVersion if intentional)\n got: %s\nwant: %s", got, want)
	}
	// The envelope must lead the document so consumers can sniff it
	// without parsing the whole export.
	head := `{
  "schema_version": "rnrsim.v1",
  "generated_at": "2026-01-02T03:04:05Z",`
	if !strings.HasPrefix(string(got), head) {
		t.Errorf("export does not start with the envelope:\n%s", got[:min(len(got), 120)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
