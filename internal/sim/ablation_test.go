package sim

import "testing"

func TestRecordAllAblationInflatesMetadata(t *testing.T) {
	app := testApp(t)
	missOnly := runOne(t, testConfig().WithPrefetcher(PFRnR), app)
	cfg := testConfig().WithPrefetcher(PFRnR)
	cfg.RnRRecordAll = true
	all := runOne(t, cfg, app)

	// §III: recording every access must record strictly more than
	// recording misses (locality exists even in sparse structures).
	if all.RnR.RecordedEntries+all.RnR.SeqOverflows <= missOnly.RnR.RecordedEntries {
		t.Errorf("record-all %d (+%d overflow) entries <= miss-only %d",
			all.RnR.RecordedEntries, all.RnR.SeqOverflows, missOnly.RnR.RecordedEntries)
	}
	if all.RnR.MetadataBytes() <= missOnly.RnR.MetadataBytes() {
		t.Errorf("record-all metadata %d <= miss-only %d",
			all.RnR.MetadataBytes(), missOnly.RnR.MetadataBytes())
	}
	// The run must still complete correctly.
	if all.Instructions != missOnly.Instructions {
		t.Error("ablation changed retired work")
	}
}

func TestLLCDestinationAblationRuns(t *testing.T) {
	app := testApp(t)
	cfg := testConfig().WithPrefetcher(PFRnR)
	cfg.RnRPrefetchToLLC = true
	res := runOne(t, cfg, app)
	if res.RnR.Prefetches == 0 {
		t.Fatal("LLC-destination replay issued nothing")
	}
	// Prefetch fills land at the LLC, not the private L2s.
	if res.LLC.PrefetchFillsDone == 0 {
		t.Error("no prefetch fills at the LLC destination")
	}
	if res.L2.PrefetchFillsDone != 0 {
		t.Errorf("L2 received %d prefetch fills under the LLC ablation", res.L2.PrefetchFillsDone)
	}
	base := runOne(t, testConfig(), app)
	if res.Instructions != base.Instructions {
		t.Error("ablation changed retired work")
	}
	// The paper's choice: the L2 destination should be at least as fast.
	l2dest := runOne(t, testConfig().WithPrefetcher(PFRnR), app)
	if float64(l2dest.Cycles) > float64(res.Cycles)*1.05 {
		t.Errorf("L2 destination (%d cycles) clearly worse than LLC destination (%d)",
			l2dest.Cycles, res.Cycles)
	}
}

func TestIdealLLCWithRnRDoesNotCrash(t *testing.T) {
	// Combined corner: infinite LLC plus RnR metadata traffic.
	app := testApp(t)
	cfg := testConfig().WithPrefetcher(PFRnR)
	cfg.IdealLLC = true
	res := runOne(t, cfg, app)
	if res.RnR.MetaReadLines == 0 {
		t.Error("metadata must still stream from memory under an ideal LLC")
	}
}
