package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rnrsim/internal/cache"
	"rnrsim/internal/coherence"
	"rnrsim/internal/cpu"
	"rnrsim/internal/dram"
	"rnrsim/internal/obs"
	"rnrsim/internal/prefetch"
	"rnrsim/internal/rnr"
	"rnrsim/internal/telemetry"
)

// Result is the statistical outcome of one simulation, with the derived
// metrics the paper's figures report.
type Result struct {
	ConfigName string
	Prefetcher PrefetcherKind
	App, Input string

	Cycles       uint64
	Instructions uint64
	Iterations   int
	IterEnd      []uint64 // global cycle at which iteration i's barrier opened

	// GroupIterEnd is IterEnd per barrier group, for multi-programmed
	// co-runs (nil when the machine has a single SPMD group; group 0's
	// slice then equals IterEnd).
	GroupIterEnd [][]uint64

	CoreStats []cpu.Stats
	IterL2    []cache.Stats // cumulative L2 stats at each iteration end
	L1, L2    cache.Stats
	LLC       cache.Stats
	// CoreL2 is each core's private-L2 stats individually, so a co-run
	// can compute per-core accuracy/coverage without the other jobs'
	// traffic diluting the denominators.
	CoreL2 []cache.Stats
	DRAM   dram.Stats
	RnR    rnr.Stats

	// Coherence is the MESI-lite directory's event counters (nil when
	// Config.Coherence was off); CrossCore the cooperative LLC
	// prefetcher's (nil when Config.CrossCore was off).
	Coherence *coherence.Stats
	CrossCore *prefetch.CrossCoreStats

	InputBytes uint64
	Check      float64

	// Obs is the prefetch-lifecycle flight recorder's summary (nil when
	// Config.Obs was nil): outcome attribution, latency histograms,
	// per-iteration outcome deltas and RnR divergence scores. Rendered
	// into the envelope's `lifecycle` and `histograms` sections.
	Obs *obs.Summary

	// CoreHashes folds each core's private domain (core, L1, L2, RnR
	// engine) into its own digest, letting differential tests compare
	// one core of a multi-programmed machine against a solo run.
	CoreHashes []uint64

	// StateHash is an FNV-1a digest of the complete architectural state
	// of the machine after the run drains: core ROB/LSQ registers, cache
	// tag arrays with LRU and dirty state, queues and MSHRs, the DRAM
	// controller's banks, and the RnR engines' registers, metadata
	// tables and statistics. Two runs of the same (config, app, input)
	// must produce the same hash regardless of how they were driven —
	// serial, through the parallel bench engine, or served by rnrd — and
	// regardless of whether auditing or telemetry was attached. The
	// differential tests in audit_system_test.go pin that equivalence.
	StateHash uint64
}

// IPC returns aggregate retired instructions per wall cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// L2MPKI returns private-L2 demand misses per thousand instructions
// (Fig. 7), aggregated over cores.
func (r *Result) L2MPKI() float64 { return r.L2.MPKI(r.Instructions) }

// UsefulPrefetches counts prefetched lines that served a demand: hits on
// prefetched lines plus demands that merged into in-flight prefetches
// (late but still useful), the ChampSim convention.
func (r *Result) UsefulPrefetches() uint64 {
	return r.L2.PrefetchUseful + r.L2.PrefetchLate
}

// TotalPrefetches counts prefetches that fetched data from below.
func (r *Result) TotalPrefetches() uint64 { return r.L2.PrefetchFillsDone }

// CounterAccuracyClamped and CounterCoverageClamped name the
// telemetry.Default counters that record how often a derived metric
// exceeded 1.0 and was clamped. A clamp means the useful-prefetch
// numerator double-counts relative to its denominator (e.g. a line
// prefetched in a warm-up iteration serving a steady-state demand);
// occasional clamps are accounting drift, a growing count is a bug.
const (
	CounterAccuracyClamped = "sim.accuracy_clamped"
	CounterCoverageClamped = "sim.coverage_clamped"
)

var (
	accuracyClamped = telemetry.Default.Counter(CounterAccuracyClamped)
	coverageClamped = telemetry.Default.Counter(CounterCoverageClamped)
)

// Accuracy is useful / total issued prefetches (§VII-A.3), over the
// steady-state iterations. Values above 1 (numerator/denominator drift
// across the steady-state window) are clamped, and every clamp is
// counted in the telemetry.Default counter CounterAccuracyClamped so the
// overflow is visible instead of silently hidden.
func (r *Result) Accuracy() float64 {
	s := r.steadyL2()
	t := s.PrefetchFillsDone
	if t == 0 {
		return 0
	}
	acc := float64(s.PrefetchUseful+s.PrefetchLate) / float64(t)
	if acc > 1 {
		accuracyClamped.Inc()
		acc = 1
	}
	return acc
}

// Coverage is useful prefetches over the *baseline's* demand misses
// (§VII-A.2: Coverage = Useful Prefetches / Total Baseline Misses),
// measured over the steady-state (replay) iterations so the warm-up and
// record iterations do not dilute either term.
func (r *Result) Coverage(baseline *Result) float64 {
	if baseline == nil {
		return 0
	}
	own := r.steadyL2()
	base := baseline.steadyL2()
	if base.DemandMisses == 0 {
		return 0
	}
	cov := float64(own.PrefetchUseful+own.PrefetchLate) / float64(base.DemandMisses)
	if cov > 1 {
		coverageClamped.Inc()
		cov = 1
	}
	return cov
}

// steadyL2 returns the L2 stats accumulated during the steady-state
// iterations (2..end), i.e. total minus the first two iterations'
// cumulative snapshot. Falls back to whole-run stats when iteration
// snapshots are missing.
func (r *Result) steadyL2() cache.Stats {
	if len(r.IterL2) < 2 {
		return r.L2
	}
	warm := r.IterL2[1]
	s := r.L2
	s.DemandAccesses -= warm.DemandAccesses
	s.DemandHits -= warm.DemandHits
	s.DemandMisses -= warm.DemandMisses
	s.DemandMerges -= warm.DemandMerges
	s.PrefetchIssued -= warm.PrefetchIssued
	s.PrefetchDropped -= warm.PrefetchDropped
	s.PrefetchFills -= warm.PrefetchFills
	s.PrefetchFillsDone -= warm.PrefetchFillsDone
	s.PrefetchUseful -= warm.PrefetchUseful
	s.PrefetchLate -= warm.PrefetchLate
	s.PrefetchEvicted -= warm.PrefetchEvicted
	return s
}

// Speedup is baseline cycles over this run's cycles for the simulated ROI.
func (r *Result) Speedup(baseline *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// IterCycles returns the duration of iteration i (barrier to barrier).
func (r *Result) IterCycles(i int) uint64 {
	if i < 0 || i >= len(r.IterEnd) || r.IterEnd[i] == 0 {
		return 0
	}
	if i == 0 {
		return r.IterEnd[0]
	}
	if r.IterEnd[i-1] == 0 || r.IterEnd[i] < r.IterEnd[i-1] {
		return 0
	}
	return r.IterEnd[i] - r.IterEnd[i-1]
}

// SteadyIterCycles averages the steady-state iterations (2..end): for RnR
// these are replay iterations, for other prefetchers trained iterations.
func (r *Result) SteadyIterCycles() float64 {
	var sum, n float64
	for i := 2; i < len(r.IterEnd); i++ {
		if c := r.IterCycles(i); c > 0 {
			sum += float64(c)
			n++
		}
	}
	if n == 0 {
		return float64(r.Cycles) / float64(max(1, r.Iterations))
	}
	return sum / n
}

// ComposedCycles extrapolates the runtime of `iters` kernel iterations
// from the measured per-iteration times: the first target iteration
// (recording, for RnR) plus iters-1 steady-state iterations. This is how
// the paper amortises the record iteration over ~100 replays (§VII-A.1).
func (r *Result) ComposedCycles(iters int) float64 {
	first := float64(r.IterCycles(1))
	if first == 0 {
		first = r.SteadyIterCycles()
	}
	return first + float64(iters-1)*r.SteadyIterCycles()
}

// ComposedSpeedup is the Fig. 6 headline metric: speedup over the
// baseline for a full iters-iteration run.
func (r *Result) ComposedSpeedup(baseline *Result, iters int) float64 {
	own := r.ComposedCycles(iters)
	if own == 0 {
		return 0
	}
	return baseline.ComposedCycles(iters) / own
}

// RecordOverheadPct is the §VII-A.6 metric: the IPC loss of the record
// iteration versus the same iteration in the baseline run, in percent.
func (r *Result) RecordOverheadPct(baseline *Result) float64 {
	own := float64(r.IterCycles(1))
	base := float64(baseline.IterCycles(1))
	if base == 0 || own == 0 {
		return 0
	}
	return (own - base) / base * 100
}

// AdditionalTrafficPct is the Fig. 12 metric: extra off-chip traffic
// (including metadata) over the baseline, in percent.
func (r *Result) AdditionalTrafficPct(baseline *Result) float64 {
	base := float64(baseline.DRAM.TotalTraffic())
	if base == 0 {
		return 0
	}
	return (float64(r.DRAM.TotalTraffic()) - base) / base * 100
}

// StorageOverheadPct is the Fig. 13 metric: RnR metadata bytes as a
// percentage of the input size.
func (r *Result) StorageOverheadPct() float64 {
	if r.InputBytes == 0 {
		return 0
	}
	return float64(r.RnR.MetadataBytes()) / float64(r.InputBytes) * 100
}

// Timeliness is the Fig. 11 breakdown. Fractions are of total prefetches.
type Timeliness struct {
	OnTime, Early, Late, OutOfWindow float64
}

// TimelinessBreakdown classifies this run's prefetches: on-time (demand
// hit on a prefetched line), late (demand merged with the in-flight
// prefetch), early (evicted before use, demanded later) and out-of-window
// (never demanded in its iteration).
func (r *Result) TimelinessBreakdown() Timeliness {
	total := float64(r.TotalPrefetches())
	if total == 0 {
		return Timeliness{}
	}
	t := Timeliness{
		OnTime: float64(r.L2.PrefetchUseful) / total,
		Late:   float64(r.L2.PrefetchLate) / total,
	}
	if r.RnR.Prefetches > 0 {
		t.Early = float64(r.RnR.EarlyPrefetches) / total
		t.OutOfWindow = float64(r.RnR.OutOfWindow) / total
	} else {
		// For conventional prefetchers everything evicted-unused is
		// "early or useless"; report it in the early bucket.
		t.Early = float64(r.L2.PrefetchEvicted) / total
	}
	// Clamp tiny accounting drift.
	for _, p := range []*float64{&t.OnTime, &t.Early, &t.Late, &t.OutOfWindow} {
		if *p > 1 {
			*p = 1
		}
	}
	return t
}

// ExportSchemaVersion identifies the shape of every JSON artefact this
// codebase emits (per-run exports, bench suite exports, rnrd server
// responses). Bump it when a field changes meaning or is removed;
// adding fields is backwards-compatible within a version. Cached and
// served artefacts carry it (with a generation timestamp) so they are
// self-describing long after the process that wrote them is gone.
const ExportSchemaVersion = "rnrsim.v1"

// exportNow is stubbed by the envelope golden test.
var exportNow = time.Now

// Stamp returns the export envelope pair: the schema version and the
// current generation timestamp (RFC 3339, UTC). Every JSON artefact
// writer uses it so the fields stay consistent across packages.
func Stamp() (schemaVersion, generatedAt string) {
	return ExportSchemaVersion, exportNow().UTC().Format(time.RFC3339)
}

// ResultJSON is the machine-readable export of a Result: the raw
// counters plus the derived per-run metrics, so bench trajectories
// (BENCH_*.json) can be produced without parsing text tables. Metrics
// that need a baseline (speedup, coverage) are not included; compute
// them from two exports.
type ResultJSON struct {
	SchemaVersion string `json:"schema_version"`
	GeneratedAt   string `json:"generated_at"`

	Config     string `json:"config"`
	Prefetcher string `json:"prefetcher"`
	App        string `json:"app"`
	Input      string `json:"input"`

	Cycles       uint64     `json:"cycles"`
	Instructions uint64     `json:"instructions"`
	Iterations   int        `json:"iterations"`
	IterEnd      []uint64   `json:"iter_end,omitempty"`
	GroupIterEnd [][]uint64 `json:"group_iter_end,omitempty"`

	IPC        float64    `json:"ipc"`
	L2MPKI     float64    `json:"l2_mpki"`
	Accuracy   float64    `json:"accuracy"`
	Timeliness Timeliness `json:"timeliness"`

	CoreStats []cpu.Stats   `json:"core_stats,omitempty"`
	L1        cache.Stats   `json:"l1"`
	L2        cache.Stats   `json:"l2"`
	LLC       cache.Stats   `json:"llc"`
	CoreL2    []cache.Stats `json:"core_l2,omitempty"`
	DRAM      dram.Stats    `json:"dram"`
	RnR       rnr.Stats     `json:"rnr"`

	// Coherence and CrossCore are the multicore sections, present only
	// when the corresponding subsystem was configured.
	Coherence *coherence.Stats         `json:"coherence,omitempty"`
	CrossCore *prefetch.CrossCoreStats `json:"crosscore,omitempty"`

	InputBytes uint64  `json:"input_bytes"`
	Check      float64 `json:"check"`

	// Lifecycle and Histograms are the flight recorder's sections,
	// present only when the run was made with Config.Obs attached.
	Lifecycle  *obs.LifecycleJSON                 `json:"lifecycle,omitempty"`
	Histograms map[string]telemetry.HistogramJSON `json:"histograms,omitempty"`

	// StateHash is Result.StateHash as a 16-digit hex string: JSON
	// numbers lose precision past 2^53, and the hash needs all 64 bits
	// to be comparable across exports. CoreStateHashes are the per-core
	// sub-digests (same encoding, core order).
	StateHash       string   `json:"state_hash"`
	CoreStateHashes []string `json:"core_state_hashes,omitempty"`
}

// Export builds the JSON view of the result, stamped with the export
// envelope (schema_version + generated_at).
func (r *Result) Export() ResultJSON {
	schema, generated := Stamp()
	out := ResultJSON{
		SchemaVersion: schema,
		GeneratedAt:   generated,
		Config:        r.ConfigName,
		Prefetcher:    string(r.Prefetcher),
		App:           r.App,
		Input:         r.Input,
		Cycles:        r.Cycles,
		Instructions:  r.Instructions,
		Iterations:    r.Iterations,
		IterEnd:       r.IterEnd,
		GroupIterEnd:  r.GroupIterEnd,
		IPC:           r.IPC(),
		L2MPKI:        r.L2MPKI(),
		Accuracy:      r.Accuracy(),
		Timeliness:    r.TimelinessBreakdown(),
		CoreStats:     r.CoreStats,
		L1:            r.L1,
		L2:            r.L2,
		LLC:           r.LLC,
		CoreL2:        r.CoreL2,
		DRAM:          r.DRAM,
		RnR:           r.RnR,
		Coherence:     r.Coherence,
		CrossCore:     r.CrossCore,
		InputBytes:    r.InputBytes,
		Check:         r.Check,
		StateHash:     fmt.Sprintf("%016x", r.StateHash),
	}
	for _, h := range r.CoreHashes {
		out.CoreStateHashes = append(out.CoreStateHashes, fmt.Sprintf("%016x", h))
	}
	if r.Obs != nil {
		lc := r.Obs.Lifecycle
		out.Lifecycle = &lc
		out.Histograms = r.Obs.Histograms
	}
	return out
}

// WriteJSON writes the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Export())
}

// String summarises the run.
func (r *Result) String() string {
	return fmt.Sprintf("%s %s/%s: %d cycles, IPC %.3f, L2 MPKI %.1f, acc %.2f",
		r.Prefetcher, r.App, r.Input, r.Cycles, r.IPC(), r.L2MPKI(), r.Accuracy())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
