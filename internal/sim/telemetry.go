package sim

import (
	"fmt"

	"rnrsim/internal/telemetry"
)

// registerTelemetry hands the recorder to every component and registers
// the system-level aggregate series. Called once from New; a nil recorder
// makes the whole function a no-op and leaves every component's telemetry
// pointer nil, which is the zero-overhead disabled path.
//
// Probe catalog (see DESIGN.md "Observability" for the full schema):
//
//	sim.ipc               aggregate retired IPC over the sample interval
//	l2.mpki               aggregate L2 demand MPKI over the interval
//	rnr.replay_distance   mean prefetch-cursor lead, in seq entries
//	rnr.window_slack      mean headroom before the window gate
//	rnr.pace_error        mean distance from the pace-control target
//	cpu<N>.*              per-core ipc / rob / lsq
//	l2.<N>.* llc.*        per-cache mshr / queue occupancy / miss_rate
//	dram.*                queue occupancy, row_hit_rate, bus_util
func (s *System) registerTelemetry() {
	tel := s.tel
	if tel == nil {
		return
	}
	for c := range s.cores {
		s.cores[c].RegisterProbes(tel, fmt.Sprintf("cpu%d.", c))
		s.l2s[c].RegisterProbes(tel, fmt.Sprintf("l2.%d.", c))
		if e := s.engines[c]; e != nil {
			e.SetTelemetry(tel, fmt.Sprintf("rnr.c%d", c))
			e.RegisterProbes(tel, fmt.Sprintf("rnr.c%d.", c))
		}
	}
	if len(s.llcs) == 1 {
		s.llcs[0].RegisterProbes(tel, "llc.")
	} else {
		for b := range s.llcs {
			s.llcs[b].RegisterProbes(tel, fmt.Sprintf("llc.b%d.", b))
		}
	}
	s.mc.RegisterProbes(tel, "dram.")

	// Aggregates: windowed deltas across all cores, one closure state per
	// probe (each probe is polled exactly once per sample).
	var lastCycle, lastInstr uint64
	tel.Probe("sim.ipc", func(cycle uint64) float64 {
		var instr uint64
		for c := range s.cores {
			instr += s.cores[c].Stats.Instructions
		}
		dc := cycle - lastCycle
		di := instr - lastInstr
		lastCycle, lastInstr = cycle, instr
		if dc == 0 {
			return 0
		}
		return float64(di) / float64(dc)
	})
	var lastInstr2, lastMiss uint64
	tel.Probe("l2.mpki", func(uint64) float64 {
		var instr, miss uint64
		for c := range s.cores {
			instr += s.cores[c].Stats.Instructions
			miss += s.l2s[c].Stats.DemandMisses
		}
		di := instr - lastInstr2
		dm := miss - lastMiss
		lastInstr2, lastMiss = instr, miss
		if di == 0 {
			return 0
		}
		return float64(dm) / float64(di) * 1000
	})
	engineMean := func(f func(i int) int) float64 {
		var sum, n float64
		for c := range s.engines {
			if s.engines[c] != nil {
				sum += float64(f(c))
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / n
	}
	tel.Probe("rnr.replay_distance", func(uint64) float64 {
		return engineMean(func(c int) int { return s.engines[c].ReplayDistance() })
	})
	tel.Probe("rnr.window_slack", func(uint64) float64 {
		return engineMean(func(c int) int { return s.engines[c].WindowSlack() })
	})
	tel.Probe("rnr.pace_error", func(uint64) float64 {
		return engineMean(func(c int) int { return s.engines[c].PaceError() })
	})
}

// Telemetry returns the recorder attached at construction (nil when the
// run is uninstrumented).
func (s *System) Telemetry() *telemetry.Recorder { return s.tel }
