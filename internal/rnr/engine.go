package rnr

import (
	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
	"rnrsim/internal/prefetch"
	"rnrsim/internal/telemetry"
	"rnrsim/internal/trace"
)

// TimingControl selects the replay pacing mechanism, the subject of the
// paper's Fig. 10/11 ablation.
type TimingControl int

const (
	// NoControl replays as fast as the prefetch queue accepts — the
	// strawman that thrashes the L2 (Fig. 5(b)).
	NoControl TimingControl = iota
	// WindowControl gates prefetching one recorded window ahead of the
	// program's progress, measured in demand reads to the target
	// structures (Fig. 5(c)).
	WindowControl
	// WindowPaceControl additionally spreads prefetches evenly inside a
	// window: one prefetch per NPace structure reads (Fig. 5(d)).
	WindowPaceControl
)

var controlNames = [...]string{"nocontrol", "window", "window+pace"}

func (t TimingControl) String() string {
	if int(t) >= 0 && int(t) < len(controlNames) {
		return controlNames[t]
	}
	return "control(?)"
}

// Stats counts engine activity for the evaluation.
type Stats struct {
	StructReads     uint64 // demand reads inside enabled boundaries
	RecordedEntries uint64 // sequence-table entries written
	RecordedWindows uint64 // division-table entries written
	SeqOverflows    uint64 // entries dropped: programmer table too small
	MetaWriteLines  uint64 // 64 B metadata lines written (record)
	MetaReadLines   uint64 // 64 B metadata lines read (replay)
	TLBLookups      uint64 // metadata page-crossing translations
	Prefetches      uint64 // replay prefetches issued
	Replays         uint64 // replay phases started
	Pauses          uint64
	Resumes         uint64
	// Timeliness shadow classification (engine view; on-time and late are
	// taken from the cache's useful/late counters).
	EarlyPrefetches uint64 // prefetched, evicted unused, demanded later
	OutOfWindow     uint64 // prefetched, never demanded in the iteration
	// Final metadata footprint (bytes), for Fig. 13.
	SeqTableBytes uint64
	DivTableBytes uint64

	// Replay diagnostics: how many struct misses happened during replay,
	// and how many of those were for lines the engine had already
	// prefetched this iteration (i.e. timing failures, not address
	// failures).
	ReplayStructMisses  uint64
	ReplayMissesCovered uint64
	SkippedEntries      uint64 // stale entries skipped after falling behind
}

// MetadataBytes is the total recorded metadata footprint.
func (s Stats) MetadataBytes() uint64 { return s.SeqTableBytes + s.DivTableBytes }

// track states for the timeliness shadow map.
const (
	trackIssued  uint8 = 1 // prefetch issued this iteration
	trackEvicted uint8 = 2 // prefetched and evicted before any use
)

// Engine is one core's RnR prefetcher. It implements prefetch.Prefetcher
// (the replay side) and additionally hooks the core's PreAccess (boundary
// check), the L2's access/evict events (recording and timeliness) and the
// core's marker stream (the software interface).
type Engine struct {
	Arch           ArchState
	Control        TimingControl
	DefaultWindow  uint64 // window-size register value set by RnR.init()
	MaxIssuePerCyc int    // replay prefetches per cycle
	// LeadEntries bounds how far (in sequence entries) pace control runs
	// ahead of the consumption estimate; 0 = one full window.
	LeadEntries int
	// LeadReadsCap additionally bounds the lead measured in structure
	// *reads*: on low-miss-ratio windows a fixed entry lead would stretch
	// over thousands of reads of demand churn, evicting the prefetched
	// lines before use. 0 = no read-based cap.
	LeadReadsCap int
	// RecordAllAccesses records every in-range read instead of only L2
	// misses — the naive design §III rejects ("recording all of the
	// structure accesses may lead to redundant record and prefetch").
	// Kept as an ablation knob.
	RecordAllAccesses bool
	Core              int

	meta mem.Backend // metadata path (cache-bypassing, straight to DRAM)

	// Recorded metadata (model of the in-memory tables' contents).
	seq []SeqEntry
	div []uint64 // cumulative struct reads at the end of each window

	// Record-side registers.
	curStructRead uint64
	seqBufCount   int
	divBufCount   int
	lastSeqPage   mem.Addr
	lastDivPage   mem.Addr

	// Replay-side registers.
	nextIdx     int    // next sequence entry to prefetch
	fetchedIdx  int    // sequence entries whose metadata has arrived on chip
	metaIssued  int    // sequence entries covered by issued metadata reads
	metaInFly   int    // outstanding metadata line reads
	metaGen     uint64 // invalidates stale completions across replay resets
	divFetched  int    // division entries available on chip
	divIssued   int
	divInFly    int
	curWindow   int
	retryLine   mem.Addr // prefetch that failed to enqueue, retried first
	retryValid  bool
	windowReads uint64 // struct reads when the current window started

	track          map[mem.Addr]uint8
	issuedThisIter map[mem.Addr]bool

	// diverge, when attached, scores observed replay misses against the
	// recorded sequence per window (see DivergenceProbe). Observational
	// only: excluded from state hashing and save/restore.
	diverge *DivergenceProbe

	// Telemetry (nil = disabled at zero cost): state-machine spans
	// (record/replay/paused) and metadata-refill episodes are emitted on
	// telTrack; see SetTelemetry.
	tel         *telemetry.Recorder
	telTrack    string
	stateStart  uint64
	refillStart uint64

	Stats Stats
}

// NewEngine returns an RnR engine for the given core. meta is the path
// metadata requests take to memory (normally the DRAM controller); it may
// be nil in unit tests, in which case metadata arrives instantly.
func NewEngine(core int, meta mem.Backend) *Engine {
	return &Engine{
		Core:           core,
		Control:        WindowPaceControl,
		DefaultWindow:  2048,
		MaxIssuePerCyc: 4,
		meta:           meta,
		track:          make(map[mem.Addr]uint8),
		issuedThisIter: make(map[mem.Addr]bool),
	}
}

// Name implements prefetch.Prefetcher.
func (e *Engine) Name() string { return "rnr" }

// InRange reports whether a line falls inside any *valid* boundary slot
// (enabled or not). The conventional prefetchers running alongside RnR are
// filtered with this predicate (§V-D): the stream prefetcher is trained by
// misses outside the Record-and-Replay address range.
func (e *Engine) InRange(line mem.Addr) bool {
	for i := range e.Arch.Bounds {
		b := e.Arch.Bounds[i]
		if b.Valid && line >= b.Base && line < b.Base+mem.Addr(b.Size) {
			return true
		}
	}
	return false
}

// PreAccess is the core-side boundary check (Fig. 4, steps 1-3): every
// demand access checks the boundary table; reads within an enabled range
// are flagged and counted in Cur Struct Read.
func (e *Engine) PreAccess(r *mem.Request) {
	if e.Arch.State != StateRecord && e.Arch.State != StateReplay {
		return
	}
	if r.Type != mem.ReqLoad {
		return
	}
	if e.Arch.Match(r.Addr) < 0 {
		return
	}
	r.StructFlag = true
	e.curStructRead++
	e.Stats.StructReads++
}

// OnAccess implements prefetch.Prefetcher: the L2-side record path and the
// replay-side timeliness tracking.
func (e *Engine) OnAccess(ev cache.AccessInfo, issue prefetch.IssueFunc) {
	if !ev.StructFlag {
		return
	}
	switch e.Arch.State {
	case StateRecord:
		if e.RecordAllAccesses || (!ev.Hit && !ev.Merged) {
			e.recordMiss(ev.Line)
		}
	case StateReplay:
		st, tracked := e.track[ev.Line]
		if !ev.Hit && !ev.Merged {
			e.Stats.ReplayStructMisses++
			covered := tracked || e.issuedThisIter[ev.Line]
			if covered {
				e.Stats.ReplayMissesCovered++
			}
			if e.diverge != nil {
				if slot := e.Arch.Match(ev.Line); slot >= 0 {
					base := mem.LineAddr(e.Arch.Bounds[slot].Base)
					off := uint64(ev.Line-base) >> mem.LineShift
					e.diverge.observe(NewSeqEntry(slot, off), covered)
				}
			}
		}
		if !tracked {
			return
		}
		if !ev.Hit && !ev.Merged && st == trackEvicted {
			// Prefetched, evicted before use, now demanded: early.
			e.Stats.EarlyPrefetches++
		}
		delete(e.track, ev.Line)
	}
}

// OnEvict must be wired to the L2's eviction hook; it feeds the
// early-vs-out-of-window classification.
func (e *Engine) OnEvict(line mem.Addr, wasPrefetchedUnused bool, cycle uint64) {
	if !wasPrefetchedUnused {
		return
	}
	if st, ok := e.track[line]; ok && st == trackIssued {
		e.track[line] = trackEvicted
	}
}

// OnFill implements prefetch.Prefetcher.
func (e *Engine) OnFill(line mem.Addr, prefetchFill bool, cycle uint64) {}

// recordMiss appends one sequence-table entry (Fig. 4(a), steps 5-8).
func (e *Engine) recordMiss(line mem.Addr) {
	slot := e.Arch.Match(line)
	if slot < 0 {
		// The flag was set on the byte address; the line-aligned address
		// can fall just below an unaligned base. Skip, as hardware would.
		return
	}
	if uint64(len(e.seq)) >= e.Arch.SeqTableCap {
		e.Stats.SeqOverflows++
		return
	}
	base := mem.LineAddr(e.Arch.Bounds[slot].Base)
	off := uint64(line-base) >> mem.LineShift
	e.seq = append(e.seq, NewSeqEntry(slot, off))
	e.Stats.RecordedEntries++
	e.seqBufCount++

	// Group metadata writes at cache-line granularity (64 B = 16 entries).
	if e.seqBufCount*SeqEntryBytes >= mem.LineSize {
		e.flushSeqBuffer()
	}

	// Window boundary: record Cur Struct Read in the division table.
	if e.Arch.WindowSize > 0 && uint64(len(e.seq))%e.Arch.WindowSize == 0 {
		e.appendDiv()
	}
}

func (e *Engine) appendDiv() {
	if uint64(len(e.div)) >= e.Arch.DivTableCap {
		return
	}
	e.div = append(e.div, e.curStructRead)
	e.Stats.RecordedWindows++
	e.divBufCount++
	if e.divBufCount*DivEntryBytes >= mem.LineSize {
		e.flushDivBuffer()
	}
}

func (e *Engine) flushSeqBuffer() {
	if e.seqBufCount == 0 {
		return
	}
	addr := e.Arch.SeqTableBase + mem.Addr(len(e.seq)*SeqEntryBytes)
	e.metaWrite(addr, &e.lastSeqPage)
	e.seqBufCount = 0
}

func (e *Engine) flushDivBuffer() {
	if e.divBufCount == 0 {
		return
	}
	addr := e.Arch.DivTableBase + mem.Addr(len(e.div)*DivEntryBytes)
	e.metaWrite(addr, &e.lastDivPage)
	e.divBufCount = 0
}

// metaWrite issues one 64 B non-temporal metadata store, performing a TLB
// lookup only when the 4 MB metadata page changes (Fig. 4(a), step 7).
func (e *Engine) metaWrite(addr mem.Addr, pageReg *mem.Addr) {
	if page := mem.HugeAddr(addr); page != *pageReg {
		*pageReg = page
		e.Stats.TLBLookups++
	}
	e.Stats.MetaWriteLines++
	if e.meta == nil {
		return
	}
	req := mem.NewRequest(mem.ReqMetaWrite, addr, 0, e.Core, 0)
	e.meta.TryEnqueue(req) // posted; if the queue is full the line is
	// absorbed by the (unmodelled) core write-combining buffer — the
	// traffic is already counted above.
}

// finalizeRecord flushes partial buffers and terminates the division table
// with the final read count so replay knows the last window's extent.
func (e *Engine) finalizeRecord() {
	if e.Arch.State != StateRecord && e.Arch.State != StatePausedRecord {
		return
	}
	if len(e.seq) > 0 && (len(e.div) == 0 || uint64(len(e.seq))%e.Arch.WindowSize != 0) {
		e.appendDiv()
	}
	e.flushSeqBuffer()
	e.flushDivBuffer()
	e.Stats.SeqTableBytes = uint64(len(e.seq)) * SeqEntryBytes
	e.Stats.DivTableBytes = uint64(len(e.div)) * DivEntryBytes
}

// HandleMarker consumes the software interface (§IV, Table I). Wire it to
// the core's OnMarker hook. State transitions are mirrored to the
// telemetry tracer as spans (one per record/replay/paused episode), so a
// loaded trace shows exactly when each core recorded, replayed or sat
// paused across a context switch.
func (e *Engine) HandleMarker(rec trace.Record, cycle uint64) {
	prev := e.Arch.State
	e.handleMarker(rec, cycle)
	if e.tel != nil && e.Arch.State != prev {
		if prev != StateIdle {
			e.tel.Span(e.telTrack, prev.String(), e.stateStart, cycle)
		}
		e.stateStart = cycle
	}
}

func (e *Engine) handleMarker(rec trace.Record, cycle uint64) {
	switch rec.Marker {
	case trace.MarkInit:
		e.Arch = ArchState{ASID: uint64(e.Core) + 1, WindowSize: e.DefaultWindow}
		e.resetRecordState()
		e.resetReplayState()
		e.seq = e.seq[:0]
		e.div = e.div[:0]
	case trace.MarkSeqTable:
		e.Arch.SeqTableBase = rec.Addr
		e.Arch.SeqTableCap = rec.Count / SeqEntryBytes
	case trace.MarkDivTable:
		e.Arch.DivTableBase = rec.Addr
		e.Arch.DivTableCap = rec.Count / DivEntryBytes
	case trace.MarkWindowSize:
		if rec.Count > 0 {
			e.Arch.WindowSize = rec.Count
		}
	case trace.MarkAddrBaseSet:
		_ = e.Arch.SetBoundary(int(rec.Aux), rec.Addr, rec.Count)
	case trace.MarkAddrBaseEnable:
		_ = e.Arch.EnableBoundary(int(rec.Aux))
	case trace.MarkAddrBaseDisable:
		_ = e.Arch.DisableBoundary(int(rec.Aux))
	case trace.MarkRecordStart:
		e.seq = e.seq[:0]
		e.div = e.div[:0]
		e.resetRecordState()
		e.Arch.State = StateRecord
	case trace.MarkReplay:
		e.closeDivergence()
		e.finalizeRecord()
		e.closeIteration()
		e.resetReplayState()
		e.Arch.State = StateReplay
		e.Stats.Replays++
		e.curStructRead = 0
	case trace.MarkPause:
		e.Stats.Pauses++
		switch e.Arch.State {
		case StateRecord:
			// Flush the on-chip buffers to memory but do NOT terminate
			// the tables: recording continues after resume (§IV-C).
			e.flushSeqBuffer()
			e.flushDivBuffer()
			e.Arch.State = StatePausedRecord
		case StateReplay:
			e.closeIteration()
			e.Arch.State = StatePausedReplay
		}
	case trace.MarkResume:
		e.Stats.Resumes++
		switch e.Arch.State {
		case StatePausedRecord:
			e.Arch.State = StateRecord
		case StatePausedReplay:
			e.Arch.State = StateReplay
		}
	case trace.MarkPrefetchEnd:
		e.closeDivergence()
		e.finalizeRecord()
		e.closeIteration()
		e.Arch.State = StateIdle
	case trace.MarkEnd:
		e.closeDivergence()
		e.finalizeRecord()
		e.closeIteration()
		e.Arch.State = StateIdle
		// The metadata storage is freed (§II: released as soon as the
		// phase ends); the footprint stats survive in Stats.
	}
}

func (e *Engine) resetRecordState() {
	e.curStructRead = 0
	e.seqBufCount = 0
	e.divBufCount = 0
	e.lastSeqPage = ^mem.Addr(0)
	e.lastDivPage = ^mem.Addr(0)
}

func (e *Engine) resetReplayState() {
	e.nextIdx = 0
	e.fetchedIdx = 0
	e.metaIssued = 0
	e.metaInFly = 0
	e.metaGen++ // orphan any in-flight metadata completions
	e.divFetched = 0
	e.divIssued = 0
	e.divInFly = 0
	e.curWindow = 0
	e.retryValid = false
	e.windowReads = 0
}

// closeIteration resolves the timeliness shadow map at an iteration
// boundary: anything prefetched-and-evicted that was never demanded is an
// out-of-window prefetch.
func (e *Engine) closeIteration() {
	if len(e.issuedThisIter) > 0 {
		e.issuedThisIter = make(map[mem.Addr]bool)
	}
	for line, st := range e.track {
		if st == trackEvicted {
			e.Stats.OutOfWindow++
		}
		delete(e.track, line)
	}
}

// OnCycle implements prefetch.Prefetcher: the replay engine (Fig. 4(b)).
func (e *Engine) OnCycle(cycle uint64, issue prefetch.IssueFunc) {
	if e.Arch.State != StateReplay || len(e.seq) == 0 {
		return
	}
	e.streamMetadata(cycle)
	e.advanceWindow()

	budget := e.MaxIssuePerCyc
	if budget < 1 {
		budget = 1
	}
	for budget > 0 {
		if e.retryValid {
			if !issue(e.retryLine) {
				return
			}
			e.retryValid = false
			e.Stats.Prefetches++
			budget--
			continue
		}
		if e.nextIdx >= len(e.seq) || e.nextIdx >= e.fetchedIdx {
			return
		}
		// Skip entries whose window the program has already left: their
		// demand has passed, so prefetching them now is pure pollution.
		// (The hardware analogue: Cur Window jumped past the buffer head
		// after a stall; the buffer is advanced rather than drained.)
		if e.Control != NoControl && e.Arch.WindowSize > 0 {
			w := e.nextIdx / int(e.Arch.WindowSize)
			if w < e.curWindow {
				skipTo := e.curWindow * int(e.Arch.WindowSize)
				// The last recorded window is usually partial, so Cur
				// Window can sit one past it and curWindow*W then points
				// beyond the table. Clamp before skipping: the unclamped
				// value pushed nextIdx past len(seq) and credited
				// SkippedEntries for phantom entries that were never
				// recorded (flushed out by the audit invariant
				// nextIdx <= len(seq)).
				if skipTo > len(e.seq) {
					skipTo = len(e.seq)
				}
				e.Stats.SkippedEntries += uint64(skipTo - e.nextIdx)
				e.nextIdx = skipTo
				if e.nextIdx >= len(e.seq) || e.nextIdx >= e.fetchedIdx {
					return
				}
			}
		}
		if !e.eligible(e.nextIdx) {
			return
		}
		line, ok := e.entryLine(e.seq[e.nextIdx])
		e.nextIdx++
		if !ok {
			continue
		}
		if _, seen := e.track[line]; !seen {
			e.track[line] = trackIssued
		}
		e.issuedThisIter[line] = true
		if !issue(line) {
			e.retryLine = line
			e.retryValid = true
			return
		}
		e.Stats.Prefetches++
		budget--
	}
}

// Wakeup implements prefetch.CycleDriven: it mirrors OnCycle's gating
// conditions and reports now+1 whenever any of them could make progress,
// mem.WakeupNever otherwise. Every predicate below is a pure read of
// state that only changes inside OnCycle or a completion callback (both
// of which trigger a wakeup recomputation), so "no branch can progress
// now" really means "no branch can progress until external input".
func (e *Engine) Wakeup(now uint64) uint64 {
	if e.Arch.State != StateReplay || len(e.seq) == 0 {
		return mem.WakeupNever
	}
	if e.meta == nil {
		// Unit-test mode: streamMetadata snaps the fetch cursors forward.
		if e.fetchedIdx != len(e.seq) || e.divFetched != len(e.div) {
			return now + 1
		}
	} else {
		// Mirror streamMetadata's issue loops (maxLinesInFlight = 4 seq
		// lines, 2 div lines). An enqueue that the metadata backend then
		// rejects still terminates: the cursors did not move, the backend
		// drains, and its completion re-triggers evaluation.
		if e.metaInFly < 4 && e.metaIssued < len(e.seq) &&
			e.metaIssued-e.nextIdx < 2*SeqEntriesPerBuffer {
			return now + 1
		}
		if e.divInFly < 2 && e.divIssued < len(e.div) &&
			e.divIssued-e.curWindow < 2*DivEntriesPerBuffer {
			return now + 1
		}
	}
	if e.curWindow < e.divFetched && e.curWindow < len(e.div) &&
		e.curStructRead >= e.div[e.curWindow] {
		return now + 1 // advanceWindow would move Cur Window
	}
	if e.retryValid {
		return now + 1 // a failed issue retries (and is counted) every cycle
	}
	if e.nextIdx < len(e.seq) && e.nextIdx < e.fetchedIdx {
		if e.Control != NoControl && e.Arch.WindowSize > 0 &&
			e.nextIdx/int(e.Arch.WindowSize) < e.curWindow {
			return now + 1 // window skip would advance nextIdx
		}
		if e.eligible(e.nextIdx) {
			return now + 1
		}
	}
	return mem.WakeupNever
}

// MetaStreamPending reports whether a future OnCycle could still issue a
// metadata read (sequence or division table) into the memory backend. The
// parallel per-core scheduler refuses to open an independence window while
// this holds: metadata reads target the shared DRAM controller, and the
// in-fly/ahead throttles that gate them in Wakeup can unblock mid-window
// as nextIdx and curWindow advance — so those throttles are deliberately
// ignored here. With meta == nil (unit-test mode) the cursors snap without
// touching any backend, so nothing is ever pending.
func (e *Engine) MetaStreamPending() bool {
	if e.Arch.State != StateReplay || len(e.seq) == 0 || e.meta == nil {
		return false
	}
	return e.metaIssued < len(e.seq) || e.divIssued < len(e.div)
}

// entryLine reconstructs the prefetch address from a sequence entry and
// the *current* boundary base (Base+Offset, §IV-B).
func (e *Engine) entryLine(entry SeqEntry) (mem.Addr, bool) {
	slot := entry.Slot()
	if slot >= NumBoundarySlots || !e.Arch.Bounds[slot].Valid {
		return 0, false
	}
	base := mem.LineAddr(e.Arch.Bounds[slot].Base)
	return base + mem.Addr(entry.LineOff())<<mem.LineShift, true
}

// streamMetadata keeps the double-buffered sequence/division table reads
// ahead of the prefetch pointer (Fig. 4(b), step 5).
func (e *Engine) streamMetadata(cycle uint64) {
	if e.meta == nil {
		// Unit-test mode: metadata is instantly available.
		e.fetchedIdx = len(e.seq)
		e.divFetched = len(e.div)
		return
	}
	// Two 128 B double buffers per table; each buffer's halves can be in
	// flight independently, so up to four line reads overlap.
	const maxLinesInFlight = 4
	const entriesPerLine = mem.LineSize / SeqEntryBytes
	aheadLimit := 2 * SeqEntriesPerBuffer
	gen := e.metaGen

	for e.metaInFly < maxLinesInFlight && e.metaIssued < len(e.seq) &&
		e.metaIssued-e.nextIdx < aheadLimit {
		addr := e.Arch.SeqTableBase + mem.Addr(e.metaIssued*SeqEntryBytes)
		req := mem.NewRequest(mem.ReqMetaRead, addr, 0, e.Core, cycle)
		req.Done = func(cy uint64) {
			if e.metaGen != gen {
				return // replay was reset while this read was in flight
			}
			e.metaInFly--
			if e.metaInFly == 0 && e.tel != nil {
				// The buffer-refill episode (first outstanding read to
				// last completion) just closed.
				e.tel.Span(e.telTrack, "seq-refill", e.refillStart, cy)
			}
			e.fetchedIdx += entriesPerLine
			if e.fetchedIdx > len(e.seq) {
				e.fetchedIdx = len(e.seq)
			}
		}
		if !e.meta.TryEnqueue(req) {
			break
		}
		e.metaIssued += entriesPerLine
		if e.metaIssued > len(e.seq) {
			e.metaIssued = len(e.seq)
		}
		e.metaInFly++
		if e.metaInFly == 1 {
			e.refillStart = cycle
		}
		e.Stats.MetaReadLines++
		if page := mem.HugeAddr(addr); page != e.lastSeqPage {
			e.lastSeqPage = page
			e.Stats.TLBLookups++
		}
	}

	const divPerLine = mem.LineSize / DivEntryBytes
	for e.divInFly < 2 && e.divIssued < len(e.div) &&
		e.divIssued-e.curWindow < 2*DivEntriesPerBuffer {
		addr := e.Arch.DivTableBase + mem.Addr(e.divIssued*DivEntryBytes)
		req := mem.NewRequest(mem.ReqMetaRead, addr, 0, e.Core, cycle)
		req.Done = func(cy uint64) {
			if e.metaGen != gen {
				return
			}
			e.divInFly--
			e.divFetched += divPerLine
			if e.divFetched > len(e.div) {
				e.divFetched = len(e.div)
			}
		}
		if !e.meta.TryEnqueue(req) {
			break
		}
		e.divIssued += divPerLine
		if e.divIssued > len(e.div) {
			e.divIssued = len(e.div)
		}
		e.divInFly++
		e.Stats.MetaReadLines++
		if page := mem.HugeAddr(addr); page != e.lastDivPage {
			e.lastDivPage = page
			e.Stats.TLBLookups++
		}
	}
}

// advanceWindow moves Cur Window forward as the program's structure reads
// cross recorded window boundaries (Fig. 4(b), step 7).
func (e *Engine) advanceWindow() {
	for e.curWindow < e.divFetched && e.curWindow < len(e.div) &&
		e.curStructRead >= e.div[e.curWindow] {
		e.windowReads = e.div[e.curWindow]
		if e.diverge != nil {
			e.diverge.closeWindow(e.curWindow, e.windowSlice(e.curWindow))
		}
		e.curWindow++
	}
}

// eligible applies the timing control to sequence entry i.
//
// Window control is the paper's coarse gate: prefetch at most one window
// ahead of the program's progress (double buffering). Pace control
// additionally smooths issue inside the window — a prefetch per NPace
// structure reads — which here is expressed as a fine-grained consumption
// estimate plus a bounded lead, so prefetched lines spend a minimal time
// exposed to eviction before their demand arrives.
func (e *Engine) eligible(i int) bool {
	if e.Control == NoControl || e.Arch.WindowSize == 0 {
		return true
	}
	w := i / int(e.Arch.WindowSize)
	if w > e.curWindow+1 {
		return false // more than one window ahead: wait (both modes)
	}
	if e.Control == WindowControl {
		return true
	}
	lead := e.lead()
	if e.LeadReadsCap > 0 && e.curWindow < len(e.div) {
		// Convert the read cap into entries using this window's recorded
		// miss density (reads per entry).
		var start uint64
		if e.curWindow > 0 {
			start = e.div[e.curWindow-1]
		}
		span := int(e.div[e.curWindow] - start)
		W := int(e.Arch.WindowSize)
		if span > W && W > 0 {
			capEntries := e.LeadReadsCap * W / span
			if capEntries < 4 {
				capEntries = 4
			}
			if capEntries < lead {
				lead = capEntries
			}
		}
	}
	return i < e.consumedEstimate()+lead
}

// consumedEstimate interpolates how many sequence entries the program has
// consumed: completed windows plus the current window's fraction, derived
// from Cur Struct Read against the division table (the hardware's NPace
// arithmetic, §V-C).
func (e *Engine) consumedEstimate() int {
	W := int(e.Arch.WindowSize)
	if e.curWindow >= len(e.div) {
		return len(e.seq)
	}
	var start uint64
	if e.curWindow > 0 {
		start = e.div[e.curWindow-1]
	}
	span := e.div[e.curWindow] - start
	consumed := e.curWindow * W
	if span > 0 && e.curStructRead > start {
		frac := int((e.curStructRead - start) * uint64(W) / span)
		if frac > W {
			frac = W
		}
		consumed += frac
	}
	return consumed
}

// lead returns the pace-control prefetch distance in entries.
func (e *Engine) lead() int {
	if e.LeadEntries > 0 {
		return e.LeadEntries
	}
	return int(e.Arch.WindowSize)
}

// DebugState returns a one-line dump of the replay registers.
func (e *Engine) DebugState() string {
	return "state=" + e.Arch.State.String() +
		" seq=" + itoa(len(e.seq)) + " div=" + itoa(len(e.div)) +
		" next=" + itoa(e.nextIdx) + " fetched=" + itoa(e.fetchedIdx) +
		" metaIssued=" + itoa(e.metaIssued) + " inFly=" + itoa(e.metaInFly) +
		" divFetched=" + itoa(e.divFetched) + " curWin=" + itoa(e.curWindow) +
		" reads=" + itoa(int(e.curStructRead)) + " win=" + itoa(int(e.Arch.WindowSize))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// SetTelemetry attaches a recorder (nil disables) and the trace track
// this engine's spans are emitted on (e.g. "rnr.c0").
func (e *Engine) SetTelemetry(tel *telemetry.Recorder, track string) {
	e.tel = tel
	e.telTrack = track
}

// ReplayDistance is the replay-timeliness headline series: the prefetch
// cursor minus the consumption estimate, in sequence entries. Positive
// means replay runs ahead of the demand stream (healthy, bounded by the
// pace lead); values near zero or negative mean replay has fallen behind
// and prefetches arrive late. Zero outside replay.
func (e *Engine) ReplayDistance() int {
	if e.Arch.State != StateReplay {
		return 0
	}
	return e.nextIdx - e.consumedEstimate()
}

// WindowSlack is the headroom, in sequence entries, before the window
// gate (at most one window ahead, §V-B) would block the prefetch cursor.
// Zero outside replay or without window control.
func (e *Engine) WindowSlack() int {
	if e.Arch.State != StateReplay || e.Arch.WindowSize == 0 {
		return 0
	}
	limit := (e.curWindow + 2) * int(e.Arch.WindowSize)
	return limit - e.nextIdx
}

// PaceError is ReplayDistance minus the pace-control target lead:
// negative while replay is still catching up to its target distance,
// ~zero when pace control holds the cursor at the lead, positive only
// transiently. Zero outside replay.
func (e *Engine) PaceError() int {
	if e.Arch.State != StateReplay {
		return 0
	}
	return e.ReplayDistance() - e.lead()
}

// RegisterProbes registers this engine's sampled series under prefix
// (e.g. "rnr.c0."): the replay-cursor geometry above, the current window
// and the prefetch issue rate per sampled cycle. A nil recorder is a
// no-op.
func (e *Engine) RegisterProbes(tel *telemetry.Recorder, prefix string) {
	if tel == nil {
		return
	}
	tel.Probe(prefix+"replay_distance", func(uint64) float64 { return float64(e.ReplayDistance()) })
	tel.Probe(prefix+"window_slack", func(uint64) float64 { return float64(e.WindowSlack()) })
	tel.Probe(prefix+"pace_error", func(uint64) float64 { return float64(e.PaceError()) })
	tel.Probe(prefix+"cur_window", func(uint64) float64 { return float64(e.curWindow) })
	var lastPref uint64
	var lastCycle uint64
	tel.Probe(prefix+"prefetch_rate", func(cycle uint64) float64 {
		dp := e.Stats.Prefetches - lastPref
		dc := cycle - lastCycle
		lastPref, lastCycle = e.Stats.Prefetches, cycle
		if dc == 0 {
			return 0
		}
		return float64(dp) / float64(dc)
	})
	if e.diverge != nil {
		tel.Probe(prefix+"divergence", func(uint64) float64 { return e.diverge.LastScore() })
	}
}

// Sequence exposes the recorded sequence for tests and tools.
func (e *Engine) Sequence() []SeqEntry { return e.seq }

// Division exposes the recorded division table.
func (e *Engine) Division() []uint64 { return e.div }

// CurStructRead exposes the progress counter.
func (e *Engine) CurStructRead() uint64 { return e.curStructRead }

// CurWindow exposes the replay window counter.
func (e *Engine) CurWindow() int { return e.curWindow }
