package rnr

import (
	"testing"

	"rnrsim/internal/mem"
)

func TestBoundarySlotValidation(t *testing.T) {
	var a ArchState
	if err := a.SetBoundary(-1, 0x1000, 64); err == nil {
		t.Error("negative slot accepted")
	}
	if err := a.SetBoundary(NumBoundarySlots, 0x1000, 64); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := a.SetBoundary(0, 0x1000, 64); err != nil {
		t.Fatalf("valid slot rejected: %v", err)
	}
	if err := a.EnableBoundary(1); err == nil {
		t.Error("enabling an unset slot must fail")
	}
	if err := a.DisableBoundary(1); err == nil {
		t.Error("disabling an unset slot must fail")
	}
	if err := a.EnableBoundary(0); err != nil {
		t.Fatalf("enable: %v", err)
	}
	if !a.Bounds[0].Enabled {
		t.Error("enable did not stick")
	}
}

func TestBoundaryContainsSemantics(t *testing.T) {
	b := Boundary{Base: 0x1000, Size: 0x100, Valid: true, Enabled: true}
	cases := []struct {
		addr mem.Addr
		want bool
	}{
		{0x0fff, false}, {0x1000, true}, {0x10ff, true}, {0x1100, false},
	}
	for _, c := range cases {
		if got := b.Contains(c.addr); got != c.want {
			t.Errorf("Contains(%#x) = %v, want %v", uint64(c.addr), got, c.want)
		}
	}
	// Disabled or invalid boundaries contain nothing.
	b.Enabled = false
	if b.Contains(0x1000) {
		t.Error("disabled boundary contains addresses")
	}
	b.Enabled = true
	b.Valid = false
	if b.Contains(0x1000) {
		t.Error("invalid boundary contains addresses")
	}
}

func TestArchStateMatchPrecedence(t *testing.T) {
	var a ArchState
	_ = a.SetBoundary(0, 0x1000, 0x100)
	_ = a.SetBoundary(1, 0x2000, 0x100)
	_ = a.EnableBoundary(0)
	_ = a.EnableBoundary(1)
	if got := a.Match(0x1010); got != 0 {
		t.Errorf("Match in slot 0 = %d", got)
	}
	if got := a.Match(0x2010); got != 1 {
		t.Errorf("Match in slot 1 = %d", got)
	}
	if got := a.Match(0x3000); got != -1 {
		t.Errorf("Match outside = %d", got)
	}
	_ = a.DisableBoundary(1)
	if got := a.Match(0x2010); got != -1 {
		t.Errorf("Match in disabled slot = %d", got)
	}
}

func TestStateStrings(t *testing.T) {
	names := map[State]string{
		StateIdle: "idle", StateRecord: "record", StateReplay: "replay",
		StatePausedRecord: "paused-record", StatePausedReplay: "paused-replay",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	ctls := map[TimingControl]string{
		NoControl: "nocontrol", WindowControl: "window", WindowPaceControl: "window+pace",
	}
	for c, want := range ctls {
		if c.String() != want {
			t.Errorf("control %d = %q, want %q", c, c.String(), want)
		}
	}
}

func TestMetadataRecordSizes(t *testing.T) {
	// The buffer geometry of §V: two 128 B buffers per table, 4 B sequence
	// entries, 8 B division words.
	if SeqEntriesPerBuffer != 32 {
		t.Errorf("SeqEntriesPerBuffer = %d, want 32", SeqEntriesPerBuffer)
	}
	if DivEntriesPerBuffer != 16 {
		t.Errorf("DivEntriesPerBuffer = %d, want 16", DivEntriesPerBuffer)
	}
}

func TestSeqEntrySlotBits(t *testing.T) {
	e := NewSeqEntry(1, 0x0fffffff)
	if e.Slot() != 1 || e.LineOff() != 0x0fffffff {
		t.Errorf("max offset entry: slot %d off %#x", e.Slot(), e.LineOff())
	}
	// Offsets beyond 28 bits truncate (hardware field width).
	e = NewSeqEntry(0, 0x1fffffff)
	if e.LineOff() != 0x0fffffff {
		t.Errorf("overflow offset = %#x", e.LineOff())
	}
}
