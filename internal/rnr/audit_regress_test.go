package rnr

import (
	"testing"

	"rnrsim/internal/mem"
	"rnrsim/internal/trace"
)

// collectViolations runs one auditor sweep and returns what it reported.
func collectViolations(a *Auditor) []string {
	var out []string
	a.Check(func(law string) { out = append(out, law) })
	return out
}

// TestSkipAheadClampsAtTableEnd is the regression for the replay
// skip-ahead overrun: the last recorded window is usually partial, so
// when Cur Window advances past it, curWindow*WindowSize points beyond
// the sequence table. The unclamped skip pushed nextIdx past len(seq)
// and credited SkippedEntries for phantom entries that were never
// recorded (flushed out by the audit invariant nextIdx <= len(seq)).
func TestSkipAheadClampsAtTableEnd(t *testing.T) {
	base := mem.Addr(0x10000)
	// 5 entries, window 2: windows {0,1}, {2,3}, {4} — the last is
	// partial. div (cumulative reads) = [2, 4, 5].
	e, c := recordAndReplay(t, base, 2, []uint64{0, 1, 2, 3, 4})
	e.Control = WindowControl
	if len(e.seq) != 5 || len(e.div) != 3 {
		t.Fatalf("recorded %d entries in %d windows, want 5 in 3", len(e.seq), len(e.div))
	}

	// The program races ahead: all 5 struct reads land before the
	// replay engine issues anything, so Cur Window advances past the
	// partial last window (curWindow == len(div) == 3).
	for i := 0; i < 5; i++ {
		r := mem.NewRequest(mem.ReqLoad, base, 1, 0, 0)
		e.PreAccess(r)
	}
	a := e.NewAuditor()
	e.OnCycle(0, c.issue)

	if e.curWindow != 3 {
		t.Fatalf("curWindow = %d, want 3 (past the partial window)", e.curWindow)
	}
	// The skip must stop at the table end: 3*2 = 6 > 5 entries.
	if e.nextIdx != len(e.seq) {
		t.Errorf("nextIdx = %d, want clamped to len(seq) = %d", e.nextIdx, len(e.seq))
	}
	if e.Stats.SkippedEntries != 5 {
		t.Errorf("SkippedEntries = %d, want 5 (no phantom entries)", e.Stats.SkippedEntries)
	}
	if len(c.lines) != 0 {
		t.Errorf("issued %d prefetches for fully-consumed windows", len(c.lines))
	}
	if v := collectViolations(a); len(v) > 0 {
		t.Errorf("auditor reported: %v", v)
	}
}

// TestRestoreOrphansInFlightMetadata is the regression for the
// context-switch restore bug: metadata reads issued before the switch
// completed *after* Restore, and without a generation bump their
// completions decremented metaInFly below zero and advanced fetchedIdx
// over lines that were never re-read (flushed out by the audit
// invariant 0 <= metaInFly <= 4).
func TestRestoreOrphansInFlightMetadata(t *testing.T) {
	mb := &metaBackend{latency: 100}
	e := buildRecorded(t, mb, 64, 4)
	e.Control = NoControl
	c := &replayCollector{}

	// Let the streamer put the full four line reads in flight.
	for cy := uint64(0); cy < 4; cy++ {
		e.OnCycle(cy, c.issue)
		mb.Tick(cy)
	}
	if e.metaInFly != 4 {
		t.Fatalf("metaInFly = %d before the switch, want 4", e.metaInFly)
	}

	// OS context switch: pause, save, restore, resume.
	e.HandleMarker(trace.Mark(trace.MarkPause, 0, 0, 0), 5)
	saved := e.Save()
	e.Restore(saved)
	e.HandleMarker(trace.Mark(trace.MarkResume, 0, 0, 0), 6)

	// The pre-switch reads now complete. Their Done closures carry the
	// old generation and must be ignored.
	a := e.NewAuditor()
	mb.Tick(200)
	if e.metaInFly != 0 {
		t.Errorf("metaInFly = %d after stale completions, want 0", e.metaInFly)
	}
	if e.fetchedIdx != 0 {
		t.Errorf("fetchedIdx = %d advanced by stale completions, want 0", e.fetchedIdx)
	}
	if v := collectViolations(a); len(v) > 0 {
		t.Errorf("auditor reported: %v", v)
	}

	// Replay still completes: fresh reads re-fetch the buffers and all
	// 64 recorded lines issue.
	for cy := uint64(201); cy < 20_000 && len(c.lines) < 64; cy++ {
		e.OnCycle(cy, c.issue)
		mb.Tick(cy)
	}
	if len(c.lines) != 64 {
		t.Fatalf("replay after restore issued %d prefetches, want 64", len(c.lines))
	}
	if v := collectViolations(a); len(v) > 0 {
		t.Errorf("auditor reported after drain: %v", v)
	}
}
