package rnr

import (
	"testing"

	"rnrsim/internal/mem"
	"rnrsim/internal/trace"
)

// replayWithMisses re-runs the replay phase feeding one struct read and
// one observed struct miss per entry of observedOffs, closing windows
// as the read counter advances and the trailing window at MarkEnd.
func replayWithMisses(e *Engine, c *replayCollector, base mem.Addr, observedOffs []uint64) {
	for i, off := range observedOffs {
		r := mem.NewRequest(mem.ReqLoad, base+mem.Addr(off*mem.LineSize), 1, 0, 0)
		e.PreAccess(r)
		structMiss(e, base+mem.Addr(off*mem.LineSize))
		e.OnCycle(uint64(200+i), c.issue)
	}
	e.HandleMarker(trace.Mark(trace.MarkEnd, 0, 0, 0), 500)
}

// TestDivergenceZeroOnFaithfulReplay: when the observed miss stream
// equals the recording, every window scores 0.
func TestDivergenceZeroOnFaithfulReplay(t *testing.T) {
	base := mem.Addr(0x10000)
	offs := []uint64{0, 1, 2, 3}
	e, c := recordAndReplay(t, base, 2, offs)
	p := &DivergenceProbe{}
	e.AttachDivergence(p)
	replayWithMisses(e, c, base, offs)

	if p.Stats.WindowsScored != 2 {
		t.Fatalf("scored %d windows, want 2 (scores %+v)", p.Stats.WindowsScored, p.WindowScores())
	}
	for _, w := range p.WindowScores() {
		if w.Score != 0 || w.EditDistance != 0 {
			t.Errorf("window %d diverged on a faithful replay: %+v", w.Window, w)
		}
	}
	if p.MeanScore() != 0 || p.LastScore() != 0 {
		t.Errorf("mean %v last %v, want 0", p.MeanScore(), p.LastScore())
	}
}

// TestDivergenceZeroWhenFullyCovered: a perfect prefetcher turns every
// predicted miss into a hit; no observed misses is convergence (score
// 0), not divergence — predicted-but-absent entries are free.
func TestDivergenceZeroWhenFullyCovered(t *testing.T) {
	base := mem.Addr(0x10000)
	e, c := recordAndReplay(t, base, 2, []uint64{0, 1, 2, 3})
	p := &DivergenceProbe{}
	e.AttachDivergence(p)
	// Struct reads advance the window; every access hits.
	for i := 0; i < 4; i++ {
		r := mem.NewRequest(mem.ReqLoad, base+mem.Addr(uint64(i)*mem.LineSize), 1, 0, 0)
		e.PreAccess(r)
		e.OnCycle(uint64(200+i), c.issue)
	}
	e.HandleMarker(trace.Mark(trace.MarkEnd, 0, 0, 0), 500)
	if p.Stats.WindowsScored != 2 {
		t.Fatalf("scored %d windows, want 2", p.Stats.WindowsScored)
	}
	for _, w := range p.WindowScores() {
		if w.Observed != 0 || w.Score != 0 {
			t.Errorf("covered replay scored %+v", w)
		}
	}
}

// TestDivergenceFullOnMutatedStructure: misses at lines the recording
// never saw score 1.0 — the re-record trigger.
func TestDivergenceFullOnMutatedStructure(t *testing.T) {
	base := mem.Addr(0x10000)
	e, c := recordAndReplay(t, base, 2, []uint64{0, 1, 2, 3})
	p := &DivergenceProbe{}
	e.AttachDivergence(p)
	replayWithMisses(e, c, base, []uint64{100, 101, 102, 103})

	if p.Stats.WindowsScored != 2 {
		t.Fatalf("scored %d windows, want 2 (scores %+v)", p.Stats.WindowsScored, p.WindowScores())
	}
	for _, w := range p.WindowScores() {
		if w.Score != 1 {
			t.Errorf("mutated-structure window scored %v, want 1 (%+v)", w.Score, w)
		}
	}
	if p.MeanScore() != 1 {
		t.Errorf("mean = %v, want 1", p.MeanScore())
	}
	if p.Stats.UnmatchedMisses != 4 || p.Stats.ComparedMisses != 4 {
		t.Errorf("stats = %+v", p.Stats)
	}
}

// TestDivergencePartialOverlap pins the LCS scoring on a half-mutated
// window.
func TestDivergencePartialOverlap(t *testing.T) {
	base := mem.Addr(0x10000)
	e, c := recordAndReplay(t, base, 4, []uint64{0, 1, 2, 3})
	p := &DivergenceProbe{}
	e.AttachDivergence(p)
	// Window 0 predicted [0 1 2 3]; observe [0 9 2 9]: LCS {0,2} → ED 2.
	replayWithMisses(e, c, base, []uint64{0, 9, 2, 9})

	ws := p.WindowScores()
	if len(ws) != 1 {
		t.Fatalf("windows = %+v, want 1", ws)
	}
	if ws[0].EditDistance != 2 || ws[0].Score != 0.5 {
		t.Errorf("window = %+v, want ED 2 score 0.5", ws[0])
	}
}

func TestLCSLen(t *testing.T) {
	mk := func(offs ...uint64) []SeqEntry {
		out := make([]SeqEntry, len(offs))
		for i, o := range offs {
			out[i] = NewSeqEntry(0, o)
		}
		return out
	}
	cases := []struct {
		a, b []SeqEntry
		want int
	}{
		{nil, nil, 0},
		{mk(1, 2, 3), nil, 0},
		{mk(1, 2, 3), mk(1, 2, 3), 3},
		{mk(1, 2, 3), mk(3, 2, 1), 1},
		{mk(1, 3, 5, 7), mk(1, 2, 3, 4, 5), 3},
		{mk(9, 1, 9, 2), mk(1, 2), 2},
	}
	for _, c := range cases {
		if got := lcsLen(c.a, c.b); got != c.want {
			t.Errorf("lcsLen(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestDivergenceCapsBound hostile windows: the observe buffer and the
// predicted slice are both capped at MaxCompare, total misses still
// counted.
func TestDivergenceCapsBound(t *testing.T) {
	p := &DivergenceProbe{MaxCompare: 4, MaxWindows: 2}
	pred := make([]SeqEntry, 10)
	for i := range pred {
		pred[i] = NewSeqEntry(0, uint64(i))
	}
	for w := 0; w < 5; w++ {
		for i := 0; i < 8; i++ {
			p.observe(NewSeqEntry(0, uint64(i)), false)
		}
		p.closeWindow(w, pred)
	}
	if p.Stats.ObservedMisses != 40 {
		t.Errorf("observed = %d, want 40", p.Stats.ObservedMisses)
	}
	if p.Stats.ComparedMisses != 20 { // 4 per window after capping
		t.Errorf("compared = %d, want 20", p.Stats.ComparedMisses)
	}
	if len(p.WindowScores()) != 2 || p.DroppedWindows() != 3 {
		t.Errorf("retained %d dropped %d, want 2/3", len(p.WindowScores()), p.DroppedWindows())
	}
	if p.Stats.WindowsScored != 5 {
		t.Errorf("windows scored = %d, want 5 (aggregates keep counting past MaxWindows)", p.Stats.WindowsScored)
	}
}
