package rnr

import "rnrsim/internal/mem"

// Hardware budget accounting for §VII-B (hardware overhead) and §IV-C
// (context-switch state). Synthesis is out of scope for a software
// reproduction; instead the exact register and buffer bit budget of the
// engine is enumerated, which is the input the paper fed to Cadence Genus.

// HardwareBudget itemises the per-core storage of the RnR engine in bits.
type HardwareBudget struct {
	Items []BudgetItem
}

// BudgetItem is one named register or buffer.
type BudgetItem struct {
	Name  string
	Bits  uint64
	Arch  bool // software-visible architectural state (saved on switch)
	Saved bool // included in the context-switch save/restore set
}

// Budget returns the engine's per-core hardware budget, following the
// architectural states of §IV-A and the internal registers of §V.
func Budget() HardwareBudget {
	const addrBits = 48 // virtual/physical address register width
	items := []BudgetItem{
		// Architectural states (§IV-A), all saved on context switch.
		{"ASID register", 16, true, true},
		{"boundary base addresses (2x)", 2 * addrBits, true, true},
		{"boundary sizes (2x)", 2 * 32, true, true},
		{"boundary enable/valid bits (2x2)", 4, true, true},
		{"sequence table base address", addrBits, true, true},
		{"division table base address", addrBits, true, true},
		{"window size register", 16, true, true},
		{"prefetch state register", 3, true, true},

		// Internal registers (§V), saved on pause for migration.
		{"current structure read counter", 32, false, true},
		{"sequence table length", 32, false, true},
		{"division table length", 24, false, true},
		{"current seq page address (physical)", addrBits, false, true},
		{"current div page address (physical)", addrBits, false, true},
		{"current window counter", 24, false, true},
		{"prefetch pace register", 16, false, true},
		{"next prefetch index", 32, false, true},
		{"metadata credit counters", 16, false, true},

		// On-chip buffers (not saved: refetched after a switch).
		{"sequence table buffer (2x128B)", 2 * BufferBytes * 8, false, false},
		{"division table buffer (2x128B)", 2 * BufferBytes * 8, false, false},
	}
	return HardwareBudget{Items: items}
}

// TotalBits sums the whole per-core budget.
func (b HardwareBudget) TotalBits() uint64 {
	var n uint64
	for _, it := range b.Items {
		n += it.Bits
	}
	return n
}

// TotalBytes is the per-core storage in bytes (paper: < 1 KB per core).
func (b HardwareBudget) TotalBytes() float64 { return float64(b.TotalBits()) / 8 }

// SavedBytes is the context-switch save/restore footprint (paper: 86.5 B).
func (b HardwareBudget) SavedBytes() float64 {
	var n uint64
	for _, it := range b.Items {
		if it.Saved {
			n += it.Bits
		}
	}
	return float64(n) / 8
}

// SavedState is a snapshot of the engine taken when the OS deschedules the
// process (§IV-C). Restoring it resumes recording or replaying exactly
// where it paused; the on-chip metadata buffers are refetched rather than
// saved.
type SavedState struct {
	Arch          ArchState
	CurStructRead uint64
	SeqLen        int
	DivLen        int
	NextIdx       int
	CurWindow     int
	WindowReads   uint64
}

// Save captures the engine's architectural and internal registers. The
// engine should be paused first (MarkPause), as the OS would do.
func (e *Engine) Save() SavedState {
	return SavedState{
		Arch:          e.Arch,
		CurStructRead: e.curStructRead,
		SeqLen:        len(e.seq),
		DivLen:        len(e.div),
		NextIdx:       e.nextIdx,
		CurWindow:     e.curWindow,
		WindowReads:   e.windowReads,
	}
}

// Restore reinstates a saved snapshot. The metadata tables themselves live
// in (simulated) program memory and survive the switch by construction;
// the on-chip buffers are marked empty so replay refetches them.
func (e *Engine) Restore(s SavedState) {
	e.Arch = s.Arch
	e.curStructRead = s.CurStructRead
	e.nextIdx = s.NextIdx
	e.curWindow = s.CurWindow
	e.windowReads = s.WindowReads
	// Buffers refill from memory: reset the credit so streaming restarts
	// from the prefetch pointer.
	e.fetchedIdx = s.NextIdx - s.NextIdx%(mem.LineSize/SeqEntryBytes)
	if e.fetchedIdx < 0 {
		e.fetchedIdx = 0
	}
	// Orphan any metadata reads still in flight from before the switch:
	// without the generation bump their completions would land after the
	// restore, driving metaInFly negative and advancing fetchedIdx over
	// lines that were never re-read (flushed out by the audit invariant
	// 0 <= metaInFly <= 4). The issue cursors restart at the refill
	// point for the same reason.
	e.metaGen++
	e.metaIssued = e.fetchedIdx
	e.metaInFly = 0
	e.divFetched = 0
	e.divIssued = 0
	e.divInFly = 0
}
