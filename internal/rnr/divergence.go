package rnr

// DivergenceProbe measures how far the program's observed struct-miss
// stream has drifted from the recorded sequence the replay cursor is
// playing back — the staleness signal a re-record-on-divergence policy
// (ROADMAP item 4, AMC-style) consumes. Purely observational: it never
// feeds back into the engine, is excluded from architectural state
// hashing, and costs nothing when not attached (nil pointer compare).
//
// Scoring model. For each replay window the probe collects the struct
// misses actually observed (encoded as SeqEntry, same alphabet as the
// recorded sequence). A miss the engine itself covered — the line was
// prefetched from the script this iteration but lost the timing race
// (evicted before its demand) — is explained by the recording *by
// construction* and matches without comparison; in practice these are
// the vast majority of replay-time misses. The uncovered rest are
// compared against the window's predicted entries with a
// longest-common-subsequence match. Entries predicted but *not*
// observed are free: a recorded miss that doesn't reappear means the
// replayed prefetch covered it, which is success, not drift. What
// counts is observed misses the recording cannot explain:
//
//	editDistance = |uncovered| - LCS(uncovered, predicted) (insertions)
//	score        = editDistance / |observed|               (0 when no misses)
//
// Score 0 therefore means "every miss that happened was in the script"
// (or none happened at all); score 1 means the miss stream is unrelated
// to the recording — the data structure has been mutated and a
// re-record would pay off.
type DivergenceProbe struct {
	// MaxCompare caps both sequences per window (the LCS table is
	// quadratic). Overflowing entries are dropped from comparison but
	// counted in Stats.ObservedMisses. 0 = 512.
	MaxCompare int
	// MaxWindows bounds retained per-window scores; further windows
	// are still scored into the aggregate stats. 0 = 4096.
	MaxWindows int

	observed  []SeqEntry
	covered   int // misses this window explained by the engine's own prefetch
	scores    []WindowScore
	dropped   uint64 // scored windows not retained in scores
	lastScore float64

	Stats DivergenceStats
}

// DivergenceStats are the probe's monotone counters, shaped for the
// audit layer's reflection-based watcher (exported uint64 fields).
type DivergenceStats struct {
	WindowsScored   uint64
	ObservedMisses  uint64 // every struct miss seen during replay
	ComparedMisses  uint64 // observed misses that entered a comparison
	UnmatchedMisses uint64 // compared misses the recording cannot explain
}

// WindowScore is one window's divergence measurement.
type WindowScore struct {
	Window       int
	Predicted    int // predicted entries compared (after capping)
	Observed     int // observed misses, covered included (after capping)
	EditDistance int // observed misses not explained by the recording
	Score        float64
}

const (
	defaultDivergenceMaxCompare = 512
	defaultDivergenceMaxWindows = 4096
)

func (p *DivergenceProbe) maxCompare() int {
	if p.MaxCompare > 0 {
		return p.MaxCompare
	}
	return defaultDivergenceMaxCompare
}

// observe collects one replay-time struct miss for the current window.
// covered misses (the engine prefetched this exact line from the
// script) match by construction and skip the sequence comparison.
func (p *DivergenceProbe) observe(entry SeqEntry, covered bool) {
	p.Stats.ObservedMisses++
	if covered {
		p.covered++
		return
	}
	if len(p.observed) < p.maxCompare() {
		p.observed = append(p.observed, entry)
	}
}

// closeWindow scores the collected misses against the window's
// predicted entries and resets the collection buffer.
func (p *DivergenceProbe) closeWindow(window int, predicted []SeqEntry) {
	obs, covered := p.observed, p.covered
	p.observed = p.observed[:0]
	p.covered = 0
	if limit := p.maxCompare(); len(predicted) > limit {
		predicted = predicted[:limit]
	}
	total := len(obs) + covered
	if total == 0 && len(predicted) == 0 {
		return
	}
	matched := lcsLen(obs, predicted)
	ed := len(obs) - matched
	score := 0.0
	if total > 0 {
		score = float64(ed) / float64(total)
	}
	p.Stats.WindowsScored++
	p.Stats.ComparedMisses += uint64(total)
	p.Stats.UnmatchedMisses += uint64(ed)
	p.lastScore = score

	maxW := p.MaxWindows
	if maxW <= 0 {
		maxW = defaultDivergenceMaxWindows
	}
	if len(p.scores) >= maxW {
		p.dropped++
		return
	}
	p.scores = append(p.scores, WindowScore{
		Window:       window,
		Predicted:    len(predicted),
		Observed:     total,
		EditDistance: ed,
		Score:        score,
	})
}

// lcsLen is the longest-common-subsequence length with a two-row DP;
// inputs are pre-capped so the table stays bounded.
func lcsLen(a, b []SeqEntry) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// WindowScores returns the retained per-window measurements in close
// order (multiple replay iterations revisit the same window indices).
func (p *DivergenceProbe) WindowScores() []WindowScore { return p.scores }

// DroppedWindows returns how many scored windows exceeded MaxWindows.
func (p *DivergenceProbe) DroppedWindows() uint64 { return p.dropped }

// LastScore returns the most recently closed window's score (telemetry
// probe feed).
func (p *DivergenceProbe) LastScore() float64 { return p.lastScore }

// MeanScore returns the unexplained-miss fraction over every compared
// window — the scalar a re-record trigger would threshold.
func (p *DivergenceProbe) MeanScore() float64 {
	if p.Stats.ComparedMisses == 0 {
		return 0
	}
	return float64(p.Stats.UnmatchedMisses) / float64(p.Stats.ComparedMisses)
}

// AttachDivergence wires a probe into the engine's replay path. Attach
// before the run starts; a nil engine probe is the disabled fast path.
func (e *Engine) AttachDivergence(p *DivergenceProbe) { e.diverge = p }

// Divergence returns the attached probe (nil when disabled).
func (e *Engine) Divergence() *DivergenceProbe { return e.diverge }

// windowSlice returns the recorded entries predicted for window w,
// widened by half a window on each side. The margin absorbs pipeline
// skew: the cursor advances when the core *issues* a struct read, but
// the corresponding miss is only observed when the access reaches the
// L2 a dozen-plus cycles later, by which time the cursor may have
// crossed a window boundary. Without the margin, boundary misses score
// against the wrong window and a faithful replay reads as half
// diverged; with it, only misses genuinely absent from the recording's
// neighbourhood count.
func (e *Engine) windowSlice(w int) []SeqEntry {
	if e.Arch.WindowSize == 0 {
		return nil
	}
	win := int(e.Arch.WindowSize)
	lo := w * win
	if lo < 0 || lo >= len(e.seq) {
		return nil
	}
	hi := lo + win
	if margin := win / 2; margin > 0 {
		lo -= margin
		if lo < 0 {
			lo = 0
		}
		hi += margin
	}
	if hi > len(e.seq) {
		hi = len(e.seq)
	}
	return e.seq[lo:hi]
}

// closeDivergence scores the trailing (usually partial) window when a
// replay phase ends. Called from the marker path; pauses deliberately
// do not close the window — replay resumes mid-window after a context
// switch and the segments belong together.
func (e *Engine) closeDivergence() {
	if e.diverge == nil || e.Arch.State != StateReplay || len(e.seq) == 0 {
		return
	}
	e.diverge.closeWindow(e.curWindow, e.windowSlice(e.curWindow))
}
