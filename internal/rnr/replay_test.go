package rnr

import (
	"testing"

	"rnrsim/internal/mem"
	"rnrsim/internal/trace"
)

// metaBackend is a fake memory path for metadata with a fixed latency,
// driven by Tick like the real controller.
type metaBackend struct {
	latency  uint64
	clock    uint64
	inflight []*mem.Request
	finish   []uint64
	Reads    int
	Writes   int
	rejectN  int // reject the first N enqueues
}

func (m *metaBackend) TryEnqueue(r *mem.Request) bool {
	if m.rejectN > 0 {
		m.rejectN--
		return false
	}
	switch r.Type {
	case mem.ReqMetaWrite, mem.ReqWriteback:
		m.Writes++
		r.Complete(m.clock)
	default:
		m.Reads++
		m.inflight = append(m.inflight, r)
		m.finish = append(m.finish, m.clock+m.latency)
	}
	return true
}

func (m *metaBackend) Tick(now uint64) {
	m.clock = now
	kept, keptF := m.inflight[:0], m.finish[:0]
	for i, r := range m.inflight {
		if m.finish[i] <= now {
			r.Complete(now)
		} else {
			kept = append(kept, r)
			keptF = append(keptF, m.finish[i])
		}
	}
	m.inflight, m.finish = kept, keptF
}

// buildRecorded creates an engine with nEntries recorded misses (one read
// per miss) and switches it to replay over the fake backend.
func buildRecorded(t *testing.T, mb *metaBackend, nEntries int, window uint64) *Engine {
	t.Helper()
	e := NewEngine(0, mb)
	e.DefaultWindow = window
	base := mem.Addr(0x100000)
	e.HandleMarker(trace.Mark(trace.MarkInit, 0, 0, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkSeqTable, 0x7000_0000, uint64(nEntries*8), 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkDivTable, 0x7100_0000, 1<<16, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkAddrBaseSet, base, 1<<24, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkAddrBaseEnable, 0, 0, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkRecordStart, 0, 0, 0), 0)
	for i := 0; i < nEntries; i++ {
		r := mem.NewRequest(mem.ReqLoad, base+mem.Addr(i*mem.LineSize), 1, 0, 0)
		e.PreAccess(r)
		structMiss(e, base+mem.Addr(i*mem.LineSize))
	}
	e.HandleMarker(trace.Mark(trace.MarkReplay, 0, 0, 0), 0)
	return e
}

func TestReplayMetadataStreamingPacesPrefetch(t *testing.T) {
	mb := &metaBackend{latency: 40}
	e := buildRecorded(t, mb, 256, 64)
	e.Control = NoControl

	issued := 0
	issue := func(line mem.Addr) bool { issued++; return true }

	// Before any metadata arrives nothing can issue.
	e.OnCycle(1, issue)
	if issued != 0 {
		t.Fatalf("issued %d prefetches before metadata arrived", issued)
	}
	if mb.Reads == 0 {
		t.Fatal("no metadata reads issued")
	}
	// Drive until the whole sequence replays.
	for cy := uint64(2); cy < 10000 && issued < 256; cy++ {
		mb.Tick(cy)
		e.OnCycle(cy, issue)
	}
	if issued != 256 {
		t.Fatalf("replayed %d of 256 entries", issued)
	}
	// Metadata reads: sequence (256*4B = 16 lines) + division lines.
	if mb.Reads < 16 {
		t.Errorf("only %d metadata reads for 16 sequence lines", mb.Reads)
	}
}

func TestReplayMetadataBackpressure(t *testing.T) {
	mb := &metaBackend{latency: 10, rejectN: 5}
	e := buildRecorded(t, mb, 64, 32)
	e.Control = NoControl
	issued := 0
	for cy := uint64(1); cy < 5000 && issued < 64; cy++ {
		mb.Tick(cy)
		e.OnCycle(cy, func(mem.Addr) bool { issued++; return true })
	}
	if issued != 64 {
		t.Errorf("replay lost entries behind metadata backpressure: %d/64", issued)
	}
}

func TestReplayRestartInvalidatesStaleMetadata(t *testing.T) {
	// A second MarkReplay while metadata reads are in flight must not let
	// the stale completions corrupt the fresh replay's counters.
	mb := &metaBackend{latency: 1000} // reads stay in flight
	e := buildRecorded(t, mb, 128, 32)
	e.Control = NoControl
	e.OnCycle(1, func(mem.Addr) bool { return true }) // issues meta reads
	if mb.Reads == 0 {
		t.Fatal("no metadata reads in flight")
	}
	e.HandleMarker(trace.Mark(trace.MarkReplay, 0, 0, 0), 2) // restart
	// Let the stale reads complete.
	mb.Tick(2000)
	if e.fetchedIdx != 0 && e.fetchedIdx > len(e.seq) {
		t.Errorf("stale completions corrupted fetchedIdx = %d", e.fetchedIdx)
	}
	if e.metaInFly < 0 {
		t.Errorf("metaInFly went negative: %d", e.metaInFly)
	}
	// The restarted replay must still complete.
	issued := 0
	for cy := uint64(2001); cy < 20000 && issued < 128; cy++ {
		mb.Tick(cy)
		e.OnCycle(cy, func(mem.Addr) bool { issued++; return true })
	}
	if issued != 128 {
		t.Errorf("restarted replay issued %d/128", issued)
	}
}

func TestConsumedEstimateInterpolation(t *testing.T) {
	e := NewEngine(0, nil)
	e.Arch.WindowSize = 10
	e.seq = make([]SeqEntry, 40)
	e.div = []uint64{100, 300, 350, 400} // reads at each window end
	e.curWindow = 1                      // window 1 in progress (reads 100..300)
	e.curStructRead = 200                // halfway through window 1
	if got := e.consumedEstimate(); got != 15 {
		t.Errorf("consumedEstimate = %d, want 15 (1.5 windows)", got)
	}
	e.curStructRead = 100 // window start
	if got := e.consumedEstimate(); got != 10 {
		t.Errorf("consumedEstimate at window start = %d, want 10", got)
	}
	e.curWindow = 4 // past the table
	if got := e.consumedEstimate(); got != 40 {
		t.Errorf("consumedEstimate past end = %d, want len(seq)", got)
	}
}

func TestLeadReadsCapThrottlesSparseMissWindows(t *testing.T) {
	e := NewEngine(0, nil)
	e.Control = WindowPaceControl
	e.Arch.WindowSize = 16
	e.LeadEntries = 64
	e.LeadReadsCap = 64
	e.seq = make([]SeqEntry, 64)
	// Window 0 spans 16*32 = 512 reads: each miss is 32 reads apart, so
	// the 64-read cap allows only 64*16/512 = 2 entries of lead (min 4).
	e.div = []uint64{512, 1024, 1536, 2048}
	e.curWindow = 0
	e.curStructRead = 0
	if e.eligible(3) != true {
		t.Error("entry within the min-4 lead must be eligible")
	}
	if e.eligible(10) {
		t.Error("entry beyond the read-capped lead must wait")
	}
	// Dense windows (span == W) are not throttled below LeadEntries.
	e.div = []uint64{16, 32, 48, 64}
	if !e.eligible(10) {
		t.Error("dense window wrongly throttled")
	}
}

func TestWindowAdvanceRequiresDivMetadata(t *testing.T) {
	mb := &metaBackend{latency: 100000} // division table never arrives
	e := buildRecorded(t, mb, 64, 16)
	e.Control = WindowControl
	// Simulate program progress: without fetched division entries the
	// window counter cannot advance.
	for i := 0; i < 64; i++ {
		r := mem.NewRequest(mem.ReqLoad, 0x100000, 1, 0, 0)
		e.PreAccess(r)
	}
	e.advanceWindow()
	if e.CurWindow() != 0 {
		t.Errorf("window advanced to %d without division metadata", e.CurWindow())
	}
}

func TestEndFreesButKeepsStats(t *testing.T) {
	e := buildRecorded(t, &metaBackend{latency: 1}, 32, 16)
	seqBytes := e.Stats.SeqTableBytes
	if seqBytes != 32*SeqEntryBytes {
		t.Fatalf("seq bytes = %d", seqBytes)
	}
	e.HandleMarker(trace.Mark(trace.MarkEnd, 0, 0, 0), 10)
	if e.Arch.State != StateIdle {
		t.Errorf("state after RnR.end = %v", e.Arch.State)
	}
	if e.Stats.SeqTableBytes != seqBytes {
		t.Error("RnR.end lost the storage accounting")
	}
}
