// Package rnr implements the paper's contribution: the software-assisted
// Record-and-Replay hardware prefetcher.
//
// The engine sits next to a private L2 cache. Guided by the software
// interface of §IV (delivered as in-band trace markers), it records the L2
// miss sequence of programmer-designated data structures into a sequence
// table in programmer-allocated memory, records per-window demand-read
// counts into a division table, and on replay streams the metadata back in
// and prefetches the recorded lines into the L2, paced to the program's
// progress (§V-C).
package rnr

import (
	"fmt"

	"rnrsim/internal/mem"
)

// State is the prefetch-state register (Fig. 3).
type State uint8

const (
	// StateIdle: RnR is disabled.
	StateIdle State = iota
	// StateRecord: recording the miss sequence of the target structures.
	StateRecord
	// StateReplay: replaying the recorded sequence as prefetches.
	StateReplay
	// StatePausedRecord / StatePausedReplay: paused (context switch or a
	// program phase without the repeating pattern); resumable.
	StatePausedRecord
	StatePausedReplay
)

var stateNames = [...]string{"idle", "record", "replay", "paused-record", "paused-replay"}

func (s State) String() string {
	if int(s) >= 0 && int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// NumBoundarySlots is the number of boundary-checking address register
// pairs. The paper's footnote 1: "The number of address registers can be
// variable, two are used in the evaluation."
const NumBoundarySlots = 2

// Boundary is one boundary-checking register set: a base address, the
// structure length, and an active bit (§IV-A state (2)).
type Boundary struct {
	Base    mem.Addr
	Size    uint64
	Enabled bool
	Valid   bool
}

// Contains reports whether a falls inside an enabled boundary.
func (b Boundary) Contains(a mem.Addr) bool {
	return b.Valid && b.Enabled && a >= b.Base && a < b.Base+mem.Addr(b.Size)
}

// ArchState is the software-visible architectural state of §IV-A. It is
// per core and is saved/restored across context switches (§IV-C).
type ArchState struct {
	ASID         uint64
	Bounds       [NumBoundarySlots]Boundary
	SeqTableBase mem.Addr // base of the sequence table (virtual)
	SeqTableCap  uint64   // capacity in entries
	DivTableBase mem.Addr // base of the window division table (virtual)
	DivTableCap  uint64   // capacity in entries
	WindowSize   uint64   // recorded misses per window
	State        State
}

// SetBoundary programs boundary slot i with base and size (disabled).
func (a *ArchState) SetBoundary(i int, base mem.Addr, size uint64) error {
	if i < 0 || i >= NumBoundarySlots {
		return fmt.Errorf("rnr: boundary slot %d out of range", i)
	}
	a.Bounds[i] = Boundary{Base: base, Size: size, Valid: true}
	return nil
}

// EnableBoundary / DisableBoundary toggle slot i.
func (a *ArchState) EnableBoundary(i int) error {
	if i < 0 || i >= NumBoundarySlots || !a.Bounds[i].Valid {
		return fmt.Errorf("rnr: enable of invalid boundary slot %d", i)
	}
	a.Bounds[i].Enabled = true
	return nil
}

// DisableBoundary disables boundary slot i.
func (a *ArchState) DisableBoundary(i int) error {
	if i < 0 || i >= NumBoundarySlots || !a.Bounds[i].Valid {
		return fmt.Errorf("rnr: disable of invalid boundary slot %d", i)
	}
	a.Bounds[i].Enabled = false
	return nil
}

// Match returns the slot containing a, or -1.
func (a *ArchState) Match(addr mem.Addr) int {
	for i := range a.Bounds {
		if a.Bounds[i].Contains(addr) {
			return i
		}
	}
	return -1
}

// SeqEntry is one sequence-table record: the boundary slot and the line
// offset of the miss inside that structure. Offsets rather than absolute
// addresses let the program swap the base pointer between iterations
// (p_curr/p_next in Algorithm 1) without invalidating the recording.
//
// The hardware encoding is 4 bytes: 4 bits of slot, 28 bits of line
// offset, supporting structures up to 2^28 lines (16 GB).
type SeqEntry uint32

// NewSeqEntry packs slot and lineOff. lineOff beyond 28 bits is truncated,
// which mirrors the hardware field width; callers validate sizes up front.
func NewSeqEntry(slot int, lineOff uint64) SeqEntry {
	return SeqEntry(uint32(slot)<<28 | uint32(lineOff&0x0fffffff))
}

// Slot returns the boundary slot of the entry.
func (e SeqEntry) Slot() int { return int(e >> 28) }

// LineOff returns the line offset within the structure.
func (e SeqEntry) LineOff() uint64 { return uint64(e & 0x0fffffff) }

// SeqEntryBytes and DivEntryBytes size the metadata records: 4-byte
// sequence entries, one 8-byte word per window in the division table.
const (
	SeqEntryBytes = 4
	DivEntryBytes = 8
	// BufferBytes is the size of each on-chip metadata buffer; the design
	// uses two 128 B buffers per table for double buffering (§V).
	BufferBytes = 128
	// SeqEntriesPerBuffer / DivEntriesPerBuffer derive the buffer depths.
	SeqEntriesPerBuffer = BufferBytes / SeqEntryBytes
	DivEntriesPerBuffer = BufferBytes / DivEntryBytes
)
