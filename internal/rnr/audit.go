package rnr

import (
	"fmt"
	"sort"

	"rnrsim/internal/mem"
)

// Audit hooks. The shapes (report func(law string) and mix func(uint64))
// are chosen so this package needs no audit import (internal/audit's
// fuzzer imports rnr, so the dependency must point this way only);
// internal/sim adapts them onto the audit.Checker and audit.Hash.

// Auditor validates one engine's invariants across sweeps. It keeps the
// previous sweep's registers so it can check temporal laws (Cur Window
// monotone within one replay episode) as well as instantaneous ones.
type Auditor struct {
	e           *Engine
	seeded      bool
	prevState   State
	prevWindow  int
	prevReplays uint64
	prevPauses  uint64
}

// NewAuditor returns an invariant auditor bound to the engine.
func (e *Engine) NewAuditor() *Auditor { return &Auditor{e: e} }

// Check sweeps the engine's invariants once.
func (a *Auditor) Check(report func(law string)) {
	e := a.e
	s := &e.Stats

	// Replay cursor geometry. nextIdx may legitimately run ahead of
	// fetchedIdx transiently never — the issue loop stops at fetchedIdx —
	// but skip-ahead after a stall moves it past fetched metadata, so
	// only the table bound is a law.
	if e.nextIdx < 0 || e.nextIdx > len(e.seq) {
		report(fmt.Sprintf("seq cursor nextIdx %d outside table [0,%d]", e.nextIdx, len(e.seq)))
	}
	if e.fetchedIdx < 0 || e.fetchedIdx > len(e.seq) {
		report(fmt.Sprintf("fetchedIdx %d outside table [0,%d]", e.fetchedIdx, len(e.seq)))
	}
	// With a metadata path, completions can never outrun issues. (In
	// unit-test mode meta is nil and fetchedIdx jumps straight to the
	// table end without issuing reads, so the lower bound only holds on
	// the real path.)
	if e.metaIssued > len(e.seq) || (e.meta != nil && e.metaIssued < e.fetchedIdx) {
		report(fmt.Sprintf("metaIssued %d outside [fetchedIdx %d, len(seq) %d]",
			e.metaIssued, e.fetchedIdx, len(e.seq)))
	}
	if e.metaInFly < 0 || e.metaInFly > 4 {
		report(fmt.Sprintf("metaInFly %d outside credit range [0,4]", e.metaInFly))
	}
	if e.divInFly < 0 || e.divInFly > 2 {
		report(fmt.Sprintf("divInFly %d outside credit range [0,2]", e.divInFly))
	}
	if e.divFetched < 0 || e.divFetched > len(e.div) {
		report(fmt.Sprintf("divFetched %d outside table [0,%d]", e.divFetched, len(e.div)))
	}
	if e.divIssued > len(e.div) || (e.meta != nil && e.divIssued < e.divFetched) {
		report(fmt.Sprintf("divIssued %d outside [divFetched %d, len(div) %d]",
			e.divIssued, e.divFetched, len(e.div)))
	}
	if e.curWindow < 0 || e.curWindow > len(e.div) {
		report(fmt.Sprintf("curWindow %d outside division table [0,%d]", e.curWindow, len(e.div)))
	}
	if e.windowReads > e.curStructRead {
		report(fmt.Sprintf("windowReads %d ahead of curStructRead %d", e.windowReads, e.curStructRead))
	}

	// Record-side bookkeeping: buffers flush at line granularity, tables
	// never exceed the programmer-declared capacity, and the cumulative
	// counters bound the live tables (they survive table resets).
	if e.seqBufCount < 0 || e.seqBufCount >= mem.LineSize/SeqEntryBytes {
		report(fmt.Sprintf("seqBufCount %d outside [0,%d)", e.seqBufCount, mem.LineSize/SeqEntryBytes))
	}
	if e.divBufCount < 0 || e.divBufCount >= mem.LineSize/DivEntryBytes {
		report(fmt.Sprintf("divBufCount %d outside [0,%d)", e.divBufCount, mem.LineSize/DivEntryBytes))
	}
	if uint64(len(e.seq)) > e.Arch.SeqTableCap {
		report(fmt.Sprintf("sequence table %d entries exceeds capacity %d", len(e.seq), e.Arch.SeqTableCap))
	}
	if uint64(len(e.div)) > e.Arch.DivTableCap {
		report(fmt.Sprintf("division table %d entries exceeds capacity %d", len(e.div), e.Arch.DivTableCap))
	}
	if uint64(len(e.seq)) > s.RecordedEntries {
		report(fmt.Sprintf("live sequence table %d exceeds cumulative RecordedEntries %d",
			len(e.seq), s.RecordedEntries))
	}
	if uint64(len(e.div)) > s.RecordedWindows {
		report(fmt.Sprintf("live division table %d exceeds cumulative RecordedWindows %d",
			len(e.div), s.RecordedWindows))
	}

	// The division table stores cumulative struct-read counts, so it is
	// monotone non-decreasing by construction.
	for i := 1; i < len(e.div); i++ {
		if e.div[i] < e.div[i-1] {
			report(fmt.Sprintf("division table not cumulative: div[%d]=%d < div[%d]=%d",
				i, e.div[i], i-1, e.div[i-1]))
			break
		}
	}

	// Footprint stats are finalized when recording ends, so during replay
	// they must agree exactly with the live tables.
	if e.Arch.State == StateReplay || e.Arch.State == StatePausedReplay {
		if s.SeqTableBytes != uint64(len(e.seq))*SeqEntryBytes {
			report(fmt.Sprintf("SeqTableBytes %d != %d entries * %d",
				s.SeqTableBytes, len(e.seq), SeqEntryBytes))
		}
		if s.DivTableBytes != uint64(len(e.div))*DivEntryBytes {
			report(fmt.Sprintf("DivTableBytes %d != %d entries * %d",
				s.DivTableBytes, len(e.div), DivEntryBytes))
		}
	}

	// Prefetch classification: early and out-of-window are disjoint
	// subsets of issued replay prefetches.
	if s.EarlyPrefetches+s.OutOfWindow > s.Prefetches {
		report(fmt.Sprintf("classification: early %d + out-of-window %d > prefetches %d",
			s.EarlyPrefetches, s.OutOfWindow, s.Prefetches))
	}

	// Cur Window is monotone within one replay episode: it may only
	// rewind through an explicit reset (MarkReplay bumps Replays,
	// context-switch restore goes through MarkPause/Resume which bump
	// Pauses), never silently.
	if a.seeded &&
		a.prevState == StateReplay && e.Arch.State == StateReplay &&
		a.prevReplays == s.Replays && a.prevPauses == s.Pauses &&
		e.curWindow < a.prevWindow {
		report(fmt.Sprintf("curWindow rewound %d -> %d within one replay episode",
			a.prevWindow, e.curWindow))
	}
	a.seeded = true
	a.prevState = e.Arch.State
	a.prevWindow = e.curWindow
	a.prevReplays = s.Replays
	a.prevPauses = s.Pauses
}

// HashState folds the engine's complete architectural state — the §IV-A
// registers, the recorded metadata tables, every replay/record register
// and the statistics — into the caller's hasher. The shadow maps are
// hashed in sorted order so Go's randomized map iteration cannot
// perturb the digest.
func (e *Engine) HashState(mix func(uint64)) {
	a := &e.Arch
	mix(a.ASID)
	for i := range a.Bounds {
		b := &a.Bounds[i]
		mix(uint64(b.Base))
		mix(b.Size)
		mix(rnrBoolWord(b.Enabled)<<1 | rnrBoolWord(b.Valid))
	}
	mix(uint64(a.SeqTableBase))
	mix(a.SeqTableCap)
	mix(uint64(a.DivTableBase))
	mix(a.DivTableCap)
	mix(a.WindowSize)
	mix(uint64(a.State))

	mix(uint64(len(e.seq)))
	for _, entry := range e.seq {
		mix(uint64(entry))
	}
	mix(uint64(len(e.div)))
	for _, d := range e.div {
		mix(d)
	}

	mix(e.curStructRead)
	mix(uint64(int64(e.seqBufCount)))
	mix(uint64(int64(e.divBufCount)))
	mix(uint64(e.lastSeqPage))
	mix(uint64(e.lastDivPage))
	mix(uint64(int64(e.nextIdx)))
	mix(uint64(int64(e.fetchedIdx)))
	mix(uint64(int64(e.metaIssued)))
	mix(uint64(int64(e.metaInFly)))
	mix(e.metaGen)
	mix(uint64(int64(e.divFetched)))
	mix(uint64(int64(e.divIssued)))
	mix(uint64(int64(e.divInFly)))
	mix(uint64(int64(e.curWindow)))
	mix(uint64(e.retryLine))
	mix(rnrBoolWord(e.retryValid))
	mix(e.windowReads)

	hashAddrMap(e.track, func(line mem.Addr) uint64 { return uint64(e.track[line]) }, mix)
	hashAddrMap(e.issuedThisIter, func(mem.Addr) uint64 { return 1 }, mix)

	s := &e.Stats
	for _, v := range []uint64{
		s.StructReads, s.RecordedEntries, s.RecordedWindows, s.SeqOverflows,
		s.MetaWriteLines, s.MetaReadLines, s.TLBLookups, s.Prefetches,
		s.Replays, s.Pauses, s.Resumes, s.EarlyPrefetches, s.OutOfWindow,
		s.SeqTableBytes, s.DivTableBytes,
		s.ReplayStructMisses, s.ReplayMissesCovered, s.SkippedEntries,
	} {
		mix(v)
	}
}

// hashAddrMap folds an address-keyed map in sorted key order.
func hashAddrMap[V any](m map[mem.Addr]V, val func(mem.Addr) uint64, mix func(uint64)) {
	keys := make([]mem.Addr, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	mix(uint64(len(keys)))
	for _, k := range keys {
		mix(uint64(k))
		mix(val(k))
	}
}

func rnrBoolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
