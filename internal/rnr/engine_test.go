package rnr

import (
	"testing"
	"testing/quick"

	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
	"rnrsim/internal/trace"
)

// setup builds an engine with one enabled boundary over [base, base+size)
// and allocated metadata tables, in Record state.
func setup(t *testing.T, base mem.Addr, size uint64, window uint64) *Engine {
	t.Helper()
	e := NewEngine(0, nil)
	e.DefaultWindow = window
	e.HandleMarker(trace.Mark(trace.MarkInit, 0, 0, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkSeqTable, 0x7000_0000, 1<<20, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkDivTable, 0x7100_0000, 1<<16, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkAddrBaseSet, base, size, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkAddrBaseEnable, 0, 0, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkRecordStart, 0, 0, 0), 0)
	return e
}

func structMiss(e *Engine, line mem.Addr) {
	e.OnAccess(cache.AccessInfo{Line: line, Type: mem.ReqLoad, StructFlag: true}, nil)
}

func TestBoundaryCheckSetsFlagAndCounts(t *testing.T) {
	e := setup(t, 0x10000, 4096, 4)
	in := mem.NewRequest(mem.ReqLoad, 0x10100, 1, 0, 0)
	out := mem.NewRequest(mem.ReqLoad, 0x50000, 1, 0, 0)
	st := mem.NewRequest(mem.ReqStore, 0x10100, 1, 0, 0)
	e.PreAccess(in)
	e.PreAccess(out)
	e.PreAccess(st)
	if !in.StructFlag {
		t.Error("in-range load not flagged")
	}
	if out.StructFlag {
		t.Error("out-of-range load flagged")
	}
	if st.StructFlag {
		t.Error("store flagged (only reads are counted)")
	}
	if e.CurStructRead() != 1 || e.Stats.StructReads != 1 {
		t.Errorf("struct reads = %d/%d, want 1", e.CurStructRead(), e.Stats.StructReads)
	}
}

func TestBoundaryIdleNoFlag(t *testing.T) {
	e := NewEngine(0, nil)
	_ = e.Arch.SetBoundary(0, 0x10000, 4096)
	_ = e.Arch.EnableBoundary(0)
	r := mem.NewRequest(mem.ReqLoad, 0x10000, 1, 0, 0)
	e.PreAccess(r)
	if r.StructFlag {
		t.Error("flag set while engine idle")
	}
}

func TestRecordSequenceAndOffsets(t *testing.T) {
	base := mem.Addr(0x10000)
	e := setup(t, base, 1<<16, 4)
	misses := []uint64{9, 12, 9, 20, 1} // line offsets, the paper's example
	for _, off := range misses {
		structMiss(e, base+mem.Addr(off*mem.LineSize))
	}
	seq := e.Sequence()
	if len(seq) != len(misses) {
		t.Fatalf("recorded %d entries, want %d", len(seq), len(misses))
	}
	for i, off := range misses {
		if seq[i].LineOff() != off || seq[i].Slot() != 0 {
			t.Errorf("entry %d = slot %d off %d, want slot 0 off %d",
				i, seq[i].Slot(), seq[i].LineOff(), off)
		}
	}
}

func TestRecordIgnoresHitsAndUnflagged(t *testing.T) {
	e := setup(t, 0x10000, 4096, 4)
	e.OnAccess(cache.AccessInfo{Line: 0x10000, Hit: true, StructFlag: true}, nil)
	e.OnAccess(cache.AccessInfo{Line: 0x10000, Merged: true, StructFlag: true}, nil)
	e.OnAccess(cache.AccessInfo{Line: 0x10000, StructFlag: false}, nil)
	if len(e.Sequence()) != 0 {
		t.Errorf("recorded %d entries from non-misses", len(e.Sequence()))
	}
}

func TestDivisionTableCumulativeReads(t *testing.T) {
	base := mem.Addr(0x10000)
	e := setup(t, base, 1<<20, 2) // window = 2 misses
	// Simulate interleaved reads (some hit) and misses: 3 reads then miss,
	// 2 reads then miss, 1 read then miss, 4 reads then miss.
	pattern := []struct {
		reads int
		off   uint64
	}{{3, 0}, {2, 1}, {1, 2}, {4, 3}}
	reads := uint64(0)
	for _, p := range pattern {
		for i := 0; i < p.reads; i++ {
			r := mem.NewRequest(mem.ReqLoad, base+mem.Addr(p.off*mem.LineSize), 1, 0, 0)
			e.PreAccess(r)
			reads++
		}
		structMiss(e, base+mem.Addr(p.off*mem.LineSize))
	}
	div := e.Division()
	// Window of 2: boundaries after miss 2 (reads=5) and miss 4 (reads=10).
	if len(div) != 2 || div[0] != 5 || div[1] != 10 {
		t.Errorf("division table = %v, want [5 10]", div)
	}
}

func TestMetadataWriteGrouping(t *testing.T) {
	base := mem.Addr(0x10000)
	e := setup(t, base, 1<<20, 1024)
	// 16 entries x 4 B = 64 B: exactly one metadata line write.
	for i := 0; i < 16; i++ {
		structMiss(e, base+mem.Addr(i*mem.LineSize))
	}
	if e.Stats.MetaWriteLines != 1 {
		t.Errorf("meta writes = %d after 16 entries, want 1", e.Stats.MetaWriteLines)
	}
	for i := 16; i < 31; i++ {
		structMiss(e, base+mem.Addr(i*mem.LineSize))
	}
	if e.Stats.MetaWriteLines != 1 {
		t.Errorf("meta writes = %d after 31 entries, want still 1", e.Stats.MetaWriteLines)
	}
	structMiss(e, base+mem.Addr(31*mem.LineSize))
	if e.Stats.MetaWriteLines != 2 {
		t.Errorf("meta writes = %d after 32 entries, want 2", e.Stats.MetaWriteLines)
	}
}

func TestFinalizeFlushesPartialBuffers(t *testing.T) {
	base := mem.Addr(0x10000)
	e := setup(t, base, 1<<20, 1024)
	for i := 0; i < 5; i++ {
		structMiss(e, base+mem.Addr(i*mem.LineSize))
	}
	e.HandleMarker(trace.Mark(trace.MarkReplay, 0, 0, 0), 100)
	if e.Stats.MetaWriteLines < 2 { // partial seq line + div line
		t.Errorf("finalize flushed %d lines, want >= 2", e.Stats.MetaWriteLines)
	}
	if got := e.Stats.SeqTableBytes; got != 5*SeqEntryBytes {
		t.Errorf("SeqTableBytes = %d, want %d", got, 5*SeqEntryBytes)
	}
	if len(e.Division()) != 1 {
		t.Errorf("division table %v, want one terminator entry", e.Division())
	}
}

// replayCollector gathers replayed prefetch lines.
type replayCollector struct {
	lines []mem.Addr
	limit int // reject issues beyond limit if > 0
}

func (c *replayCollector) issue(line mem.Addr) bool {
	if c.limit > 0 && len(c.lines) >= c.limit {
		return false
	}
	c.lines = append(c.lines, line)
	return true
}

// recordAndReplay records the offsets then switches to replay.
func recordAndReplay(t *testing.T, base mem.Addr, window uint64, offs []uint64) (*Engine, *replayCollector) {
	t.Helper()
	e := setup(t, base, 1<<20, window)
	for _, off := range offs {
		// one struct read per miss to give the division table substance
		r := mem.NewRequest(mem.ReqLoad, base+mem.Addr(off*mem.LineSize), 1, 0, 0)
		e.PreAccess(r)
		structMiss(e, base+mem.Addr(off*mem.LineSize))
	}
	e.HandleMarker(trace.Mark(trace.MarkReplay, 0, 0, 0), 100)
	return e, &replayCollector{}
}

func TestReplayReproducesSequence(t *testing.T) {
	base := mem.Addr(0x10000)
	offs := []uint64{9, 12, 9, 20, 1}
	e, c := recordAndReplay(t, base, 2, offs)
	e.Control = NoControl
	for cy := uint64(0); cy < 100 && len(c.lines) < len(offs); cy++ {
		e.OnCycle(cy, c.issue)
	}
	if len(c.lines) != len(offs) {
		t.Fatalf("replayed %d prefetches, want %d", len(c.lines), len(offs))
	}
	for i, off := range offs {
		want := base + mem.Addr(off*mem.LineSize)
		if c.lines[i] != want {
			t.Errorf("prefetch %d = %#x, want %#x", i, uint64(c.lines[i]), uint64(want))
		}
	}
}

func TestReplayUsesSwappedBase(t *testing.T) {
	// Algorithm 1: p_curr and p_next swap between iterations; the replay
	// must target the *currently enabled* base with recorded offsets.
	base1, base2 := mem.Addr(0x10000), mem.Addr(0x90000)
	e, c := recordAndReplay(t, base1, 4, []uint64{3, 7})
	e.Control = NoControl
	// Swap: program slot 0 to the other buffer, as line 31-33 of Alg. 1.
	e.HandleMarker(trace.Mark(trace.MarkAddrBaseSet, base2, 1<<20, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkAddrBaseEnable, 0, 0, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkReplay, 0, 0, 0), 0)
	for cy := uint64(0); cy < 100 && len(c.lines) < 2; cy++ {
		e.OnCycle(cy, c.issue)
	}
	if len(c.lines) != 2 || c.lines[0] != base2+3*mem.LineSize || c.lines[1] != base2+7*mem.LineSize {
		t.Errorf("replay after swap issued %#v", c.lines)
	}
}

func TestWindowControlGatesProgress(t *testing.T) {
	base := mem.Addr(0x10000)
	// 8 misses, window 2 => 4 windows. With window control, only windows
	// 0 and 1 (entries 0..3) may prefetch before any program progress.
	offs := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	e, c := recordAndReplay(t, base, 2, offs)
	e.Control = WindowControl
	for cy := uint64(0); cy < 50; cy++ {
		e.OnCycle(cy, c.issue)
	}
	if len(c.lines) != 4 {
		t.Fatalf("window control allowed %d prefetches before progress, want 4", len(c.lines))
	}
	// Program consumes window 0 (2 struct reads recorded per window).
	for i := 0; i < 2; i++ {
		r := mem.NewRequest(mem.ReqLoad, base, 1, 0, 0)
		e.PreAccess(r)
	}
	for cy := uint64(50); cy < 100; cy++ {
		e.OnCycle(cy, c.issue)
	}
	if len(c.lines) != 6 {
		t.Errorf("after consuming window 0: %d prefetches, want 6", len(c.lines))
	}
}

func TestNoControlIgnoresProgress(t *testing.T) {
	base := mem.Addr(0x10000)
	offs := []uint64{0, 1, 2, 3, 4, 5, 6, 7}
	e, c := recordAndReplay(t, base, 2, offs)
	e.Control = NoControl
	for cy := uint64(0); cy < 50; cy++ {
		e.OnCycle(cy, c.issue)
	}
	if len(c.lines) != 8 {
		t.Errorf("no-control replay issued %d, want all 8", len(c.lines))
	}
}

func TestPaceControlSpreadsWithinWindow(t *testing.T) {
	base := mem.Addr(0x10000)
	// Window of 4 misses; window 0 spans 8 struct reads (2 reads/miss).
	var offs []uint64
	e := setup(t, base, 1<<20, 4)
	for i := uint64(0); i < 8; i++ {
		offs = append(offs, i)
		for j := 0; j < 2; j++ {
			r := mem.NewRequest(mem.ReqLoad, base+mem.Addr(i*mem.LineSize), 1, 0, 0)
			e.PreAccess(r)
		}
		structMiss(e, base+mem.Addr(i*mem.LineSize))
	}
	e.HandleMarker(trace.Mark(trace.MarkReplay, 0, 0, 0), 0)
	e.Control = WindowPaceControl
	c := &replayCollector{}

	// Window 0 (entries 0-3) is eligible instantly.
	for cy := uint64(0); cy < 50; cy++ {
		e.OnCycle(cy, c.issue)
	}
	if len(c.lines) != 4 {
		t.Fatalf("pace control pre-progress issued %d, want 4", len(c.lines))
	}
	// Half of window 0's reads consumed (4 of 8): half of window 1
	// (2 entries) becomes eligible.
	for i := 0; i < 4; i++ {
		r := mem.NewRequest(mem.ReqLoad, base, 1, 0, 0)
		e.PreAccess(r)
	}
	for cy := uint64(50); cy < 100; cy++ {
		e.OnCycle(cy, c.issue)
	}
	if len(c.lines) != 6 {
		t.Errorf("pace control at half window issued %d, want 6", len(c.lines))
	}
}

func TestReplayBackpressureRetries(t *testing.T) {
	base := mem.Addr(0x10000)
	offs := []uint64{0, 1, 2}
	e, c := recordAndReplay(t, base, 4, offs)
	e.Control = NoControl
	c.limit = 1
	e.OnCycle(0, c.issue)
	if len(c.lines) != 1 {
		t.Fatalf("issued %d with limit 1", len(c.lines))
	}
	c.limit = 0
	for cy := uint64(1); cy < 20; cy++ {
		e.OnCycle(cy, c.issue)
	}
	if len(c.lines) != 3 {
		t.Errorf("after backpressure: %d prefetches, want 3 (no loss, no dup)", len(c.lines))
	}
	if e.Stats.Prefetches != 3 {
		t.Errorf("Stats.Prefetches = %d, want 3", e.Stats.Prefetches)
	}
}

func TestTimelinessClassification(t *testing.T) {
	base := mem.Addr(0x10000)
	e, c := recordAndReplay(t, base, 4, []uint64{0, 1, 2})
	e.Control = NoControl
	for cy := uint64(0); cy < 20; cy++ {
		e.OnCycle(cy, c.issue)
	}
	// Line 0: evicted unused then demanded -> early.
	e.OnEvict(base+0*mem.LineSize, true, 30)
	e.OnAccess(cache.AccessInfo{Line: base, StructFlag: true}, nil)
	// Line 1: evicted unused, never demanded -> out-of-window at iter end.
	e.OnEvict(base+1*mem.LineSize, true, 31)
	// Line 2: demanded as a hit -> on-time (counted by the cache).
	e.OnAccess(cache.AccessInfo{Line: base + 2*mem.LineSize, Hit: true, PrefHit: true, StructFlag: true}, nil)
	e.HandleMarker(trace.Mark(trace.MarkPause, 0, 0, 0), 40)
	if e.Stats.EarlyPrefetches != 1 {
		t.Errorf("early = %d, want 1", e.Stats.EarlyPrefetches)
	}
	if e.Stats.OutOfWindow != 1 {
		t.Errorf("out-of-window = %d, want 1", e.Stats.OutOfWindow)
	}
}

func TestPauseResumeRoundTrip(t *testing.T) {
	base := mem.Addr(0x10000)
	e := setup(t, base, 1<<20, 4)
	structMiss(e, base)
	e.HandleMarker(trace.Mark(trace.MarkPause, 0, 0, 0), 0)
	if e.Arch.State != StatePausedRecord {
		t.Fatalf("state after pause = %v", e.Arch.State)
	}
	// Misses while paused are not recorded.
	structMiss(e, base+mem.LineSize)
	if len(e.Sequence()) != 1 {
		t.Errorf("recorded while paused: %d entries", len(e.Sequence()))
	}
	e.HandleMarker(trace.Mark(trace.MarkResume, 0, 0, 0), 0)
	if e.Arch.State != StateRecord {
		t.Fatalf("state after resume = %v", e.Arch.State)
	}
	structMiss(e, base+2*mem.LineSize)
	if len(e.Sequence()) != 2 {
		t.Errorf("sequence after resume = %d entries, want 2", len(e.Sequence()))
	}
	if e.Stats.Pauses != 1 || e.Stats.Resumes != 1 {
		t.Errorf("pause/resume stats %d/%d", e.Stats.Pauses, e.Stats.Resumes)
	}
}

func TestSaveRestoreAcrossContextSwitch(t *testing.T) {
	base := mem.Addr(0x10000)
	e, c := recordAndReplay(t, base, 2, []uint64{0, 1, 2, 3})
	e.Control = NoControl
	e.OnCycle(0, c.issue) // issues up to MaxIssuePerCyc (2)
	e.HandleMarker(trace.Mark(trace.MarkPause, 0, 0, 0), 1)
	saved := e.Save()

	// Clobber, then restore into a fresh engine sharing the metadata
	// tables (they live in program memory).
	e2 := NewEngine(0, nil)
	e2.Control = NoControl
	e2.seq = e.seq
	e2.div = e.div
	e2.Restore(saved)
	e2.HandleMarker(trace.Mark(trace.MarkResume, 0, 0, 0), 2)
	if e2.Arch.State != StateReplay {
		t.Fatalf("restored state = %v", e2.Arch.State)
	}
	for cy := uint64(3); cy < 20; cy++ {
		e2.OnCycle(cy, c.issue)
	}
	if len(c.lines) != 4 {
		t.Errorf("after migration replay issued %d total, want 4", len(c.lines))
	}
	for i, want := range []mem.Addr{base, base + 0x40, base + 0x80, base + 0xc0} {
		if c.lines[i] != want {
			t.Errorf("prefetch %d = %#x, want %#x", i, uint64(c.lines[i]), uint64(want))
		}
	}
}

func TestSeqTableOverflowStopsRecording(t *testing.T) {
	base := mem.Addr(0x10000)
	e := NewEngine(0, nil)
	e.DefaultWindow = 4
	e.HandleMarker(trace.Mark(trace.MarkInit, 0, 0, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkSeqTable, 0x7000_0000, 8*SeqEntryBytes, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkDivTable, 0x7100_0000, 1<<12, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkAddrBaseSet, base, 1<<20, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkAddrBaseEnable, 0, 0, 0), 0)
	e.HandleMarker(trace.Mark(trace.MarkRecordStart, 0, 0, 0), 0)
	for i := 0; i < 20; i++ {
		structMiss(e, base+mem.Addr(i*mem.LineSize))
	}
	if len(e.Sequence()) != 8 {
		t.Errorf("sequence grew to %d, cap 8", len(e.Sequence()))
	}
	if e.Stats.SeqOverflows != 12 {
		t.Errorf("overflows = %d, want 12", e.Stats.SeqOverflows)
	}
}

func TestSeqEntryPacking(t *testing.T) {
	prop := func(slot uint8, off uint32) bool {
		s := int(slot % NumBoundarySlots)
		o := uint64(off & 0x0fffffff)
		e := NewSeqEntry(s, o)
		return e.Slot() == s && e.LineOff() == o
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHardwareBudget(t *testing.T) {
	b := Budget()
	if got := b.TotalBytes(); got >= 1024 {
		t.Errorf("per-core budget = %.1f B, paper requires < 1 KB", got)
	}
	if got := b.SavedBytes(); got < 60 || got > 120 {
		t.Errorf("save/restore set = %.1f B, paper reports 86.5 B", got)
	}
	if len(b.Items) < 10 {
		t.Errorf("budget itemisation suspiciously short: %d items", len(b.Items))
	}
}

func TestInRangePredicate(t *testing.T) {
	e := setup(t, 0x10000, 4096, 4)
	if !e.InRange(0x10000) || !e.InRange(0x10fc0) {
		t.Error("InRange misses enabled boundary")
	}
	if e.InRange(0x11000) || e.InRange(0xffc0) {
		t.Error("InRange includes outside lines")
	}
	// Disabled (but valid) boundaries still count for filtering (§V-D).
	e.HandleMarker(trace.Mark(trace.MarkAddrBaseDisable, 0, 0, 0), 0)
	if !e.InRange(0x10000) {
		t.Error("InRange must cover valid-but-disabled boundaries")
	}
}

func TestTLBLookupPer4MBPage(t *testing.T) {
	base := mem.Addr(0x10000)
	e := setup(t, base, 1<<30, 1<<20)
	// Write > 4 MB of sequence entries: 4 MB / 4 B = 1M entries. Instead
	// of looping a million times, check the first flush triggers exactly
	// one lookup and subsequent flushes on the same page none.
	for i := 0; i < 64; i++ { // 4 metadata lines
		structMiss(e, base+mem.Addr(i*mem.LineSize))
	}
	if e.Stats.TLBLookups != 1 {
		t.Errorf("TLB lookups = %d for writes within one 4MB page, want 1", e.Stats.TLBLookups)
	}
}
