package prefetch

import (
	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// SteMS is a spatio-temporal memory streaming prefetcher after Somogyi et
// al. [52]: spatial footprints are recorded per region generation (as in
// SMS) and the *order of region triggers* is recorded in a temporal stream;
// on a trigger that matches the recorded stream, SteMS replays the
// following region footprints, reconstructing an approximate total order.
//
// As the paper notes (§II), order inside a spatial region is not recorded,
// and the temporal stream is keyed on trigger events seen during the whole
// run, so distinct-but-similar long irregular sequences alias.
type SteMS struct {
	RegionBytes uint64
	HistEntries int
	StreamDepth int // how many successor regions to replay per trigger

	regionShift uint
	linesPerReg uint

	active    map[mem.Addr]*bingoGen
	footHist  map[uint64]uint64 // trigger key -> footprint
	footFIFO  []uint64
	footPos   int
	stream    []uint64         // temporal order of trigger keys
	streamIdx map[uint64][]int // trigger key -> positions in stream
	keyRegion map[uint64]mem.Addr
}

// NewSteMS returns a SteMS prefetcher with SMS-style 2 KB regions.
func NewSteMS() *SteMS {
	return &SteMS{RegionBytes: 2048, HistEntries: 16 * 1024, StreamDepth: 4}
}

// Name implements Prefetcher.
func (p *SteMS) Name() string { return "stems" }

func (p *SteMS) init() {
	for s := p.RegionBytes; s > 1; s >>= 1 {
		p.regionShift++
	}
	p.linesPerReg = uint(p.RegionBytes / mem.LineSize)
	p.active = make(map[mem.Addr]*bingoGen)
	p.footHist = make(map[uint64]uint64)
	p.streamIdx = make(map[uint64][]int)
	p.keyRegion = make(map[uint64]mem.Addr)
}

func (p *SteMS) key(pc uint64, region mem.Addr) uint64 {
	return pc*0x9e3779b97f4a7c15 ^ uint64(region)
}

// OnAccess implements Prefetcher.
func (p *SteMS) OnAccess(ev cache.AccessInfo, issue IssueFunc) {
	if p.active == nil {
		p.init()
	}
	region := ev.Line &^ (mem.Addr(p.RegionBytes) - 1)
	off := uint(uint64(ev.Line-region) >> mem.LineShift)

	gen, ok := p.active[region]
	if !ok {
		gen = &bingoGen{trigPC: ev.PC, trigOff: off}
		p.active[region] = gen
		k := p.key(ev.PC, region)
		p.appendStream(k, region)
		p.replay(k, issue)
		if len(p.active) > 256 {
			for base, g := range p.active {
				if base != region {
					p.retire(base, g)
					break
				}
			}
		}
	}
	gen.footprint |= 1 << off
	gen.touches++
	if gen.touches >= int(p.linesPerReg)*2 {
		p.retire(region, gen)
	}
}

func (p *SteMS) appendStream(k uint64, region mem.Addr) {
	const maxStream = 1 << 16
	if len(p.stream) >= maxStream {
		// Age out the oldest half to bound memory like a circular PMU.
		cut := len(p.stream) / 2
		p.stream = append([]uint64(nil), p.stream[cut:]...)
		p.streamIdx = make(map[uint64][]int, len(p.stream))
		for i, key := range p.stream {
			p.streamIdx[key] = append(p.streamIdx[key], i)
		}
	}
	p.streamIdx[k] = append(p.streamIdx[k], len(p.stream))
	p.stream = append(p.stream, k)
	p.keyRegion[k] = region
}

// replay looks up the most recent *previous* occurrence of the trigger in
// the temporal stream and prefetches the footprints of the regions that
// followed it.
func (p *SteMS) replay(k uint64, issue IssueFunc) {
	occ := p.streamIdx[k]
	if len(occ) < 2 {
		return
	}
	prev := occ[len(occ)-2] // latest occurrence before the one just added
	for d := 0; d < p.StreamDepth; d++ {
		at := prev + 1 + d
		if at >= len(p.stream)-1 { // never replay the just-added trigger
			break
		}
		nk := p.stream[at]
		region, ok := p.keyRegion[nk]
		if !ok {
			continue
		}
		fp, ok := p.footHist[nk]
		if !ok {
			continue
		}
		for i := uint(0); i < p.linesPerReg; i++ {
			if fp&(1<<i) != 0 {
				issue(region + mem.Addr(i)<<mem.LineShift)
			}
		}
	}
}

func (p *SteMS) retire(region mem.Addr, gen *bingoGen) {
	delete(p.active, region)
	if gen.footprint == 0 {
		return
	}
	k := p.key(gen.trigPC, region)
	if _, ok := p.footHist[k]; !ok {
		if len(p.footFIFO) < p.HistEntries {
			p.footFIFO = append(p.footFIFO, k)
		} else {
			delete(p.footHist, p.footFIFO[p.footPos])
			p.footFIFO[p.footPos] = k
			p.footPos = (p.footPos + 1) % p.HistEntries
		}
	}
	p.footHist[k] = gen.footprint
}

// OnFill implements Prefetcher.
func (p *SteMS) OnFill(mem.Addr, bool, uint64) {}

// OnCycle implements Prefetcher.
func (p *SteMS) OnCycle(uint64, IssueFunc) {}
