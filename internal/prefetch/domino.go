package prefetch

import (
	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// Domino is a temporal prefetcher after Bakhshalipour et al. [8]: it
// indexes the global miss history by the last *two* miss addresses (a
// pair) rather than one, which disambiguates streams that share a single
// address — the exact failure mode the paper's §II example (9 followed by
// both 12 and 20) gives for single-address GHB lookup. A one-address
// fallback covers cold pairs.
type Domino struct {
	// Size bounds the history buffer.
	Size int
	// Degree is how many successors to prefetch per trigger.
	Degree int

	buf   []mem.Addr
	pos   int
	count int
	// pairIdx maps (prev, cur) to the position after cur; oneIdx maps a
	// single address to its most recent position.
	pairIdx map[[2]mem.Addr]int
	oneIdx  map[mem.Addr]int
	prev    mem.Addr
	hasPrev bool
}

// NewDomino returns a Domino prefetcher with a typical configuration.
func NewDomino() *Domino { return &Domino{Size: 8192, Degree: 4} }

// Name implements Prefetcher.
func (p *Domino) Name() string { return "domino" }

// OnAccess implements Prefetcher.
func (p *Domino) OnAccess(ev cache.AccessInfo, issue IssueFunc) {
	if ev.Hit {
		return
	}
	if p.buf == nil {
		p.buf = make([]mem.Addr, p.Size)
		p.pairIdx = make(map[[2]mem.Addr]int)
		p.oneIdx = make(map[mem.Addr]int)
	}

	// Predict from the strongest available context before recording.
	var at int
	var found bool
	if p.hasPrev {
		at, found = p.lookupPair(p.prev, ev.Line)
	}
	if !found {
		at, found = p.lookupOne(ev.Line)
	}
	if found {
		for i := 1; i <= p.Degree; i++ {
			idx := (at + i - 1) % p.Size
			if !p.valid(idx) || idx == p.pos {
				break
			}
			issue(p.buf[idx])
		}
	}

	p.record(ev.Line)
}

func (p *Domino) lookupPair(a, b mem.Addr) (int, bool) {
	at, ok := p.pairIdx[[2]mem.Addr{a, b}]
	return at, ok
}

func (p *Domino) lookupOne(a mem.Addr) (int, bool) {
	at, ok := p.oneIdx[a]
	if !ok {
		return 0, false
	}
	return (at + 1) % p.Size, true
}

func (p *Domino) record(line mem.Addr) {
	if p.count == p.Size {
		old := p.buf[p.pos]
		delete(p.oneIdx, old)
		// Pair entries referencing overwritten slots age out naturally
		// via the valid() guard; a full GC pass would be hardware-free.
	}
	p.buf[p.pos] = line
	p.oneIdx[line] = p.pos
	if p.hasPrev {
		p.pairIdx[[2]mem.Addr{p.prev, line}] = (p.pos + 1) % p.Size
	}
	p.pos = (p.pos + 1) % p.Size
	if p.count < p.Size {
		p.count++
	}
	p.prev = line
	p.hasPrev = true
}

func (p *Domino) valid(at int) bool {
	if p.count == p.Size {
		return true
	}
	return at < p.pos
}

// OnFill implements Prefetcher.
func (p *Domino) OnFill(mem.Addr, bool, uint64) {}

// OnCycle implements Prefetcher.
func (p *Domino) OnCycle(uint64, IssueFunc) {}
