package prefetch

import (
	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// Bingo is a spatial footprint prefetcher after Bakhshalipour et al. [9]:
// it records, per spatial region, the footprint (bitmap of accessed lines)
// observed during the region's generation, stores footprints in a history
// table, and on the trigger access of a new generation prefetches the
// remembered footprint. Bingo's contribution is matching history with
// multiple events ("PC+address" first, falling back to the shorter
// "PC+offset"), which this implementation reproduces.
//
// Spatial prefetchers assume recurring relative layouts; the paper's point
// (§II) is that long irregular sequences inside one big region defeat them,
// because a region's footprint carries no ordering and patterns do not
// repeat across regions.
type Bingo struct {
	// RegionBytes is the spatial region size (2 KB in the Bingo paper).
	RegionBytes uint64
	// HistEntries bounds the footprint history table.
	HistEntries int

	regionShift uint
	linesPerReg uint

	active map[mem.Addr]*bingoGen // region base -> current generation
	// history is keyed by the long event (PC+address) and the short event
	// (PC+offset); both point at footprints.
	longHist  map[uint64]uint64 // key -> footprint bitmap
	shortHist map[uint64]uint64
	longFIFO  []uint64
	shortFIFO []uint64
	longPos   int
	shortPos  int
}

type bingoGen struct {
	footprint uint64 // bit per line in the region
	trigPC    uint64
	trigOff   uint
	touches   int
}

// NewBingo returns a Bingo prefetcher with the original 2 KB regions.
func NewBingo() *Bingo {
	return &Bingo{RegionBytes: 2048, HistEntries: 16 * 1024}
}

// Name implements Prefetcher.
func (p *Bingo) Name() string { return "bingo" }

func (p *Bingo) init() {
	p.regionShift = 0
	for s := p.RegionBytes; s > 1; s >>= 1 {
		p.regionShift++
	}
	p.linesPerReg = uint(p.RegionBytes / mem.LineSize)
	p.active = make(map[mem.Addr]*bingoGen)
	p.longHist = make(map[uint64]uint64)
	p.shortHist = make(map[uint64]uint64)
}

func (p *Bingo) longKey(pc uint64, region mem.Addr) uint64 {
	return pc*0x9e3779b97f4a7c15 ^ uint64(region)
}

func (p *Bingo) shortKey(pc uint64, off uint) uint64 {
	return pc*0x9e3779b97f4a7c15 ^ uint64(off)<<1 ^ 1
}

// OnAccess implements Prefetcher.
func (p *Bingo) OnAccess(ev cache.AccessInfo, issue IssueFunc) {
	if p.active == nil {
		p.init()
	}
	region := ev.Line &^ (mem.Addr(p.RegionBytes) - 1)
	off := uint(uint64(ev.Line-region) >> mem.LineShift)

	gen, ok := p.active[region]
	if !ok {
		// Trigger access of a new generation: predict, then track.
		gen = &bingoGen{trigPC: ev.PC, trigOff: off}
		p.active[region] = gen
		p.predict(ev.PC, region, off, issue)
		// Bound the active table like hardware would.
		if len(p.active) > 256 {
			for base, g := range p.active {
				if base != region {
					p.retire(base, g)
					break
				}
			}
		}
	}
	gen.footprint |= 1 << off
	gen.touches++
	// Close the generation heuristically after the region has been live
	// for many touches; hardware closes on region eviction.
	if gen.touches >= int(p.linesPerReg)*2 {
		p.retire(region, gen)
	}
}

func (p *Bingo) predict(pc uint64, region mem.Addr, off uint, issue IssueFunc) {
	fp, ok := p.longHist[p.longKey(pc, region)]
	if !ok {
		fp, ok = p.shortHist[p.shortKey(pc, off)]
	}
	if !ok {
		return
	}
	for i := uint(0); i < p.linesPerReg; i++ {
		if fp&(1<<i) != 0 && i != off {
			issue(region + mem.Addr(i)<<mem.LineShift)
		}
	}
}

func (p *Bingo) retire(region mem.Addr, gen *bingoGen) {
	delete(p.active, region)
	if gen.footprint == 0 || gen.touches < 2 {
		return
	}
	p.put(&p.longHist, &p.longFIFO, &p.longPos, p.longKey(gen.trigPC, region), gen.footprint)
	p.put(&p.shortHist, &p.shortFIFO, &p.shortPos, p.shortKey(gen.trigPC, gen.trigOff), gen.footprint)
}

func (p *Bingo) put(histp *map[uint64]uint64, fifo *[]uint64, pos *int, key, fp uint64) {
	hist := *histp
	if _, ok := hist[key]; !ok {
		if len(*fifo) < p.HistEntries {
			*fifo = append(*fifo, key)
		} else {
			delete(hist, (*fifo)[*pos])
			(*fifo)[*pos] = key
			*pos = (*pos + 1) % p.HistEntries
		}
	}
	hist[key] = fp
}

// OnFill implements Prefetcher.
func (p *Bingo) OnFill(mem.Addr, bool, uint64) {}

// OnCycle implements Prefetcher.
func (p *Bingo) OnCycle(uint64, IssueFunc) {}
