package prefetch

import (
	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// IndirectResolver maps one cache line of an index/edge array to the data
// lines its contents reference (the A[B[i]] pattern). In real hardware the
// resolution happens by inspecting the fetched data; the trace-driven
// simulator cannot see data values, so the workload that generated the
// trace supplies the mapping, which is exactly the information the real
// prefetcher would extract from the returned line.
type IndirectResolver func(line mem.Addr) []mem.Addr

// Droplet is a graph-domain prefetcher after Basak et al. [10]: software
// identifies the edge array and the vertex-data array; hardware prefetches
// the edge array in a streaming fashion and, when edge data returns from
// memory, decodes the vertex indices in it and prefetches the corresponding
// vertex-data lines (the data-dependent indirect step).
//
// The timing weakness the paper exploits (§VII-A.1) is inherent here: the
// vertex prefetch cannot be issued before the edge line has been fetched,
// so for low-locality graphs the dependent prefetch is often too late.
type Droplet struct {
	// EdgeRegion tests whether a line belongs to the edge array.
	EdgeRegion func(line mem.Addr) bool
	// Resolve maps an edge line to the vertex lines it references.
	Resolve IndirectResolver
	// StreamAhead is how many edge lines ahead to stream.
	StreamAhead int
	// MaxIndirect bounds vertex prefetches per edge line.
	MaxIndirect int

	resolved     map[mem.Addr]struct{} // edge lines already decoded
	resFIFO      []mem.Addr
	resPos       int
	pendingFills []mem.Addr // edge lines filled this cycle, decoded in OnCycle
}

// NewDroplet returns a DROPLET-like prefetcher; the caller must set
// EdgeRegion and Resolve before use.
func NewDroplet() *Droplet {
	return &Droplet{StreamAhead: 4, MaxIndirect: 32}
}

// Name implements Prefetcher.
func (p *Droplet) Name() string { return "droplet" }

// OnAccess implements Prefetcher: stream the edge array ahead of demand.
func (p *Droplet) OnAccess(ev cache.AccessInfo, issue IssueFunc) {
	if p.EdgeRegion == nil || !p.EdgeRegion(ev.Line) {
		return
	}
	for i := 1; i <= p.StreamAhead; i++ {
		next := ev.Line + mem.Addr(i*mem.LineSize)
		if p.EdgeRegion(next) {
			issue(next)
		}
	}
	// The demand edge line itself is (about to be) present: decode it too,
	// which models the DRAM read-queue snoop on demand fills.
	p.decode(ev.Line, issue)
}

// OnFill implements Prefetcher: when an edge line arrives, decode the
// vertex indices it carries and prefetch the vertex data.
func (p *Droplet) OnFill(line mem.Addr, prefetch bool, cycle uint64) {
	// Decoding on fill requires an issue path; the simulator delivers
	// fills before OnCycle in the same cycle, so buffer the work.
	if p.EdgeRegion == nil || !p.EdgeRegion(line) {
		return
	}
	p.pendingFills = append(p.pendingFills, line)
}

// OnCycle implements Prefetcher.
func (p *Droplet) OnCycle(cycle uint64, issue IssueFunc) {
	for _, line := range p.pendingFills {
		p.decode(line, issue)
	}
	p.pendingFills = p.pendingFills[:0]
}

// Wakeup implements CycleDriven: buffered edge-line fills are decoded on
// the very next cycle; otherwise OnCycle is a no-op.
func (p *Droplet) Wakeup(now uint64) uint64 {
	if len(p.pendingFills) > 0 {
		return now + 1
	}
	return mem.WakeupNever
}

func (p *Droplet) decode(edgeLine mem.Addr, issue IssueFunc) {
	if p.Resolve == nil {
		return
	}
	if p.resolved == nil {
		p.resolved = make(map[mem.Addr]struct{})
	}
	if _, ok := p.resolved[edgeLine]; ok {
		return
	}
	p.remember(edgeLine)
	targets := p.Resolve(edgeLine)
	n := 0
	for _, t := range targets {
		if n >= p.MaxIndirect {
			break
		}
		issue(t)
		n++
	}
}

const dropletResolvedCap = 1 << 14

func (p *Droplet) remember(edgeLine mem.Addr) {
	if len(p.resFIFO) < dropletResolvedCap {
		p.resFIFO = append(p.resFIFO, edgeLine)
	} else {
		delete(p.resolved, p.resFIFO[p.resPos])
		p.resFIFO[p.resPos] = edgeLine
		p.resPos = (p.resPos + 1) % dropletResolvedCap
	}
	p.resolved[edgeLine] = struct{}{}
}
