package prefetch

import (
	"testing"

	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

func ccMiss(core int, line mem.Addr) cache.AccessInfo {
	return cache.AccessInfo{Core: core, Line: line, Type: mem.ReqLoad}
}

func TestCrossCoreTrainsAndIssuesAcrossCores(t *testing.T) {
	p := NewCrossCore(2, 256)
	var issued []struct {
		core int
		line mem.Addr
	}
	p.Issue = func(core int, line mem.Addr) bool {
		issued = append(issued, struct {
			core int
			line mem.Addr
		}{core, line})
		return true
	}

	// Core 0 records the pattern A -> B twice.
	a, b := mem.Addr(0x1000), mem.Addr(0x2040)
	p.OnMiss(ccMiss(0, a))
	p.OnMiss(ccMiss(0, b))
	if p.Stats.Trained != 1 {
		t.Fatalf("trained = %d, want 1", p.Stats.Trained)
	}

	// Core 1 now misses on A: the shared table must predict B for it.
	issued = issued[:0]
	p.OnMiss(ccMiss(1, a))
	if len(issued) != 1 || issued[0].core != 1 || issued[0].line != b {
		t.Fatalf("cross-core prediction = %v, want [{1 %#x}]", issued, uint64(b))
	}
	if p.Stats.Lookups != 1 || p.Stats.Issued != 1 {
		t.Fatalf("stats = %+v, want 1 lookup / 1 issued", p.Stats)
	}
}

func TestCrossCorePerCoreTrainingContexts(t *testing.T) {
	p := NewCrossCore(2, 256)
	p.Issue = func(int, mem.Addr) bool { return true }

	// Interleaved miss streams: core 0 sees A,B and core 1 sees X,Y.
	// Per-core contexts must train A->B and X->Y, never A->Y or X->B.
	a, b := mem.Addr(0x1000), mem.Addr(0x2000)
	x, y := mem.Addr(0x8000), mem.Addr(0x9000)
	p.OnMiss(ccMiss(0, a))
	p.OnMiss(ccMiss(1, x))
	p.OnMiss(ccMiss(0, b))
	p.OnMiss(ccMiss(1, y))

	for _, want := range []struct{ trig, next mem.Addr }{{a, b}, {x, y}} {
		e := &p.table[p.index(want.trig)]
		if e.filled == 0 || e.trigger != want.trig || e.next[0] != want.next {
			t.Fatalf("entry for %#x = %+v, want next %#x",
				uint64(want.trig), *e, uint64(want.next))
		}
	}
}

func TestCrossCoreMRUPairAndDegree(t *testing.T) {
	p := NewCrossCore(1, 256)
	var issued []mem.Addr
	p.Issue = func(_ int, line mem.Addr) bool {
		issued = append(issued, line)
		return true
	}

	// Trigger A is followed by B, then by C: the entry keeps both with
	// C as MRU, and a later miss on A issues C then B.
	a, b, c := mem.Addr(0x1000), mem.Addr(0x2000), mem.Addr(0x3000)
	for _, seq := range [][2]mem.Addr{{a, b}, {a, c}} {
		p.OnMiss(ccMiss(0, seq[0]))
		p.OnMiss(ccMiss(0, seq[1]))
	}
	issued = issued[:0]
	p.OnMiss(ccMiss(0, a))
	if len(issued) != 2 || issued[0] != c || issued[1] != b {
		t.Fatalf("issued = %v, want [%#x %#x]", issued, uint64(c), uint64(b))
	}

	// Degree 1 trims to the MRU successor only.
	p.Degree = 1
	p.hasLast[0] = false
	issued = issued[:0]
	p.OnMiss(ccMiss(0, a))
	if len(issued) != 1 || issued[0] != c {
		t.Fatalf("degree-1 issued = %v, want [%#x]", issued, uint64(c))
	}
}

func TestCrossCoreHashStateTracksTraining(t *testing.T) {
	hash := func(p *CrossCore) uint64 {
		var h uint64 = 1469598103934665603
		p.HashState(func(v uint64) {
			h = (h ^ v) * 1099511628211
		})
		return h
	}
	p, q := NewCrossCore(2, 256), NewCrossCore(2, 256)
	if hash(p) != hash(q) {
		t.Fatal("fresh tables hash differently")
	}
	p.OnMiss(ccMiss(0, 0x1000))
	p.OnMiss(ccMiss(0, 0x2000))
	if hash(p) == hash(q) {
		t.Fatal("training did not change the state hash")
	}
	q.OnMiss(ccMiss(0, 0x1000))
	q.OnMiss(ccMiss(0, 0x2000))
	if hash(p) != hash(q) {
		t.Fatal("identical histories hash differently")
	}
}

func TestCrossCoreNilIssueCountsDropped(t *testing.T) {
	p := NewCrossCore(1, 0) // default size
	p.OnMiss(ccMiss(0, 0x1000))
	p.OnMiss(ccMiss(0, 0x2000))
	p.OnMiss(ccMiss(0, 0x1000))
	if p.Stats.Dropped != 1 || p.Stats.Issued != 0 {
		t.Fatalf("stats = %+v, want 1 dropped / 0 issued", p.Stats)
	}
}
