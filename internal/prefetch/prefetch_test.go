package prefetch

import (
	"testing"

	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// collector gathers issued prefetch lines.
type collector struct{ lines []mem.Addr }

func (c *collector) issue(line mem.Addr) bool {
	c.lines = append(c.lines, line)
	return true
}

func (c *collector) has(line mem.Addr) bool {
	for _, l := range c.lines {
		if l == line {
			return true
		}
	}
	return false
}

func access(pc uint64, line mem.Addr, hit bool) cache.AccessInfo {
	return cache.AccessInfo{PC: pc, Line: mem.LineAddr(line), Hit: hit, Type: mem.ReqLoad, RegionID: -1}
}

func TestNextLineDegree(t *testing.T) {
	p := NewNextLine(2)
	c := &collector{}
	p.OnAccess(access(1, 0x1000, false), c.issue)
	want := []mem.Addr{0x1040, 0x1080}
	if len(c.lines) != 2 || c.lines[0] != want[0] || c.lines[1] != want[1] {
		t.Errorf("issued %#v, want %#v", c.lines, want)
	}
}

func TestNextLineOnMissOnly(t *testing.T) {
	p := NewNextLine(1)
	p.OnMissOnly = true
	c := &collector{}
	p.OnAccess(access(1, 0x1000, true), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("prefetched on a hit: %v", c.lines)
	}
}

func TestStreamDetectsStride(t *testing.T) {
	p := NewStream()
	c := &collector{}
	// Stride of 2 lines from one PC.
	for i := 0; i < 6; i++ {
		p.OnAccess(access(42, mem.Addr(0x1000+i*128), false), c.issue)
	}
	if len(c.lines) == 0 {
		t.Fatal("stream never triggered on a constant stride")
	}
	// All issued lines must continue the stride pattern (multiples of 128
	// from base).
	for _, l := range c.lines {
		if (uint64(l)-0x1000)%128 != 0 {
			t.Errorf("off-stride prefetch %#x", uint64(l))
		}
	}
	// It must run *ahead* of the demand stream.
	maxDemand := mem.Addr(0x1000 + 5*128)
	ahead := false
	for _, l := range c.lines {
		if l > maxDemand {
			ahead = true
		}
	}
	if !ahead {
		t.Error("stream never ran ahead of demand")
	}
}

func TestStreamIgnoresRandom(t *testing.T) {
	p := NewStream()
	c := &collector{}
	addrs := []mem.Addr{0x1000, 0x9040, 0x2080, 0xe000, 0x33c0, 0x7100}
	for _, a := range addrs {
		p.OnAccess(access(42, a, false), c.issue)
	}
	if len(c.lines) != 0 {
		t.Errorf("stream prefetched %d lines on random accesses", len(c.lines))
	}
}

func TestStreamTableEviction(t *testing.T) {
	p := NewStream()
	p.Entries = 2
	c := &collector{}
	for pc := uint64(0); pc < 10; pc++ {
		p.OnAccess(access(pc, mem.Addr(0x1000*pc), false), c.issue)
	}
	if len(p.table) > 2 {
		t.Errorf("table grew to %d entries, cap 2", len(p.table))
	}
}

func TestGHBReplaysSuccessors(t *testing.T) {
	p := NewGHB()
	c := &collector{}
	seq := []mem.Addr{0x1000, 0x5000, 0x2000, 0x9000, 0x3000}
	for _, a := range seq {
		p.OnAccess(access(1, a, false), c.issue)
	}
	if len(c.lines) != 0 {
		t.Fatalf("GHB issued %v before any repetition", c.lines)
	}
	// Repeat the first address: successors 0x5000.. should be prefetched.
	p.OnAccess(access(1, 0x1000, false), c.issue)
	if !c.has(0x5000) || !c.has(0x2000) {
		t.Errorf("GHB did not replay successors, issued %v", c.lines)
	}
}

func TestGHBPicksMostRecentSuccessor(t *testing.T) {
	// The paper's §II example: 9 is followed by 12 and later by 20; the
	// GHB must predict the most recent successor (20), a misprediction
	// against the repeating pattern.
	p := NewGHB()
	p.Degree = 1
	c := &collector{}
	lines := func(a int) mem.Addr { return mem.Addr(a * mem.LineSize) }
	for _, a := range []int{9, 12, 9, 20} {
		p.OnAccess(access(1, lines(a), false), c.issue)
	}
	c.lines = nil
	p.OnAccess(access(1, lines(9), false), c.issue)
	if !c.has(lines(20)) || c.has(lines(12)) {
		t.Errorf("GHB issued %v, want most recent successor %#x", c.lines, uint64(lines(20)))
	}
}

func TestGHBNoPrefetchOnHits(t *testing.T) {
	p := NewGHB()
	c := &collector{}
	p.OnAccess(access(1, 0x1000, true), c.issue)
	p.OnAccess(access(1, 0x1000, true), c.issue)
	if len(c.lines) != 0 {
		t.Errorf("GHB trained on hits: %v", c.lines)
	}
}

func TestMISBLocalisedReplay(t *testing.T) {
	p := NewMISB()
	c := &collector{}
	// Two interleaved PC streams; MISB must keep them apart.
	a := []mem.Addr{0x10000, 0x50000, 0x20000}
	b := []mem.Addr{0x90000, 0x30000, 0x70000}
	for i := 0; i < 3; i++ {
		p.OnAccess(access(1, a[i], false), c.issue)
		p.OnAccess(access(2, b[i], false), c.issue)
	}
	c.lines = nil
	p.OnAccess(access(1, a[0], false), c.issue)
	if !c.has(a[1]) {
		t.Errorf("MISB did not replay PC-1 stream: %v", c.lines)
	}
	if c.has(b[0]) || c.has(b[1]) {
		t.Errorf("MISB leaked PC-2 stream into PC-1 replay: %v", c.lines)
	}
}

func TestMISBMetadataTraffic(t *testing.T) {
	p := NewMISB()
	p.MetaCacheLines = 2 // tiny cache to force traffic
	reads, writes := 0, 0
	p.Meta = func(write bool, addr mem.Addr) {
		if write {
			writes++
		} else {
			reads++
		}
	}
	c := &collector{}
	for i := 0; i < 64; i++ {
		p.OnAccess(access(uint64(i%4), mem.Addr(0x100000+i*0x4000), false), c.issue)
	}
	if reads == 0 || writes == 0 {
		t.Errorf("metadata traffic reads=%d writes=%d, want > 0", reads, writes)
	}
}

func TestBingoFootprintReplay(t *testing.T) {
	p := NewBingo()
	c := &collector{}
	// Touch a fixed footprint {0,3,5} in region R1 with trigger PC 7 at
	// offset 0, then retire it and trigger the same event in region R1
	// again: the footprint must be prefetched via PC+address.
	base := mem.Addr(0x10000)
	offs := []int{0, 3, 5}
	for _, o := range offs {
		p.OnAccess(access(7, base+mem.Addr(o*mem.LineSize), false), c.issue)
	}
	p.retire(base, p.active[base])
	c.lines = nil
	p.OnAccess(access(7, base, false), c.issue)
	if !c.has(base+3*mem.LineSize) || !c.has(base+5*mem.LineSize) {
		t.Errorf("bingo did not replay footprint: %v", c.lines)
	}
	if c.has(base) {
		t.Error("bingo prefetched the trigger line itself")
	}
}

func TestBingoShortEventFallback(t *testing.T) {
	p := NewBingo()
	c := &collector{}
	// Train in region R1, trigger in a different region R2 with the same
	// PC and offset: only the short event (PC+offset) can match.
	r1, r2 := mem.Addr(0x10000), mem.Addr(0x20000)
	for _, o := range []int{1, 4, 6} {
		p.OnAccess(access(9, r1+mem.Addr(o*mem.LineSize), false), c.issue)
	}
	p.retire(r1, p.active[r1])
	c.lines = nil
	p.OnAccess(access(9, r2+mem.Addr(1*mem.LineSize), false), c.issue)
	if !c.has(r2+4*mem.LineSize) || !c.has(r2+6*mem.LineSize) {
		t.Errorf("bingo PC+offset fallback failed: %v", c.lines)
	}
}

func TestSteMSReplaysRegionOrder(t *testing.T) {
	p := NewSteMS()
	c := &collector{}
	// First pass: regions A, B, C in order, each with a footprint.
	regions := []mem.Addr{0x10000, 0x20000, 0x30000}
	for _, r := range regions {
		for _, o := range []int{0, 2} {
			p.OnAccess(access(5, r+mem.Addr(o*mem.LineSize), false), c.issue)
		}
	}
	for _, r := range regions {
		if g, ok := p.active[r]; ok {
			p.retire(r, g)
		}
	}
	c.lines = nil
	// Second pass trigger on A: B and C footprints should stream in.
	p.OnAccess(access(5, regions[0], false), c.issue)
	if !c.has(regions[1]) || !c.has(regions[1]+2*mem.LineSize) {
		t.Errorf("SteMS did not replay successor region B: %v", c.lines)
	}
	if !c.has(regions[2]) {
		t.Errorf("SteMS did not reach region C: %v", c.lines)
	}
}

func TestDropletStreamsEdgesAndResolvesVertices(t *testing.T) {
	p := NewDroplet()
	edgeBase, edgeEnd := mem.Addr(0x100000), mem.Addr(0x110000)
	p.EdgeRegion = func(l mem.Addr) bool { return l >= edgeBase && l < edgeEnd }
	p.Resolve = func(l mem.Addr) []mem.Addr {
		return []mem.Addr{0x200000 + (l-edgeBase)*2} // deterministic fake
	}
	c := &collector{}
	p.OnAccess(access(3, edgeBase, false), c.issue)
	// Streaming ahead on the edge array:
	if !c.has(edgeBase+mem.LineSize) || !c.has(edgeBase+4*mem.LineSize) {
		t.Errorf("droplet did not stream edges: %v", c.lines)
	}
	// Demand edge line resolved immediately:
	if !c.has(0x200000) {
		t.Errorf("droplet did not resolve demanded edge line: %v", c.lines)
	}
	// A filled edge line is decoded on the next cycle.
	c.lines = nil
	p.OnFill(edgeBase+mem.LineSize, true, 100)
	p.OnCycle(101, c.issue)
	if !c.has(0x200000 + 2*mem.LineSize) {
		t.Errorf("droplet did not resolve filled edge line: %v", c.lines)
	}
	// Decoding the same line twice is suppressed.
	c.lines = nil
	p.OnFill(edgeBase+mem.LineSize, true, 102)
	p.OnCycle(103, c.issue)
	if len(c.lines) != 0 {
		t.Errorf("droplet re-decoded an edge line: %v", c.lines)
	}
}

func TestDropletIgnoresOtherRegions(t *testing.T) {
	p := NewDroplet()
	p.EdgeRegion = func(l mem.Addr) bool { return false }
	p.Resolve = func(l mem.Addr) []mem.Addr { return []mem.Addr{0xdead} }
	c := &collector{}
	p.OnAccess(access(3, 0x5000, false), c.issue)
	p.OnFill(0x5000, true, 1)
	p.OnCycle(2, c.issue)
	if len(c.lines) != 0 {
		t.Errorf("droplet acted outside its regions: %v", c.lines)
	}
}

func TestIMPDetectsIndexStreamThenResolves(t *testing.T) {
	p := NewIMP()
	idxBase, idxEnd := mem.Addr(0x100000), mem.Addr(0x101000)
	p.IndexRegion = func(l mem.Addr) bool { return l >= idxBase && l < idxEnd }
	p.Resolve = func(l mem.Addr) []mem.Addr { return []mem.Addr{0x300000 + (l - idxBase)} }
	c := &collector{}
	for i := 0; i < 5; i++ {
		p.OnAccess(access(8, idxBase+mem.Addr(i*mem.LineSize), false), c.issue)
	}
	if len(c.lines) == 0 {
		t.Fatal("IMP never triggered on a sequential index stream")
	}
	found := false
	for _, l := range c.lines {
		if l >= 0x300000 {
			found = true
		}
	}
	if !found {
		t.Errorf("IMP issued no indirect targets: %v", c.lines)
	}
}

func TestRegionFilterExcludes(t *testing.T) {
	inner := NewNextLine(1)
	f := &RegionFilter{
		Inner:    inner,
		Excluded: func(l mem.Addr) bool { return l >= 0x1000 && l < 0x2000 },
	}
	c := &collector{}
	f.OnAccess(access(1, 0x1800, false), c.issue) // inside: suppressed
	if len(c.lines) != 0 {
		t.Errorf("filter trained inside excluded range: %v", c.lines)
	}
	f.OnAccess(access(1, 0x3000, false), c.issue) // outside: allowed
	if !c.has(0x3040) {
		t.Errorf("filter blocked legitimate prefetch: %v", c.lines)
	}
	// Issued prefetch landing inside the excluded range is fenced.
	c.lines = nil
	f.OnAccess(access(1, 0xfc0, false), c.issue) // next line would be 0x1000
	if c.has(0x1000) {
		t.Errorf("filter let a prefetch into the excluded range: %v", c.lines)
	}
}

func TestCombineFansOut(t *testing.T) {
	c1, c2 := NewNextLine(1), NewNextLine(2)
	comb := Combine{c1, c2}
	col := &collector{}
	comb.OnAccess(access(1, 0x1000, false), col.issue)
	if len(col.lines) != 3 {
		t.Errorf("combine issued %d lines, want 3", len(col.lines))
	}
	if comb.Name() != "nextline+nextline" {
		t.Errorf("Name = %q", comb.Name())
	}
}

func TestNopIsSilent(t *testing.T) {
	var p Nop
	c := &collector{}
	p.OnAccess(access(1, 0x1000, false), c.issue)
	p.OnFill(0x1000, true, 1)
	p.OnCycle(2, c.issue)
	if len(c.lines) != 0 {
		t.Errorf("nop issued %v", c.lines)
	}
	if p.Name() != "none" {
		t.Errorf("Name = %q", p.Name())
	}
}
