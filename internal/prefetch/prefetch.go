// Package prefetch defines the prefetcher interface shared by all hardware
// prefetchers in the simulator and implements the baselines the paper
// compares against: next-line, a stream/stride prefetcher, a GHB temporal
// prefetcher, a MISB-like temporal prefetcher with off-chip metadata, a
// Bingo-like spatial footprint prefetcher, a SteMS-like spatio-temporal
// streaming prefetcher, a DROPLET-like graph-domain prefetcher and an
// IMP-like indirect prefetcher.
//
// All prefetchers observe demand traffic at the private L2 and prefetch
// into the private L2, matching the paper's methodology (§VII-A: "all of
// the evaluated prefetchers are prefetching data into the private L2").
package prefetch

import (
	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// IssueFunc hands one prefetch candidate (a line address) to the attached
// cache level. The cache applies residency/in-flight filtering and queue
// capacity; the return value reports whether the prefetch was accepted
// (possibly filtered) rather than refused for capacity.
type IssueFunc func(line mem.Addr) bool

// Prefetcher is a hardware prefetcher attached to one private L2 cache.
type Prefetcher interface {
	// Name identifies the prefetcher in reports.
	Name() string
	// OnAccess is invoked for every demand lookup the L2 performs.
	OnAccess(ev cache.AccessInfo, issue IssueFunc)
	// OnFill is invoked when a line (demand or prefetch) fills the L2.
	OnFill(line mem.Addr, prefetch bool, cycle uint64)
	// OnCycle is invoked once per cycle for prefetchers that issue
	// autonomously (streaming engines, replay engines).
	OnCycle(cycle uint64, issue IssueFunc)
}

// CycleDriven is implemented by prefetchers whose OnCycle does real work
// (replay engines, fill-buffer drains). Wakeup reports the earliest
// future cycle at which OnCycle could change state — mem.WakeupNever
// when quiescent — under the contract documented in internal/mem.
// Prefetchers that do not implement CycleDriven are assumed to have a
// no-op OnCycle and are never a reason to simulate a cycle.
type CycleDriven interface {
	Wakeup(now uint64) uint64
}

// Nop is a Prefetcher that never issues; it is the no-prefetch baseline.
type Nop struct{}

// Name implements Prefetcher.
func (Nop) Name() string { return "none" }

// OnAccess implements Prefetcher.
func (Nop) OnAccess(cache.AccessInfo, IssueFunc) {}

// OnFill implements Prefetcher.
func (Nop) OnFill(mem.Addr, bool, uint64) {}

// OnCycle implements Prefetcher.
func (Nop) OnCycle(uint64, IssueFunc) {}

// RegionFilter wraps a prefetcher and suppresses its training and issuing
// inside a set of excluded address ranges. The paper uses this shape twice:
// the baseline L2 stream prefetcher is "trained by L2 misses outside of the
// Record-and-Replay address range" (§V-D), and RnR-Combined pairs RnR with
// a next-line prefetcher for all other data.
type RegionFilter struct {
	Inner    Prefetcher
	Excluded func(line mem.Addr) bool
}

// Name implements Prefetcher.
func (f *RegionFilter) Name() string { return f.Inner.Name() + "+filter" }

// OnAccess implements Prefetcher, dropping events inside excluded ranges
// and fencing issued prefetches out of them as well.
func (f *RegionFilter) OnAccess(ev cache.AccessInfo, issue IssueFunc) {
	if f.Excluded != nil && f.Excluded(ev.Line) {
		return
	}
	f.Inner.OnAccess(ev, f.guard(issue))
}

// OnFill implements Prefetcher.
func (f *RegionFilter) OnFill(line mem.Addr, prefetch bool, cycle uint64) {
	if f.Excluded != nil && f.Excluded(line) {
		return
	}
	f.Inner.OnFill(line, prefetch, cycle)
}

// OnCycle implements Prefetcher.
func (f *RegionFilter) OnCycle(cycle uint64, issue IssueFunc) {
	f.Inner.OnCycle(cycle, f.guard(issue))
}

// Wakeup implements CycleDriven by delegating to the wrapped prefetcher;
// the filter itself has no cycle-driven state.
func (f *RegionFilter) Wakeup(now uint64) uint64 {
	if cd, ok := f.Inner.(CycleDriven); ok {
		return cd.Wakeup(now)
	}
	return mem.WakeupNever
}

func (f *RegionFilter) guard(issue IssueFunc) IssueFunc {
	return func(line mem.Addr) bool {
		if f.Excluded != nil && f.Excluded(line) {
			return true // silently drop: out of the prefetcher's domain
		}
		return issue(line)
	}
}

// Combine runs several prefetchers side by side on the same cache level.
type Combine []Prefetcher

// Name implements Prefetcher.
func (c Combine) Name() string {
	s := ""
	for i, p := range c {
		if i > 0 {
			s += "+"
		}
		s += p.Name()
	}
	return s
}

// OnAccess implements Prefetcher.
func (c Combine) OnAccess(ev cache.AccessInfo, issue IssueFunc) {
	for _, p := range c {
		p.OnAccess(ev, issue)
	}
}

// OnFill implements Prefetcher.
func (c Combine) OnFill(line mem.Addr, prefetch bool, cycle uint64) {
	for _, p := range c {
		p.OnFill(line, prefetch, cycle)
	}
}

// OnCycle implements Prefetcher.
func (c Combine) OnCycle(cycle uint64, issue IssueFunc) {
	for _, p := range c {
		p.OnCycle(cycle, issue)
	}
}

// Wakeup implements CycleDriven as the minimum over cycle-driven members;
// members that do not implement CycleDriven have no-op OnCycle bodies and
// contribute nothing.
func (c Combine) Wakeup(now uint64) uint64 {
	w := mem.WakeupNever
	for _, p := range c {
		if cd, ok := p.(CycleDriven); ok {
			if v := cd.Wakeup(now); v < w {
				w = v
			}
		}
	}
	return w
}
