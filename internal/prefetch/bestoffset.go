package prefetch

import (
	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// BestOffset is Michaud's best-offset prefetcher [36]: it learns the
// single line offset D that most often turns a recent miss X-D into the
// current access X early enough to be timely, then prefetches X+D on
// every access. The offset is re-elected each learning round from a fixed
// candidate list using a score table and a recent-requests history.
//
// The paper cites it among the general-purpose hardware prefetchers whose
// fixed-pattern assumption long irregular sequences defeat.
type BestOffset struct {
	// ScoreMax ends a learning round when a candidate reaches it.
	ScoreMax int
	// RoundMax bounds a learning round in tested accesses.
	RoundMax int
	// BadScore disables prefetching when the winner scores below it.
	BadScore int

	offsets []int64 // candidate offsets in lines
	scores  []int
	current int64 // elected offset (0 = prefetching off)
	rounds  int
	tested  int
	candIdx int

	recent     map[mem.Addr]struct{} // lines recently requested (base of X-D test)
	recentFIFO []mem.Addr
	recentPos  int
}

// NewBestOffset returns a best-offset prefetcher with the original
// candidate list truncated to small offsets.
func NewBestOffset() *BestOffset {
	p := &BestOffset{ScoreMax: 31, RoundMax: 256, BadScore: 1}
	for d := int64(1); d <= 8; d++ {
		p.offsets = append(p.offsets, d)
	}
	p.offsets = append(p.offsets, 10, 12, 16, -1, -2)
	p.scores = make([]int, len(p.offsets))
	p.current = 1
	p.recent = make(map[mem.Addr]struct{})
	return p
}

// Name implements Prefetcher.
func (p *BestOffset) Name() string { return "bestoffset" }

const boRecentCap = 256

// OnAccess implements Prefetcher: learn on every demand miss, prefetch
// with the elected offset.
func (p *BestOffset) OnAccess(ev cache.AccessInfo, issue IssueFunc) {
	if ev.Hit {
		return
	}
	line := int64(ev.Line >> mem.LineShift)

	// Learning: test one candidate offset per miss — was X-D recently
	// requested? If so, D would have been timely for this miss.
	d := p.offsets[p.candIdx]
	if line-d >= 0 {
		if _, ok := p.recent[mem.Addr(line-d)<<mem.LineShift]; ok {
			p.scores[p.candIdx]++
			if p.scores[p.candIdx] >= p.ScoreMax {
				p.elect(p.candIdx)
			}
		}
	}
	p.candIdx = (p.candIdx + 1) % len(p.offsets)
	p.tested++
	if p.tested >= p.RoundMax {
		p.electBest()
	}

	p.remember(ev.Line)

	if p.current != 0 {
		target := line + p.current
		if target >= 0 {
			issue(mem.Addr(target) << mem.LineShift)
		}
	}
}

func (p *BestOffset) elect(idx int) {
	p.current = p.offsets[idx]
	p.resetRound()
}

func (p *BestOffset) electBest() {
	best, bestScore := 0, -1
	for i, s := range p.scores {
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	if bestScore <= p.BadScore {
		p.current = 0 // prefetching off this round
	} else {
		p.current = p.offsets[best]
	}
	p.resetRound()
}

func (p *BestOffset) resetRound() {
	for i := range p.scores {
		p.scores[i] = 0
	}
	p.tested = 0
	p.rounds++
}

func (p *BestOffset) remember(line mem.Addr) {
	if _, ok := p.recent[line]; ok {
		return
	}
	if len(p.recentFIFO) < boRecentCap {
		p.recentFIFO = append(p.recentFIFO, line)
	} else {
		delete(p.recent, p.recentFIFO[p.recentPos])
		p.recentFIFO[p.recentPos] = line
		p.recentPos = (p.recentPos + 1) % boRecentCap
	}
	p.recent[line] = struct{}{}
}

// OnFill implements Prefetcher.
func (p *BestOffset) OnFill(mem.Addr, bool, uint64) {}

// OnCycle implements Prefetcher.
func (p *BestOffset) OnCycle(uint64, IssueFunc) {}
