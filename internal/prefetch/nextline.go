package prefetch

import (
	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// NextLine is the classic next-N-lines prefetcher [Smith & Hsu, 1992]: on
// every demand access it prefetches the following Degree lines. It is the
// paper's regular-pattern baseline.
type NextLine struct {
	// Degree is how many sequential lines to prefetch per access (>= 1).
	Degree int
	// OnMissOnly restricts triggering to demand misses.
	OnMissOnly bool
}

// NewNextLine returns a next-line prefetcher with the given degree.
func NewNextLine(degree int) *NextLine {
	if degree < 1 {
		degree = 1
	}
	return &NextLine{Degree: degree}
}

// Name implements Prefetcher.
func (p *NextLine) Name() string { return "nextline" }

// OnAccess implements Prefetcher.
func (p *NextLine) OnAccess(ev cache.AccessInfo, issue IssueFunc) {
	if p.OnMissOnly && ev.Hit {
		return
	}
	for i := 1; i <= p.Degree; i++ {
		issue(ev.Line + mem.Addr(i*mem.LineSize))
	}
}

// OnFill implements Prefetcher.
func (p *NextLine) OnFill(mem.Addr, bool, uint64) {}

// OnCycle implements Prefetcher.
func (p *NextLine) OnCycle(uint64, IssueFunc) {}
