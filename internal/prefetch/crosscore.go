package prefetch

import (
	"fmt"
	"math/bits"

	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// CrossCore is a Pickle-style cooperative LLC prefetcher: a single
// correlation table shared by all cores, trained on the demand-miss
// stream each core presents to the LLC and issuing prefetches into the
// LLC on behalf of the core predicted to consume them. It deliberately
// does not implement Prefetcher — the per-L2 interface routes issues to
// one private cache, while CrossCore observes every LLC bank and issues
// through a core-tagged callback the simulator wires to the banked LLC.
//
// The table is a direct-mapped, power-of-two array of correlation
// entries {trigger → two MRU successors}, indexed by a multiplicative
// hash of the trigger line. Training is per-core temporal: each core's
// previous LLC miss is the trigger for its current one, so interleaved
// miss streams from different cores never pollute each other's pairs,
// but a pattern recorded by one core serves lookups from any core —
// the cross-core sharing that gives the design its name.
type CrossCore struct {
	// Degree caps successors issued per triggering miss (1 or 2).
	Degree int
	// Issue delivers one predicted line to the LLC on behalf of core.
	// It returns false when refused for capacity. Set once by the
	// simulator before the first OnMiss; nil drops all predictions.
	Issue func(core int, line mem.Addr) bool

	table    []ccEntry
	mask     uint64
	shift    uint
	lastMiss []mem.Addr
	hasLast  []bool

	Stats CrossCoreStats
}

// CrossCoreStats counts training and issue activity.
type CrossCoreStats struct {
	Trained uint64 `json:"trained"` // successor-pair inserts/refreshes
	Lookups uint64 `json:"lookups"` // triggering misses that found a table entry
	Issued  uint64 `json:"issued"`  // predictions accepted by the LLC
	Dropped uint64 `json:"dropped"` // predictions refused for capacity (or Issue == nil)
}

type ccEntry struct {
	trigger mem.Addr
	next    [2]mem.Addr // MRU-ordered successors; 0 = empty
	filled  uint8
}

// NewCrossCore builds a cross-core prefetcher for cores cores with a
// direct-mapped table of entries slots (rounded up to a power of two;
// 0 selects the default 4096).
func NewCrossCore(cores, entries int) *CrossCore {
	if cores < 1 {
		panic(fmt.Sprintf("prefetch: CrossCore with %d cores", cores))
	}
	if entries <= 0 {
		entries = 4096
	}
	if entries&(entries-1) != 0 {
		entries = 1 << bits.Len(uint(entries))
	}
	return &CrossCore{
		Degree:   2,
		table:    make([]ccEntry, entries),
		mask:     uint64(entries - 1),
		shift:    uint(64 - bits.Len(uint(entries-1))),
		lastMiss: make([]mem.Addr, cores),
		hasLast:  make([]bool, cores),
	}
}

// Name identifies the prefetcher in reports and audit classification.
func (p *CrossCore) Name() string { return "crosscore" }

// OnMiss observes one LLC demand miss (the simulator filters the bank's
// access stream to Hit == false, demand-type requests). It first trains
// the previous→current successor pair for the missing core, then looks
// up the current miss as a trigger and issues up to Degree predicted
// successors on behalf of that core.
func (p *CrossCore) OnMiss(ev cache.AccessInfo) {
	core := ev.Core
	if core < 0 || core >= len(p.lastMiss) {
		return
	}
	if p.hasLast[core] && p.lastMiss[core] != ev.Line {
		p.train(p.lastMiss[core], ev.Line)
	}
	p.lastMiss[core] = ev.Line
	p.hasLast[core] = true

	e := &p.table[p.index(ev.Line)]
	if e.filled == 0 || e.trigger != ev.Line {
		return
	}
	p.Stats.Lookups++
	deg := p.Degree
	if deg > 2 {
		deg = 2
	}
	for i := 0; i < deg && i < int(e.filled); i++ {
		if p.Issue != nil && p.Issue(core, e.next[i]) {
			p.Stats.Issued++
		} else {
			p.Stats.Dropped++
		}
	}
}

// train records next as the MRU successor of trigger, evicting whatever
// entry shared the slot (direct-mapped conflict policy).
func (p *CrossCore) train(trigger, next mem.Addr) {
	e := &p.table[p.index(trigger)]
	if e.filled == 0 || e.trigger != trigger {
		*e = ccEntry{trigger: trigger, next: [2]mem.Addr{next}, filled: 1}
		p.Stats.Trained++
		return
	}
	if e.next[0] == next {
		return // already MRU
	}
	e.next[1] = e.next[0]
	e.next[0] = next
	if e.filled < 2 {
		e.filled = 2
	}
	p.Stats.Trained++
}

// Reset clears the correlation table and every core's training context,
// modelling the retraining a context switch forces on shared prefetcher
// state (stats stay cumulative, like the per-core prefetchers').
func (p *CrossCore) Reset() {
	for i := range p.table {
		p.table[i] = ccEntry{}
	}
	for c := range p.lastMiss {
		p.lastMiss[c] = 0
		p.hasLast[c] = false
	}
}

func (p *CrossCore) index(line mem.Addr) uint64 {
	return (uint64(line) * 0x9E3779B97F4A7C15) >> p.shift & p.mask
}

// HashState folds every architectural bit of the prefetcher — the
// correlation table and per-core last-miss context — into the audit
// state hash via mix. Iteration is over dense arrays, so the fold is
// deterministic by construction.
func (p *CrossCore) HashState(mix func(uint64)) {
	mix(uint64(len(p.table)))
	for i := range p.table {
		e := &p.table[i]
		if e.filled == 0 {
			continue
		}
		mix(uint64(i))
		mix(uint64(e.trigger))
		mix(uint64(e.next[0]))
		mix(uint64(e.next[1]))
		mix(uint64(e.filled))
	}
	for c := range p.lastMiss {
		if p.hasLast[c] {
			mix(uint64(c))
			mix(uint64(p.lastMiss[c]))
		}
	}
}
