package prefetch

import (
	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// GHB is a Global History Buffer temporal prefetcher in the G/AC
// (global, address-correlating) organisation of Nesbit & Smith [38]: a
// circular buffer of global miss addresses plus an index table mapping the
// most recent occurrence of each address into the buffer. On a miss it
// looks up the previous occurrence of the missing address and prefetches
// the Degree addresses that followed it last time.
//
// The paper's §II uses exactly this design to motivate RnR: when an
// address is followed by different successors in interleaved streams, the
// GHB picks the most recent one and mispredicts.
type GHB struct {
	// Size is the history-buffer capacity in entries.
	Size int
	// Degree is how many successors to prefetch on a hit.
	Degree int

	buf   []mem.Addr // circular global history of miss lines
	pos   int        // next write position
	count int
	index map[mem.Addr]int // line -> last buffer position
}

// NewGHB returns a GHB prefetcher with a typical configuration.
func NewGHB() *GHB { return &GHB{Size: 4096, Degree: 4} }

// Name implements Prefetcher.
func (p *GHB) Name() string { return "ghb" }

// OnAccess implements Prefetcher. Training and triggering happen on demand
// misses, as in the original design.
func (p *GHB) OnAccess(ev cache.AccessInfo, issue IssueFunc) {
	if ev.Hit {
		return
	}
	if p.buf == nil {
		p.buf = make([]mem.Addr, p.Size)
		p.index = make(map[mem.Addr]int, p.Size)
	}
	prev, seen := p.index[ev.Line]

	// Record this miss in the global history.
	p.record(ev.Line)

	if !seen || !p.valid(prev) {
		return
	}
	// Prefetch the addresses that followed the previous occurrence.
	for i := 1; i <= p.Degree; i++ {
		at := (prev + i) % p.Size
		if !p.valid(at) || at == p.pos {
			break
		}
		issue(p.buf[at])
	}
}

// OnFill implements Prefetcher.
func (p *GHB) OnFill(mem.Addr, bool, uint64) {}

// OnCycle implements Prefetcher.
func (p *GHB) OnCycle(uint64, IssueFunc) {}

func (p *GHB) record(line mem.Addr) {
	if p.count == p.Size {
		// The slot being overwritten may still be indexed; leave the stale
		// index entry — valid() guards against wrapped positions loosely,
		// and address-correlation tolerates occasional aliasing just as
		// the finite hardware table does.
		delete(p.index, p.buf[p.pos])
	}
	p.buf[p.pos] = line
	p.index[line] = p.pos
	p.pos = (p.pos + 1) % p.Size
	if p.count < p.Size {
		p.count++
	}
}

func (p *GHB) valid(at int) bool {
	if p.count == p.Size {
		return true
	}
	return at < p.pos
}
