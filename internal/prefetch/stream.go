package prefetch

import (
	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// Stream is a per-PC stride/stream prefetcher with confidence counters and
// a prefetch-ahead distance, in the style of the commercial L2 streamers
// the paper cites ([21], [30], [51]) and of Sander et al.'s stride
// prefetcher with confidence and dynamic prefetch-ahead. It detects
// constant strides per access site and, once confident, runs ahead of the
// demand stream.
type Stream struct {
	// Entries bounds the detector table (LRU replacement).
	Entries int
	// Confidence is how many consecutive identical strides must be seen
	// before prefetching starts.
	Confidence int
	// Degree is how many strided lines to issue per triggering access.
	Degree int
	// Distance is how far ahead (in strides) the stream runs.
	Distance int

	table map[uint64]*streamEntry
	order []uint64 // LRU order, front = oldest
}

type streamEntry struct {
	lastLine mem.Addr
	stride   int64 // in lines
	conf     int
}

// NewStream returns a stream prefetcher with typical L2-streamer settings.
func NewStream() *Stream {
	return &Stream{Entries: 64, Confidence: 2, Degree: 2, Distance: 4}
}

// Name implements Prefetcher.
func (p *Stream) Name() string { return "stream" }

// OnAccess implements Prefetcher.
func (p *Stream) OnAccess(ev cache.AccessInfo, issue IssueFunc) {
	if p.table == nil {
		p.table = make(map[uint64]*streamEntry, p.Entries)
	}
	e, ok := p.table[ev.PC]
	if !ok {
		p.insert(ev.PC, &streamEntry{lastLine: ev.Line})
		return
	}
	p.touch(ev.PC)
	stride := int64(ev.Line>>mem.LineShift) - int64(e.lastLine>>mem.LineShift)
	if stride == 0 {
		return // same line; no information
	}
	if stride == e.stride {
		if e.conf < p.Confidence+4 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 1
	}
	e.lastLine = ev.Line
	if e.conf < p.Confidence {
		return
	}
	base := int64(ev.Line >> mem.LineShift)
	for i := 1; i <= p.Degree; i++ {
		target := base + e.stride*int64(p.Distance+i-1)
		if target < 0 {
			continue
		}
		issue(mem.Addr(target) << mem.LineShift)
	}
}

// OnFill implements Prefetcher.
func (p *Stream) OnFill(mem.Addr, bool, uint64) {}

// OnCycle implements Prefetcher.
func (p *Stream) OnCycle(uint64, IssueFunc) {}

func (p *Stream) insert(pc uint64, e *streamEntry) {
	if len(p.table) >= p.Entries && len(p.order) > 0 {
		oldest := p.order[0]
		p.order = p.order[1:]
		delete(p.table, oldest)
	}
	p.table[pc] = e
	p.order = append(p.order, pc)
}

func (p *Stream) touch(pc uint64) {
	for i, v := range p.order {
		if v == pc {
			p.order = append(p.order[:i], p.order[i+1:]...)
			p.order = append(p.order, pc)
			return
		}
	}
}
