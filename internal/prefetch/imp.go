package prefetch

import (
	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// IMP is an indirect memory prefetcher after Yu et al. [60]: it detects a
// streaming index array B[] and prefetches the indirect targets A[B[i+d]]
// a lookahead distance d ahead of the demand stream. Unlike DROPLET it is
// purely hardware — there is no software region hint — so the index stream
// must first be *detected*, and targets can only be generated for index
// data that has already been fetched, which limits both accuracy and
// timeliness (the weaknesses §VIII attributes to it).
//
// Detection is modelled with the stream detector; indirection is resolved
// through the workload-provided IndirectResolver, standing in for the
// value inspection the real hardware performs on fetched index lines.
type IMP struct {
	// Resolve maps an index line to its indirect target lines.
	Resolve IndirectResolver
	// IndexRegion tests whether a line belongs to a (potential) index
	// array. IMP has no software hints; the sim passes a predicate over
	// the workload's streaming arrays to stand in for dynamic detection.
	IndexRegion func(line mem.Addr) bool
	// Lookahead is the stream lookahead distance in index lines.
	Lookahead int
	// Confidence gates indirect prefetching until the index stream has
	// been seen to be sequential this many times.
	Confidence int

	lastIndexLine mem.Addr
	conf          int
}

// NewIMP returns an IMP-like prefetcher; the caller must set Resolve and
// IndexRegion.
func NewIMP() *IMP { return &IMP{Lookahead: 2, Confidence: 2} }

// Name implements Prefetcher.
func (p *IMP) Name() string { return "imp" }

// OnAccess implements Prefetcher.
func (p *IMP) OnAccess(ev cache.AccessInfo, issue IssueFunc) {
	if p.IndexRegion == nil || !p.IndexRegion(ev.Line) {
		return
	}
	switch {
	case ev.Line == p.lastIndexLine:
		return
	case ev.Line == p.lastIndexLine+mem.LineSize:
		if p.conf < p.Confidence+2 {
			p.conf++
		}
	default:
		p.conf = 0
	}
	p.lastIndexLine = ev.Line

	if p.conf < p.Confidence {
		return
	}
	// Prefetch the index stream ahead and the indirect targets of the
	// lookahead index line.
	ahead := ev.Line + mem.Addr(p.Lookahead*mem.LineSize)
	if p.IndexRegion(ahead) {
		issue(ahead)
		if p.Resolve != nil {
			for _, t := range p.Resolve(ahead) {
				issue(t)
			}
		}
	}
}

// OnFill implements Prefetcher.
func (p *IMP) OnFill(mem.Addr, bool, uint64) {}

// OnCycle implements Prefetcher.
func (p *IMP) OnCycle(uint64, IssueFunc) {}
