package prefetch

import (
	"testing"

	"rnrsim/internal/mem"
)

func TestBestOffsetLearnsConstantStride(t *testing.T) {
	p := NewBestOffset()
	c := &collector{}
	// Miss stream with stride 3 lines: after a learning round the elected
	// offset should be 3 and prefetches should land at +3.
	for i := 0; i < 600; i++ {
		p.OnAccess(access(1, mem.Addr(0x10000+i*3*mem.LineSize), false), c.issue)
	}
	if p.current != 3 {
		t.Fatalf("elected offset %d, want 3", p.current)
	}
	last := mem.Addr(0x10000 + 599*3*mem.LineSize)
	if !c.has(last + 3*mem.LineSize) {
		t.Error("no prefetch at the elected offset")
	}
}

func TestBestOffsetDisablesOnRandom(t *testing.T) {
	p := NewBestOffset()
	c := &collector{}
	// A pseudo-random miss stream with no repeatable offset: after enough
	// rounds the prefetcher should elect "off" (current == 0).
	x := uint64(12345)
	for i := 0; i < 4096; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		p.OnAccess(access(1, mem.Addr((x>>20)&0xffffff)<<mem.LineShift, false), c.issue)
	}
	if p.current != 0 {
		t.Errorf("random stream elected offset %d, want 0 (off)", p.current)
	}
}

func TestDominoDisambiguatesSharedAddress(t *testing.T) {
	// The §II example: 9 is followed by 12 in one context and 20 in
	// another. A pair-indexed temporal prefetcher can tell them apart when
	// the *preceding* miss differs; GHB cannot.
	p := NewDomino()
	p.Degree = 1
	line := func(a int) mem.Addr { return mem.Addr(a * mem.LineSize) }
	c := &collector{}
	// Context A: 1, 9, 12. Context B: 2, 9, 20. Twice each to train pairs.
	for i := 0; i < 2; i++ {
		for _, a := range []int{1, 9, 12} {
			p.OnAccess(access(1, line(a), false), c.issue)
		}
		for _, a := range []int{2, 9, 20} {
			p.OnAccess(access(1, line(a), false), c.issue)
		}
	}
	// Replay context A's prefix: after (1, 9) the prediction must be 12.
	c.lines = nil
	p.OnAccess(access(1, line(1), false), c.issue)
	p.OnAccess(access(1, line(9), false), c.issue)
	if !c.has(line(12)) {
		t.Errorf("pair (1,9) did not predict 12: %v", c.lines)
	}
	if c.has(line(20)) {
		t.Errorf("pair (1,9) leaked context B's successor: %v", c.lines)
	}
}

func TestDominoFallsBackToSingleAddress(t *testing.T) {
	p := NewDomino()
	p.Degree = 1
	line := func(a int) mem.Addr { return mem.Addr(a * mem.LineSize) }
	c := &collector{}
	for _, a := range []int{5, 6, 7} {
		p.OnAccess(access(1, line(a), false), c.issue)
	}
	// A cold pair (99, 6): the one-address index should still predict 7.
	c.lines = nil
	p.OnAccess(access(1, line(99), false), c.issue)
	p.OnAccess(access(1, line(6), false), c.issue)
	if !c.has(line(7)) {
		t.Errorf("single-address fallback failed: %v", c.lines)
	}
}

func TestDominoNoTrainOnHits(t *testing.T) {
	p := NewDomino()
	c := &collector{}
	p.OnAccess(access(1, 0x1000, true), c.issue)
	p.OnAccess(access(1, 0x2000, true), c.issue)
	if len(c.lines) != 0 || p.count != 0 {
		t.Error("Domino trained on hits")
	}
}

func TestBestOffsetNegativeOffsets(t *testing.T) {
	p := NewBestOffset()
	c := &collector{}
	// Descending stream: stride -1 line. The candidate list includes -1.
	base := 0x800 * mem.LineSize
	for i := 0; i < 800; i++ {
		p.OnAccess(access(1, mem.Addr(base-i*mem.LineSize), false), c.issue)
	}
	if p.current != -1 && p.current != -2 {
		t.Errorf("descending stream elected %d, want negative", p.current)
	}
}
