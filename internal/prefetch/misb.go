package prefetch

import (
	"rnrsim/internal/cache"
	"rnrsim/internal/mem"
)

// MISB is a PC-localised temporal prefetcher with off-chip metadata,
// following Wu et al. [59] (itself built on ISB [25]). Miss streams are
// localised by PC and linearised into a *structural* address space so that
// temporally adjacent misses get consecutive structural addresses; the
// physical<->structural mappings are the metadata, held off-chip and cached
// on chip. On a miss, the line's structural address is looked up and the
// next Degree structural neighbours are prefetched.
//
// Metadata behaviour is modelled at the traffic level: mapping lookups that
// miss the on-chip metadata cache generate off-chip metadata reads, and
// newly created mappings eventually generate metadata writes. Metadata
// fetches do not stall prediction (MISB prefetches its metadata), so the
// effect captured is the paper's: extra off-chip traffic and bounded
// on-chip state, with prediction quality limited by PC localisation.
type MISB struct {
	// Degree is the maximum prefetch degree (the paper notes MISB uses 8).
	Degree int
	// MetaCacheLines bounds the on-chip metadata cache (in 64 B lines,
	// each covering 8 mappings). MISB's evaluation uses ~49 KB.
	MetaCacheLines int
	// Meta, if set, receives the off-chip metadata traffic.
	Meta func(write bool, addr mem.Addr)

	ps        map[mem.Addr]uint64 // physical line -> structural address
	sp        map[uint64]mem.Addr // structural address -> physical line
	lastByPC  map[uint64]mem.Addr // training state: last miss line per PC
	nextAlloc uint64              // next structural region to allocate

	metaCache map[mem.Addr]struct{} // resident metadata lines
	metaFIFO  []mem.Addr            // eviction order (FIFO approximates LRU)
	metaPos   int
	metaBase  mem.Addr // synthetic address of the off-chip metadata store
}

// NewMISB returns a MISB-like prefetcher with the paper's parameters.
func NewMISB() *MISB {
	return &MISB{
		Degree:         8,
		MetaCacheLines: 49 * 1024 / mem.LineSize,
		metaBase:       0x7f00_0000_0000,
	}
}

// Name implements Prefetcher.
func (p *MISB) Name() string { return "misb" }

const misbRegion = 256 // structural addresses per allocated region

// OnAccess implements Prefetcher.
func (p *MISB) OnAccess(ev cache.AccessInfo, issue IssueFunc) {
	if ev.Hit {
		return
	}
	if p.ps == nil {
		p.ps = make(map[mem.Addr]uint64)
		p.sp = make(map[uint64]mem.Addr)
		p.lastByPC = make(map[uint64]mem.Addr)
		p.metaCache = make(map[mem.Addr]struct{})
	}

	p.train(ev.PC, ev.Line)

	s, ok := p.lookupPS(ev.Line)
	if !ok {
		return
	}
	for i := uint64(1); i <= uint64(p.Degree); i++ {
		phys, ok := p.lookupSP(s + i)
		if !ok {
			break
		}
		issue(phys)
	}
}

// train links the previous miss of this PC to the current one in the
// structural space.
func (p *MISB) train(pc uint64, line mem.Addr) {
	prev, ok := p.lastByPC[pc]
	p.lastByPC[pc] = line
	if !ok || prev == line {
		return
	}
	ps, havePrev := p.ps[prev]
	if !havePrev {
		// Allocate a fresh structural region for the stream head.
		ps = p.nextAlloc
		p.nextAlloc += misbRegion
		p.setMapping(prev, ps)
	}
	if _, have := p.ps[line]; have {
		return // already linearised elsewhere; keep first mapping
	}
	next := ps + 1
	if next%misbRegion == 0 {
		// Region exhausted; start a new one.
		next = p.nextAlloc
		p.nextAlloc += misbRegion
	}
	if _, taken := p.sp[next]; taken {
		next = p.nextAlloc
		p.nextAlloc += misbRegion
	}
	p.setMapping(line, next)
}

func (p *MISB) setMapping(line mem.Addr, s uint64) {
	p.ps[line] = s
	p.sp[s] = line
	p.touchMeta(line, true)
}

func (p *MISB) lookupPS(line mem.Addr) (uint64, bool) {
	s, ok := p.ps[line]
	if ok {
		p.touchMeta(line, false)
	}
	return s, ok
}

func (p *MISB) lookupSP(s uint64) (mem.Addr, bool) {
	phys, ok := p.sp[s]
	if ok {
		p.touchMeta(mem.Addr(s<<3)|1, false)
	}
	return phys, ok
}

// touchMeta simulates the on-chip metadata cache in front of the off-chip
// store: 8 mappings per metadata line, FIFO replacement (a hardware-cheap
// LRU approximation), miss => off-chip read, dirty insert => eventual
// off-chip write.
func (p *MISB) touchMeta(key mem.Addr, dirty bool) {
	metaLine := p.metaBase + mem.LineAddr(key>>3)
	if _, ok := p.metaCache[metaLine]; ok {
		return
	}
	if p.Meta != nil {
		p.Meta(false, metaLine) // fetch mapping line from memory
		if dirty {
			p.Meta(true, metaLine) // new mapping written back eventually
		}
	}
	if len(p.metaFIFO) < p.MetaCacheLines {
		p.metaFIFO = append(p.metaFIFO, metaLine)
	} else {
		delete(p.metaCache, p.metaFIFO[p.metaPos])
		p.metaFIFO[p.metaPos] = metaLine
		p.metaPos = (p.metaPos + 1) % p.MetaCacheLines
	}
	p.metaCache[metaLine] = struct{}{}
}

// OnFill implements Prefetcher.
func (p *MISB) OnFill(mem.Addr, bool, uint64) {}

// OnCycle implements Prefetcher.
func (p *MISB) OnCycle(uint64, IssueFunc) {}
