// Package trace defines the instruction trace format that connects the
// workload generators (internal/apps) to the trace-driven core model
// (internal/cpu).
//
// A trace is the retired dynamic instruction stream of one hardware thread.
// Memory instructions carry a virtual address and a synthetic PC that
// identifies the static access site (prefetchers key on it). Stretches of
// non-memory work are compressed into Exec records carrying an instruction
// count. Calls into the RnR software interface (paper §IV, Table I) appear
// in-band as Marker records, exactly like the register writes they model.
package trace

import (
	"fmt"

	"rnrsim/internal/mem"
)

// Kind discriminates trace records.
type Kind uint8

const (
	// KindExec is a bundle of Count non-memory instructions.
	KindExec Kind = iota
	// KindLoad is one load instruction reading Size bytes at Addr.
	KindLoad
	// KindStore is one store instruction writing Size bytes at Addr.
	KindStore
	// KindMarker is an RnR software-interface call (see Marker).
	KindMarker
)

var kindNames = [...]string{"exec", "load", "store", "marker"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Marker enumerates the RnR function calls of Table I plus iteration and
// region-of-interest bracketing used by the harness.
type Marker uint8

const (
	MarkNone Marker = iota

	// MarkInit models RnR.init(): sets the ASID, allocates the sequence
	// and division tables (their bases travel in Addr/Aux of two following
	// MarkSeqTable/MarkDivTable records) and resets the default window.
	MarkInit
	// MarkSeqTable publishes the sequence-table base register (Addr) and
	// capacity in entries (Count).
	MarkSeqTable
	// MarkDivTable publishes the division-table base register (Addr) and
	// capacity in entries (Count).
	MarkDivTable
	// MarkAddrBaseSet models AddrBase.set(addr, size): Addr carries the
	// base, Count the size in bytes, Aux the boundary-register slot.
	MarkAddrBaseSet
	// MarkAddrBaseEnable / MarkAddrBaseDisable toggle the boundary slot in
	// Aux. Addr repeats the base for cross-checking.
	MarkAddrBaseEnable
	MarkAddrBaseDisable
	// MarkWindowSize models WindowSize.set(size): Count is the new window
	// size in recorded misses.
	MarkWindowSize
	// MarkRecordStart models PrefetchState.start(): begin recording.
	MarkRecordStart
	// MarkReplay models PrefetchState.replay(): stop recording (if active)
	// and start replaying from the beginning of the stored sequence.
	MarkReplay
	// MarkPause / MarkResume model PrefetchState.pause()/resume().
	MarkPause
	MarkResume
	// MarkPrefetchEnd models PrefetchState.end(): disable RnR.
	MarkPrefetchEnd
	// MarkEnd models RnR.end(): free the metadata storage.
	MarkEnd

	// MarkIterBegin / MarkIterEnd bracket one workload iteration (Aux is
	// the iteration number). The harness uses them for per-iteration IPC.
	MarkIterBegin
	MarkIterEnd
	// MarkROIBegin / MarkROIEnd bracket the measured region of interest.
	MarkROIBegin
	MarkROIEnd
)

var markerNames = [...]string{
	"none", "init", "seqtable", "divtable", "addrbase.set",
	"addrbase.enable", "addrbase.disable", "windowsize.set",
	"state.start", "state.replay", "state.pause", "state.resume",
	"state.end", "rnr.end", "iter.begin", "iter.end", "roi.begin", "roi.end",
}

func (m Marker) String() string {
	if int(m) < len(markerNames) {
		return markerNames[m]
	}
	return fmt.Sprintf("marker(%d)", uint8(m))
}

// Record is one trace entry. The meaning of Addr/Count/Aux depends on Kind
// and Marker as documented on the constants above.
type Record struct {
	Kind   Kind
	Marker Marker
	PC     uint64   // static access-site id for loads/stores
	Addr   mem.Addr // byte address (loads/stores) or marker operand
	Count  uint64   // bytes (loads/stores), instructions (exec), operand (markers)
	Aux    int32    // region id for loads/stores (-1 unknown), slot/iter for markers
}

// Exec returns a bundle of n non-memory instructions.
func Exec(n uint64) Record { return Record{Kind: KindExec, Count: n} }

// Load returns a load record of size bytes at addr issued from site pc.
func Load(pc uint64, addr mem.Addr, size uint64, region int32) Record {
	return Record{Kind: KindLoad, PC: pc, Addr: addr, Count: size, Aux: region}
}

// Store returns a store record of size bytes at addr issued from site pc.
func Store(pc uint64, addr mem.Addr, size uint64, region int32) Record {
	return Record{Kind: KindStore, PC: pc, Addr: addr, Count: size, Aux: region}
}

// Mark returns a marker record.
func Mark(m Marker, addr mem.Addr, count uint64, aux int32) Record {
	return Record{Kind: KindMarker, Marker: m, Addr: addr, Count: count, Aux: aux}
}

// Instructions returns how many dynamic instructions the record represents.
// Markers are architectural register writes and count as one instruction,
// mirroring the paper's "light instruction overhead" claim.
func (r Record) Instructions() uint64 {
	switch r.Kind {
	case KindExec:
		return r.Count
	default:
		return 1
	}
}

func (r Record) String() string {
	switch r.Kind {
	case KindExec:
		return fmt.Sprintf("exec x%d", r.Count)
	case KindLoad, KindStore:
		return fmt.Sprintf("%s pc=%#x addr=%#x size=%d region=%d", r.Kind, r.PC, uint64(r.Addr), r.Count, r.Aux)
	case KindMarker:
		return fmt.Sprintf("marker %s addr=%#x count=%d aux=%d", r.Marker, uint64(r.Addr), r.Count, r.Aux)
	}
	return fmt.Sprintf("record(%d)", r.Kind)
}

// Source yields trace records one at a time. Implementations may generate
// records lazily to keep memory bounded.
type Source interface {
	// Next returns the next record. ok is false once the trace is drained.
	Next() (rec Record, ok bool)
}

// Lookahead is optionally implemented by sources that can inspect the
// records they have not yet yielded. The parallel per-core scheduler
// (internal/sim) uses it to bound how long a core can run on its own
// goroutine before it could next touch shared machine state: a core
// executing an Exec bundle is provably private until the bundle's last
// instruction, so the distance to the next memory access or marker is a
// safe independence horizon.
type Lookahead interface {
	// ScanUnits reports conservative fetch-unit distances from the
	// source's current position, without consuming records: memU units
	// must be fetched before the first load/store record could dispatch,
	// markU before the first marker record, and drainU before the trace
	// can drain. Exec records contribute their instruction count;
	// every other record contributes one unit. A distance whose record
	// is not found within limit units is reported as limit — "at least
	// limit", which is all the scheduler needs — so implementations stop
	// scanning at limit and the scan cost is bounded by the window being
	// sized, not the trace length. Each value is a lower bound: the
	// true distance may be larger (structural stalls only delay
	// dispatch), never smaller.
	ScanUnits(limit uint64) (memU, markU, drainU uint64)
}

// SliceSource adapts an in-memory record slice to a Source.
type SliceSource struct {
	recs []Record
	pos  int
}

// NewSliceSource returns a Source that replays recs in order.
func NewSliceSource(recs []Record) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Record, bool) {
	if s.pos >= len(s.recs) {
		return Record{}, false
	}
	r := s.recs[s.pos]
	s.pos++
	return r, true
}

// ScanUnits implements Lookahead over the in-memory record slice. The scan
// keeps going past the first load/store (consuming one unit for it) so that
// a marker hiding right behind a memory access is still reported at its true
// distance — a core can dispatch several records in one fetch tick, so the
// first marker's distance must be measured independently of the first
// memory access.
func (s *SliceSource) ScanUnits(limit uint64) (memU, markU, drainU uint64) {
	memU, markU, drainU = limit, limit, limit
	var u uint64
	haveMem := false
	for i := s.pos; i < len(s.recs); i++ {
		if u >= limit {
			return
		}
		r := s.recs[i]
		switch r.Kind {
		case KindExec:
			u += r.Count
		case KindLoad, KindStore:
			if !haveMem {
				haveMem = true
				memU = u
			}
			u++
		default:
			// Markers — and, conservatively, any future record kind —
			// terminate the scan at distance u.
			markU = u
			if !haveMem {
				memU = u
			}
			return
		}
	}
	if u < limit {
		drainU = u
	}
	return
}

// Reset rewinds the source to the beginning of the trace.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len returns the total number of records in the trace.
func (s *SliceSource) Len() int { return len(s.recs) }
