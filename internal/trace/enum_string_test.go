package trace_test

import (
	"strings"
	"testing"

	"rnrsim/internal/mem"
	"rnrsim/internal/rnr"
	"rnrsim/internal/trace"
)

// TestEnumStringTotal is the shared table-driven test for every enum
// String() method in the simulator: the methods must be total — defined
// for every representable value, including negative ones (for the
// signed TimingControl) and values past the name table — and must fall
// back to a parenthesised placeholder instead of panicking. The
// original guards checked only the upper bound, so a corrupted signed
// enum (e.g. TimingControl(-1) from an uninitialised config) indexed
// the name table with a negative value and panicked inside a log line.
func TestEnumStringTotal(t *testing.T) {
	type enumCase struct {
		val  interface{ String() string }
		want string // "" = any parenthesised fallback is acceptable
	}
	cases := map[string][]enumCase{
		"trace.Kind": {
			{trace.KindExec, "exec"},
			{trace.KindLoad, "load"},
			{trace.KindStore, "store"},
			{trace.KindMarker, "marker"},
			{trace.Kind(200), ""},
			{trace.Kind(255), ""}, // Kind(-1) wraps here: uint8 underlying
		},
		"trace.Marker": {
			{trace.MarkNone, "none"},
			{trace.MarkIterEnd, "iter.end"},
			{trace.MarkROIEnd, "roi.end"},
			{trace.Marker(200), ""},
			{trace.Marker(255), ""},
		},
		"mem.ReqType": {
			{mem.ReqLoad, "load"},
			{mem.ReqStore, "store"},
			{mem.ReqPrefetch, "prefetch"},
			{mem.ReqMetaWrite, "metawrite"},
			{mem.ReqType(200), ""},
			{mem.ReqType(255), ""},
		},
		"rnr.TimingControl": {
			{rnr.NoControl, "nocontrol"},
			{rnr.WindowControl, "window"},
			{rnr.WindowPaceControl, "window+pace"},
			{rnr.TimingControl(-1), ""}, // signed: the original panic
			{rnr.TimingControl(-1 << 40), ""},
			{rnr.TimingControl(1 << 40), ""},
		},
		"rnr.State": {
			{rnr.StateIdle, "idle"},
			{rnr.StateRecord, "record"},
			{rnr.StatePausedReplay, "paused-replay"},
			{rnr.State(200), ""},
			{rnr.State(255), ""},
		},
	}
	for name, cs := range cases {
		name, cs := name, cs
		t.Run(name, func(t *testing.T) {
			for _, c := range cs {
				got := func() (s string) {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s.String() panicked on %#v: %v", name, c.val, r)
						}
					}()
					return c.val.String()
				}()
				if c.want != "" {
					if got != c.want {
						t.Errorf("%s(%v).String() = %q, want %q", name, c.val, got, c.want)
					}
					continue
				}
				if got == "" || !strings.Contains(got, "(") {
					t.Errorf("%s fallback for %#v = %q, want a parenthesised placeholder", name, c.val, got)
				}
			}
		})
	}
}
