package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rnrsim/internal/mem"
)

// Binary trace format, little endian:
//
//	magic   [4]byte  "RNRT"
//	version uint32   currently 1
//	count   uint64   number of records
//	records count × (kind u8, marker u8, aux i32 (2-byte pad before),
//	                 pc u64, addr u64, count u64)
//
// The fixed 32-byte record keeps the reader trivial; traces compress well
// externally if needed.

var magic = [4]byte{'R', 'N', 'R', 'T'}

const (
	formatVersion = 1
	headerSize    = 16
	recordSize    = 32
)

// ErrBadTrace is returned when a trace stream fails validation.
var ErrBadTrace = errors.New("trace: malformed trace stream")

// TruncatedError reports a trace stream that ended before the record
// count promised by its header was delivered. It carries the byte
// offset at which the failing read started and the zero-based index of
// the record being read, so a corrupted multi-gigabyte trace can be
// diagnosed (and possibly salvaged up to the offset) without re-parsing
// it. errors.Is matches it against both ErrBadTrace and
// io.ErrUnexpectedEOF.
type TruncatedError struct {
	Offset int64  // byte offset of the failed record read
	Record uint64 // zero-based index of the record being read
	Err    error  // underlying read error
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("trace: truncated stream at record %d (byte offset %d): %v",
		e.Record, e.Offset, e.Err)
}

// Unwrap lets errors.Is(err, ErrBadTrace) and
// errors.Is(err, io.ErrUnexpectedEOF) both succeed.
func (e *TruncatedError) Unwrap() []error {
	return []error{ErrBadTrace, io.ErrUnexpectedEOF}
}

// truncated builds the TruncatedError for a failed read of record i,
// normalising a clean io.EOF (the stream ended exactly on a record
// boundary, but the header promised more) to io.ErrUnexpectedEOF.
func truncated(i uint64, err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		err = io.ErrUnexpectedEOF
	}
	return &TruncatedError{
		Offset: headerSize + int64(i)*recordSize,
		Record: i,
		Err:    err,
	}
}

// Write serialises the records to w in the binary trace format.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], formatVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(recs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [32]byte
	for _, r := range recs {
		buf[0] = byte(r.Kind)
		buf[1] = byte(r.Marker)
		buf[2], buf[3] = 0, 0
		binary.LittleEndian.PutUint32(buf[4:8], uint32(r.Aux))
		binary.LittleEndian.PutUint64(buf[8:16], r.PC)
		binary.LittleEndian.PutUint64(buf[16:24], uint64(r.Addr))
		binary.LittleEndian.PutUint64(buf[24:32], r.Count)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserialises a complete trace from r.
func Read(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var head [16]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if [4]byte(head[0:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, head[0:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	count := binary.LittleEndian.Uint64(head[8:16])
	const maxRecords = 1 << 32
	if count > maxRecords {
		return nil, fmt.Errorf("%w: implausible record count %d", ErrBadTrace, count)
	}
	recs := make([]Record, 0, count)
	var buf [32]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, truncated(i, err)
		}
		rec := Record{
			Kind:   Kind(buf[0]),
			Marker: Marker(buf[1]),
			Aux:    int32(binary.LittleEndian.Uint32(buf[4:8])),
			PC:     binary.LittleEndian.Uint64(buf[8:16]),
			Addr:   mem.Addr(binary.LittleEndian.Uint64(buf[16:24])),
			Count:  binary.LittleEndian.Uint64(buf[24:32]),
		}
		if rec.Kind > KindMarker {
			return nil, fmt.Errorf("%w: unknown kind %d at record %d", ErrBadTrace, rec.Kind, i)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
