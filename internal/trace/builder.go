package trace

import "rnrsim/internal/mem"

// Builder accumulates a trace with small conveniences the workload
// generators want: adjacent Exec records coalesce, and the RnR software
// interface is exposed with the same shape as the paper's Table I so the
// workload code reads like Algorithm 1.
type Builder struct {
	recs []Record
}

// NewBuilder returns an empty trace builder with the given capacity hint.
func NewBuilder(capacity int) *Builder {
	return &Builder{recs: make([]Record, 0, capacity)}
}

// Exec appends n non-memory instructions, merging with a preceding Exec.
func (b *Builder) Exec(n uint64) {
	if n == 0 {
		return
	}
	if k := len(b.recs); k > 0 && b.recs[k-1].Kind == KindExec {
		b.recs[k-1].Count += n
		return
	}
	b.recs = append(b.recs, Exec(n))
}

// Load appends a load of size bytes at addr from site pc in region.
func (b *Builder) Load(pc uint64, addr mem.Addr, size uint64, region int32) {
	b.recs = append(b.recs, Load(pc, addr, size, region))
}

// Store appends a store of size bytes at addr from site pc in region.
func (b *Builder) Store(pc uint64, addr mem.Addr, size uint64, region int32) {
	b.recs = append(b.recs, Store(pc, addr, size, region))
}

// Mark appends an arbitrary marker record.
func (b *Builder) Mark(m Marker, addr mem.Addr, count uint64, aux int32) {
	b.recs = append(b.recs, Mark(m, addr, count, aux))
}

// RnRInit emits RnR.init() followed by the metadata table base registers.
// seq and div are the programmer-allocated metadata regions.
func (b *Builder) RnRInit(seq, div mem.Region, windowSize uint64) {
	b.Mark(MarkInit, 0, 0, 0)
	b.Mark(MarkSeqTable, seq.Base, seq.Size, 0)
	b.Mark(MarkDivTable, div.Base, div.Size, 0)
	if windowSize > 0 {
		b.Mark(MarkWindowSize, 0, windowSize, 0)
	}
}

// AddrBaseSet emits AddrBase.set(addr, size) into boundary slot.
func (b *Builder) AddrBaseSet(slot int, base mem.Addr, size uint64) {
	b.Mark(MarkAddrBaseSet, base, size, int32(slot))
}

// AddrBaseEnable emits AddrBase.enable(addr) for the boundary slot.
func (b *Builder) AddrBaseEnable(slot int) { b.Mark(MarkAddrBaseEnable, 0, 0, int32(slot)) }

// AddrBaseDisable emits AddrBase.disable(addr) for the boundary slot.
func (b *Builder) AddrBaseDisable(slot int) { b.Mark(MarkAddrBaseDisable, 0, 0, int32(slot)) }

// WindowSize emits WindowSize.set(size).
func (b *Builder) WindowSize(size uint64) { b.Mark(MarkWindowSize, 0, size, 0) }

// RecordStart emits PrefetchState.start().
func (b *Builder) RecordStart() { b.Mark(MarkRecordStart, 0, 0, 0) }

// Replay emits PrefetchState.replay().
func (b *Builder) Replay() { b.Mark(MarkReplay, 0, 0, 0) }

// Pause emits PrefetchState.pause().
func (b *Builder) Pause() { b.Mark(MarkPause, 0, 0, 0) }

// Resume emits PrefetchState.resume().
func (b *Builder) Resume() { b.Mark(MarkResume, 0, 0, 0) }

// PrefetchEnd emits PrefetchState.end().
func (b *Builder) PrefetchEnd() { b.Mark(MarkPrefetchEnd, 0, 0, 0) }

// RnREnd emits RnR.end(), releasing the metadata storage.
func (b *Builder) RnREnd() { b.Mark(MarkEnd, 0, 0, 0) }

// IterBegin / IterEnd bracket workload iteration it.
func (b *Builder) IterBegin(it int) { b.Mark(MarkIterBegin, 0, 0, int32(it)) }

// IterEnd closes workload iteration it.
func (b *Builder) IterEnd(it int) { b.Mark(MarkIterEnd, 0, 0, int32(it)) }

// ROIBegin / ROIEnd bracket the measured region of interest.
func (b *Builder) ROIBegin() { b.Mark(MarkROIBegin, 0, 0, 0) }

// ROIEnd closes the measured region of interest.
func (b *Builder) ROIEnd() { b.Mark(MarkROIEnd, 0, 0, 0) }

// Records returns the accumulated trace.
func (b *Builder) Records() []Record { return b.recs }

// Source returns a Source over the accumulated trace.
func (b *Builder) Source() *SliceSource { return NewSliceSource(b.recs) }

// Len returns the number of records (not instructions) accumulated.
func (b *Builder) Len() int { return len(b.recs) }

// Instructions returns the total dynamic instruction count of the trace.
func (b *Builder) Instructions() uint64 {
	var n uint64
	for _, r := range b.recs {
		n += r.Instructions()
	}
	return n
}
