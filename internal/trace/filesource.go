package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"rnrsim/internal/mem"
)

// FileSource streams records from a binary trace file without loading it
// into memory, so multi-gigabyte traces can drive the simulator directly.
// It implements Source; Close releases the file.
type FileSource struct {
	f         *os.File
	br        *bufio.Reader
	remaining uint64
	read      uint64 // records consumed so far
	err       error
}

// OpenFile opens a trace written by Write and validates its header.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var head [headerSize]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		f.Close()
		if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("%w: short header: %w", ErrBadTrace, err)
	}
	if [4]byte(head[0:4]) != magic {
		f.Close()
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, head[0:4])
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != formatVersion {
		f.Close()
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, v)
	}
	return &FileSource{
		f:         f,
		br:        br,
		remaining: binary.LittleEndian.Uint64(head[8:16]),
	}, nil
}

// Next implements Source. The first read error latches and ends the
// stream; check Err after draining. A truncated or corrupt file latches
// a *TruncatedError carrying the failing byte offset and record index
// (matching io.ErrUnexpectedEOF and ErrBadTrace under errors.Is)
// instead of surfacing a bare EOF.
func (s *FileSource) Next() (Record, bool) {
	if s.err != nil || s.remaining == 0 {
		return Record{}, false
	}
	var buf [recordSize]byte
	if _, err := io.ReadFull(s.br, buf[:]); err != nil {
		s.err = truncated(s.read, err)
		return Record{}, false
	}
	s.read++
	s.remaining--
	return Record{
		Kind:   Kind(buf[0]),
		Marker: Marker(buf[1]),
		Aux:    int32(binary.LittleEndian.Uint32(buf[4:8])),
		PC:     binary.LittleEndian.Uint64(buf[8:16]),
		Addr:   mem.Addr(binary.LittleEndian.Uint64(buf[16:24])),
		Count:  binary.LittleEndian.Uint64(buf[24:32]),
	}, true
}

// Remaining returns how many records are left to read.
func (s *FileSource) Remaining() uint64 { return s.remaining }

// Err returns the first read error, if any.
func (s *FileSource) Err() error { return s.err }

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }
