package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestFileSourceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := randomRecords(500, rng)
	path := filepath.Join(t.TempDir(), "t.rnrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Remaining() != 500 {
		t.Fatalf("Remaining = %d", s.Remaining())
	}
	for i, want := range recs {
		got, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended at %d: %v", i, s.Err())
		}
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("Next past the end returned ok")
	}
	if s.Err() != nil {
		t.Errorf("clean drain left error %v", s.Err())
	}
}

func TestFileSourceTruncation(t *testing.T) {
	recs := []Record{Exec(1), Load(1, 64, 8, -1), Exec(2)}
	path := filepath.Join(t.TempDir(), "t.rnrt")
	f, _ := os.Create(path)
	if err := Write(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Chop the last record in half.
	if err := os.Truncate(path, 16+32*2+10); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("read %d records from truncated file, want 2", n)
	}
	if !errors.Is(s.Err(), ErrBadTrace) {
		t.Errorf("Err = %v, want ErrBadTrace", s.Err())
	}
}

func TestFileSourceRejectsGarbageHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.rnrt")
	os.WriteFile(path, []byte("definitely not a trace"), 0o644)
	if _, err := OpenFile(path); !errors.Is(err, ErrBadTrace) {
		t.Errorf("OpenFile = %v, want ErrBadTrace", err)
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("OpenFile accepted a missing file")
	}
}

// TestFileSourceTruncationDetail pins the hardened error contract: a
// truncated file latches a *TruncatedError that matches both ErrBadTrace
// and io.ErrUnexpectedEOF under errors.Is and carries the byte offset
// and record index of the failing read.
func TestFileSourceTruncationDetail(t *testing.T) {
	recs := []Record{Exec(1), Load(1, 64, 8, -1), Exec(2)}
	write := func(t *testing.T) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "t.rnrt")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := Write(f, recs); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}

	cases := []struct {
		name       string
		truncateAt int64
		wantRead   int
		wantRecord uint64
		wantOffset int64
	}{
		// Mid-record: the second record is chopped in half.
		{"mid-record", 16 + 32 + 10, 1, 1, 16 + 32},
		// Exact boundary: the file ends cleanly after two records, but
		// the header promised three — a bare EOF must still surface as
		// io.ErrUnexpectedEOF, not a silent short stream.
		{"record-boundary", 16 + 32*2, 2, 2, 16 + 32*2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := write(t)
			if err := os.Truncate(path, tc.truncateAt); err != nil {
				t.Fatal(err)
			}
			s, err := OpenFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			n := 0
			for {
				if _, ok := s.Next(); !ok {
					break
				}
				n++
			}
			if n != tc.wantRead {
				t.Errorf("read %d records, want %d", n, tc.wantRead)
			}
			err = s.Err()
			if err == nil {
				t.Fatal("truncated stream drained without error")
			}
			if !errors.Is(err, ErrBadTrace) {
				t.Errorf("errors.Is(err, ErrBadTrace) = false for %v", err)
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("errors.Is(err, io.ErrUnexpectedEOF) = false for %v", err)
			}
			var te *TruncatedError
			if !errors.As(err, &te) {
				t.Fatalf("errors.As(*TruncatedError) = false for %v", err)
			}
			if te.Record != tc.wantRecord {
				t.Errorf("Record = %d, want %d", te.Record, tc.wantRecord)
			}
			if te.Offset != tc.wantOffset {
				t.Errorf("Offset = %d, want %d", te.Offset, tc.wantOffset)
			}
			// The error latches: Next stays closed and Err stable.
			if _, ok := s.Next(); ok {
				t.Error("Next succeeded after a latched error")
			}
		})
	}
}

// TestFileSourceTruncatedHeader covers a file shorter than the header.
func TestFileSourceTruncatedHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.rnrt")
	if err := os.WriteFile(path, []byte("RNRT\x01\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenFile(path)
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("errors.Is(err, ErrBadTrace) = false for %v", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("errors.Is(err, io.ErrUnexpectedEOF) = false for %v", err)
	}
}

// TestReadTruncated mirrors the FileSource contract for the in-memory
// Read path.
func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Record{Exec(1), Exec(2)}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:16+32+4] // header + record 0 + 4 bytes of record 1
	_, err := Read(bytes.NewReader(cut))
	if !errors.Is(err, io.ErrUnexpectedEOF) || !errors.Is(err, ErrBadTrace) {
		t.Fatalf("Read error %v does not match ErrUnexpectedEOF+ErrBadTrace", err)
	}
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("errors.As(*TruncatedError) = false for %v", err)
	}
	if te.Record != 1 || te.Offset != 16+32 {
		t.Errorf("TruncatedError = record %d offset %d, want record 1 offset 48", te.Record, te.Offset)
	}
}
