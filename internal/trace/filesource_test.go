package trace

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestFileSourceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := randomRecords(500, rng)
	path := filepath.Join(t.TempDir(), "t.rnrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Remaining() != 500 {
		t.Fatalf("Remaining = %d", s.Remaining())
	}
	for i, want := range recs {
		got, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended at %d: %v", i, s.Err())
		}
		if got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("Next past the end returned ok")
	}
	if s.Err() != nil {
		t.Errorf("clean drain left error %v", s.Err())
	}
}

func TestFileSourceTruncation(t *testing.T) {
	recs := []Record{Exec(1), Load(1, 64, 8, -1), Exec(2)}
	path := filepath.Join(t.TempDir(), "t.rnrt")
	f, _ := os.Create(path)
	if err := Write(f, recs); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Chop the last record in half.
	if err := os.Truncate(path, 16+32*2+10); err != nil {
		t.Fatal(err)
	}
	s, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("read %d records from truncated file, want 2", n)
	}
	if !errors.Is(s.Err(), ErrBadTrace) {
		t.Errorf("Err = %v, want ErrBadTrace", s.Err())
	}
}

func TestFileSourceRejectsGarbageHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.rnrt")
	os.WriteFile(path, []byte("definitely not a trace"), 0o644)
	if _, err := OpenFile(path); !errors.Is(err, ErrBadTrace) {
		t.Errorf("OpenFile = %v, want ErrBadTrace", err)
	}
	if _, err := OpenFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("OpenFile accepted a missing file")
	}
}
