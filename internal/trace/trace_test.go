package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"rnrsim/internal/mem"
)

func TestBuilderCoalescesExec(t *testing.T) {
	b := NewBuilder(0)
	b.Exec(3)
	b.Exec(4)
	b.Load(1, 0x100, 8, 0)
	b.Exec(0) // no-op
	b.Exec(2)
	recs := b.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3: %v", len(recs), recs)
	}
	if recs[0].Count != 7 {
		t.Errorf("coalesced exec count = %d, want 7", recs[0].Count)
	}
	if recs[2].Count != 2 {
		t.Errorf("trailing exec count = %d, want 2", recs[2].Count)
	}
	if b.Instructions() != 7+1+2 {
		t.Errorf("Instructions() = %d, want 10", b.Instructions())
	}
}

func TestBuilderRnRSequence(t *testing.T) {
	al := mem.NewAllocator(0x100000)
	seq := al.AllocPage("seq", 1<<16)
	div := al.AllocPage("div", 1<<10)

	b := NewBuilder(0)
	b.RnRInit(seq, div, 512)
	b.AddrBaseSet(0, 0xdead000, 4096)
	b.AddrBaseEnable(0)
	b.RecordStart()
	b.Replay()
	b.Pause()
	b.Resume()
	b.PrefetchEnd()
	b.RnREnd()

	want := []Marker{
		MarkInit, MarkSeqTable, MarkDivTable, MarkWindowSize,
		MarkAddrBaseSet, MarkAddrBaseEnable, MarkRecordStart, MarkReplay,
		MarkPause, MarkResume, MarkPrefetchEnd, MarkEnd,
	}
	recs := b.Records()
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, m := range want {
		if recs[i].Kind != KindMarker || recs[i].Marker != m {
			t.Errorf("record %d = %v, want marker %v", i, recs[i], m)
		}
	}
	if recs[1].Addr != seq.Base || recs[1].Count != seq.Size {
		t.Errorf("seq table record = %v, want base %#x size %d", recs[1], uint64(seq.Base), seq.Size)
	}
	if recs[3].Count != 512 {
		t.Errorf("window size record = %v, want count 512", recs[3])
	}
	if recs[4].Addr != 0xdead000 || recs[4].Count != 4096 || recs[4].Aux != 0 {
		t.Errorf("addrbase.set record = %v", recs[4])
	}
}

func TestSliceSource(t *testing.T) {
	recs := []Record{Exec(5), Load(1, 64, 8, -1), Store(2, 128, 8, 0)}
	s := NewSliceSource(recs)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	var got []Record
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("drained %v, want %v", got, recs)
	}
	if _, ok := s.Next(); ok {
		t.Error("Next after drain returned ok")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r.Kind != KindExec {
		t.Errorf("after Reset got %v,%v", r, ok)
	}
}

func randomRecords(n int, rng *rand.Rand) []Record {
	recs := make([]Record, n)
	for i := range recs {
		switch rng.Intn(4) {
		case 0:
			recs[i] = Exec(uint64(rng.Intn(1000) + 1))
		case 1:
			recs[i] = Load(rng.Uint64(), mem.Addr(rng.Uint64()), 8, int32(rng.Intn(8)-1))
		case 2:
			recs[i] = Store(rng.Uint64(), mem.Addr(rng.Uint64()), 8, -1)
		default:
			recs[i] = Mark(Marker(rng.Intn(int(MarkROIEnd)+1)), mem.Addr(rng.Uint64()), rng.Uint64(), int32(rng.Int31()))
		}
	}
	return recs
}

func TestIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 7, 1000} {
		recs := randomRecords(n, rng)
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			t.Fatalf("Write(%d records): %v", n, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read(%d records): %v", n, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("round trip count %d != %d", len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
			}
		}
	}
}

func TestIORoundTripProperty(t *testing.T) {
	prop := func(pc, addr, count uint64, aux int32, kindSel, markSel uint8) bool {
		rec := Record{
			Kind:   Kind(kindSel % 4),
			Marker: Marker(markSel % uint8(MarkROIEnd+1)),
			PC:     pc,
			Addr:   mem.Addr(addr),
			Count:  count,
			Aux:    aux,
		}
		var buf bytes.Buffer
		if err := Write(&buf, []Record{rec}); err != nil {
			return false
		}
		got, err := Read(&buf)
		return err == nil && len(got) == 1 && got[0] == rec
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("XXXX\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"),     // bad magic
		[]byte("RNRT\x99\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00"),     // bad version
		[]byte("RNRT\x01\x00\x00\x00\x05\x00\x00\x00\x00\x00\x00\x00\x01"), // truncated records
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("case %d: err = %v, want ErrBadTrace", i, err)
		}
	}
}

func TestRecordInstructionsAndString(t *testing.T) {
	if got := Exec(10).Instructions(); got != 10 {
		t.Errorf("Exec(10).Instructions() = %d", got)
	}
	if got := Load(1, 2, 8, -1).Instructions(); got != 1 {
		t.Errorf("load Instructions() = %d", got)
	}
	if got := Mark(MarkReplay, 0, 0, 0).Instructions(); got != 1 {
		t.Errorf("marker Instructions() = %d", got)
	}
	// String methods should not panic and should name things sensibly.
	for _, s := range []string{Exec(1).String(), Load(1, 2, 3, 4).String(), Mark(MarkPause, 0, 0, 0).String()} {
		if s == "" {
			t.Error("empty String()")
		}
	}
	if KindLoad.String() != "load" || MarkReplay.String() != "state.replay" {
		t.Errorf("names: %q %q", KindLoad, MarkReplay)
	}
}
