package cache

// reqRing is a growable ring-buffer deque of queued requests. The input
// queues are hot: every cache is ticked every cycle, and a structural
// stall (MSHRs full) re-queues the blocked request at the head. The
// previous slice-based queues paid for both patterns — popping the head
// as q = q[1:] leaks capacity so every enqueue eventually reallocates,
// and re-queueing at the head as append([]queued{x}, q...) copies the
// whole queue per stall (15% of total runtime in the pre-optimisation
// cpuprofile of cmd/experiments). The ring makes pushFront, pushBack and
// popFront all O(1) amortised with zero steady-state allocations.
type reqRing struct {
	buf  []queued
	head int
	n    int
}

// len returns the number of queued entries.
func (q *reqRing) len() int { return q.n }

// front returns a pointer to the oldest entry; q must be non-empty.
func (q *reqRing) front() *queued { return &q.buf[q.head] }

// popFront removes and returns the oldest entry; q must be non-empty.
func (q *reqRing) popFront() queued {
	e := q.buf[q.head]
	q.buf[q.head] = queued{} // drop the request reference for the GC
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return e
}

// pushBack appends an entry at the tail.
func (q *reqRing) pushBack(e queued) {
	if q.n == len(q.buf) {
		q.grow()
	}
	tail := q.head + q.n
	if tail >= len(q.buf) {
		tail -= len(q.buf)
	}
	q.buf[tail] = e
	q.n++
}

// pushFront re-queues an entry at the head (structural-stall retry), so
// request ordering is preserved without copying the queue.
func (q *reqRing) pushFront(e queued) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.head--
	if q.head < 0 {
		q.head = len(q.buf) - 1
	}
	q.buf[q.head] = e
	q.n++
}

// grow doubles the backing array, compacting entries to the front.
func (q *reqRing) grow() {
	capNew := len(q.buf) * 2
	if capNew < 8 {
		capNew = 8
	}
	buf := make([]queued, capNew)
	for i := 0; i < q.n; i++ {
		idx := q.head + i
		if idx >= len(q.buf) {
			idx -= len(q.buf)
		}
		buf[i] = q.buf[idx]
	}
	q.buf = buf
	q.head = 0
}
