package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rnrsim/internal/mem"
)

// TestNoRequestLostProperty drives random access mixes through a two-level
// hierarchy and checks the fundamental liveness invariant: every request
// completes exactly once, regardless of queue pressure, MSHR contention,
// merges and evictions.
func TestNoRequestLostProperty(t *testing.T) {
	prop := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l1, l2, m := twoLevel(256, 1024, uint64(rng.Intn(80)+5))
		n := int(nOps)%200 + 1

		completions := 0
		double := false
		issued := 0
		for cycle := uint64(1); cycle < 100000; cycle++ {
			if issued < n && rng.Intn(3) == 0 {
				typ := mem.ReqLoad
				if rng.Intn(4) == 0 {
					typ = mem.ReqStore
				}
				addr := mem.Addr(rng.Intn(64)) * mem.LineSize * mem.Addr(rng.Intn(8)+1)
				r := mem.NewRequest(typ, addr, uint64(rng.Intn(16)), 0, cycle)
				seen := false
				r.Done = func(uint64) {
					if seen {
						double = true
					}
					seen = true
					completions++
				}
				if l1.TryEnqueue(r) {
					issued++
				}
			}
			l1.Tick(cycle)
			l2.Tick(cycle)
			m.Tick(cycle)
			if issued == n && completions == n &&
				l1.Pending() == 0 && l2.Pending() == 0 {
				break
			}
		}
		return completions == n && !double
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPrefetchNeverBlocksDemandProperty mixes aggressive prefetching with
// demand traffic: demands must all complete even when the prefetcher
// floods the queues.
func TestPrefetchNeverBlocksDemandProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(testConfig(2048, 4))
		m := &fakeMemory{latency: uint64(rng.Intn(100) + 20)}
		c.SetLower(m)

		const n = 40
		completions := 0
		issued := 0
		for cycle := uint64(1); cycle < 100000; cycle++ {
			// Flood with prefetches every cycle.
			for i := 0; i < 4; i++ {
				pf := mem.NewRequest(mem.ReqPrefetch, mem.Addr(rng.Intn(4096))*mem.LineSize, 0, 0, cycle)
				c.TryPrefetch(pf)
			}
			if issued < n && cycle%5 == 0 {
				r := mem.NewRequest(mem.ReqLoad, mem.Addr(rng.Intn(512))*mem.LineSize, 1, 0, cycle)
				r.Done = func(uint64) { completions++ }
				if c.TryEnqueue(r) {
					issued++
				}
			}
			c.Tick(cycle)
			m.Tick(cycle)
			if issued == n && completions == n {
				return true
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestLRUVictimProperty: after any access sequence, a hit on every line of
// a set followed by one miss must evict the line whose hit was earliest.
func TestLRUVictimProperty(t *testing.T) {
	cfg := testConfig(mem.LineSize*4, 4) // one set, four ways
	c := New(cfg)
	m := &fakeMemory{latency: 3}
	c.SetLower(m)

	lines := []mem.Addr{0x0, 0x1000, 0x2000, 0x3000} // all map to set 0
	for _, l := range lines {
		var d uint64
		c.TryEnqueue(newLoad(l, 1, &d))
		run(c, m, func() bool { return d != 0 }, 200)
	}
	// Touch in a known order: 0x1000 becomes LRU.
	for _, l := range []mem.Addr{0x1000, 0x0, 0x2000, 0x3000} {
		var d uint64
		c.TryEnqueue(newLoad(l, 2, &d))
		run(c, m, func() bool { return d != 0 }, 200)
	}
	var d uint64
	c.TryEnqueue(newLoad(0x4000, 3, &d))
	run(c, m, func() bool { return d != 0 }, 200)
	if c.Lookup(0x1000) {
		t.Error("LRU line survived the conflict miss")
	}
	for _, l := range []mem.Addr{0x0, 0x2000, 0x3000, 0x4000} {
		if !c.Lookup(l) {
			t.Errorf("line %#x wrongly evicted", uint64(l))
		}
	}
}

func TestInvalidateAllEmptiesCache(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 3}
	c.SetLower(m)
	for i := 0; i < 10; i++ {
		var d uint64
		c.TryEnqueue(newLoad(mem.Addr(i)*mem.LineSize, 1, &d))
		run(c, m, func() bool { return d != 0 }, 100)
	}
	c.InvalidateAll()
	for i := 0; i < 10; i++ {
		if c.Lookup(mem.Addr(i) * mem.LineSize) {
			t.Fatalf("line %d survived InvalidateAll", i)
		}
	}
	// The cache must remain fully functional afterwards.
	var d uint64
	c.TryEnqueue(newLoad(0x0, 1, &d))
	run(c, m, func() bool { return d != 0 }, 100)
	if d == 0 || !c.Lookup(0x0) {
		t.Error("cache broken after InvalidateAll")
	}
}
