package cache

import (
	"testing"

	"rnrsim/internal/mem"
)

func invCacheConfig() Config {
	return Config{
		Name: "T", SizeBytes: 1024, Ways: 2, Latency: 1,
		MSHRs: 4, ReadQ: 4, PrefQ: 4, WriteQ: 4, Bandwidth: 2,
	}
}

// fillLine drives one demand load through an unconnected cache (the
// memoryless bottom completes misses immediately) until it is resident.
func fillLine(t *testing.T, c *Cache, line mem.Addr) {
	t.Helper()
	r := mem.NewRequest(mem.ReqLoad, line, 0x40, 0, 0)
	if !c.TryEnqueue(r) {
		t.Fatalf("enqueue of %#x rejected", uint64(line))
	}
	for cyc := uint64(1); cyc < 16 && !c.Lookup(line); cyc++ {
		c.Tick(cyc)
	}
	if !c.Lookup(line) {
		t.Fatalf("line %#x never became resident", uint64(line))
	}
}

func TestInvalidateDropsSingleLine(t *testing.T) {
	c := New(invCacheConfig())
	a, b := mem.Addr(0x1000), mem.Addr(0x2000)
	fillLine(t, c, a)
	fillLine(t, c, b)
	c.TakeWakeDirty()
	if !c.Invalidate(a) {
		t.Fatal("Invalidate of a resident line returned false")
	}
	if c.Lookup(a) {
		t.Fatal("line still resident after Invalidate")
	}
	if !c.Lookup(b) {
		t.Fatal("Invalidate dropped an unrelated line")
	}
	if !c.TakeWakeDirty() {
		t.Fatal("Invalidate did not set the wake-dirty flag")
	}
	if c.Invalidate(a) {
		t.Fatal("Invalidate of an absent line returned true")
	}
}

func TestInvalidateClosesUnusedPrefetchLifecycle(t *testing.T) {
	c := New(invCacheConfig())
	rec := &countingLifecycle{}
	c.Lifecycle = rec
	line := mem.Addr(0x3000)
	if !c.TryPrefetch(mem.NewRequest(mem.ReqPrefetch, line, 0, 0, 0)) {
		t.Fatal("prefetch rejected")
	}
	for cyc := uint64(1); cyc < 16 && !c.Lookup(line); cyc++ {
		c.Tick(cyc)
	}
	evictedBefore := rec.evictedUnused
	c.Invalidate(line)
	if rec.evictedUnused != evictedBefore+1 {
		t.Fatalf("unused-prefetch lifecycle not closed: %d -> %d",
			evictedBefore, rec.evictedUnused)
	}
}

func TestForEachResidentEnumeratesExactly(t *testing.T) {
	c := New(invCacheConfig())
	want := map[mem.Addr]bool{0x1000: true, 0x2040: true, 0x3080: true}
	for l := range want {
		fillLine(t, c, l)
	}
	got := map[mem.Addr]bool{}
	c.ForEachResident(func(l mem.Addr) { got[l] = true })
	if len(got) != len(want) {
		t.Fatalf("resident set = %v, want %v", got, want)
	}
	for l := range want {
		if !got[l] {
			t.Fatalf("resident set %v missing %#x", got, uint64(l))
		}
	}
}

// countingLifecycle is a minimal LifecycleObserver for the invalidation
// tests.
type countingLifecycle struct {
	evictedUnused int
}

func (c *countingLifecycle) PrefetchIssued(mem.Addr, uint64, int)       {}
func (c *countingLifecycle) PrefetchRedundant(mem.Addr, uint64)         {}
func (c *countingLifecycle) PrefetchLateMerge(mem.Addr, uint64, uint64) {}
func (c *countingLifecycle) PrefetchFilled(mem.Addr, uint64, bool)      {}
func (c *countingLifecycle) PrefetchDemandHit(mem.Addr, uint64)         {}
func (c *countingLifecycle) PrefetchEvictedUnused(mem.Addr, uint64)     { c.evictedUnused++ }
