package cache

import (
	"testing"

	"rnrsim/internal/mem"
)

// twoLevel builds an L1 -> L2 -> fakeMemory stack for hierarchy tests.
func twoLevel(l1Size, l2Size uint64, lat uint64) (*Cache, *Cache, *fakeMemory) {
	l2 := New(Config{
		Name: "L2", SizeBytes: l2Size, Ways: 4, Latency: 4,
		MSHRs: 8, ReadQ: 16, PrefQ: 16, WriteQ: 16, Bandwidth: 2,
	})
	l1 := New(Config{
		Name: "L1", SizeBytes: l1Size, Ways: 2, Latency: 2,
		MSHRs: 4, ReadQ: 16, PrefQ: 4, WriteQ: 16, Bandwidth: 2,
	})
	m := &fakeMemory{latency: lat}
	l2.SetLower(m)
	l1.SetLower(l2)
	return l1, l2, m
}

func drive2(l1, l2 *Cache, m *fakeMemory, budget int, until func() bool) {
	var now uint64
	for i := 0; i < budget; i++ {
		now++
		l1.Tick(now)
		l2.Tick(now)
		m.Tick(now)
		if until() {
			return
		}
	}
}

func TestTwoLevelMissFillsBoth(t *testing.T) {
	l1, l2, m := twoLevel(256, 4096, 30)
	var done uint64
	l1.TryEnqueue(newLoad(0x4000, 1, &done))
	drive2(l1, l2, m, 300, func() bool { return done != 0 })
	if done == 0 {
		t.Fatal("load never completed")
	}
	if !l1.Lookup(0x4000) || !l2.Lookup(0x4000) {
		t.Error("line not installed at both levels")
	}
	if m.Reads != 1 {
		t.Errorf("memory reads = %d", m.Reads)
	}
	// A second access must be an L1 hit with no L2 traffic.
	l2Accesses := l2.Stats.DemandAccesses
	done = 0
	l1.TryEnqueue(newLoad(0x4000, 1, &done))
	drive2(l1, l2, m, 100, func() bool { return done != 0 })
	if l2.Stats.DemandAccesses != l2Accesses {
		t.Error("L1 hit leaked an access to L2")
	}
}

func TestDirtyEvictionPropagatesThroughHierarchy(t *testing.T) {
	// Store into a line at L1, then thrash L1 so the dirty line descends
	// to L2; thrash L2 so it descends to memory.
	l1, l2, m := twoLevel(128, 256, 10) // L1: 2 lines, L2: 4 lines
	var done uint64
	st := mem.NewRequest(mem.ReqStore, 0x0, 1, 0, 0)
	st.Done = func(cy uint64) { done = cy }
	l1.TryEnqueue(st)
	drive2(l1, l2, m, 200, func() bool { return done != 0 })

	// Fill both caches with conflicting lines.
	for i := 1; i <= 8; i++ {
		var d uint64
		l1.TryEnqueue(newLoad(mem.Addr(i*0x1000), uint64(i), &d))
		drive2(l1, l2, m, 400, func() bool { return d != 0 })
	}
	drive2(l1, l2, m, 500, func() bool { return m.Writes > 0 })
	if m.Writes == 0 {
		t.Error("dirty line never reached memory through both levels")
	}
}

func TestWritebackUpdatesResidentLowerLine(t *testing.T) {
	l1, l2, m := twoLevel(128, 4096, 10)
	// Load a line so it is resident in L2, dirty it at L1, evict from L1:
	// the writeback must mark the L2 copy dirty, not go to memory.
	var done uint64
	st := mem.NewRequest(mem.ReqStore, 0x40, 1, 0, 0)
	st.Done = func(cy uint64) { done = cy }
	l1.TryEnqueue(st)
	drive2(l1, l2, m, 200, func() bool { return done != 0 })
	for i := 1; i <= 4; i++ { // evict 0x40 from the 2-line L1
		var d uint64
		l1.TryEnqueue(newLoad(mem.Addr(0x40+i*128), uint64(i), &d))
		drive2(l1, l2, m, 300, func() bool { return d != 0 })
	}
	drive2(l1, l2, m, 100, func() bool { return false })
	if m.Writes != 0 {
		t.Errorf("writeback bypassed a resident L2 line to memory (%d writes)", m.Writes)
	}
	if l2.Stats.Writebacks != 0 && m.Writes != 0 {
		t.Error("inconsistent writeback accounting")
	}
}

func TestOnEvictHookReportsPrefetchState(t *testing.T) {
	c := New(testConfig(mem.LineSize*2, 2)) // one set, two ways
	m := &fakeMemory{latency: 5}
	c.SetLower(m)
	type evict struct {
		line   mem.Addr
		unused bool
	}
	var evicts []evict
	c.OnEvict = func(line mem.Addr, unused bool, cycle uint64) {
		evicts = append(evicts, evict{line, unused})
	}
	// Prefetch a line, never touch it, then force two demand fills.
	c.TryPrefetch(mem.NewRequest(mem.ReqPrefetch, 0x0, 0, 0, 0))
	run(c, m, func() bool { return c.Lookup(0x0) }, 100)
	for i := 1; i <= 2; i++ {
		var d uint64
		c.TryEnqueue(newLoad(mem.Addr(i*0x1000), uint64(i), &d))
		run(c, m, func() bool { return d != 0 }, 200)
	}
	found := false
	for _, e := range evicts {
		if e.line == 0x0 && e.unused {
			found = true
		}
	}
	if !found {
		t.Errorf("unused-prefetch eviction not reported: %+v", evicts)
	}
}

func TestPrefetchBandwidthIndependentOfDemand(t *testing.T) {
	// With a saturated demand queue, prefetches must still drain at
	// PrefBandwidth per cycle rather than starving.
	cfg := testConfig(1<<16, 4)
	cfg.Bandwidth = 1
	cfg.PrefBandwidth = 1
	cfg.MSHRs = 16
	c := New(cfg)
	m := &fakeMemory{latency: 5}
	c.SetLower(m)

	var sink [8]uint64
	for i := range sink {
		c.TryEnqueue(newLoad(mem.Addr(0x100*(i+1)), uint64(i), &sink[i]))
	}
	for i := 0; i < 4; i++ {
		c.TryPrefetch(mem.NewRequest(mem.ReqPrefetch, mem.Addr(0x9000+i*0x40), 0, 0, 0))
	}
	run(c, m, func() bool { return false }, 50)
	if c.Stats.PrefetchFills == 0 {
		t.Error("prefetches starved behind demand traffic")
	}
}

func TestMergedDemandCountsOnce(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 60}
	c.SetLower(m)
	var d [3]uint64
	for i := range d {
		c.TryEnqueue(newLoad(0x2000, uint64(i), &d[i]))
	}
	run(c, m, func() bool { return d[0] != 0 && d[1] != 0 && d[2] != 0 }, 400)
	if c.Stats.DemandMisses != 1 || c.Stats.DemandMerges != 2 {
		t.Errorf("misses=%d merges=%d, want 1/2", c.Stats.DemandMisses, c.Stats.DemandMerges)
	}
	if c.Stats.MissServiceCnt != 1 {
		t.Errorf("miss service count = %d, want 1 fill", c.Stats.MissServiceCnt)
	}
}

func TestOccupancyReporting(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 500}
	c.SetLower(m)
	var d uint64
	c.TryEnqueue(newLoad(0x100, 1, &d))
	c.Tick(3)
	r, p, w, ms := c.Occupancy()
	if r != 0 || p != 0 || w != 0 || ms != 1 {
		t.Errorf("occupancy after miss = r%d p%d w%d m%d, want MSHR 1", r, p, w, ms)
	}
}
