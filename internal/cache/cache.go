// Package cache implements the set-associative, write-back, write-allocate
// caches of the simulated memory hierarchy (Table II of the paper): private
// L1s and L2s per core and a shared LLC. Caches are ticked once per CPU
// cycle, accept demand, prefetch and writeback traffic through bounded FIFO
// queues (demand has priority over prefetch, as in ChampSim), track misses
// in MSHRs that merge same-line requests, and fill by installing lines and
// cascading completions upward through request callbacks.
package cache

import (
	"fmt"

	"rnrsim/internal/mem"
	"rnrsim/internal/telemetry"
)

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes uint64 // total data capacity
	Ways      int    // associativity
	Latency   uint64 // tag+data access latency in cycles
	MSHRs     int    // outstanding misses
	ReadQ     int    // demand input queue capacity
	PrefQ     int    // prefetch input queue capacity
	WriteQ    int    // writeback input queue capacity
	Bandwidth int    // demand lookups per cycle
	// PrefBandwidth is the prefetch-queue port width (lookups per cycle);
	// 0 defaults to Bandwidth. The queues have separate ports, as in
	// ChampSim, so demand traffic shapes prefetch latency, not liveness.
	PrefBandwidth int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int {
	s := int(c.SizeBytes / mem.LineSize / uint64(c.Ways))
	if s < 1 {
		s = 1
	}
	return s
}

func (c Config) validate() error {
	if c.Ways < 1 || c.SizeBytes < mem.LineSize || c.Latency == 0 ||
		c.MSHRs < 1 || c.ReadQ < 1 || c.WriteQ < 1 || c.Bandwidth < 1 {
		return fmt.Errorf("cache %q: invalid config %+v", c.Name, c)
	}
	if s := c.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("cache %q: %d sets is not a power of two", c.Name, s)
	}
	return nil
}

// AccessInfo is delivered to the OnAccess hook for every lookup the cache
// performs. Prefetchers train on these events; the RnR record engine uses
// Hit/Merged/StructFlag to capture the L2 miss sequence.
type AccessInfo struct {
	Cycle      uint64
	Line       mem.Addr
	PC         uint64
	Core       int
	Type       mem.ReqType
	Hit        bool
	Merged     bool // missed, but merged into an in-flight MSHR
	PrefHit    bool // hit on a still-unused prefetched line
	RegionID   int
	StructFlag bool
}

// Stats aggregates the per-level counters the evaluation needs.
type Stats struct {
	DemandAccesses uint64
	DemandHits     uint64
	DemandMisses   uint64 // true misses (excludes MSHR merges)
	DemandMerges   uint64

	PrefetchIssued    uint64 // prefetch requests accepted into the cache
	PrefetchDropped   uint64 // dropped: queue full / duplicate in flight
	PrefetchFills     uint64 // lines installed by prefetch, unused at fill
	PrefetchFillsDone uint64 // all fills fetched by a prefetch MSHR (incl. demanded late)
	PrefetchUseful    uint64 // prefetched lines referenced by demand before evict
	PrefetchLate      uint64 // demand merged into an in-flight prefetch MSHR
	PrefetchEvicted   uint64 // prefetched lines evicted unreferenced

	Writebacks uint64
	Evictions  uint64

	// MissServiceSum/Cnt measure MSHR allocation-to-fill latency.
	MissServiceSum uint64
	MissServiceCnt uint64
}

// AvgMissService returns the mean MSHR residency in cycles.
func (s Stats) AvgMissService() float64 {
	if s.MissServiceCnt == 0 {
		return 0
	}
	return float64(s.MissServiceSum) / float64(s.MissServiceCnt)
}

type line struct {
	tag        mem.Addr // line-aligned address; valid when != invalidTag
	dirty      bool
	prefetched bool // installed by prefetch and not yet demanded
	lastUse    uint64
}

const invalidTag = ^mem.Addr(0)

type mshr struct {
	allocAt  uint64
	line     mem.Addr
	waiters  []*mem.Request
	prefetch bool // allocated by a prefetch (may be upgraded by a demand)
	demanded bool
	sent     bool // child request handed to the lower level
	child    *mem.Request
	owner    *Cache
	// boundFill caches the fillDone method value: binding a method
	// allocates, so it happens once per mshr object, not once per miss.
	boundFill func(cycle uint64)
	// childReq is the storage child points at: embedding the miss request
	// in the MSHR makes the miss path one arena carve instead of three
	// heap allocations (MSHR, request, fill closure) — the simulator's
	// hottest allocation site.
	childReq mem.Request
}

// fillDone is the child request's completion callback. A method value on
// the arena-carved MSHR replaces the per-miss closure allocation.
func (m *mshr) fillDone(cycle uint64) { m.owner.fill(m, cycle) }

// newMSHR recycles an MSHR from the free list, falling back to chunked
// arena carving. Recycling keeps the waiter slice's backing array and
// the bound fill callback alive across misses, making the steady-state
// miss path allocation-free.
func (c *Cache) newMSHR() *mshr {
	if n := len(c.mshrFree); n > 0 {
		m := c.mshrFree[n-1]
		c.mshrFree = c.mshrFree[:n-1]
		m.waiters = m.waiters[:0]
		m.sent = false
		return m
	}
	if len(c.arena) == 0 {
		c.arena = make([]mshr, 128)
	}
	m := &c.arena[0]
	c.arena = c.arena[1:]
	m.boundFill = m.fillDone
	return m
}

type queued struct {
	req   *mem.Request
	ready uint64 // cycle at which the lookup may proceed (enqueue + latency)
}

// Cache is one level of the hierarchy. Create with New, connect with
// SetLower, drive with TryEnqueue/TryPrefetch and Tick.
type Cache struct {
	cfg      Config
	sets     []line // len = nsets*ways, set-major
	nsets    int
	setMask  mem.Addr
	lower    mem.Backend
	clock    uint64
	readQ    reqRing
	prefQ    reqRing
	writeQ   reqRing
	mshrs    []*mshr       // active MSHRs; linear scan beats a map at <=128 entries
	arena    []mshr        // chunk allocator for MSHRs (see newMSHR)
	mshrFree []*mshr       // retired MSHRs available for reuse
	wbArena  []mem.Request // chunk allocator for eviction writebacks
	unsent   []*mshr       // MSHRs whose child could not be enqueued below yet
	// wakeDirty is set whenever the cache receives external input (an
	// enqueue from above, a fill from below, an invalidation) — anything
	// that can move its Wakeup earlier. The event scheduler clears it
	// when it recomputes the cached wakeup; see TakeWakeDirty.
	wakeDirty bool
	// mshrAllocs counts every MSHR ever allocated; the audit layer checks
	// the conservation law mshrAllocs == MissServiceCnt + len(mshrs)
	// (every miss is either filled or still in flight).
	mshrAllocs uint64
	Stats      Stats
	OnAccess   func(AccessInfo)
	OnFill     func(line mem.Addr, prefetch bool, cycle uint64)
	OnEvict    func(line mem.Addr, wasPrefetchedUnused bool, cycle uint64)
	// Lifecycle, when non-nil, receives per-prefetch lifecycle events
	// (see LifecycleObserver). Purely observational: it must not feed
	// back into cache behaviour, so architectural state is identical
	// with and without it.
	Lifecycle LifecycleObserver
}

// New builds a cache from cfg. It panics on an invalid configuration, which
// is a programming error in the experiment setup, not a runtime condition.
func New(cfg Config) *Cache {
	if cfg.PrefQ < 1 {
		cfg.PrefQ = 1
	}
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	n := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		sets:    make([]line, n*cfg.Ways),
		nsets:   n,
		setMask: mem.Addr(n - 1),
		mshrs:   make([]*mshr, 0, cfg.MSHRs),
	}
	for i := range c.sets {
		c.sets[i].tag = invalidTag
	}
	return c
}

// SetLower connects the next level down (another cache or the DRAM
// controller).
func (c *Cache) SetLower(b mem.Backend) { c.lower = b }

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(lineAddr mem.Addr) int {
	return int((lineAddr >> mem.LineShift) & c.setMask)
}

func (c *Cache) setSlice(lineAddr mem.Addr) []line {
	i := c.setIndex(lineAddr) * c.cfg.Ways
	return c.sets[i : i+c.cfg.Ways]
}

// Lookup probes the tag array without side effects. Used by tests and by
// prefetch filters that avoid prefetching resident lines.
func (c *Cache) Lookup(lineAddr mem.Addr) bool {
	for i := range c.setSlice(lineAddr) {
		if c.setSlice(lineAddr)[i].tag == lineAddr {
			return true
		}
	}
	return false
}

// InFlight reports whether an MSHR already tracks the line.
func (c *Cache) InFlight(lineAddr mem.Addr) bool {
	ok := c.findMSHR(lineAddr) != nil
	return ok
}

// MSHRFree reports whether a new miss could currently allocate an MSHR.
func (c *Cache) MSHRFree() bool { return len(c.mshrs) < c.cfg.MSHRs }

// findMSHR returns the in-flight MSHR for lineAddr, or nil. MSHR counts
// are small (8-128), so an unordered linear scan is faster than the map
// it replaced on the miss path.
func (c *Cache) findMSHR(lineAddr mem.Addr) *mshr {
	for _, m := range c.mshrs {
		if m.line == lineAddr {
			return m
		}
	}
	return nil
}

// removeMSHR drops m from the active list (order is not meaningful).
func (c *Cache) removeMSHR(m *mshr) {
	for i, x := range c.mshrs {
		if x == m {
			last := len(c.mshrs) - 1
			c.mshrs[i] = c.mshrs[last]
			c.mshrs[last] = nil
			c.mshrs = c.mshrs[:last]
			return
		}
	}
}

// TryEnqueue accepts a demand or writeback request into the cache's input
// queues. It implements mem.Backend so caches stack naturally. Prefetches
// arriving from above are routed into the prefetch queue.
func (c *Cache) TryEnqueue(r *mem.Request) bool {
	switch r.Type {
	case mem.ReqWriteback:
		if c.writeQ.len() >= c.cfg.WriteQ {
			return false
		}
		c.writeQ.pushBack(queued{r, c.clock + c.cfg.Latency})
		c.wakeDirty = true
	case mem.ReqPrefetch:
		return c.TryPrefetch(r)
	default:
		if c.readQ.len() >= c.cfg.ReadQ {
			return false
		}
		c.readQ.pushBack(queued{r, c.clock + c.cfg.Latency})
		c.wakeDirty = true
	}
	return true
}

// TryPrefetch accepts a prefetch request. Locally-generated prefetches
// (no completion callback) that target a resident line or an in-flight
// miss are dropped (filtered). Prefetch *children* arriving from the
// level above carry a Done callback and must always flow through the
// lookup path so their originating MSHR gets its fill.
func (c *Cache) TryPrefetch(r *mem.Request) bool {
	if r.Done == nil && (c.Lookup(r.Line) || c.InFlight(r.Line)) {
		c.Stats.PrefetchDropped++
		if c.Lifecycle != nil {
			c.Lifecycle.PrefetchRedundant(r.Line, c.clock)
		}
		return true // filtered, but accepted from the issuer's perspective
	}
	if c.prefQ.len() >= c.cfg.PrefQ {
		c.Stats.PrefetchDropped++
		return false
	}
	c.prefQ.pushBack(queued{r, c.clock + c.cfg.Latency})
	c.wakeDirty = true
	c.Stats.PrefetchIssued++
	return true
}

// CanAcceptDemand implements mem.DemandCapacity: whether a demand
// TryEnqueue would currently be admitted to the read queue.
func (c *Cache) CanAcceptDemand() bool { return c.readQ.len() < c.cfg.ReadQ }

// Wakeup reports the earliest future cycle at which Tick could change
// state, or mem.WakeupNever when the cache is quiescent (possibly with
// MSHRs outstanding — fills are completion callbacks, not tick work).
// Each input queue is FIFO, so its head gates the whole queue. A head
// that is ready but structurally blocked is frozen, not busy: a demand
// head that would miss with every MSHR busy is retried by Tick each
// cycle, but the retry is a provable no-op (stats cancel out, only the
// head's requeue stamp churns — and that reconverges at the next real
// tick), and the prefetch loop breaks before touching its queue when
// MSHRs are below the demand reservation. Both unblock only via a fill,
// which is a completion callback after which wakeups are recomputed.
func (c *Cache) Wakeup(now uint64) uint64 {
	if len(c.unsent) > 0 {
		return now + 1 // blocked miss traffic is retried every cycle
	}
	w := mem.WakeupNever
	if c.readQ.n > 0 {
		if f := c.readQ.front(); f.ready > now {
			w = f.ready
		} else if len(c.mshrs) < c.cfg.MSHRs || c.Lookup(f.req.Line) ||
			c.InFlight(f.req.Line) {
			return now + 1 // hit, merge or MSHR allocation: real work next cycle
		}
		// else: fresh miss with MSHRs exhausted — frozen until a fill.
	}
	if c.prefQ.n > 0 {
		if f := c.prefQ.front(); f.ready > now {
			if f.ready < w {
				w = f.ready
			}
		} else {
			reserved := 4
			if reserved > c.cfg.MSHRs/2 {
				reserved = c.cfg.MSHRs / 2
			}
			if len(c.mshrs) < c.cfg.MSHRs-reserved {
				return now + 1
			}
			// else: Tick's prefetch loop breaks untouched — frozen.
		}
	}
	if c.writeQ.n > 0 {
		if f := c.writeQ.front(); f.ready > now {
			if f.ready < w {
				w = f.ready
			}
		} else {
			// A ready writeback may still be blocked below; the failed
			// apply is pure but cheap certainty isn't — simulate it.
			return now + 1
		}
	}
	return w
}

// AdvanceClock fast-forwards the internal clock over skipped idle
// cycles. The clock timestamps enqueues (ready = clock + latency) and
// posted completions, so before simulating cycle X after a jump it must
// read X-1 — exactly what a cycle-stepped Tick at X-1 would have left
// behind (Tick sets the clock before its idle early-exit, so this is
// the only effect the skipped ticks had).
func (c *Cache) AdvanceClock(now uint64) { c.clock = now }

// TakeWakeDirty reports and clears the external-input flag. The event
// scheduler calls it when deciding whether a cached Wakeup value is
// still valid; everything that can move the wakeup earlier (TryEnqueue,
// TryPrefetch, fill, InvalidateAll) sets the flag.
func (c *Cache) TakeWakeDirty() bool {
	d := c.wakeDirty
	c.wakeDirty = false
	return d
}

// Tick advances the cache by one cycle: it retries blocked miss traffic,
// performs up to Bandwidth lookups (demand before prefetch) and forwards
// writebacks.
func (c *Cache) Tick(now uint64) {
	c.clock = now
	// Idle early-exit: with every input queue empty and no blocked miss
	// traffic there is no per-cycle work — outstanding MSHR fills are
	// driven by the lower level's completion callbacks, not by ticking.
	// Most cache-cycles are idle (the LLC in particular), so this check
	// dominates the per-tick cost of the whole hierarchy.
	if c.readQ.n == 0 && c.prefQ.n == 0 && c.writeQ.n == 0 && len(c.unsent) == 0 {
		return
	}
	c.retryUnsent()

	budget := c.cfg.Bandwidth
	for budget > 0 && c.readQ.n > 0 && c.readQ.front().ready <= now {
		q := c.readQ.popFront()
		c.access(q.req, now)
		budget--
	}
	// The prefetch queue has its own port (as in ChampSim, where RQ and
	// PQ are processed every cycle); otherwise steady demand traffic
	// starves prefetching forever. Prefetches keep a few MSHRs reserved
	// for demands.
	prefBudget := c.cfg.PrefBandwidth
	if prefBudget == 0 {
		prefBudget = c.cfg.Bandwidth
	}
	for prefBudget > 0 && c.prefQ.n > 0 && c.prefQ.front().ready <= now {
		reserved := 4
		if reserved > c.cfg.MSHRs/2 {
			reserved = c.cfg.MSHRs / 2
		}
		if len(c.mshrs) >= c.cfg.MSHRs-reserved {
			break
		}
		q := c.prefQ.popFront()
		c.access(q.req, now)
		prefBudget--
	}
	// Writebacks are off the critical path but must keep pace with the
	// eviction rate or they clog the hierarchy.
	wbBudget := c.cfg.Bandwidth
	for wbBudget > 0 && c.writeQ.n > 0 && c.writeQ.front().ready <= now {
		if !c.applyWriteback(c.writeQ.front().req, now) {
			break
		}
		c.writeQ.popFront()
		wbBudget--
	}
}

// access performs one tag lookup and either completes a hit or allocates /
// merges an MSHR for a miss.
func (c *Cache) access(r *mem.Request, now uint64) {
	set := c.setSlice(r.Line)
	demand := r.Type.IsDemand()
	if demand {
		c.Stats.DemandAccesses++
	}

	for i := range set {
		if set[i].tag == r.Line {
			prefHit := set[i].prefetched
			set[i].lastUse = now
			if demand {
				c.Stats.DemandHits++
				if prefHit {
					c.Stats.PrefetchUseful++
					set[i].prefetched = false
					if c.Lifecycle != nil {
						c.Lifecycle.PrefetchDemandHit(r.Line, now)
					}
				}
				if r.Type == mem.ReqStore {
					set[i].dirty = true
				}
			} else if r.Type == mem.ReqPrefetch && r.Done == nil {
				// Residence check raced with install; nothing to do.
				c.Stats.PrefetchDropped++
				if c.Lifecycle != nil {
					c.Lifecycle.PrefetchRedundant(r.Line, now)
				}
			}
			c.notifyAccess(r, now, true, false, prefHit)
			r.Complete(now)
			return
		}
	}

	// Miss. Merge into an existing MSHR when possible.
	if m := c.findMSHR(r.Line); m != nil {
		if demand {
			c.Stats.DemandMerges++
			if m.prefetch && !m.demanded {
				// A demand caught up with an in-flight prefetch: the
				// prefetch was issued, just late.
				c.Stats.PrefetchLate++
				if c.Lifecycle != nil {
					c.Lifecycle.PrefetchLateMerge(r.Line, now, now-m.allocAt)
				}
			}
			m.demanded = true
			m.waiters = append(m.waiters, r)
		} else if r.Done != nil {
			// A prefetch child from above: it needs the data, so wait
			// for the in-flight fill like any other waiter.
			m.waiters = append(m.waiters, r)
		} else {
			// A local prefetch merging into an in-flight miss is a no-op.
			c.Stats.PrefetchDropped++
			if c.Lifecycle != nil {
				c.Lifecycle.PrefetchRedundant(r.Line, now)
			}
			r.Complete(now)
		}
		c.notifyAccess(r, now, false, true, false)
		return
	}

	if !c.MSHRFree() {
		// Structural stall: requeue at the head so ordering is preserved.
		if demand {
			c.Stats.DemandAccesses--
		}
		c.readdHead(r, now)
		return
	}

	if demand {
		c.Stats.DemandMisses++
	}
	c.notifyAccess(r, now, false, false, false)
	if c.Lifecycle != nil && r.Type == mem.ReqPrefetch && r.Done == nil {
		c.Lifecycle.PrefetchIssued(r.Line, now, len(c.mshrs))
	}

	m := c.newMSHR()
	m.line = r.Line
	m.prefetch = r.Type == mem.ReqPrefetch
	m.demanded = demand
	m.allocAt = now
	m.owner = c
	if r.Done != nil {
		m.waiters = append(m.waiters, r)
	} else if r.Type == mem.ReqPrefetch {
		// keep nothing; fill path uses the MSHR itself
	}
	m.childReq = mem.Request{
		Type:       childType(r.Type),
		Addr:       r.Line,
		Line:       r.Line,
		PC:         r.PC,
		Core:       r.Core,
		RegionID:   r.RegionID,
		StructFlag: r.StructFlag,
		Issue:      now,
	}
	child := &m.childReq
	child.Done = m.boundFill
	m.child = child
	c.mshrs = append(c.mshrs, m)
	c.mshrAllocs++
	if c.lower == nil || c.lower.TryEnqueue(child) {
		m.sent = c.lower != nil
		if c.lower == nil {
			// Memoryless bottom (tests only): complete immediately.
			c.fill(m, now+1)
		}
	} else {
		c.unsent = append(c.unsent, m)
	}
}

// childType maps an access type to the request type sent down on a miss.
// Stores become reads-for-ownership; everything else is preserved.
func childType(t mem.ReqType) mem.ReqType {
	if t == mem.ReqStore {
		return mem.ReqLoad
	}
	return t
}

// readdHead pushes a request back to the front of its queue after a
// structural stall.
func (c *Cache) readdHead(r *mem.Request, now uint64) {
	q := queued{r, now + 1}
	if r.Type == mem.ReqPrefetch {
		c.prefQ.pushFront(q)
	} else {
		c.readQ.pushFront(q)
	}
}

func (c *Cache) retryUnsent() {
	if len(c.unsent) == 0 || c.lower == nil {
		return
	}
	kept := c.unsent[:0]
	for _, m := range c.unsent {
		if !m.sent && c.lower.TryEnqueue(m.child) {
			m.sent = true
			continue
		}
		if !m.sent {
			kept = append(kept, m)
		}
	}
	c.unsent = kept
}

// fill installs the line delivered by the lower level and wakes waiters.
func (c *Cache) fill(m *mshr, now uint64) {
	c.wakeDirty = true
	c.removeMSHR(m)
	c.Stats.MissServiceSum += now - m.allocAt
	c.Stats.MissServiceCnt++
	c.install(m.line, m.prefetch && !m.demanded, now)
	if m.prefetch {
		c.Stats.PrefetchFillsDone++
		if !m.demanded {
			c.Stats.PrefetchFills++
		}
		if c.Lifecycle != nil {
			c.Lifecycle.PrefetchFilled(m.line, now, m.demanded)
		}
	}
	if c.OnFill != nil {
		c.OnFill(m.line, m.prefetch, now)
	}
	for _, w := range m.waiters {
		if w.Type == mem.ReqStore {
			c.markDirty(m.line)
		}
		w.Complete(now)
	}
	// The child request completed and every waiter was handed back, so
	// nothing below or above still points at this MSHR: recycle it.
	c.mshrFree = append(c.mshrFree, m)
}

// install places lineAddr into its set, evicting the LRU way.
func (c *Cache) install(lineAddr mem.Addr, prefetched bool, now uint64) {
	set := c.setSlice(lineAddr)
	victim := 0
	for i := range set {
		if set[i].tag == lineAddr {
			// Already present (e.g. a racing writeback installed it).
			set[i].lastUse = now
			return
		}
		if set[i].tag == invalidTag {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	v := &set[victim]
	if v.tag != invalidTag {
		c.evict(v, now)
	}
	*v = line{tag: lineAddr, prefetched: prefetched, lastUse: now}
}

func (c *Cache) evict(v *line, now uint64) {
	c.Stats.Evictions++
	unused := v.prefetched
	if unused {
		c.Stats.PrefetchEvicted++
		if c.Lifecycle != nil {
			c.Lifecycle.PrefetchEvictedUnused(v.tag, now)
		}
	}
	if c.OnEvict != nil {
		c.OnEvict(v.tag, unused, now)
	}
	if v.dirty && c.lower != nil {
		if len(c.wbArena) == 0 {
			c.wbArena = make([]mem.Request, 128)
		}
		wb := &c.wbArena[0]
		c.wbArena = c.wbArena[1:]
		*wb = mem.Request{Type: mem.ReqWriteback, Addr: v.tag, Line: v.tag, Core: -1, Issue: now}
		if !c.lower.TryEnqueue(wb) {
			// Model a bounded retry by dropping into our own write queue.
			c.writeQ.pushBack(queued{wb, now + 1})
		}
		c.Stats.Writebacks++
	}
}

// applyWriteback lands a writeback from the level above: update in place if
// resident, otherwise pass it down (non-inclusive hierarchy). Returns false
// if it must be retried because the lower level is full.
func (c *Cache) applyWriteback(r *mem.Request, now uint64) bool {
	set := c.setSlice(r.Line)
	for i := range set {
		if set[i].tag == r.Line {
			set[i].dirty = true
			set[i].lastUse = now
			return true
		}
	}
	if c.lower == nil {
		return true
	}
	return c.lower.TryEnqueue(r)
}

func (c *Cache) markDirty(lineAddr mem.Addr) {
	set := c.setSlice(lineAddr)
	for i := range set {
		if set[i].tag == lineAddr {
			set[i].dirty = true
			return
		}
	}
}

func (c *Cache) notifyAccess(r *mem.Request, now uint64, hit, merged, prefHit bool) {
	if c.OnAccess == nil || r.Type == mem.ReqWriteback {
		return
	}
	if r.Type == mem.ReqPrefetch {
		return // prefetchers do not train on their own traffic
	}
	c.OnAccess(AccessInfo{
		Cycle:      now,
		Line:       r.Line,
		PC:         r.PC,
		Core:       r.Core,
		Type:       r.Type,
		Hit:        hit,
		Merged:     merged,
		PrefHit:    prefHit,
		RegionID:   r.RegionID,
		StructFlag: r.StructFlag,
	})
}

// Pending returns the number of requests waiting in the input queues,
// useful for drain loops in tests and at end of simulation.
func (c *Cache) Pending() int {
	return c.readQ.len() + c.prefQ.len() + c.writeQ.len() + len(c.mshrs)
}

// Add accumulates other into s (used to aggregate private caches).
func (s *Stats) Add(other Stats) {
	s.DemandAccesses += other.DemandAccesses
	s.DemandHits += other.DemandHits
	s.DemandMisses += other.DemandMisses
	s.DemandMerges += other.DemandMerges
	s.PrefetchIssued += other.PrefetchIssued
	s.PrefetchDropped += other.PrefetchDropped
	s.PrefetchFills += other.PrefetchFills
	s.PrefetchFillsDone += other.PrefetchFillsDone
	s.PrefetchUseful += other.PrefetchUseful
	s.PrefetchLate += other.PrefetchLate
	s.PrefetchEvicted += other.PrefetchEvicted
	s.Writebacks += other.Writebacks
	s.Evictions += other.Evictions
	s.MissServiceSum += other.MissServiceSum
	s.MissServiceCnt += other.MissServiceCnt
}

// MPKI returns demand misses per thousand of the given instruction count.
func (s Stats) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.DemandMisses) / float64(instructions) * 1000
}

// Accuracy returns the fraction of issued prefetch fills that were useful.
func (s Stats) Accuracy() float64 {
	total := s.PrefetchUseful + s.PrefetchEvicted
	if total == 0 {
		return 0
	}
	return float64(s.PrefetchUseful) / float64(total)
}

// Occupancy reports queue and MSHR occupancy for diagnostics.
func (c *Cache) Occupancy() (readQ, prefQ, writeQ, mshrs int) {
	return c.readQ.len(), c.prefQ.len(), c.writeQ.len(), len(c.mshrs)
}

// RegisterProbes registers this cache level's sampled series under
// prefix (e.g. "l2.0."): instantaneous MSHR and input-queue occupancy
// plus the demand miss rate over the previous sample interval. Pull-style
// probes leave the lookup path untouched; a nil recorder is a no-op.
func (c *Cache) RegisterProbes(tel *telemetry.Recorder, prefix string) {
	if tel == nil {
		return
	}
	tel.Probe(prefix+"mshr", func(uint64) float64 { return float64(len(c.mshrs)) })
	tel.Probe(prefix+"readq", func(uint64) float64 { return float64(c.readQ.len()) })
	tel.Probe(prefix+"prefq", func(uint64) float64 { return float64(c.prefQ.len()) })
	tel.Probe(prefix+"writeq", func(uint64) float64 { return float64(c.writeQ.len()) })
	var lastAcc, lastMiss uint64
	tel.Probe(prefix+"miss_rate", func(uint64) float64 {
		da := c.Stats.DemandAccesses - lastAcc
		dm := c.Stats.DemandMisses - lastMiss
		lastAcc, lastMiss = c.Stats.DemandAccesses, c.Stats.DemandMisses
		if da == 0 {
			return 0
		}
		return float64(dm) / float64(da)
	})
}

// Invalidate drops the single resident line lineAddr, returning whether
// it was present. This is the coherence invalidation path: a remote
// store hit a line this cache shares, so the copy dies. Like
// InvalidateAll, dirty data is dropped without writeback traffic (the
// trace simulator carries no data; the modelled cost is the refetch)
// and the drop is deliberately NOT routed through OnEvict — OnEvict
// feeds the RnR engine's eviction bookkeeping, which must see only
// capacity evictions, not remote stores. Still-unused prefetched lines
// close their lifecycle records exactly as InvalidateAll closes them.
func (c *Cache) Invalidate(lineAddr mem.Addr) bool {
	set := c.setSlice(lineAddr)
	for i := range set {
		if set[i].tag == lineAddr {
			c.wakeDirty = true
			if c.Lifecycle != nil && set[i].prefetched {
				c.Lifecycle.PrefetchEvictedUnused(lineAddr, c.clock)
			}
			set[i] = line{tag: invalidTag}
			return true
		}
	}
	return false
}

// ForEachResident calls fn for every resident line. Audit sweeps use it
// to compare a cache's actual contents against the coherence
// directory's sharer masks; it is never on the tick path.
func (c *Cache) ForEachResident(fn func(line mem.Addr)) {
	for i := range c.sets {
		if c.sets[i].tag != invalidTag {
			fn(c.sets[i].tag)
		}
	}
}

// InvalidateAll drops every resident line, modelling the cache pollution
// of a context switch (another process evicted everything while this one
// was descheduled). The trace simulator carries no data, so dirty lines
// are dropped without writeback traffic; the cost modelled is the warm-up
// misses afterwards, which §IV-C identifies as the dominant penalty.
func (c *Cache) InvalidateAll() {
	c.wakeDirty = true
	for i := range c.sets {
		// Invalidation ends the lifecycle of still-unused prefetched
		// lines exactly like an eviction would; without this the flight
		// recorder would leak open records across context-switch
		// generations. Deliberately NOT routed through OnEvict — the
		// prefetcher reset is handled by the switch path itself, and
		// firing OnEvict here would perturb recorded RnR state.
		if c.Lifecycle != nil && c.sets[i].tag != invalidTag && c.sets[i].prefetched {
			c.Lifecycle.PrefetchEvictedUnused(c.sets[i].tag, c.clock)
		}
		c.sets[i] = line{tag: invalidTag}
	}
}
