package cache

import (
	"fmt"
	"reflect"
	"testing"

	"rnrsim/internal/mem"
)

// recObserver records every lifecycle event as a compact string so
// tests can assert exact event sequences.
type recObserver struct {
	events []string
}

func (o *recObserver) PrefetchIssued(line mem.Addr, cycle uint64, occ int) {
	o.events = append(o.events, fmt.Sprintf("issued:%x:occ=%d", line, occ))
}
func (o *recObserver) PrefetchRedundant(line mem.Addr, cycle uint64) {
	o.events = append(o.events, fmt.Sprintf("redundant:%x", line))
}
func (o *recObserver) PrefetchLateMerge(line mem.Addr, cycle uint64, headStart uint64) {
	o.events = append(o.events, fmt.Sprintf("late:%x:head>0=%v", line, headStart > 0))
}
func (o *recObserver) PrefetchFilled(line mem.Addr, cycle uint64, demanded bool) {
	o.events = append(o.events, fmt.Sprintf("filled:%x:demanded=%v", line, demanded))
}
func (o *recObserver) PrefetchDemandHit(line mem.Addr, cycle uint64) {
	o.events = append(o.events, fmt.Sprintf("hit:%x", line))
}
func (o *recObserver) PrefetchEvictedUnused(line mem.Addr, cycle uint64) {
	o.events = append(o.events, fmt.Sprintf("evicted:%x", line))
}

func newPrefetch(addr mem.Addr) *mem.Request {
	return mem.NewRequest(mem.ReqPrefetch, addr, 0, 0, 0)
}

// TestLifecycleTimelySequence drives prefetch → fill → demand hit and
// checks the observer sees issue, fill and the timely hit in order.
func TestLifecycleTimelySequence(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 20}
	c.SetLower(m)
	obs := &recObserver{}
	c.Lifecycle = obs

	if !c.TryPrefetch(newPrefetch(0x1000)) {
		t.Fatal("prefetch rejected")
	}
	run(c, m, func() bool { return c.Stats.PrefetchFills == 1 }, 200)

	var done uint64
	c.TryEnqueue(newLoad(0x1000, 1, &done))
	run(c, m, func() bool { return done != 0 }, 200)

	want := []string{"issued:1000:occ=0", "filled:1000:demanded=false", "hit:1000"}
	if !reflect.DeepEqual(obs.events, want) {
		t.Fatalf("events = %v, want %v", obs.events, want)
	}
}

// TestLifecycleLateSequence lets a demand catch an in-flight prefetch:
// the observer must see the late merge with a positive head start, then
// a demanded fill.
func TestLifecycleLateSequence(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 100}
	c.SetLower(m)
	obs := &recObserver{}
	c.Lifecycle = obs

	if !c.TryPrefetch(newPrefetch(0x2000)) {
		t.Fatal("prefetch rejected")
	}
	// Let the prefetch allocate its MSHR, then send the demand.
	run(c, m, func() bool { return len(c.mshrs) == 1 }, 50)
	var done uint64
	c.TryEnqueue(newLoad(0x2000, 1, &done))
	run(c, m, func() bool { return done != 0 }, 400)

	want := []string{"issued:2000:occ=0", "late:2000:head>0=true", "filled:2000:demanded=true"}
	if !reflect.DeepEqual(obs.events, want) {
		t.Fatalf("events = %v, want %v", obs.events, want)
	}
}

// TestLifecycleRedundantPaths covers the three redundant flavours:
// filtered against a resident line, filtered against an in-flight MSHR,
// and a local prefetch merging into a demand miss.
func TestLifecycleRedundantPaths(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 60}
	c.SetLower(m)
	obs := &recObserver{}
	c.Lifecycle = obs

	// Make 0x3000 resident via a demand load.
	var done uint64
	c.TryEnqueue(newLoad(0x3000, 1, &done))
	run(c, m, func() bool { return done != 0 }, 200)
	c.TryPrefetch(newPrefetch(0x3000)) // filtered: resident

	// In-flight demand miss, then a prefetch for the same line: the
	// filter drops it against the MSHR.
	var d2 uint64
	c.TryEnqueue(newLoad(0x4000, 1, &d2))
	run(c, m, func() bool { return len(c.mshrs) == 1 }, 300)
	c.TryPrefetch(newPrefetch(0x4000))
	run(c, m, func() bool { return d2 != 0 }, 300)

	want := []string{"redundant:3000", "redundant:4000"}
	if !reflect.DeepEqual(obs.events, want) {
		t.Fatalf("events = %v, want %v", obs.events, want)
	}
}

// TestLifecycleEvictedUnused fills one set beyond capacity with
// prefetches and checks the LRU victim reports evicted-unused.
func TestLifecycleEvictedUnused(t *testing.T) {
	c := New(Config{
		Name: "tiny", SizeBytes: 2 * mem.LineSize, Ways: 2, Latency: 1,
		MSHRs: 8, ReadQ: 8, PrefQ: 8, WriteQ: 8, Bandwidth: 2,
	})
	m := &fakeMemory{latency: 5}
	c.SetLower(m)
	obs := &recObserver{}
	c.Lifecycle = obs

	// Three prefetches into a 2-way single-set cache: the third install
	// evicts the LRU prefetched line unused.
	for i, addr := range []mem.Addr{0x1000, 0x2000, 0x3000} {
		if !c.TryPrefetch(newPrefetch(addr)) {
			t.Fatalf("prefetch %d rejected", i)
		}
		run(c, m, func() bool { return c.Stats.PrefetchFills == uint64(i+1) }, 200)
	}
	if c.Stats.PrefetchEvicted != 1 {
		t.Fatalf("PrefetchEvicted = %d, want 1", c.Stats.PrefetchEvicted)
	}
	want := []string{
		"issued:1000:occ=0", "filled:1000:demanded=false",
		"issued:2000:occ=0", "filled:2000:demanded=false",
		"issued:3000:occ=0", "evicted:1000", "filled:3000:demanded=false",
	}
	if !reflect.DeepEqual(obs.events, want) {
		t.Fatalf("events = %v, want %v", obs.events, want)
	}
}

// TestLifecycleInvalidateAllClosesResidents checks a context-switch
// invalidation reports still-unused prefetched lines as evicted (and
// does not fire OnEvict, which would perturb prefetcher state).
func TestLifecycleInvalidateAllClosesResidents(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 5}
	c.SetLower(m)
	obs := &recObserver{}
	c.Lifecycle = obs
	onEvicts := 0
	c.OnEvict = func(mem.Addr, bool, uint64) { onEvicts++ }

	c.TryPrefetch(newPrefetch(0x5000))
	run(c, m, func() bool { return c.Stats.PrefetchFills == 1 }, 200)
	// A demanded line must NOT be reported on invalidation.
	var done uint64
	c.TryEnqueue(newLoad(0x6000, 1, &done))
	run(c, m, func() bool { return done != 0 }, 200)

	c.InvalidateAll()
	want := []string{"issued:5000:occ=0", "filled:5000:demanded=false", "evicted:5000"}
	if !reflect.DeepEqual(obs.events, want) {
		t.Fatalf("events = %v, want %v", obs.events, want)
	}
	if onEvicts != 0 {
		t.Fatalf("InvalidateAll fired OnEvict %d times, want 0", onEvicts)
	}
	if c.Lookup(0x5000) || c.Lookup(0x6000) {
		t.Fatal("lines survived InvalidateAll")
	}
}
