package cache

import (
	"fmt"
	"sort"

	"rnrsim/internal/mem"
)

// Audit hooks. The shapes (report func(law string) and mix func(uint64))
// are chosen so this package needs no audit import; internal/sim adapts
// them onto the audit.Checker and audit.Hash.

// AuditInvariants validates the cache's conservation laws and structural
// bounds, reporting each violated law.
func (c *Cache) AuditInvariants(report func(law string)) {
	// Input-queue bounds. The write queue is exempt: evictions push
	// retry writebacks into the cache's own writeQ past the cap by
	// design (see evict), so only read/prefetch caps are laws.
	if n := c.readQ.len(); n > c.cfg.ReadQ {
		report(fmt.Sprintf("readQ occupancy %d exceeds capacity %d", n, c.cfg.ReadQ))
	}
	if n := c.prefQ.len(); n > c.cfg.PrefQ {
		report(fmt.Sprintf("prefQ occupancy %d exceeds capacity %d", n, c.cfg.PrefQ))
	}
	if n := len(c.mshrs); n > c.cfg.MSHRs {
		report(fmt.Sprintf("MSHR occupancy %d exceeds capacity %d", n, c.cfg.MSHRs))
	}

	// Conservation: every allocated MSHR has either filled (counted in
	// MissServiceCnt by fill) or is still in flight. A leak on either
	// side breaks requests-in-flight = issued - completed.
	if c.mshrAllocs != c.Stats.MissServiceCnt+uint64(len(c.mshrs)) {
		report(fmt.Sprintf("MSHR conservation: %d allocated != %d filled + %d in flight",
			c.mshrAllocs, c.Stats.MissServiceCnt, len(c.mshrs)))
	}

	// Demand accounting: a structural stall rolls DemandAccesses back
	// before requeueing, so at tick boundaries every counted access is
	// exactly one of hit, true miss or MSHR merge.
	if s := &c.Stats; s.DemandHits+s.DemandMisses+s.DemandMerges != s.DemandAccesses {
		report(fmt.Sprintf("demand accounting: hits %d + misses %d + merges %d != accesses %d",
			s.DemandHits, s.DemandMisses, s.DemandMerges, s.DemandAccesses))
	}

	// MSHR table integrity.
	seen := make(map[mem.Addr]bool, len(c.mshrs))
	for _, m := range c.mshrs {
		if seen[m.line] {
			report(fmt.Sprintf("MSHR table holds line %#x twice", uint64(m.line)))
		}
		seen[m.line] = true
		if m.child == nil {
			report(fmt.Sprintf("MSHR %#x has no child request", uint64(m.line)))
		}
	}
	for _, m := range c.unsent {
		if m.sent {
			report(fmt.Sprintf("unsent list holds already-sent MSHR %#x", uint64(m.line)))
		}
		if c.findMSHR(m.line) == nil {
			report(fmt.Sprintf("unsent MSHR %#x missing from MSHR table", uint64(m.line)))
		}
	}

	auditRing("readQ", &c.readQ, report)
	auditRing("prefQ", &c.prefQ, report)
	auditRing("writeQ", &c.writeQ, report)
}

// auditRing checks ring-deque structural sanity: occupancy within the
// backing array, every occupied slot holding a request, every free slot
// zeroed (popFront zeroes the vacated slot; grow compacts to a fresh
// array), and head inside the buffer.
func auditRing(name string, q *reqRing, report func(law string)) {
	if q.n < 0 || q.n > len(q.buf) {
		report(fmt.Sprintf("%s ring: occupancy %d outside backing array %d", name, q.n, len(q.buf)))
		return
	}
	if len(q.buf) > 0 && (q.head < 0 || q.head >= len(q.buf)) {
		report(fmt.Sprintf("%s ring: head %d outside backing array %d", name, q.head, len(q.buf)))
		return
	}
	occupied := make(map[int]bool, q.n)
	for i := 0; i < q.n; i++ {
		idx := q.head + i
		if idx >= len(q.buf) {
			idx -= len(q.buf)
		}
		occupied[idx] = true
		if q.buf[idx].req == nil {
			report(fmt.Sprintf("%s ring: occupied slot %d holds nil request", name, idx))
		}
	}
	for idx := range q.buf {
		if !occupied[idx] && q.buf[idx] != (queued{}) {
			report(fmt.Sprintf("%s ring: free slot %d not zeroed", name, idx))
		}
	}
}

// AuditDemandHolds returns the number of demand requests the cache is
// currently holding on behalf of the level above: demand entries in the
// read queue plus demand waiters parked on MSHRs. For a private L1 this
// equals the core's LSQ occupancy (hits complete synchronously inside
// the same Tick; the core's not-yet-enqueued pendingReq is counted on
// neither side).
func (c *Cache) AuditDemandHolds() int {
	n := 0
	for i := 0; i < c.readQ.n; i++ {
		idx := c.readQ.head + i
		if idx >= len(c.readQ.buf) {
			idx -= len(c.readQ.buf)
		}
		if c.readQ.buf[idx].req.Type.IsDemand() {
			n++
		}
	}
	for _, m := range c.mshrs {
		for _, w := range m.waiters {
			if w.Type.IsDemand() {
				n++
			}
		}
	}
	return n
}

// HashState folds the cache's complete architectural state — tag array
// with dirty/prefetched/LRU words, input queues, MSHR table (sorted by
// line so Go's randomized map order cannot perturb the digest) and all
// statistics — into the caller's hasher.
func (c *Cache) HashState(mix func(uint64)) {
	for i := range c.sets {
		l := &c.sets[i]
		mix(uint64(l.tag))
		mix(boolWord(l.dirty)<<1 | boolWord(l.prefetched))
		mix(l.lastUse)
	}
	hashRing(&c.readQ, mix)
	hashRing(&c.prefQ, mix)
	hashRing(&c.writeQ, mix)

	entries := make([]*mshr, len(c.mshrs))
	copy(entries, c.mshrs)
	sort.Slice(entries, func(i, j int) bool { return entries[i].line < entries[j].line })
	mix(uint64(len(entries)))
	for _, m := range entries {
		mix(uint64(m.line))
		mix(m.allocAt)
		mix(boolWord(m.prefetch)<<2 | boolWord(m.demanded)<<1 | boolWord(m.sent))
		mix(uint64(len(m.waiters)))
		for _, w := range m.waiters {
			hashRequest(w, mix)
		}
	}
	mix(uint64(len(c.unsent)))

	s := &c.Stats
	mix(c.mshrAllocs)
	for _, v := range []uint64{
		s.DemandAccesses, s.DemandHits, s.DemandMisses, s.DemandMerges,
		s.PrefetchIssued, s.PrefetchDropped, s.PrefetchFills, s.PrefetchFillsDone,
		s.PrefetchUseful, s.PrefetchLate, s.PrefetchEvicted,
		s.Writebacks, s.Evictions, s.MissServiceSum, s.MissServiceCnt,
	} {
		mix(v)
	}
}

func hashRing(q *reqRing, mix func(uint64)) {
	mix(uint64(q.n))
	for i := 0; i < q.n; i++ {
		idx := q.head + i
		if idx >= len(q.buf) {
			idx -= len(q.buf)
		}
		e := &q.buf[idx]
		mix(e.ready)
		hashRequest(e.req, mix)
	}
}

func hashRequest(r *mem.Request, mix func(uint64)) {
	mix(uint64(r.Type))
	mix(uint64(r.Addr))
	mix(uint64(r.Line))
	mix(r.PC)
	mix(uint64(int64(r.Core)))
	mix(uint64(int64(r.RegionID)))
	mix(boolWord(r.StructFlag))
	mix(r.Issue)
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
