package cache

import "rnrsim/internal/mem"

// LifecycleObserver receives one callback per prefetch-lifecycle
// transition at this cache level. It exists for the flight recorder in
// internal/obs, which attributes every locally-generated prefetch
// (Done == nil; prefetch children from the level above belong to the
// originating level's lifecycle) to exactly one outcome. The cache
// fires events; the observer owns all bookkeeping, so a nil Lifecycle
// field costs one pointer compare on paths that are already off the
// per-tick fast path (miss allocation, fill, evict, filter drops).
//
// Event vocabulary, in lifecycle order:
//
//   - PrefetchIssued: a local prefetch allocated an MSHR. mshrOccupancy
//     is the MSHR count at allocation (before this one is inserted).
//   - PrefetchRedundant: a local prefetch was dropped or absorbed
//     without fetching anything — filtered against a resident line or
//     in-flight miss, lost a residence race, or merged into an existing
//     MSHR as a no-op. Issued and closed in the same instant.
//   - PrefetchLateMerge: a demand miss merged into the still-in-flight
//     prefetch MSHR. headStart is the cycles the prefetch was already
//     in flight — the demand stall shaved even though the prefetch was
//     not fully timely.
//   - PrefetchFilled: the prefetch MSHR's data arrived. demanded is
//     true when a demand merged while in flight (the late case).
//   - PrefetchDemandHit: a demand hit a resident, still-unused
//     prefetched line — the timely outcome.
//   - PrefetchEvictedUnused: a prefetched line left the cache (LRU
//     eviction or context-switch invalidation) without ever being
//     demanded.
type LifecycleObserver interface {
	PrefetchIssued(line mem.Addr, cycle uint64, mshrOccupancy int)
	PrefetchRedundant(line mem.Addr, cycle uint64)
	PrefetchLateMerge(line mem.Addr, cycle uint64, headStart uint64)
	PrefetchFilled(line mem.Addr, cycle uint64, demanded bool)
	PrefetchDemandHit(line mem.Addr, cycle uint64)
	PrefetchEvictedUnused(line mem.Addr, cycle uint64)
}
