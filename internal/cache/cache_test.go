package cache

import (
	"testing"

	"rnrsim/internal/mem"
)

// fakeMemory completes every request after a fixed latency. It implements
// mem.Backend and records traffic for assertions.
type fakeMemory struct {
	latency  uint64
	clock    uint64
	inFlight []*mem.Request
	finish   []uint64
	Reads    int
	Writes   int
	capacity int // 0 = unlimited
}

func (f *fakeMemory) TryEnqueue(r *mem.Request) bool {
	if f.capacity > 0 && len(f.inFlight) >= f.capacity {
		return false
	}
	switch r.Type {
	case mem.ReqWriteback, mem.ReqMetaWrite:
		f.Writes++
		r.Complete(f.clock)
		return true
	}
	f.Reads++
	f.inFlight = append(f.inFlight, r)
	f.finish = append(f.finish, f.clock+f.latency)
	return true
}

func (f *fakeMemory) Tick(now uint64) {
	f.clock = now
	kept, keptFin := f.inFlight[:0], f.finish[:0]
	for i, r := range f.inFlight {
		if f.finish[i] <= now {
			r.Complete(now)
		} else {
			kept = append(kept, r)
			keptFin = append(keptFin, f.finish[i])
		}
	}
	f.inFlight, f.finish = kept, keptFin
}

func testConfig(size uint64, ways int) Config {
	return Config{
		Name: "test", SizeBytes: size, Ways: ways, Latency: 2,
		MSHRs: 8, ReadQ: 16, PrefQ: 16, WriteQ: 16, Bandwidth: 2,
	}
}

// run drives the cache and memory until the request set completes or the
// cycle budget is exhausted.
func run(c *Cache, m *fakeMemory, until func() bool, budget int) uint64 {
	var now uint64
	for i := 0; i < budget; i++ {
		now++
		c.Tick(now)
		m.Tick(now)
		if until() {
			return now
		}
	}
	return now
}

func newLoad(addr mem.Addr, pc uint64, done *uint64) *mem.Request {
	r := mem.NewRequest(mem.ReqLoad, addr, pc, 0, 0)
	r.Done = func(cycle uint64) { *done = cycle }
	return r
}

func TestMissThenHit(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 50}
	c.SetLower(m)

	var t1, t2 uint64
	if !c.TryEnqueue(newLoad(0x1000, 1, &t1)) {
		t.Fatal("enqueue rejected")
	}
	run(c, m, func() bool { return t1 != 0 }, 200)
	if t1 == 0 {
		t.Fatal("first load never completed")
	}
	if t1 < 50 {
		t.Errorf("miss completed at %d, faster than memory latency", t1)
	}
	if c.Stats.DemandMisses != 1 || c.Stats.DemandHits != 0 {
		t.Errorf("after miss: %+v", c.Stats)
	}

	if !c.TryEnqueue(newLoad(0x1008, 1, &t2)) { // same line, different byte
		t.Fatal("enqueue rejected")
	}
	start := t1
	end := run(c, m, func() bool { return t2 != 0 }, 200)
	if t2 == 0 {
		t.Fatal("second load never completed")
	}
	if t2-start > 10 {
		t.Errorf("hit took %d cycles (%d..%d), want ~latency", t2-start, start, end)
	}
	if c.Stats.DemandHits != 1 {
		t.Errorf("after hit: %+v", c.Stats)
	}
	if m.Reads != 1 {
		t.Errorf("memory reads = %d, want 1", m.Reads)
	}
}

func TestMSHRMergesSameLine(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 80}
	c.SetLower(m)

	var d1, d2 uint64
	c.TryEnqueue(newLoad(0x2000, 1, &d1))
	c.TryEnqueue(newLoad(0x2010, 2, &d2))
	run(c, m, func() bool { return d1 != 0 && d2 != 0 }, 400)
	if d1 == 0 || d2 == 0 {
		t.Fatal("loads never completed")
	}
	if m.Reads != 1 {
		t.Errorf("memory reads = %d, want 1 (merge)", m.Reads)
	}
	if c.Stats.DemandMisses != 1 || c.Stats.DemandMerges != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
	if d1 != d2 {
		t.Errorf("merged loads completed at %d and %d", d1, d2)
	}
}

func TestLRUEvictionAndWriteback(t *testing.T) {
	cfg := testConfig(mem.LineSize*2, 2) // one set, two ways
	c := New(cfg)
	m := &fakeMemory{latency: 10}
	c.SetLower(m)

	done := uint64(0)
	st := mem.NewRequest(mem.ReqStore, 0x0, 1, 0, 0)
	st.Done = func(cy uint64) { done = cy }
	c.TryEnqueue(st)
	run(c, m, func() bool { return done != 0 }, 100)

	// Fill the other way, then a third line to force evicting line 0
	// (LRU), which is dirty and must write back.
	for i, a := range []mem.Addr{0x40, 0x80} {
		d := uint64(0)
		c.TryEnqueue(newLoad(a, uint64(i+2), &d))
		run(c, m, func() bool { return d != 0 }, 100)
	}
	if c.Stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", c.Stats.Evictions)
	}
	if c.Stats.Writebacks != 1 || m.Writes != 1 {
		t.Errorf("writebacks = %d, memory writes = %d, want 1/1", c.Stats.Writebacks, m.Writes)
	}
	if c.Lookup(0x0) {
		t.Error("evicted line still resident")
	}
	if !c.Lookup(0x40) || !c.Lookup(0x80) {
		t.Error("recently used lines were evicted")
	}
}

func TestPrefetchLifecycle(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 30}
	c.SetLower(m)

	pf := mem.NewRequest(mem.ReqPrefetch, 0x3000, 0, 0, 0)
	if !c.TryPrefetch(pf) {
		t.Fatal("prefetch rejected")
	}
	run(c, m, func() bool { return c.Lookup(0x3000) }, 200)
	if c.Stats.PrefetchFills != 1 {
		t.Fatalf("prefetch fills = %d, want 1; stats %+v", c.Stats.PrefetchFills, c.Stats)
	}

	// Demand hit on the prefetched line: useful.
	var d uint64
	c.TryEnqueue(newLoad(0x3000, 9, &d))
	run(c, m, func() bool { return d != 0 }, 100)
	if c.Stats.PrefetchUseful != 1 {
		t.Errorf("useful = %d, want 1", c.Stats.PrefetchUseful)
	}
	// A second demand hit must not double count.
	d = 0
	c.TryEnqueue(newLoad(0x3000, 9, &d))
	run(c, m, func() bool { return d != 0 }, 100)
	if c.Stats.PrefetchUseful != 1 {
		t.Errorf("useful double-counted: %d", c.Stats.PrefetchUseful)
	}
}

func TestPrefetchLateMerge(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 100}
	c.SetLower(m)

	pf := mem.NewRequest(mem.ReqPrefetch, 0x4000, 0, 0, 0)
	c.TryPrefetch(pf)
	c.Tick(3) // let the prefetch reach the MSHR
	c.Tick(4)
	c.Tick(5)
	if !c.InFlight(0x4000) {
		t.Fatal("prefetch not in flight")
	}
	var d uint64
	c.TryEnqueue(newLoad(0x4000, 5, &d))
	run(c, m, func() bool { return d != 0 }, 400)
	if c.Stats.PrefetchLate != 1 {
		t.Errorf("late = %d, want 1; stats %+v", c.Stats.PrefetchLate, c.Stats)
	}
	if c.Stats.DemandMerges != 1 {
		t.Errorf("merges = %d, want 1", c.Stats.DemandMerges)
	}
}

func TestPrefetchFilteredWhenResident(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 10}
	c.SetLower(m)
	var d uint64
	c.TryEnqueue(newLoad(0x5000, 1, &d))
	run(c, m, func() bool { return d != 0 }, 100)

	pf := mem.NewRequest(mem.ReqPrefetch, 0x5000, 0, 0, 0)
	if !c.TryPrefetch(pf) {
		t.Fatal("filtered prefetch should report accepted")
	}
	if c.Stats.PrefetchDropped != 1 || c.Stats.PrefetchIssued != 0 {
		t.Errorf("stats %+v", c.Stats)
	}
	if m.Reads != 1 {
		t.Errorf("memory reads = %d, want 1", m.Reads)
	}
}

func TestPrefetchEvictedUnused(t *testing.T) {
	cfg := testConfig(mem.LineSize, 1) // single line cache
	c := New(cfg)
	m := &fakeMemory{latency: 5}
	c.SetLower(m)

	pf := mem.NewRequest(mem.ReqPrefetch, 0x0, 0, 0, 0)
	c.TryPrefetch(pf)
	run(c, m, func() bool { return c.Lookup(0x0) }, 100)

	var d uint64
	c.TryEnqueue(newLoad(0x1000, 1, &d)) // maps to the same (only) set
	run(c, m, func() bool { return d != 0 }, 100)
	if c.Stats.PrefetchEvicted != 1 {
		t.Errorf("evicted-unused = %d, want 1; stats %+v", c.Stats.PrefetchEvicted, c.Stats)
	}
}

func TestOnAccessHook(t *testing.T) {
	c := New(testConfig(4096, 4))
	m := &fakeMemory{latency: 5}
	c.SetLower(m)
	var events []AccessInfo
	c.OnAccess = func(ev AccessInfo) { events = append(events, ev) }

	var d uint64
	r := mem.NewRequest(mem.ReqLoad, 0x6000, 77, 2, 0)
	r.RegionID = 3
	r.StructFlag = true
	r.Done = func(cy uint64) { d = cy }
	c.TryEnqueue(r)
	run(c, m, func() bool { return d != 0 }, 100)

	d = 0
	r2 := mem.NewRequest(mem.ReqLoad, 0x6000, 77, 2, 0)
	r2.Done = func(cy uint64) { d = cy }
	c.TryEnqueue(r2)
	run(c, m, func() bool { return d != 0 }, 100)

	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Hit || !events[1].Hit {
		t.Errorf("hit flags: %v %v", events[0].Hit, events[1].Hit)
	}
	if events[0].PC != 77 || events[0].Core != 2 || events[0].RegionID != 3 || !events[0].StructFlag {
		t.Errorf("miss event fields: %+v", events[0])
	}
}

func TestQueueBackpressure(t *testing.T) {
	cfg := testConfig(4096, 4)
	cfg.ReadQ = 2
	c := New(cfg)
	m := &fakeMemory{latency: 500}
	c.SetLower(m)

	var d [3]uint64
	ok0 := c.TryEnqueue(newLoad(0x100, 1, &d[0]))
	ok1 := c.TryEnqueue(newLoad(0x200, 1, &d[1]))
	ok2 := c.TryEnqueue(newLoad(0x300, 1, &d[2]))
	if !ok0 || !ok1 || ok2 {
		t.Errorf("enqueue results %v %v %v, want true true false", ok0, ok1, ok2)
	}
}

func TestMSHRStallPreservesRequest(t *testing.T) {
	cfg := testConfig(1<<16, 4)
	cfg.MSHRs = 2
	c := New(cfg)
	m := &fakeMemory{latency: 50}
	c.SetLower(m)

	var d [4]uint64
	for i := range d {
		c.TryEnqueue(newLoad(mem.Addr(0x1000*(i+1)), uint64(i), &d[i]))
	}
	run(c, m, func() bool {
		for i := range d {
			if d[i] == 0 {
				return false
			}
		}
		return true
	}, 1000)
	for i := range d {
		if d[i] == 0 {
			t.Fatalf("load %d lost during MSHR stall", i)
		}
	}
	if c.Stats.DemandMisses != 4 {
		t.Errorf("misses = %d, want 4", c.Stats.DemandMisses)
	}
	if m.Reads != 4 {
		t.Errorf("memory reads = %d, want 4", m.Reads)
	}
}

func TestLowerQueueFullRetries(t *testing.T) {
	cfg := testConfig(1<<16, 4)
	c := New(cfg)
	m := &fakeMemory{latency: 20, capacity: 1}
	c.SetLower(m)

	var d [3]uint64
	for i := range d {
		c.TryEnqueue(newLoad(mem.Addr(0x2000*(i+1)), uint64(i), &d[i]))
	}
	run(c, m, func() bool { return d[0] != 0 && d[1] != 0 && d[2] != 0 }, 1000)
	for i := range d {
		if d[i] == 0 {
			t.Fatalf("load %d never completed behind a full lower queue", i)
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{DemandMisses: 30, PrefetchUseful: 9, PrefetchEvicted: 1}
	if got := s.MPKI(3000); got != 10 {
		t.Errorf("MPKI = %v, want 10", got)
	}
	if got := s.MPKI(0); got != 0 {
		t.Errorf("MPKI(0) = %v", got)
	}
	if got := s.Accuracy(); got != 0.9 {
		t.Errorf("Accuracy = %v, want 0.9", got)
	}
	if got := (Stats{}).Accuracy(); got != 0 {
		t.Errorf("empty Accuracy = %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted an invalid config")
		}
	}()
	New(Config{Name: "bad"})
}

func TestSetsComputation(t *testing.T) {
	cfg := Config{SizeBytes: 256 * 1024, Ways: 8}
	if got := cfg.Sets(); got != 512 {
		t.Errorf("Sets() = %d, want 512", got)
	}
}
