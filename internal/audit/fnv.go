package audit

// FNV-1a, 64-bit. The architectural state hasher folds every word of
// simulator state (cache tags and LRU words, DRAM queues and bank
// registers, RnR registers and statistics) into one 64-bit digest that
// the differential tests compare across execution paths (serial, -j N,
// rnrd-served). FNV-1a is used for the same reasons the Go runtime
// uses it for map seeds: trivial, allocation-free and byte-order
// independent, with good enough dispersion that a single swapped
// counter flips the digest.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Hash is an incremental FNV-1a 64-bit hasher. The zero value is NOT
// ready to use; construct with NewHash.
type Hash struct {
	h uint64
}

// NewHash returns a hasher at the FNV-1a offset basis.
func NewHash() *Hash { return &Hash{h: fnvOffset64} }

// Byte folds one byte.
func (h *Hash) Byte(b byte) {
	h.h = (h.h ^ uint64(b)) * fnvPrime64
}

// U64 folds one 64-bit word, little-endian byte order.
func (h *Hash) U64(v uint64) {
	for i := 0; i < 8; i++ {
		h.Byte(byte(v >> (8 * i)))
	}
}

// Int folds a signed integer (sign-extended through int64, so negative
// register values hash distinctly from their magnitudes).
func (h *Hash) Int(v int) { h.U64(uint64(int64(v))) }

// Bool folds a flag.
func (h *Hash) Bool(v bool) {
	if v {
		h.Byte(1)
	} else {
		h.Byte(0)
	}
}

// Str folds a string's bytes with a length prefix (so "ab","c" and
// "a","bc" hash differently).
func (h *Hash) Str(s string) {
	h.U64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.Byte(s[i])
	}
}

// Sum returns the current digest. The hasher remains usable.
func (h *Hash) Sum() uint64 { return h.h }

// Mix returns the U64 method as a free function, the shape the
// component HashState hooks accept (func(uint64)) so they need no
// audit import.
func (h *Hash) Mix() func(uint64) { return h.U64 }

// HashWords is a convenience one-shot digest over a word sequence,
// used for order-independent map hashing: hash each entry's words
// with HashWords and XOR the digests, then fold the XOR into the
// parent hasher. XOR of per-entry digests is commutative, so Go's
// randomised map iteration order cannot perturb the state hash.
func HashWords(words ...uint64) uint64 {
	h := NewHash()
	for _, w := range words {
		h.U64(w)
	}
	return h.Sum()
}
