// Package audit is the simulator's correctness layer: a tick-level
// invariant checker, an FNV-1a architectural-state hasher and a seeded
// trace fuzzer.
//
// The checker validates conservation laws the evaluation silently
// depends on — requests in flight = issued − completed per component,
// queue occupancies within configured bounds, RnR window/pace
// bookkeeping exact, prefetch classification counters consistent — and
// reports every violation with the cycle, the component and the law
// that failed. It follows the telemetry pattern: a nil checker costs
// one pointer compare per simulator tick, and a registered checker
// runs only every Config.Interval cycles.
//
// The package depends only on the standard library (plus the fuzzer's
// workload imports), so every simulated component can expose audit
// hooks (AuditInvariants, HashState) without an import cycle.
package audit

import (
	"fmt"
)

// Violation is one failed invariant: where, when and which law.
type Violation struct {
	Cycle     uint64 `json:"cycle"`
	Component string `json:"component"`
	Law       string `json:"law"`
}

func (v Violation) String() string {
	return fmt.Sprintf("cycle %d: %s: %s", v.Cycle, v.Component, v.Law)
}

// Config enables and tunes the invariant checker. The zero value is a
// usable default-everything configuration; the pointer lives in
// sim.Config so that a nil pointer is the (zero-cost) disabled state.
type Config struct {
	// Interval is the number of cycles between invariant sweeps.
	// 0 means DefaultInterval. 1 checks every cycle (fuzzing mode).
	Interval uint64
	// Limit bounds how many violations are retained; further ones are
	// counted but dropped. 0 means DefaultLimit.
	Limit int
	// FailFast makes the simulator abort the run at the first
	// violation (checked at tick-batch boundaries) instead of
	// completing the run and reporting at the end.
	FailFast bool
}

// DefaultInterval and DefaultLimit are the Config zero-value defaults.
const (
	DefaultInterval = 1024
	DefaultLimit    = 64
)

// EffectiveInterval resolves the check cadence.
func (c Config) EffectiveInterval() uint64 {
	if c.Interval == 0 {
		return DefaultInterval
	}
	return c.Interval
}

func (c Config) effectiveLimit() int {
	if c.Limit <= 0 {
		return DefaultLimit
	}
	return c.Limit
}

// checkFn validates one component's invariants; each violated law is
// reported as a human-readable law string (the checker adds cycle and
// component).
type checkFn func(report func(law string))

type component struct {
	name  string
	check checkFn
}

// Checker runs registered component checks and accumulates violations.
// One Checker belongs to one simulated System and is driven from its
// tick loop, so no locking is needed.
type Checker struct {
	cfg        Config
	components []component
	violations []Violation
	dropped    uint64
	checks     uint64
}

// New builds a checker for the given configuration.
func New(cfg Config) *Checker {
	return &Checker{cfg: cfg}
}

// Register adds a component check under the given name. Checks run in
// registration order on every sweep.
func (c *Checker) Register(name string, check func(report func(law string))) {
	c.components = append(c.components, component{name: name, check: check})
}

// Check sweeps every registered component once, attributing violations
// to the given cycle. The caller is responsible for the cadence
// (sim.System ticks it every Config.EffectiveInterval() cycles and once
// more after the run drains).
func (c *Checker) Check(cycle uint64) {
	c.checks++
	for i := range c.components {
		comp := &c.components[i]
		comp.check(func(law string) {
			if len(c.violations) >= c.cfg.effectiveLimit() {
				c.dropped++
				return
			}
			c.violations = append(c.violations, Violation{
				Cycle:     cycle,
				Component: comp.name,
				Law:       law,
			})
		})
	}
}

// Violations returns the retained violations in detection order.
func (c *Checker) Violations() []Violation { return c.violations }

// Dropped returns how many violations were discarded past the limit.
func (c *Checker) Dropped() uint64 { return c.dropped }

// Checks returns how many sweeps have run (diagnostics for the
// harness: zero sweeps means the checker was never wired in).
func (c *Checker) Checks() uint64 { return c.checks }

// FailFast reports whether the configuration requests early abort.
func (c *Checker) FailFast() bool { return c.cfg.FailFast }

// Err summarises the violations as an error, nil when the run is
// clean. The first violation is quoted in full; the rest are counted.
func (c *Checker) Err() error {
	total := uint64(len(c.violations)) + c.dropped
	if total == 0 {
		return nil
	}
	return fmt.Errorf("audit: %d invariant violation(s), first: %s",
		total, c.violations[0])
}
