package audit

import (
	"fmt"
	"reflect"
)

// Monotone watches a flat statistics struct (exported uint64 fields,
// the shape of rnr.Stats, cache.Stats and dram.Stats) and reports any
// field whose value decreases between sweeps. Simulator statistics are
// cumulative counters; a decrease means double-accounting was
// "corrected" by subtraction somewhere, which is exactly the silent
// corruption class the ISSUE calls out.
//
// The watcher uses reflection once per sweep, which is fine at audit
// cadence (default every 1024 cycles) and free when auditing is off.
type Monotone struct {
	prev   map[string]uint64
	except map[string]bool
}

// NewMonotone builds an empty watcher; the first Check call only
// records a baseline. Fields named in except are treated as gauges and
// skipped (e.g. rnr.Stats.SeqTableBytes, which is recomputed from the
// live table at each record finalization rather than accumulated).
func NewMonotone(except ...string) *Monotone {
	m := &Monotone{prev: make(map[string]uint64)}
	if len(except) > 0 {
		m.except = make(map[string]bool, len(except))
		for _, name := range except {
			m.except[name] = true
		}
	}
	return m
}

// Check compares every exported uint64 field of stats (a struct or
// pointer to struct) against the previous sweep and reports
// "<field> decreased: <old> -> <new>" for each regression. Non-uint64
// and unexported fields are ignored.
func (m *Monotone) Check(stats any, report func(law string)) {
	v := reflect.ValueOf(stats)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return
	}
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() || f.Type.Kind() != reflect.Uint64 || m.except[f.Name] {
			continue
		}
		cur := v.Field(i).Uint()
		if old, ok := m.prev[f.Name]; ok && cur < old {
			report(fmt.Sprintf("counter %s decreased: %d -> %d", f.Name, old, cur))
		}
		m.prev[f.Name] = cur
	}
}
