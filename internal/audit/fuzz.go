package audit

import (
	"fmt"
	"math/rand"

	"rnrsim/internal/apps"
	"rnrsim/internal/mem"
	"rnrsim/internal/rnr"
	"rnrsim/internal/trace"
)

// The seeded trace fuzzer. It builds an apps.App whose per-core traces
// are randomized marker/load interleavings, including pathological
// shapes the real workloads never emit:
//
//   - nested and unmatched region markers (double RecordStart, Replay
//     with no prior record, Resume with no Pause, duplicate IterEnd),
//   - zero-length iterations (IterBegin immediately followed by
//     IterEnd),
//   - sequence-table overflow mid-window (tiny SeqCap against long
//     recorded iterations),
//   - occasionally a huge IterEnd Aux, stressing the simulator's
//     per-iteration bookkeeping bounds.
//
// Everything is derived from FuzzConfig.Seed, so a violation found by
// the fuzz harness reproduces from the seed alone.

// FuzzConfig parameterises one fuzzed workload. The zero value is not
// useful; call WithDefaults or fill every field.
type FuzzConfig struct {
	// Seed selects the random interleaving. Same seed, same app.
	Seed int64
	// Cores is the number of SPMD workers (one trace each).
	Cores int
	// Iterations is the kernel iteration count per core
	// (1 warm-up + 1 record + rest replays, like the real apps).
	Iterations int
	// Loads is the approximate number of loads per iteration per core.
	Loads int
	// SeqCap is the sequence-table capacity in entries. Keep it small
	// to force seq-table overflow mid-window.
	SeqCap uint64
	// Pathological enables the marker abuse described above. When
	// false the fuzzer emits only well-formed Algorithm-1-shaped
	// traces with randomized access patterns.
	Pathological bool
}

// WithDefaults fills zero fields with the harness defaults: 2 cores,
// 4 iterations, 96 loads, a 64-entry sequence table.
func (c FuzzConfig) WithDefaults() FuzzConfig {
	if c.Cores == 0 {
		c.Cores = 2
	}
	if c.Iterations == 0 {
		c.Iterations = 4
	}
	if c.Loads == 0 {
		c.Loads = 96
	}
	if c.SeqCap == 0 {
		c.SeqCap = 64
	}
	return c
}

// Fuzz builds the fuzzed workload for the given configuration.
func Fuzz(cfg FuzzConfig) *apps.App {
	cfg = cfg.WithDefaults()
	al := mem.NewAllocator(0x2000_0000)
	// One shared irregularly-accessed target, like the apps' vertex
	// arrays, plus per-core RnR metadata tables.
	target := al.AllocPage("fuzz.target", 1<<16)
	traces := make([][]trace.Record, cfg.Cores)
	for core := 0; core < cfg.Cores; core++ {
		seq := al.AllocPage("rnr.seq", cfg.SeqCap*rnr.SeqEntryBytes)
		div := al.AllocPage("rnr.div", (cfg.SeqCap/4+8)*rnr.DivEntryBytes)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(core)*0x9e37))
		traces[core] = fuzzTrace(rng, cfg, core, target, seq, div)
	}
	return &apps.App{
		Name:       "fuzz",
		Input:      fmt.Sprintf("seed%d", cfg.Seed),
		Cores:      cfg.Cores,
		Traces:     traces,
		InputBytes: target.Size,
		Targets:    []mem.Region{target},
		Iterations: cfg.Iterations,
	}
}

// fuzzTrace emits one core's trace.
func fuzzTrace(rng *rand.Rand, cfg FuzzConfig, core int, target, seq, div mem.Region) []trace.Record {
	b := trace.NewBuilder(cfg.Iterations * (cfg.Loads + 8))
	pcBase := uint64(0x7000 + core*0x100)

	// Window sizes deliberately include tiny and zero (zero leaves the
	// engine's default in place).
	windows := []uint64{0, 2, 4, 8, 16}
	b.RnRInit(seq, div, windows[rng.Intn(len(windows))])
	b.AddrBaseSet(0, target.Base, target.Size)
	b.AddrBaseEnable(0)

	patho := func(p float64) bool { return cfg.Pathological && rng.Float64() < p }

	for it := 0; it < cfg.Iterations; it++ {
		// Prefetch-state transition ahead of the iteration, as
		// Algorithm 1 places it: record on iteration 1, replay after.
		switch {
		case it == 1:
			b.RecordStart()
			if patho(0.15) {
				b.RecordStart() // nested record
			}
		case it >= 2:
			b.Replay()
			if patho(0.1) {
				b.Replay() // duplicate replay
			}
		case it == 0 && patho(0.1):
			b.Replay() // replay with nothing recorded
		}

		b.IterBegin(it)
		if patho(0.1) {
			b.IterBegin(it) // nested iteration begin
		}

		if patho(0.12) {
			// Zero-length iteration: close immediately, no loads.
			b.IterEnd(it)
			continue
		}

		loads := cfg.Loads/2 + rng.Intn(cfg.Loads)
		addr := target.Base + mem.Addr(rng.Int63n(int64(target.Size))&^7)
		for l := 0; l < loads; l++ {
			b.Exec(uint64(1 + rng.Intn(12)))
			switch rng.Intn(4) {
			case 0: // sequential run
				addr += 8
			case 1: // strided
				addr += mem.Addr(8 * (1 + rng.Intn(16)))
			default: // random jump (the misses RnR records)
				addr = target.Base + mem.Addr(rng.Int63n(int64(target.Size))&^7)
			}
			if addr >= target.End() {
				addr = target.Base + (addr-target.End())%mem.Addr(target.Size)
			}
			b.Load(pcBase+uint64(rng.Intn(4)), addr, 8, int32(target.ID))
			if rng.Intn(8) == 0 {
				b.Store(pcBase+4, addr, 8, int32(target.ID))
			}
			if patho(0.01) {
				b.Pause()
				if !patho(0.3) { // sometimes leave it paused
					b.Resume()
				}
			}
			if patho(0.005) {
				b.Resume() // resume with no pause
			}
		}

		if patho(0.05) {
			// Unmatched/duplicated end, occasionally with a huge Aux
			// that stresses iteration-table bounds.
			if patho(0.5) {
				b.Mark(trace.MarkIterEnd, 0, 0, int32(1<<20+rng.Intn(1<<10)))
			} else {
				b.IterEnd(it)
			}
		}
		b.IterEnd(it)
	}

	if patho(0.2) {
		b.PrefetchEnd()
		b.PrefetchEnd() // double end
	} else {
		b.PrefetchEnd()
	}
	b.RnREnd()
	return b.Records()
}
