package audit

import (
	"encoding/binary"
	"hash/fnv"
	"strings"
	"testing"
)

func TestCheckerReportsViolations(t *testing.T) {
	c := New(Config{Limit: 3})
	c.Register("alpha", func(report func(string)) {})
	fail := false
	c.Register("beta", func(report func(string)) {
		if fail {
			report("law broken")
		}
	})

	c.Check(10)
	if got := c.Violations(); len(got) != 0 {
		t.Fatalf("clean sweep produced %v", got)
	}
	if c.Err() != nil {
		t.Fatalf("clean checker Err = %v", c.Err())
	}

	fail = true
	c.Check(20)
	v := c.Violations()
	if len(v) != 1 || v[0].Cycle != 20 || v[0].Component != "beta" || v[0].Law != "law broken" {
		t.Fatalf("violations = %v", v)
	}
	if want := "cycle 20: beta: law broken"; v[0].String() != want {
		t.Fatalf("String() = %q, want %q", v[0], want)
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "1 invariant violation") {
		t.Fatalf("Err = %v", err)
	}
	if c.Checks() != 2 {
		t.Fatalf("Checks = %d, want 2", c.Checks())
	}
}

func TestCheckerLimitAndDropped(t *testing.T) {
	c := New(Config{Limit: 2})
	c.Register("noisy", func(report func(string)) {
		report("a")
		report("b")
		report("c")
	})
	c.Check(1)
	if len(c.Violations()) != 2 {
		t.Fatalf("retained %d, want 2", len(c.Violations()))
	}
	if c.Dropped() != 1 {
		t.Fatalf("dropped %d, want 1", c.Dropped())
	}
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "3 invariant violation") {
		t.Fatalf("Err should count dropped violations: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	var zero Config
	if zero.EffectiveInterval() != DefaultInterval {
		t.Fatalf("EffectiveInterval = %d", zero.EffectiveInterval())
	}
	if zero.effectiveLimit() != DefaultLimit {
		t.Fatalf("effectiveLimit = %d", zero.effectiveLimit())
	}
	if (Config{Interval: 1}).EffectiveInterval() != 1 {
		t.Fatal("explicit interval ignored")
	}
}

// TestHashMatchesStdlibFNV pins our incremental hasher to the standard
// library's FNV-1a over the same byte stream.
func TestHashMatchesStdlibFNV(t *testing.T) {
	h := NewHash()
	ref := fnv.New64a()

	feed := func(bs ...byte) {
		for _, b := range bs {
			h.Byte(b)
		}
		ref.Write(bs)
	}
	feed([]byte("architectural state")...)

	var word [8]byte
	binary.LittleEndian.PutUint64(word[:], 0xdeadbeefcafef00d)
	h.U64(0xdeadbeefcafef00d)
	ref.Write(word[:])

	if h.Sum() != ref.Sum64() {
		t.Fatalf("Sum = %#x, stdlib = %#x", h.Sum(), ref.Sum64())
	}
}

func TestHashPrimitives(t *testing.T) {
	// Int sign-extends: -1 and ^uint64(0) hash alike, -1 and 1 differ.
	a, b := NewHash(), NewHash()
	a.Int(-1)
	b.U64(^uint64(0))
	if a.Sum() != b.Sum() {
		t.Fatal("Int(-1) should fold as all-ones")
	}
	cpos := NewHash()
	cpos.Int(1)
	if cpos.Sum() == a.Sum() {
		t.Fatal("Int(1) collided with Int(-1)")
	}

	// Bool folds distinct bytes.
	bt, bf := NewHash(), NewHash()
	bt.Bool(true)
	bf.Bool(false)
	if bt.Sum() == bf.Sum() {
		t.Fatal("Bool(true) collided with Bool(false)")
	}

	// Str length prefix: "ab"+"c" != "a"+"bc".
	s1, s2 := NewHash(), NewHash()
	s1.Str("ab")
	s1.Str("c")
	s2.Str("a")
	s2.Str("bc")
	if s1.Sum() == s2.Sum() {
		t.Fatal(`Str("ab","c") collided with Str("a","bc")`)
	}

	// Mix is the U64 method.
	m, u := NewHash(), NewHash()
	m.Mix()(42)
	u.U64(42)
	if m.Sum() != u.Sum() {
		t.Fatal("Mix() diverged from U64")
	}
}

// TestHashWordsOrderIndependentUse checks the XOR-combine idiom the
// components use for map state: per-entry digests XORed together are
// insensitive to iteration order but sensitive to entry content.
func TestHashWordsOrderIndependentUse(t *testing.T) {
	entries := [][2]uint64{{1, 10}, {2, 20}, {3, 30}}
	var fwd, rev uint64
	for _, e := range entries {
		fwd ^= HashWords(e[0], e[1])
	}
	for i := len(entries) - 1; i >= 0; i-- {
		rev ^= HashWords(entries[i][0], entries[i][1])
	}
	if fwd != rev {
		t.Fatal("XOR combine is order-dependent")
	}
	mutated := fwd ^ HashWords(3, 30) ^ HashWords(3, 31)
	if mutated == fwd {
		t.Fatal("entry mutation did not change combined digest")
	}
	if HashWords(1, 2) == HashWords(2, 1) {
		t.Fatal("HashWords should be order-sensitive within one entry")
	}
}

func TestMonotone(t *testing.T) {
	type stats struct {
		Up       uint64
		Down     uint64
		Ignored  int     // non-uint64: skipped
		Floating float64 // non-uint64: skipped
	}
	m := NewMonotone()
	var got []string
	report := func(law string) { got = append(got, law) }

	s := stats{Up: 1, Down: 5}
	m.Check(&s, report) // baseline
	if len(got) != 0 {
		t.Fatalf("baseline sweep reported %v", got)
	}

	s.Up = 2
	s.Down = 4 // decrease
	m.Check(&s, report)
	if len(got) != 1 || !strings.Contains(got[0], "Down decreased: 5 -> 4") {
		t.Fatalf("reports = %v", got)
	}

	// Recovery: once the counter re-passes its high-water mark the
	// watcher is quiet again.
	got = nil
	s.Down = 9
	m.Check(&s, report)
	if len(got) != 0 {
		t.Fatalf("recovered counter still reported: %v", got)
	}

	// Nil pointers and non-structs are ignored, not panics.
	m.Check((*stats)(nil), report)
	m.Check(42, report)
	if len(got) != 0 {
		t.Fatalf("degenerate inputs reported %v", got)
	}
}

func TestFuzzDeterministicAndShaped(t *testing.T) {
	cfg := FuzzConfig{Seed: 7, Pathological: true}
	a1 := Fuzz(cfg)
	a2 := Fuzz(cfg)
	if a1.Records() == 0 {
		t.Fatal("fuzzed app is empty")
	}
	if a1.Cores != 2 || len(a1.Traces) != 2 {
		t.Fatalf("defaults: cores=%d traces=%d", a1.Cores, len(a1.Traces))
	}
	for c := range a1.Traces {
		if len(a1.Traces[c]) != len(a2.Traces[c]) {
			t.Fatalf("core %d: nondeterministic length %d vs %d",
				c, len(a1.Traces[c]), len(a2.Traces[c]))
		}
		for i := range a1.Traces[c] {
			if a1.Traces[c][i] != a2.Traces[c][i] {
				t.Fatalf("core %d record %d differs between builds", c, i)
			}
		}
	}
	if Fuzz(FuzzConfig{Seed: 8, Pathological: true}).Records() == a1.Records() {
		t.Log("seeds 7 and 8 coincidentally same length (allowed, just unlikely)")
	}

	// Loads stay inside the declared target region.
	target := a1.Targets[0]
	for c, recs := range a1.Traces {
		for i, r := range recs {
			if r.Kind == 1 || r.Kind == 2 { // load/store
				if !target.Contains(r.Addr) {
					t.Fatalf("core %d rec %d: %#x outside target %v", c, i, uint64(r.Addr), target)
				}
			}
		}
	}
}
