package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"rnrsim/internal/multicore"
	"rnrsim/internal/serve"
	"rnrsim/internal/sim"
)

// SweepSpec is a parameter grid: the cross product of workloads ×
// prefetchers × variants × scales, expanded server-side into one
// dispatch per cell. This is the cluster's reason to exist — a full
// prefetcher comparison is embarrassingly parallel, and the
// consistent-hash routing means a re-submitted sweep re-hits each
// worker's warm result cache.
type SweepSpec struct {
	// Workloads lists programs as "workload.input" (or
	// "workload/input") names.
	Workloads []string `json:"workloads"`
	// Prefetchers lists prefetcher kinds; empty defaults to ["none"].
	Prefetchers []string `json:"prefetchers,omitempty"`
	// Variants lists config variants (see bench.NamedVariant); empty
	// defaults to the plain variant.
	Variants []string `json:"variants,omitempty"`
	// Scales lists run scales; empty defaults to the coordinator's
	// DefaultScale.
	Scales []string `json:"scales,omitempty"`
}

// expand produces the grid's run specs in deterministic nested-loop
// order (workload outermost, scale innermost), validating every cell.
func (sp SweepSpec) expand(defaultScale string) ([]serve.RunSpec, error) {
	if len(sp.Workloads) == 0 {
		return nil, fmt.Errorf("sweep lists no workloads")
	}
	prefetchers := sp.Prefetchers
	if len(prefetchers) == 0 {
		prefetchers = []string{"none"}
	}
	variants := sp.Variants
	if len(variants) == 0 {
		variants = []string{""}
	}
	scales := sp.Scales
	if len(scales) == 0 {
		scales = []string{defaultScale}
	}
	var specs []serve.RunSpec
	seen := make(map[string]bool)
	for _, wl := range sp.Workloads {
		job, err := multicore.ParseJob(wl)
		if err != nil {
			return nil, fmt.Errorf("workload %q: %w", wl, err)
		}
		for _, pf := range prefetchers {
			for _, v := range variants {
				for _, sc := range scales {
					spec := serve.RunSpec{
						Workload:   job.Workload,
						Input:      job.Input,
						Prefetcher: pf,
						Variant:    v,
						Scale:      sc,
					}
					if err := spec.Normalize(defaultScale); err != nil {
						return nil, fmt.Errorf("grid cell %s/%s/%s/%s: %w", wl, pf, v, sc, err)
					}
					// Variant aliases ("" vs "plain") can collide on
					// the content address; keep the first.
					if id := serve.RunJobID(spec); !seen[id] {
						seen[id] = true
						specs = append(specs, spec)
					}
				}
			}
		}
	}
	return specs, nil
}

// Sweep states.
const (
	SweepRunning = "running"
	SweepDone    = "done" // terminal; individual cells may still have failed
)

// SweepJob is one grid cell's progress.
type SweepJob struct {
	Key        string        `json:"key"` // content-addressed run job ID
	Spec       serve.RunSpec `json:"spec"`
	State      string        `json:"state"` // pending | running | done | failed
	Worker     string        `json:"worker,omitempty"`
	Attempts   int           `json:"attempts,omitempty"`
	Replicated bool          `json:"replicated,omitempty"`
	StateHash  string        `json:"state_hash,omitempty"`
	Error      string        `json:"error,omitempty"`
}

// SweepView is the status JSON of a sweep, stamped with the export
// envelope. Jobs are sorted by key so the view (and the final export)
// is byte-stable across dispatch interleavings — the chaos
// differential depends on this.
type SweepView struct {
	SchemaVersion string `json:"schema_version"`
	GeneratedAt   string `json:"generated_at"`

	ID     string     `json:"id"`
	State  string     `json:"state"`
	Total  int        `json:"total"`
	Done   int        `json:"done"`
	Failed int        `json:"failed"`
	Spec   SweepSpec  `json:"spec"`
	Jobs   []SweepJob `json:"jobs"`
}

// Sweep is one in-flight (or completed) grid execution.
type Sweep struct {
	ID  string
	seq int
	log *serve.EventLog

	mu     sync.Mutex
	spec   SweepSpec
	state  string
	jobs   []SweepJob // dispatch order; views sort a copy
	done   int
	failed int
}

// sweepProgress is the Data payload on sweep_job / sweep_done events.
type sweepProgress struct {
	SweepID string    `json:"sweep_id"`
	Total   int       `json:"total"`
	Done    int       `json:"done"`
	Failed  int       `json:"failed"`
	Job     *SweepJob `json:"job,omitempty"`
}

// View snapshots the sweep. withJobs=false omits the per-cell table,
// for listings.
func (s *Sweep) View(withJobs bool) SweepView {
	schema, generated := sim.Stamp()
	s.mu.Lock()
	defer s.mu.Unlock()
	v := SweepView{
		SchemaVersion: schema,
		GeneratedAt:   generated,
		ID:            s.ID,
		State:         s.state,
		Total:         len(s.jobs),
		Done:          s.done,
		Failed:        s.failed,
		Spec:          s.spec,
	}
	if withJobs {
		v.Jobs = append([]SweepJob(nil), s.jobs...)
		sort.Slice(v.Jobs, func(i, j int) bool { return v.Jobs[i].Key < v.Jobs[j].Key })
	}
	return v
}

// publish emits one event carrying the sweep's aggregate progress
// (and, for sweep_job, the cell that just changed).
func (s *Sweep) publish(typ string, job *SweepJob) {
	s.mu.Lock()
	p := sweepProgress{SweepID: s.ID, Total: len(s.jobs), Done: s.done, Failed: s.failed}
	if job != nil {
		jc := *job
		p.Job = &jc
	}
	s.mu.Unlock()
	data, _ := json.Marshal(p)
	s.log.Publish(serve.Event{Type: typ, Data: data})
}

// StartSweep expands the grid, registers the sweep and launches its
// dispatch pool (SweepParallelism concurrent dispatches on the
// coordinator's base context — a sweep outlives the submitting
// request). The per-cell progress and the aggregate counters stream
// over one SSE channel (GET /v1/sweeps/{id}/events).
func (c *Coordinator) StartSweep(spec SweepSpec) (*Sweep, error) {
	specs, err := spec.expand(c.cfg.DefaultScale)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.sweepSeq++
	s := &Sweep{
		ID:    fmt.Sprintf("sweep-%d", c.sweepSeq),
		seq:   c.sweepSeq,
		log:   serve.NewEventLog(),
		spec:  spec,
		state: SweepRunning,
		jobs:  make([]SweepJob, len(specs)),
	}
	for i, rs := range specs {
		s.jobs[i] = SweepJob{Key: serve.RunJobID(rs), Spec: rs, State: "pending"}
	}
	c.sweeps[s.ID] = s
	c.mu.Unlock()
	c.cSweeps.Inc()
	c.cfg.Logf("cluster: %s started: %d jobs, parallelism %d", s.ID, len(specs), c.cfg.SweepParallelism)

	c.wg.Add(1)
	go c.runSweep(s)
	return s, nil
}

// runSweep drains the sweep's cells through a bounded dispatch pool.
func (c *Coordinator) runSweep(s *Sweep) {
	defer c.wg.Done()
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c.cfg.SweepParallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				c.runSweepJob(s, i)
			}
		}()
	}
	for i := range s.jobs {
		select {
		case idx <- i:
		case <-c.baseCtx.Done():
			// Coordinator shutting down: stop feeding, drain workers.
			close(idx)
			wg.Wait()
			return
		}
	}
	close(idx)
	wg.Wait()

	s.mu.Lock()
	s.state = SweepDone
	done, failed, total := s.done, s.failed, len(s.jobs)
	s.mu.Unlock()
	s.publish("sweep_done", nil)
	s.log.Close()
	c.cfg.Logf("cluster: %s finished: %d/%d done, %d failed", s.ID, done, total, failed)
}

func (c *Coordinator) runSweepJob(s *Sweep, i int) {
	s.mu.Lock()
	s.jobs[i].State = "running"
	s.mu.Unlock()
	c.gInflight.Add(1)
	defer c.gInflight.Add(-1)

	res, err := c.Dispatch(c.baseCtx, s.jobs[i].Spec)

	s.mu.Lock()
	job := &s.jobs[i]
	if err != nil {
		job.State = "failed"
		job.Error = err.Error()
		s.failed++
	} else {
		job.State = "done"
		job.Worker = res.WorkerID
		job.Attempts = res.Attempts
		job.Replicated = res.Replicated
		job.StateHash = res.StateHash
		s.done++
	}
	jc := *job
	s.mu.Unlock()
	if err != nil {
		c.cSweepFailed.Inc()
	} else {
		c.cSweepDone.Inc()
	}
	s.publish("sweep_job", &jc)
}

// SweepByID looks up a sweep.
func (c *Coordinator) SweepByID(id string) (*Sweep, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sweeps[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSweep, id)
	}
	return s, nil
}

// Sweeps lists all sweeps, most recent first.
func (c *Coordinator) Sweeps() []*Sweep {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Sweep, 0, len(c.sweeps))
	for _, s := range c.sweeps {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out
}

// EventLog exposes the sweep's SSE log (for serve.StreamSSE).
func (s *Sweep) EventLog() *serve.EventLog { return s.log }

// WaitDone blocks until the sweep is terminal or the timeout lapses.
func (s *Sweep) WaitDone(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		st := s.state
		s.mu.Unlock()
		if st == SweepDone {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}
