package cluster

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// backoff computes capped exponential retry delays with full jitter:
// attempt n draws uniformly from (0, min(cap, base*2^n)]. Full jitter
// (rather than ±ε around the exponential point) is what decorrelates a
// burst of dispatches that all lost the same worker in the same
// instant — they retry spread over the whole window instead of
// hammering the survivor together.
//
// The generator is seeded so chaos tests replay identical schedules.
type backoff struct {
	base, cap time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

func newBackoff(base, cap time.Duration, seed int64) *backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap <= 0 {
		cap = 2 * time.Second
	}
	return &backoff{base: base, cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// delay returns the wait before retry attempt (0-based: the delay
// after the first failure is delay(0)).
func (b *backoff) delay(attempt int) time.Duration {
	d := b.base
	for i := 0; i < attempt && d < b.cap; i++ {
		d *= 2
	}
	if d > b.cap {
		d = b.cap
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return time.Duration(1 + b.rng.Int63n(int64(d)))
}

// sleep blocks for the attempt's delay or until ctx is done, returning
// ctx.Err() in the latter case.
func (b *backoff) sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(b.delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
