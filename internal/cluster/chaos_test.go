package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"rnrsim/internal/cluster/chaos"
	"rnrsim/internal/serve"
)

// TestRetryWithExclusionChaos is the worker-loss differential: for
// each fault kind, the job's ring owner is broken under it, and the
// dispatch must (a) complete by re-running on the *other* worker, (b)
// produce a state hash identical to a chaos-free single-daemon run of
// the same spec, and (c) leave the retry visible in telemetry. This is
// the cluster's core correctness claim — faults cost latency, never
// results.
func TestRetryWithExclusionChaos(t *testing.T) {
	spec := testSpec()
	baseline := baselineStateHash(t, spec)
	wantHash := baseline[serve.RunJobID(spec)]

	cases := []struct {
		kind  string
		delay time.Duration
	}{
		// Kill lands 30ms into the dispatch: the job is lost mid-run.
		{chaos.Kill, 30 * time.Millisecond},
		// Hang never answers: the dispatch timeout has to fire.
		{chaos.Hang, 0},
		// Slow beyond the dispatch timeout is indistinguishable from a
		// hang to the coordinator but exercises the delay path.
		{chaos.Slow, 5 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			w1, w2 := newTestWorker(t, "w1"), newTestWorker(t, "w2")
			c := newTestCoordinator(t, Config{
				DispatchTimeout: 2 * time.Second,
				Seed:            7,
			}, w1, w2)

			owner, _, ok := c.pickWorker(serve.RunJobID(spec), nil)
			if !ok {
				t.Fatal("no ring owner")
			}
			victim, survivor := w1, w2
			if owner == "w2" {
				victim, survivor = w2, w1
			}
			victim.inj.Arm(chaos.Fault{Worker: victim.id, Kind: tc.kind, After: 0, Delay: tc.delay})

			res, err := c.Dispatch(context.Background(), spec)
			if err != nil {
				t.Fatalf("dispatch under %s: %v", tc.kind, err)
			}
			if res.WorkerID != survivor.id {
				t.Errorf("completed on %s, want survivor %s", res.WorkerID, survivor.id)
			}
			if res.Attempts != 2 {
				t.Errorf("attempts = %d, want 2 (one loss, one retry)", res.Attempts)
			}
			if res.StateHash != wantHash {
				t.Errorf("state hash diverged under %s: cluster %s vs single-daemon %s",
					tc.kind, res.StateHash, wantHash)
			}
			reg := c.Registry()
			if got := reg.Counter(CounterDispatchRetries).Load(); got == 0 {
				t.Error("retry not visible in telemetry")
			}
			if got := reg.Counter(CounterExclusions).Load(); got == 0 {
				t.Error("exclusion not visible in telemetry")
			}
		})
	}
}

// TestReplicateCheckVerifiesAndCatchesCorruption: a clean duplicate
// dispatch marks the result replicated; a corrupted owner makes the
// dispatch fail loudly with a hash-mismatch error and metric.
func TestReplicateCheckVerifiesAndCatchesCorruption(t *testing.T) {
	spec := testSpec()

	t.Run("clean", func(t *testing.T) {
		w1, w2 := newTestWorker(t, "w1"), newTestWorker(t, "w2")
		c := newTestCoordinator(t, Config{ReplicateCheck: 1}, w1, w2)
		res, err := c.Dispatch(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Replicated {
			t.Error("dispatch with ReplicateCheck=1 not marked replicated")
		}
		reg := c.Registry()
		if got := reg.Counter(CounterHashChecks).Load(); got != 1 {
			t.Errorf("hash checks = %d, want 1", got)
		}
		if got := reg.Counter(CounterHashMismatches).Load(); got != 0 {
			t.Errorf("hash mismatches = %d, want 0", got)
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		w1, w2 := newTestWorker(t, "w1"), newTestWorker(t, "w2")
		c := newTestCoordinator(t, Config{ReplicateCheck: 1}, w1, w2)
		owner, _, ok := c.pickWorker(serve.RunJobID(spec), nil)
		if !ok {
			t.Fatal("no ring owner")
		}
		victim := w1
		if owner == "w2" {
			victim = w2
		}
		victim.inj.Arm(chaos.Fault{Worker: victim.id, Kind: chaos.Corrupt, After: 0})

		_, err := c.Dispatch(context.Background(), spec)
		if !errors.Is(err, ErrHashMismatch) {
			t.Fatalf("dispatch error = %v, want ErrHashMismatch", err)
		}
		if got := c.Registry().Counter(CounterHashMismatches).Load(); got != 1 {
			t.Errorf("hash mismatches = %d, want 1", got)
		}
	})

	t.Run("single-worker-skips", func(t *testing.T) {
		w1 := newTestWorker(t, "w1")
		c := newTestCoordinator(t, Config{ReplicateCheck: 1}, w1)
		res, err := c.Dispatch(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Replicated {
			t.Error("cluster of one claims replication")
		}
		if got := c.Registry().Counter(CounterHashChecks).Load(); got != 0 {
			t.Errorf("hash checks = %d on a one-worker ring, want 0", got)
		}
	})
}

// sseEvent is one decoded SSE frame.
type sseEvent struct {
	id   int
	typ  string
	data serve.Event
}

// readSSE decodes up to max frames (max<0: until EOF).
func readSSE(t *testing.T, r *bufio.Reader, max int) []sseEvent {
	t.Helper()
	var out []sseEvent
	cur := sseEvent{id: -1}
	for max < 0 || len(out) < max {
		line, err := r.ReadString('\n')
		if err != nil {
			return out
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id, _ = strconv.Atoi(line[4:])
		case strings.HasPrefix(line, "event: "):
			cur.typ = line[7:]
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(line[6:]), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		case line == "":
			if cur.typ != "" {
				out = append(out, cur)
			}
			cur = sseEvent{id: -1}
		}
	}
	return out
}

// fetchMetrics scrapes the Prometheus exposition into a map.
func fetchMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out
}

// TestSweepChaosDifferential is the acceptance test: a parameter-grid
// sweep over two workers with a seeded kill mid-sweep must finish with
// every cell done, every state hash identical to a healthy
// single-daemon run of the same grid, the dead worker visible in the
// registry, and every injected fault observable in /metrics. The
// aggregate SSE stream must be resumable with Last-Event-ID.
func TestSweepChaosDifferential(t *testing.T) {
	grid := SweepSpec{
		Workloads:   []string{"pagerank.urand", "hyperanf.urand"},
		Prefetchers: []string{"none", "nextline"},
		Scales:      []string{"test"},
	}
	specs, err := grid.expand("test")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("grid expanded to %d cells, want 4", len(specs))
	}
	baseline := baselineStateHash(t, specs...)

	w1, w2 := newTestWorker(t, "w1"), newTestWorker(t, "w2")
	c := newTestCoordinator(t, Config{
		HeartbeatInterval: 15 * time.Millisecond,
		DeadAfter:         3,
		DispatchTimeout:   5 * time.Second,
		SweepParallelism:  2,
		Seed:              7,
	}, w1, w2)
	ts := httptest.NewServer(NewServer(c))
	defer ts.Close()

	// The grid must actually span both workers for the kill to matter.
	saw := map[string]bool{}
	for _, spec := range specs {
		owner, _, _ := c.pickWorker(serve.RunJobID(spec), nil)
		saw[owner] = true
	}
	if !saw["w1"] || !saw["w2"] {
		t.Fatalf("grid routes to %v — widen it so both workers own cells", saw)
	}
	// Seeded plan, filtered to the kill on w1: its first dispatch dies
	// 20ms in, every cell it owned must re-run on w2.
	w1.inj.Arm(chaos.Fault{Worker: "w1", Kind: chaos.Kill, After: 0, Delay: 20 * time.Millisecond})

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"workloads":["pagerank.urand","hyperanf.urand"],"prefetchers":["none","nextline"],"scales":["test"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var accepted SweepView
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || accepted.Total != 4 || accepted.State != SweepRunning {
		t.Fatalf("submit = {status %d, total %d, state %s}, want 202/4/running",
			resp.StatusCode, accepted.Total, accepted.State)
	}

	sw, err := c.SweepByID(accepted.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !sw.WaitDone(120 * time.Second) {
		t.Fatalf("sweep never finished: %+v", sw.View(false))
	}

	// Every cell done, every hash matching the healthy baseline.
	view := sw.View(true)
	if view.Done != 4 || view.Failed != 0 {
		t.Fatalf("sweep = {done %d, failed %d}: %+v", view.Done, view.Failed, view.Jobs)
	}
	retried := 0
	for _, job := range view.Jobs {
		if job.State != "done" {
			t.Errorf("cell %s ended %s: %s", job.Key, job.State, job.Error)
			continue
		}
		if want := baseline[job.Key]; job.StateHash != want {
			t.Errorf("cell %s hash diverged under chaos: %s vs baseline %s",
				job.Key, job.StateHash, want)
		}
		if job.Attempts > 1 {
			retried++
		}
		if job.Worker == "w1" {
			t.Errorf("cell %s claims completion on the killed worker", job.Key)
		}
	}
	if retried == 0 {
		t.Error("no cell records a retry — the kill never bit")
	}

	// The kill is observable: dead worker in the registry…
	waitWorkerHealth(t, c, "w1", "dead", 5*time.Second)
	// …and every fault effect in /metrics.
	metrics := fetchMetrics(t, ts.URL)
	for _, name := range []string{
		"cluster_dispatch_retries", "cluster_exclusions",
		"cluster_worker_deaths", "cluster_workers_dead",
		"cluster_heartbeat_misses",
	} {
		if metrics[name] == 0 {
			t.Errorf("metric %s = 0, want > 0 after an injected kill (metrics: %v)", name, metrics)
		}
	}
	if metrics["cluster_sweep_jobs_done"] != 4 {
		t.Errorf("cluster_sweep_jobs_done = %v, want 4", metrics["cluster_sweep_jobs_done"])
	}

	// SSE replay + resume: full stream is 4 sweep_job + 1 sweep_done;
	// resuming after event 1 replays exactly the rest, gapless.
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + accepted.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	full := readSSE(t, bufio.NewReader(resp.Body), -1)
	resp.Body.Close()
	if len(full) != 5 || full[len(full)-1].typ != "sweep_done" {
		t.Fatalf("full stream has %d events ending %q, want 5 ending sweep_done",
			len(full), full[len(full)-1].typ)
	}
	for i, ev := range full {
		if ev.id != i {
			t.Fatalf("event %d carries id %d — stream not gapless", i, ev.id)
		}
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sweeps/"+accepted.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", strconv.Itoa(full[1].id))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resumed := readSSE(t, bufio.NewReader(resp.Body), -1)
	resp.Body.Close()
	if len(resumed) != 3 || resumed[0].id != full[1].id+1 {
		t.Fatalf("resume after id %d replayed %d events starting id %d, want 3 starting %d",
			full[1].id, len(resumed), resumed[0].id, full[1].id+1)
	}
	var progress sweepProgress
	if err := json.Unmarshal(resumed[len(resumed)-1].data.Data, &progress); err != nil {
		t.Fatal(err)
	}
	if progress.Done != 4 || progress.Failed != 0 || progress.Total != 4 {
		t.Errorf("final progress = %+v, want 4/4 done", progress)
	}

	// The sweep listing and status endpoints agree.
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + accepted.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got SweepView
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != SweepDone || len(got.Jobs) != 4 {
		t.Errorf("status endpoint = {state %s, %d jobs}", got.State, len(got.Jobs))
	}
	if _, err := c.SweepByID("sweep-999"); !errors.Is(err, ErrUnknownSweep) {
		t.Errorf("unknown sweep lookup = %v", err)
	}
}

// TestChaosPlanDeterministic pins the seeded plan generator.
func TestChaosPlanDeterministic(t *testing.T) {
	workers := []string{"w1", "w2", "w3"}
	a := chaos.Plan(11, workers, 4)
	b := chaos.Plan(11, workers, 4)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different plans:\n%v\n%v", a, b)
	}
	other := chaos.Plan(12, workers, 4)
	if fmt.Sprint(a) == fmt.Sprint(other) {
		t.Error("different seeds produced identical plans")
	}
	for i, f := range a {
		if f.Worker != workers[i] || f.After < 0 || f.After >= 4 || f.Kind == "" {
			t.Errorf("fault %d malformed: %+v", i, f)
		}
	}
}
