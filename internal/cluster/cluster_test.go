package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rnrsim/internal/cluster/chaos"
	"rnrsim/internal/serve"
	"rnrsim/internal/telemetry"
)

// testWorker is one complete in-process rnrd worker (manager + HTTP
// server) at test scale, behind a chaos injector (transparent until a
// fault is armed).
type testWorker struct {
	id  string
	url string
	m   *serve.Manager
	inj *chaos.Injector
}

func newTestWorker(t testing.TB, id string) *testWorker {
	t.Helper()
	m := serve.NewManager(serve.Options{
		DefaultScale: "test",
		WorkerID:     id,
		Registry:     telemetry.NewRegistry(),
		Logf:         t.Logf,
	})
	inj := chaos.NewInjector(id)
	ts := httptest.NewServer(inj.Wrap(serve.NewServer(m)))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	})
	return &testWorker{id: id, url: ts.URL, m: m, inj: inj}
}

// newTestCoordinator builds a coordinator with test-friendly timing
// defaults (fast heartbeats, millisecond backoff) on a private
// registry, registers the given workers, and tears everything down on
// cleanup (coordinator first: its heartbeat loop must stop before the
// workers' servers close).
func newTestCoordinator(t testing.TB, cfg Config, ws ...*testWorker) *Coordinator {
	t.Helper()
	if cfg.DefaultScale == "" {
		cfg.DefaultScale = "test"
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 20 * time.Millisecond
	}
	if cfg.HeartbeatTimeout == 0 {
		// The default (= interval) is far too tight for a loaded test
		// box: a busy-but-healthy worker must not be declared dead.
		cfg.HeartbeatTimeout = 2 * time.Second
	}
	if cfg.DispatchTimeout == 0 {
		cfg.DispatchTimeout = 10 * time.Second
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 2 * time.Millisecond
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = 10 * time.Millisecond
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	c := NewCoordinator(cfg)
	t.Cleanup(c.Close)
	for _, w := range ws {
		if err := c.AddWorker(w.id, w.url); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func testSpec() serve.RunSpec {
	return serve.RunSpec{Workload: "pagerank", Input: "urand", Prefetcher: "none", Scale: "test"}
}

// baselineStateHash runs specs through a plain single-daemon manager —
// no cluster, no chaos — and returns each content-addressed job ID's
// state hash. This is the ground truth the chaos differentials compare
// against.
func baselineStateHash(t testing.TB, specs ...serve.RunSpec) map[string]string {
	t.Helper()
	m := serve.NewManager(serve.Options{
		DefaultScale: "test",
		Registry:     telemetry.NewRegistry(),
		Logf:         t.Logf,
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = m.Shutdown(ctx)
	}()
	out := make(map[string]string, len(specs))
	for _, spec := range specs {
		spec.Detach = true // no watcher: don't let it abandon
		j, _, err := m.SubmitRun(spec)
		if err != nil {
			t.Fatalf("baseline submit: %v", err)
		}
		select {
		case <-j.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("baseline run %s did not finish", j.ID)
		}
		if st := j.State(); st != serve.StateDone {
			t.Fatalf("baseline run %s ended %s: %s", j.ID, st, j.View(false).Error)
		}
		hash := extractStateHash(j.View(true).Result)
		if hash == "" {
			t.Fatalf("baseline run %s has no state hash", j.ID)
		}
		out[j.ID] = hash
	}
	return out
}

// waitWorkerHealth polls the registry until the worker reaches the
// wanted health state.
func waitWorkerHealth(t testing.TB, c *Coordinator, id, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, w := range c.Workers() {
			if w.ID == id && w.Health == want {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("worker %s never reached health %q (registry: %+v)", id, want, c.Workers())
}

// --- ring ---

func TestRingStableRoutingAndMinimalRemap(t *testing.T) {
	r := newRing()
	for _, id := range []string{"a", "b", "c"} {
		r.add(id)
	}
	keys := make([]string, 1000)
	owners := make(map[string]string, len(keys))
	counts := map[string]int{}
	for i := range keys {
		keys[i] = fmt.Sprintf("job-%d", i)
		id, ok := r.pick(keys[i], nil)
		if !ok {
			t.Fatalf("pick(%q) found no owner on a 3-member ring", keys[i])
		}
		if again, _ := r.pick(keys[i], nil); again != id {
			t.Fatalf("pick(%q) unstable: %s then %s", keys[i], id, again)
		}
		owners[keys[i]] = id
		counts[id]++
	}
	// Virtual nodes keep the split roughly even: no member below 15%.
	for id, n := range counts {
		if n < 150 {
			t.Errorf("member %s owns only %d/1000 keys — ring badly unbalanced (%v)", id, n, counts)
		}
	}
	// Removing one member remaps only its keys.
	r.remove("c")
	for _, k := range keys {
		id, ok := r.pick(k, nil)
		if !ok {
			t.Fatalf("pick(%q) failed after removal", k)
		}
		if was := owners[k]; was != "c" && id != was {
			t.Fatalf("key %q moved %s→%s though %s is still a member", k, was, id, was)
		}
		if owners[k] == "c" && id == "c" {
			t.Fatalf("key %q still routed to removed member", k)
		}
	}
	// Exclusion walks to a different member; excluding everyone fails.
	id0, _ := r.pick("job-0", nil)
	alt, ok := r.pick("job-0", map[string]bool{id0: true})
	if !ok || alt == id0 {
		t.Fatalf("exclusion of %s produced (%s, %v)", id0, alt, ok)
	}
	if _, ok := r.pick("job-0", map[string]bool{"a": true, "b": true}); ok {
		t.Fatal("pick succeeded with every member excluded")
	}
	r.remove("a")
	r.remove("b")
	if _, ok := r.pick("job-0", nil); ok {
		t.Fatal("pick succeeded on an empty ring")
	}
}

// --- backoff ---

func TestBackoffSeededAndCapped(t *testing.T) {
	const base, cap = 10 * time.Millisecond, 80 * time.Millisecond
	a := newBackoff(base, cap, 42)
	b := newBackoff(base, cap, 42)
	other := newBackoff(base, cap, 43)
	same, diff := true, false
	for attempt := 0; attempt < 32; attempt++ {
		da, db, do := a.delay(attempt%6), b.delay(attempt%6), other.delay(attempt%6)
		if da != db {
			same = false
		}
		if da != do {
			diff = true
		}
		bound := base << uint(attempt%6)
		if bound > cap {
			bound = cap
		}
		if da <= 0 || da > bound {
			t.Fatalf("delay(%d) = %v outside (0, %v]", attempt%6, da, bound)
		}
	}
	if !same {
		t.Error("same seed produced different delay sequences")
	}
	if !diff {
		t.Error("different seeds produced identical delay sequences")
	}
}

// --- health state machine ---

// TestHealthStateMachine drives one worker through
// alive → suspect → dead → resurrected using a controllable status
// stub, checking ring membership at each step.
func TestHealthStateMachine(t *testing.T) {
	var broken atomic.Bool
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(serve.WorkerStatus{WorkerID: "s1"})
	}))
	defer stub.Close()

	c := newTestCoordinator(t, Config{
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectAfter:      1,
		DeadAfter:         3,
	})
	if err := c.AddWorker("s1", stub.URL); err != nil {
		t.Fatal(err)
	}
	waitWorkerHealth(t, c, "s1", "alive", 2*time.Second)

	broken.Store(true)
	waitWorkerHealth(t, c, "s1", "suspect", 2*time.Second)
	if c.LiveWorkers() != 1 {
		t.Error("suspect worker fell off the ring — a single missed probe must not reshard")
	}
	waitWorkerHealth(t, c, "s1", "dead", 2*time.Second)
	if c.LiveWorkers() != 0 {
		t.Error("dead worker still on the ring")
	}
	if got := c.Registry().Counter(CounterWorkerDeaths).Load(); got == 0 {
		t.Error("worker death not counted")
	}

	broken.Store(false)
	waitWorkerHealth(t, c, "s1", "alive", 2*time.Second)
	if c.LiveWorkers() != 1 {
		t.Error("resurrected worker not back on the ring")
	}
}

// --- dispatch ---

func TestDispatchRoutesCachesAndValidates(t *testing.T) {
	w1, w2 := newTestWorker(t, "w1"), newTestWorker(t, "w2")
	c := newTestCoordinator(t, Config{}, w1, w2)

	spec := testSpec()
	wantOwner, _, ok := c.pickWorker(serve.RunJobID(spec), nil)
	if !ok {
		t.Fatal("no owner for test spec")
	}
	res, err := c.Dispatch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkerID != wantOwner || res.Attempts != 1 {
		t.Errorf("dispatch = {worker %s, attempts %d}, want ring owner %s in one attempt",
			res.WorkerID, res.Attempts, wantOwner)
	}
	if res.StateHash == "" || res.View.State != serve.StateDone {
		t.Errorf("result = {hash %q, state %s}", res.StateHash, res.View.State)
	}

	// Same spec re-routes to the same worker (its cache shard).
	again, err := c.Dispatch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.WorkerID != res.WorkerID || again.StateHash != res.StateHash {
		t.Errorf("re-dispatch = {worker %s, hash %s}, want {%s, %s}",
			again.WorkerID, again.StateHash, res.WorkerID, res.StateHash)
	}

	// Spec validation fails fast, before any worker is bothered.
	if _, err := c.Dispatch(context.Background(), serve.RunSpec{Workload: "nope", Input: "x"}); err == nil {
		t.Error("bad spec dispatched without error")
	}
	if got := c.Registry().Counter(CounterDispatches).Load(); got != 2 {
		t.Errorf("dispatch counter = %d, want 2", got)
	}
}

// TestGracefulDegradation pins the empty-ring contract over HTTP: 503
// with a jittered integer Retry-After on /healthz, dispatch and sweep
// submission, plus the reject counter.
func TestGracefulDegradation(t *testing.T) {
	c := newTestCoordinator(t, Config{RetryAfter: 8 * time.Second})
	ts := httptest.NewServer(NewServer(c))
	defer ts.Close()

	check503 := func(resp *http.Response, err error, what string) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s status = %d, want 503", what, resp.StatusCode)
		}
		secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || secs < 6 || secs > 10 {
			t.Errorf("%s Retry-After = %q, want int in [6,10] (8s ±25%%)",
				what, resp.Header.Get("Retry-After"))
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	check503(resp, err, "healthz")
	resp, err = http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"pagerank","input":"urand","scale":"test"}`))
	check503(resp, err, "dispatch")
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"workloads":["pagerank.urand"]}`))
	check503(resp, err, "sweep")

	if got := c.Registry().Counter(CounterNoWorkerRejects).Load(); got == 0 {
		t.Error("no-worker rejects not counted")
	}
}

// TestJoinLeaveHTTP exercises the membership endpoints.
func TestJoinLeaveHTTP(t *testing.T) {
	w1 := newTestWorker(t, "w1")
	c := newTestCoordinator(t, Config{})
	ts := httptest.NewServer(NewServer(c))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/cluster/join", "application/json",
		strings.NewReader(fmt.Sprintf(`{"id":"w1","url":%q}`, w1.url)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join status = %d, want 200", resp.StatusCode)
	}
	var listing struct {
		Workers []WorkerInfo `json:"workers"`
	}
	resp, err = http.Get(ts.URL + "/v1/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Workers) != 1 || listing.Workers[0].ID != "w1" || listing.Workers[0].Health != "alive" {
		t.Fatalf("listing = %+v, want one alive w1", listing.Workers)
	}

	// Health answers once a worker is on the ring.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz with a worker = %d, want 200", resp.StatusCode)
	}

	// Bad join bodies are client errors.
	resp, err = http.Post(ts.URL+"/v1/cluster/join", "application/json",
		strings.NewReader(`{"id":"","url":"not-a-url"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad join status = %d, want 400", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/cluster/workers/w1", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave status = %d, want 200", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/cluster/workers/ghost", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown leave status = %d, want 404", resp.StatusCode)
	}
	if c.LiveWorkers() != 0 {
		t.Error("worker still registered after leave")
	}
}
