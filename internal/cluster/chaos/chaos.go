// Package chaos is the cluster's in-process fault-injection harness:
// an http.Handler middleware wrapped around a worker that kills, hangs,
// slows or corrupts it at a deterministic point in its request stream.
// Faults trigger by counting job submissions (POST /v1/runs) — never
// heartbeats, whose cadence depends on wall-clock timing — so a seeded
// fault plan replays the identical failure schedule run after run, and
// the chaos differential test can assert the cluster's exports are
// byte-identical to a healthy single daemon's.
package chaos

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"time"
)

// Fault kinds.
const (
	// Kill drops every in-flight connection after Delay and aborts all
	// subsequent requests instantly — the worker is gone. From the
	// coordinator this is indistinguishable from a SIGKILL'd process:
	// in-flight dispatches see dropped connections, heartbeats start
	// missing, and the health machine walks the worker to dead.
	Kill = "kill"
	// Hang stalls the triggering request (and every later one) until
	// the client's context expires — the pathological peer that
	// accepts connections but never answers. Exercises dispatch
	// timeouts rather than connection errors.
	Hang = "hang"
	// Slow delays every request from the trigger on by Delay, then
	// serves it normally. Exercises timeout margins and retry jitter
	// without removing capacity.
	Slow = "slow"
	// Corrupt rewrites the state_hash in the triggering response body —
	// the silent-corruption stand-in (bad RAM, version skew) that the
	// coordinator's replicate-check exists to catch.
	Corrupt = "corrupt"
)

// Fault schedules one failure on one worker.
type Fault struct {
	// Worker names the target (matched against the Injector's worker ID).
	Worker string
	// Kind is Kill, Hang, Slow or Corrupt.
	Kind string
	// After is the number of job submissions (POST /v1/runs) the worker
	// serves cleanly before the fault arms; the (After+1)th submission
	// triggers it. Counting submissions rather than all requests keeps
	// the trigger deterministic under heartbeat timing noise.
	After int
	// Delay is the pre-abort stall for Kill (letting the job start
	// before the process "dies" — the interesting mid-flight window)
	// and the added latency for Slow.
	Delay time.Duration
}

// Injector wraps one worker's handler and applies its faults.
// An Injector with no faults is a transparent proxy.
type Injector struct {
	worker string

	mu      sync.Mutex
	faults  []Fault
	subs    int  // job submissions seen
	killed  bool // sticky: worker is "gone"
	slowBy  time.Duration
	hung    bool
	nextReq uint64
	// inflight tracks every active request's context cancel, so a kill
	// takes concurrent requests down with it — a real SIGKILL does not
	// spare the jobs that happened to arrive before the trigger.
	inflight map[uint64]context.CancelFunc
}

// NewInjector returns a fault injector for the named worker, keeping
// only the faults addressed to it.
func NewInjector(worker string, faults ...Fault) *Injector {
	inj := &Injector{worker: worker, inflight: make(map[uint64]context.CancelFunc)}
	for _, f := range faults {
		if f.Worker == worker {
			inj.faults = append(inj.faults, f)
		}
	}
	return inj
}

// Arm schedules another fault after construction (tests often need to
// learn a job's ring owner before deciding which worker to break).
// Faults addressed to other workers are ignored. After counts from the
// injector's lifetime submission total, not from the Arm call.
func (inj *Injector) Arm(f Fault) {
	if f.Worker != inj.worker {
		return
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.faults = append(inj.faults, f)
}

// Revive clears a kill/hang/slow state: the "process" restarts. The
// submission counter keeps running, so a revived worker does not
// re-trigger the same fault.
func (inj *Injector) Revive() {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.killed = false
	inj.hung = false
	inj.slowBy = 0
}

// Killed reports whether the worker is currently down.
func (inj *Injector) Killed() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.killed
}

// stateHashPattern matches the state-hash field in a run result
// payload; Corrupt flips it to an obviously-wrong value of the same
// shape.
var stateHashPattern = regexp.MustCompile(`"state_hash":\s*"[0-9a-f]+"`)

// Wrap returns next behind the fault layer.
func (inj *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		r = r.WithContext(ctx)
		id := inj.track(cancel)
		defer inj.untrack(id)

		// Drain the body up front (replaying it for the real handler):
		// net/http only watches for client disconnects once the request
		// body has hit EOF, and a faulted handler that stalls without
		// reading would otherwise pin the connection past the client's
		// timeout — a leak, not a simulated crash.
		if r.Body != nil {
			data, err := io.ReadAll(r.Body)
			r.Body.Close()
			if err != nil {
				abort()
			}
			r.Body = io.NopCloser(bytes.NewReader(data))
		}

		isSubmit := r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/runs")
		inj.mu.Lock()
		if isSubmit {
			inj.subs++
		}
		var trig *Fault
		if isSubmit {
			for i := range inj.faults {
				f := &inj.faults[i]
				if f.After+1 == inj.subs {
					trig = f
					break
				}
			}
		}
		killed, hung, slowBy := inj.killed, inj.hung, inj.slowBy
		inj.mu.Unlock()

		if killed {
			abort()
		}
		if hung {
			stall(r)
		}
		if slowBy > 0 {
			sleep(r, slowBy)
		}
		if trig == nil {
			next.ServeHTTP(w, r)
			if inj.Killed() {
				// The process died while this request was in flight;
				// its response never made it out.
				abort()
			}
			return
		}

		switch trig.Kind {
		case Kill:
			// Let the job start and run for Delay before the process
			// "dies": the dispatch is lost mid-run, not rejected at
			// the door, and every concurrent request dies with it.
			go func() {
				time.Sleep(trig.Delay)
				inj.kill()
			}()
			next.ServeHTTP(w, r)
			abort()
		case Hang:
			inj.mu.Lock()
			inj.hung = true
			inj.mu.Unlock()
			stall(r)
		case Slow:
			inj.mu.Lock()
			inj.slowBy = trig.Delay
			inj.mu.Unlock()
			sleep(r, trig.Delay)
			next.ServeHTTP(w, r)
		case Corrupt:
			buf := &bufferedResponse{header: make(http.Header), status: http.StatusOK}
			next.ServeHTTP(buf, r)
			body := stateHashPattern.ReplaceAll(buf.body.Bytes(),
				[]byte(`"state_hash":"deadbeefdeadbeef"`))
			for k, vs := range buf.header {
				if strings.EqualFold(k, "Content-Length") {
					continue
				}
				w.Header()[k] = vs
			}
			w.WriteHeader(buf.status)
			w.Write(body)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

func (inj *Injector) track(cancel context.CancelFunc) uint64 {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.nextReq++
	inj.inflight[inj.nextReq] = cancel
	return inj.nextReq
}

func (inj *Injector) untrack(id uint64) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	delete(inj.inflight, id)
}

// kill marks the worker dead and cancels every in-flight request's
// context. The serve layer watches request contexts, so cancellation
// abandons running jobs mid-simulation exactly as a dying process
// would; each unwinding handler then drops its connection.
func (inj *Injector) kill() {
	inj.mu.Lock()
	inj.killed = true
	cancels := make([]context.CancelFunc, 0, len(inj.inflight))
	for _, c := range inj.inflight {
		cancels = append(cancels, c)
	}
	inj.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// abort panics with the sentinel net/http recognises as "drop the
// connection without a reply" — the closest in-process stand-in for a
// SIGKILL'd peer.
func abort() {
	panic(http.ErrAbortHandler)
}

// stall blocks until the requester gives up (or the process dies).
func stall(r *http.Request) {
	<-r.Context().Done()
	abort()
}

// sleep waits d or until the requester gives up (then aborts).
func sleep(r *http.Request, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-r.Context().Done():
		abort()
	}
}

// bufferedResponse captures a handler's response for rewriting.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }
func (b *bufferedResponse) WriteHeader(code int) {
	b.status = code
}
func (b *bufferedResponse) Write(p []byte) (int, error) {
	return b.body.Write(p)
}

// Plan generates a seeded random fault schedule over n workers: one
// fault per worker drawn from kinds, armed within the first maxAfter
// submissions. The same seed always yields the same plan — the chaos
// differential's whole premise.
func Plan(seed int64, workers []string, maxAfter int, kinds ...string) []Fault {
	if len(kinds) == 0 {
		kinds = []string{Kill, Hang, Slow}
	}
	if maxAfter < 1 {
		maxAfter = 1
	}
	rng := rand.New(rand.NewSource(seed))
	faults := make([]Fault, 0, len(workers))
	for _, w := range workers {
		faults = append(faults, Fault{
			Worker: w,
			Kind:   kinds[rng.Intn(len(kinds))],
			After:  rng.Intn(maxAfter),
			Delay:  time.Duration(1+rng.Intn(20)) * time.Millisecond,
		})
	}
	return faults
}
