package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringReplicas is the number of virtual nodes per member. 64 points
// per worker keeps the load split within a few percent of even for
// small clusters without making membership changes expensive.
const ringReplicas = 64

// ring is a consistent-hash ring over worker IDs. Keys (content-
// addressed job IDs) map to the first virtual node clockwise from the
// key's hash, so the shard a job lands on is a pure function of the
// job content and the live membership — the worker-side result caches
// shard naturally, and a membership change only remaps the keys that
// hashed onto the lost (or gained) arc.
//
// ring is not safe for concurrent use; the Coordinator guards it.
type ring struct {
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash uint64
	id   string
}

func newRing() *ring {
	return &ring{members: make(map[string]bool)}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a diffuses trailing bytes weakly into the high bits, and the
	// ring orders points by exactly those bits — sequential vnode
	// labels ("w1#0".."w1#63") would cluster into a few arcs and skew
	// the load badly. A murmur3-style finalizer restores avalanche.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// add inserts a member (no-op if present).
func (r *ring) add(id string) {
	if r.members[id] {
		return
	}
	r.members[id] = true
	for i := 0; i < ringReplicas; i++ {
		r.points = append(r.points, ringPoint{
			hash: ringHash(id + "#" + strconv.Itoa(i)),
			id:   id,
		})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// remove deletes a member (no-op if absent).
func (r *ring) remove(id string) {
	if !r.members[id] {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// size returns the member count.
func (r *ring) size() int { return len(r.members) }

// pick maps a key to its owner, skipping excluded members: the first
// virtual node clockwise from hash(key) whose owner is not excluded.
// ok is false when every member is excluded (or the ring is empty) —
// the caller has run out of candidates.
func (r *ring) pick(key string, excluded map[string]bool) (id string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	candidates := 0
	for m := range r.members {
		if !excluded[m] {
			candidates++
		}
	}
	if candidates == 0 {
		return "", false
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !excluded[p.id] {
			return p.id, true
		}
	}
	return "", false
}
