// Package cluster is the distributed rnrd layer: a coordinator that
// fans simulation jobs out to N worker rnrd daemons by consistent
// hashing on the content-addressed job key, with the robustness kit a
// lossy fleet needs — worker registration with heartbeat-driven health
// states (alive → suspect → dead), per-dispatch timeouts with capped
// exponential backoff and jitter, retry-with-exclusion on worker loss,
// graceful 503 degradation when the ring thins, and sampled duplicate
// dispatch that cross-checks the PR 4 state hash between two workers.
//
// Consistent hashing on serve.RunJobID means the same job always lands
// on the same worker while membership holds, so each worker's
// content-addressed result cache shards naturally: resubmissions and
// sweep overlaps hit warm caches instead of re-simulating. The state
// hash makes cross-worker correctness *checkable*: the same job
// dispatched to two different workers must produce bit-identical
// architectural state, so a sampled second dispatch turns silent
// corruption (bad RAM, miscompiled worker, version skew) into a loud
// dispatch failure and a cluster.hash_mismatches increment.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"rnrsim/internal/serve"
	"rnrsim/internal/telemetry"
)

// Errors the HTTP layer maps onto status codes.
var (
	// ErrNoWorkers is returned when the ring has no live candidate for a
	// dispatch (empty, all dead, or all excluded by earlier failures in
	// the same dispatch). The HTTP layer answers 503 + Retry-After
	// instead of hanging.
	ErrNoWorkers = errors.New("cluster: no live workers")
	// ErrHashMismatch is returned when a sampled duplicate dispatch
	// produced a different state hash on the second worker: the two
	// machines disagree about the architecture of the same simulation,
	// and the result cannot be trusted.
	ErrHashMismatch = errors.New("cluster: cross-worker state-hash mismatch")
	// ErrJobFailed wraps a deterministic job failure reported by a
	// worker (the simulation itself failed). It is not retried: the
	// same spec fails the same way everywhere.
	ErrJobFailed = errors.New("cluster: job failed on worker")
	// ErrUnknownWorker is returned for operations on unregistered IDs.
	ErrUnknownWorker = errors.New("cluster: unknown worker")
	// ErrUnknownSweep is returned for lookups of sweep IDs never started.
	ErrUnknownSweep = errors.New("cluster: unknown sweep")
)

// Telemetry instrument names the coordinator maintains. The chaos
// acceptance tests assert every injected fault is visible here.
const (
	CounterDispatches      = "cluster.dispatches"
	CounterDispatchRetries = "cluster.dispatch_retries"
	CounterExclusions      = "cluster.exclusions"
	CounterDispatchFailed  = "cluster.dispatch_failed"
	CounterHashChecks      = "cluster.hash_checks"
	CounterHashMismatches  = "cluster.hash_mismatches"
	CounterNoWorkerRejects = "cluster.no_worker_rejects"
	CounterHeartbeatMisses = "cluster.heartbeat_misses"
	CounterWorkersJoined   = "cluster.workers_joined"
	CounterWorkerDeaths    = "cluster.worker_deaths"
	CounterSweeps          = "cluster.sweeps"
	CounterSweepJobsDone   = "cluster.sweep_jobs_done"
	CounterSweepJobsFailed = "cluster.sweep_jobs_failed"
	GaugeWorkersAlive      = "cluster.workers_alive"
	GaugeWorkersSuspect    = "cluster.workers_suspect"
	GaugeWorkersDead       = "cluster.workers_dead"
	GaugeSweepInflight     = "cluster.sweep_jobs_inflight"
)

// Health is a worker's coordinator-side health state.
type Health int

const (
	// HealthAlive: heartbeats are answered; full dispatch candidate.
	HealthAlive Health = iota
	// HealthSuspect: missed at least SuspectAfter consecutive
	// heartbeats (or failed a dispatch). Still on the ring — a single
	// dropped probe must not reshard the cluster — but one more miss
	// streak away from removal.
	HealthSuspect
	// HealthDead: missed DeadAfter consecutive heartbeats. Off the
	// ring; its keys have remapped to the survivors. A later
	// successful heartbeat resurrects it.
	HealthDead
)

// String names the state for listings and logs.
func (h Health) String() string {
	switch h {
	case HealthAlive:
		return "alive"
	case HealthSuspect:
		return "suspect"
	case HealthDead:
		return "dead"
	}
	return fmt.Sprintf("Health(%d)", int(h))
}

// Config tunes a Coordinator. The zero value is usable.
type Config struct {
	// DefaultScale fills submissions that omit one. Default "bench".
	DefaultScale string
	// HeartbeatInterval is the health-probe period. Default 1s.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout caps one probe. Default HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// SuspectAfter is the consecutive-miss count that turns a worker
	// suspect. Default 1.
	SuspectAfter int
	// DeadAfter is the consecutive-miss count that declares a worker
	// dead and removes it from the ring. Default 3.
	DeadAfter int
	// DispatchTimeout caps one dispatch attempt (submit + simulate +
	// result, over one blocking request). Default 120s.
	DispatchTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per job across distinct
	// workers. Default 3.
	MaxAttempts int
	// BackoffBase/BackoffCap shape the capped exponential retry
	// backoff (full jitter). Defaults 50ms / 2s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// ReplicateCheck is the probability ([0,1]) that a dispatch is
	// duplicated to a second worker and the two state hashes compared.
	// 0 disables; 1 checks everything. Sampling is deterministic in
	// (Seed, job key).
	ReplicateCheck float64
	// Seed drives backoff jitter and replicate-check sampling, so
	// chaos tests replay identical schedules. 0 uses a fixed default.
	Seed int64
	// SweepParallelism is the number of concurrent dispatches a sweep
	// fans out. Default 4.
	SweepParallelism int
	// RetryAfter is the base 503 backpressure hint (jittered ±25% like
	// the serve layer's 429 hint). Default 2s.
	RetryAfter time.Duration
	// Client performs worker HTTP calls. Default http.DefaultTransport
	// behind a plain client; the chaos harness swaps transports here.
	Client *http.Client
	// Registry receives the cluster instruments. Default telemetry.Default.
	Registry *telemetry.Registry
	// Logf, if set, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.DefaultScale == "" {
		c.DefaultScale = "bench"
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = c.HeartbeatInterval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3
	}
	if c.DispatchTimeout <= 0 {
		c.DispatchTimeout = 120 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 2 * time.Second
	}
	if c.SweepParallelism <= 0 {
		c.SweepParallelism = 4
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// workerRec is the coordinator's view of one registered worker.
type workerRec struct {
	id, url  string
	health   Health
	misses   int // consecutive heartbeat/dispatch failures
	lastSeen time.Time

	dispatched, failures uint64
}

// WorkerInfo is a worker's externally visible state.
type WorkerInfo struct {
	ID         string `json:"id"`
	URL        string `json:"url"`
	Health     string `json:"health"`
	Misses     int    `json:"misses"`
	LastSeen   string `json:"last_seen,omitempty"`
	Dispatched uint64 `json:"dispatched"`
	Failures   uint64 `json:"failures"`
}

// Coordinator owns the worker registry, the consistent-hash ring, the
// heartbeat loop and the sweep table. Close must eventually be called.
type Coordinator struct {
	cfg Config

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	ring     *ring
	workers  map[string]*workerRec
	sweeps   map[string]*Sweep
	sweepSeq int

	bo *backoff

	cDispatches, cRetries, cExclusions, cDispatchFailed *telemetry.Counter
	cHashChecks, cHashMismatches, cNoWorker             *telemetry.Counter
	cHeartbeatMisses, cJoined, cDeaths                  *telemetry.Counter
	cSweeps, cSweepDone, cSweepFailed                   *telemetry.Counter
	gInflight                                           *telemetry.Gauge
}

// NewCoordinator builds and starts a coordinator: its heartbeat loop
// is live on return.
func NewCoordinator(cfg Config) *Coordinator {
	cfg.fillDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	reg := cfg.Registry
	c := &Coordinator{
		cfg:     cfg,
		baseCtx: ctx,
		stop:    cancel,
		ring:    newRing(),
		workers: make(map[string]*workerRec),
		sweeps:  make(map[string]*Sweep),
		bo:      newBackoff(cfg.BackoffBase, cfg.BackoffCap, cfg.Seed),

		cDispatches:      reg.Counter(CounterDispatches),
		cRetries:         reg.Counter(CounterDispatchRetries),
		cExclusions:      reg.Counter(CounterExclusions),
		cDispatchFailed:  reg.Counter(CounterDispatchFailed),
		cHashChecks:      reg.Counter(CounterHashChecks),
		cHashMismatches:  reg.Counter(CounterHashMismatches),
		cNoWorker:        reg.Counter(CounterNoWorkerRejects),
		cHeartbeatMisses: reg.Counter(CounterHeartbeatMisses),
		cJoined:          reg.Counter(CounterWorkersJoined),
		cDeaths:          reg.Counter(CounterWorkerDeaths),
		cSweeps:          reg.Counter(CounterSweeps),
		cSweepDone:       reg.Counter(CounterSweepJobsDone),
		cSweepFailed:     reg.Counter(CounterSweepJobsFailed),
		gInflight:        reg.Gauge(GaugeSweepInflight),
	}
	reg.Probe(GaugeWorkersAlive, func(uint64) float64 { return float64(c.countHealth(HealthAlive)) })
	reg.Probe(GaugeWorkersSuspect, func(uint64) float64 { return float64(c.countHealth(HealthSuspect)) })
	reg.Probe(GaugeWorkersDead, func(uint64) float64 { return float64(c.countHealth(HealthDead)) })
	c.wg.Add(1)
	go c.heartbeatLoop()
	return c
}

// Close stops the heartbeat loop and any in-flight sweep dispatches.
func (c *Coordinator) Close() {
	c.stop()
	c.wg.Wait()
}

// Config returns the effective (default-filled) configuration.
func (c *Coordinator) Config() Config { return c.cfg }

// Registry returns the telemetry registry the coordinator reports into.
func (c *Coordinator) Registry() *telemetry.Registry { return c.cfg.Registry }

func (c *Coordinator) countHealth(h Health) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if w.health == h {
			n++
		}
	}
	return n
}

// AddWorker registers (or re-registers) a worker and puts it on the
// ring immediately — the next heartbeat confirms or demotes it.
// Registration is idempotent: re-joining with the same ID refreshes
// the URL and resurrects a dead record.
func (c *Coordinator) AddWorker(id, rawURL string) error {
	if id == "" {
		return fmt.Errorf("cluster: empty worker id")
	}
	u, err := url.Parse(rawURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("cluster: worker %q url %q is not absolute", id, rawURL)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		w = &workerRec{id: id}
		c.workers[id] = w
		c.cJoined.Inc()
	}
	w.url = rawURL
	w.health = HealthAlive
	w.misses = 0
	w.lastSeen = time.Now()
	c.ring.add(id)
	c.cfg.Logf("cluster: worker %s joined at %s (%d on ring)", id, rawURL, c.ring.size())
	return nil
}

// RemoveWorker deregisters a worker (graceful leave): off the ring,
// out of the registry.
func (c *Coordinator) RemoveWorker(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.workers[id]; !ok {
		return ErrUnknownWorker
	}
	delete(c.workers, id)
	c.ring.remove(id)
	c.cfg.Logf("cluster: worker %s left (%d on ring)", id, c.ring.size())
	return nil
}

// Workers snapshots the registry, sorted by ID.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		info := WorkerInfo{
			ID: w.id, URL: w.url, Health: w.health.String(), Misses: w.misses,
			Dispatched: w.dispatched, Failures: w.failures,
		}
		if !w.lastSeen.IsZero() {
			info.LastSeen = w.lastSeen.UTC().Format(time.RFC3339Nano)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LiveWorkers counts ring members (alive + suspect).
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.size()
}

// heartbeatLoop probes every registered worker each interval and
// drives the alive → suspect → dead state machine.
func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

func (c *Coordinator) probeAll() {
	c.mu.Lock()
	targets := make([]*workerRec, 0, len(c.workers))
	for _, w := range c.workers {
		targets = append(targets, w)
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, w := range targets {
		wg.Add(1)
		go func(w *workerRec) {
			defer wg.Done()
			ok := c.probe(w.url)
			c.noteHeartbeat(w.id, ok)
		}(w)
	}
	wg.Wait()
}

// probe asks one worker for its heartbeat status. A draining worker is
// treated as leaving: it stops getting new jobs.
func (c *Coordinator) probe(base string) bool {
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.HeartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/worker/status", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return false
	}
	var st serve.WorkerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return false
	}
	return !st.Draining
}

// noteHeartbeat records one probe outcome and applies the state
// machine.
func (c *Coordinator) noteHeartbeat(id string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, exists := c.workers[id]
	if !exists {
		return
	}
	if ok {
		if w.health == HealthDead {
			c.cfg.Logf("cluster: worker %s resurrected", id)
			c.ring.add(id)
		}
		w.health = HealthAlive
		w.misses = 0
		w.lastSeen = time.Now()
		return
	}
	c.cHeartbeatMisses.Inc()
	c.missLocked(w)
}

// noteDispatchFailure counts a failed dispatch as a health miss too: a
// worker that cannot serve jobs is suspect even if its status endpoint
// still answers.
func (c *Coordinator) noteDispatchFailure(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[id]; ok {
		w.failures++
		c.missLocked(w)
	}
}

func (c *Coordinator) missLocked(w *workerRec) {
	if w.health == HealthDead {
		return
	}
	w.misses++
	switch {
	case w.misses >= c.cfg.DeadAfter:
		if w.health != HealthDead {
			w.health = HealthDead
			c.ring.remove(w.id)
			c.cDeaths.Inc()
			c.cfg.Logf("cluster: worker %s dead after %d misses (%d on ring)",
				w.id, w.misses, c.ring.size())
		}
	case w.misses >= c.cfg.SuspectAfter:
		if w.health == HealthAlive {
			w.health = HealthSuspect
			c.cfg.Logf("cluster: worker %s suspect after %d misses", w.id, w.misses)
		}
	}
}

// pickWorker maps a job key to its owner, skipping the excluded set.
func (c *Coordinator) pickWorker(key string, excluded map[string]bool) (id, baseURL string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok = c.ring.pick(key, excluded)
	if !ok {
		return "", "", false
	}
	return id, c.workers[id].url, true
}

// DispatchResult is one successfully served job.
type DispatchResult struct {
	WorkerID   string        `json:"worker"`
	Attempts   int           `json:"attempts"`
	Replicated bool          `json:"replicated"` // sampled duplicate dispatch verified the hash
	StateHash  string        `json:"state_hash"`
	View       serve.JobView `json:"view"`
}

// workerError is a retryable worker-level dispatch failure.
type workerError struct {
	worker string
	err    error
}

func (e *workerError) Error() string { return fmt.Sprintf("worker %s: %v", e.worker, e.err) }
func (e *workerError) Unwrap() error { return e.err }

// Dispatch routes one run spec to its ring owner and returns the
// worker's completed job view. Worker-level failures (connection
// death, timeout, 5xx, overload) exclude the worker from the retry's
// candidate set and back off with jitter before trying the next owner;
// deterministic job failures are returned immediately (they would fail
// identically everywhere). With every candidate excluded or the ring
// empty, ErrNoWorkers degrades the request to a 503 upstream.
func (c *Coordinator) Dispatch(ctx context.Context, spec serve.RunSpec) (*DispatchResult, error) {
	if err := spec.Normalize(c.cfg.DefaultScale); err != nil {
		return nil, err
	}
	// The dispatch connection is the lease: wait=1 makes the
	// coordinator a watcher, so a coordinator that dies mid-dispatch
	// abandons the job; the lease below is the belt-and-braces cap for
	// the window where the connection survives but the coordinator is
	// wedged.
	spec.Detach = false
	if spec.LeaseSeconds == 0 {
		spec.LeaseSeconds = int(c.cfg.DispatchTimeout/time.Second) + 30
	}
	key := serve.RunJobID(spec)
	excluded := make(map[string]bool)
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.cRetries.Inc()
			if err := c.bo.sleep(ctx, attempt-2); err != nil {
				return nil, err
			}
		}
		id, base, ok := c.pickWorker(key, excluded)
		if !ok {
			c.cNoWorker.Inc()
			if lastErr != nil {
				return nil, fmt.Errorf("%w (after %v)", ErrNoWorkers, lastErr)
			}
			return nil, ErrNoWorkers
		}
		view, err := c.postRun(ctx, base, spec)
		if err == nil {
			c.cDispatches.Inc()
			c.mu.Lock()
			if w, okw := c.workers[id]; okw {
				w.dispatched++
			}
			c.mu.Unlock()
			res := &DispatchResult{
				WorkerID:  id,
				Attempts:  attempt,
				StateHash: extractStateHash(view.Result),
				View:      view,
			}
			if err := c.replicateCheck(ctx, key, spec, res, excluded); err != nil {
				return nil, err
			}
			return res, nil
		}
		var wer *workerError
		if !errors.As(err, &wer) {
			// Deterministic job/spec failure: retrying elsewhere would
			// burn the fleet re-proving it.
			c.cDispatchFailed.Inc()
			return nil, err
		}
		lastErr = err
		excluded[id] = true
		c.cExclusions.Inc()
		c.noteDispatchFailure(id)
		c.cfg.Logf("cluster: dispatch %s attempt %d lost worker %s: %v", key, attempt, id, err)
	}
	c.cDispatchFailed.Inc()
	return nil, fmt.Errorf("cluster: dispatch failed after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// replicateCheck duplicates a sampled dispatch onto a second worker
// and compares state hashes. A cluster of one (or a fully excluded
// ring) skips silently — there is no second machine to disagree with.
func (c *Coordinator) replicateCheck(ctx context.Context, key string, spec serve.RunSpec, primary *DispatchResult, excluded map[string]bool) error {
	if !c.shouldReplicate(key) {
		return nil
	}
	ex := map[string]bool{primary.WorkerID: true}
	for id := range excluded {
		ex[id] = true
	}
	id, base, ok := c.pickWorker(key, ex)
	if !ok {
		return nil
	}
	view, err := c.postRun(ctx, base, spec)
	if err != nil {
		// The replica worker failing is a health event, not a
		// correctness verdict; the primary result stands.
		var wer *workerError
		if errors.As(err, &wer) {
			c.noteDispatchFailure(id)
		}
		c.cfg.Logf("cluster: replicate-check of %s on %s failed: %v", key, id, err)
		return nil
	}
	replicaHash := extractStateHash(view.Result)
	c.cHashChecks.Inc()
	if replicaHash != primary.StateHash {
		c.cHashMismatches.Inc()
		c.cfg.Logf("cluster: HASH MISMATCH %s: %s=%s vs %s=%s",
			key, primary.WorkerID, primary.StateHash, id, replicaHash)
		return fmt.Errorf("%w: %s reports %s, %s reports %s (job %s)",
			ErrHashMismatch, primary.WorkerID, primary.StateHash, id, replicaHash, key)
	}
	primary.Replicated = true
	return nil
}

// shouldReplicate samples deterministically in (seed, key): the same
// sweep replays the same checks.
func (c *Coordinator) shouldReplicate(key string) bool {
	p := c.cfg.ReplicateCheck
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := ringHash(fmt.Sprintf("replicate|%d|%s", c.cfg.Seed, key))
	return float64(h%(1<<20))/float64(1<<20) < p
}

// postRun submits spec to one worker and blocks (wait=1) until the
// job is terminal or the attempt times out. Worker-level failures come
// back as *workerError (retryable); everything else is terminal.
func (c *Coordinator) postRun(ctx context.Context, base string, spec serve.RunSpec) (serve.JobView, error) {
	var view serve.JobView
	body, err := json.Marshal(spec)
	if err != nil {
		return view, err
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.DispatchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/v1/runs?wait=1", bytes.NewReader(body))
	if err != nil {
		return view, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return view, &workerError{worker: base, err: err}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return view, &workerError{worker: base, err: err}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		// fall through to decode
	case resp.StatusCode == http.StatusBadRequest:
		return view, fmt.Errorf("%w: %s", ErrJobFailed, errorMessage(payload))
	default:
		// 429 (queue full), 503 (draining), 5xx, anything else: the
		// worker cannot take the job now — retry on another shard.
		return view, &workerError{worker: base,
			err: fmt.Errorf("status %d: %s", resp.StatusCode, errorMessage(payload))}
	}
	if err := json.Unmarshal(payload, &view); err != nil {
		return view, &workerError{worker: base, err: fmt.Errorf("bad job view: %v", err)}
	}
	switch view.State {
	case serve.StateDone:
		return view, nil
	case serve.StateFailed:
		return view, fmt.Errorf("%w: %s", ErrJobFailed, view.Error)
	default:
		// Canceled under us (lease lapse, worker drain): retryable.
		return view, &workerError{worker: base,
			err: fmt.Errorf("job ended %s: %s", view.State, view.Error)}
	}
}

// errorMessage extracts the serve error envelope's message, falling
// back to a truncated raw body.
func errorMessage(payload []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &e) == nil && e.Error != "" {
		return e.Error
	}
	if len(payload) > 200 {
		payload = payload[:200]
	}
	return string(payload)
}

// extractStateHash pulls the architectural state hash out of a
// completed run payload (serve.RunResult embeds sim.ResultJSON).
func extractStateHash(result json.RawMessage) string {
	var r struct {
		StateHash string `json:"state_hash"`
	}
	if json.Unmarshal(result, &r) != nil {
		return ""
	}
	return r.StateHash
}

// RetryAfterJittered is the 503 backpressure hint: base ±25%, so
// rejected clients spread their retries (same contract as the serve
// layer's 429 hint).
func (c *Coordinator) RetryAfterJittered() time.Duration {
	return serve.JitterDuration(c.cfg.RetryAfter, serve.RetryAfterJitterFrac)
}
