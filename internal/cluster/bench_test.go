package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rnrsim/internal/serve"
	"rnrsim/internal/telemetry"
)

// stubWorker answers dispatches instantly with a canned done view, so
// the benchmark measures coordinator overhead (routing, HTTP, retry
// machinery), not simulation time.
func stubWorker(b *testing.B, id string) string {
	b.Helper()
	view, err := json.Marshal(serve.JobView{
		ID:     "stub",
		Kind:   serve.KindRun,
		State:  serve.StateDone,
		Result: json.RawMessage(`{"state_hash":"00deadbeef00"}`),
	})
	if err != nil {
		b.Fatal(err)
	}
	status, _ := json.Marshal(serve.WorkerStatus{WorkerID: id})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/v1/worker/status" {
			w.Write(status)
			return
		}
		w.Write(view)
	}))
	b.Cleanup(ts.Close)
	return ts.URL
}

// BenchmarkClusterDispatch measures coordinator dispatch throughput
// (jobs/s) against 1 and 2 in-process stub workers: the cost of
// consistent-hash routing plus one proxied HTTP round-trip per job.
func BenchmarkClusterDispatch(b *testing.B) {
	// Distinct keys so routing exercises the whole ring rather than
	// one cached arc.
	prefetchers := []string{"none", "nextline", "stream", "ghb", "bingo", "rnr"}
	inputs := []string{"urand", "amazon", "com-orkut", "roadUSA"}
	for _, n := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			c := NewCoordinator(Config{
				DefaultScale:      "test",
				HeartbeatInterval: time.Hour, // out of the measurement
				Registry:          telemetry.NewRegistry(),
			})
			defer c.Close()
			for i := 0; i < n; i++ {
				id := fmt.Sprintf("w%d", i)
				if err := c.AddWorker(id, stubWorker(b, id)); err != nil {
					b.Fatal(err)
				}
			}
			ctx := context.Background()
			b.ResetTimer()
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					spec := serve.RunSpec{
						Workload:   "pagerank",
						Input:      inputs[i%len(inputs)],
						Prefetcher: prefetchers[i%len(prefetchers)],
						Scale:      "test",
					}
					if _, err := c.Dispatch(ctx, spec); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
		})
	}
}
