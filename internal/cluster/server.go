package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"rnrsim/internal/serve"
	"rnrsim/internal/sim"
	"rnrsim/internal/telemetry"
)

// Server is the coordinator's HTTP front-end. Routes:
//
//	GET    /healthz                   liveness (503 + Retry-After when the ring is empty)
//	GET    /metrics                   Prometheus text exposition (cluster instruments)
//	POST   /v1/cluster/join           worker registration {"id","url"}
//	DELETE /v1/cluster/workers/{id}   graceful worker leave
//	GET    /v1/cluster/workers        registry listing with health states
//	POST   /v1/runs                   dispatch one run to its ring owner (synchronous)
//	POST   /v1/sweeps                 submit a parameter grid → 202 sweep
//	GET    /v1/sweeps                 sweep listing
//	GET    /v1/sweeps/{id}            sweep status + per-cell table
//	GET    /v1/sweeps/{id}/events     aggregate SSE progress stream (resumable)
//
// The dispatch route mirrors the worker's POST /v1/runs shape, so a
// client written against a single rnrd talks to a coordinator
// unchanged — it just gets retries, health routing and hash checking
// for free.
type Server struct {
	c   *Coordinator
	mux *http.ServeMux
}

// NewServer wires the route table over a running coordinator.
func NewServer(c *Coordinator) *Server {
	s := &Server{c: c, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/cluster/join", s.handleJoin)
	s.mux.HandleFunc("DELETE /v1/cluster/workers/{id}", s.handleLeave)
	s.mux.HandleFunc("GET /v1/cluster/workers", s.handleWorkers)
	s.mux.HandleFunc("POST /v1/runs", s.handleDispatch)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleListSweeps)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGetSweep)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleSweepEvents)
	return s
}

// ServeHTTP dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

type errorBody struct {
	SchemaVersion string `json:"schema_version"`
	GeneratedAt   string `json:"generated_at"`
	Error         string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	schema, generated := sim.Stamp()
	writeJSON(w, status, errorBody{
		SchemaVersion: schema,
		GeneratedAt:   generated,
		Error:         fmt.Sprintf(format, args...),
	})
}

// writeUnavailable degrades gracefully: 503 with a jittered
// Retry-After so a thinned-out ring sheds load instead of timing out,
// and the retry herd arrives spread out.
func (s *Server) writeUnavailable(w http.ResponseWriter, err error) {
	secs := int(s.c.RetryAfterJittered().Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusServiceUnavailable, "%v", err)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.c.LiveWorkers() == 0 {
		s.writeUnavailable(w, ErrNoWorkers)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"workers\":%d}\n", s.c.LiveWorkers())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	regs := []*telemetry.Registry{s.c.Registry()}
	if s.c.Registry() != telemetry.Default {
		regs = append(regs, telemetry.Default)
	}
	_ = serve.WriteMetrics(w, 0, regs...)
}

// joinRequest is the worker registration body.
type joinRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := s.c.AddWorker(req.ID, req.URL); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Joined  string `json:"joined"`
		Workers int    `json:"workers"`
	}{req.ID, s.c.LiveWorkers()})
}

func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.c.RemoveWorker(id); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Left    string `json:"left"`
		Workers int    `json:"workers"`
	}{id, s.c.LiveWorkers()})
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	schema, generated := sim.Stamp()
	writeJSON(w, http.StatusOK, struct {
		SchemaVersion string       `json:"schema_version"`
		GeneratedAt   string       `json:"generated_at"`
		Workers       []WorkerInfo `json:"workers"`
	}{schema, generated, s.c.Workers()})
}

// handleDispatch routes one run to its ring owner and blocks until it
// completes (the coordinator holds the lease for the duration).
// Error mapping: spec/deterministic job failure → 400, no live worker
// → 503 + Retry-After, cross-worker hash mismatch → 500 (loud: the
// cluster is producing untrustworthy results), exhausted retries → 502.
func (s *Server) handleDispatch(w http.ResponseWriter, r *http.Request) {
	var spec serve.RunSpec
	if err := decodeBody(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	res, err := s.c.Dispatch(r.Context(), spec)
	if err != nil {
		switch {
		case errors.Is(err, ErrNoWorkers):
			s.writeUnavailable(w, err)
		case errors.Is(err, ErrHashMismatch):
			writeError(w, http.StatusInternalServerError, "%v", err)
		case errors.Is(err, ErrJobFailed):
			writeError(w, http.StatusBadRequest, "%v", err)
		case errors.Is(err, context.Canceled):
			// Client went away; nothing useful to write.
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusBadGateway, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	if err := decodeBody(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if s.c.LiveWorkers() == 0 {
		s.writeUnavailable(w, ErrNoWorkers)
		return
	}
	sw, err := s.c.StartSweep(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, sw.View(false))
}

func (s *Server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	sweeps := s.c.Sweeps()
	views := make([]SweepView, len(sweeps))
	for i, sw := range sweeps {
		views[i] = sw.View(false)
	}
	schema, generated := sim.Stamp()
	writeJSON(w, http.StatusOK, struct {
		SchemaVersion string      `json:"schema_version"`
		GeneratedAt   string      `json:"generated_at"`
		Sweeps        []SweepView `json:"sweeps"`
	}{schema, generated, views})
}

func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	sw, err := s.c.SweepByID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, sw.View(true))
}

// handleSweepEvents streams the sweep's aggregate progress over SSE:
// one channel carrying per-cell completions and running done/failed
// counters, resumable with Last-Event-ID like the worker job streams.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	sw, err := s.c.SweepByID(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	serve.StreamSSE(w, r, sw.EventLog())
}

// decodeBody decodes a JSON request body strictly (unknown fields are
// client errors).
func decodeBody(r *http.Request, v any) error {
	if r.Body == nil || r.ContentLength == 0 {
		return nil
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
