package mem

import "fmt"

// Region names a contiguous range of the simulated address space that a
// workload allocated for one of its data structures (a vertex array, the
// CSR column index, the RnR sequence table, ...). Regions are what the
// RnR boundary registers point at and what domain prefetchers such as
// DROPLET are configured with.
type Region struct {
	ID   int
	Name string
	Base Addr
	Size uint64
}

// Contains reports whether byte address a falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Base && a < r.Base+Addr(r.Size)
}

// End returns the first byte address past the region.
func (r Region) End() Addr { return r.Base + Addr(r.Size) }

// Lines returns the number of cache lines the region spans.
func (r Region) Lines() uint64 { return LinesIn(r.Base, r.Size) }

func (r Region) String() string {
	return fmt.Sprintf("%s[%#x..%#x)", r.Name, uint64(r.Base), uint64(r.End()))
}

// Allocator is a bump allocator over the simulated virtual address space.
// Workloads use it at "program start" to lay out their arrays exactly once;
// the resulting bases feed both the trace generator and the RnR boundary
// registers. The zero value is not ready: use NewAllocator so the address
// space starts above the null page.
type Allocator struct {
	next    Addr
	regions []Region
}

// NewAllocator returns an allocator whose first allocation lands at base.
func NewAllocator(base Addr) *Allocator {
	return &Allocator{next: AlignUp(base, PageSize)}
}

// Alloc reserves size bytes aligned to align (power of two, at least 1) and
// registers the range under name. It never fails: the simulated address
// space is effectively unbounded.
func (al *Allocator) Alloc(name string, size uint64, align Addr) Region {
	if align == 0 {
		align = 1
	}
	base := AlignUp(al.next, align)
	r := Region{ID: len(al.regions), Name: name, Base: base, Size: size}
	al.regions = append(al.regions, r)
	al.next = base + Addr(size)
	return r
}

// AllocPage reserves size bytes on a fresh 4 KB page boundary.
func (al *Allocator) AllocPage(name string, size uint64) Region {
	return al.Alloc(name, size, PageSize)
}

// Regions returns every region allocated so far, in allocation order.
func (al *Allocator) Regions() []Region { return al.regions }

// FindRegion returns the region containing a, if any.
func (al *Allocator) FindRegion(a Addr) (Region, bool) {
	for _, r := range al.regions {
		if r.Contains(a) {
			return r, true
		}
	}
	return Region{}, false
}
