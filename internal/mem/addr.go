// Package mem provides the address arithmetic, region bookkeeping and
// memory-request plumbing shared by every component of the simulator.
//
// The package is a leaf: caches, DRAM, cores and prefetchers all speak in
// terms of mem.Addr lines and exchange *mem.Request values, so none of them
// need to import each other.
package mem

// Addr is a virtual or physical byte address. The simulator does not model
// paging faults, so a single flat address space is shared and "virtual to
// physical" translation is the identity plus a TLB-latency charge.
type Addr uint64

// Geometry of the simulated memory system. These match the paper's baseline
// (Table II): 64 B cache lines, 4 KB OS pages, and the 4 MB metadata pages
// RnR uses to amortise TLB lookups during sequence-table streaming.
const (
	LineShift = 6
	LineSize  = 1 << LineShift // 64 B
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KB
	HugeShift = 22
	HugeSize  = 1 << HugeShift // 4 MB metadata pages (paper §V-A)
)

// LineAddr returns the address of the first byte of a's cache line.
func LineAddr(a Addr) Addr { return a &^ (LineSize - 1) }

// LineIndex returns the cache-line number of a (address divided by 64).
func LineIndex(a Addr) Addr { return a >> LineShift }

// LineOffset returns a's offset within its cache line.
func LineOffset(a Addr) uint64 { return uint64(a) & (LineSize - 1) }

// PageAddr returns the address of the first byte of a's 4 KB page.
func PageAddr(a Addr) Addr { return a &^ (PageSize - 1) }

// HugeAddr returns the address of the first byte of a's 4 MB metadata page.
func HugeAddr(a Addr) Addr { return a &^ (HugeSize - 1) }

// LinesIn returns how many cache lines are needed to hold size bytes
// starting at base, counting partial first/last lines.
func LinesIn(base Addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	first := LineIndex(base)
	last := LineIndex(base + Addr(size) - 1)
	return uint64(last-first) + 1
}

// AlignUp rounds a up to the next multiple of align (a power of two).
func AlignUp(a Addr, align Addr) Addr {
	return (a + align - 1) &^ (align - 1)
}
