package mem

import "fmt"

// ReqType classifies a memory request for priority and accounting purposes.
type ReqType uint8

const (
	// ReqLoad is a demand read issued by a core.
	ReqLoad ReqType = iota
	// ReqStore is a demand write issued by a core (write-allocate).
	ReqStore
	// ReqPrefetch is a hardware prefetch. Lower priority than demands.
	ReqPrefetch
	// ReqWriteback is a dirty-line eviction travelling down the hierarchy.
	ReqWriteback
	// ReqMetaRead is an RnR metadata (sequence/division table) streaming
	// read. It bypasses the caches and goes straight to memory.
	ReqMetaRead
	// ReqMetaWrite is an RnR metadata write-back during recording. Like the
	// paper's non-temporal stores it bypasses the caches.
	ReqMetaWrite
)

var reqTypeNames = [...]string{"load", "store", "prefetch", "writeback", "metaread", "metawrite"}

func (t ReqType) String() string {
	if int(t) < len(reqTypeNames) {
		return reqTypeNames[t]
	}
	return fmt.Sprintf("reqtype(%d)", uint8(t))
}

// IsDemand reports whether the request is a core demand access.
func (t ReqType) IsDemand() bool { return t == ReqLoad || t == ReqStore }

// IsMeta reports whether the request is RnR metadata traffic.
func (t ReqType) IsMeta() bool { return t == ReqMetaRead || t == ReqMetaWrite }

// Request is one in-flight memory transaction. A request is created by a
// core, a prefetcher or the RnR engine, flows down the cache hierarchy
// (possibly merging into an existing MSHR) and completes by invoking Done
// exactly once with the cycle at which its data is available.
type Request struct {
	Type ReqType
	Addr Addr   // full byte address of the access
	Line Addr   // line-aligned address (cached component key)
	PC   uint64 // synthetic program counter of the access site
	Core int    // issuing core, -1 for system-generated traffic

	// RegionID tags the request with the workload region it falls in
	// (-1 when unknown). StructFlag mirrors the paper's packet flag: set
	// when the access is a read within an enabled RnR boundary range.
	RegionID   int
	StructFlag bool

	// Issue is the cycle the request entered the memory system.
	Issue uint64

	// Done is invoked exactly once when the request's data is available.
	// May be nil for fire-and-forget traffic (writebacks, metadata writes).
	Done func(cycle uint64)
}

// NewRequest builds a request of type t for byte address a, filling in the
// derived line address.
func NewRequest(t ReqType, a Addr, pc uint64, core int, issue uint64) *Request {
	return &Request{
		Type:     t,
		Addr:     a,
		Line:     LineAddr(a),
		PC:       pc,
		Core:     core,
		RegionID: -1,
		Issue:    issue,
	}
}

// Complete invokes the Done callback, if any, and clears it so accidental
// double completion panics loudly in tests rather than corrupting stats.
func (r *Request) Complete(cycle uint64) {
	if r.Done != nil {
		d := r.Done
		r.Done = nil
		d(cycle)
	}
}

// Backend is anything that can accept requests at the bottom of a cache:
// the next cache level or the DRAM controller. TryEnqueue returns false
// when the component's input queue is full; the caller must retry later.
type Backend interface {
	TryEnqueue(r *Request) bool
}
