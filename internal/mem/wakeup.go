package mem

// WakeupNever is the sentinel a component's Wakeup method returns when
// its state cannot change on any future cycle without external input
// (a new request arriving, a completion callback firing). The
// event-driven simulator core (internal/sim) takes the minimum wakeup
// across all components and jumps straight there; WakeupNever is the
// identity of that minimum.
//
// The wakeup contract, shared by every ticked component:
//
//   - Wakeup(now) returns the earliest cycle > now at which the
//     component's Tick could observably change state, assuming no
//     external input arrives before then. Returning an earlier cycle
//     than the true one is always safe (the extra tick is a no-op);
//     returning a later one is a correctness bug.
//   - A wakeup value <= now means "as soon as possible" and is treated
//     by the scheduler as now+1, never skipped.
//   - Wakeups are recomputed after every simulated cycle, so a
//     component whose next change is triggered by a completion
//     callback may report WakeupNever: the callback can only fire
//     during some component's tick, after which all wakeups are
//     re-evaluated.
const WakeupNever = ^uint64(0)

// DemandCapacity is optionally implemented by backends whose demand
// input queue applies backpressure. A core whose dispatch was rejected
// uses it to tell "the queue will have drained by next cycle" (retry
// imminent) from "still full" (frozen until the backend's next tick,
// after which wakeups are recomputed) without ticking every cycle.
type DemandCapacity interface {
	CanAcceptDemand() bool
}
