package mem

// WakeupNever is the sentinel a component's Wakeup method returns when
// its state cannot change on any future cycle without external input
// (a new request arriving, a completion callback firing). The
// event-driven simulator core (internal/sim) takes the minimum wakeup
// across all components and jumps straight there; WakeupNever is the
// identity of that minimum.
//
// The wakeup contract, shared by every ticked component:
//
//   - Wakeup(now) returns the earliest cycle > now at which the
//     component's Tick could observably change state, assuming no
//     external input arrives before then. Returning an earlier cycle
//     than the true one is always safe (the extra tick is a no-op);
//     returning a later one is a correctness bug.
//   - A wakeup value <= now means "as soon as possible" and is treated
//     by the scheduler as now+1, never skipped.
//   - Wakeups are recomputed after every simulated cycle, so a
//     component whose next change is triggered by a completion
//     callback may report WakeupNever: the callback can only fire
//     during some component's tick, after which all wakeups are
//     re-evaluated.
//
// Domain spans (parallel per-core execution). The parallel scheduler in
// internal/sim extends the contract: over a quiet window (now, T) during
// which no shared-level component (LLC bank, DRAM controller, context
// scheduler, audit/sample event) can act, each core's private domain
// ticks independently on its own goroutine. Within the window the domain
// relies on a stronger reading of Wakeup: a component's Wakeup is also a
// lower bound on the first cycle its Tick would *act* (send a request
// downstream, fire a hook, complete a fill) — which holds because any
// state that could unfreeze it earlier must arrive via an external
// completion, and external completions originate at the shared level,
// which is frozen for the whole window by construction. The scheduler
// sizes T so that no private component's action can cascade into the
// shared level before T; see internal/sim/parallel.go for the horizon
// terms.
const WakeupNever = ^uint64(0)

// DemandCapacity is optionally implemented by backends whose demand
// input queue applies backpressure. A core whose dispatch was rejected
// uses it to tell "the queue will have drained by next cycle" (retry
// imminent) from "still full" (frozen until the backend's next tick,
// after which wakeups are recomputed) without ticking every cycle.
type DemandCapacity interface {
	CanAcceptDemand() bool
}
