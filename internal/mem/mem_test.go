package mem

import (
	"testing"
	"testing/quick"
)

func TestLineMath(t *testing.T) {
	cases := []struct {
		addr       Addr
		line       Addr
		idx        Addr
		off        uint64
		page, huge Addr
	}{
		{0, 0, 0, 0, 0, 0},
		{1, 0, 0, 1, 0, 0},
		{63, 0, 0, 63, 0, 0},
		{64, 64, 1, 0, 0, 0},
		{4095, 4032, 63, 63, 0, 0},
		{4096, 4096, 64, 0, 4096, 0},
		{0x400000, 0x400000, 0x10000, 0, 0x400000, 0x400000},
		{0x400001, 0x400000, 0x10000, 1, 0x400000, 0x400000},
	}
	for _, c := range cases {
		if got := LineAddr(c.addr); got != c.line {
			t.Errorf("LineAddr(%#x) = %#x, want %#x", c.addr, got, c.line)
		}
		if got := LineIndex(c.addr); got != c.idx {
			t.Errorf("LineIndex(%#x) = %#x, want %#x", c.addr, got, c.idx)
		}
		if got := LineOffset(c.addr); got != c.off {
			t.Errorf("LineOffset(%#x) = %#x, want %#x", c.addr, got, c.off)
		}
		if got := PageAddr(c.addr); got != c.page {
			t.Errorf("PageAddr(%#x) = %#x, want %#x", c.addr, got, c.page)
		}
		if got := HugeAddr(c.addr); got != c.huge {
			t.Errorf("HugeAddr(%#x) = %#x, want %#x", c.addr, got, c.huge)
		}
	}
}

func TestLinesIn(t *testing.T) {
	cases := []struct {
		base Addr
		size uint64
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 2, 2},   // straddles a line boundary
		{64, 64, 1},  // exactly one aligned line
		{10, 128, 3}, // unaligned two-and-a-bit lines
	}
	for _, c := range cases {
		if got := LinesIn(c.base, c.size); got != c.want {
			t.Errorf("LinesIn(%#x, %d) = %d, want %d", c.base, c.size, got, c.want)
		}
	}
}

func TestLineMathProperties(t *testing.T) {
	// LineAddr is idempotent, aligned, and never past the input.
	prop := func(a uint64) bool {
		la := LineAddr(Addr(a))
		return la <= Addr(a) &&
			uint64(la)%LineSize == 0 &&
			LineAddr(la) == la &&
			uint64(Addr(a)-la) == LineOffset(Addr(a))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignUp(t *testing.T) {
	if got := AlignUp(0, 64); got != 0 {
		t.Errorf("AlignUp(0,64) = %d", got)
	}
	if got := AlignUp(1, 64); got != 64 {
		t.Errorf("AlignUp(1,64) = %d", got)
	}
	if got := AlignUp(64, 64); got != 64 {
		t.Errorf("AlignUp(64,64) = %d", got)
	}
	prop := func(a uint32) bool {
		up := AlignUp(Addr(a), PageSize)
		return up >= Addr(a) && uint64(up)%PageSize == 0 && up-Addr(a) < PageSize
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAllocatorLayout(t *testing.T) {
	al := NewAllocator(0x1000)
	a := al.AllocPage("a", 100)
	b := al.AllocPage("b", 4096)
	c := al.Alloc("c", 10, 64)

	if a.Base != 0x1000 {
		t.Errorf("first region base = %#x, want 0x1000", uint64(a.Base))
	}
	if uint64(b.Base)%PageSize != 0 {
		t.Errorf("page alloc not page aligned: %#x", uint64(b.Base))
	}
	if b.Base < a.End() {
		t.Errorf("regions overlap: %v then %v", a, b)
	}
	if c.Base < b.End() || uint64(c.Base)%64 != 0 {
		t.Errorf("third region misplaced: %v after %v", c, b)
	}
	if got := len(al.Regions()); got != 3 {
		t.Fatalf("Regions() returned %d entries, want 3", got)
	}
	for i, r := range al.Regions() {
		if r.ID != i {
			t.Errorf("region %d has ID %d", i, r.ID)
		}
	}
}

func TestAllocatorNoOverlap(t *testing.T) {
	al := NewAllocator(0)
	sizes := []uint64{1, 63, 64, 65, 4095, 4096, 4097, 1 << 20}
	for i, sz := range sizes {
		al.Alloc("r", sz, 64)
		_ = i
	}
	rs := al.Regions()
	for i := 1; i < len(rs); i++ {
		if rs[i].Base < rs[i-1].End() {
			t.Errorf("region %d (%v) overlaps previous (%v)", i, rs[i], rs[i-1])
		}
	}
}

func TestRegionContainsAndFind(t *testing.T) {
	al := NewAllocator(0x10000)
	r := al.Alloc("x", 256, 64)
	if !r.Contains(r.Base) || !r.Contains(r.End()-1) {
		t.Error("region does not contain its own bounds")
	}
	if r.Contains(r.End()) || r.Contains(r.Base-1) {
		t.Error("region contains addresses outside itself")
	}
	if got, ok := al.FindRegion(r.Base + 5); !ok || got.ID != r.ID {
		t.Errorf("FindRegion inside = %v,%v", got, ok)
	}
	if _, ok := al.FindRegion(0); ok {
		t.Error("FindRegion found a region at unallocated address 0")
	}
	if r.Lines() != 4 {
		t.Errorf("Lines() = %d, want 4", r.Lines())
	}
}

func TestRequestCompleteOnce(t *testing.T) {
	n := 0
	r := NewRequest(ReqLoad, 0x1234, 7, 0, 100)
	r.Done = func(cycle uint64) {
		n++
		if cycle != 150 {
			t.Errorf("completion cycle = %d, want 150", cycle)
		}
	}
	if r.Line != 0x1200 {
		t.Errorf("derived line = %#x, want 0x1200", uint64(r.Line))
	}
	r.Complete(150)
	r.Complete(160) // must be a no-op
	if n != 1 {
		t.Errorf("Done ran %d times, want 1", n)
	}
}

func TestReqTypeClassifiers(t *testing.T) {
	if !ReqLoad.IsDemand() || !ReqStore.IsDemand() {
		t.Error("load/store must be demand")
	}
	if ReqPrefetch.IsDemand() || ReqMetaRead.IsDemand() {
		t.Error("prefetch/meta must not be demand")
	}
	if !ReqMetaRead.IsMeta() || !ReqMetaWrite.IsMeta() {
		t.Error("meta requests misclassified")
	}
	if ReqLoad.String() != "load" || ReqWriteback.String() != "writeback" {
		t.Errorf("String() = %q/%q", ReqLoad, ReqWriteback)
	}
}
