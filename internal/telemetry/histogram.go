package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync/atomic"
)

// HistogramBuckets is the fixed bucket count of every Histogram:
// bucket 0 holds the value zero, bucket i (1..64) holds values in
// [2^(i-1), 2^i). The layout covers the full uint64 range with no
// configuration, which keeps Observe branch-free and lets two
// histograms from different runs be merged or diffed bucket-by-bucket.
const HistogramBuckets = 65

// Histogram is an exponential-bucket (base-2) histogram of uint64
// samples — cycle latencies, queue depths, distances. Like Counter and
// Gauge it is atomic and nil-safe: a nil *Histogram ignores Observe and
// reports zero everywhere, so instrumented components keep a
// possibly-nil pointer and call unconditionally.
type Histogram struct {
	buckets [HistogramBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// histBucket returns the bucket index for v: bits.Len64 maps 0→0, 1→1,
// [2,3]→2, [4,7]→3, … so bucket i's inclusive upper bound is 2^i - 1.
func histBucket(v uint64) int { return bits.Len64(v) }

// HistogramBucketBound returns bucket i's inclusive upper bound
// (0 for bucket 0, 2^i-1 for 1..63, MaxUint64 for bucket 64).
func HistogramBucketBound(i int) uint64 {
	switch {
	case i <= 0:
		return 0
	case i >= 64:
		return math.MaxUint64
	default:
		return 1<<uint(i) - 1
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[histBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observed samples (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples, wrapping on overflow (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the sample count of bucket i (0 on nil or out of range).
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil || i < 0 || i >= HistogramBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// HistogramBucketJSON is one non-empty bucket in a histogram export.
// The upper bound is decimal-in-a-string ("+Inf" for the top bucket) so
// the 2^64-1 boundary survives JSON consumers that parse numbers as
// float64.
type HistogramBucketJSON struct {
	UpperBound string `json:"le"`
	Count      uint64 `json:"count"`
}

// HistogramJSON is the export view of a Histogram: total count/sum and
// the non-empty buckets in ascending bound order (per-bucket counts,
// not cumulative — the Prometheus exposition cumulates at render time).
type HistogramJSON struct {
	Count   uint64                `json:"count"`
	Sum     uint64                `json:"sum"`
	Buckets []HistogramBucketJSON `json:"buckets,omitempty"`
}

// JSON snapshots the histogram into its export view (zero value on nil).
func (h *Histogram) JSON() HistogramJSON {
	if h == nil {
		return HistogramJSON{}
	}
	out := HistogramJSON{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < HistogramBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := "+Inf"
		if i < 64 {
			le = strconv.FormatUint(HistogramBucketBound(i), 10)
		}
		out.Buckets = append(out.Buckets, HistogramBucketJSON{UpperBound: le, Count: n})
	}
	return out
}

// NamedHistogram pairs a histogram with its registry name.
type NamedHistogram struct {
	Name string
	H    *Histogram
}

// Histogram returns (registering on first use) the named histogram, or
// nil when the registry is nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Histograms returns every registered histogram sorted by name, so
// exposition and JSON exports are byte-stable. Nil-safe.
func (r *Registry) Histograms() []NamedHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NamedHistogram, 0, len(r.hists))
	for n, h := range r.hists {
		out = append(out, NamedHistogram{Name: n, H: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Histogram returns the recorder's named histogram (nil when disabled).
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.reg.Histogram(name)
}
