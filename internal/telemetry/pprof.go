package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a runtime/pprof CPU profile at path and returns
// a stop function to defer. An empty path is a no-op (the returned stop
// is still safe to call), so CLIs can pass their flag value directly.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path after a GC, so the
// numbers reflect live retained memory. An empty path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	return f.Close()
}
