package telemetry

import (
	"fmt"
	"io"
	"os"
)

// Config sizes a Recorder.
type Config struct {
	// SampleInterval is the number of simulated cycles between series
	// samples; 0 defaults to 10_000 (≈2.5 µs of simulated time at 4 GHz).
	SampleInterval uint64
	// RingCap bounds retained samples (oldest dropped); 0 = 65536.
	RingCap int
	// TraceCap bounds retained trace events (newest dropped); 0 = 1M.
	TraceCap int
}

// DefaultSampleInterval is the sampling period used when Config leaves
// SampleInterval zero.
const DefaultSampleInterval = 10_000

// Recorder bundles a registry, a cycle-sampled series collector and an
// event tracer for one simulation run. A nil *Recorder is fully inert:
// every method is a nil-checked no-op, which is the disabled fast path
// the simulator relies on.
type Recorder struct {
	reg      Registry
	sampler  *Sampler
	tracer   *Tracer
	interval uint64
}

// Counter returns the recorder's named counter (nil when disabled).
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.reg.Counter(name)
}

// Gauge returns the recorder's named gauge (nil when disabled).
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.reg.Gauge(name)
}

// Probe registers a pull-style gauge (no-op when disabled).
func (r *Recorder) Probe(name string, fn Probe) {
	if r == nil {
		return
	}
	r.reg.Probe(name, fn)
}

// New builds an enabled recorder.
func New(cfg Config) *Recorder {
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = DefaultSampleInterval
	}
	return &Recorder{
		sampler:  newSampler(cfg.RingCap),
		tracer:   newTracer(cfg.TraceCap),
		interval: cfg.SampleInterval,
	}
}

// Enabled reports whether the recorder collects anything.
func (r *Recorder) Enabled() bool { return r != nil }

// SampleInterval returns the configured sampling period (0 when nil, so
// callers can use it directly in a modulus guard).
func (r *Recorder) SampleInterval() uint64 {
	if r == nil {
		return 0
	}
	return r.interval
}

// Sample polls every registered probe/gauge/counter and appends one row
// stamped with cycle. The caller (sim.System.Tick) decides the cadence.
func (r *Recorder) Sample(cycle uint64) {
	if r == nil {
		return
	}
	r.sampler.sample(&r.reg, cycle)
}

// Span records a completed [start,end] duration on track.
func (r *Recorder) Span(track, name string, start, end uint64) {
	if r == nil {
		return
	}
	r.tracer.span(track, name, start, end)
}

// Instant records a point event on track.
func (r *Recorder) Instant(track, name string, cycle uint64) {
	if r == nil {
		return
	}
	r.tracer.instant(track, name, cycle)
}

// Sampler exposes the series collector (nil when disabled).
func (r *Recorder) Sampler() *Sampler {
	if r == nil {
		return nil
	}
	return r.sampler
}

// Tracer exposes the event tracer (nil when disabled).
func (r *Recorder) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// WriteMetricsJSONL streams the retained series rows as JSONL.
func (r *Recorder) WriteMetricsJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.sampler.WriteJSONL(w)
}

// WriteTraceJSON streams the Chrome trace-event JSON.
func (r *Recorder) WriteTraceJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.tracer.WriteTrace(w)
}

// WriteMetricsFile writes the series to path (no-op when nil).
func (r *Recorder) WriteMetricsFile(path string) error {
	return r.writeFile(path, r.WriteMetricsJSONL)
}

// WriteTraceFile writes the trace to path (no-op when nil).
func (r *Recorder) WriteTraceFile(path string) error {
	return r.writeFile(path, r.WriteTraceJSON)
}

func (r *Recorder) writeFile(path string, emit func(io.Writer) error) error {
	if r == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if err := emit(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: write %s: %w", path, err)
	}
	return f.Close()
}
