package telemetry

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"sync"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// sampleRow is one cycle-stamped reading of every registered column.
type sampleRow struct {
	cycle uint64
	vals  []float64
}

// Sampler is a ring-buffered time-series collector. The column schema is
// frozen at the first sample (register probes before the run starts);
// when the ring fills, the oldest rows are overwritten and counted in
// Dropped.
type Sampler struct {
	mu      sync.Mutex
	ringCap int
	cols    []string
	read    []func(cycle uint64) float64
	rows    []sampleRow
	head    int // index of the oldest row once the ring has wrapped
	wrapped bool
	dropped uint64
	frozen  bool
}

func newSampler(ringCap int) *Sampler {
	if ringCap <= 0 {
		ringCap = 1 << 16
	}
	return &Sampler{ringCap: ringCap}
}

// sample polls every column and appends one row.
func (s *Sampler) sample(reg *Registry, cycle uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.frozen {
		s.cols, s.read = reg.columns()
		s.frozen = true
	}
	row := sampleRow{cycle: cycle, vals: make([]float64, len(s.read))}
	for i, fn := range s.read {
		v := fn(cycle)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		row.vals[i] = v
	}
	if len(s.rows) < s.ringCap {
		s.rows = append(s.rows, row)
		return
	}
	s.rows[s.head] = row
	s.head = (s.head + 1) % s.ringCap
	s.wrapped = true
	s.dropped++
}

// Len returns the number of retained rows.
func (s *Sampler) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rows)
}

// Dropped returns how many rows were overwritten by ring wrap-around.
func (s *Sampler) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Columns returns the frozen column names (nil before the first sample).
func (s *Sampler) Columns() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.cols...)
}

// WriteJSONL emits the retained rows, oldest first, one JSON object per
// line: {"cycle":N,"<col>":v,...}. Values are finite by construction.
func (s *Sampler) WriteJSONL(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	bw := bufio.NewWriter(w)
	n := len(s.rows)
	for i := 0; i < n; i++ {
		idx := i
		if s.wrapped {
			idx = (s.head + i) % n
		}
		row := s.rows[idx]
		buf := make([]byte, 0, 32+len(s.cols)*24)
		buf = append(buf, `{"cycle":`...)
		buf = strconv.AppendUint(buf, row.cycle, 10)
		for j, name := range s.cols {
			buf = append(buf, ',', '"')
			buf = append(buf, name...)
			buf = append(buf, '"', ':')
			buf = strconv.AppendFloat(buf, row.vals[j], 'g', -1, 64)
		}
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
