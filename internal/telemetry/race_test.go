package telemetry

// Concurrency audit of the telemetry instruments (run these under
// `go test -race`). The parallel experiment engine (internal/bench)
// simulates several Systems at once, and every System increments the
// process-wide telemetry.Default counters (e.g. the sim.accuracy_clamped
// clamp counters in sim/result.go), so the instruments must tolerate
// concurrent writers with no coordination:
//
//   - Counter / Gauge: lock-free sync/atomic — Inc/Add/Set/Load race-free
//     and exact (no lost updates).
//   - Registry: mutexed maps — first-use registration of the same name
//     from many goroutines yields one shared instrument.
//   - Recorder / Sampler / Tracer: mutexed ring buffers — Sample, Span
//     and Instant may interleave with probe registration and exports.
//
// Each test below pins one of those properties.

import (
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestCounterConcurrentExact asserts no increments are lost under
// contention: 16 writers x 1000 Incs + 16 writers x 1000 Add(3)s must
// land exactly, with concurrent readers observing monotonic progress.
func TestCounterConcurrentExact(t *testing.T) {
	c := NewRegistry().Counter("c")
	const writers, each = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Add(3)
			}
		}()
	}
	// Concurrent readers: -race flags any unsynchronised access.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for i := 0; i < 1000; i++ {
			v := c.Load()
			if v < last {
				t.Errorf("counter went backwards: %d -> %d", last, v)
				return
			}
			last = v
		}
	}()
	wg.Wait()
	if got, want := c.Load(), uint64(writers*each*4); got != want {
		t.Fatalf("lost updates: counter = %d, want %d", got, want)
	}
}

// TestGaugeConcurrent asserts Set/Load race-freedom: the final value is
// one of the written values, never a torn mix.
func TestGaugeConcurrent(t *testing.T) {
	g := NewRegistry().Gauge("g")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(2)
		v := float64(w + 1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Set(v)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				got := g.Load()
				if got != 0 && (got < 1 || got > 8 || got != float64(int(got))) {
					t.Errorf("torn gauge read: %v", got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestRegistryConcurrentFirstUse asserts the check-then-insert in
// Registry.Counter/Gauge is atomic: 32 goroutines racing on the same
// name all get the same instrument, and their increments merge.
func TestRegistryConcurrentFirstUse(t *testing.T) {
	r := NewRegistry()
	const callers = 32
	counters := make([]*Counter, callers)
	gauges := make([]*Gauge, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counters[i] = r.Counter("shared")
			counters[i].Inc()
			gauges[i] = r.Gauge("shared")
			// And some unshared names, racing map growth.
			r.Counter(fmt.Sprintf("own-%d", i)).Inc()
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if counters[i] != counters[0] {
			t.Fatalf("caller %d got a distinct *Counter for the same name", i)
		}
		if gauges[i] != gauges[0] {
			t.Fatalf("caller %d got a distinct *Gauge for the same name", i)
		}
	}
	if got := counters[0].Load(); got != callers {
		t.Fatalf("shared counter = %d, want %d", got, callers)
	}
}

// TestDefaultRegistryConcurrent pins the pattern sim/result.go relies
// on: many concurrent simulations bumping process-wide clamp counters
// through telemetry.Default with no coordination.
func TestDefaultRegistryConcurrent(t *testing.T) {
	const writers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				Default.Counter("test.race.clamped").Inc()
			}
		}()
	}
	wg.Wait()
	if got := Default.Counter("test.race.clamped").Load(); got != writers*each {
		t.Fatalf("Default counter = %d, want %d", got, writers*each)
	}
}

// TestRecorderConcurrentUse exercises the full Recorder surface from
// many goroutines at once: probe registration racing Sample, Span and
// Instant racing the exports. Only -race correctness is asserted — the
// sampled contents are unordered by construction.
func TestRecorderConcurrentUse(t *testing.T) {
	rec := New(Config{SampleInterval: 1})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(4)
		w := w
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Probe(fmt.Sprintf("p%d-%d", w, i), func(cycle uint64) float64 { return float64(cycle) })
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Sample(uint64(i))
				rec.Counter("events").Inc()
				rec.Gauge("level").Set(float64(i))
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec.Span("track", "work", uint64(i), uint64(i+10))
				rec.Instant("track", "mark", uint64(i))
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := rec.WriteMetricsJSONL(io.Discard); err != nil {
					t.Errorf("WriteMetricsJSONL: %v", err)
					return
				}
				if err := rec.WriteTraceJSON(io.Discard); err != nil {
					t.Errorf("WriteTraceJSON: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if rec.Sampler().Len() == 0 {
		t.Fatal("no samples recorded")
	}
	if rec.Tracer().Len() == 0 {
		t.Fatal("no trace events recorded")
	}
}
