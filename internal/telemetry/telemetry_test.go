package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestDisabledFastPathAllocatesNothing is the zero-overhead contract: a
// nil recorder (telemetry off, the simulator's default) must not
// allocate on any instrumentation call.
func TestDisabledFastPathAllocatesNothing(t *testing.T) {
	var rec *Recorder
	var cnt *Counter
	var g *Gauge
	probe := func(uint64) float64 { return 1 }
	allocs := testing.AllocsPerRun(1000, func() {
		cnt.Inc()
		cnt.Add(3)
		_ = cnt.Load()
		g.Set(1.5)
		g.Add(2.5)
		_ = g.Load()
		rec.Probe("x", probe)
		rec.Sample(42)
		rec.Span("track", "name", 1, 2)
		rec.Instant("track", "name", 3)
		_ = rec.SampleInterval()
		_ = rec.Enabled()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocated %.1f objects per run, want 0", allocs)
	}
}

// TestGaugeAdd pins delta-gauge semantics: concurrent +1/-1 pairs net
// to zero (Set would lose updates under the same interleaving).
func TestGaugeAdd(t *testing.T) {
	g := NewRegistry().Gauge("level")
	g.Set(10)
	g.Add(2.5)
	g.Add(-0.5)
	if got := g.Load(); got != 12 {
		t.Fatalf("Load = %v after 10+2.5-0.5, want 12", got)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Load(); got != 12 {
		t.Fatalf("Load = %v after balanced concurrent Adds, want 12", got)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var reg *Registry
	if c := reg.Counter("a"); c != nil {
		t.Error("nil registry returned a counter")
	}
	if g := reg.Gauge("a"); g != nil {
		t.Error("nil registry returned a gauge")
	}
	reg.Probe("a", func(uint64) float64 { return 0 }) // must not panic
	var rec *Recorder
	if rec.Counter("a") != nil || rec.Gauge("a") != nil {
		t.Error("nil recorder returned instruments")
	}
	if rec.Sampler() != nil || rec.Tracer() != nil {
		t.Error("nil recorder exposed collectors")
	}
	if err := rec.WriteMetricsJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil recorder write: %v", err)
	}
	if err := rec.WriteMetricsFile("/nonexistent/should-not-matter"); err != nil {
		t.Errorf("nil recorder file write: %v", err)
	}
}

// TestSamplerSeriesLength drives a known cycle count through the
// System-side cadence (sample every interval, plus one final off-grid
// sample) and checks the row count and cycle stamps.
func TestSamplerSeriesLength(t *testing.T) {
	const interval, cycles = 100, 1050
	rec := New(Config{SampleInterval: interval})
	var polled int
	rec.Probe("p", func(uint64) float64 { polled++; return float64(polled) })

	for cyc := uint64(1); cyc <= cycles; cyc++ {
		if cyc%rec.SampleInterval() == 0 {
			rec.Sample(cyc)
		}
	}
	rec.Sample(cycles) // the simulator's final post-drain sample

	want := cycles/interval + 1 // 10 on-grid + 1 final
	if got := rec.Sampler().Len(); got != want {
		t.Fatalf("sampler retained %d rows for %d cycles at interval %d, want %d",
			got, cycles, interval, want)
	}
	if polled != want {
		t.Fatalf("probe polled %d times, want %d", polled, want)
	}

	var buf bytes.Buffer
	if err := rec.WriteMetricsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != want {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), want)
	}
	// Every line is a standalone JSON object with cycle and the column.
	var first struct {
		Cycle uint64  `json:"cycle"`
		P     float64 `json:"p"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not valid JSON: %v", err)
	}
	if first.Cycle != interval || first.P != 1 {
		t.Errorf("first row = {cycle:%d p:%v}, want {cycle:%d p:1}", first.Cycle, first.P, interval)
	}
}

func TestSamplerRingDropsOldest(t *testing.T) {
	rec := New(Config{SampleInterval: 1, RingCap: 4})
	rec.Probe("p", func(cyc uint64) float64 { return float64(cyc) })
	for cyc := uint64(1); cyc <= 10; cyc++ {
		rec.Sample(cyc)
	}
	if got := rec.Sampler().Len(); got != 4 {
		t.Fatalf("ring retained %d rows, want 4", got)
	}
	if got := rec.Sampler().Dropped(); got != 6 {
		t.Fatalf("ring dropped %d rows, want 6", got)
	}
	var buf bytes.Buffer
	if err := rec.WriteMetricsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	wantCycle := uint64(7) // oldest surviving row
	for sc.Scan() {
		var row struct {
			Cycle uint64 `json:"cycle"`
		}
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatal(err)
		}
		if row.Cycle != wantCycle {
			t.Fatalf("row cycle %d, want %d (oldest-first export)", row.Cycle, wantCycle)
		}
		wantCycle++
	}
}

func TestSampleRowIncludesCountersAndGauges(t *testing.T) {
	rec := New(Config{SampleInterval: 1})
	rec.Counter("hits").Add(7)
	rec.Gauge("depth").Set(3.5)
	rec.Sample(10)
	var buf bytes.Buffer
	if err := rec.WriteMetricsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var row map[string]float64
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &row); err != nil {
		t.Fatal(err)
	}
	if row["hits"] != 7 || row["depth"] != 3.5 {
		t.Errorf("row = %v, want hits=7 depth=3.5", row)
	}
}

// TestTraceRoundTrip checks the exported trace parses with
// encoding/json and that every track's B/E events pair up with
// non-decreasing timestamps.
func TestTraceRoundTrip(t *testing.T) {
	rec := New(Config{})
	rec.Span("iterations", "iter 0", 0, 100)
	rec.Span("iterations", "iter 1", 100, 250)
	rec.Span("rnr.c0", "record", 10, 90)
	rec.Span("rnr.c0", "replay", 90, 240)
	rec.Instant("rnr.c0", "seq-overflow", 42)
	rec.Span("dram", "write-drain", 55, 77)

	var buf bytes.Buffer
	if err := rec.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file TraceFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	type open struct {
		name string
		ts   uint64
	}
	stacks := make(map[int][]open)
	threadNames := make(map[int]string)
	spans := 0
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				threadNames[ev.TID] = ev.Args["name"].(string)
			}
		case "B":
			stacks[ev.TID] = append(stacks[ev.TID], open{ev.Name, ev.TS})
		case "E":
			st := stacks[ev.TID]
			if len(st) == 0 {
				t.Fatalf("E %q on tid %d without matching B", ev.Name, ev.TID)
			}
			top := st[len(st)-1]
			stacks[ev.TID] = st[:len(st)-1]
			if top.name != ev.Name {
				t.Fatalf("E %q closes B %q", ev.Name, top.name)
			}
			if ev.TS < top.ts {
				t.Fatalf("span %q ends at %d before it begins at %d", ev.Name, ev.TS, top.ts)
			}
			spans++
		case "i":
			// fine
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Errorf("tid %d has %d unclosed spans", tid, len(st))
		}
	}
	if spans != 5 {
		t.Errorf("trace has %d spans, want 5", spans)
	}
	// Tracks must be named.
	wantTracks := map[string]bool{"iterations": true, "rnr.c0": true, "dram": true}
	for _, name := range threadNames {
		delete(wantTracks, name)
	}
	if len(wantTracks) != 0 {
		t.Errorf("missing thread_name metadata for tracks: %v", wantTracks)
	}
}

func TestTracerCapDropsWholeSpans(t *testing.T) {
	rec := New(Config{TraceCap: 4})
	rec.Span("t", "a", 0, 1)
	rec.Span("t", "b", 1, 2)
	rec.Span("t", "c", 2, 3) // over cap: dropped as a pair
	if got := rec.Tracer().Len(); got != 4 {
		t.Fatalf("tracer kept %d events, want 4", got)
	}
	if got := rec.Tracer().Dropped(); got != 2 {
		t.Fatalf("tracer dropped %d events, want 2", got)
	}
	var buf bytes.Buffer
	if err := rec.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file TraceFile
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	b, e := 0, 0
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "B":
			b++
		case "E":
			e++
		}
	}
	if b != e {
		t.Errorf("unbalanced trace after cap: %d B vs %d E", b, e)
	}
}

// TestConcurrentInstruments exercises the registry, sampler and tracer
// from many goroutines; run under -race this is the data-race guard.
func TestConcurrentInstruments(t *testing.T) {
	rec := New(Config{SampleInterval: 1, RingCap: 64, TraceCap: 1024})
	rec.Probe("p", func(uint64) float64 { return 1 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := rec.Counter("shared")
			for i := 0; i < 500; i++ {
				c.Inc()
				rec.Gauge("g").Set(float64(i))
				rec.Span("t", "s", uint64(i), uint64(i+1))
				rec.Instant("t", "i", uint64(i))
				rec.Sample(uint64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if got := rec.Counter("shared").Load(); got != 8*500 {
		t.Errorf("shared counter = %d, want %d", got, 8*500)
	}
	var buf bytes.Buffer
	if err := rec.WriteTraceJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteMetricsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestProfileHelpersNoopOnEmptyPath(t *testing.T) {
	stop, err := StartCPUProfile("")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if err := WriteHeapProfile(""); err != nil {
		t.Fatal(err)
	}
}

func TestProfileHelpersWriteFiles(t *testing.T) {
	dir := t.TempDir()
	stop, err := StartCPUProfile(dir + "/cpu.pprof")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if err := WriteHeapProfile(dir + "/heap.pprof"); err != nil {
		t.Fatal(err)
	}
}
