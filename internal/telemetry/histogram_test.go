package telemetry

import (
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the base-2 bucket layout at its
// edges: zero, one, every power-of-two boundary pair (2^i-1 vs 2^i),
// and max-uint64.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1<<32 - 1, 32},
		{1 << 32, 33},
		{1<<63 - 1, 63},
		{1 << 63, 64},
		{math.MaxUint64, 64},
	}
	for _, c := range cases {
		if got := histBucket(c.v); got != c.bucket {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.bucket)
		}
		// The bucket's bound must be the smallest that admits v.
		if b := HistogramBucketBound(c.bucket); b < c.v {
			t.Errorf("bucket %d bound %d below member %d", c.bucket, b, c.v)
		}
		if c.bucket > 0 {
			if b := HistogramBucketBound(c.bucket - 1); b >= c.v {
				t.Errorf("bucket %d bound %d already admits %d", c.bucket-1, b, c.v)
			}
		}
	}
	if HistogramBucketBound(0) != 0 {
		t.Error("bucket 0 bound must be 0")
	}
	if HistogramBucketBound(64) != math.MaxUint64 {
		t.Error("bucket 64 bound must be MaxUint64")
	}
}

func TestHistogramObserveAndJSON(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 0, 1, 3, 4, math.MaxUint64} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	// Sum wraps mod 2^64: 0+0+1+3+4+MaxUint64 = 7 (mod 2^64).
	if h.Sum() != 7 {
		t.Fatalf("sum = %d, want 7 (wrapped)", h.Sum())
	}
	if h.Bucket(0) != 2 || h.Bucket(1) != 1 || h.Bucket(2) != 1 || h.Bucket(3) != 1 || h.Bucket(64) != 1 {
		t.Fatalf("bucket counts wrong: %d %d %d %d %d",
			h.Bucket(0), h.Bucket(1), h.Bucket(2), h.Bucket(3), h.Bucket(64))
	}
	got := h.JSON()
	want := HistogramJSON{
		Count: 6,
		Sum:   7,
		Buckets: []HistogramBucketJSON{
			{UpperBound: "0", Count: 2},
			{UpperBound: "1", Count: 1},
			{UpperBound: "3", Count: 1},
			{UpperBound: "7", Count: 1},
			{UpperBound: "+Inf", Count: 1},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("JSON = %+v, want %+v", got, want)
	}
	// The export view must round-trip through encoding/json unchanged.
	raw, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("round trip = %+v, want %+v", back, want)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(7)
		_ = h.Count()
		_ = h.Sum()
		_ = h.Bucket(3)
	})
	if allocs != 0 {
		t.Fatalf("nil histogram allocated %.1f objects per run, want 0", allocs)
	}
	if got := h.JSON(); got.Count != 0 || got.Buckets != nil {
		t.Fatalf("nil JSON = %+v, want zero value", got)
	}
	var reg *Registry
	if reg.Histogram("x") != nil {
		t.Error("nil registry returned a histogram")
	}
	if reg.Histograms() != nil {
		t.Error("nil registry returned histogram list")
	}
	var rec *Recorder
	if rec.Histogram("x") != nil {
		t.Error("nil recorder returned a histogram")
	}
}

func TestRegistryHistogramsSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("zeta").Observe(1)
	reg.Histogram("alpha").Observe(2)
	reg.Histogram("mid").Observe(3)
	if same := reg.Histogram("alpha"); same != reg.Histogram("alpha") {
		t.Error("Histogram not idempotent per name")
	}
	hs := reg.Histograms()
	names := make([]string, len(hs))
	for i, nh := range hs {
		names[i] = nh.Name
	}
	if !reflect.DeepEqual(names, []string{"alpha", "mid", "zeta"}) {
		t.Fatalf("histogram order %v, want sorted", names)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if h.Sum() != 8*999*1000/2 {
		t.Fatalf("sum = %d, want %d", h.Sum(), 8*999*1000/2)
	}
}

// TestSnapshotOrderIsRegistrationIndependent is the byte-stability
// contract: two registries with the same instruments registered in
// different orders must produce identical snapshots and identical
// sample-row schemas.
func TestSnapshotOrderIsRegistrationIndependent(t *testing.T) {
	build := func(order []string) *Registry {
		reg := NewRegistry()
		for _, n := range order {
			switch n[0] {
			case 'p':
				n := n
				reg.Probe(n, func(uint64) float64 { return float64(len(n)) })
			case 'c':
				reg.Counter(n).Add(uint64(len(n)))
			case 'g':
				reg.Gauge(n).Set(float64(len(n)))
			}
		}
		return reg
	}
	names := []string{"p.bb", "p.a", "c.x", "c.aa", "g.z", "g.b"}
	rev := make([]string, len(names))
	for i, n := range names {
		rev[len(names)-1-i] = n
	}
	a, b := build(names), build(rev)
	sa, sb := a.Snapshot(10), b.Snapshot(10)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("snapshots differ by registration order:\n%v\n%v", sa, sb)
	}
	ca, _ := a.columns()
	cb, _ := b.columns()
	if !reflect.DeepEqual(ca, cb) {
		t.Fatalf("column schemas differ by registration order:\n%v\n%v", ca, cb)
	}
	for i := 1; i < len(sa); i++ {
		if sa[i].Kind == sa[i-1].Kind && sa[i].Name < sa[i-1].Name {
			t.Fatalf("snapshot not sorted within kind: %q after %q", sa[i].Name, sa[i-1].Name)
		}
	}
}

// Same-named probes must keep registration order so the later shadows
// the earlier in sample rows even after the sort.
func TestSameNameProbesKeepRegistrationOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Probe("dup", func(uint64) float64 { return 1 })
	reg.Probe("dup", func(uint64) float64 { return 2 })
	s := reg.Snapshot(0)
	if len(s) != 2 || s[0].Value != 1 || s[1].Value != 2 {
		t.Fatalf("shadow order broken: %v", s)
	}
}
