package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// TraceEvent is one Chrome trace-event object. The subset used here
// (B/E duration pairs, i instants, M metadata) loads in Perfetto and
// chrome://tracing. Timestamps are simulated CPU cycles presented as
// microseconds (the trace format's native unit), so "1 ms" on screen is
// 1000 cycles.
type TraceEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`    // instant scope
	Args map[string]any `json:"args,omitempty"` // metadata payload
}

// TraceFile is the exported top-level object.
type TraceFile struct {
	TraceEvents []TraceEvent   `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData,omitempty"`
}

// Tracer collects spans and instants. Spans are emitted as matched B/E
// pairs in one append, so the export never contains an unpaired begin.
// Each distinct track string becomes one Perfetto thread row, named via
// an M (thread_name) metadata event.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	events  []TraceEvent
	tids    map[string]int
	order   []string
	dropped uint64
}

func newTracer(eventCap int) *Tracer {
	if eventCap <= 0 {
		eventCap = 1 << 20
	}
	return &Tracer{cap: eventCap, tids: make(map[string]int)}
}

func (t *Tracer) tid(track string) int {
	id, ok := t.tids[track]
	if !ok {
		id = len(t.tids) + 1
		t.tids[track] = id
		t.order = append(t.order, track)
	}
	return id
}

// span appends a completed [start,end] duration on track.
func (t *Tracer) span(track, name string, start, end uint64) {
	if end < start {
		start, end = end, start
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events)+2 > t.cap {
		t.dropped += 2
		return
	}
	id := t.tid(track)
	t.events = append(t.events,
		TraceEvent{Name: name, Cat: track, Ph: "B", TS: start, TID: id},
		TraceEvent{Name: name, Cat: track, Ph: "E", TS: end, TID: id},
	)
}

// instant appends a point event on track.
func (t *Tracer) instant(track, name string, cycle uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events)+1 > t.cap {
		t.dropped++
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: track, Ph: "i", TS: cycle, TID: t.tid(track), S: "t",
	})
}

// Len returns the number of recorded events (metadata excluded).
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded at the cap.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteTrace emits the Chrome trace-event JSON object.
func (t *Tracer) WriteTrace(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	file := TraceFile{
		OtherData: map[string]any{
			"clock": "simulated CPU cycles, presented as microseconds",
		},
	}
	// Thread-name metadata first, then the events in record order.
	for _, track := range t.order {
		file.TraceEvents = append(file.TraceEvents, TraceEvent{
			Name: "thread_name", Ph: "M", TID: t.tids[track],
			Args: map[string]any{"name": track},
		})
	}
	file.TraceEvents = append(file.TraceEvents, t.events...)
	if file.TraceEvents == nil {
		file.TraceEvents = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}
