// Package telemetry is the simulator's observability layer: a
// probe/counter registry, a cycle-sampled time-series collector and a
// structured event tracer, all designed around one invariant: **a nil
// Recorder costs nothing**. Every method on *Recorder, *Registry,
// *Counter and *Gauge is nil-safe, so instrumented components keep a
// possibly-nil pointer and call unconditionally; the disabled fast path
// is a single pointer compare with zero allocations (enforced by
// testing.AllocsPerRun in the package tests).
//
// Three collection styles cover the simulator's needs:
//
//   - Counters and gauges: atomic, cheap enough for warm paths, registered
//     by name and snapshotted into every sample row.
//   - Probes: pull-style gauges (func(cycle) float64) polled only at
//     sample time, so hot loops stay untouched — occupancies, rates and
//     RnR replay-cursor geometry are read from component state when the
//     sampler fires, not maintained per event.
//   - Spans and instants: trace events exported as Chrome trace-event
//     JSON, loadable in Perfetto or chrome://tracing.
//
// Series are exported as JSONL (one object per sample row), traces as a
// single JSON object with a traceEvents array.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is an atomic monotonic counter. The zero value is ready to use;
// a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value float gauge. The zero value is ready; a
// nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(floatBits(v))
	}
}

// Load returns the last stored value (0 on nil).
func (g *Gauge) Load() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// Add shifts the gauge by delta atomically (CAS loop), for gauges that
// track a level through +1/-1 pairs — e.g. the cluster coordinator's
// in-flight sweep dispatches — where Set would lose concurrent
// updates. No-op on nil.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Probe is a pull-style gauge, polled once per sample with the current
// cycle so rate probes can compute deltas.
type Probe func(cycle uint64) float64

// Registry holds named counters, gauges and probes. All methods are
// nil-safe: registering into a nil registry is a no-op that returns nil
// instruments (which are themselves no-ops).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	probes   []namedProbe
}

type namedProbe struct {
	name string
	fn   Probe
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry for instruments that have no
// natural owner (e.g. sim.accuracy_clamped). It is always non-nil.
var Default = NewRegistry()

// Counter returns (registering on first use) the named counter, or nil
// when the registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge, or nil when
// the registry is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Probe registers a pull-style gauge under name. Registering the same
// name twice keeps both (the later shadows the earlier in sample rows).
// No-op on a nil registry.
func (r *Registry) Probe(name string, fn Probe) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.probes = append(r.probes, namedProbe{name, fn})
}

// Metric is one named instrument value in a Snapshot.
type Metric struct {
	Name  string
	Kind  string // "counter", "gauge" or "probe"
	Value float64
}

// Snapshot reads every registered instrument once: probes (polled with
// cycle) sorted by name, then gauges and counters sorted by name, so
// exposition and JSON exports are byte-stable across runs regardless of
// registration order. Same-named probes keep registration order among
// themselves (the later still shadows the earlier in sample rows).
// Probes are evaluated outside the registry lock, so a probe may
// itself touch the registry without deadlocking. Nil-safe; the
// Prometheus-text /metrics endpoint of the serving layer is built on
// it.
func (r *Registry) Snapshot(cycle uint64) []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	probes := sortedProbes(r.probes)
	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	gauges := make([]*Gauge, len(gnames))
	for i, n := range gnames {
		gauges[i] = r.gauges[n]
	}
	cnames := make([]string, 0, len(r.counters))
	for n := range r.counters {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	counters := make([]*Counter, len(cnames))
	for i, n := range cnames {
		counters[i] = r.counters[n]
	}
	r.mu.Unlock()

	out := make([]Metric, 0, len(probes)+len(gauges)+len(counters))
	for _, p := range probes {
		out = append(out, Metric{Name: p.name, Kind: "probe", Value: p.fn(cycle)})
	}
	for i, g := range gauges {
		out = append(out, Metric{Name: gnames[i], Kind: "gauge", Value: g.Load()})
	}
	for i, c := range counters {
		out = append(out, Metric{Name: cnames[i], Kind: "counter", Value: float64(c.Load())})
	}
	return out
}

// sortedProbes returns a name-sorted copy of probes. The sort is
// stable so same-named probes keep their registration order, which
// preserves the later-shadows-earlier contract of Probe.
func sortedProbes(probes []namedProbe) []namedProbe {
	out := make([]namedProbe, len(probes))
	copy(out, probes)
	sort.SliceStable(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// columns returns the sample-row schema: probes sorted by name, then
// gauges and counters sorted by name (map iteration is not stable).
func (r *Registry) columns() (names []string, read []func(cycle uint64) float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range sortedProbes(r.probes) {
		p := p
		names = append(names, p.name)
		read = append(read, p.fn)
	}
	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		g := r.gauges[n]
		names = append(names, n)
		read = append(read, func(uint64) float64 { return g.Load() })
	}
	cnames := make([]string, 0, len(r.counters))
	for n := range r.counters {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	for _, n := range cnames {
		c := r.counters[n]
		names = append(names, n)
		read = append(read, func(uint64) float64 { return float64(c.Load()) })
	}
	return names, read
}
