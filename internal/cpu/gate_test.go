package cpu

import (
	"testing"

	"rnrsim/internal/mem"
	"rnrsim/internal/trace"
)

func TestGatePausesFetchNotRetire(t *testing.T) {
	b := trace.NewBuilder(0)
	b.Exec(20)
	b.IterEnd(0)
	b.Exec(20)
	m := newStubMem(1)
	c := New(0, Default(), b.Source(), m)

	gated := false
	c.Gate = func() bool { return !gated }
	c.OnMarker = func(rec trace.Record, cycle uint64) {
		if rec.Marker == trace.MarkIterEnd {
			gated = true // close the gate at the barrier, like the SPMD sim
		}
	}
	for i := 1; i <= 50; i++ {
		c.Tick(uint64(i))
		m.Tick(uint64(i))
	}
	if c.Done() {
		t.Fatal("core ran past a closed gate")
	}
	retired := c.Stats.Instructions
	if retired < 21 { // first bundle + the marker must retire
		t.Errorf("only %d instructions retired while gated, want >= 21", retired)
	}
	// The gate closes mid-fetch-group: at most the rest of that cycle's
	// fetch group (width 4) slips through before the gate takes effect.
	if retired > 24 {
		t.Errorf("%d instructions retired: fetch leaked past the gate", retired)
	}
	gated = false
	for i := 51; i <= 200 && !c.Done(); i++ {
		c.Tick(uint64(i))
		m.Tick(uint64(i))
	}
	if !c.Done() {
		t.Fatal("core never finished after the gate opened")
	}
	if c.Stats.Instructions != 41 { // 20 + marker + 20
		t.Errorf("retired %d, want 41", c.Stats.Instructions)
	}
}

func TestPreAccessRunsOncePerInstruction(t *testing.T) {
	// Regression test: a dispatch retry behind a full L1 must not re-run
	// the side-effecting PreAccess (it advances Cur Struct Read).
	b := trace.NewBuilder(0)
	for i := 0; i < 4; i++ {
		b.Load(uint64(i), mem.Addr(0x1000+i*64), 8, -1)
	}
	m := newStubMem(1)
	m.rejectAll = true
	c := New(0, Default(), b.Source(), m)
	calls := 0
	c.PreAccess = func(r *mem.Request) { calls++ }
	for i := 1; i <= 20; i++ {
		c.Tick(uint64(i))
		m.Tick(uint64(i))
	}
	if calls != 1 {
		t.Fatalf("PreAccess ran %d times for one blocked load, want 1", calls)
	}
	m.rejectAll = false
	runCore(c, m, 1000)
	if calls != 4 {
		t.Errorf("PreAccess ran %d times for 4 loads, want 4", calls)
	}
}

func TestAvgLoadLatency(t *testing.T) {
	b := trace.NewBuilder(0)
	b.Load(1, 0x100, 8, -1)
	b.Load(2, 0x200, 8, -1)
	m := newStubMem(10)
	c := New(0, Default(), b.Source(), m)
	runCore(c, m, 1000)
	if got := c.Stats.AvgLoadLatency(); got < 5 || got > 30 {
		t.Errorf("avg load latency = %.1f, want ~10", got)
	}
	var empty Stats
	if empty.AvgLoadLatency() != 0 {
		t.Error("empty stats latency non-zero")
	}
}

func TestROBWraparound(t *testing.T) {
	// Run much more work than the ROB size to exercise ring wraparound.
	cfg := Default()
	cfg.ROB = 8
	cfg.LSQ = 4
	b := trace.NewBuilder(0)
	for i := 0; i < 100; i++ {
		b.Load(uint64(i), mem.Addr(0x40*i), 8, -1)
		b.Exec(3)
	}
	m := newStubMem(7)
	c := New(0, cfg, b.Source(), m)
	runCore(c, m, 100000)
	if !c.Done() {
		t.Fatal("core never finished with a tiny ROB")
	}
	if c.Stats.Instructions != 400 {
		t.Errorf("retired %d, want 400", c.Stats.Instructions)
	}
}

func TestExecBundleSplitAcrossCycles(t *testing.T) {
	b := trace.NewBuilder(0)
	b.Exec(10) // wider than one fetch group
	m := newStubMem(1)
	c := New(0, Default(), b.Source(), m)
	c.Tick(1)
	if c.Stats.Instructions != 0 {
		t.Error("instructions retired in the dispatch cycle")
	}
	runCore(c, m, 100)
	if c.Stats.Instructions != 10 {
		t.Errorf("retired %d, want 10", c.Stats.Instructions)
	}
	// 10 instructions at width 4 need >= 3 dispatch cycles.
	if c.Stats.Cycles < 3 {
		t.Errorf("cycles = %d, implausibly fast", c.Stats.Cycles)
	}
}
