package cpu

import (
	"fmt"

	"rnrsim/internal/trace"
)

// Audit hooks. The shapes (report func(law string) and mix func(uint64))
// are chosen so this package needs no audit import; internal/sim adapts
// them onto the audit.Checker and audit.Hash. The cross-component law —
// LSQ occupancy equals the L1's demand holds — is checked by sim, which
// can see both sides; here only the core-local laws live.
func (c *Core) AuditInvariants(report func(law string)) {
	if c.count < 0 || c.count > c.cfg.ROB {
		report(fmt.Sprintf("ROB occupancy %d outside [0,%d]", c.count, c.cfg.ROB))
	}
	if c.head < 0 || c.head >= c.cfg.ROB || c.tail < 0 || c.tail >= c.cfg.ROB {
		report(fmt.Sprintf("ROB ring pointers head=%d tail=%d outside [0,%d)", c.head, c.tail, c.cfg.ROB))
	} else if c.count < c.cfg.ROB && (c.tail-c.head+c.cfg.ROB)%c.cfg.ROB != c.count {
		report(fmt.Sprintf("ROB ring geometry: head=%d tail=%d does not span count=%d", c.head, c.tail, c.count))
	}
	if c.lsqUsed < 0 || c.lsqUsed > c.cfg.LSQ {
		report(fmt.Sprintf("LSQ occupancy %d outside [0,%d]", c.lsqUsed, c.cfg.LSQ))
	}
	if c.pendingExec > 0 && c.pendingValid {
		report("exec bundle draining while a record is still pending")
	}
	if c.pendingReq != nil {
		if !c.pendingValid {
			report("retry request outlives its pending record")
		} else if c.pendingRec.Kind != trace.KindLoad && c.pendingRec.Kind != trace.KindStore {
			report(fmt.Sprintf("retry request pending for non-memory record %s", c.pendingRec.Kind))
		}
	}
}

// HashState folds the core's complete state — ROB ring in retirement
// order, LSQ and dispatch registers, the pending record/request and the
// statistics — into the caller's hasher.
func (c *Core) HashState(mix func(uint64)) {
	mix(uint64(int64(c.count)))
	for i := 0; i < c.count; i++ {
		e := &c.rob[(c.head+i)%c.cfg.ROB]
		mix(cpuBoolWord(e.mem)<<3 | cpuBoolWord(e.done)<<2 |
			cpuBoolWord(e.usesLSQ)<<1 | cpuBoolWord(e.marker))
		mix(e.doneAt)
	}
	mix(uint64(int64(c.lsqUsed)))
	mix(c.pendingExec)
	mix(cpuBoolWord(c.pendingValid))
	if c.pendingValid {
		hashRecord(c.pendingRec, mix)
	}
	mix(cpuBoolWord(c.pendingReq != nil))
	if r := c.pendingReq; r != nil {
		mix(uint64(r.Type))
		mix(uint64(r.Addr))
		mix(r.PC)
		mix(uint64(int64(r.RegionID)))
		mix(cpuBoolWord(r.StructFlag))
		mix(r.Issue)
	}
	mix(cpuBoolWord(c.drained))

	s := &c.Stats
	for _, v := range []uint64{
		s.Cycles, s.Instructions, s.Loads, s.Stores, s.Markers,
		s.FetchStalls, s.ROBStallCyc, s.LoadLatencySum,
	} {
		mix(v)
	}
}

func hashRecord(r trace.Record, mix func(uint64)) {
	mix(uint64(r.Kind))
	mix(uint64(r.Marker))
	mix(r.PC)
	mix(uint64(r.Addr))
	mix(r.Count)
	mix(uint64(int64(r.Aux)))
}

func cpuBoolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
