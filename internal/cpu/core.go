// Package cpu provides the trace-driven out-of-order core model that drives
// the memory hierarchy. It is deliberately simple — a ROB, an LSQ and
// fetch/retire widths — but captures the two behaviours the evaluation
// depends on: memory-level parallelism (many loads outstanding at once, up
// to the ROB/LSQ limits) and head-of-ROB stalls on long-latency misses,
// which is where prefetching earns its speedup.
package cpu

import (
	"fmt"

	"rnrsim/internal/mem"
	"rnrsim/internal/telemetry"
	"rnrsim/internal/trace"
)

// Config sizes the core. Default matches the paper's Table II.
type Config struct {
	ROB         int    // reorder-buffer entries
	LSQ         int    // load/store-queue entries (outstanding memory ops)
	FetchWidth  int    // instructions dispatched per cycle
	RetireWidth int    // instructions retired per cycle
	ExecLatency uint64 // completion latency of non-memory instructions
}

// Default returns the 4-wide OoO core of Table II: 256-entry ROB, 64-entry
// LSQ, 16-entry issue queue folded into the fetch width.
func Default() Config {
	return Config{ROB: 256, LSQ: 64, FetchWidth: 4, RetireWidth: 4, ExecLatency: 1}
}

func (c Config) validate() error {
	if c.ROB < 1 || c.LSQ < 1 || c.FetchWidth < 1 || c.RetireWidth < 1 {
		return fmt.Errorf("cpu: invalid config %+v", c)
	}
	return nil
}

// Stats counts core activity.
type Stats struct {
	Cycles       uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Markers      uint64
	FetchStalls  uint64 // cycles fetch was blocked (ROB/LSQ/L1 full)
	ROBStallCyc  uint64 // cycles retire made no progress with a full ROB

	// LoadLatencySum accumulates per-load completion latency (dispatch to
	// data), for average-latency diagnostics.
	LoadLatencySum uint64
}

// AvgLoadLatency returns the mean load-to-use latency in cycles.
func (s Stats) AvgLoadLatency() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.LoadLatencySum) / float64(s.Loads)
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

type robEntry struct {
	mem     bool
	done    bool
	doneAt  uint64
	usesLSQ bool
	marker  bool
}

// Core executes one hardware thread's trace against an L1 data cache.
type Core struct {
	ID  int
	cfg Config

	l1  mem.Backend
	src trace.Source

	rob   []robEntry // ring buffer
	head  int
	tail  int
	count int

	lsqUsed int

	pendingExec  uint64 // instructions left in the current Exec bundle
	pendingRec   trace.Record
	pendingValid bool
	pendingReq   *mem.Request // built (and PreAccess-ed) but not yet accepted by the L1
	drained      bool

	Stats Stats

	// OnMarker is invoked at dispatch of each marker record (the paper's
	// software-interface register writes). The RnR engine hooks it.
	OnMarker func(rec trace.Record, cycle uint64)

	// PreAccess, if set, is invoked for every demand request before it is
	// sent to the L1. The RnR engine uses it to perform the boundary-table
	// check, set the request's StructFlag and advance Cur Struct Read.
	PreAccess func(r *mem.Request)

	// Gate, if set, pauses instruction fetch while it returns false.
	// The simulator uses it to implement the SPMD iteration barrier
	// (workers wait for the master at iteration ends, §VI). Retirement
	// continues so in-flight work drains while gated.
	Gate func() bool
}

// New builds a core over the given trace and L1 backend.
func New(id int, cfg Config, src trace.Source, l1 mem.Backend) *Core {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Core{ID: id, cfg: cfg, l1: l1, src: src, rob: make([]robEntry, cfg.ROB)}
}

// Done reports whether the core has drained its trace and retired
// everything.
func (c *Core) Done() bool {
	return c.drained && c.count == 0 && c.pendingExec == 0 && !c.pendingValid
}

// Tick advances the core one cycle: retire, then fetch/dispatch.
func (c *Core) Tick(now uint64) {
	if c.Done() {
		return
	}
	c.Stats.Cycles++
	c.retire(now)
	c.fetch(now)
}

func (c *Core) retire(now uint64) {
	retired := 0
	for retired < c.cfg.RetireWidth && c.count > 0 {
		e := &c.rob[c.head]
		if !e.done || e.doneAt > now {
			break
		}
		c.head = (c.head + 1) % c.cfg.ROB
		c.count--
		c.Stats.Instructions++
		retired++
	}
	if retired == 0 && c.count == c.cfg.ROB {
		c.Stats.ROBStallCyc++
	}
}

func (c *Core) fetch(now uint64) {
	if c.Gate != nil && !c.Gate() {
		return
	}
	fetched := 0
	for fetched < c.cfg.FetchWidth {
		if c.count == c.cfg.ROB {
			c.Stats.FetchStalls++
			return
		}
		// Drain a pending exec bundle first.
		if c.pendingExec > 0 {
			c.pushExec(now)
			c.pendingExec--
			fetched++
			continue
		}
		rec := c.nextRecord()
		if rec == nil {
			return
		}
		switch rec.Kind {
		case trace.KindExec:
			c.pendingExec = rec.Count
			c.pendingValid = false
			continue // loop re-enters the bundle branch
		case trace.KindLoad, trace.KindStore:
			if !c.dispatchMem(rec, now) {
				c.Stats.FetchStalls++
				return // keep rec pending, retry next cycle
			}
			c.pendingValid = false
			fetched++
		case trace.KindMarker:
			c.dispatchMarker(rec, now)
			c.pendingValid = false
			fetched++
		default:
			// Unknown record kinds are skipped defensively.
			c.pendingValid = false
		}
	}
}

// nextRecord returns the record being dispatched, fetching from the source
// when nothing is pending. A non-nil result stays pending until the caller
// clears it, so structural stalls never lose records.
func (c *Core) nextRecord() *trace.Record {
	if c.pendingValid {
		return &c.pendingRec
	}
	rec, ok := c.src.Next()
	if !ok {
		c.drained = true
		return nil
	}
	c.pendingRec = rec
	c.pendingValid = true
	return &c.pendingRec
}

func (c *Core) pushExec(now uint64) {
	c.rob[c.tail] = robEntry{done: true, doneAt: now + c.cfg.ExecLatency}
	c.tail = (c.tail + 1) % c.cfg.ROB
	c.count++
}

func (c *Core) dispatchMem(rec *trace.Record, now uint64) bool {
	if c.lsqUsed >= c.cfg.LSQ {
		return false
	}
	isLoad := rec.Kind == trace.KindLoad
	// Build the request (and run the side-effecting PreAccess boundary
	// check) exactly once per instruction; a dispatch retry after L1
	// backpressure reuses the pending request.
	req := c.pendingReq
	if req == nil {
		t := mem.ReqStore
		if isLoad {
			t = mem.ReqLoad
		}
		req = mem.NewRequest(t, rec.Addr, rec.PC, c.ID, now)
		req.RegionID = int(rec.Aux)
		if c.PreAccess != nil {
			c.PreAccess(req)
		}
		c.pendingReq = req
	}

	slot := c.tail
	entry := robEntry{mem: true, usesLSQ: true}
	if !isLoad {
		// Stores retire through the write buffer without waiting for the
		// fill; the LSQ slot stays busy until the store completes.
		entry.done = true
		entry.doneAt = now + c.cfg.ExecLatency
	}
	// The LSQ release flag lives in the closure, not the ROB entry: a
	// store may retire (and its ROB slot be reused) before its fill
	// returns, so the entry cannot be trusted at completion time. A load's
	// slot is safe — loads cannot retire before their own completion.
	freed := false
	issueAt := now
	req.Done = func(cycle uint64) {
		if isLoad {
			c.rob[slot].done = true
			c.rob[slot].doneAt = cycle
			c.Stats.LoadLatencySum += cycle - issueAt
		}
		if !freed {
			freed = true
			c.lsqUsed--
		}
	}
	c.rob[slot] = entry
	if !c.l1.TryEnqueue(req) {
		return false
	}
	c.pendingReq = nil
	c.tail = (c.tail + 1) % c.cfg.ROB
	c.count++
	c.lsqUsed++
	if isLoad {
		c.Stats.Loads++
	} else {
		c.Stats.Stores++
	}
	return true
}

func (c *Core) dispatchMarker(rec *trace.Record, now uint64) {
	c.rob[c.tail] = robEntry{marker: true, done: true, doneAt: now + c.cfg.ExecLatency}
	c.tail = (c.tail + 1) % c.cfg.ROB
	c.count++
	c.Stats.Markers++
	if c.OnMarker != nil {
		c.OnMarker(*rec, now)
	}
}

// Occupancy reports ROB and LSQ occupancy for diagnostics.
func (c *Core) Occupancy() (rob, lsq int) { return c.count, c.lsqUsed }

// RegisterProbes registers this core's sampled series under prefix
// (e.g. "cpu0."): instantaneous ROB/LSQ occupancy plus a windowed IPC
// (instructions retired since the previous sample over cycles elapsed).
// Probes are pull-style, so the core's hot loop is untouched; a nil
// recorder is a no-op.
func (c *Core) RegisterProbes(tel *telemetry.Recorder, prefix string) {
	if tel == nil {
		return
	}
	var lastCycles, lastInstr uint64
	tel.Probe(prefix+"ipc", func(uint64) float64 {
		dc := c.Stats.Cycles - lastCycles
		di := c.Stats.Instructions - lastInstr
		lastCycles, lastInstr = c.Stats.Cycles, c.Stats.Instructions
		if dc == 0 {
			return 0
		}
		return float64(di) / float64(dc)
	})
	tel.Probe(prefix+"rob", func(uint64) float64 { return float64(c.count) })
	tel.Probe(prefix+"lsq", func(uint64) float64 { return float64(c.lsqUsed) })
}
