// Package cpu provides the trace-driven out-of-order core model that drives
// the memory hierarchy. It is deliberately simple — a ROB, an LSQ and
// fetch/retire widths — but captures the two behaviours the evaluation
// depends on: memory-level parallelism (many loads outstanding at once, up
// to the ROB/LSQ limits) and head-of-ROB stalls on long-latency misses,
// which is where prefetching earns its speedup.
package cpu

import (
	"fmt"

	"rnrsim/internal/mem"
	"rnrsim/internal/telemetry"
	"rnrsim/internal/trace"
)

// Config sizes the core. Default matches the paper's Table II.
type Config struct {
	ROB         int    // reorder-buffer entries
	LSQ         int    // load/store-queue entries (outstanding memory ops)
	FetchWidth  int    // instructions dispatched per cycle
	RetireWidth int    // instructions retired per cycle
	ExecLatency uint64 // completion latency of non-memory instructions
}

// Default returns the 4-wide OoO core of Table II: 256-entry ROB, 64-entry
// LSQ, 16-entry issue queue folded into the fetch width.
func Default() Config {
	return Config{ROB: 256, LSQ: 64, FetchWidth: 4, RetireWidth: 4, ExecLatency: 1}
}

func (c Config) validate() error {
	if c.ROB < 1 || c.LSQ < 1 || c.FetchWidth < 1 || c.RetireWidth < 1 {
		return fmt.Errorf("cpu: invalid config %+v", c)
	}
	return nil
}

// Stats counts core activity.
type Stats struct {
	Cycles       uint64
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Markers      uint64
	FetchStalls  uint64 // cycles fetch was blocked (ROB/LSQ/L1 full)
	ROBStallCyc  uint64 // cycles retire made no progress with a full ROB

	// LoadLatencySum accumulates per-load completion latency (dispatch to
	// data), for average-latency diagnostics.
	LoadLatencySum uint64
}

// AvgLoadLatency returns the mean load-to-use latency in cycles.
func (s Stats) AvgLoadLatency() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.LoadLatencySum) / float64(s.Loads)
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

type robEntry struct {
	mem     bool
	done    bool
	doneAt  uint64
	usesLSQ bool
	marker  bool
}

// Core executes one hardware thread's trace against an L1 data cache.
type Core struct {
	ID  int
	cfg Config

	l1    mem.Backend
	l1Cap mem.DemandCapacity // optional capacity probe on l1, for Wakeup
	src   trace.Source

	rob   []robEntry // ring buffer
	head  int
	tail  int
	count int

	lsqUsed int

	pendingExec  uint64 // instructions left in the current Exec bundle
	pendingRec   trace.Record
	pendingValid bool
	pendingReq   *mem.Request // built (and PreAccess-ed) but not yet accepted by the L1
	pendingOp    *memOp       // the memOp wrapping pendingReq
	opArena      []memOp      // chunk allocator for memOps
	opFree       []*memOp     // completed memOps available for reuse
	drained      bool
	wakeDirty    bool // external completion arrived; see TakeWakeDirty

	Stats Stats

	// OnMarker is invoked at dispatch of each marker record (the paper's
	// software-interface register writes). The RnR engine hooks it.
	OnMarker func(rec trace.Record, cycle uint64)

	// PreAccess, if set, is invoked for every demand request before it is
	// sent to the L1. The RnR engine uses it to perform the boundary-table
	// check, set the request's StructFlag and advance Cur Struct Read.
	PreAccess func(r *mem.Request)

	// Gate, if set, pauses instruction fetch while it returns false.
	// The simulator uses it to implement the SPMD iteration barrier
	// (workers wait for the master at iteration ends, §VI). Retirement
	// continues so in-flight work drains while gated.
	Gate func() bool
}

// New builds a core over the given trace and L1 backend.
func New(id int, cfg Config, src trace.Source, l1 mem.Backend) *Core {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	c := &Core{ID: id, cfg: cfg, l1: l1, src: src, rob: make([]robEntry, cfg.ROB)}
	c.l1Cap, _ = l1.(mem.DemandCapacity)
	return c
}

// Done reports whether the core has drained its trace and retired
// everything.
func (c *Core) Done() bool {
	return c.drained && c.count == 0 && c.pendingExec == 0 && !c.pendingValid
}

// Drained reports whether the trace source is exhausted (retirement may
// still be in progress; see Done). The parallel scheduler uses it to
// tell cores that can still go Done through retirement alone from cores
// that would first have to fetch.
func (c *Core) Drained() bool { return c.drained }

// Tick advances the core one cycle: retire, then fetch/dispatch.
func (c *Core) Tick(now uint64) {
	if c.Done() {
		return
	}
	c.Stats.Cycles++
	c.retire(now)
	c.fetch(now)
}

// Wakeup reports the earliest future cycle at which Tick could change
// architectural state, or mem.WakeupNever when the core can only be
// woken by an external completion (a memory fill marking the ROB head
// done or freeing an LSQ slot). See mem.WakeupNever for the contract.
//
// Per-cycle stall counters (Cycles, FetchStalls, ROBStallCyc) are NOT
// wakeup conditions: they advance deterministically over a frozen span
// and the scheduler charges them in one batch via SkipIdle.
func (c *Core) Wakeup(now uint64) uint64 {
	if c.Done() {
		return mem.WakeupNever
	}
	w := mem.WakeupNever
	if c.count > 0 {
		if e := &c.rob[c.head]; e.done {
			if e.doneAt <= now+1 {
				return now + 1 // retirement due now
			}
			w = e.doneAt // retirement timer (exec latency)
		}
		// Head not done: a load waiting on memory. Its completion is a
		// callback during some other component's tick; wakeups are
		// recomputed after every tick, so nothing to schedule here.
	}
	if c.Gate != nil && !c.Gate() {
		return w // fetch gated at the barrier: only retirement progresses
	}
	if c.count == c.cfg.ROB {
		return w // fetch blocked until retirement frees a slot
	}
	switch {
	case c.pendingExec > 0:
		return now + 1 // exec bundle keeps dispatching
	case c.pendingReq != nil:
		// L1 backpressure. The dispatch retry runs every cycle, but a
		// retry against a still-full read queue provably fails without
		// side effects beyond the per-cycle FetchStalls count (charged by
		// SkipIdle): the rejection is pure, the tail-slot rewrite is
		// outside the architectural window, and the retry closure is
		// rebuilt from scratch on the attempt that finally lands. So only
		// wake when the L1 could admit the request; the queue frees a
		// slot during an L1 tick, after which wakeups are recomputed.
		if c.l1Cap == nil || c.l1Cap.CanAcceptDemand() {
			return now + 1
		}
		return w
	case c.pendingValid:
		if k := c.pendingRec.Kind; k != trace.KindLoad && k != trace.KindStore {
			return now + 1 // non-memory record dispatches next cycle
		}
		if c.lsqUsed < c.cfg.LSQ {
			return now + 1 // request build + dispatch next cycle
		}
		// LSQ full: frozen until a completion frees a slot (external).
	case !c.drained:
		return now + 1 // fetch pulls the next trace record
	}
	return w
}

// TakeWakeDirty reports and clears the external-input flag, set when a
// memory completion callback touched the core (ROB head done, LSQ slot
// freed). The event scheduler uses it to know when the core's cached
// wakeup may have moved earlier.
func (c *Core) TakeWakeDirty() bool {
	d := c.wakeDirty
	c.wakeDirty = false
	return d
}

// SkipIdle charges n skipped cycles' worth of per-cycle accounting in
// one batch. The caller (the event-driven scheduler) guarantees the
// core's state is frozen over the span: no retirement, no dispatch, no
// completion — exactly the cycles Wakeup said nothing happens on. What
// a frozen Tick still does is count: Cycles always, ROBStallCyc and
// FetchStalls when retire/fetch are blocked. The conditions mirror one
// frozen Tick body, so n batched calls hash identically to n real ones.
func (c *Core) SkipIdle(n uint64) {
	if n == 0 || c.Done() {
		return
	}
	c.Stats.Cycles += n
	gated := c.Gate != nil && !c.Gate()
	if c.count == c.cfg.ROB {
		c.Stats.ROBStallCyc += n
		if !gated {
			c.Stats.FetchStalls += n
		}
		return
	}
	if gated {
		return
	}
	if c.pendingValid &&
		(c.pendingRec.Kind == trace.KindLoad || c.pendingRec.Kind == trace.KindStore) &&
		(c.pendingReq != nil || c.lsqUsed >= c.cfg.LSQ) {
		// Dispatch blocked on L1 backpressure or a full LSQ: each stepped
		// cycle would count one fetch stall.
		c.Stats.FetchStalls += n
	}
}

// QuietScan reports conservative fetch-unit distances from the core's
// current dispatch position: memU units must dispatch before the next
// load/store could enter the memory system, markU before the next marker
// could fire OnMarker, and drainU before the trace source could drain
// (a prerequisite for Done flipping). Distances account for the pending
// record and any in-progress Exec bundle before consulting the trace
// source's Lookahead; a source without Lookahead makes every horizon
// collapse to the locally-known units. Values are lower bounds (capped at
// limit): structural stalls only push events later, never earlier, so the
// parallel scheduler can size an independence window from them.
func (c *Core) QuietScan(limit uint64) (memU, markU, drainU uint64) {
	if c.Done() {
		return limit, limit, limit
	}
	memU, markU, drainU = limit, limit, limit
	var u uint64
	if c.pendingValid {
		switch c.pendingRec.Kind {
		case trace.KindLoad, trace.KindStore:
			memU = 0
		case trace.KindMarker:
			markU = 0
		default:
			memU, markU = 0, 0
		}
		u = 1
	}
	u += c.pendingExec
	if u >= limit {
		return
	}
	if c.drained {
		drainU = u
		return
	}
	la, ok := c.src.(trace.Lookahead)
	if !ok {
		// Opaque source: the very next fetched record could be anything.
		if u < memU {
			memU = u
		}
		if u < markU {
			markU = u
		}
		drainU = u
		return
	}
	m, k, d := la.ScanUnits(limit - u)
	if u+m < memU {
		memU = u + m
	}
	if u+k < markU {
		markU = u + k
	}
	drainU = u + d
	return
}

func (c *Core) retire(now uint64) {
	retired := 0
	for retired < c.cfg.RetireWidth && c.count > 0 {
		e := &c.rob[c.head]
		if !e.done || e.doneAt > now {
			break
		}
		c.head = (c.head + 1) % c.cfg.ROB
		c.count--
		c.Stats.Instructions++
		retired++
	}
	if retired == 0 && c.count == c.cfg.ROB {
		c.Stats.ROBStallCyc++
	}
}

func (c *Core) fetch(now uint64) {
	if c.Gate != nil && !c.Gate() {
		return
	}
	fetched := 0
	for fetched < c.cfg.FetchWidth {
		if c.count == c.cfg.ROB {
			c.Stats.FetchStalls++
			return
		}
		// Drain a pending exec bundle first.
		if c.pendingExec > 0 {
			c.pushExec(now)
			c.pendingExec--
			fetched++
			continue
		}
		rec := c.nextRecord()
		if rec == nil {
			return
		}
		switch rec.Kind {
		case trace.KindExec:
			c.pendingExec = rec.Count
			c.pendingValid = false
			continue // loop re-enters the bundle branch
		case trace.KindLoad, trace.KindStore:
			if !c.dispatchMem(rec, now) {
				c.Stats.FetchStalls++
				return // keep rec pending, retry next cycle
			}
			c.pendingValid = false
			fetched++
		case trace.KindMarker:
			c.dispatchMarker(rec, now)
			c.pendingValid = false
			fetched++
		default:
			// Unknown record kinds are skipped defensively.
			c.pendingValid = false
		}
	}
}

// nextRecord returns the record being dispatched, fetching from the source
// when nothing is pending. A non-nil result stays pending until the caller
// clears it, so structural stalls never lose records.
func (c *Core) nextRecord() *trace.Record {
	if c.pendingValid {
		return &c.pendingRec
	}
	rec, ok := c.src.Next()
	if !ok {
		c.drained = true
		return nil
	}
	c.pendingRec = rec
	c.pendingValid = true
	return &c.pendingRec
}

func (c *Core) pushExec(now uint64) {
	c.rob[c.tail] = robEntry{done: true, doneAt: now + c.cfg.ExecLatency}
	c.tail = (c.tail + 1) % c.cfg.ROB
	c.count++
}

// memOp bundles an in-flight memory instruction: the request itself plus
// the completion state its Done callback needs. One arena carve per
// instruction replaces the request + closure heap allocations that used
// to dominate the dispatch path.
type memOp struct {
	c       *Core
	slot    int
	isLoad  bool
	freed   bool
	issueAt uint64
	req     mem.Request
	// boundDone caches the done method value: binding a method allocates,
	// so it happens once per op object, not once per instruction.
	boundDone func(cycle uint64)
}

// done completes the memory op: mark the load's ROB slot done and free
// the LSQ entry. The LSQ release flag lives here, not in the ROB entry:
// a store may retire (and its ROB slot be reused) before its fill
// returns, so the entry cannot be trusted at completion time. A load's
// slot is safe — loads cannot retire before their own completion.
func (o *memOp) done(cycle uint64) {
	c := o.c
	c.wakeDirty = true
	if o.isLoad {
		c.rob[o.slot].done = true
		c.rob[o.slot].doneAt = cycle
		c.Stats.LoadLatencySum += cycle - o.issueAt
	}
	if !o.freed {
		o.freed = true
		c.lsqUsed--
	}
	// The request completed and the memory system dropped its pointer;
	// the core's own reference was cleared when dispatch was accepted
	// (completion cannot fire before acceptance). Recycle the op.
	c.opFree = append(c.opFree, o)
}

func (c *Core) newMemOp() *memOp {
	if n := len(c.opFree); n > 0 {
		o := c.opFree[n-1]
		c.opFree = c.opFree[:n-1]
		o.freed = false
		return o
	}
	if len(c.opArena) == 0 {
		c.opArena = make([]memOp, 128)
	}
	o := &c.opArena[0]
	c.opArena = c.opArena[1:]
	o.boundDone = o.done
	return o
}

func (c *Core) dispatchMem(rec *trace.Record, now uint64) bool {
	if c.lsqUsed >= c.cfg.LSQ {
		return false
	}
	isLoad := rec.Kind == trace.KindLoad
	// Build the request (and run the side-effecting PreAccess boundary
	// check) exactly once per instruction; a dispatch retry after L1
	// backpressure reuses the pending request.
	op := c.pendingOp
	if op == nil {
		t := mem.ReqStore
		if isLoad {
			t = mem.ReqLoad
		}
		op = c.newMemOp()
		op.c = c
		op.isLoad = isLoad
		op.req = mem.Request{
			Type:     t,
			Addr:     rec.Addr,
			Line:     mem.LineAddr(rec.Addr),
			PC:       rec.PC,
			Core:     c.ID,
			RegionID: int(rec.Aux),
			Issue:    now,
		}
		if c.PreAccess != nil {
			c.PreAccess(&op.req)
		}
		op.req.Done = op.boundDone
		c.pendingOp = op
		c.pendingReq = &op.req
	}

	slot := c.tail
	entry := robEntry{mem: true, usesLSQ: true}
	if !isLoad {
		// Stores retire through the write buffer without waiting for the
		// fill; the LSQ slot stays busy until the store completes.
		entry.done = true
		entry.doneAt = now + c.cfg.ExecLatency
	}
	// Refreshed on every dispatch attempt: the attempt that lands defines
	// the issue cycle and ROB slot, exactly as the per-attempt closure
	// rebuild used to.
	op.slot = slot
	op.issueAt = now
	c.rob[slot] = entry
	if !c.l1.TryEnqueue(&op.req) {
		return false
	}
	c.pendingOp = nil
	c.pendingReq = nil
	c.tail = (c.tail + 1) % c.cfg.ROB
	c.count++
	c.lsqUsed++
	if isLoad {
		c.Stats.Loads++
	} else {
		c.Stats.Stores++
	}
	return true
}

func (c *Core) dispatchMarker(rec *trace.Record, now uint64) {
	c.rob[c.tail] = robEntry{marker: true, done: true, doneAt: now + c.cfg.ExecLatency}
	c.tail = (c.tail + 1) % c.cfg.ROB
	c.count++
	c.Stats.Markers++
	if c.OnMarker != nil {
		c.OnMarker(*rec, now)
	}
}

// Occupancy reports ROB and LSQ occupancy for diagnostics.
func (c *Core) Occupancy() (rob, lsq int) { return c.count, c.lsqUsed }

// RegisterProbes registers this core's sampled series under prefix
// (e.g. "cpu0."): instantaneous ROB/LSQ occupancy plus a windowed IPC
// (instructions retired since the previous sample over cycles elapsed).
// Probes are pull-style, so the core's hot loop is untouched; a nil
// recorder is a no-op.
func (c *Core) RegisterProbes(tel *telemetry.Recorder, prefix string) {
	if tel == nil {
		return
	}
	var lastCycles, lastInstr uint64
	tel.Probe(prefix+"ipc", func(uint64) float64 {
		dc := c.Stats.Cycles - lastCycles
		di := c.Stats.Instructions - lastInstr
		lastCycles, lastInstr = c.Stats.Cycles, c.Stats.Instructions
		if dc == 0 {
			return 0
		}
		return float64(di) / float64(dc)
	})
	tel.Probe(prefix+"rob", func(uint64) float64 { return float64(c.count) })
	tel.Probe(prefix+"lsq", func(uint64) float64 { return float64(c.lsqUsed) })
}
