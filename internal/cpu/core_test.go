package cpu

import (
	"testing"

	"rnrsim/internal/mem"
	"rnrsim/internal/trace"
)

// stubMem completes loads after a fixed latency and lets tests vary the
// latency per line to mimic hits and misses.
type stubMem struct {
	latency   map[mem.Addr]uint64
	def       uint64
	clock     uint64
	inflight  []*mem.Request
	finish    []uint64
	accepted  int
	rejectAll bool
}

func newStubMem(def uint64) *stubMem {
	return &stubMem{latency: map[mem.Addr]uint64{}, def: def}
}

func (s *stubMem) TryEnqueue(r *mem.Request) bool {
	if s.rejectAll {
		return false
	}
	s.accepted++
	lat, ok := s.latency[r.Line]
	if !ok {
		lat = s.def
	}
	s.inflight = append(s.inflight, r)
	s.finish = append(s.finish, s.clock+lat)
	return true
}

func (s *stubMem) Tick(now uint64) {
	s.clock = now
	kept, keptFin := s.inflight[:0], s.finish[:0]
	for i, r := range s.inflight {
		if s.finish[i] <= now {
			r.Complete(now)
		} else {
			kept = append(kept, r)
			keptFin = append(keptFin, s.finish[i])
		}
	}
	s.inflight, s.finish = kept, keptFin
}

func runCore(c *Core, m *stubMem, budget int) uint64 {
	var now uint64
	for i := 0; i < budget && !c.Done(); i++ {
		now++
		c.Tick(now)
		m.Tick(now)
	}
	return now
}

func TestExecOnlyIPC(t *testing.T) {
	b := trace.NewBuilder(0)
	b.Exec(4000)
	m := newStubMem(1)
	c := New(0, Default(), b.Source(), m)
	runCore(c, m, 10000)
	if !c.Done() {
		t.Fatal("core never finished")
	}
	if c.Stats.Instructions != 4000 {
		t.Errorf("instructions = %d, want 4000", c.Stats.Instructions)
	}
	ipc := c.Stats.IPC()
	if ipc < 3.5 || ipc > 4.0 {
		t.Errorf("exec-only IPC = %.2f, want close to 4", ipc)
	}
}

func TestLoadLatencyStallsROBHead(t *testing.T) {
	// One long-latency load followed by dependent-free exec work: the
	// core keeps fetching (OoO) but cannot retire past the load.
	b := trace.NewBuilder(0)
	b.Load(1, 0x1000, 8, -1)
	b.Exec(100)
	m := newStubMem(1)
	m.latency[0x1000] = 500
	c := New(0, Default(), b.Source(), m)
	runCore(c, m, 5000)
	if !c.Done() {
		t.Fatal("core never finished")
	}
	if c.Stats.Cycles < 500 {
		t.Errorf("cycles = %d, want >= 500 (load latency exposed)", c.Stats.Cycles)
	}
}

func TestMemoryLevelParallelism(t *testing.T) {
	// N independent long loads should overlap: total time ~ latency, not
	// N*latency.
	const n = 16
	const lat = 400
	b := trace.NewBuilder(0)
	for i := 0; i < n; i++ {
		b.Load(uint64(i), mem.Addr(0x1000+i*0x40), 8, -1)
	}
	m := newStubMem(lat)
	c := New(0, Default(), b.Source(), m)
	runCore(c, m, 100000)
	if !c.Done() {
		t.Fatal("core never finished")
	}
	if c.Stats.Cycles > 2*lat {
		t.Errorf("16 independent loads took %d cycles; MLP missing (lat=%d)", c.Stats.Cycles, lat)
	}
	if c.Stats.Loads != n {
		t.Errorf("loads = %d, want %d", c.Stats.Loads, n)
	}
}

func TestLSQBoundsOutstandingLoads(t *testing.T) {
	cfg := Default()
	cfg.LSQ = 2
	const n = 8
	const lat = 100
	b := trace.NewBuilder(0)
	for i := 0; i < n; i++ {
		b.Load(uint64(i), mem.Addr(0x1000+i*0x40), 8, -1)
	}
	m := newStubMem(lat)
	c := New(0, cfg, b.Source(), m)
	runCore(c, m, 100000)
	if !c.Done() {
		t.Fatal("core never finished")
	}
	// With LSQ=2, at most 2 loads overlap: >= n/2 * lat cycles.
	if c.Stats.Cycles < (n/2)*lat {
		t.Errorf("LSQ=2 with %d loads took only %d cycles", n, c.Stats.Cycles)
	}
}

func TestStoresRetireWithoutWaiting(t *testing.T) {
	b := trace.NewBuilder(0)
	b.Store(1, 0x2000, 8, -1)
	b.Exec(8)
	m := newStubMem(1)
	m.latency[0x2000] = 1000
	c := New(0, Default(), b.Source(), m)
	runCore(c, m, 5000)
	if !c.Done() {
		t.Fatal("core never finished")
	}
	if c.Stats.Cycles > 100 {
		t.Errorf("store blocked retirement: %d cycles", c.Stats.Cycles)
	}
	if c.Stats.Stores != 1 {
		t.Errorf("stores = %d", c.Stats.Stores)
	}
}

func TestMarkersDeliveredInOrder(t *testing.T) {
	b := trace.NewBuilder(0)
	b.RecordStart()
	b.Exec(10)
	b.Replay()
	b.PrefetchEnd()
	m := newStubMem(1)
	c := New(0, Default(), b.Source(), m)
	var got []trace.Marker
	c.OnMarker = func(rec trace.Record, cycle uint64) { got = append(got, rec.Marker) }
	runCore(c, m, 1000)
	want := []trace.Marker{trace.MarkRecordStart, trace.MarkReplay, trace.MarkPrefetchEnd}
	if len(got) != len(want) {
		t.Fatalf("markers %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("marker %d = %v, want %v", i, got[i], want[i])
		}
	}
	if c.Stats.Markers != 3 {
		t.Errorf("marker count = %d", c.Stats.Markers)
	}
}

func TestPreAccessSeesEveryDemand(t *testing.T) {
	b := trace.NewBuilder(0)
	b.Load(1, 0x100, 8, 2)
	b.Store(2, 0x200, 8, 3)
	m := newStubMem(1)
	c := New(0, Default(), b.Source(), m)
	var seen []mem.Addr
	c.PreAccess = func(r *mem.Request) {
		seen = append(seen, r.Addr)
		r.StructFlag = true
	}
	runCore(c, m, 1000)
	if len(seen) != 2 || seen[0] != 0x100 || seen[1] != 0x200 {
		t.Errorf("PreAccess saw %v", seen)
	}
}

func TestRegionIDPropagates(t *testing.T) {
	b := trace.NewBuilder(0)
	b.Load(1, 0x100, 8, 7)
	m := newStubMem(1)
	c := New(0, Default(), b.Source(), m)
	var region int
	c.PreAccess = func(r *mem.Request) { region = r.RegionID }
	runCore(c, m, 100)
	if region != 7 {
		t.Errorf("region = %d, want 7", region)
	}
}

func TestBackpressureFromL1DoesNotLoseRecords(t *testing.T) {
	b := trace.NewBuilder(0)
	for i := 0; i < 5; i++ {
		b.Load(uint64(i), mem.Addr(0x100*(i+1)), 8, -1)
	}
	m := newStubMem(1)
	m.rejectAll = true
	c := New(0, Default(), b.Source(), m)
	for i := 1; i <= 10; i++ {
		c.Tick(uint64(i))
		m.Tick(uint64(i))
	}
	if c.Stats.Loads != 0 {
		t.Fatalf("loads dispatched against a full L1: %d", c.Stats.Loads)
	}
	m.rejectAll = false
	runCore(c, m, 1000)
	if !c.Done() {
		t.Fatal("core never finished after backpressure lifted")
	}
	if c.Stats.Loads != 5 || m.accepted != 5 {
		t.Errorf("loads = %d accepted = %d, want 5/5", c.Stats.Loads, m.accepted)
	}
}

func TestInstructionAccounting(t *testing.T) {
	b := trace.NewBuilder(0)
	b.Exec(100)
	b.Load(1, 0x40, 8, -1)
	b.Store(2, 0x80, 8, -1)
	b.IterBegin(0)
	b.IterEnd(0)
	m := newStubMem(3)
	c := New(0, Default(), b.Source(), m)
	runCore(c, m, 10000)
	want := uint64(100 + 2 + 2)
	if c.Stats.Instructions != want {
		t.Errorf("instructions = %d, want %d", c.Stats.Instructions, want)
	}
	if c.Stats.Instructions != b.Instructions() {
		t.Errorf("core retired %d, builder says %d", c.Stats.Instructions, b.Instructions())
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted invalid config")
		}
	}()
	New(0, Config{}, trace.NewSliceSource(nil), newStubMem(1))
}
