package graph

// Partition assigns vertices to k balanced parts while keeping neighbours
// together, standing in for METIS in the paper's SPMD methodology (§VI):
// the master partitions the graph and each worker computes on its own
// part. The algorithm is multi-seed BFS growth with strict balance caps
// followed by a boundary-refinement pass — the same locality objective
// METIS optimises, implemented with stdlib only.
type Partition struct {
	K      int
	Assign []int32 // vertex -> part
	Sizes  []int
}

// PartitionGraph splits g into k parts.
func PartitionGraph(g *Graph, k int) *Partition {
	if k < 1 {
		k = 1
	}
	p := &Partition{K: k, Assign: make([]int32, g.N), Sizes: make([]int, k)}
	for i := range p.Assign {
		p.Assign[i] = -1
	}
	cap0 := (g.N + k - 1) / k

	// Seed the parts evenly across the index space (helps grid graphs)
	// and grow breadth-first under a balance cap.
	queues := make([][]int, k)
	for part := 0; part < k; part++ {
		seed := part * g.N / k
		for seed < g.N && p.Assign[seed] >= 0 {
			seed++
		}
		if seed < g.N {
			p.claim(seed, part)
			queues[part] = append(queues[part], seed)
		}
	}
	active := true
	for active {
		active = false
		for part := 0; part < k; part++ {
			if p.Sizes[part] >= cap0 || len(queues[part]) == 0 {
				continue
			}
			v := queues[part][0]
			queues[part] = queues[part][1:]
			for _, u := range g.Neighbors(v) {
				if p.Assign[u] < 0 && p.Sizes[part] < cap0 {
					p.claim(int(u), part)
					queues[part] = append(queues[part], int(u))
				}
			}
			if len(queues[part]) > 0 {
				active = true
			}
		}
	}
	// Sweep up unreachable / capped-out vertices into the least-loaded
	// part (contiguous runs keep locality).
	for v := 0; v < g.N; v++ {
		if p.Assign[v] < 0 {
			p.claim(v, p.leastLoaded())
		}
	}
	p.refine(g, 2)
	return p
}

func (p *Partition) claim(v, part int) {
	p.Assign[v] = int32(part)
	p.Sizes[part]++
}

func (p *Partition) leastLoaded() int {
	best := 0
	for i := 1; i < p.K; i++ {
		if p.Sizes[i] < p.Sizes[best] {
			best = i
		}
	}
	return best
}

// refine performs passes of greedy boundary moves that reduce cut edges
// without violating balance (a lightweight Kernighan–Lin flavour).
func (p *Partition) refine(g *Graph, passes int) {
	if p.K == 1 {
		return
	}
	capHi := (g.N+p.K-1)/p.K + g.N/(p.K*10) + 1
	counts := make([]int, p.K)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < g.N; v++ {
			for i := range counts {
				counts[i] = 0
			}
			for _, u := range g.Neighbors(v) {
				counts[p.Assign[u]]++
			}
			cur := int(p.Assign[v])
			best, bestGain := cur, 0
			for part := 0; part < p.K; part++ {
				if part == cur || p.Sizes[part] >= capHi {
					continue
				}
				gain := counts[part] - counts[cur]
				if gain > bestGain {
					best, bestGain = part, gain
				}
			}
			if best != cur {
				p.Sizes[cur]--
				p.claim(v, best)
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// CutEdges counts edges crossing parts.
func (p *Partition) CutEdges(g *Graph) int64 {
	var cut int64
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if p.Assign[v] != p.Assign[u] {
				cut++
			}
		}
	}
	return cut
}

// Vertices returns the vertex list of one part, ascending.
func (p *Partition) Vertices(part int) []int {
	out := make([]int, 0, p.Sizes[part])
	for v, a := range p.Assign {
		if int(a) == part {
			out = append(out, v)
		}
	}
	return out
}

// Imbalance returns maxPartSize / idealSize - 1.
func (p *Partition) Imbalance(n int) float64 {
	ideal := float64(n) / float64(p.K)
	maxSz := 0
	for _, s := range p.Sizes {
		if s > maxSz {
			maxSz = s
		}
	}
	if ideal == 0 {
		return 0
	}
	return float64(maxSz)/ideal - 1
}
