// Package graph provides the compressed-sparse-row graphs, synthetic graph
// generators and the balanced partitioner used by the graph workloads
// (PageRank, HyperANF). The generators produce the paper's four input
// classes (Table III): a uniform random graph (urand), two power-law
// community graphs standing in for the SNAP amazon and com-orkut inputs,
// and a road-network-like grid standing in for roadUSA.
package graph

import "fmt"

// Graph is a directed graph in CSR form. For the pull-based algorithms the
// edge set is interpreted as in-edges: Neighbors(v) are the sources whose
// value v pulls.
type Graph struct {
	N       int      // number of vertices
	Offsets []int64  // len N+1; CSR row pointers
	Edges   []uint32 // len M; column indices
	Name    string
}

// M returns the number of edges.
func (g *Graph) M() int64 { return int64(len(g.Edges)) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the adjacency slice of vertex v (shared storage).
func (g *Graph) Neighbors(v int) []uint32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// Validate checks structural invariants: monotone offsets, in-range edges.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graph %s: %d offsets for %d vertices", g.Name, len(g.Offsets), g.N)
	}
	if g.Offsets[0] != 0 {
		return fmt.Errorf("graph %s: offsets[0] = %d", g.Name, g.Offsets[0])
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v+1] < g.Offsets[v] {
			return fmt.Errorf("graph %s: offsets decrease at %d", g.Name, v)
		}
	}
	if g.Offsets[g.N] != g.M() {
		return fmt.Errorf("graph %s: offsets end %d != %d edges", g.Name, g.Offsets[g.N], g.M())
	}
	for i, e := range g.Edges {
		if int(e) >= g.N {
			return fmt.Errorf("graph %s: edge %d targets %d >= %d", g.Name, i, e, g.N)
		}
	}
	return nil
}

// FromAdjacency builds a CSR graph from per-vertex adjacency lists.
func FromAdjacency(name string, adj [][]uint32) *Graph {
	n := len(adj)
	g := &Graph{N: n, Offsets: make([]int64, n+1), Name: name}
	var m int64
	for v, ns := range adj {
		m += int64(len(ns))
		g.Offsets[v+1] = m
	}
	g.Edges = make([]uint32, 0, m)
	for _, ns := range adj {
		g.Edges = append(g.Edges, ns...)
	}
	return g
}

// Stats summarises a graph for Table III.
type Stats struct {
	Vertices  int
	Edges     int64
	AvgDegree float64
	MaxDegree int
	InputMB   float64 // CSR size: offsets + edges + one 8 B value per vertex
}

// Summary computes the Table III characteristics of the graph.
func (g *Graph) Summary() Stats {
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	bytes := int64(len(g.Offsets))*8 + g.M()*4 + int64(g.N)*8
	return Stats{
		Vertices:  g.N,
		Edges:     g.M(),
		AvgDegree: float64(g.M()) / float64(max(1, g.N)),
		MaxDegree: maxDeg,
		InputMB:   float64(bytes) / (1 << 20),
	}
}

// InputBytes returns the in-memory footprint of the graph plus one dense
// 8-byte vertex-value array, the denominator of Fig. 13's storage
// overhead.
func (g *Graph) InputBytes() uint64 {
	return uint64(len(g.Offsets))*8 + uint64(g.M())*4 + uint64(g.N)*8
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
