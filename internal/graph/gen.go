package graph

import (
	"math/rand"
	"sort"
)

// The four generators mirror the paper's graph inputs (Table III):
//
//	urand     — uniform random connections, no locality (worst case for
//	            conventional prefetchers, best case for RnR's advantage)
//	amazon    — moderate-size co-purchase network: power-law-ish degrees
//	            with strong community structure (some locality)
//	com-orkut — large social network: heavy-tailed degrees, weaker
//	            communities, high average degree
//	roadUSA   — road network: tiny bounded degree, enormous diameter,
//	            near-grid structure with excellent spatial locality
//
// Sizes are parameters so the suite can scale from unit tests to
// benchmark runs.

// Uniform generates the urand graph: every vertex draws deg targets
// uniformly at random.
func Uniform(n, deg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]uint32, n)
	for v := range adj {
		ns := make([]uint32, deg)
		for i := range ns {
			ns[i] = uint32(rng.Intn(n))
		}
		adj[v] = ns
	}
	g := FromAdjacency("urand", adj)
	return g
}

// Community generates an amazon-style graph: vertices are grouped into
// communities of size comm; most edges stay inside the community (index
// locality), a fraction escapes uniformly.
func Community(n, deg, comm int, escape float64, seed int64) *Graph {
	if comm < 2 {
		comm = 2
	}
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]uint32, n)
	for v := range adj {
		c := v / comm * comm
		ns := make([]uint32, deg)
		for i := range ns {
			if rng.Float64() < escape {
				ns[i] = uint32(rng.Intn(n))
			} else {
				ns[i] = uint32(c + rng.Intn(comm)%max(1, min(comm, n-c)))
			}
		}
		adj[v] = ns
	}
	g := FromAdjacency("amazon", adj)
	return g
}

// PowerLaw generates a com-orkut-style graph with a heavy-tailed degree
// distribution via preferential attachment over a sliding window, plus
// uniform noise.
func PowerLaw(n, deg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]uint32, n)
	// Repeated-targets pool implements preferential attachment cheaply.
	pool := make([]uint32, 0, n*deg/2)
	for v := range adj {
		ns := make([]uint32, deg)
		for i := range ns {
			if len(pool) > 0 && rng.Float64() < 0.6 {
				ns[i] = pool[rng.Intn(len(pool))]
			} else if v > 0 {
				ns[i] = uint32(rng.Intn(v + 1))
			}
			if len(pool) < cap(pool) {
				pool = append(pool, ns[i])
			}
		}
		adj[v] = ns
	}
	g := FromAdjacency("com-orkut", adj)
	return g
}

// Road generates a roadUSA-style graph: a w x h grid with 4-neighbour
// connectivity plus sparse diagonal shortcuts, renumbered row-major so the
// index space has the same spatial locality as a real road network's
// coordinate-sorted vertices.
func Road(w, h int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := w * h
	adj := make([][]uint32, n)
	at := func(x, y int) uint32 { return uint32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := int(at(x, y))
			var ns []uint32
			if x > 0 {
				ns = append(ns, at(x-1, y))
			}
			if x < w-1 {
				ns = append(ns, at(x+1, y))
			}
			if y > 0 {
				ns = append(ns, at(x, y-1))
			}
			if y < h-1 {
				ns = append(ns, at(x, y+1))
			}
			// Occasional highway shortcut within a nearby band.
			if rng.Float64() < 0.05 {
				dy := rng.Intn(5) - 2
				dx := rng.Intn(9) - 4
				tx, ty := x+dx, y+dy
				if tx >= 0 && tx < w && ty >= 0 && ty < h {
					ns = append(ns, at(tx, ty))
				}
			}
			adj[v] = ns
		}
	}
	g := FromAdjacency("roadUSA", adj)
	return g
}

// SortAdjacency sorts each vertex's neighbour list ascending, as CSR
// builders typically do; sorted adjacency maximises the spatial locality
// baseline prefetchers can exploit, keeping comparisons fair.
func (g *Graph) SortAdjacency() {
	for v := 0; v < g.N; v++ {
		s := g.Edges[g.Offsets[v]:g.Offsets[v+1]]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
