package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromAdjacencyAndValidate(t *testing.T) {
	adj := [][]uint32{{1, 2}, {0}, {}, {2, 2, 1}}
	g := FromAdjacency("t", adj)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.M() != 6 {
		t.Errorf("N=%d M=%d", g.N, g.M())
	}
	if g.Degree(0) != 2 || g.Degree(2) != 0 || g.Degree(3) != 3 {
		t.Errorf("degrees %d %d %d", g.Degree(0), g.Degree(2), g.Degree(3))
	}
	ns := g.Neighbors(3)
	if len(ns) != 3 || ns[0] != 2 || ns[2] != 1 {
		t.Errorf("neighbors(3) = %v", ns)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := FromAdjacency("t", [][]uint32{{1}, {0}})
	g.Edges[0] = 9 // out of range
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted out-of-range edge")
	}
	g2 := FromAdjacency("t", [][]uint32{{1}, {0}})
	g2.Offsets[1] = 5
	if err := g2.Validate(); err == nil {
		t.Error("Validate accepted broken offsets")
	}
}

func TestGeneratorsProduceValidGraphs(t *testing.T) {
	gens := map[string]*Graph{
		"urand":     Uniform(500, 8, 1),
		"amazon":    Community(500, 8, 32, 0.15, 2),
		"com-orkut": PowerLaw(500, 16, 3),
		"roadUSA":   Road(25, 20, 4),
	}
	for name, g := range gens {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.N == 0 || g.M() == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Uniform(200, 6, 42)
	b := Uniform(200, 6, 42)
	if a.M() != b.M() {
		t.Fatal("same seed, different edge count")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("same seed diverges at edge %d", i)
		}
	}
	c := Uniform(200, 6, 43)
	same := true
	for i := range a.Edges {
		if i < len(c.Edges) && a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestPowerLawIsHeavyTailed(t *testing.T) {
	g := PowerLaw(2000, 12, 7)
	// In-degree distribution: compute and compare max to mean.
	indeg := make([]int, g.N)
	for _, e := range g.Edges {
		indeg[e]++
	}
	maxIn, sum := 0, 0
	for _, d := range indeg {
		sum += d
		if d > maxIn {
			maxIn = d
		}
	}
	mean := float64(sum) / float64(g.N)
	if float64(maxIn) < 10*mean {
		t.Errorf("max in-degree %d vs mean %.1f: not heavy tailed", maxIn, mean)
	}
}

func TestCommunityLocality(t *testing.T) {
	comm := 64
	g := Community(1024, 8, comm, 0.1, 5)
	local := 0
	for v := 0; v < g.N; v++ {
		c := v / comm
		for _, u := range g.Neighbors(v) {
			if int(u)/comm == c {
				local++
			}
		}
	}
	frac := float64(local) / float64(g.M())
	if frac < 0.7 {
		t.Errorf("only %.2f of edges intra-community, want > 0.7", frac)
	}
}

func TestRoadDegreeBounded(t *testing.T) {
	g := Road(30, 30, 9)
	s := g.Summary()
	if s.MaxDegree > 5 {
		t.Errorf("road max degree %d, want <= 5", s.MaxDegree)
	}
	if s.AvgDegree < 3 || s.AvgDegree > 4.3 {
		t.Errorf("road avg degree %.2f", s.AvgDegree)
	}
	// Road edges must be index-local (grid neighbours or short shortcuts).
	w := 30
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if d := int(math.Abs(float64(int(u) - v))); d > 5*w {
				t.Fatalf("road edge %d->%d spans %d", v, u, d)
			}
		}
	}
}

func TestSummaryAndInputBytes(t *testing.T) {
	g := Uniform(100, 4, 1)
	s := g.Summary()
	if s.Vertices != 100 || s.Edges != 400 {
		t.Errorf("summary %+v", s)
	}
	want := uint64(101*8 + 400*4 + 100*8)
	if g.InputBytes() != want {
		t.Errorf("InputBytes = %d, want %d", g.InputBytes(), want)
	}
}

func TestSortAdjacency(t *testing.T) {
	g := Uniform(100, 8, 3)
	g.SortAdjacency()
	for v := 0; v < g.N; v++ {
		ns := g.Neighbors(v)
		for i := 1; i < len(ns); i++ {
			if ns[i-1] > ns[i] {
				t.Fatalf("vertex %d adjacency unsorted: %v", v, ns)
			}
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionCoversAllVerticesOnce(t *testing.T) {
	for _, g := range []*Graph{Uniform(500, 8, 1), Road(25, 20, 2), PowerLaw(300, 10, 3)} {
		p := PartitionGraph(g, 4)
		seen := 0
		for v := 0; v < g.N; v++ {
			if p.Assign[v] < 0 || int(p.Assign[v]) >= 4 {
				t.Fatalf("%s: vertex %d assigned to %d", g.Name, v, p.Assign[v])
			}
			seen++
		}
		if seen != g.N {
			t.Errorf("%s: covered %d of %d", g.Name, seen, g.N)
		}
		total := 0
		for _, s := range p.Sizes {
			total += s
		}
		if total != g.N {
			t.Errorf("%s: sizes sum to %d", g.Name, total)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	g := Uniform(1000, 8, 11)
	p := PartitionGraph(g, 4)
	if imb := p.Imbalance(g.N); imb > 0.15 {
		t.Errorf("imbalance %.3f > 0.15 (sizes %v)", imb, p.Sizes)
	}
}

func TestPartitionLocalityOnRoad(t *testing.T) {
	// On a grid, a locality-aware partitioner must cut far fewer edges
	// than a random assignment would (~75% cut for k=4).
	g := Road(40, 40, 13)
	p := PartitionGraph(g, 4)
	cut := float64(p.CutEdges(g)) / float64(g.M())
	if cut > 0.3 {
		t.Errorf("road cut fraction %.3f, want well under random 0.75", cut)
	}
}

func TestPartitionVerticesRoundTrip(t *testing.T) {
	g := Uniform(200, 4, 17)
	p := PartitionGraph(g, 3)
	seen := make([]bool, g.N)
	for part := 0; part < 3; part++ {
		for _, v := range p.Vertices(part) {
			if seen[v] {
				t.Fatalf("vertex %d in two parts", v)
			}
			seen[v] = true
			if int(p.Assign[v]) != part {
				t.Fatalf("Vertices(%d) returned vertex of part %d", part, p.Assign[v])
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d in no part", v)
		}
	}
}

func TestPartitionSinglePart(t *testing.T) {
	g := Uniform(50, 4, 23)
	p := PartitionGraph(g, 1)
	if p.CutEdges(g) != 0 {
		t.Error("k=1 partition has cut edges")
	}
	if p.Sizes[0] != g.N {
		t.Errorf("k=1 sizes %v", p.Sizes)
	}
}

func TestPartitionPropertyAssignmentTotal(t *testing.T) {
	prop := func(seed int64, kSel uint8) bool {
		k := int(kSel%6) + 1
		g := Uniform(120, 5, seed)
		p := PartitionGraph(g, k)
		total := 0
		for _, s := range p.Sizes {
			total += s
		}
		if total != g.N {
			return false
		}
		for v := 0; v < g.N; v++ {
			if p.Assign[v] < 0 || int(p.Assign[v]) >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
