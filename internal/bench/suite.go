package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rnrsim/internal/apps"
	"rnrsim/internal/graph"
	"rnrsim/internal/rnr"
	"rnrsim/internal/sim"
	"rnrsim/internal/telemetry"
)

// Suite memoises workloads and simulation results so the per-figure
// runners can share runs (the baseline run, for example, feeds Fig. 6, 7,
// 8, 9 and 12).
//
// Suite is safe for concurrent callers. Both App and Run use singleflight
// memoisation: the first caller of a key computes it while later callers
// block on the same in-flight entry, so an expensive run is simulated
// exactly once no matter how many goroutines ask for it, in any order.
// Combined with the run planner (plan.go) this is what makes the parallel
// experiment engine deterministic: Prewarm fans the planned keys out over
// a bounded worker pool, and the subsequent serial table assembly is all
// cache hits, producing byte-identical output to a fully serial run.
type Suite struct {
	Scale  apps.Scale
	Config sim.Config
	// ComposeIters is the iteration count speedups are composed to
	// ("we use 100 iterations for all tested applications", §VII-A.1).
	ComposeIters int

	// Parallelism bounds the worker pool used by Prewarm (and the
	// concurrent sections of experiment runners). 0 means
	// runtime.GOMAXPROCS(0). It does not limit direct App/Run callers —
	// they are only bounded by their own concurrency.
	Parallelism int

	mu        sync.Mutex
	apps      map[string]*appCall
	results   map[string]*runCall
	requested map[string]struct{} // every Run key ever asked for (hit or miss)
	scaleG    *graph.Graph        // memoised core-scaling input

	// freshRuns counts completed fresh simulations (memoised hits and
	// cancelled runs excluded). The serving layer's coalescing tests
	// use it to prove that duplicate submissions share one simulation.
	freshRuns atomic.Uint64

	// Progress, if set, is called before each fresh simulation run.
	// It may be called from multiple goroutines concurrently; the
	// callback must serialize its own output.
	Progress func(key string)

	// OnRunDone, if set, is called after each fresh simulation run
	// completes, with the wall-clock time the simulation took. Like
	// Progress it may be invoked concurrently.
	OnRunDone func(key string, elapsed time.Duration)

	// Instrument, if set, is asked for a telemetry recorder per fresh
	// run (return nil to leave that run uninstrumented). After the run
	// completes, OnInstrumented (if set) receives the recorder back so
	// the caller can export its series/trace. Memoised (repeated) runs
	// are not re-instrumented.
	Instrument     func(key string) *telemetry.Recorder
	OnInstrumented func(key string, rec *telemetry.Recorder)
}

// appCall is one singleflight workload build: the creator closes done
// once app/err are set; everyone else blocks on done.
type appCall struct {
	done chan struct{}
	app  *apps.App
	err  error
}

// runCall is one singleflight simulation.
type runCall struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// NewSuite builds a suite at the given scale on the scaled Table II
// machine.
func NewSuite(scale apps.Scale) *Suite {
	return &Suite{
		Scale:        scale,
		Config:       sim.Scaled(),
		ComposeIters: 100,
		apps:         make(map[string]*appCall),
		results:      make(map[string]*runCall),
		requested:    make(map[string]struct{}),
	}
}

// parallelism resolves the effective worker-pool width.
func (s *Suite) parallelism() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// App returns (building once) the workload on the input. Concurrent
// callers of the same key share one build; different keys build in
// parallel.
func (s *Suite) App(workload, input string) *apps.App {
	app, err := s.AppContext(context.Background(), workload, input)
	if err != nil {
		panic(err) // experiment-definition bug, not a runtime condition
	}
	return app
}

// AppContext is App with cancellation and an error return: a caller
// whose ctx ends while waiting on another goroutine's build gives up
// (the build itself keeps running and lands in the cache), and build
// failures are returned instead of panicking. Successful builds are
// memoised exactly as App memoises them.
func (s *Suite) AppContext(ctx context.Context, workload, input string) (*apps.App, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := workload + "/" + input
	s.mu.Lock()
	c, ok := s.apps[key]
	if !ok {
		c = &appCall{done: make(chan struct{})}
		s.apps[key] = c
	}
	s.mu.Unlock()
	if ok {
		select {
		case <-c.done:
		case <-ctx.Done():
			return nil, fmt.Errorf("bench: waiting for app %s: %w", key, ctx.Err())
		}
	} else {
		func() {
			defer close(c.done)
			c.app, c.err = apps.Build(workload, input, s.Scale)
		}()
	}
	return c.app, c.err
}

// Variant customises a run beyond the prefetcher kind.
type Variant struct {
	Tag    string // distinguishes cached results; "" for plain runs
	Mutate func(*sim.Config)
}

// runKey is the canonical memoisation key format.
func runKey(workload, input string, pf sim.PrefetcherKind, tag string) string {
	return fmt.Sprintf("%s/%s/%s/%s", workload, input, pf, tag)
}

// RunKey exposes the canonical memoisation key
// ("workload/input/prefetcher/tag"). The serving layer derives its
// content-addressed job IDs from it, so a duplicate HTTP submission
// lands on the same job and, underneath, the same singleflight cache
// entry as every other request for that simulation.
func RunKey(workload, input string, pf sim.PrefetcherKind, tag string) string {
	return runKey(workload, input, pf, tag)
}

// NamedVariant resolves a stable wire name to a run variant — the
// subset of Variant configurations expressible over the HTTP API
// (functions don't serialise; tags do). The names are exactly the
// Variant tags, so a resolved variant reproduces the memoisation key
// its tag appears in. The empty name is the plain variant. Window
// sweeps use "winN" (N in cache lines).
func NamedVariant(name string) (Variant, bool) {
	switch name {
	case "", "plain":
		return Variant{}, true
	case "ideal":
		return IdealVariant(), true
	case "ctxsw":
		return CtxSwitchVariant(), true
	case "recordall":
		return RecordAllVariant(), true
	case "llcdest":
		return LLCDestVariant(), true
	}
	for _, ctl := range timingControls {
		if v := ControlVariant(ctl); v.Tag == name {
			return v, true
		}
	}
	var win uint64
	if n, err := fmt.Sscanf(name, "win%d", &win); n == 1 && err == nil && win > 0 {
		if v := WindowVariant(win); v.Tag == name { // reject "win07"-style aliases
			return v, true
		}
	}
	return Variant{}, false
}

// VariantNames lists the fixed wire names NamedVariant accepts (the
// parametric "window-N" family excluded), for API discovery.
func VariantNames() []string {
	names := []string{"plain", "ideal", "ctxsw", "recordall", "llcdest"}
	for _, ctl := range timingControls {
		names = append(names, ControlVariant(ctl).Tag)
	}
	return names
}

// Run simulates (memoised, singleflight) the workload/input under the
// prefetcher. Exactly one fresh simulation happens per distinct key even
// under concurrent callers; the losers of the insert race block until
// the winner's result is ready.
func (s *Suite) Run(workload, input string, pf sim.PrefetcherKind, v Variant) *sim.Result {
	r, err := s.RunContext(context.Background(), workload, input, pf, v)
	if err != nil {
		panic(err)
	}
	return r
}

// IsCancellation reports whether err is (or wraps) a context
// cancellation or deadline expiry — the errors RunContext returns for
// abandoned runs, which deliberately do not poison the memoisation
// cache.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunContext is Run with cancellation and an error return. The
// singleflight contract holds: exactly one fresh simulation per key
// under any caller interleaving. Cancellation interacts with the cache
// in two deliberate ways:
//
//   - A cancelled *winner* removes its cache entry before waking its
//     waiters, so the cancellation never poisons the cache — the next
//     caller of the key starts a fresh simulation.
//   - A *waiter* whose winner was cancelled (but whose own ctx is still
//     alive) retries and typically becomes the new winner, so an
//     unrelated client's disconnect cannot fail another client's job.
//
// A waiter whose own ctx ends while blocked gives up immediately; the
// in-flight simulation it was waiting on is unaffected.
func (s *Suite) RunContext(ctx context.Context, workload, input string, pf sim.PrefetcherKind, v Variant) (*sim.Result, error) {
	key := runKey(workload, input, pf, v.Tag)
	for {
		s.mu.Lock()
		s.requested[key] = struct{}{}
		c, ok := s.results[key]
		if !ok {
			c = &runCall{done: make(chan struct{})}
			s.results[key] = c
		}
		s.mu.Unlock()

		if !ok {
			s.runFresh(ctx, c, key, workload, input, pf, v)
		} else {
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, fmt.Errorf("bench: waiting for %s: %w", key, ctx.Err())
			}
			if IsCancellation(c.err) && ctx.Err() == nil {
				// The winner was cancelled; its entry was removed before
				// c.done closed. We are still alive: retry fresh.
				continue
			}
		}
		return c.res, c.err
	}
}

// runFresh is the singleflight winner's path: simulate, publish the
// outcome on c, wake the waiters. A cancelled run deletes its map entry
// *before* close(c.done) so retrying waiters cannot re-adopt the dead
// entry.
func (s *Suite) runFresh(ctx context.Context, c *runCall, key, workload, input string, pf sim.PrefetcherKind, v Variant) {
	defer close(c.done) // never leave waiters hanging, even on panic
	c.res, c.err = s.simulate(ctx, key, workload, input, pf, v)
	if IsCancellation(c.err) {
		s.mu.Lock()
		if s.results[key] == c {
			delete(s.results, key)
		}
		s.mu.Unlock()
	}
}

// simulate performs one fresh run (the singleflight winner's path).
func (s *Suite) simulate(ctx context.Context, key, workload, input string, pf sim.PrefetcherKind, v Variant) (*sim.Result, error) {
	app, err := s.AppContext(ctx, workload, input)
	if err != nil {
		return nil, err
	}
	cfg := s.Config
	cfg.Prefetcher = pf
	cfg.Name = key
	if v.Mutate != nil {
		v.Mutate(&cfg)
	}
	if fn := progressFrom(ctx); fn != nil {
		cfg.OnIteration = func(iter int, cycle uint64) {
			fn(ProgressEvent{Key: key, Iteration: iter, Cycle: cycle})
		}
	}
	if s.Progress != nil {
		s.Progress(key)
	}
	var rec *telemetry.Recorder
	if s.Instrument != nil {
		rec = s.Instrument(key)
		cfg.Telemetry = rec
	}
	start := time.Now()
	r, err := sim.RunContext(ctx, cfg, app)
	if err != nil {
		return nil, err
	}
	s.freshRuns.Add(1)
	if rec != nil && s.OnInstrumented != nil {
		s.OnInstrumented(key, rec)
	}
	if s.OnRunDone != nil {
		s.OnRunDone(key, time.Since(start))
	}
	return r, nil
}

// FreshRuns returns how many fresh (non-memoised) simulations have
// completed successfully so far. Coalescing tests assert on deltas of
// this counter.
func (s *Suite) FreshRuns() uint64 { return s.freshRuns.Load() }

// ProgressEvent is one live progress tick from a fresh simulation: the
// run key it belongs to and the iteration barrier that just opened.
type ProgressEvent struct {
	Key       string
	Iteration int
	Cycle     uint64
}

// progressCtxKey carries a per-caller progress callback through
// RunContext into the simulator's OnIteration hook.
type progressCtxKey struct{}

// WithProgress returns a ctx that delivers per-iteration progress
// events for every fresh simulation started under it. Only the
// singleflight winner's callback fires (memoised hits simulate
// nothing); the serving layer fans the winner's events out to every
// subscriber of the coalesced job.
func WithProgress(ctx context.Context, fn func(ProgressEvent)) context.Context {
	if fn == nil {
		return ctx
	}
	return context.WithValue(ctx, progressCtxKey{}, fn)
}

func progressFrom(ctx context.Context) func(ProgressEvent) {
	fn, _ := ctx.Value(progressCtxKey{}).(func(ProgressEvent))
	return fn
}

// RequestedKeys returns a snapshot of every run key Run has been asked
// for so far (memoised hits included). The planner-completeness tests
// use it to verify that a plan covers exactly the keys table assembly
// requests.
func (s *Suite) RequestedKeys() map[string]struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]struct{}, len(s.requested))
	for k := range s.requested {
		out[k] = struct{}{}
	}
	return out
}

// Baseline returns the no-prefetcher run.
func (s *Suite) Baseline(workload, input string) *sim.Result {
	return s.Run(workload, input, sim.PFNone, Variant{})
}

// IdealVariant is the infinite-LLC configuration of the Fig. 6 bound.
func IdealVariant() Variant {
	return Variant{
		Tag:    "ideal",
		Mutate: func(c *sim.Config) { c.IdealLLC = true },
	}
}

// Ideal returns the infinite-LLC run.
func (s *Suite) Ideal(workload, input string) *sim.Result {
	return s.Run(workload, input, sim.PFNone, IdealVariant())
}

// ControlVariant selects an RnR replay timing control (Fig. 10/11).
func ControlVariant(ctl rnr.TimingControl) Variant {
	return Variant{
		Tag:    "ctl-" + ctl.String(),
		Mutate: func(c *sim.Config) { c.RnRControl = ctl },
	}
}

// RnRWithControl returns an RnR run under the given timing control.
func (s *Suite) RnRWithControl(workload, input string, ctl rnr.TimingControl) *sim.Result {
	return s.Run(workload, input, sim.PFRnR, ControlVariant(ctl))
}

// comparisonSet is the Fig. 6-9 prefetcher line-up. DROPLET is skipped for
// spCG ("the evaluation results do not include DROPLET when running
// spCG", §VII).
func comparisonSet(workload string) []sim.PrefetcherKind {
	set := []sim.PrefetcherKind{
		sim.PFNextLine, sim.PFBingo, sim.PFSteMS, sim.PFMISB,
	}
	if workload != "spcg" {
		set = append(set, sim.PFDroplet)
	}
	return append(set, sim.PFRnR, sim.PFRnRCombined)
}
