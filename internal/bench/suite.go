package bench

import (
	"fmt"
	"sync"

	"rnrsim/internal/apps"
	"rnrsim/internal/graph"
	"rnrsim/internal/rnr"
	"rnrsim/internal/sim"
	"rnrsim/internal/telemetry"
)

// Suite memoises workloads and simulation results so the per-figure
// runners can share runs (the baseline run, for example, feeds Fig. 6, 7,
// 8, 9 and 12).
type Suite struct {
	Scale  apps.Scale
	Config sim.Config
	// ComposeIters is the iteration count speedups are composed to
	// ("we use 100 iterations for all tested applications", §VII-A.1).
	ComposeIters int

	mu      sync.Mutex
	apps    map[string]*apps.App
	results map[string]*sim.Result
	scaleG  *graph.Graph // memoised core-scaling input

	// Progress, if set, is called before each fresh simulation run.
	Progress func(key string)

	// Instrument, if set, is asked for a telemetry recorder per fresh
	// run (return nil to leave that run uninstrumented). After the run
	// completes, OnInstrumented (if set) receives the recorder back so
	// the caller can export its series/trace. Memoised (repeated) runs
	// are not re-instrumented.
	Instrument     func(key string) *telemetry.Recorder
	OnInstrumented func(key string, rec *telemetry.Recorder)
}

// NewSuite builds a suite at the given scale on the scaled Table II
// machine.
func NewSuite(scale apps.Scale) *Suite {
	return &Suite{
		Scale:        scale,
		Config:       sim.Scaled(),
		ComposeIters: 100,
		apps:         make(map[string]*apps.App),
		results:      make(map[string]*sim.Result),
	}
}

// App returns (building once) the workload on the input.
func (s *Suite) App(workload, input string) *apps.App {
	key := workload + "/" + input
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.apps[key]; ok {
		return a
	}
	a, err := apps.Build(workload, input, s.Scale)
	if err != nil {
		panic(err) // experiment-definition bug, not a runtime condition
	}
	s.apps[key] = a
	return a
}

// Variant customises a run beyond the prefetcher kind.
type Variant struct {
	Tag    string // distinguishes cached results; "" for plain runs
	Mutate func(*sim.Config)
}

// Run simulates (memoised) the workload/input under the prefetcher.
func (s *Suite) Run(workload, input string, pf sim.PrefetcherKind, v Variant) *sim.Result {
	key := fmt.Sprintf("%s/%s/%s/%s", workload, input, pf, v.Tag)
	s.mu.Lock()
	if r, ok := s.results[key]; ok {
		s.mu.Unlock()
		return r
	}
	s.mu.Unlock()

	app := s.App(workload, input)
	cfg := s.Config
	cfg.Prefetcher = pf
	cfg.Name = key
	if v.Mutate != nil {
		v.Mutate(&cfg)
	}
	if s.Progress != nil {
		s.Progress(key)
	}
	var rec *telemetry.Recorder
	if s.Instrument != nil {
		rec = s.Instrument(key)
		cfg.Telemetry = rec
	}
	r, err := sim.Run(cfg, app)
	if err != nil {
		panic(err)
	}
	if rec != nil && s.OnInstrumented != nil {
		s.OnInstrumented(key, rec)
	}
	s.mu.Lock()
	s.results[key] = r
	s.mu.Unlock()
	return r
}

// Baseline returns the no-prefetcher run.
func (s *Suite) Baseline(workload, input string) *sim.Result {
	return s.Run(workload, input, sim.PFNone, Variant{})
}

// Ideal returns the infinite-LLC run.
func (s *Suite) Ideal(workload, input string) *sim.Result {
	return s.Run(workload, input, sim.PFNone, Variant{
		Tag:    "ideal",
		Mutate: func(c *sim.Config) { c.IdealLLC = true },
	})
}

// RnRWithControl returns an RnR run under the given timing control.
func (s *Suite) RnRWithControl(workload, input string, ctl rnr.TimingControl) *sim.Result {
	return s.Run(workload, input, sim.PFRnR, Variant{
		Tag:    "ctl-" + ctl.String(),
		Mutate: func(c *sim.Config) { c.RnRControl = ctl },
	})
}

// comparisonSet is the Fig. 6-9 prefetcher line-up. DROPLET is skipped for
// spCG ("the evaluation results do not include DROPLET when running
// spCG", §VII).
func comparisonSet(workload string) []sim.PrefetcherKind {
	set := []sim.PrefetcherKind{
		sim.PFNextLine, sim.PFBingo, sim.PFSteMS, sim.PFMISB,
	}
	if workload != "spcg" {
		set = append(set, sim.PFDroplet)
	}
	return append(set, sim.PFRnR, sim.PFRnRCombined)
}
