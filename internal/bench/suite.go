package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rnrsim/internal/apps"
	"rnrsim/internal/graph"
	"rnrsim/internal/rnr"
	"rnrsim/internal/sim"
	"rnrsim/internal/telemetry"
)

// Suite memoises workloads and simulation results so the per-figure
// runners can share runs (the baseline run, for example, feeds Fig. 6, 7,
// 8, 9 and 12).
//
// Suite is safe for concurrent callers. Both App and Run use singleflight
// memoisation: the first caller of a key computes it while later callers
// block on the same in-flight entry, so an expensive run is simulated
// exactly once no matter how many goroutines ask for it, in any order.
// Combined with the run planner (plan.go) this is what makes the parallel
// experiment engine deterministic: Prewarm fans the planned keys out over
// a bounded worker pool, and the subsequent serial table assembly is all
// cache hits, producing byte-identical output to a fully serial run.
type Suite struct {
	Scale  apps.Scale
	Config sim.Config
	// ComposeIters is the iteration count speedups are composed to
	// ("we use 100 iterations for all tested applications", §VII-A.1).
	ComposeIters int

	// Parallelism bounds the worker pool used by Prewarm (and the
	// concurrent sections of experiment runners). 0 means
	// runtime.GOMAXPROCS(0). It does not limit direct App/Run callers —
	// they are only bounded by their own concurrency.
	Parallelism int

	mu        sync.Mutex
	apps      map[string]*appCall
	results   map[string]*runCall
	requested map[string]struct{} // every Run key ever asked for (hit or miss)
	scaleG    *graph.Graph        // memoised core-scaling input

	// Progress, if set, is called before each fresh simulation run.
	// It may be called from multiple goroutines concurrently; the
	// callback must serialize its own output.
	Progress func(key string)

	// OnRunDone, if set, is called after each fresh simulation run
	// completes, with the wall-clock time the simulation took. Like
	// Progress it may be invoked concurrently.
	OnRunDone func(key string, elapsed time.Duration)

	// Instrument, if set, is asked for a telemetry recorder per fresh
	// run (return nil to leave that run uninstrumented). After the run
	// completes, OnInstrumented (if set) receives the recorder back so
	// the caller can export its series/trace. Memoised (repeated) runs
	// are not re-instrumented.
	Instrument     func(key string) *telemetry.Recorder
	OnInstrumented func(key string, rec *telemetry.Recorder)
}

// appCall is one singleflight workload build: the creator closes done
// once app/err are set; everyone else blocks on done.
type appCall struct {
	done chan struct{}
	app  *apps.App
	err  error
}

// runCall is one singleflight simulation.
type runCall struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// NewSuite builds a suite at the given scale on the scaled Table II
// machine.
func NewSuite(scale apps.Scale) *Suite {
	return &Suite{
		Scale:        scale,
		Config:       sim.Scaled(),
		ComposeIters: 100,
		apps:         make(map[string]*appCall),
		results:      make(map[string]*runCall),
		requested:    make(map[string]struct{}),
	}
}

// parallelism resolves the effective worker-pool width.
func (s *Suite) parallelism() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// App returns (building once) the workload on the input. Concurrent
// callers of the same key share one build; different keys build in
// parallel.
func (s *Suite) App(workload, input string) *apps.App {
	key := workload + "/" + input
	s.mu.Lock()
	c, ok := s.apps[key]
	if !ok {
		c = &appCall{done: make(chan struct{})}
		s.apps[key] = c
	}
	s.mu.Unlock()
	if ok {
		<-c.done
	} else {
		func() {
			defer close(c.done)
			c.app, c.err = apps.Build(workload, input, s.Scale)
		}()
	}
	if c.err != nil {
		panic(c.err) // experiment-definition bug, not a runtime condition
	}
	return c.app
}

// Variant customises a run beyond the prefetcher kind.
type Variant struct {
	Tag    string // distinguishes cached results; "" for plain runs
	Mutate func(*sim.Config)
}

// runKey is the canonical memoisation key format.
func runKey(workload, input string, pf sim.PrefetcherKind, tag string) string {
	return fmt.Sprintf("%s/%s/%s/%s", workload, input, pf, tag)
}

// Run simulates (memoised, singleflight) the workload/input under the
// prefetcher. Exactly one fresh simulation happens per distinct key even
// under concurrent callers; the losers of the insert race block until
// the winner's result is ready.
func (s *Suite) Run(workload, input string, pf sim.PrefetcherKind, v Variant) *sim.Result {
	key := runKey(workload, input, pf, v.Tag)
	s.mu.Lock()
	s.requested[key] = struct{}{}
	c, ok := s.results[key]
	if !ok {
		c = &runCall{done: make(chan struct{})}
		s.results[key] = c
	}
	s.mu.Unlock()

	if ok {
		<-c.done
	} else {
		func() {
			defer close(c.done) // never leave waiters hanging, even on panic
			c.res, c.err = s.simulate(key, workload, input, pf, v)
		}()
	}
	if c.err != nil {
		panic(c.err)
	}
	return c.res
}

// simulate performs one fresh run (the singleflight winner's path).
func (s *Suite) simulate(key, workload, input string, pf sim.PrefetcherKind, v Variant) (*sim.Result, error) {
	app := s.App(workload, input)
	cfg := s.Config
	cfg.Prefetcher = pf
	cfg.Name = key
	if v.Mutate != nil {
		v.Mutate(&cfg)
	}
	if s.Progress != nil {
		s.Progress(key)
	}
	var rec *telemetry.Recorder
	if s.Instrument != nil {
		rec = s.Instrument(key)
		cfg.Telemetry = rec
	}
	start := time.Now()
	r, err := sim.Run(cfg, app)
	if err != nil {
		return nil, err
	}
	if rec != nil && s.OnInstrumented != nil {
		s.OnInstrumented(key, rec)
	}
	if s.OnRunDone != nil {
		s.OnRunDone(key, time.Since(start))
	}
	return r, nil
}

// RequestedKeys returns a snapshot of every run key Run has been asked
// for so far (memoised hits included). The planner-completeness tests
// use it to verify that a plan covers exactly the keys table assembly
// requests.
func (s *Suite) RequestedKeys() map[string]struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]struct{}, len(s.requested))
	for k := range s.requested {
		out[k] = struct{}{}
	}
	return out
}

// Baseline returns the no-prefetcher run.
func (s *Suite) Baseline(workload, input string) *sim.Result {
	return s.Run(workload, input, sim.PFNone, Variant{})
}

// IdealVariant is the infinite-LLC configuration of the Fig. 6 bound.
func IdealVariant() Variant {
	return Variant{
		Tag:    "ideal",
		Mutate: func(c *sim.Config) { c.IdealLLC = true },
	}
}

// Ideal returns the infinite-LLC run.
func (s *Suite) Ideal(workload, input string) *sim.Result {
	return s.Run(workload, input, sim.PFNone, IdealVariant())
}

// ControlVariant selects an RnR replay timing control (Fig. 10/11).
func ControlVariant(ctl rnr.TimingControl) Variant {
	return Variant{
		Tag:    "ctl-" + ctl.String(),
		Mutate: func(c *sim.Config) { c.RnRControl = ctl },
	}
}

// RnRWithControl returns an RnR run under the given timing control.
func (s *Suite) RnRWithControl(workload, input string, ctl rnr.TimingControl) *sim.Result {
	return s.Run(workload, input, sim.PFRnR, ControlVariant(ctl))
}

// comparisonSet is the Fig. 6-9 prefetcher line-up. DROPLET is skipped for
// spCG ("the evaluation results do not include DROPLET when running
// spCG", §VII).
func comparisonSet(workload string) []sim.PrefetcherKind {
	set := []sim.PrefetcherKind{
		sim.PFNextLine, sim.PFBingo, sim.PFSteMS, sim.PFMISB,
	}
	if workload != "spcg" {
		set = append(set, sim.PFDroplet)
	}
	return append(set, sim.PFRnR, sim.PFRnRCombined)
}
