package bench

import (
	"fmt"

	"rnrsim/internal/apps"
	"rnrsim/internal/rnr"
	"rnrsim/internal/sim"
)

// Fig1 reproduces Figure 1: miss coverage vs prefetching accuracy of six
// prefetcher classes on PageRank with the amazon graph.
func (s *Suite) Fig1() *Table {
	t := &Table{
		ID:     "fig1",
		Title:  "Prefetcher coverage and accuracy, PageRank on amazon",
		Header: []string{"prefetcher", "coverage", "accuracy"},
	}
	base := s.Baseline("pagerank", "amazon")
	for _, pf := range fig1Prefetchers {
		r := s.Run("pagerank", "amazon", pf, Variant{})
		t.AddRow(string(pf), pct(r.Coverage(base)*100), pct(r.Accuracy()*100))
	}
	t.Note("paper: RnR lands in the top-right corner (~95%%+/95%%+); " +
		"general-purpose prefetchers are low on both axes")
	return t
}

// TableII reproduces Table II: the baseline machine configuration.
func (s *Suite) TableII() *Table {
	c := s.Config
	t := &Table{
		ID:     "tableII",
		Title:  "Baseline configuration (paper values, scaled capacities in use)",
		Header: []string{"component", "paper", "this run"},
	}
	paper := sim.Baseline()
	t.AddRow("cores", fmt.Sprintf("%d x 4GHz 4-wide OoO", paper.Cores), fmt.Sprintf("%d", c.Cores))
	t.AddRow("ROB/LSQ", fmt.Sprintf("%d/%d", paper.CPU.ROB, paper.CPU.LSQ), fmt.Sprintf("%d/%d", c.CPU.ROB, c.CPU.LSQ))
	t.AddRow("L1D", fmt.Sprintf("%dKB/%dw lat %d", paper.L1.SizeBytes/1024, paper.L1.Ways, paper.L1.Latency),
		fmt.Sprintf("%dKB/%dw lat %d", c.L1.SizeBytes/1024, c.L1.Ways, c.L1.Latency))
	t.AddRow("L2", fmt.Sprintf("%dKB/%dw lat %d", paper.L2.SizeBytes/1024, paper.L2.Ways, paper.L2.Latency),
		fmt.Sprintf("%dKB/%dw lat %d", c.L2.SizeBytes/1024, c.L2.Ways, c.L2.Latency))
	t.AddRow("LLC", fmt.Sprintf("%dMB/%dw lat %d", paper.LLC.SizeBytes/(1<<20), paper.LLC.Ways, paper.LLC.Latency),
		fmt.Sprintf("%dKB/%dw lat %d", c.LLC.SizeBytes/1024, c.LLC.Ways, c.LLC.Latency))
	t.AddRow("memory", fmt.Sprintf("%s rq=%d wq=%d", paper.DRAM.Name, paper.DRAM.ReadQ, paper.DRAM.WriteQ),
		fmt.Sprintf("%s rq=%d wq=%d", c.DRAM.Name, c.DRAM.ReadQ, c.DRAM.WriteQ))
	t.AddRow("write drain", "75%/25%", fmt.Sprintf("%.0f%%/%.0f%%", c.DRAM.DrainHigh*100, c.DRAM.DrainLow*100))
	t.Note("capacities scaled 16x down with the inputs; latencies and queueing unchanged")
	return t
}

// TableIII reproduces Table III: the inputs and their characteristics.
func (s *Suite) TableIII() *Table {
	t := &Table{
		ID:     "tableIII",
		Title:  "Workload inputs (synthetic stand-ins, scaled)",
		Header: []string{"input", "kind", "n", "edges/nnz", "avg deg", "MB"},
	}
	for _, name := range apps.GraphInputOrder {
		g := apps.GraphInputs(s.Scale)[name]
		st := g.Summary()
		t.AddRow(name, "graph", fmt.Sprint(st.Vertices), fmt.Sprint(st.Edges), f1(st.AvgDegree), f2(st.InputMB))
	}
	for _, name := range apps.MatrixInputOrder {
		m := apps.MatrixInputs(s.Scale)[name]
		st := m.Summary()
		t.AddRow(name, "matrix", fmt.Sprint(st.N), fmt.Sprint(st.NNZ), f1(st.AvgPerRow), f2(st.InputMB))
	}
	return t
}

// workloadTable runs metric over the full workload x input x prefetcher
// grid, one row per prefetcher with a geomean column per workload as the
// paper's bar charts present it.
func (s *Suite) workloadTable(id, title, unit string, set func(string) []sim.PrefetcherKind,
	metric func(r, base *sim.Result) float64) *Table {
	t := &Table{ID: id, Title: title}
	t.Header = []string{"prefetcher"}
	type col struct{ w, in string }
	var cols []col
	for _, w := range apps.Workloads {
		for _, in := range apps.InputsFor(w) {
			cols = append(cols, col{w, in})
			t.Header = append(t.Header, w[:2]+":"+in)
		}
		t.Header = append(t.Header, w[:2]+":GM")
		cols = append(cols, col{w, ""})
	}
	union := map[sim.PrefetcherKind]bool{}
	var order []sim.PrefetcherKind
	for _, w := range apps.Workloads {
		for _, pf := range set(w) {
			if !union[pf] {
				union[pf] = true
				order = append(order, pf)
			}
		}
	}
	for _, pf := range order {
		row := []string{string(pf)}
		var gm []float64
		for _, c := range cols {
			if c.in == "" { // geomean column
				if len(gm) == 0 {
					row = append(row, "-")
				} else {
					row = append(row, f2(geomean(gm)))
				}
				gm = nil
				continue
			}
			applies := false
			for _, p := range set(c.w) {
				if p == pf {
					applies = true
				}
			}
			if !applies {
				row = append(row, "-")
				continue
			}
			base := s.Baseline(c.w, c.in)
			r := s.Run(c.w, c.in, pf, Variant{})
			v := metric(r, base)
			gm = append(gm, v)
			row = append(row, f2(v))
		}
		t.AddRow(row...)
	}
	if unit != "" {
		t.Note("unit: %s", unit)
	}
	return t
}

// Fig6 reproduces Figure 6: speedup over the no-prefetcher baseline,
// composed to 100 iterations (record amortised over 99 replays).
func (s *Suite) Fig6() *Table {
	t := s.workloadTable("fig6", "Speedup over no-prefetch baseline (100 iterations)", "x",
		comparisonSet,
		func(r, base *sim.Result) float64 { return r.ComposedSpeedup(base, s.ComposeIters) })
	// Append the ideal (infinite LLC) bound.
	row := []string{"ideal-llc"}
	var gm []float64
	for _, w := range apps.Workloads {
		for _, in := range apps.InputsFor(w) {
			base := s.Baseline(w, in)
			id := s.Ideal(w, in)
			v := id.ComposedSpeedup(base, s.ComposeIters)
			gm = append(gm, v)
			row = append(row, f2(v))
		}
		row = append(row, f2(geomean(gm)))
		gm = nil
	}
	t.AddRow(row...)
	t.Note("paper: RnR ~2.11x PageRank, ~2.23x Hyper-Anf, ~2.90x spCG; "+
		"general-purpose prefetchers near 1x on urand, competitive on roadUSA; iters=%d", s.ComposeIters)
	return t
}

// Fig7 reproduces Figure 7: L2 MPKI.
func (s *Suite) Fig7() *Table {
	t := &Table{ID: "fig7", Title: "L2 demand MPKI", Header: []string{"config"}}
	type col struct{ w, in string }
	var cols []col
	for _, w := range apps.Workloads {
		for _, in := range apps.InputsFor(w) {
			cols = append(cols, col{w, in})
			t.Header = append(t.Header, w[:2]+":"+in)
		}
	}
	addRow := func(name string, get func(w, in string) *sim.Result) {
		row := []string{name}
		for _, c := range cols {
			row = append(row, f1(get(c.w, c.in).L2MPKI()))
		}
		t.AddRow(row...)
	}
	addRow("baseline", func(w, in string) *sim.Result { return s.Baseline(w, in) })
	addRow("rnr", func(w, in string) *sim.Result { return s.Run(w, in, sim.PFRnR, Variant{}) })
	addRow("rnr-combined", func(w, in string) *sim.Result { return s.Run(w, in, sim.PFRnRCombined, Variant{}) })
	t.Note("paper: RnR-Combined cuts demand miss ratio by 97.3%%/94.6%%/98.9%% " +
		"(PageRank/Hyper-Anf/spCG); urand and com-orkut still halve MPKI")
	return t
}

// Fig8 reproduces Figure 8: miss coverage.
func (s *Suite) Fig8() *Table {
	t := s.workloadTable("fig8", "Miss coverage vs baseline misses", "fraction",
		comparisonSet,
		func(r, base *sim.Result) float64 { return r.Coverage(base) })
	t.Note("paper: RnR averages 91.4%%/84.5%%/88.7%% coverage")
	return t
}

// Fig9 reproduces Figure 9: prefetch accuracy.
func (s *Suite) Fig9() *Table {
	t := s.workloadTable("fig9", "Prefetch accuracy", "fraction",
		comparisonSet,
		func(r, base *sim.Result) float64 { return r.Accuracy() })
	t.Note("paper: RnR averages 97.18%% accuracy; bingo/SteMS lowest on " +
		"irregular inputs, ~50%% on roadUSA")
	return t
}

// Fig10 reproduces Figure 10: effectiveness of replay timing control.
func (s *Suite) Fig10() *Table {
	t := &Table{
		ID:     "fig10",
		Title:  "Replay timing control ablation: speedup over baseline (100 iters)",
		Header: []string{"control"},
	}
	type col struct{ w, in string }
	var cols []col
	for _, w := range apps.Workloads {
		for _, in := range apps.InputsFor(w) {
			cols = append(cols, col{w, in})
			t.Header = append(t.Header, w[:2]+":"+in)
		}
	}
	t.Header = append(t.Header, "GM")
	for _, ctl := range timingControls {
		row := []string{ctl.String()}
		var gm []float64
		for _, c := range cols {
			base := s.Baseline(c.w, c.in)
			r := s.RnRWithControl(c.w, c.in, ctl)
			v := r.ComposedSpeedup(base, s.ComposeIters)
			gm = append(gm, v)
			row = append(row, f2(v))
		}
		row = append(row, f2(geomean(gm)))
		t.AddRow(row...)
	}
	t.Note("paper: replay without window control cannot improve performance; " +
		"window control recovers ~2.31x; pace adds little on top")
	return t
}

// Fig11 reproduces Figure 11: prefetch timeliness breakdown under the
// three control modes.
func (s *Suite) Fig11() *Table {
	t := &Table{
		ID:     "fig11",
		Title:  "RnR prefetch timeliness (fractions of issued prefetches)",
		Header: []string{"workload/input", "control", "on-time", "early", "late", "out-of-window"},
	}
	for _, w := range apps.Workloads {
		for _, in := range apps.InputsFor(w) {
			for _, ctl := range timingControls {
				r := s.RnRWithControl(w, in, ctl)
				tl := r.TimelinessBreakdown()
				t.AddRow(w+"/"+in, ctl.String(),
					pct(tl.OnTime*100), pct(tl.Early*100), pct(tl.Late*100), pct(tl.OutOfWindow*100))
			}
		}
	}
	t.Note("paper: with window control most prefetches are on time; only " +
		"urand shows 7-8%% early/late; pace control trims early by 3-4%% there")
	return t
}

// Fig12 reproduces Figure 12: additional off-chip traffic.
func (s *Suite) Fig12() *Table {
	set := func(w string) []sim.PrefetcherKind {
		return comparisonSet(w)
	}
	t := s.workloadTable("fig12", "Additional off-chip traffic vs baseline (%)", "%",
		set,
		func(r, base *sim.Result) float64 { return r.AdditionalTrafficPct(base) })
	t.Note("paper averages: next-line 45.2%%, bingo 67.1%%, SteMS 58.4%%, " +
		"MISB 19.7%%, DROPLET 12.2%%, RnR 12.0%%, RnR-Combined 27.6%%; " +
		"RnR's extra traffic is metadata, not useless prefetches")
	return t
}

// Fig13 reproduces Figure 13: RnR metadata storage overhead.
func (s *Suite) Fig13() *Table {
	t := &Table{
		ID:     "fig13",
		Title:  "RnR metadata storage overhead (% of input size)",
		Header: []string{"workload", "input", "seq KB", "div KB", "input KB", "overhead"},
	}
	for _, w := range apps.Workloads {
		var gm []float64
		for _, in := range apps.InputsFor(w) {
			r := s.Run(w, in, sim.PFRnR, Variant{})
			ov := r.StorageOverheadPct()
			gm = append(gm, ov)
			t.AddRow(w, in,
				f1(float64(r.RnR.SeqTableBytes)/1024),
				f1(float64(r.RnR.DivTableBytes)/1024),
				f1(float64(r.InputBytes)/1024),
				pct(ov))
		}
		t.AddRow(w, "MEAN", "", "", "", pct(mean(gm)))
	}
	t.Note("paper: 12.1%%/11.58%%/13.0%% average for PageRank/Hyper-Anf/spCG; " +
		"roadUSA lowest (7.64%%), urand highest (22.43%%)")
	return t
}

// fig14Picks and fig14Windows define the Fig. 14 sweep grid, shared with
// the run planner.
var (
	fig14Picks   = [][2]string{{"pagerank", "amazon"}, {"hyperanf", "urand"}, {"spcg", "bbmat"}}
	fig14Windows = []uint64{16, 64, 128, 256, 512, 1024, 2048}
)

// WindowVariant sets the RnR window size in lines (Fig. 14 sweep).
func WindowVariant(win uint64) Variant {
	return Variant{
		Tag:    fmt.Sprintf("win%d", win),
		Mutate: func(c *sim.Config) { c.RnRWindow = win },
	}
}

// Fig14 reproduces Figure 14: speedup and storage vs window size.
func (s *Suite) Fig14() *Table {
	t := &Table{
		ID:     "fig14",
		Title:  "Window size sweep: geomean speedup and storage overhead",
		Header: []string{"window (lines)", "geomean speedup", "avg storage overhead"},
	}
	// Representative subset to keep the sweep tractable: one input per
	// workload, as the paper's figure reports averages.
	for _, win := range fig14Windows {
		var sps, ovs []float64
		for _, p := range fig14Picks {
			base := s.Baseline(p[0], p[1])
			r := s.Run(p[0], p[1], sim.PFRnR, WindowVariant(win))
			sps = append(sps, r.ComposedSpeedup(base, s.ComposeIters))
			ovs = append(ovs, r.StorageOverheadPct())
		}
		t.AddRow(fmt.Sprint(win), f2(geomean(sps)), pct(mean(ovs)))
	}
	t.Note("paper: 64-2048 lines perform alike; below 64 speedup collapses " +
		"and the division table bloats. Here the adaptive lead decouples " +
		"prefetch distance from window size, so the plateau extends to " +
		"small windows; the division-table cost still grows as 1/window")
	return t
}

// TableIV reproduces Table IV: qualitative comparison of design points.
func (s *Suite) TableIV() *Table {
	t := &Table{
		ID:    "tableIV",
		Title: "Design comparison with the most related prefetchers",
		Header: []string{"design", "class", "trigger", "metadata", "software hint",
			"timing control"},
	}
	t.AddRow("MISB", "temporal", "miss+PC", "off-chip + 49KB cache", "none", "degree<=8")
	t.AddRow("Bingo", "spatial", "region trigger", "on-chip tables", "none", "footprint burst")
	t.AddRow("SteMS", "spatio-temporal", "stream match", "on-chip tables", "none", "stream rate")
	t.AddRow("DROPLET", "domain (graph)", "edge fill", "none", "data-structure regions", "dependent fetch")
	t.AddRow("RnR", "record-replay", "software replay", "in-memory seq+div tables, 1KB/core", "regions + phases", "window + pace")
	return t
}

// RecordOverhead reproduces §VII-A.6: the record iteration's slowdown.
func (s *Suite) RecordOverhead() *Table {
	t := &Table{
		ID:     "record-overhead",
		Title:  "Record iteration overhead vs baseline iteration (%)",
		Header: []string{"workload", "input", "overhead"},
	}
	var all []float64
	for _, w := range apps.Workloads {
		for _, in := range apps.InputsFor(w) {
			base := s.Baseline(w, in)
			r := s.Run(w, in, sim.PFRnR, Variant{})
			ov := r.RecordOverheadPct(base)
			all = append(all, ov)
			t.AddRow(w, in, pct(ov))
		}
	}
	t.AddRow("MEAN", "", pct(mean(all)))
	t.Note("paper: 1.02%% average, worst case PageRank/urand at 1.75%%")
	return t
}

// HardwareOverhead reproduces §VII-B: the per-core hardware budget.
func (s *Suite) HardwareOverhead() *Table {
	t := &Table{
		ID:     "hw-overhead",
		Title:  "RnR per-core hardware budget",
		Header: []string{"item", "bits", "arch", "saved on switch"},
	}
	b := rnr.Budget()
	for _, it := range b.Items {
		t.AddRow(it.Name, fmt.Sprint(it.Bits), yn(it.Arch), yn(it.Saved))
	}
	t.AddRow("TOTAL", fmt.Sprintf("%d (%.1f B)", b.TotalBits(), b.TotalBytes()), "", "")
	t.AddRow("SAVE/RESTORE", fmt.Sprintf("%.1f B", b.SavedBytes()), "", "")
	t.Note("paper: < 1KB per core total, 86.5 B of save/restore state")
	return t
}

// All runs every experiment in paper order, then the extensions.
func (s *Suite) All() []*Table {
	return []*Table{
		s.Fig1(), s.TableII(), s.TableIII(), s.Fig6(), s.Fig7(), s.Fig8(),
		s.Fig9(), s.Fig10(), s.Fig11(), s.Fig12(), s.Fig13(), s.Fig14(),
		s.TableIV(), s.RecordOverhead(), s.HardwareOverhead(),
		s.CtxSwitch(), s.CoreScaling(), s.DesignChoices(), s.CoRun(),
	}
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
