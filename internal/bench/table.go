// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (§VI-§VII), producing aligned text
// tables that EXPERIMENTS.md and cmd/experiments consume.
package bench

import (
	"fmt"
	"math"
	"strings"
)

// Table is one rendered experiment: a paper artefact id, a caption, a
// header row and data rows. The JSON form is what the serving layer's
// experiment jobs return.
type Table struct {
	ID     string     `json:"id"` // "fig6", "tableII", ...
	Title  string     `json:"title"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends an explanatory footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned monospaced text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", maxInt(4, total-2)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteByte('\n')
	return b.String()
}

// geomean returns the geometric mean of positive values (zeroes skipped).
func geomean(vals []float64) float64 {
	var sum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
