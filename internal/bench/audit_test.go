package bench

import (
	"testing"

	"rnrsim/internal/audit"
	"rnrsim/internal/sim"
)

// differentialKeys is the run matrix the serial-vs-parallel hash test
// covers: a baseline and an RnR run for two workloads, enough to involve
// every component (cores, caches, DRAM, engines) without making the
// test slow.
var differentialKeys = []struct {
	workload, input string
	pf              sim.PrefetcherKind
}{
	{"pagerank", "urand", sim.PFNone},
	{"pagerank", "urand", sim.PFRnR},
	{"hyperanf", "urand", sim.PFNone},
	{"hyperanf", "urand", sim.PFRnR},
}

// hashesOf runs every differential key through the suite and collects
// the run key -> StateHash map.
func hashesOf(t *testing.T, s *Suite) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64, len(differentialKeys))
	for _, k := range differentialKeys {
		r := s.Run(k.workload, k.input, k.pf, Variant{})
		if r == nil {
			t.Fatalf("run %s/%s/%s failed", k.workload, k.input, k.pf)
		}
		if r.StateHash == 0 {
			t.Fatalf("run %s/%s/%s has zero StateHash", k.workload, k.input, k.pf)
		}
		out[RunKey(k.workload, k.input, k.pf, "")] = r.StateHash
	}
	return out
}

// TestStateHashSerialVsParallel is the differential acceptance check:
// a fully serial suite and a Parallelism-8 suite driven through Prewarm
// must produce identical architectural state hashes for every run, not
// just identical table bytes. Singleflight memoisation means the two
// suites must be distinct instances for the comparison to be real.
func TestStateHashSerialVsParallel(t *testing.T) {
	serial := testSuite()
	serial.Parallelism = 1
	serialHashes := hashesOf(t, serial)

	parallel := testSuite()
	parallel.Parallelism = 8
	var plan []PlannedRun
	for _, k := range differentialKeys {
		plan = append(plan, PlannedRun{k.workload, k.input, k.pf, Variant{}})
	}
	if n := parallel.Prewarm(plan); n != len(plan) {
		t.Fatalf("prewarm completed %d of %d runs", n, len(plan))
	}
	parallelHashes := hashesOf(t, parallel) // all cache hits now

	for key, want := range serialHashes {
		if got := parallelHashes[key]; got != want {
			t.Errorf("%s: serial hash %016x != parallel hash %016x", key, want, got)
		}
	}
}

// TestSuiteAuditPropagates pins that setting Suite.Config.Audit turns
// the auditor on for every run the suite simulates, and that an audited
// suite still produces the same results (and hashes) as an unaudited
// one.
func TestSuiteAuditPropagates(t *testing.T) {
	plain := testSuite()
	want := plain.Run("pagerank", "urand", sim.PFRnR, Variant{})

	audited := testSuite()
	audited.Config.Audit = &audit.Config{Interval: 512}
	got := audited.Run("pagerank", "urand", sim.PFRnR, Variant{})
	if got == nil {
		t.Fatal("audited suite run failed")
	}
	if got.StateHash != want.StateHash {
		t.Errorf("audited suite hash %016x != plain %016x", got.StateHash, want.StateHash)
	}
	if got.Cycles != want.Cycles || got.Instructions != want.Instructions {
		t.Errorf("audited suite result diverged: %d/%d cycles, %d/%d instructions",
			got.Cycles, want.Cycles, got.Instructions, want.Instructions)
	}
}
