package bench

import (
	"fmt"
	"strings"
	"testing"

	"rnrsim/internal/apps"
	"rnrsim/internal/sim"
)

func testSuite() *Suite {
	s := NewSuite(apps.ScaleTest)
	s.Config = sim.Test()
	return s
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		ID:     "t1",
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1.00")
	tb.AddRow("beta-longer", "2.50")
	tb.Note("a note with %d parts", 2)

	text := tb.Format()
	for _, want := range []string{"t1", "demo", "alpha", "beta-longer", "2.50", "note with 2 parts"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q in:\n%s", want, text)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| name | value |") || !strings.Contains(md, "| alpha | 1.00 |") {
		t.Errorf("Markdown() malformed:\n%s", md)
	}
	if !strings.Contains(md, "### t1") {
		t.Errorf("Markdown() missing heading:\n%s", md)
	}
}

func TestGeomeanAndMean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Errorf("geomean(2,8) = %f", g)
	}
	if g := geomean([]float64{0, 4}); g != 4 { // zeroes skipped
		t.Errorf("geomean(0,4) = %f", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %f", g)
	}
	if m := mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %f", m)
	}
	if m := mean(nil); m != 0 {
		t.Errorf("mean(nil) = %f", m)
	}
}

func TestSuiteMemoisesRuns(t *testing.T) {
	s := testSuite()
	calls := 0
	s.Progress = func(string) { calls++ }
	r1 := s.Baseline("pagerank", "urand")
	r2 := s.Baseline("pagerank", "urand")
	if r1 != r2 {
		t.Error("baseline not memoised")
	}
	if calls != 1 {
		t.Errorf("ran %d simulations for two identical requests", calls)
	}
	// A different variant tag must trigger a fresh run.
	s.Run("pagerank", "urand", sim.PFNone, Variant{Tag: "other"})
	if calls != 2 {
		t.Errorf("variant tag did not trigger a run (calls=%d)", calls)
	}
}

func TestStaticTables(t *testing.T) {
	s := testSuite()
	for _, tb := range []*Table{s.TableII(), s.TableIII(), s.TableIV(), s.HardwareOverhead()} {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", tb.ID)
		}
		if out := tb.Format(); len(out) < 40 {
			t.Errorf("%s: suspiciously short output", tb.ID)
		}
	}
	// Table III must list all eight inputs.
	t3 := s.TableIII()
	if len(t3.Rows) != 8 {
		t.Errorf("tableIII has %d rows, want 8", len(t3.Rows))
	}
	// The hardware budget table must state the <1KB total.
	hw := s.HardwareOverhead()
	found := false
	for _, row := range hw.Rows {
		if row[0] == "TOTAL" {
			found = true
		}
	}
	if !found {
		t.Error("hw-overhead table missing TOTAL row")
	}
}

func TestFig1ShapesRnRBest(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := testSuite()
	tb := s.Fig1()
	if len(tb.Rows) != 6 {
		t.Fatalf("fig1 rows = %d, want 6", len(tb.Rows))
	}
	// RnR (last row) must have the highest accuracy of the line-up.
	parse := func(cell string) float64 {
		var v float64
		if _, err := sscanPct(cell, &v); err != nil {
			t.Fatalf("bad cell %q: %v", cell, err)
		}
		return v
	}
	rnrAcc := parse(tb.Rows[len(tb.Rows)-1][2])
	for _, row := range tb.Rows[:len(tb.Rows)-1] {
		if acc := parse(row[2]); acc >= rnrAcc {
			t.Errorf("%s accuracy %.1f%% >= RnR %.1f%%", row[0], acc, rnrAcc)
		}
	}
	if rnrAcc < 80 {
		t.Errorf("RnR accuracy %.1f%%, want > 80%%", rnrAcc)
	}
}

func TestFig13StorageOverheads(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := testSuite()
	tb := s.Fig13()
	if len(tb.Rows) == 0 {
		t.Fatal("fig13 empty")
	}
	// Every per-input row must report a positive overhead.
	for _, row := range tb.Rows {
		if row[1] == "MEAN" {
			continue
		}
		var v float64
		if _, err := sscanPct(row[5], &v); err != nil {
			t.Fatalf("bad overhead cell %q", row[5])
		}
		if v <= 0 || v > 100 {
			t.Errorf("%s/%s overhead %.2f%% out of plausible range", row[0], row[1], v)
		}
	}
}

func TestRecordOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := testSuite()
	tb := s.RecordOverhead()
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "MEAN" {
		t.Fatalf("last row %v, want MEAN", last)
	}
	var v float64
	if _, err := sscanPct(last[2], &v); err != nil {
		t.Fatal(err)
	}
	// The paper reports ~1%; the scaled substrate pays more for metadata
	// writes, but recording must stay a modest one-iteration cost.
	if v > 25 {
		t.Errorf("mean record overhead %.1f%%, want < 25%%", v)
	}
}

// sscanPct parses "12.3%" into v.
func sscanPct(cell string, v *float64) (int, error) {
	return fmt.Sscanf(cell, "%f%%", v)
}
