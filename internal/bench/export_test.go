package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"rnrsim/internal/apps"
	"rnrsim/internal/sim"
)

// TestSuiteExportEnvelope asserts every suite-level JSON dump carries
// the export envelope (schema_version + RFC 3339 generated_at) at the
// top, and that each embedded run export is stamped too.
func TestSuiteExportEnvelope(t *testing.T) {
	s := NewSuite(apps.ScaleTest)
	s.Run("pagerank", "urand", sim.PFNone, Variant{})

	exp := s.Export()
	if exp.SchemaVersion != sim.ExportSchemaVersion {
		t.Errorf("SchemaVersion = %q, want %q", exp.SchemaVersion, sim.ExportSchemaVersion)
	}
	if _, err := time.Parse(time.RFC3339, exp.GeneratedAt); err != nil {
		t.Errorf("GeneratedAt %q is not RFC 3339: %v", exp.GeneratedAt, err)
	}
	if len(exp.Results) != 1 {
		t.Fatalf("Results = %d, want 1", len(exp.Results))
	}
	if exp.Results[0].SchemaVersion != sim.ExportSchemaVersion {
		t.Errorf("run export SchemaVersion = %q, want %q",
			exp.Results[0].SchemaVersion, sim.ExportSchemaVersion)
	}

	var buf bytes.Buffer
	if err := s.WriteResultsJSON(&buf); err != nil {
		t.Fatalf("WriteResultsJSON: %v", err)
	}
	var doc struct {
		SchemaVersion string            `json:"schema_version"`
		GeneratedAt   string            `json:"generated_at"`
		Results       []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("results JSON does not parse: %v", err)
	}
	if doc.SchemaVersion != sim.ExportSchemaVersion || len(doc.Results) != 1 {
		t.Errorf("results doc = {schema %q, %d results}, want {%q, 1}",
			doc.SchemaVersion, len(doc.Results), sim.ExportSchemaVersion)
	}
	// The envelope must lead the document.
	if !bytes.HasPrefix(buf.Bytes(), []byte("{\n  \"schema_version\": ")) {
		t.Errorf("results JSON does not start with the envelope: %.80s", buf.String())
	}
}
