package bench

import (
	"fmt"

	"rnrsim/internal/apps"
	"rnrsim/internal/graph"
	"rnrsim/internal/rnr"
	"rnrsim/internal/sim"
)

// The experiments in this file go beyond the paper's figures, covering
// claims the paper makes in prose: §IV-C (context-switch resilience) and
// §V-E (multicore scalability).

// ctxSwitchPrefetchers is the ctx-switch line-up, shared with the planner.
var ctxSwitchPrefetchers = []sim.PrefetcherKind{
	sim.PFGHB, sim.PFMISB, sim.PFBingo, sim.PFRnR,
}

// CtxSwitchVariant enables the §IV-C periodic-descheduling injection.
func CtxSwitchVariant() Variant {
	sw := sim.CtxSwitchConfig{Period: 150_000, Duration: 10_000}
	return Variant{Tag: "ctxsw", Mutate: func(c *sim.Config) { c.CtxSwitch = sw }}
}

// CtxSwitch measures §IV-C: under periodic OS context switches, RnR
// resumes from its in-memory metadata while conventional prefetchers
// retrain from scratch.
func (s *Suite) CtxSwitch() *Table {
	t := &Table{
		ID:    "ctx-switch",
		Title: "Context-switch resilience (PageRank/urand, periodic descheduling)",
		Header: []string{"prefetcher", "no-switch speedup", "switching speedup",
			"accuracy kept"},
	}
	const w, in = "pagerank", "urand"

	base := s.Baseline(w, in)
	baseSw := s.Run(w, in, sim.PFNone, CtxSwitchVariant())

	for _, pf := range ctxSwitchPrefetchers {
		plain := s.Run(w, in, pf, Variant{})
		switched := s.Run(w, in, pf, CtxSwitchVariant())
		t.AddRow(string(pf),
			f2(plain.ComposedSpeedup(base, s.ComposeIters)),
			f2(switched.ComposedSpeedup(baseSw, s.ComposeIters)),
			pct(switched.Accuracy()*100))
	}
	t.Note("paper §IV-C: RnR needs no retraining — 86.5 B of state is " +
		"saved/restored and the metadata survives in process memory")
	return t
}

// CoreScaling measures §V-E: hardware and metadata overhead growth with
// core count, and whether the speedup survives partitioned execution.
func (s *Suite) CoreScaling() *Table {
	t := &Table{
		ID:    "core-scaling",
		Title: "Multicore scalability (PageRank/amazon)",
		Header: []string{"cores", "speedup", "metadata KB total", "metadata % of input",
			"HW bytes total"},
	}
	budget := rnr.Budget().TotalBytes()
	for _, cores := range []int{1, 2, 4, 8} {
		g := s.scalingGraph()
		app := apps.PageRank(g, "amazon", apps.PageRankConfig{Cores: cores, Iterations: 5})
		cfg := s.Config
		cfg.Cores = cores
		cfg.Prefetcher = sim.PFNone
		base, err := sim.Run(cfg, app)
		if err != nil {
			panic(err)
		}
		cfg.Prefetcher = sim.PFRnR
		r, err := sim.Run(cfg, app)
		if err != nil {
			panic(err)
		}
		t.AddRow(fmt.Sprint(cores),
			f2(r.ComposedSpeedup(base, s.ComposeIters)),
			f1(float64(r.RnR.MetadataBytes())/1024),
			pct(r.StorageOverheadPct()),
			fmt.Sprintf("%.0f", budget*float64(cores)))
	}
	t.Note("paper §V-E: per-core state grows linearly (trivially small); " +
		"partitioning keeps the per-core metadata roughly constant, so the " +
		"total tracks the miss count, not the core count")
	return t
}

// scalingGraph returns the shared input of the core-scaling sweep,
// memoised so every core count records the same graph.
func (s *Suite) scalingGraph() *graph.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.scaleG == nil {
		s.scaleG = apps.GraphInputs(s.Scale)["amazon"]
	}
	return s.scaleG
}

// RecordAllVariant enables the naive every-access recording §III rejects.
func RecordAllVariant() Variant {
	return Variant{
		Tag:    "recordall",
		Mutate: func(c *sim.Config) { c.RnRRecordAll = true },
	}
}

// LLCDestVariant redirects replay prefetches to the shared LLC (§III).
func LLCDestVariant() Variant {
	return Variant{
		Tag:    "llcdest",
		Mutate: func(c *sim.Config) { c.RnRPrefetchToLLC = true },
	}
}

// DesignChoices measures the §III alternatives the paper rejects: naive
// every-access recording (vs L2-miss recording) and prefetching into the
// shared LLC (vs the private L2).
func (s *Suite) DesignChoices() *Table {
	t := &Table{
		ID:    "design-choices",
		Title: "§III design-choice ablation (PageRank/urand)",
		Header: []string{"variant", "speedup", "accuracy", "metadata KB",
			"storage overhead"},
	}
	const w, in = "pagerank", "urand"
	base := s.Baseline(w, in)
	row := func(name string, r *sim.Result) {
		t.AddRow(name,
			f2(r.ComposedSpeedup(base, s.ComposeIters)),
			f2(r.Accuracy()),
			f1(float64(r.RnR.MetadataBytes())/1024),
			pct(r.StorageOverheadPct()))
	}
	row("L2-miss record, L2 dest (paper)", s.Run(w, in, sim.PFRnR, Variant{}))
	row("record every access", s.Run(w, in, sim.PFRnR, RecordAllVariant()))
	row("prefetch into LLC", s.Run(w, in, sim.PFRnR, LLCDestVariant()))
	t.Note("paper §III: recording every access wastes storage and bandwidth " +
		"(locality-filtered misses suffice); the L2 destination avoids the " +
		"latency left on the table by an LLC destination")
	return t
}
