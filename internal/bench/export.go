package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"rnrsim/internal/sim"
)

// RunExport pairs a memoised run key ("workload/input/prefetcher/tag")
// with its machine-readable result, flattened into one JSON object.
type RunExport struct {
	Key string `json:"key"`
	sim.ResultJSON
}

// Exports returns every result the suite has simulated so far, sorted by
// key, as JSON-ready records. In-flight runs are waited for; failed runs
// are skipped.
func (s *Suite) Exports() []RunExport {
	s.mu.Lock()
	keys := make([]string, 0, len(s.results))
	calls := make([]*runCall, 0, len(s.results))
	for k := range s.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		calls = append(calls, s.results[k])
	}
	s.mu.Unlock()
	out := make([]RunExport, 0, len(keys))
	for i, c := range calls {
		<-c.done
		if c.err != nil || c.res == nil {
			continue
		}
		out = append(out, RunExport{Key: keys[i], ResultJSON: c.res.Export()})
	}
	return out
}

// WriteResultsJSON writes every memoised result as one indented JSON
// array — the machine-readable companion to the text tables, so bench
// trajectories can be generated without parsing the table output.
func (s *Suite) WriteResultsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Exports())
}

// WriteResultsFile writes the JSON results next to the text tables.
func (s *Suite) WriteResultsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := s.WriteResultsJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return f.Close()
}
