package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"rnrsim/internal/sim"
)

// RunExport pairs a memoised run key ("workload/input/prefetcher/tag")
// with its machine-readable result, flattened into one JSON object.
// The embedded ResultJSON carries the export envelope
// (schema_version/generated_at), so each record is self-describing even
// when extracted from the surrounding SuiteExport.
type RunExport struct {
	Key string `json:"key"`
	sim.ResultJSON
}

// SuiteExport is the machine-readable dump of every result a suite has
// simulated, wrapped in the export envelope so cached artefacts remain
// self-describing.
type SuiteExport struct {
	SchemaVersion string      `json:"schema_version"`
	GeneratedAt   string      `json:"generated_at"`
	Results       []RunExport `json:"results"`
}

// Export wraps Exports in the stamped envelope.
func (s *Suite) Export() SuiteExport {
	schema, generated := sim.Stamp()
	return SuiteExport{
		SchemaVersion: schema,
		GeneratedAt:   generated,
		Results:       s.Exports(),
	}
}

// Exports returns every result the suite has simulated so far, sorted by
// key, as JSON-ready records. In-flight runs are waited for; failed runs
// are skipped.
func (s *Suite) Exports() []RunExport {
	s.mu.Lock()
	keys := make([]string, 0, len(s.results))
	calls := make([]*runCall, 0, len(s.results))
	for k := range s.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		calls = append(calls, s.results[k])
	}
	s.mu.Unlock()
	out := make([]RunExport, 0, len(keys))
	for i, c := range calls {
		<-c.done
		if c.err != nil || c.res == nil {
			continue
		}
		out = append(out, RunExport{Key: keys[i], ResultJSON: c.res.Export()})
	}
	return out
}

// WriteResultsJSON writes every memoised result as one indented JSON
// envelope ({schema_version, generated_at, results: [...]}) — the
// machine-readable companion to the text tables, so bench trajectories
// can be generated without parsing the table output.
func (s *Suite) WriteResultsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Export())
}

// WriteResultsFile writes the JSON results next to the text tables.
func (s *Suite) WriteResultsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := s.WriteResultsJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return f.Close()
}
