// Run planning: each experiment declares, ahead of execution, the exact
// set of (workload, input, prefetcher, variant) simulations its table
// needs. Prewarm fans a plan out over a bounded worker pool (one
// goroutine per in-flight simulation, at most Suite.Parallelism); the
// singleflight memoisation in Suite.Run guarantees shared keys (the
// baselines feed most figures) are simulated exactly once. Table
// assembly afterwards is serial and entirely cache hits, so the rendered
// tables are byte-identical to a serial run — the plan only changes
// *when* runs happen, never which results feed which cells.
//
// The planner-completeness tests in plan_test.go assert, for every
// experiment id, that the planned key set equals the keys the runner
// actually requests during assembly, so the two enumerations cannot
// drift apart silently.
package bench

import (
	"context"
	"sort"
	"sync"

	"rnrsim/internal/apps"
	"rnrsim/internal/rnr"
	"rnrsim/internal/sim"
)

// PlannedRun is one simulation an experiment needs.
type PlannedRun struct {
	Workload, Input string
	PF              sim.PrefetcherKind
	Variant         Variant
}

// Key returns the memoisation key the run resolves to.
func (p PlannedRun) Key() string {
	return runKey(p.Workload, p.Input, p.PF, p.Variant.Tag)
}

// ExperimentIDs lists every experiment in presentation order (the order
// cmd/experiments emits them in).
var ExperimentIDs = []string{
	"tableII", "tableIII", "fig1", "fig6", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "fig13", "fig14", "tableIV",
	"record-overhead", "hw-overhead", "ctx-switch", "core-scaling",
	"design-choices", "corun",
}

// experimentTitles names each experiment for discovery listings (the
// serving layer's GET /v1/experiments) without having to run anything.
var experimentTitles = map[string]string{
	"tableII":         "Baseline configuration (paper values, scaled capacities in use)",
	"tableIII":        "Workload inputs (synthetic stand-ins, scaled)",
	"fig1":            "Prefetcher coverage and accuracy, PageRank on amazon",
	"fig6":            "Speedup over no-prefetching baseline",
	"fig7":            "L2 demand MPKI",
	"fig8":            "Prefetch coverage",
	"fig9":            "Prefetch accuracy",
	"fig10":           "Replay timing control ablation: speedup over baseline (100 iters)",
	"fig11":           "RnR prefetch timeliness (fractions of issued prefetches)",
	"fig12":           "DRAM traffic relative to baseline",
	"fig13":           "RnR metadata storage overhead (% of input size)",
	"fig14":           "Window size sweep: geomean speedup and storage overhead",
	"tableIV":         "Design comparison with the most related prefetchers",
	"record-overhead": "Record iteration overhead vs baseline iteration (%)",
	"hw-overhead":     "RnR per-core hardware budget",
	"ctx-switch":      "Context-switch resilience (PageRank/urand, periodic descheduling)",
	"core-scaling":    "Multicore scalability (PageRank/amazon)",
	"design-choices":  "§III design-choice ablation (PageRank/urand)",
	"corun":           "Co-run interference: PageRank + spCG on a 2-core coherent LLC",
}

// ExperimentTitle returns a human-readable title for an experiment id
// ("" for unknown ids).
func ExperimentTitle(id string) string { return experimentTitles[id] }

// Runner returns the table runner for an experiment id.
func (s *Suite) Runner(id string) (func() *Table, bool) {
	switch id {
	case "fig1":
		return s.Fig1, true
	case "tableII":
		return s.TableII, true
	case "tableIII":
		return s.TableIII, true
	case "fig6":
		return s.Fig6, true
	case "fig7":
		return s.Fig7, true
	case "fig8":
		return s.Fig8, true
	case "fig9":
		return s.Fig9, true
	case "fig10":
		return s.Fig10, true
	case "fig11":
		return s.Fig11, true
	case "fig12":
		return s.Fig12, true
	case "fig13":
		return s.Fig13, true
	case "fig14":
		return s.Fig14, true
	case "tableIV":
		return s.TableIV, true
	case "record-overhead":
		return s.RecordOverhead, true
	case "hw-overhead":
		return s.HardwareOverhead, true
	case "ctx-switch":
		return s.CtxSwitch, true
	case "core-scaling":
		return s.CoreScaling, true
	case "design-choices":
		return s.DesignChoices, true
	case "corun":
		return s.CoRun, true
	}
	return nil, false
}

// Plan enumerates the runs the given experiments need, deduplicated by
// key, in deterministic first-seen order. Unknown ids plan nothing
// (Runner reports them; the CLI validates before planning).
func (s *Suite) Plan(ids ...string) []PlannedRun {
	seen := make(map[string]struct{})
	var out []PlannedRun
	add := func(runs ...PlannedRun) {
		for _, r := range runs {
			k := r.Key()
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, r)
		}
	}
	for _, id := range ids {
		add(s.planOne(id)...)
	}
	return out
}

// eachInput invokes f over the full workload × input grid in
// presentation order.
func eachInput(f func(w, in string)) {
	for _, w := range apps.Workloads {
		for _, in := range apps.InputsFor(w) {
			f(w, in)
		}
	}
}

// planOne enumerates one experiment's runs, mirroring its runner. The
// static tables (tableII/III/IV, hw-overhead) simulate nothing, and
// core-scaling and corun build bespoke systems (per-core-count machines,
// composed multi-programmed apps) outside the memoised key space, so
// they plan empty.
func (s *Suite) planOne(id string) []PlannedRun {
	var p []PlannedRun
	base := func(w, in string) {
		p = append(p, PlannedRun{w, in, sim.PFNone, Variant{}})
	}
	switch id {
	case "fig1":
		base("pagerank", "amazon")
		for _, pf := range fig1Prefetchers {
			p = append(p, PlannedRun{"pagerank", "amazon", pf, Variant{}})
		}
	case "fig6":
		eachInput(func(w, in string) {
			base(w, in)
			for _, pf := range comparisonSet(w) {
				p = append(p, PlannedRun{w, in, pf, Variant{}})
			}
			p = append(p, PlannedRun{w, in, sim.PFNone, IdealVariant()})
		})
	case "fig7":
		eachInput(func(w, in string) {
			base(w, in)
			p = append(p, PlannedRun{w, in, sim.PFRnR, Variant{}})
			p = append(p, PlannedRun{w, in, sim.PFRnRCombined, Variant{}})
		})
	case "fig8", "fig9", "fig12":
		eachInput(func(w, in string) {
			base(w, in)
			for _, pf := range comparisonSet(w) {
				p = append(p, PlannedRun{w, in, pf, Variant{}})
			}
		})
	case "fig10":
		eachInput(func(w, in string) {
			base(w, in)
			for _, ctl := range timingControls {
				p = append(p, PlannedRun{w, in, sim.PFRnR, ControlVariant(ctl)})
			}
		})
	case "fig11":
		eachInput(func(w, in string) {
			for _, ctl := range timingControls {
				p = append(p, PlannedRun{w, in, sim.PFRnR, ControlVariant(ctl)})
			}
		})
	case "fig13":
		eachInput(func(w, in string) {
			p = append(p, PlannedRun{w, in, sim.PFRnR, Variant{}})
		})
	case "fig14":
		for _, win := range fig14Windows {
			for _, pick := range fig14Picks {
				p = append(p, PlannedRun{pick[0], pick[1], sim.PFNone, Variant{}})
				p = append(p, PlannedRun{pick[0], pick[1], sim.PFRnR, WindowVariant(win)})
			}
		}
	case "record-overhead":
		eachInput(func(w, in string) {
			base(w, in)
			p = append(p, PlannedRun{w, in, sim.PFRnR, Variant{}})
		})
	case "ctx-switch":
		base("pagerank", "urand")
		p = append(p, PlannedRun{"pagerank", "urand", sim.PFNone, CtxSwitchVariant()})
		for _, pf := range ctxSwitchPrefetchers {
			p = append(p, PlannedRun{"pagerank", "urand", pf, Variant{}})
			p = append(p, PlannedRun{"pagerank", "urand", pf, CtxSwitchVariant()})
		}
	case "design-choices":
		base("pagerank", "urand")
		p = append(p, PlannedRun{"pagerank", "urand", sim.PFRnR, Variant{}})
		p = append(p, PlannedRun{"pagerank", "urand", sim.PFRnR, RecordAllVariant()})
		p = append(p, PlannedRun{"pagerank", "urand", sim.PFRnR, LLCDestVariant()})
	}
	return p
}

// fig1Prefetchers is the Fig. 1 line-up, shared between runner and plan.
var fig1Prefetchers = []sim.PrefetcherKind{
	sim.PFNextLine, sim.PFBingo, sim.PFMISB, sim.PFSteMS, sim.PFDroplet, sim.PFRnR,
}

// timingControls is the Fig. 10/11 control sweep, shared with the plan.
var timingControls = []rnr.TimingControl{
	rnr.NoControl, rnr.WindowControl, rnr.WindowPaceControl,
}

// Prewarm executes every planned run over a bounded worker pool
// (Suite.Parallelism wide). It first builds the distinct workloads the
// plan touches — workload construction is itself expensive at
// bench/large scale — then fans out the simulations. Returns the number
// of distinct keys prewarmed. Errors surface as panics exactly as they
// do on the serial path.
func (s *Suite) Prewarm(plan []PlannedRun) int {
	n, err := s.PrewarmContext(context.Background(), plan)
	if err != nil {
		panic(err)
	}
	return n
}

// PrewarmContext is Prewarm with cancellation: the pool stops
// dispatching new runs as soon as ctx ends or a run fails, drains its
// in-flight workers and returns the first error. Cancelled runs leave
// the memoisation cache unpoisoned (see RunContext), so a later
// Prewarm of the same plan starts the missing simulations afresh.
// Panics from experiment-definition bugs propagate exactly as they do
// on the serial path.
func (s *Suite) PrewarmContext(ctx context.Context, plan []PlannedRun) (int, error) {
	if len(plan) == 0 {
		return 0, nil
	}
	workers := s.parallelism()

	// Phase 1: distinct apps in parallel, so the run fan-out below does
	// not serialize on a thundering herd of workers all waiting for the
	// first app build.
	type wi struct{ w, in string }
	appSet := make(map[wi]struct{})
	var appsNeeded []wi
	for _, r := range plan {
		k := wi{r.Workload, r.Input}
		if _, ok := appSet[k]; !ok {
			appSet[k] = struct{}{}
			appsNeeded = append(appsNeeded, k)
		}
	}
	err := runPoolCtx(ctx, workers, len(appsNeeded), func(i int) error {
		_, err := s.AppContext(ctx, appsNeeded[i].w, appsNeeded[i].in)
		return err
	})
	if err != nil {
		return 0, err
	}

	// Phase 2: the simulations. Duplicate keys were removed by Plan;
	// singleflight in Run protects against callers racing Prewarm.
	err = runPoolCtx(ctx, workers, len(plan), func(i int) error {
		r := plan[i]
		_, err := s.RunContext(ctx, r.Workload, r.Input, r.PF, r.Variant)
		return err
	})
	if err != nil {
		return 0, err
	}
	return len(plan), nil
}

// PrewarmIDs plans and prewarms the given experiments; the convenience
// form used by tests and callers that do not need the plan itself.
func (s *Suite) PrewarmIDs(ids ...string) int {
	return s.Prewarm(s.Plan(ids...))
}

// runPool invokes f(0..n-1) over at most `workers` goroutines. Panics in
// workers are captured and re-raised on the caller's goroutine after the
// pool drains, preserving the serial path's panic semantics.
func runPool(workers, n int, f func(i int)) {
	_ = runPoolCtx(context.Background(), workers, n, func(i int) error {
		f(i)
		return nil
	})
}

// runPoolCtx invokes f(0..n-1) over at most `workers` goroutines,
// stopping dispatch at the first error or when ctx ends (in-flight
// invocations drain before it returns). The first error wins; if
// dispatch was aborted by ctx with no worker error, the ctx error is
// returned. Panics in workers are captured and re-raised on the
// caller's goroutine after the pool drains.
func runPoolCtx(ctx context.Context, workers, n int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		next     = make(chan int)
		mu       sync.Mutex
		pans     []any
		firstErr error
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							pans = append(pans, r)
							mu.Unlock()
						}
					}()
					if err := f(i); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
				}()
			}
		}()
	}
	aborted := false
dispatch:
	for i := 0; i < n; i++ {
		if failed() {
			aborted = true
			break dispatch
		}
		select {
		case next <- i:
		case <-ctx.Done():
			aborted = true
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if len(pans) > 0 {
		panic(pans[0])
	}
	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	if aborted {
		return ctx.Err()
	}
	return nil
}

// PlanKeys returns the sorted distinct key set of a plan (test helper
// and progress accounting).
func PlanKeys(plan []PlannedRun) []string {
	keys := make([]string, 0, len(plan))
	for _, r := range plan {
		keys = append(keys, r.Key())
	}
	sort.Strings(keys)
	return keys
}
