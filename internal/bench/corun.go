package bench

import (
	"fmt"

	"rnrsim/internal/multicore"
	"rnrsim/internal/sim"
)

// The co-run experiment: the multi-programmed axis the multicore
// subsystem unlocks. PageRank and spCG share a 2-core machine — one
// barrier group per job, disjoint address slices, MESI-lite coherence in
// front of a 2-bank LLC — under four prefetch configurations: none,
// per-core RnR, the Pickle-style cooperative cross-core LLC prefetcher,
// and both together. Each job's per-core metrics are compared against
// its own solo run on the 1-core build of the same machine, so the
// slowdown column isolates what LLC sharing (and the prefetchers'
// response to it) costs each program.
//
// Like core-scaling, the runs are bespoke (composed apps and per-core
// prefetch assignments live outside the workload/input/prefetcher/tag
// key space), so the experiment plans empty and simulates serially at
// assembly time; the table is therefore byte-identical no matter the
// prewarm parallelism, which TestCoRunExperimentDeterministic pins.

// coRunJobs is the composed workload pair, shared with the test.
var coRunJobs = []multicore.JobSpec{
	{Workload: "pagerank", Input: "urand"},
	{Workload: "spcg", Input: "bbmat"},
}

// coRunVariant is one prefetch configuration of the co-run grid.
type coRunVariant struct {
	name string
	pf   sim.PrefetcherKind // per-core (private L2) prefetcher
	xc   bool               // attach the cross-core LLC prefetcher
}

var coRunVariants = []coRunVariant{
	{"none", sim.PFNone, false},
	{"rnr", sim.PFRnR, false},
	{"crosscore", sim.PFNone, true},
	{"rnr+crosscore", sim.PFRnR, true},
}

// coRunMachine is the multicore machine of the experiment: the suite's
// configured machine resized to the job count, with the coherence
// directory and a 2-bank LLC attached. The solo reference runs use the
// same machine at cores == 1 so the only variable is the co-scheduling.
func (s *Suite) coRunMachine(cores int, v coRunVariant) sim.Config {
	cfg := s.Config
	cfg.Cores = cores
	cfg.Prefetcher = v.pf
	cfg.Coherence = true
	cfg.LLCBanks = 2
	cfg.CrossCore = v.xc
	cfg.Name = fmt.Sprintf("corun%d/%s", cores, v.name)
	return cfg
}

// coRunSim builds and runs one bespoke co-run simulation.
func (s *Suite) coRunSim(jobs []multicore.JobSpec, v coRunVariant) *sim.Result {
	app, err := multicore.Compose(s.Scale, jobs)
	if err != nil {
		panic(err) // experiment-definition bug: the job list is static
	}
	cfg := s.coRunMachine(len(jobs), v)
	r, err := sim.Run(cfg, app)
	if err != nil {
		panic(err)
	}
	return r
}

// jobFinish returns the cycle at which barrier group g's last recorded
// iteration opened — job g's finish line in a co-run, where Result.
// Cycles spans whichever job ran longest. Falls back to the whole-run
// cycle count when the group recorded no iteration ends.
func jobFinish(r *sim.Result, g int) uint64 {
	ends := r.IterEnd
	if len(r.GroupIterEnd) > g {
		ends = r.GroupIterEnd[g]
	}
	for i := len(ends) - 1; i >= 0; i-- {
		if ends[i] != 0 {
			return ends[i]
		}
	}
	return r.Cycles
}

// CoRun runs the multi-programmed co-run experiment (see the package
// comment above): per-core accuracy, coverage and slowdown versus each
// job's solo run, across the four prefetch configurations.
func (s *Suite) CoRun() *Table {
	t := &Table{
		ID:    "corun",
		Title: "Co-run interference: PageRank + spCG sharing a 2-core coherent LLC",
		Header: []string{"variant", "core", "job", "accuracy", "coverage",
			"slowdown vs solo", "xcore issued"},
	}

	// Solo references: each job alone on the 1-core build of the same
	// machine, once per variant (the prefetch configuration changes the
	// solo runtime too) plus the prefetch-free baseline for coverage
	// denominators.
	type soloKey struct {
		job     int
		variant string
	}
	solos := make(map[soloKey]*sim.Result)
	for k := range coRunJobs {
		for _, v := range coRunVariants {
			solos[soloKey{k, v.name}] = s.coRunSim(coRunJobs[k:k+1], v)
		}
	}

	for _, v := range coRunVariants {
		co := s.coRunSim(coRunJobs, v)
		for k, job := range coRunJobs {
			solo := solos[soloKey{k, v.name}]
			soloBase := solos[soloKey{k, "none"}]
			l2 := co.CoreL2[k]
			acc := 0.0
			if l2.PrefetchFillsDone > 0 {
				acc = float64(l2.PrefetchUseful+l2.PrefetchLate) / float64(l2.PrefetchFillsDone)
				if acc > 1 {
					acc = 1
				}
			}
			cov := 0.0
			if base := soloBase.L2.DemandMisses; base > 0 {
				cov = float64(l2.PrefetchUseful+l2.PrefetchLate) / float64(base)
				if cov > 1 {
					cov = 1
				}
			}
			slow := 0.0
			if sf := jobFinish(solo, 0); sf > 0 {
				slow = float64(jobFinish(co, k)) / float64(sf)
			}
			xissued := "-"
			if co.CrossCore != nil {
				xissued = fmt.Sprint(co.CrossCore.Issued)
			}
			t.AddRow(v.name, fmt.Sprint(k), job.String(),
				f2(acc), f2(cov), f2(slow), xissued)
		}
	}
	t.Note("solo reference: the same job, machine and prefetch configuration " +
		"on one core with the LLC to itself; slowdown > 1 is the cost of " +
		"sharing. Accuracy/coverage are per-core private-L2 metrics, so the " +
		"cross-core LLC prefetcher shows up in slowdown and the issued column")
	return t
}
