package bench

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"rnrsim/internal/sim"
)

// resetRequested clears the requested-key log (test hook: isolates the
// keys one table assembly requests from the keys Prewarm requested).
func (s *Suite) resetRequested() {
	s.mu.Lock()
	s.requested = make(map[string]struct{})
	s.mu.Unlock()
}

// TestRunSingleflightRace hammers one key from 16 goroutines and asserts
// exactly one fresh simulation happened and every caller got the same
// memoised result. Run under -race this is the regression test for the
// check-then-act race the singleflight rewrite fixed.
func TestRunSingleflightRace(t *testing.T) {
	s := testSuite()
	var fresh atomic.Int64
	s.Progress = func(string) { fresh.Add(1) }

	const callers = 16
	results := make([]*sim.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = s.Run("pagerank", "urand", sim.PFNextLine, Variant{})
		}(i)
	}
	wg.Wait()

	if got := fresh.Load(); got != 1 {
		t.Fatalf("16 concurrent callers triggered %d fresh simulations, want exactly 1", got)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different *Result than caller 0: memoisation broken", i)
		}
	}
}

// TestAppSingleflightRace is the workload-construction analogue: 16
// goroutines asking for the same app share exactly one Build.
func TestAppSingleflightRace(t *testing.T) {
	s := testSuite()
	const callers = 16
	apps := make([]any, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			apps[i] = s.App("spcg", "bbmat")
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if apps[i] != apps[0] {
			t.Fatalf("caller %d got a different *App than caller 0", i)
		}
	}
}

// TestPlanCoversEveryExperiment asserts every experiment id resolves to
// a runner, and that Plan deduplicates shared keys across experiments.
func TestPlanCoversEveryExperiment(t *testing.T) {
	s := testSuite()
	for _, id := range ExperimentIDs {
		if _, ok := s.Runner(id); !ok {
			t.Errorf("ExperimentIDs lists %q but Runner does not know it", id)
		}
	}
	plan := s.Plan(ExperimentIDs...)
	seen := make(map[string]struct{}, len(plan))
	for _, r := range plan {
		k := r.Key()
		if _, dup := seen[k]; dup {
			t.Errorf("Plan emitted duplicate key %s", k)
		}
		seen[k] = struct{}{}
	}
	// The baselines feed most figures: the dedup must make the combined
	// plan strictly smaller than the sum of per-experiment plans.
	var sum int
	for _, id := range ExperimentIDs {
		sum += len(s.Plan(id))
	}
	if len(plan) >= sum {
		t.Errorf("combined plan has %d runs, per-experiment sum %d: dedup not working", len(plan), sum)
	}
}

// TestPlannerCompleteness verifies, for every experiment, the planner's
// contract: after Prewarm(Plan(id)) the table assembly (a) performs zero
// fresh simulations and (b) requests exactly the planned key set —
// neither a cold miss nor an over-planned run the table never uses.
func TestPlannerCompleteness(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full suite")
	}
	s := testSuite()
	s.Parallelism = 4
	var fresh atomic.Int64
	s.Progress = func(string) { fresh.Add(1) }

	for _, id := range ExperimentIDs {
		plan := s.Plan(id)
		s.Prewarm(plan)

		before := fresh.Load()
		s.resetRequested()
		run, ok := s.Runner(id)
		if !ok {
			t.Fatalf("no runner for %q", id)
		}
		run()

		if d := fresh.Load() - before; d != 0 {
			t.Errorf("%s: assembly performed %d fresh simulations after Prewarm; want 0", id, d)
		}
		requested := s.RequestedKeys()
		planned := make(map[string]struct{}, len(plan))
		for _, k := range PlanKeys(plan) {
			planned[k] = struct{}{}
		}
		for k := range requested {
			if _, ok := planned[k]; !ok {
				t.Errorf("%s: assembly requested unplanned key %s", id, k)
			}
		}
		for k := range planned {
			if _, ok := requested[k]; !ok {
				t.Errorf("%s: planned key %s never requested by assembly", id, k)
			}
		}
	}
}

// TestPrewarmDeterminism asserts the parallel engine's headline
// guarantee: tables assembled after an 8-wide Prewarm are byte-identical
// to a fully serial run on a fresh suite.
func TestPrewarmDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates fig1 and fig7 twice")
	}
	ids := []string{"fig1", "fig7"}

	render := func(s *Suite) []byte {
		var buf bytes.Buffer
		for _, id := range ids {
			run, _ := s.Runner(id)
			buf.WriteString(run().Format())
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}

	serial := testSuite()
	serial.Parallelism = 1
	want := render(serial)

	par := testSuite()
	par.Parallelism = 8
	var fresh atomic.Int64
	par.Progress = func(string) { fresh.Add(1) }
	plan := par.Plan(ids...)
	par.Prewarm(plan)
	warm := fresh.Load()
	got := render(par)

	if !bytes.Equal(want, got) {
		t.Fatalf("parallel assembly diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
	if int(warm) != len(plan) {
		t.Errorf("Prewarm performed %d fresh runs for a %d-run plan", warm, len(plan))
	}
	if d := fresh.Load() - warm; d != 0 {
		t.Errorf("assembly after Prewarm performed %d fresh runs; want 0", d)
	}
}

// TestRunPoolPanicPropagates asserts worker panics surface on the
// caller's goroutine after the pool drains, matching serial semantics.
func TestRunPoolPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("runPool swallowed the worker panic")
		}
	}()
	runPool(4, 8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

// TestRunPoolCoverage asserts every index runs exactly once at every
// pool width, including the serial and over-provisioned cases.
func TestRunPoolCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 23
		var counts [n]atomic.Int64
		runPool(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}
