package bench

import (
	"bytes"
	"testing"
)

// TestCoRunTableShape runs the co-run experiment once and checks the
// table's structure: one row per (variant, core), solo-normalised
// slowdowns present, and the cross-core issue column populated exactly
// for the variants that attach the cross-core prefetcher.
func TestCoRunTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	s := testSuite()
	tb := s.CoRun()
	want := len(coRunVariants) * len(coRunJobs)
	if len(tb.Rows) != want {
		t.Fatalf("corun rows = %d, want %d", len(tb.Rows), want)
	}
	for i, row := range tb.Rows {
		v := coRunVariants[i/len(coRunJobs)]
		if row[0] != v.name {
			t.Errorf("row %d variant = %q, want %q", i, row[0], v.name)
		}
		if row[5] == "0.00" {
			t.Errorf("row %d (%s core %s) has zero slowdown: solo finish line missing", i, row[0], row[1])
		}
		hasIssued := row[6] != "-"
		if hasIssued != v.xc {
			t.Errorf("row %d (%s): xcore issued = %q, cross-core attached = %v", i, row[0], row[6], v.xc)
		}
	}
}

// TestCoRunExperimentDeterministic pins the served/direct and -j
// guarantee for the co-run experiment: the table is byte-identical on a
// serial suite and an 8-wide one after a (deliberately empty) Prewarm —
// the experiment's runs are bespoke and never touch the parallel pool,
// so determinism is structural, and this test keeps it that way.
func TestCoRunExperimentDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the co-run grid twice")
	}
	if plan := testSuite().Plan("corun"); len(plan) != 0 {
		t.Fatalf("corun planned %d memoised runs; bespoke experiments must plan empty", len(plan))
	}

	serial := testSuite()
	serial.Parallelism = 1
	want := []byte(serial.CoRun().Format())

	par := testSuite()
	par.Parallelism = 8
	par.Prewarm(par.Plan("corun"))
	got := []byte(par.CoRun().Format())

	if !bytes.Equal(want, got) {
		t.Fatalf("corun diverged across Parallelism:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}
}
