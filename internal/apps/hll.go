package apps

import "math"

// HyperLogLog counters for HyperANF [13]: each vertex carries a small HLL
// sketch of the set of vertices within distance t; one HyperANF iteration
// unions each vertex's sketch with its neighbours' sketches, so after t
// iterations the sketch estimates |ball(v, t)| — the neighbourhood
// function. This is the real data structure, not a stand-in: the estimates
// are checked in tests against exact BFS ball sizes.

// hllRegisters is the sketch width: 16 registers = 2^4 buckets, the small
// configuration HyperANF uses to keep per-vertex state compact (16 B, so
// four sketches share a cache line).
const (
	hllP         = 4
	hllRegisters = 1 << hllP // 16
)

// HLL is one vertex's sketch.
type HLL [hllRegisters]uint8

// splitmix64 is the hash; good avalanche, stdlib-only.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Add inserts element x.
func (h *HLL) Add(x uint64) {
	v := splitmix64(x)
	bucket := v & (hllRegisters - 1)
	rest := v >> hllP
	rank := uint8(1)
	for rest&1 == 0 && rank < 64-hllP {
		rank++
		rest >>= 1
	}
	if rank > h[bucket] {
		h[bucket] = rank
	}
}

// Union merges other into h and reports whether h changed.
func (h *HLL) Union(other *HLL) bool {
	changed := false
	for i := range h {
		if other[i] > h[i] {
			h[i] = other[i]
			changed = true
		}
	}
	return changed
}

// Estimate returns the cardinality estimate with the standard HLL bias
// corrections (linear counting for small ranges).
func (h *HLL) Estimate() float64 {
	const m = float64(hllRegisters)
	alpha := 0.673 // alpha_16
	var sum float64
	zeros := 0
	for _, r := range h {
		sum += math.Pow(2, -float64(r))
		if r == 0 {
			zeros++
		}
	}
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return e
}
