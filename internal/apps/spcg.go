package apps

import (
	"math/rand"

	"rnrsim/internal/mem"
	"rnrsim/internal/sparse"
	"rnrsim/internal/trace"
)

// SpCGConfig parameterises the spCG workload.
type SpCGConfig struct {
	Cores      int
	Iterations int // CG iterations in the trace (>= 3)
	WindowSize uint64
}

// DefaultSpCG returns the evaluation configuration.
func DefaultSpCG() SpCGConfig {
	return SpCGConfig{Cores: 4, Iterations: 5}
}

// SpCG builds the sparse conjugate-gradient workload (Adept's sparse CG
// [23]): each CG iteration is dominated by SpMV, whose access to the dense
// direction vector p through the column-index array is the irregular RnR
// target. Unlike PageRank, the target vector's *base* never moves — only
// its values change — so the recorded pattern replays without swaps.
func SpCG(m *sparse.Matrix, input string, cfg SpCGConfig) *App {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.Iterations < 3 {
		cfg.Iterations = 3
	}
	n := m.N

	l := newLayout()
	rowptr := l.al.AllocPage("cg.rowptr", uint64(n+1)*8)
	cols := l.al.AllocPage("cg.cols", uint64(m.NNZ())*4)
	vals := l.al.AllocPage("cg.vals", uint64(m.NNZ())*8)
	pvec := l.al.AllocPage("cg.p", uint64(n)*8)
	apvec := l.al.AllocPage("cg.Ap", uint64(n)*8)
	rvec := l.al.AllocPage("cg.r", uint64(n)*8)
	xvec := l.al.AllocPage("cg.x", uint64(n)*8)
	perCore := uint64(m.NNZ())/uint64(cfg.Cores) + uint64(n) + 1024
	seqT, divT := l.metaTables(cfg.Cores, perCore*4, perCore/16*8+4096)

	// Row partitioning: contiguous row blocks balanced by nnz, the usual
	// SPMD decomposition for CSR SpMV.
	rowsOf := partitionRows(m, cfg.Cores)

	app := &App{
		Name: "spcg", Input: input, Cores: cfg.Cores,
		InputBytes: m.InputBytes(),
		Targets:    []mem.Region{pvec},
		EdgeRegion: cols,
		Iterations: cfg.Iterations,
	}
	app.Resolve = func(line mem.Addr) []mem.Addr {
		if !cols.Contains(line) {
			return nil
		}
		first := int(uint64(line-cols.Base) / 4)
		var out []mem.Addr
		var last mem.Addr
		for i := first; i < first+16 && i < int(m.NNZ()); i++ {
			t := mem.LineAddr(pvec.Base + mem.Addr(m.Cols[i])*8)
			if t != last {
				out = append(out, t)
				last = t
			}
		}
		return out
	}

	builders := make([]*trace.Builder, cfg.Cores)
	for c := range builders {
		b := trace.NewBuilder(1 << 16)
		b.Exec(64)
		b.RnRInit(seqT[c], divT[c], cfg.WindowSize)
		b.AddrBaseSet(0, pvec.Base, pvec.Size)
		b.ROIBegin()
		builders[c] = b
	}

	for it := 0; it < cfg.Iterations; it++ {
		for c, b := range builders {
			b.IterBegin(it)
			switch it {
			case 0:
			case 1:
				b.AddrBaseEnable(0)
				b.RecordStart()
			default:
				b.Replay()
			}
			emitSpCGIteration(b, m, rowsOf[c], rowptr, cols, vals, pvec, apvec, rvec, xvec)
			b.IterEnd(it)
		}
	}
	for _, b := range builders {
		b.PrefetchEnd()
		b.RnREnd()
		b.ROIEnd()
		app.Traces = append(app.Traces, b.Records())
	}

	// Real numerics: solve a system and keep the residual as the check.
	rng := rand.New(rand.NewSource(77))
	bvec := make([]float64, n)
	for i := range bvec {
		bvec[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	res, err := sparse.CG(m, x, bvec, 1e-10, 4*n)
	if err != nil {
		// Generators guarantee SPD; a failure here is a bug worth
		// surfacing loudly in any experiment that uses the app.
		panic("apps: spCG solver failed: " + err.Error())
	}
	app.Check = res.Residual
	return app
}

// partitionRows splits rows into contiguous blocks with balanced nnz.
func partitionRows(m *sparse.Matrix, k int) [][]int {
	out := make([][]int, k)
	target := m.NNZ() / int64(k)
	row := 0
	for c := 0; c < k; c++ {
		var got int64
		start := row
		for row < m.N && (got < target || c == k-1) {
			got += m.Offsets[row+1] - m.Offsets[row]
			row++
		}
		rows := make([]int, 0, row-start)
		for v := start; v < row; v++ {
			rows = append(rows, v)
		}
		out[c] = rows
	}
	return out
}

// emitSpCGIteration emits one CG iteration: SpMV(Ap, p) plus the dot
// products and AXPYs on the dense vectors.
func emitSpCGIteration(b *trace.Builder, m *sparse.Matrix, rows []int,
	rowptr, cols, vals, pvec, apvec, rvec, xvec mem.Region) {
	const (
		pcRow = pcSpCG + 0x00
		pcCol = pcSpCG + 0x04
		pcVal = pcSpCG + 0x08
		pcP   = pcSpCG + 0x0c // the irregular gather
		pcAp  = pcSpCG + 0x10
		pcDot = pcSpCG + 0x14
		pcAxp = pcSpCG + 0x18
	)
	// SpMV: Ap = A p.
	for _, i := range rows {
		b.Load(pcRow, rowptr.Base+mem.Addr(i)*8, 8, int32(rowptr.ID))
		b.Load(pcRow, rowptr.Base+mem.Addr(i+1)*8, 8, int32(rowptr.ID))
		lo, hi := m.Offsets[i], m.Offsets[i+1]
		for kk := lo; kk < hi; kk++ {
			c := m.Cols[kk]
			b.Load(pcCol, cols.Base+mem.Addr(kk)*4, 4, int32(cols.ID))
			b.Load(pcVal, vals.Base+mem.Addr(kk)*8, 8, int32(vals.ID))
			// The irregular access: p[cols[kk]].
			b.Load(pcP, pvec.Base+mem.Addr(c)*8, 8, int32(pvec.ID))
			b.Exec(2) // fused multiply-add
		}
		b.Store(pcAp, apvec.Base+mem.Addr(i)*8, 8, int32(apvec.ID))
		b.Exec(1)
	}
	// Dense phase: dot(p, Ap); x += a p; r -= a Ap; dot(r, r); p = r + b p.
	for _, i := range rows {
		b.Load(pcDot, pvec.Base+mem.Addr(i)*8, 8, int32(pvec.ID))
		b.Load(pcDot, apvec.Base+mem.Addr(i)*8, 8, int32(apvec.ID))
		b.Exec(2)
	}
	for _, i := range rows {
		b.Load(pcAxp, rvec.Base+mem.Addr(i)*8, 8, int32(rvec.ID))
		b.Store(pcAxp, xvec.Base+mem.Addr(i)*8, 8, int32(xvec.ID))
		b.Store(pcAxp, rvec.Base+mem.Addr(i)*8, 8, int32(rvec.ID))
		b.Exec(4)
	}
	for _, i := range rows {
		b.Load(pcAxp, rvec.Base+mem.Addr(i)*8, 8, int32(rvec.ID))
		b.Store(pcAxp, pvec.Base+mem.Addr(i)*8, 8, int32(pvec.ID))
		b.Exec(3)
	}
}
