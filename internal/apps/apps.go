// Package apps implements the paper's three workloads — vertex-centric
// PageRank (Ligra-style, Algorithm 1), edge-centric HyperANF (X-Stream
// style, with real HyperLogLog counters) and spCG (conjugate gradient with
// an SpMV kernel) — as *trace-emitting twins*: each app runs the real
// algorithm on real data and simultaneously emits the memory accesses its
// kernel performs on the major arrays, one trace per SPMD worker (§VI).
//
// The emitted traces include the RnR software-interface markers exactly as
// Algorithm 1 places them, so the same trace drives every configuration:
// prefetchers that ignore the markers see the plain program.
package apps

import (
	"rnrsim/internal/mem"
	"rnrsim/internal/prefetch"
	"rnrsim/internal/trace"
)

// App is one workload instance: per-core traces plus the layout metadata
// the domain prefetchers and the evaluation need.
type App struct {
	Name  string // "pagerank", "hyperanf", "spcg"
	Input string // "urand", "amazon", ...
	Cores int

	// Traces holds one record slice per core (SPMD: same program).
	Traces [][]trace.Record

	// InputBytes is the in-memory input footprint, the denominator of the
	// Fig. 13 storage overhead.
	InputBytes uint64

	// Targets are the irregularly-accessed structures RnR is pointed at.
	Targets []mem.Region
	// EdgeRegion is the streamed index/edge array (DROPLET's software
	// hint, IMP's index stream).
	EdgeRegion mem.Region
	// Resolve maps an edge/index line to the data lines it references,
	// standing in for hardware value inspection (see prefetch package).
	Resolve prefetch.IndirectResolver
	// MakeResolver rebuilds Resolve against a new target base address.
	// The simulator calls it when the program re-points boundary slot 0
	// (the p_curr/p_next swap), mirroring how DROPLET's software
	// interface would be re-programmed each iteration. Nil when the
	// target never moves.
	MakeResolver func(base mem.Addr) prefetch.IndirectResolver

	// Iterations is the total kernel iterations in the trace:
	// 1 warm-up + 1 record + (Iterations-2) replays.
	Iterations int

	// Check is an algorithm-specific correctness scalar (PageRank mass,
	// HyperANF neighbourhood estimate, CG residual) for validation.
	Check float64

	// Groups partitions cores into barrier domains for multi-programmed
	// runs: cores in the same group synchronise at iteration boundaries,
	// cores in different groups free-run against each other. Nil means
	// all cores form one SPMD group — the single-program shape every
	// app builder emits, and the only shape before internal/multicore.
	Groups [][]int
}

// Sources returns fresh trace sources over the app's per-core traces.
func (a *App) Sources() []*trace.SliceSource {
	out := make([]*trace.SliceSource, len(a.Traces))
	for i, recs := range a.Traces {
		out[i] = trace.NewSliceSource(recs)
	}
	return out
}

// Records returns the total record count across cores.
func (a *App) Records() int {
	n := 0
	for _, t := range a.Traces {
		n += len(t)
	}
	return n
}

// Instructions returns the total dynamic instruction count across cores.
func (a *App) Instructions() uint64 {
	var n uint64
	for _, recs := range a.Traces {
		for _, r := range recs {
			n += r.Instructions()
		}
	}
	return n
}

// Synthetic PC bases, one block per app so access sites never collide.
const (
	pcPageRank uint64 = 0x4000
	pcHyperANF uint64 = 0x5000
	pcSpCG     uint64 = 0x6000
)

// layout is the shared address-space plan built by each app's master.
type layout struct {
	al *mem.Allocator
}

func newLayout() *layout { return &layout{al: mem.NewAllocator(0x1000_0000)} }

// metaTables allocates per-core RnR metadata (sequence + division tables),
// as RnR.init() does from the heap.
func (l *layout) metaTables(cores int, seqBytes, divBytes uint64) (seq, div []mem.Region) {
	seq = make([]mem.Region, cores)
	div = make([]mem.Region, cores)
	for c := 0; c < cores; c++ {
		seq[c] = l.al.AllocPage("rnr.seq", seqBytes)
		div[c] = l.al.AllocPage("rnr.div", divBytes)
	}
	return seq, div
}
