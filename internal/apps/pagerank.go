package apps

import (
	"rnrsim/internal/graph"
	"rnrsim/internal/mem"
	"rnrsim/internal/prefetch"
	"rnrsim/internal/trace"
)

// PageRankConfig parameterises the PageRank workload.
type PageRankConfig struct {
	Cores      int
	Iterations int     // total kernel iterations in the trace (>= 3)
	Damping    float64 // alpha, 0.85 by default
	WindowSize uint64  // RnR window size; 0 = engine default
}

// DefaultPageRank returns the evaluation configuration: 4 SPMD cores,
// 1 warm-up + 1 record + 3 replay iterations.
func DefaultPageRank() PageRankConfig {
	return PageRankConfig{Cores: 4, Iterations: 5, Damping: 0.85}
}

// PageRank builds the vertex-centric pull PageRank workload of Algorithm 1
// over g: it computes real PageRank values while emitting, per SPMD
// worker, the kernel's memory trace with RnR markers placed exactly as the
// paper's listing places them.
func PageRank(g *graph.Graph, input string, cfg PageRankConfig) *App {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.Iterations < 3 {
		cfg.Iterations = 3
	}
	if cfg.Damping == 0 {
		cfg.Damping = 0.85
	}
	n := g.N

	// Memory layout (master process, §VI).
	l := newLayout()
	offsets := l.al.AllocPage("pr.offsets", uint64(n+1)*8)
	edges := l.al.AllocPage("pr.edges", uint64(g.M())*4)
	pcurr := l.al.AllocPage("pr.pcurr", uint64(n)*8)
	pnext := l.al.AllocPage("pr.pnext", uint64(n)*8)
	_ = l.al.AllocPage("pr.deg", uint64(n)*8) // deg array: normalisation reads fold into pnext sweeps
	// Per-core metadata: capacity for every edge to miss, plus slack.
	perCore := uint64(g.M())/uint64(cfg.Cores) + uint64(n) + 1024
	seqT, divT := l.metaTables(cfg.Cores, perCore*4, perCore/16*8+4096)

	part := graph.PartitionGraph(g, cfg.Cores)

	// Real computation state.
	rank := make([]float64, n)
	next := make([]float64, n)
	outdeg := make([]float64, n)
	for v := 0; v < n; v++ {
		rank[v] = 1 / float64(n)
	}
	// Out-degree of the pull graph: count appearances as a source.
	for _, s := range g.Edges {
		outdeg[s]++
	}
	for v := range outdeg {
		if outdeg[v] == 0 {
			outdeg[v] = 1
		}
	}

	app := &App{
		Name: "pagerank", Input: input, Cores: cfg.Cores,
		InputBytes: g.InputBytes(),
		Targets:    []mem.Region{pcurr, pnext},
		EdgeRegion: edges,
		Iterations: cfg.Iterations,
	}

	// DROPLET/IMP resolver: an edge line holds 16 uint32 sources; their
	// rank values live in the *current* pcurr array. The simulator
	// rebuilds the resolver on each pointer swap via MakeResolver.
	app.Resolve = makeResolver(g, edges, pcurr.Base)
	app.MakeResolver = func(base mem.Addr) prefetch.IndirectResolver {
		return makeResolver(g, edges, base)
	}

	builders := make([]*trace.Builder, cfg.Cores)
	for c := range builders {
		builders[c] = trace.NewBuilder(1 << 16)
	}

	// Program setup, per core (Algorithm 1 lines 1-10).
	bases := [2]mem.Region{pcurr, pnext} // slot 0 = read target, slot 1 = write target
	for c, b := range builders {
		b.Exec(64) // Init(): allocate and zero
		b.RnRInit(seqT[c], divT[c], cfg.WindowSize)
		b.AddrBaseSet(0, bases[0].Base, bases[0].Size)
		b.AddrBaseSet(1, bases[1].Base, bases[1].Size)
		b.ROIBegin()
	}

	parts := make([][]int, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		parts[c] = part.Vertices(c)
	}

	curr, nxt := pcurr, pnext
	for it := 0; it < cfg.Iterations; it++ {
		for c, b := range builders {
			b.IterBegin(it)
			switch it {
			case 0: // warm-up iteration, RnR disabled
			case 1: // first target iteration: record (lines 24-25)
				b.AddrBaseEnable(0)
				b.RecordStart()
			default: // replay iterations (line 31-33 already swapped bases)
				b.Replay()
			}
			emitPageRankIteration(b, g, parts[c], curr, nxt, offsets, edges)
			b.IterEnd(it)
			if it < cfg.Iterations-1 {
				// Swap the bases for the next iteration (Alg. 1 lines
				// 31-33): slot 0 must track the array that will be read.
				b.AddrBaseSet(0, nxt.Base, nxt.Size)
				b.AddrBaseSet(1, curr.Base, curr.Size)
				b.AddrBaseEnable(0)
			}
		}
		// Real computation: one pull iteration + normalisation.
		pullIteration(g, rank, next, outdeg, cfg.Damping)
		rank, next = next, rank
		curr, nxt = nxt, curr
	}
	for c, b := range builders {
		b.PrefetchEnd() // line 35
		b.RnREnd()      // line 36
		b.ROIEnd()
		app.Traces = append(app.Traces, b.Records())
		_ = c
	}

	var mass float64
	for _, r := range rank {
		mass += r
	}
	app.Check = mass
	return app
}

// makeResolver rebuilds the DROPLET resolver against the current base.
func makeResolver(g *graph.Graph, edges mem.Region, base mem.Addr) prefetch.IndirectResolver {
	return func(line mem.Addr) []mem.Addr {
		if !edges.Contains(line) {
			return nil
		}
		first := int(uint64(line-edges.Base) / 4)
		var out []mem.Addr
		var lastLine mem.Addr
		for i := first; i < first+16 && i < len(g.Edges); i++ {
			t := mem.LineAddr(base + mem.Addr(g.Edges[i])*8)
			if t != lastLine {
				out = append(out, t)
				lastLine = t
			}
		}
		return out
	}
}

// pullIteration runs the real numerics: next[v] = (1-a)/n + a*sum(rank[s]/outdeg[s]).
func pullIteration(g *graph.Graph, rank, next, outdeg []float64, damping float64) {
	n := g.N
	base := (1 - damping) / float64(n)
	for v := 0; v < n; v++ {
		var sum float64
		for _, s := range g.Neighbors(v) {
			sum += rank[s] / outdeg[s]
		}
		next[v] = base + damping*sum
	}
}

// emitPageRankIteration emits the kernel's memory accesses for one pull
// iteration over the worker's vertices (PRUpdate of Algorithm 1).
func emitPageRankIteration(b *trace.Builder, g *graph.Graph, vertices []int,
	curr, next, offsets, edges mem.Region) {
	const (
		pcOff   = pcPageRank + 0x00
		pcEdge  = pcPageRank + 0x04
		pcCurr  = pcPageRank + 0x08
		pcNext  = pcPageRank + 0x0c
		pcNorm  = pcPageRank + 0x10
		pcNorm2 = pcPageRank + 0x14
	)
	for _, v := range vertices {
		// Load offsets[v] and offsets[v+1]; sequential 8 B entries.
		b.Load(pcOff, offsets.Base+mem.Addr(v)*8, 8, int32(offsets.ID))
		b.Load(pcOff, offsets.Base+mem.Addr(v+1)*8, 8, int32(offsets.ID))
		b.Exec(2)
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		for k := lo; k < hi; k++ {
			s := g.Edges[k]
			// Load edges[k]: streaming over the 4 B edge array.
			b.Load(pcEdge, edges.Base+mem.Addr(k)*4, 4, int32(edges.ID))
			// Load pcurr[s]: THE irregular access (Alg. 1 line 13).
			b.Load(pcCurr, curr.Base+mem.Addr(s)*8, 8, int32(curr.ID))
			b.Exec(3) // divide by degree, accumulate
		}
		// Store pnext[v]: sequential writes to the local partition.
		b.Store(pcNext, next.Base+mem.Addr(v)*8, 8, int32(next.ID))
		b.Exec(2)
	}
	// PRNormalize (Alg. 1 lines 16-20): sequential sweep over own part.
	for _, v := range vertices {
		b.Load(pcNorm, next.Base+mem.Addr(v)*8, 8, int32(next.ID))
		b.Exec(4)
		b.Store(pcNorm2, next.Base+mem.Addr(v)*8, 8, int32(next.ID))
	}
}
