package apps

import (
	"fmt"

	"rnrsim/internal/graph"
	"rnrsim/internal/sparse"
)

// Scale selects input sizes. The paper simulates 500M-instruction windows
// of full-size SNAP/SuiteSparse inputs on ChampSim; this reproduction
// scales the inputs (and the caches, see sim.ScaledConfig) so the full
// suite runs on a laptop while keeping miss ratios in the same regimes.
type Scale int

const (
	// ScaleTest is for unit tests: seconds for the whole suite.
	ScaleTest Scale = iota
	// ScaleBench is for the experiment harness: the default.
	ScaleBench
	// ScaleLarge stresses bigger footprints (optional deep runs).
	ScaleLarge
)

// GraphInput builds the single named graph input (Table III) at the
// given scale. Building one input instead of the whole Table III map
// matters once workload construction is parallel and memoised per
// (workload, input): Build must not pay for three graphs it discards.
func GraphInput(s Scale, name string) (*graph.Graph, bool) {
	var n, deg int
	switch s {
	case ScaleTest:
		n, deg = 2000, 8
	case ScaleLarge:
		n, deg = 60000, 16
	default:
		n, deg = 16000, 12
	}
	switch name {
	case "urand":
		return graph.Uniform(n, deg, 1001), true
	case "amazon":
		return graph.Community(n*3/4, deg-2, 64, 0.12, 1002), true
	case "com-orkut":
		return graph.PowerLaw(n, deg+8, 1003), true
	case "roadUSA":
		side := isqrt(n)
		return graph.Road(side*2, side, 1004), true
	}
	return nil, false
}

// GraphInputs returns the paper's four graph inputs (Table III) at the
// given scale, in the paper's presentation order.
func GraphInputs(s Scale) map[string]*graph.Graph {
	out := make(map[string]*graph.Graph, len(GraphInputOrder))
	for _, name := range GraphInputOrder {
		g, _ := GraphInput(s, name)
		out[name] = g
	}
	return out
}

// GraphInputOrder is the paper's column order for graph figures.
var GraphInputOrder = []string{"urand", "amazon", "com-orkut", "roadUSA"}

// MatrixInput builds the single named spCG input (Table III) at the
// given scale. The generator parameters are chosen so the SpMV gather
// through the column indices spans far more than the (scaled) private
// caches, as the full-size SuiteSparse matrices span far more than
// 256 KB — otherwise the irregular access the paper targets never
// misses. Like GraphInput, it builds only what is asked for, so a
// parallel Suite memoising one (workload, input) pair pays for exactly
// one matrix.
func MatrixInput(s Scale, name string) (*sparse.Matrix, bool) {
	switch s {
	case ScaleTest:
		switch name {
		case "atmosmodj":
			return sparse.Stencil3D(24, 10, 6), true // z-plane 240 rows ~ 2 KB
		case "bbmat":
			return sparse.Banded(2500, 500, 0.006, 2001), true
		case "nlpkkt80":
			return sparse.BlockStencil(16, 10, 4, 3), true
		case "pdb1HYS":
			return sparse.ProteinBlocks(100, 12, 5, 2002), true
		}
	case ScaleLarge:
		switch name {
		case "atmosmodj":
			return sparse.Stencil3D(96, 72, 10), true
		case "bbmat":
			return sparse.Banded(60000, 6000, 0.0012, 2001), true
		case "nlpkkt80":
			return sparse.BlockStencil(48, 40, 6, 3), true
		case "pdb1HYS":
			return sparse.ProteinBlocks(1200, 24, 8, 2002), true
		}
	default:
		switch name {
		case "atmosmodj":
			// xy-plane 3072 rows = 24 KB > 16 KB L2.
			return sparse.Stencil3D(64, 48, 8), true
		case "bbmat":
			// band half-width 2500 rows = 20 KB span, sparse fill.
			return sparse.Banded(20000, 2500, 0.0025, 2001), true
		case "nlpkkt80":
			// block-coupled stencil, xy stride 1024 cells x 3 = 24 KB.
			return sparse.BlockStencil(32, 32, 4, 3), true
		case "pdb1HYS":
			// dense residue blocks + long-range contacts over 80 KB.
			return sparse.ProteinBlocks(500, 20, 8, 2002), true
		}
	}
	return nil, false
}

// MatrixInputs returns the paper's four spCG inputs (Table III) at the
// given scale, in the paper's presentation order.
func MatrixInputs(s Scale) map[string]*sparse.Matrix {
	out := make(map[string]*sparse.Matrix, len(MatrixInputOrder))
	for _, name := range MatrixInputOrder {
		m, _ := MatrixInput(s, name)
		out[name] = m
	}
	return out
}

// MatrixInputOrder is the paper's column order for spCG figures.
var MatrixInputOrder = []string{"atmosmodj", "bbmat", "nlpkkt80", "pdb1HYS"}

// Build constructs the named workload ("pagerank", "hyperanf", "spcg") on
// the named input at the given scale. It builds only the requested
// input (via GraphInput/MatrixInput), so concurrent Builds memoised per
// (workload, input) never pay for inputs they discard.
func Build(workload, input string, s Scale) (*App, error) {
	return BuildCores(workload, input, s, 0)
}

// BuildCores is Build with an explicit SPMD core count; cores <= 0
// keeps each workload's default partitioning. The multicore composer
// uses cores == 1 to obtain single-core programs it can co-schedule.
func BuildCores(workload, input string, s Scale, cores int) (*App, error) {
	switch workload {
	case "pagerank":
		g, ok := GraphInput(s, input)
		if !ok {
			return nil, fmt.Errorf("apps: unknown graph input %q", input)
		}
		cfg := DefaultPageRank()
		if cores > 0 {
			cfg.Cores = cores
		}
		return PageRank(g, input, cfg), nil
	case "hyperanf":
		g, ok := GraphInput(s, input)
		if !ok {
			return nil, fmt.Errorf("apps: unknown graph input %q", input)
		}
		cfg := DefaultHyperANF()
		if cores > 0 {
			cfg.Cores = cores
		}
		return HyperANF(g, input, cfg), nil
	case "spcg":
		m, ok := MatrixInput(s, input)
		if !ok {
			return nil, fmt.Errorf("apps: unknown matrix input %q", input)
		}
		cfg := DefaultSpCG()
		if cores > 0 {
			cfg.Cores = cores
		}
		return SpCG(m, input, cfg), nil
	}
	return nil, fmt.Errorf("apps: unknown workload %q", workload)
}

// Workloads lists the paper's three applications in presentation order.
var Workloads = []string{"pagerank", "hyperanf", "spcg"}

// InputsFor returns the input column order for a workload.
func InputsFor(workload string) []string {
	if workload == "spcg" {
		return MatrixInputOrder
	}
	return GraphInputOrder
}

func isqrt(n int) int {
	x := 1
	for x*x < n {
		x++
	}
	return x
}
