package apps

import (
	"fmt"

	"rnrsim/internal/graph"
	"rnrsim/internal/sparse"
)

// Scale selects input sizes. The paper simulates 500M-instruction windows
// of full-size SNAP/SuiteSparse inputs on ChampSim; this reproduction
// scales the inputs (and the caches, see sim.ScaledConfig) so the full
// suite runs on a laptop while keeping miss ratios in the same regimes.
type Scale int

const (
	// ScaleTest is for unit tests: seconds for the whole suite.
	ScaleTest Scale = iota
	// ScaleBench is for the experiment harness: the default.
	ScaleBench
	// ScaleLarge stresses bigger footprints (optional deep runs).
	ScaleLarge
)

// GraphInputs returns the paper's four graph inputs (Table III) at the
// given scale, in the paper's presentation order.
func GraphInputs(s Scale) map[string]*graph.Graph {
	var n, deg int
	switch s {
	case ScaleTest:
		n, deg = 2000, 8
	case ScaleLarge:
		n, deg = 60000, 16
	default:
		n, deg = 16000, 12
	}
	side := isqrt(n)
	return map[string]*graph.Graph{
		"urand":     graph.Uniform(n, deg, 1001),
		"amazon":    graph.Community(n*3/4, deg-2, 64, 0.12, 1002),
		"com-orkut": graph.PowerLaw(n, deg+8, 1003),
		"roadUSA":   graph.Road(side*2, side, 1004),
	}
}

// GraphInputOrder is the paper's column order for graph figures.
var GraphInputOrder = []string{"urand", "amazon", "com-orkut", "roadUSA"}

// MatrixInputs returns the paper's four spCG inputs (Table III). The
// generator parameters are chosen so the SpMV gather through the column
// indices spans far more than the (scaled) private caches, as the
// full-size SuiteSparse matrices span far more than 256 KB — otherwise
// the irregular access the paper targets never misses.
func MatrixInputs(s Scale) map[string]*sparse.Matrix {
	switch s {
	case ScaleTest:
		return map[string]*sparse.Matrix{
			"atmosmodj": sparse.Stencil3D(24, 10, 6), // z-plane 240 rows ~ 2 KB
			"bbmat":     sparse.Banded(2500, 500, 0.006, 2001),
			"nlpkkt80":  sparse.BlockStencil(16, 10, 4, 3),
			"pdb1HYS":   sparse.ProteinBlocks(100, 12, 5, 2002),
		}
	case ScaleLarge:
		return map[string]*sparse.Matrix{
			"atmosmodj": sparse.Stencil3D(96, 72, 10),
			"bbmat":     sparse.Banded(60000, 6000, 0.0012, 2001),
			"nlpkkt80":  sparse.BlockStencil(48, 40, 6, 3),
			"pdb1HYS":   sparse.ProteinBlocks(1200, 24, 8, 2002),
		}
	default:
		return map[string]*sparse.Matrix{
			// xy-plane 3072 rows = 24 KB > 16 KB L2.
			"atmosmodj": sparse.Stencil3D(64, 48, 8),
			// band half-width 2500 rows = 20 KB span, sparse fill.
			"bbmat": sparse.Banded(20000, 2500, 0.0025, 2001),
			// block-coupled stencil, xy stride 1024 cells x 3 = 24 KB.
			"nlpkkt80": sparse.BlockStencil(32, 32, 4, 3),
			// dense residue blocks + long-range contacts over 80 KB.
			"pdb1HYS": sparse.ProteinBlocks(500, 20, 8, 2002),
		}
	}
}

// MatrixInputOrder is the paper's column order for spCG figures.
var MatrixInputOrder = []string{"atmosmodj", "bbmat", "nlpkkt80", "pdb1HYS"}

// Build constructs the named workload ("pagerank", "hyperanf", "spcg") on
// the named input at the given scale.
func Build(workload, input string, s Scale) (*App, error) {
	switch workload {
	case "pagerank":
		g, ok := GraphInputs(s)[input]
		if !ok {
			return nil, fmt.Errorf("apps: unknown graph input %q", input)
		}
		return PageRank(g, input, DefaultPageRank()), nil
	case "hyperanf":
		g, ok := GraphInputs(s)[input]
		if !ok {
			return nil, fmt.Errorf("apps: unknown graph input %q", input)
		}
		return HyperANF(g, input, DefaultHyperANF()), nil
	case "spcg":
		m, ok := MatrixInputs(s)[input]
		if !ok {
			return nil, fmt.Errorf("apps: unknown matrix input %q", input)
		}
		return SpCG(m, input, DefaultSpCG()), nil
	}
	return nil, fmt.Errorf("apps: unknown workload %q", workload)
}

// Workloads lists the paper's three applications in presentation order.
var Workloads = []string{"pagerank", "hyperanf", "spcg"}

// InputsFor returns the input column order for a workload.
func InputsFor(workload string) []string {
	if workload == "spcg" {
		return MatrixInputOrder
	}
	return GraphInputOrder
}

func isqrt(n int) int {
	x := 1
	for x*x < n {
		x++
	}
	return x
}
