package apps

import (
	"math"
	"testing"

	"rnrsim/internal/graph"
	"rnrsim/internal/mem"
	"rnrsim/internal/sparse"
	"rnrsim/internal/trace"
)

func testGraph() *graph.Graph { return graph.Uniform(400, 6, 5) }

func TestHLLEstimatesCardinality(t *testing.T) {
	var h HLL
	const n = 10000
	for i := uint64(0); i < n; i++ {
		h.Add(i)
	}
	est := h.Estimate()
	if math.Abs(est-n)/n > 0.5 {
		t.Errorf("HLL estimate %0.f for %d elements (>50%% error)", est, n)
	}
}

func TestHLLUnionIsMax(t *testing.T) {
	var a, b HLL
	for i := uint64(0); i < 500; i++ {
		a.Add(i)
	}
	for i := uint64(400); i < 900; i++ {
		b.Add(i)
	}
	pre := a
	changed := a.Union(&b)
	if !changed {
		t.Error("union of disjoint-ish sets reported no change")
	}
	for i := range a {
		if a[i] < pre[i] || a[i] < b[i] {
			t.Fatalf("register %d decreased in union", i)
		}
	}
	if a.Union(&b) {
		t.Error("second identical union reported a change")
	}
	// Union estimate must be at least each operand's estimate.
	if a.Estimate() < b.Estimate()*0.99 {
		t.Errorf("union estimate %f < operand %f", a.Estimate(), b.Estimate())
	}
}

func TestHLLAgainstExactBallSizes(t *testing.T) {
	// One HyperANF iteration = ball of radius 1 = 1 + in-neighbours.
	g := testGraph()
	cur := make([]HLL, g.N)
	nxt := make([]HLL, g.N)
	for v := 0; v < g.N; v++ {
		cur[v].Add(uint64(v))
	}
	copy(nxt, cur)
	for v := 0; v < g.N; v++ {
		for _, s := range g.Neighbors(v) {
			nxt[v].Union(&cur[s])
		}
	}
	// Exact ball sizes are small; HLL with 16 registers uses linear
	// counting there, which is quite accurate.
	var errSum, n float64
	for v := 0; v < g.N; v++ {
		exact := map[uint32]struct{}{uint32(v): {}}
		for _, s := range g.Neighbors(v) {
			exact[s] = struct{}{}
		}
		est := nxt[v].Estimate()
		errSum += math.Abs(est-float64(len(exact))) / float64(len(exact))
		n++
	}
	if mean := errSum / n; mean > 0.35 {
		t.Errorf("mean relative error of radius-1 ball estimates: %.2f", mean)
	}
}

// markerSummary extracts the marker sequence of a trace.
func markerSummary(recs []trace.Record) []trace.Marker {
	var out []trace.Marker
	for _, r := range recs {
		if r.Kind == trace.KindMarker {
			out = append(out, r.Marker)
		}
	}
	return out
}

func countKind(recs []trace.Record, k trace.Kind) int {
	n := 0
	for _, r := range recs {
		if r.Kind == k {
			n++
		}
	}
	return n
}

func TestPageRankTraceStructure(t *testing.T) {
	g := testGraph()
	app := PageRank(g, "urand", PageRankConfig{Cores: 2, Iterations: 4, Damping: 0.85})
	if len(app.Traces) != 2 {
		t.Fatalf("%d traces for 2 cores", len(app.Traces))
	}
	for c, recs := range app.Traces {
		ms := markerSummary(recs)
		// Must contain, in order: init, record start, replay x2, end.
		idx := func(m trace.Marker) int {
			for i, x := range ms {
				if x == m {
					return i
				}
			}
			return -1
		}
		if idx(trace.MarkInit) < 0 || idx(trace.MarkRecordStart) < 0 ||
			idx(trace.MarkReplay) < 0 || idx(trace.MarkEnd) < 0 {
			t.Fatalf("core %d: missing RnR markers: %v", c, ms)
		}
		if !(idx(trace.MarkInit) < idx(trace.MarkRecordStart) &&
			idx(trace.MarkRecordStart) < idx(trace.MarkReplay) &&
			idx(trace.MarkReplay) < idx(trace.MarkEnd)) {
			t.Errorf("core %d: marker order wrong: %v", c, ms)
		}
		replays := 0
		for _, m := range ms {
			if m == trace.MarkReplay {
				replays++
			}
		}
		if replays != 2 { // iterations 2 and 3
			t.Errorf("core %d: %d replay markers, want 2", c, replays)
		}
		if countKind(recs, trace.KindLoad) == 0 || countKind(recs, trace.KindStore) == 0 {
			t.Errorf("core %d: no memory records", c)
		}
	}
}

func TestPageRankComputesRealRanks(t *testing.T) {
	g := testGraph()
	app := PageRank(g, "urand", PageRankConfig{Cores: 2, Iterations: 4})
	// Total PageRank mass stays ~1 under the pull iteration.
	if math.Abs(app.Check-1) > 0.05 {
		t.Errorf("rank mass = %f, want ~1", app.Check)
	}
}

func TestPageRankIrregularLoadsCoverTarget(t *testing.T) {
	g := testGraph()
	app := PageRank(g, "urand", PageRankConfig{Cores: 1, Iterations: 3})
	pcurr := app.Targets[0]
	pnext := app.Targets[1]
	inTarget := 0
	for _, r := range app.Traces[0] {
		if r.Kind == trace.KindLoad && (pcurr.Contains(r.Addr) || pnext.Contains(r.Addr)) {
			inTarget++
		}
	}
	// One irregular load per edge per iteration (3 iterations).
	want := int(g.M()) * 3
	if inTarget < want || inTarget > want+3*g.N*2 {
		t.Errorf("target loads = %d, want >= %d (one per edge per iteration)", inTarget, want)
	}
}

func TestPageRankBaseSwapMarkers(t *testing.T) {
	g := testGraph()
	app := PageRank(g, "urand", PageRankConfig{Cores: 1, Iterations: 4})
	pcurr, pnext := app.Targets[0], app.Targets[1]
	// Collect slot-0 base sets in order; they must alternate between the
	// two buffers starting with pcurr.
	var bases []mem.Addr
	for _, r := range app.Traces[0] {
		if r.Kind == trace.KindMarker && r.Marker == trace.MarkAddrBaseSet && r.Aux == 0 {
			bases = append(bases, r.Addr)
		}
	}
	if len(bases) != 4 { // initial + one per non-final iteration
		t.Fatalf("slot-0 base sets: %d, want 4 (%v)", len(bases), bases)
	}
	want := []mem.Addr{pcurr.Base, pnext.Base, pcurr.Base, pnext.Base}
	for i := range bases {
		if bases[i] != want[i] {
			t.Errorf("base set %d = %#x, want %#x", i, uint64(bases[i]), uint64(want[i]))
		}
	}
}

func TestPageRankResolver(t *testing.T) {
	g := testGraph()
	app := PageRank(g, "urand", PageRankConfig{Cores: 1, Iterations: 3})
	edge0 := app.EdgeRegion.Base
	targets := app.Resolve(mem.LineAddr(edge0))
	if len(targets) == 0 {
		t.Fatal("resolver returned nothing for the first edge line")
	}
	pcurr := app.Targets[0]
	for _, tl := range targets {
		if !pcurr.Contains(tl) {
			t.Errorf("resolved target %#x outside pcurr %v", uint64(tl), pcurr)
		}
	}
	// Rebinding to the other buffer must move the targets.
	pnext := app.Targets[1]
	re := app.MakeResolver(pnext.Base)
	for _, tl := range re(mem.LineAddr(edge0)) {
		if !pnext.Contains(tl) {
			t.Errorf("rebound target %#x outside pnext %v", uint64(tl), pnext)
		}
	}
	if app.Resolve(0x10) != nil {
		t.Error("resolver answered outside the edge region")
	}
}

func TestHyperANFTraceAndEstimate(t *testing.T) {
	g := testGraph()
	app := HyperANF(g, "urand", HyperANFConfig{Cores: 2, Iterations: 4})
	if len(app.Traces) != 2 {
		t.Fatalf("%d traces", len(app.Traces))
	}
	// After 3 union rounds on a random graph the estimated neighbourhood
	// function must exceed N (balls of radius 3 are big).
	if app.Check < float64(g.N) {
		t.Errorf("neighbourhood estimate %f < N=%d", app.Check, g.N)
	}
	for c, recs := range app.Traces {
		if countKind(recs, trace.KindLoad) == 0 {
			t.Errorf("core %d: empty trace", c)
		}
	}
}

func TestSpCGTraceAndConvergence(t *testing.T) {
	m := sparse.Stencil3D(8, 8, 8)
	app := SpCG(m, "atmosmodj", SpCGConfig{Cores: 2, Iterations: 4})
	if app.Check > 1e-10 {
		t.Errorf("CG residual %g, want <= 1e-10", app.Check)
	}
	// The irregular gather must appear once per nonzero per iteration.
	pv := app.Targets[0]
	gathers := 0
	for _, recs := range app.Traces {
		for _, r := range recs {
			if r.Kind == trace.KindLoad && pv.Contains(r.Addr) && r.PC == pcSpCG+0x0c {
				gathers++
			}
		}
	}
	want := int(m.NNZ()) * 4
	if gathers != want {
		t.Errorf("p-vector gathers = %d, want %d", gathers, want)
	}
}

func TestSpCGNoBaseSwap(t *testing.T) {
	m := sparse.Stencil3D(6, 6, 6)
	app := SpCG(m, "atmosmodj", SpCGConfig{Cores: 1, Iterations: 4})
	sets := 0
	for _, r := range app.Traces[0] {
		if r.Kind == trace.KindMarker && r.Marker == trace.MarkAddrBaseSet {
			sets++
		}
	}
	if sets != 1 {
		t.Errorf("spCG emitted %d AddrBase.set markers, want 1 (base never moves)", sets)
	}
}

func TestBuildCatalog(t *testing.T) {
	for _, w := range Workloads {
		for _, in := range InputsFor(w) {
			app, err := Build(w, in, ScaleTest)
			if err != nil {
				t.Fatalf("Build(%s,%s): %v", w, in, err)
			}
			if app.Records() == 0 {
				t.Errorf("%s/%s: empty trace", w, in)
			}
			if app.Cores != 4 || len(app.Traces) != 4 {
				t.Errorf("%s/%s: cores=%d traces=%d", w, in, app.Cores, len(app.Traces))
			}
		}
	}
	if _, err := Build("nope", "urand", ScaleTest); err == nil {
		t.Error("Build accepted unknown workload")
	}
	if _, err := Build("pagerank", "nope", ScaleTest); err == nil {
		t.Error("Build accepted unknown input")
	}
}

func TestInputCatalogsValid(t *testing.T) {
	for name, g := range GraphInputs(ScaleTest) {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for name, m := range MatrixInputs(ScaleTest) {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTraceSharingIsSafe(t *testing.T) {
	// Two Sources over the same app must iterate independently.
	g := testGraph()
	app := PageRank(g, "urand", PageRankConfig{Cores: 1, Iterations: 3})
	s1 := app.Sources()[0]
	s2 := app.Sources()[0]
	r1, _ := s1.Next()
	for i := 0; i < 10; i++ {
		s2.Next()
	}
	r1b, _ := app.Sources()[0].Next()
	if r1 != r1b {
		t.Error("fresh source does not restart the trace")
	}
}
