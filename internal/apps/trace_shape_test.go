package apps

import (
	"testing"

	"rnrsim/internal/graph"
	"rnrsim/internal/mem"
	"rnrsim/internal/sparse"
	"rnrsim/internal/trace"
)

// iterSlices splits a trace into per-iteration record slices using the
// IterBegin/IterEnd markers.
func iterSlices(recs []trace.Record) [][]trace.Record {
	var out [][]trace.Record
	var cur []trace.Record
	in := false
	for _, r := range recs {
		if r.Kind == trace.KindMarker && r.Marker == trace.MarkIterBegin {
			in = true
			cur = nil
			continue
		}
		if r.Kind == trace.KindMarker && r.Marker == trace.MarkIterEnd {
			in = false
			out = append(out, cur)
			continue
		}
		if in {
			cur = append(cur, r)
		}
	}
	return out
}

// loadsOf extracts the load addresses of one iteration, skipping markers.
func loadsOf(recs []trace.Record) []mem.Addr {
	var out []mem.Addr
	for _, r := range recs {
		if r.Kind == trace.KindLoad {
			out = append(out, r.Addr)
		}
	}
	return out
}

func TestPageRankIterationsRepeatModuloBaseSwap(t *testing.T) {
	// The paper's premise: the access *pattern* repeats across iterations.
	// With the p_curr/p_next double buffer, loads of iteration k and k+2
	// must be identical, and k vs k+1 identical after swapping the bases.
	g := graph.Uniform(300, 5, 11)
	app := PageRank(g, "urand", PageRankConfig{Cores: 1, Iterations: 4})
	iters := iterSlices(app.Traces[0])
	if len(iters) != 4 {
		t.Fatalf("found %d iterations", len(iters))
	}
	l0, l2 := loadsOf(iters[0]), loadsOf(iters[2])
	if len(l0) == 0 || len(l0) != len(l2) {
		t.Fatalf("load counts differ: %d vs %d", len(l0), len(l2))
	}
	for i := range l0 {
		if l0[i] != l2[i] {
			t.Fatalf("iteration 0 and 2 diverge at load %d: %#x vs %#x", i, uint64(l0[i]), uint64(l2[i]))
		}
	}
	// k vs k+1: addresses in the pcurr/pnext regions swap bases, all
	// other regions are identical.
	pcurr, pnext := app.Targets[0], app.Targets[1]
	l1 := loadsOf(iters[1])
	if len(l0) != len(l1) {
		t.Fatalf("adjacent iterations differ in load count")
	}
	for i := range l0 {
		a, b := l0[i], l1[i]
		switch {
		case pcurr.Contains(a):
			want := pnext.Base + (a - pcurr.Base)
			if b != want {
				t.Fatalf("load %d: %#x should swap to %#x, got %#x", i, uint64(a), uint64(want), uint64(b))
			}
		case pnext.Contains(a):
			want := pcurr.Base + (a - pnext.Base)
			if b != want {
				t.Fatalf("load %d: swap mismatch", i)
			}
		default:
			if a != b {
				t.Fatalf("non-target load %d moved across iterations", i)
			}
		}
	}
}

func TestSpCGIterationsIdentical(t *testing.T) {
	// spCG's p vector never moves: every iteration's loads are identical.
	m := sparse.Banded(300, 40, 0.05, 5)
	app := SpCG(m, "bbmat", SpCGConfig{Cores: 1, Iterations: 4})
	iters := iterSlices(app.Traces[0])
	l0 := loadsOf(iters[0])
	for k := 1; k < len(iters); k++ {
		lk := loadsOf(iters[k])
		if len(lk) != len(l0) {
			t.Fatalf("iteration %d load count %d != %d", k, len(lk), len(l0))
		}
		for i := range l0 {
			if l0[i] != lk[i] {
				t.Fatalf("iteration %d diverges at load %d", k, i)
			}
		}
	}
}

func TestHyperANFBaseSwapMarkers(t *testing.T) {
	g := graph.Uniform(200, 5, 3)
	app := HyperANF(g, "urand", HyperANFConfig{Cores: 1, Iterations: 4})
	hcurr, hnext := app.Targets[0], app.Targets[1]
	var bases []mem.Addr
	for _, r := range app.Traces[0] {
		if r.Kind == trace.KindMarker && r.Marker == trace.MarkAddrBaseSet && r.Aux == 0 {
			bases = append(bases, r.Addr)
		}
	}
	want := []mem.Addr{hcurr.Base, hnext.Base, hcurr.Base, hnext.Base}
	if len(bases) != len(want) {
		t.Fatalf("slot-0 base sets = %d, want %d", len(bases), len(want))
	}
	for i := range want {
		if bases[i] != want[i] {
			t.Errorf("base set %d = %#x, want %#x", i, uint64(bases[i]), uint64(want[i]))
		}
	}
}

func TestRegionTaggingMatchesAllocator(t *testing.T) {
	g := graph.Uniform(200, 4, 9)
	app := PageRank(g, "urand", PageRankConfig{Cores: 1, Iterations: 3})
	// Every load/store must carry the region id of the region containing
	// its address (Aux), for the whole trace.
	regions := map[int32]mem.Region{}
	for _, tgt := range app.Targets {
		regions[int32(tgt.ID)] = tgt
	}
	for _, r := range app.Traces[0] {
		if r.Kind != trace.KindLoad && r.Kind != trace.KindStore {
			continue
		}
		if reg, ok := regions[r.Aux]; ok {
			if !reg.Contains(r.Addr) {
				t.Fatalf("record %v tagged region %d but outside %v", r, r.Aux, reg)
			}
		}
	}
}

func TestMetadataTablesSizedForWorstCase(t *testing.T) {
	// The programmer allocates the sequence table to survive a 100% miss
	// rate: capacity must be at least the per-core edge count.
	g := graph.Uniform(500, 6, 21)
	app := PageRank(g, "urand", PageRankConfig{Cores: 2, Iterations: 3})
	for c, recs := range app.Traces {
		var seqBytes uint64
		for _, r := range recs {
			if r.Kind == trace.KindMarker && r.Marker == trace.MarkSeqTable {
				seqBytes = r.Count
			}
		}
		perCoreEdges := uint64(g.M()) / 2
		if seqBytes/4 < perCoreEdges {
			t.Errorf("core %d sequence table holds %d entries for %d edges", c, seqBytes/4, perCoreEdges)
		}
	}
}

func TestPartitionRowsBalanced(t *testing.T) {
	m := sparse.Banded(1000, 60, 0.08, 7)
	rows := partitionRows(m, 4)
	total := 0
	var counts [4]int64
	for c, rs := range rows {
		total += len(rs)
		for _, r := range rs {
			counts[c] += m.Offsets[r+1] - m.Offsets[r]
		}
	}
	if total != m.N {
		t.Fatalf("partitioned %d rows of %d", total, m.N)
	}
	// nnz balance within 2x of ideal.
	ideal := m.NNZ() / 4
	for c, n := range counts {
		if n > ideal*2 {
			t.Errorf("partition %d has %d nnz, ideal %d", c, n, ideal)
		}
	}
}
