package apps

import (
	"rnrsim/internal/graph"
	"rnrsim/internal/mem"
	"rnrsim/internal/prefetch"
	"rnrsim/internal/trace"
)

// HyperANFConfig parameterises the HyperANF workload.
type HyperANFConfig struct {
	Cores      int
	Iterations int
	WindowSize uint64
}

// DefaultHyperANF returns the evaluation configuration.
func DefaultHyperANF() HyperANFConfig {
	return HyperANFConfig{Cores: 4, Iterations: 5}
}

// HyperANF builds the edge-centric HyperANF workload (X-Stream style
// [44]): per iteration each worker streams its partition's edge list and,
// for each edge (s -> v), unions the source sketch hll_curr[s] into the
// destination sketch hll_next[v]. The sketch arrays are the irregular RnR
// targets; the edge list is the stream DROPLET is configured with.
func HyperANF(g *graph.Graph, input string, cfg HyperANFConfig) *App {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.Iterations < 3 {
		cfg.Iterations = 3
	}
	n := g.N
	const sketchBytes = hllRegisters // 16 B per vertex

	l := newLayout()
	offsets := l.al.AllocPage("anf.offsets", uint64(n+1)*8)
	edges := l.al.AllocPage("anf.edges", uint64(g.M())*4)
	hcurr := l.al.AllocPage("anf.hcurr", uint64(n)*sketchBytes)
	hnext := l.al.AllocPage("anf.hnext", uint64(n)*sketchBytes)
	perCore := uint64(g.M())/uint64(cfg.Cores)*2 + uint64(n) + 1024
	seqT, divT := l.metaTables(cfg.Cores, perCore*4, perCore/16*8+4096)

	part := graph.PartitionGraph(g, cfg.Cores)

	// Real sketches.
	cur := make([]HLL, n)
	nxt := make([]HLL, n)
	for v := 0; v < n; v++ {
		cur[v].Add(uint64(v))
	}

	app := &App{
		Name: "hyperanf", Input: input, Cores: cfg.Cores,
		InputBytes: g.InputBytes() + uint64(n)*sketchBytes,
		Targets:    []mem.Region{hcurr, hnext},
		EdgeRegion: edges,
		Iterations: cfg.Iterations,
	}
	mk := func(base mem.Addr) prefetch.IndirectResolver {
		return func(line mem.Addr) []mem.Addr {
			if !edges.Contains(line) {
				return nil
			}
			first := int(uint64(line-edges.Base) / 4)
			var out []mem.Addr
			var last mem.Addr
			for i := first; i < first+16 && i < len(g.Edges); i++ {
				t := mem.LineAddr(base + mem.Addr(g.Edges[i])*sketchBytes)
				if t != last {
					out = append(out, t)
					last = t
				}
			}
			return out
		}
	}
	app.Resolve = mk(hcurr.Base)
	app.MakeResolver = mk

	builders := make([]*trace.Builder, cfg.Cores)
	for c := range builders {
		b := trace.NewBuilder(1 << 16)
		b.Exec(64)
		b.RnRInit(seqT[c], divT[c], cfg.WindowSize)
		b.AddrBaseSet(0, hcurr.Base, hcurr.Size)
		b.AddrBaseSet(1, hnext.Base, hnext.Size)
		b.ROIBegin()
		builders[c] = b
	}

	parts := make([][]int, cfg.Cores)
	for c := range parts {
		parts[c] = part.Vertices(c)
	}

	curR, nxtR := hcurr, hnext
	for it := 0; it < cfg.Iterations; it++ {
		for c, b := range builders {
			b.IterBegin(it)
			switch it {
			case 0:
			case 1:
				b.AddrBaseEnable(0)
				b.RecordStart()
			default:
				b.Replay()
			}
			emitHyperANFIteration(b, g, parts[c], curR, nxtR, offsets, edges, sketchBytes)
			b.IterEnd(it)
			if it < cfg.Iterations-1 {
				b.AddrBaseSet(0, nxtR.Base, nxtR.Size)
				b.AddrBaseSet(1, curR.Base, curR.Size)
				b.AddrBaseEnable(0)
			}
		}
		// Real computation: nxt = cur unioned over in-neighbours.
		copy(nxt, cur)
		for v := 0; v < n; v++ {
			for _, s := range g.Neighbors(v) {
				nxt[v].Union(&cur[s])
			}
		}
		cur, nxt = nxt, cur
		curR, nxtR = nxtR, curR
	}
	for _, b := range builders {
		b.PrefetchEnd()
		b.RnREnd()
		b.ROIEnd()
		app.Traces = append(app.Traces, b.Records())
	}

	// Neighbourhood function estimate at the final radius.
	var nf float64
	for v := range cur {
		nf += cur[v].Estimate()
	}
	app.Check = nf
	return app
}

// emitHyperANFIteration emits the edge-centric kernel: stream edges, load
// the source sketch (irregular), read-modify-write the destination sketch.
func emitHyperANFIteration(b *trace.Builder, g *graph.Graph, vertices []int,
	cur, next, offsets, edges mem.Region, sketchBytes uint64) {
	const (
		pcOff  = pcHyperANF + 0x00
		pcEdge = pcHyperANF + 0x04
		pcSrc  = pcHyperANF + 0x08
		pcDst  = pcHyperANF + 0x0c
		pcDstW = pcHyperANF + 0x10
	)
	for _, v := range vertices {
		b.Load(pcOff, offsets.Base+mem.Addr(v)*8, 8, int32(offsets.ID))
		b.Exec(1)
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		// Load own destination sketch once per vertex.
		b.Load(pcDst, next.Base+mem.Addr(uint64(v)*sketchBytes), sketchBytes, int32(next.ID))
		for k := lo; k < hi; k++ {
			s := g.Edges[k]
			b.Load(pcEdge, edges.Base+mem.Addr(k)*4, 4, int32(edges.ID))
			// The irregular source-sketch load.
			b.Load(pcSrc, cur.Base+mem.Addr(uint64(s)*sketchBytes), sketchBytes, int32(cur.ID))
			b.Exec(6) // 16-register max-merge, vectorised
		}
		b.Store(pcDstW, next.Base+mem.Addr(uint64(v)*sketchBytes), sketchBytes, int32(next.ID))
		b.Exec(2)
	}
}
