package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"rnrsim/internal/apps"
	"rnrsim/internal/audit"
	"rnrsim/internal/bench"
	"rnrsim/internal/sim"
)

// directResult runs the spec's simulation through a fresh private
// bench.Suite at test scale, bypassing the daemon entirely. It keeps
// NewSuite's default machine, exactly as Manager.suiteLocked does.
func directResult(t *testing.T, workload, input string, pf sim.PrefetcherKind) *sim.Result {
	t.Helper()
	s := bench.NewSuite(apps.ScaleTest)
	return s.Run(workload, input, pf, bench.Variant{})
}

// fetchServedExport submits the spec with wait=1 and decodes the job's
// result payload as a sim.ResultJSON export.
func fetchServedExport(t *testing.T, url string, spec RunSpec) sim.ResultJSON {
	t.Helper()
	resp := postJSON(t, url+"/v1/runs?wait=1", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d, want 200", resp.StatusCode)
	}
	v := decodeView(t, resp)
	if v.State != StateDone || len(v.Result) == 0 {
		t.Fatalf("job = {state %q, result %d bytes}", v.State, len(v.Result))
	}
	var doc sim.ResultJSON
	if err := json.Unmarshal(v.Result, &doc); err != nil {
		t.Fatalf("decode result payload: %v", err)
	}
	return doc
}

// TestServedStateHashMatchesDirect is the rnrd leg of the differential
// acceptance check: a run served over HTTP by the daemon must carry the
// same architectural state hash as the same run simulated directly —
// the serving stack (queue, workers, memoisation, JSON round trip) must
// not perturb the machine.
func TestServedStateHashMatchesDirect(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 2})
	for _, pf := range []sim.PrefetcherKind{sim.PFNone, sim.PFRnR} {
		spec := RunSpec{Workload: "pagerank", Input: "urand", Prefetcher: string(pf), Scale: "test"}
		served := fetchServedExport(t, ts.URL, spec)
		want := directResult(t, spec.Workload, spec.Input, pf)
		wantHex := want.Export().StateHash
		if served.StateHash != wantHex {
			t.Errorf("%s: served state_hash %q != direct %q", pf, served.StateHash, wantHex)
		}
		if served.Cycles != want.Cycles {
			t.Errorf("%s: served cycles %d != direct %d", pf, served.Cycles, want.Cycles)
		}
	}
}

// TestServedAuditOption pins that Options.Audit reaches the simulations
// the daemon runs: an audited daemon serves the same result bytes as an
// unaudited one.
func TestServedAuditOption(t *testing.T) {
	audited, _ := newTestServer(t, Options{Workers: 1, Audit: &audit.Config{Interval: 512}})
	plain, _ := newTestServer(t, Options{Workers: 1})

	spec := testSpec()
	a := fetchServedExport(t, audited.URL, spec)
	b := fetchServedExport(t, plain.URL, spec)
	if a.StateHash != b.StateHash || a.Cycles != b.Cycles {
		t.Errorf("audited daemon diverged: hash %q/%q, cycles %d/%d",
			a.StateHash, b.StateHash, a.Cycles, b.Cycles)
	}
}
