package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"time"

	"sync"

	"rnrsim/internal/audit"
	"rnrsim/internal/bench"
	"rnrsim/internal/multicore"
	"rnrsim/internal/obs"
	"rnrsim/internal/sim"
	"rnrsim/internal/telemetry"
)

// Submission/runtime errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull is returned when the bounded job queue has no room;
	// the HTTP layer answers 429 with a Retry-After hint.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining is returned once shutdown has begun; the HTTP layer
	// answers 503.
	ErrDraining = errors.New("serve: draining, not accepting jobs")
	// ErrUnknownJob is returned for lookups of ids never submitted.
	ErrUnknownJob = errors.New("serve: unknown job")
)

// Telemetry instrument names the manager maintains (exposed through
// /metrics and asserted on by the lifecycle tests).
const (
	CounterJobsSubmitted = "rnrd.jobs_submitted"
	CounterJobsCoalesced = "rnrd.jobs_coalesced"
	CounterJobsDone      = "rnrd.jobs_done"
	CounterJobsFailed    = "rnrd.jobs_failed"
	CounterJobsCanceled  = "rnrd.jobs_canceled"
	CounterJobsAbandoned = "rnrd.jobs_abandoned"
	CounterQueueRejects  = "rnrd.queue_rejects"
	CounterPhaseTicks    = "rnrd.phase_ticks"
	GaugeQueueDepth      = "rnrd.queue_depth"
	GaugeJobsActive      = "rnrd.jobs_active"
)

// Options configures a Manager. The zero value is usable: every field
// has a serving-appropriate default.
type Options struct {
	// DefaultScale is the input scale used when a submission leaves
	// Scale empty. Default "bench".
	DefaultScale string
	// QueueDepth bounds the number of jobs waiting to run; a full
	// queue rejects submissions with ErrQueueFull. Default 64.
	QueueDepth int
	// Workers is the number of jobs run concurrently. Default
	// GOMAXPROCS.
	Workers int
	// JobTimeout caps one job's total lifetime (queue wait included).
	// 0 means no timeout.
	JobTimeout time.Duration
	// RetryAfter is the backpressure hint attached to 429 responses,
	// jittered ±25% per response so synchronized clients do not
	// stampede back in lockstep. Default 2s.
	RetryAfter time.Duration
	// WorkerID names this daemon in a cluster: it is reported by the
	// /v1/worker/status heartbeat responder so a coordinator can tell
	// workers apart. Empty outside worker mode.
	WorkerID string
	// Parallelism is handed to each bench.Suite (the width of
	// experiment prewarms). 0 means GOMAXPROCS.
	Parallelism int
	// Audit, when non-nil, attaches the correctness auditor
	// (internal/audit) to every simulation the daemon runs: each
	// per-scale suite propagates it into sim.Config.Audit, so every
	// served run is swept for invariant violations and fails loudly
	// instead of caching a corrupted result. Nil (the default) serves
	// unaudited runs.
	Audit *audit.Config
	// Obs, when non-nil, attaches the prefetch-lifecycle flight recorder
	// (internal/obs) to every simulation the daemon runs: served results
	// carry the `lifecycle` and `histograms` envelope sections, and the
	// recorder mirrors its histograms into Registry (unless the config
	// names its own mirror) so /metrics exposes obs_* Prometheus
	// histograms accumulated across jobs. Nil serves unobserved runs.
	Obs *obs.Config
	// Registry receives the manager's counters and gauges. Default
	// telemetry.Default.
	Registry *telemetry.Registry
	// Logf, if set, receives operational log lines.
	Logf func(format string, args ...any)
}

func (o *Options) fillDefaults() {
	if o.DefaultScale == "" {
		o.DefaultScale = "bench"
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 2 * time.Second
	}
	if o.Registry == nil {
		o.Registry = telemetry.Default
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Manager owns the job queue, the worker pool, the per-scale
// bench.Suites (and through them the singleflight result memoisation)
// and the content-addressed job store.
type Manager struct {
	opts Options

	baseCtx context.Context
	stopAll context.CancelFunc

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	st       *store
	suites   map[string]*bench.Suite
	draining bool
	active   int // jobs currently inside runJob

	cSubmitted, cCoalesced, cDone, cFailed *telemetry.Counter
	cCanceled, cAbandoned, cRejects        *telemetry.Counter
	cPhaseTicks                            *telemetry.Counter
}

// NewManager builds and starts a manager: its workers are live on
// return and Shutdown must eventually be called.
func NewManager(opts Options) *Manager {
	opts.fillDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		opts:       opts,
		baseCtx:    ctx,
		stopAll:    cancel,
		queue:      make(chan *Job, opts.QueueDepth),
		st:         newStore(),
		suites:     make(map[string]*bench.Suite),
		cSubmitted: opts.Registry.Counter(CounterJobsSubmitted),
		cCoalesced: opts.Registry.Counter(CounterJobsCoalesced),
		cDone:      opts.Registry.Counter(CounterJobsDone),
		cFailed:    opts.Registry.Counter(CounterJobsFailed),
		cCanceled:  opts.Registry.Counter(CounterJobsCanceled),
		cAbandoned: opts.Registry.Counter(CounterJobsAbandoned),
		cRejects:   opts.Registry.Counter(CounterQueueRejects),
		cPhaseTicks: opts.Registry.Counter(
			CounterPhaseTicks),
	}
	opts.Registry.Probe(GaugeQueueDepth, func(uint64) float64 {
		return float64(len(m.queue))
	})
	opts.Registry.Probe(GaugeJobsActive, func(uint64) float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(m.active)
	})
	for i := 0; i < opts.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Options returns the effective (default-filled) options.
func (m *Manager) Options() Options { return m.opts }

// Registry returns the telemetry registry the manager reports into.
func (m *Manager) Registry() *telemetry.Registry { return m.opts.Registry }

// suite returns (building once) the bench.Suite for a scale. The suite
// is the content cache: every result ever simulated at that scale is
// memoised in it by run key.
func (m *Manager) suite(scale string) *bench.Suite {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.suiteLocked(scale)
}

func (m *Manager) suiteLocked(scale string) *bench.Suite {
	if s, ok := m.suites[scale]; ok {
		return s
	}
	sc, _ := ParseScale(scale)
	s := bench.NewSuite(sc)
	s.Parallelism = m.opts.Parallelism
	s.Config.Audit = m.opts.Audit
	if m.opts.Obs != nil {
		oc := *m.opts.Obs
		if oc.Mirror == nil {
			oc.Mirror = m.opts.Registry
		}
		s.Config.Obs = &oc
	}
	logf := m.opts.Logf
	s.Progress = func(key string) { logf("simulating %s/%s", scale, key) }
	s.OnRunDone = func(key string, elapsed time.Duration) {
		logf("done %s/%s in %.1fs", scale, key, elapsed.Seconds())
	}
	m.suites[scale] = s
	return s
}

// FreshRuns sums completed fresh simulations across every scale's
// suite — the observable the duplicate-submission tests assert on.
func (m *Manager) FreshRuns() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, s := range m.suites {
		n += s.FreshRuns()
	}
	return n
}

// SubmitRun submits (or coalesces onto) the content-addressed job for
// the spec. The boolean reports whether a fresh job was created; a
// coalesced submission returns the existing live or completed job.
// A failed or cancelled previous generation is replaced by a fresh
// one, so transient failures don't wedge a content address.
func (m *Manager) SubmitRun(spec RunSpec) (*Job, bool, error) {
	if err := spec.normalize(m.opts.DefaultScale); err != nil {
		return nil, false, err
	}
	id := RunJobID(spec)
	return m.submit(id, KindRun, spec, "")
}

// SubmitExperiment submits (or coalesces onto) a whole-table
// experiment job. spec only contributes Scale and Detach.
func (m *Manager) SubmitExperiment(experiment string, spec RunSpec) (*Job, bool, error) {
	if !slices.Contains(bench.ExperimentIDs, experiment) {
		return nil, false, fmt.Errorf("unknown experiment %q (have %v)",
			experiment, bench.ExperimentIDs)
	}
	if spec.Scale == "" {
		spec.Scale = m.opts.DefaultScale
	}
	if _, ok := ParseScale(spec.Scale); !ok {
		return nil, false, fmt.Errorf("unknown scale %q (have %v)", spec.Scale, ScaleNames)
	}
	id := ExperimentJobID(spec.Scale, experiment)
	return m.submit(id, KindExperiment, spec, experiment)
}

func (m *Manager) submit(id, kind string, spec RunSpec, experiment string) (*Job, bool, error) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, false, ErrDraining
	}
	if existing, ok := m.st.get(id); ok {
		st := existing.State()
		if st != StateFailed && st != StateCanceled {
			m.cCoalesced.Inc()
			m.mu.Unlock()
			existing.RenewLease() // a coalesced resubmission keeps the lease alive
			return existing, false, nil
		}
		// Previous generation is dead: fall through and replace it.
	}
	j := newJob(m.baseCtx, id, kind, spec, experiment, m.opts.JobTimeout)
	j.onAbandoned = func(*Job) { m.cAbandoned.Inc() }
	select {
	case m.queue <- j:
	default:
		m.cRejects.Inc()
		m.mu.Unlock()
		j.cancel() // release the ctx we just created
		return nil, false, ErrQueueFull
	}
	m.st.put(j)
	m.cSubmitted.Inc()
	m.mu.Unlock()
	m.opts.Logf("queued %s job %s", kind, id)
	return j, true, nil
}

// Job looks a job up by content address.
func (m *Manager) Job(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.st.get(id); ok {
		return j, nil
	}
	return nil, ErrUnknownJob
}

// Jobs lists every current-generation job, oldest first.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.st.list()
}

// Cancel cancels a job by id.
func (m *Manager) Cancel(id string) error {
	j, err := m.Job(id)
	if err != nil {
		return err
	}
	j.Cancel("canceled by request")
	return nil
}

// Watch registers a client's interest in a job and returns the release
// to call on disconnect. When the last watcher of a non-detached
// active job releases, the job is cancelled (abandonment).
func (m *Manager) Watch(j *Job) (release func()) {
	j.addWatcher()
	var once sync.Once
	return func() { once.Do(j.removeWatcher) }
}

// RetryAfter returns the configured base backpressure hint for 429
// responses (before jitter).
func (m *Manager) RetryAfter() time.Duration { return m.opts.RetryAfter }

// RetryAfterJitterFrac is the relative spread applied to every
// Retry-After hint: the served value is uniform in base ± 25%.
const RetryAfterJitterFrac = 0.25

// RetryAfterJittered returns the backpressure hint for one 429
// response: the configured base randomized ±25% so that a fleet of
// clients rejected in the same instant does not retry in the same
// instant too (a fixed hint synchronizes the stampede it exists to
// spread). Never below one second.
func (m *Manager) RetryAfterJittered() time.Duration {
	return JitterDuration(m.opts.RetryAfter, RetryAfterJitterFrac)
}

// JitterDuration spreads d uniformly over [d*(1-frac), d*(1+frac)],
// clamped below at one second.
func JitterDuration(d time.Duration, frac float64) time.Duration {
	if d <= 0 {
		return time.Second
	}
	lo := float64(d) * (1 - frac)
	span := float64(d) * 2 * frac
	out := time.Duration(lo + rand.Float64()*span)
	if out < time.Second {
		out = time.Second
	}
	return out
}

// RenewLease renews a leased job's expiry window by content address.
// ErrUnknownJob for addresses never submitted; false when the job
// exists but holds no live lease.
func (m *Manager) RenewLease(id string) (bool, error) {
	j, err := m.Job(id)
	if err != nil {
		return false, err
	}
	return j.RenewLease(), nil
}

// WorkerStatus is the heartbeat responder's payload: enough for a
// coordinator to judge health and load in one cheap GET.
type WorkerStatus struct {
	SchemaVersion string `json:"schema_version"`
	GeneratedAt   string `json:"generated_at"`

	WorkerID   string `json:"worker_id,omitempty"`
	Draining   bool   `json:"draining"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Active     int    `json:"active"`
	JobsDone   uint64 `json:"jobs_done"`
	JobsFailed uint64 `json:"jobs_failed"`
}

// WorkerStatus snapshots the manager for the heartbeat responder.
func (m *Manager) WorkerStatus() WorkerStatus {
	schema, generated := sim.Stamp()
	m.mu.Lock()
	draining, active := m.draining, m.active
	m.mu.Unlock()
	return WorkerStatus{
		SchemaVersion: schema,
		GeneratedAt:   generated,
		WorkerID:      m.opts.WorkerID,
		Draining:      draining,
		QueueDepth:    len(m.queue),
		QueueCap:      m.opts.QueueDepth,
		Active:        active,
		JobsDone:      m.cDone.Load(),
		JobsFailed:    m.cFailed.Load(),
	}
}

// Draining reports whether shutdown has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Shutdown stops accepting jobs and drains: queued and running jobs
// run to completion. If ctx expires first, every remaining job's
// context is cancelled (the simulator stops within one tick batch) and
// Shutdown still waits for the workers to record the cancellations
// before returning ctx's error.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()
	m.opts.Logf("draining: waiting for in-flight jobs")
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		m.opts.Logf("drain deadline hit: cancelling remaining jobs")
		m.stopAll()
		<-done
		return ctx.Err()
	}
}

// worker pulls jobs until the queue is closed and drained.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob executes one job to a terminal state. Panics out of the bench
// layer (experiment-definition bugs) are converted to job failures so
// one bad request cannot take the daemon down.
func (m *Manager) runJob(j *Job) {
	if j.State().Terminal() { // cancelled while queued
		return
	}
	if err := j.ctx.Err(); err != nil {
		m.finishErr(j, err)
		return
	}
	if !j.setRunning() {
		return
	}
	m.mu.Lock()
	m.active++
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.active--
		m.mu.Unlock()
	}()

	defer func() {
		if r := recover(); r != nil {
			m.finishErr(j, fmt.Errorf("panic: %v", r))
		}
	}()

	ctx := bench.WithProgress(j.ctx, func(ev bench.ProgressEvent) {
		m.cPhaseTicks.Inc()
		j.log.Publish(Event{Type: EventPhase, Phase: &PhaseRef{
			Key:       ev.Key,
			Iteration: ev.Iteration,
			Cycle:     ev.Cycle,
		}})
	})
	suite := m.suite(j.Spec.Scale)

	switch j.Kind {
	case KindRun:
		if len(j.Spec.Jobs) > 0 {
			m.runCoRun(ctx, suite, j)
			return
		}
		v, _ := bench.NamedVariant(j.Spec.Variant)
		res, err := suite.RunContext(ctx, j.Spec.Workload, j.Spec.Input,
			sim.PrefetcherKind(j.Spec.Prefetcher), v)
		if err != nil {
			m.finishErr(j, err)
			return
		}
		payload, err := json.Marshal(RunResult{
			Key:        j.Spec.key(),
			Scale:      j.Spec.Scale,
			ResultJSON: res.Export(),
		})
		if err != nil {
			m.finishErr(j, err)
			return
		}
		j.finish(StateDone, payload, "")
		m.cDone.Inc()
	case KindExperiment:
		if _, err := suite.PrewarmContext(ctx, suite.Plan(j.Experiment)); err != nil {
			m.finishErr(j, err)
			return
		}
		runner, ok := suite.Runner(j.Experiment)
		if !ok {
			m.finishErr(j, fmt.Errorf("unknown experiment %q", j.Experiment))
			return
		}
		table := runner() // all cache hits after the prewarm
		payload, err := json.Marshal(TableResult{
			Experiment: j.Experiment,
			Scale:      j.Spec.Scale,
			Table:      table,
		})
		if err != nil {
			m.finishErr(j, err)
			return
		}
		j.finish(StateDone, payload, "")
		m.cDone.Inc()
	default:
		m.finishErr(j, fmt.Errorf("unknown job kind %q", j.Kind))
	}
}

// runCoRun executes a multi-programmed co-run job: the job list is
// composed into one N-core app and simulated on the suite's machine
// with the coherence directory, a 2-bank shared LLC and (optionally)
// the cross-core prefetcher attached. Co-runs are bespoke — they bypass
// the suite's memoisation, like the bench co-run experiment — but the
// content-addressed job store still coalesces duplicate submissions
// onto one job, and the suite's audit/obs configuration applies.
func (m *Manager) runCoRun(ctx context.Context, suite *bench.Suite, j *Job) {
	jobs := make([]multicore.JobSpec, len(j.Spec.Jobs))
	for k, raw := range j.Spec.Jobs {
		js, err := multicore.ParseJob(raw)
		if err != nil { // normalize validated; defensive
			m.finishErr(j, err)
			return
		}
		jobs[k] = js
	}
	sc, _ := ParseScale(j.Spec.Scale)
	app, err := multicore.Compose(sc, jobs)
	if err != nil {
		m.finishErr(j, err)
		return
	}
	cfg := suite.Config
	cfg.Cores = len(jobs)
	cfg.Prefetcher = sim.PrefetcherKind(j.Spec.Prefetcher)
	cfg.Coherence = true
	cfg.LLCBanks = 2
	cfg.CrossCore = j.Spec.CrossCore
	cfg.Name = j.Spec.key()
	res, err := sim.RunContext(ctx, cfg, app)
	if err != nil {
		m.finishErr(j, err)
		return
	}
	payload, err := json.Marshal(RunResult{
		Key:        j.Spec.key(),
		Scale:      j.Spec.Scale,
		ResultJSON: res.Export(),
	})
	if err != nil {
		m.finishErr(j, err)
		return
	}
	j.finish(StateDone, payload, "")
	m.cDone.Inc()
}

// finishErr records a terminal failure, distinguishing cancellation
// (client disconnect, explicit cancel, timeout, shutdown) from real
// errors.
func (m *Manager) finishErr(j *Job, err error) {
	if bench.IsCancellation(err) {
		j.finish(StateCanceled, nil, err.Error())
		m.cCanceled.Inc()
		m.opts.Logf("job %s canceled: %v", j.ID, err)
		return
	}
	j.finish(StateFailed, nil, err.Error())
	m.cFailed.Inc()
	m.opts.Logf("job %s failed: %v", j.ID, err)
}

// RunResult is the payload of a completed run job: the bench run key
// plus the stamped result export — the same record a cmd/experiments
// -json dump contains for the same key.
type RunResult struct {
	Key   string `json:"key"`
	Scale string `json:"scale"`
	sim.ResultJSON
}

// TableResult is the payload of a completed experiment job.
type TableResult struct {
	Experiment string       `json:"experiment"`
	Scale      string       `json:"scale"`
	Table      *bench.Table `json:"table"`
}
