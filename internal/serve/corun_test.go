package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"rnrsim/internal/bench"
	"rnrsim/internal/coherence"
	"rnrsim/internal/multicore"
	"rnrsim/internal/sim"
)

// coRunSpec is the canonical 2-core co-run submission used across the
// serving tests: PageRank and spCG side by side with per-core RnR and
// the cross-core LLC prefetcher.
func coRunSpec() RunSpec {
	return RunSpec{
		Jobs:       []string{"pagerank.urand", "spcg.bbmat"},
		Prefetcher: string(sim.PFRnR),
		CrossCore:  true,
		Scale:      "test",
	}
}

// TestCoRunSpecValidation pins the submission-time rejections: every
// malformed co-run must fail normalize (and therefore answer 400 over
// the wire) instead of panicking a worker later.
func TestCoRunSpecValidation(t *testing.T) {
	overMax := make([]string, coherence.MaxCores+1)
	for i := range overMax {
		overMax[i] = "pagerank.urand"
	}
	bad := []struct {
		name   string
		mutate func(*RunSpec)
	}{
		{"jobs plus workload", func(sp *RunSpec) { sp.Workload = "pagerank"; sp.Input = "urand" }},
		{"over max cores", func(sp *RunSpec) { sp.Jobs = overMax }},
		{"malformed job", func(sp *RunSpec) { sp.Jobs = []string{"pagerankurand"} }},
		{"unknown workload", func(sp *RunSpec) { sp.Jobs = []string{"nope.urand"} }},
		{"unknown input", func(sp *RunSpec) { sp.Jobs = []string{"pagerank.bbmat"} }},
		{"non-plain variant", func(sp *RunSpec) { sp.Variant = "ideal" }},
		{"crosscore without jobs", func(sp *RunSpec) {
			sp.Jobs = nil
			sp.Workload, sp.Input = "pagerank", "urand"
		}},
	}
	for _, tc := range bad {
		sp := coRunSpec()
		tc.mutate(&sp)
		if err := sp.normalize("test"); err == nil {
			t.Errorf("%s: normalize accepted %+v", tc.name, sp)
		} else {
			t.Logf("%s: %v", tc.name, err)
		}
	}

	// The happy path normalizes, canonicalises separators and keys on
	// the job list, so "/" and "." submissions coalesce.
	dot, slash, mixed := coRunSpec(), coRunSpec(), coRunSpec()
	slash.Jobs = []string{"pagerank/urand", "spcg/bbmat"}
	mixed.Jobs = []string{"pagerank/urand", "spcg.bbmat"}
	if err := dot.normalize("test"); err != nil {
		t.Fatalf("canonical spec rejected: %v", err)
	}
	if err := slash.normalize("test"); err != nil {
		t.Fatalf("slash-separated spec rejected: %v", err)
	}
	if err := mixed.normalize("test"); err != nil {
		t.Fatalf("mixed-separator spec rejected: %v", err)
	}
	if RunJobID(dot) != RunJobID(slash) {
		t.Errorf("separator changed the content address: %q vs %q", dot.key(), slash.key())
	}
	if RunJobID(dot) != RunJobID(mixed) {
		t.Errorf("mixed separators changed the content address: %q vs %q", dot.key(), mixed.key())
	}
}

// TestHTTPCoRunOverMaxCores is the wire-level contract the issue calls
// out: a job list longer than the coherence directory supports answers
// HTTP 400, not a panic.
func TestHTTPCoRunOverMaxCores(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	sp := coRunSpec()
	sp.Jobs = make([]string, coherence.MaxCores+1)
	for i := range sp.Jobs {
		sp.Jobs[i] = "pagerank.urand"
	}
	resp := postJSON(t, ts.URL+"/v1/runs", sp)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over-max co-run status = %d, want 400", resp.StatusCode)
	}
}

// TestHTTPCoRunServedVsDirect runs the canonical co-run through the
// full HTTP stack and asserts the served result is identical — state
// hash, per-core sub-hashes, coherence and cross-core sections — to a
// direct sim.Run of the same composed app on the same machine.
func TestHTTPCoRunServedVsDirect(t *testing.T) {
	ts, m := newTestServer(t, Options{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/runs?wait=1", coRunSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	v := decodeView(t, resp)
	if v.State != StateDone {
		t.Fatalf("job state = %q (%s)", v.State, v.Error)
	}
	var served RunResult
	if err := json.Unmarshal(v.Result, &served); err != nil {
		t.Fatalf("decode run result: %v", err)
	}

	sp := coRunSpec()
	if err := sp.normalize("test"); err != nil {
		t.Fatal(err)
	}
	jobs := make([]multicore.JobSpec, len(sp.Jobs))
	for k, raw := range sp.Jobs {
		j, err := multicore.ParseJob(raw)
		if err != nil {
			t.Fatal(err)
		}
		jobs[k] = j
	}
	sc, _ := ParseScale(sp.Scale)
	app, err := multicore.Compose(sc, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.suite(sp.Scale).Config
	cfg.Cores = len(jobs)
	cfg.Prefetcher = sim.PrefetcherKind(sp.Prefetcher)
	cfg.Coherence = true
	cfg.LLCBanks = 2
	cfg.CrossCore = sp.CrossCore
	cfg.Name = sp.key()
	direct, err := sim.Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}

	if want := fmt.Sprintf("%016x", direct.StateHash); served.StateHash != want {
		t.Errorf("served state hash %s != direct %s", served.StateHash, want)
	}
	if len(served.CoreStateHashes) != len(jobs) {
		t.Fatalf("served %d core hashes, want %d", len(served.CoreStateHashes), len(jobs))
	}
	for k, h := range direct.CoreHashes {
		if want := fmt.Sprintf("%016x", h); served.CoreStateHashes[k] != want {
			t.Errorf("core %d: served sub-hash %s != direct %s", k, served.CoreStateHashes[k], want)
		}
	}
	if served.Coherence == nil || served.CrossCore == nil {
		t.Fatalf("served co-run missing coherence/crosscore sections: %+v", served.ResultJSON)
	}
	if *served.Coherence != *direct.Coherence || *served.CrossCore != *direct.CrossCore {
		t.Errorf("served stat sections diverged from direct run")
	}
	if served.Key != sp.key() {
		t.Errorf("served key %q != spec key %q", served.Key, sp.key())
	}
}

// TestHTTPCoRunExperimentServedVsDirect runs the whole corun bench
// experiment as a daemon job and asserts the served table equals a
// direct assembly on an equivalent suite — the served/direct half of
// the experiment's determinism contract (the -j half lives in
// internal/bench).
func TestHTTPCoRunExperimentServedVsDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the co-run grid twice")
	}
	ts, m := newTestServer(t, Options{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/experiments/corun?wait=1", RunSpec{Scale: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	v := decodeView(t, resp)
	if v.State != StateDone {
		t.Fatalf("experiment state = %q (%s)", v.State, v.Error)
	}
	var served TableResult
	if err := json.Unmarshal(v.Result, &served); err != nil {
		t.Fatalf("decode table result: %v", err)
	}

	direct := bench.NewSuite(m.suite("test").Scale)
	direct.Config = m.suite("test").Config
	want := direct.CoRun()
	if served.Table == nil || !reflect.DeepEqual(served.Table.Rows, want.Rows) {
		t.Errorf("served corun table diverged from direct assembly:\nserved %+v\ndirect %+v",
			served.Table, want)
	}
}
