package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"rnrsim/internal/sim"
)

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// TestRetryAfterJitterBounds pins the ±25% jitter contract on the
// queue-full backpressure hint: every sample lands inside the band,
// the band is actually used (not a fixed constant in disguise), and
// sub-second bases clamp up to one second.
func TestRetryAfterJitterBounds(t *testing.T) {
	const base = 8 * time.Second
	lo := time.Duration(float64(base) * (1 - RetryAfterJitterFrac))
	hi := time.Duration(float64(base) * (1 + RetryAfterJitterFrac))
	var min, max time.Duration = hi, lo
	for i := 0; i < 1000; i++ {
		d := JitterDuration(base, RetryAfterJitterFrac)
		if d < lo || d > hi {
			t.Fatalf("sample %d: %v outside [%v, %v]", i, d, lo, hi)
		}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	// 1000 uniform samples span most of the band; staying inside the
	// middle half has probability 2^-1000-ish — a fixed constant fails.
	if min > lo+(hi-lo)/4 || max < hi-(hi-lo)/4 {
		t.Errorf("samples span [%v, %v]: jitter is not spreading over [%v, %v]", min, max, lo, hi)
	}
	if d := JitterDuration(200*time.Millisecond, RetryAfterJitterFrac); d < time.Second {
		t.Errorf("sub-second base jittered to %v, want >= 1s clamp", d)
	}
	if d := JitterDuration(0, RetryAfterJitterFrac); d != time.Second {
		t.Errorf("zero base jittered to %v, want 1s", d)
	}

	m := newTestManager(t, Options{Workers: 1, RetryAfter: base})
	for i := 0; i < 100; i++ {
		if d := m.RetryAfterJittered(); d < lo || d > hi {
			t.Fatalf("RetryAfterJittered = %v outside [%v, %v]", d, lo, hi)
		}
	}
}

// TestSSEResumeLastEventID is the reconnect regression: a subscriber
// that drops mid-stream and reconnects with Last-Event-ID replays only
// the events it missed — no duplicates, no gap, same terminal event.
func TestSSEResumeLastEventID(t *testing.T) {
	ts, m := newTestServer(t, Options{Workers: 1})
	spec := testSpec()
	spec.Detach = true // the mid-stream disconnect must not abandon the job
	sub := postJSON(t, ts.URL+"/v1/runs", spec)
	v := decodeView(t, sub)

	// First connection: read a couple of frames, then drop.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/runs/"+v.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	first := readSSE(t, resp.Body, 2)
	cancel()
	resp.Body.Close()
	if len(first) < 2 {
		t.Fatalf("only %d frames before disconnect", len(first))
	}
	lastSeen := first[len(first)-1].id

	j, err := m.Job(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}

	// Reconnect with Last-Event-ID: replay starts exactly after it.
	req2, _ := http.NewRequest("GET", ts.URL+"/v1/runs/"+v.ID+"/events", nil)
	req2.Header.Set("Last-Event-ID", strconv.Itoa(lastSeen))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	resumed := readSSE(t, resp2.Body, 1<<20)
	if len(resumed) == 0 {
		t.Fatal("resumed stream replayed nothing")
	}
	if got := resumed[0].id; got != lastSeen+1 {
		t.Errorf("resume replay starts at seq %d, want %d (missed events only)", got, lastSeen+1)
	}
	for i, f := range resumed {
		if f.id != lastSeen+1+i {
			t.Fatalf("resumed frame %d has seq %d — gap or duplicate", i, f.id)
		}
	}
	if last := resumed[len(resumed)-1]; last.data.State != StateDone {
		t.Errorf("resumed stream ends with %+v, want done", last.data)
	}

	// A full replay (no header) still returns everything for comparison:
	// resumed history + seen prefix must equal the whole stream.
	full, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer full.Body.Close()
	all := readSSE(t, full.Body, 1<<20)
	if len(all) != lastSeen+1+len(resumed) {
		t.Errorf("full stream %d frames, seen %d + resumed %d", len(all), lastSeen+1, len(resumed))
	}

	// The query-parameter fallback behaves like the header.
	qp, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events?last_event_id=" + strconv.Itoa(lastSeen))
	if err != nil {
		t.Fatal(err)
	}
	defer qp.Body.Close()
	qpFrames := readSSE(t, qp.Body, 1<<20)
	if len(qpFrames) != len(resumed) || qpFrames[0].id != lastSeen+1 {
		t.Errorf("query-param resume = %d frames from %d, want %d from %d",
			len(qpFrames), qpFrames[0].id, len(resumed), lastSeen+1)
	}
}

// TestJobLease covers the worker-mode lease contract end to end: a
// leased job survives while renewed, a lapsed lease cancels it, and
// the HTTP renew endpoint distinguishes leased/unleased/unknown.
func TestJobLease(t *testing.T) {
	ts, m := newTestServer(t, Options{Workers: 1})
	release := holdRuns(t, m, "test")

	// Occupy the only worker so the leased job stays observable in the
	// queue (a test-scale run would otherwise finish inside the lease).
	blocker := testSpec()
	jb, _, err := m.SubmitRun(blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, jb, StateRunning, 10*time.Second)

	leased := testSpec()
	leased.Prefetcher = "nextline"
	leased.LeaseSeconds = 1
	jl, fresh, err := m.SubmitRun(leased)
	if err != nil || !fresh {
		t.Fatalf("leased submit = (fresh=%v, %v)", fresh, err)
	}

	// Renewals hold the job alive past its nominal TTL...
	for i := 0; i < 4; i++ {
		time.Sleep(400 * time.Millisecond)
		resp, err := http.Post(ts.URL+"/v1/runs/"+jl.ID+"/lease", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("renew %d status = %d, want 200", i, resp.StatusCode)
		}
	}
	if st := jl.State(); st.Terminal() {
		t.Fatalf("renewed job reached %q before its lease lapsed", st)
	}

	// ...and a lapsed lease cancels it.
	select {
	case <-jl.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("unrenewed leased job never expired")
	}
	if st := jl.State(); st != StateCanceled {
		t.Fatalf("lapsed-lease state = %q, want canceled", st)
	}
	if msg := jl.View(false).Error; msg != "lease expired" {
		t.Errorf("lapsed-lease error = %q", msg)
	}

	// Renewing an unleased job is a 409; an unknown address a 404.
	resp, err := http.Post(ts.URL+"/v1/runs/"+jb.ID+"/lease", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("unleased renew status = %d, want 409", resp.StatusCode)
	}
	r404, err := http.Post(ts.URL+"/v1/runs/rdeadbeef/lease", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown renew status = %d, want 404", r404.StatusCode)
	}

	// Negative leases are rejected at submission.
	bad := testSpec()
	bad.LeaseSeconds = -1
	if _, _, err := m.SubmitRun(bad); err == nil {
		t.Error("negative lease_seconds accepted")
	}

	release()
	<-jb.Done()
}

// TestWorkerStatus checks the heartbeat responder payload.
func TestWorkerStatus(t *testing.T) {
	ts, m := newTestServer(t, Options{Workers: 1, WorkerID: "w-test", QueueDepth: 3})
	postJSON(t, ts.URL+"/v1/runs?wait=1", testSpec()).Body.Close()

	resp, err := http.Get(ts.URL + "/v1/worker/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st WorkerStatus
	if err := jsonDecode(resp.Body, &st); err != nil {
		t.Fatal(err)
	}
	if st.WorkerID != "w-test" || st.Draining || st.QueueCap != 3 {
		t.Errorf("status = %+v", st)
	}
	if st.JobsDone != 1 {
		t.Errorf("jobs_done = %d, want 1", st.JobsDone)
	}
	if st.SchemaVersion != sim.ExportSchemaVersion {
		t.Errorf("schema = %q", st.SchemaVersion)
	}

	// Draining flips in the status payload (the coordinator treats a
	// draining worker as leaving).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(ts.URL + "/v1/worker/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st2 WorkerStatus
	if err := jsonDecode(resp2.Body, &st2); err != nil {
		t.Fatal(err)
	}
	if !st2.Draining {
		t.Error("status after Shutdown not draining")
	}
}
