package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"rnrsim/internal/sim"
	"rnrsim/internal/telemetry"
)

// newTestServer spins a full HTTP stack (httptest server → Server →
// Manager) at test scale.
func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Manager) {
	t.Helper()
	m := newTestManager(t, opts)
	ts := httptest.NewServer(NewServer(m))
	t.Cleanup(ts.Close)
	return ts, m
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeView(t *testing.T, resp *http.Response) JobView {
	t.Helper()
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode job view: %v", err)
	}
	return v
}

// TestHTTPSubmitWaitAndFetch drives the happy path over the wire:
// POST ?wait=1 blocks to completion, and both the submit response and
// a later GET carry the stamped result.
func TestHTTPSubmitWaitAndFetch(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	resp := postJSON(t, ts.URL+"/v1/runs?wait=1", testSpec())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	v := decodeView(t, resp)
	if v.State != StateDone || v.ID != RunJobID(testSpec()) {
		t.Fatalf("view = {state %q, id %q}, want done/%q", v.State, v.ID, RunJobID(testSpec()))
	}
	if v.SchemaVersion != sim.ExportSchemaVersion || v.GeneratedAt == "" {
		t.Errorf("view envelope = %q/%q", v.SchemaVersion, v.GeneratedAt)
	}
	if len(v.Result) == 0 {
		t.Fatal("wait=1 response has no result payload")
	}

	// GET by id returns the cached result.
	get, err := http.Get(ts.URL + "/v1/runs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	gv := decodeView(t, get)
	if gv.State != StateDone || len(gv.Result) == 0 {
		t.Errorf("GET view = {state %q, result %d bytes}", gv.State, len(gv.Result))
	}

	// Listing includes the job but omits the payload.
	list, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer list.Body.Close()
	var doc struct {
		SchemaVersion string    `json:"schema_version"`
		Jobs          []JobView `json:"jobs"`
	}
	if err := json.NewDecoder(list.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != sim.ExportSchemaVersion || len(doc.Jobs) != 1 || len(doc.Jobs[0].Result) != 0 {
		t.Errorf("listing = {schema %q, %d jobs}", doc.SchemaVersion, len(doc.Jobs))
	}

	// Unknown id → 404; bad spec → 400.
	if r404, _ := http.Get(ts.URL + "/v1/runs/rdeadbeef"); r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id status = %d, want 404", r404.StatusCode)
	}
	bad := postJSON(t, ts.URL+"/v1/runs", RunSpec{Workload: "nope", Input: "x", Scale: "test"})
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec status = %d, want 400", bad.StatusCode)
	}
	bad.Body.Close()
}

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	id    int
	event string
	data  Event
}

// readSSE parses frames until the stream ends or limit frames arrive.
func readSSE(t *testing.T, r io.Reader, limit int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			frames = append(frames, cur)
			if len(frames) >= limit {
				return frames
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &cur.id)
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
	return frames
}

// TestHTTPSSEOrdering subscribes to a job's event stream and checks
// the lifecycle ordering queued → running → phase* → done with
// strictly increasing sequence numbers and monotonic iterations.
func TestHTTPSSEOrdering(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	sub := postJSON(t, ts.URL+"/v1/runs", testSpec())
	if sub.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", sub.StatusCode)
	}
	v := decodeView(t, sub)

	resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	frames := readSSE(t, resp.Body, 1<<20) // read to stream end
	if len(frames) < 3 {
		t.Fatalf("only %d frames", len(frames))
	}

	if frames[0].data.State != StateQueued || frames[0].event != EventState {
		t.Errorf("first frame = %+v, want queued state", frames[0])
	}
	last := frames[len(frames)-1]
	if last.data.State != StateDone {
		t.Errorf("last frame = %+v, want done state", last)
	}
	sawRunning, phases := false, 0
	lastIter := -1
	for i, f := range frames {
		if f.id != i || f.data.Seq != i {
			t.Fatalf("frame %d has id %d / seq %d — not gapless", i, f.id, f.data.Seq)
		}
		switch f.event {
		case EventState:
			if f.data.State == StateRunning {
				if phases > 0 {
					t.Error("phase tick before running state")
				}
				sawRunning = true
			}
		case EventPhase:
			if !sawRunning {
				t.Error("phase tick before running state")
			}
			if f.data.Phase == nil || f.data.Phase.Iteration <= lastIter {
				t.Fatalf("phase %d not monotonic: %+v (last %d)", i, f.data.Phase, lastIter)
			}
			lastIter = f.data.Phase.Iteration
			phases++
		}
	}
	if !sawRunning || phases == 0 {
		t.Errorf("stream had running=%v, %d phase ticks", sawRunning, phases)
	}

	// A late subscriber to the finished job replays the history and the
	// stream terminates immediately.
	late, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Body.Close()
	replay := readSSE(t, late.Body, 1<<20)
	if len(replay) != len(frames) {
		t.Errorf("replay = %d frames, live = %d", len(replay), len(frames))
	}
}

// TestHTTPClientDisconnectCancels is the abandonment acceptance test
// over the wire: kill the only SSE subscriber of a running job and the
// simulation is cancelled underneath.
func TestHTTPClientDisconnectCancels(t *testing.T) {
	ts, m := newTestServer(t, Options{Workers: 1})
	sub := postJSON(t, ts.URL+"/v1/runs", testSpec())
	v := decodeView(t, sub)
	j, err := m.Job(v.ID)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/runs/"+v.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	waitPhase(t, j, 10*time.Second) // sim demonstrably ticking
	cancel()                        // client goes away

	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("job survived its last watcher")
	}
	if st := j.State(); st != StateCanceled {
		t.Fatalf("state = %q, want canceled", st)
	}
	if got := counterValue(m.Registry(), CounterJobsAbandoned); got != 1 {
		t.Errorf("%s = %d, want 1", CounterJobsAbandoned, got)
	}
}

// TestHTTPQueueFull exercises 429 + Retry-After over the wire.
func TestHTTPQueueFull(t *testing.T) {
	ts, m := newTestServer(t, Options{Workers: 1, QueueDepth: 1, RetryAfter: 7 * time.Second})
	holdRuns(t, m, "test")
	r1 := postJSON(t, ts.URL+"/v1/runs", testSpec())
	v1 := decodeView(t, r1)
	j1, err := m.Job(v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateRunning, 10*time.Second)

	spec2 := testSpec()
	spec2.Prefetcher = "nextline"
	r2 := postJSON(t, ts.URL+"/v1/runs", spec2)
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status = %d, want 202", r2.StatusCode)
	}
	r2.Body.Close()

	spec3 := testSpec()
	spec3.Prefetcher = "bingo"
	r3 := postJSON(t, ts.URL+"/v1/runs", spec3)
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status = %d, want 429", r3.StatusCode)
	}
	// The hint is jittered ±25% around the 7s base: any integer second
	// in [5.25, 8.75] truncates into {5..8}.
	ra, err := strconv.Atoi(r3.Header.Get("Retry-After"))
	if err != nil || ra < 5 || ra > 8 {
		t.Errorf("Retry-After = %q, want an int in [5, 8] (7s base ±25%%)", r3.Header.Get("Retry-After"))
	}
}

// TestHTTPCancel cancels via DELETE.
func TestHTTPCancel(t *testing.T) {
	ts, m := newTestServer(t, Options{Workers: 1})
	sub := postJSON(t, ts.URL+"/v1/runs", testSpec())
	v := decodeView(t, sub)
	j, _ := m.Job(v.ID)
	waitState(t, j, StateRunning, 10*time.Second)

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/runs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dv := decodeView(t, resp)
	<-j.Done()
	if st := j.State(); st != StateCanceled {
		t.Fatalf("state = %q after DELETE (view state %q), want canceled", st, dv.State)
	}
}

// TestHTTPExperiments covers the registry listing and a whole-table
// experiment job over the wire.
func TestHTTPExperiments(t *testing.T) {
	ts, _ := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		SchemaVersion string           `json:"schema_version"`
		DefaultScale  string           `json:"default_scale"`
		Scales        []string         `json:"scales"`
		Experiments   []ExperimentInfo `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != sim.ExportSchemaVersion || doc.DefaultScale != "test" {
		t.Errorf("doc envelope = %q/%q", doc.SchemaVersion, doc.DefaultScale)
	}
	byID := map[string]ExperimentInfo{}
	for _, e := range doc.Experiments {
		byID[e.ID] = e
	}
	if e, ok := byID["fig6"]; !ok || e.Title == "" || e.Runs == 0 {
		t.Errorf("fig6 entry = %+v", e)
	}
	if e, ok := byID["tableII"]; !ok || e.Runs != 0 {
		t.Errorf("tableII entry = %+v (static tables plan no runs)", e)
	}

	// Run the static tableII as a job, waiting inline.
	er := postJSON(t, ts.URL+"/v1/experiments/tableII?wait=1", RunSpec{Scale: "test"})
	if er.StatusCode != http.StatusOK {
		t.Fatalf("experiment status = %d, want 200", er.StatusCode)
	}
	ev := decodeView(t, er)
	if ev.State != StateDone || ev.Kind != KindExperiment || ev.Experiment != "tableII" {
		t.Fatalf("experiment view = %+v", ev)
	}
	var table TableResult
	if err := json.Unmarshal(ev.Result, &table); err != nil || table.Table == nil {
		t.Fatalf("table payload: %v", err)
	}

	if bad := postJSON(t, ts.URL+"/v1/experiments/nope", RunSpec{}); bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown experiment status = %d, want 400", bad.StatusCode)
	}
}

// TestHTTPMetrics checks the Prometheus text exposition.
func TestHTTPMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts, _ := newTestServer(t, Options{Workers: 1, Registry: reg})
	postJSON(t, ts.URL+"/v1/runs?wait=1", testSpec()).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)

	for _, want := range []string{
		"# TYPE rnrd_jobs_submitted counter\nrnrd_jobs_submitted 1\n",
		"# TYPE rnrd_jobs_done counter\nrnrd_jobs_done 1\n",
		"# TYPE rnrd_queue_depth gauge\nrnrd_queue_depth 0\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	// telemetry.Default counters (the simulator's own) are merged in.
	if !strings.Contains(text, "sim_runs_cancelled") {
		t.Errorf("metrics missing merged telemetry.Default instruments\n%s", text)
	}
	// Every line is either a comment or `name value`.
	lineRE := regexp.MustCompile(`^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge))$|^([a-zA-Z_:][a-zA-Z0-9_:]*) (-?[0-9.e+-]+)$`)
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if !lineRE.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestHTTPHealthz flips /healthz from 200 to 503 across shutdown.
func TestHTTPHealthz(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewManager(Options{DefaultScale: "test", Workers: 1, Registry: reg, Logf: t.Logf})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()

	ok, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", ok.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	drained, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	drained.Body.Close()
	if drained.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", drained.StatusCode)
	}
	// Submissions over the wire are refused too.
	sub := postJSON(t, ts.URL+"/v1/runs", testSpec())
	sub.Body.Close()
	if sub.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", sub.StatusCode)
	}
}
