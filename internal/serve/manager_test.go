package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"rnrsim/internal/apps"
	"rnrsim/internal/bench"
	"rnrsim/internal/sim"
	"rnrsim/internal/telemetry"
)

// newTestManager builds a manager on a private telemetry registry
// (counter assertions must not see other tests' jobs) at test scale,
// and tears it down on cleanup.
func newTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	if opts.DefaultScale == "" {
		opts.DefaultScale = "test"
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	m := NewManager(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := m.Shutdown(ctx); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
	})
	return m
}

// testSpec is the canonical fast test simulation (~0.2s at test scale).
func testSpec() RunSpec {
	return RunSpec{Workload: "pagerank", Input: "urand", Prefetcher: "none", Scale: "test"}
}

// holdRuns blocks every fresh simulation at its start until the
// returned release func is called. The queue-full tests need the
// worker provably occupied while they fill the queue; with the
// event-driven core a test-scale run finishes in milliseconds, so
// racing the real sim duration is no longer reliable. Must be called
// before any job is submitted at the scale (the worker reads
// Suite.Progress without locking).
func holdRuns(t *testing.T, m *Manager, scale string) (release func()) {
	t.Helper()
	s := m.suite(scale)
	progress := s.Progress
	gate := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	s.Progress = func(key string) {
		progress(key)
		<-gate
	}
	t.Cleanup(release) // runs before the manager's Shutdown cleanup
	return release
}

func waitState(t *testing.T, j *Job, want JobState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := j.State()
		if st == want {
			return
		}
		if st.Terminal() {
			t.Fatalf("job reached terminal state %q while waiting for %q (err %q)", st, want, j.View(false).Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job never reached state %q (stuck at %q)", want, j.State())
}

func counterValue(r *telemetry.Registry, name string) uint64 {
	return r.Counter(name).Load()
}

// waitPhase blocks until the job's event stream carries a phase tick —
// proof the simulator tick loop is live (StateRunning alone fires
// before the workload finishes building).
func waitPhase(t *testing.T, j *Job, timeout time.Duration) {
	t.Helper()
	history, live, cancel := j.log.Subscribe()
	defer cancel()
	for _, ev := range history {
		if ev.Type == EventPhase {
			return
		}
	}
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				t.Fatalf("job finished (state %q) before any phase tick", j.State())
			}
			if ev.Type == EventPhase {
				return
			}
		case <-deadline:
			t.Fatal("no phase tick observed")
		}
	}
}

// TestJobLifecycle drives one run job queued → running → done and
// checks the counters, the stamped view and the result payload.
func TestJobLifecycle(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	j, fresh, err := m.SubmitRun(testSpec())
	if err != nil || !fresh {
		t.Fatalf("SubmitRun = (%v, fresh=%v), want fresh job", err, fresh)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}
	if st := j.State(); st != StateDone {
		t.Fatalf("state = %q, want done (err %q)", st, j.View(false).Error)
	}
	reg := m.Registry()
	if got := counterValue(reg, CounterJobsSubmitted); got != 1 {
		t.Errorf("%s = %d, want 1", CounterJobsSubmitted, got)
	}
	if got := counterValue(reg, CounterJobsDone); got != 1 {
		t.Errorf("%s = %d, want 1", CounterJobsDone, got)
	}
	if got := counterValue(reg, CounterPhaseTicks); got == 0 {
		t.Errorf("%s = 0, want per-iteration progress ticks", CounterPhaseTicks)
	}

	v := j.View(true)
	if v.SchemaVersion != sim.ExportSchemaVersion {
		t.Errorf("view schema = %q, want %q", v.SchemaVersion, sim.ExportSchemaVersion)
	}
	if _, err := time.Parse(time.RFC3339, v.GeneratedAt); err != nil {
		t.Errorf("view generated_at %q: %v", v.GeneratedAt, err)
	}
	var res RunResult
	if err := json.Unmarshal(v.Result, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	wantKey := bench.RunKey("pagerank", "urand", sim.PFNone, "")
	if res.Key != wantKey || res.Scale != "test" {
		t.Errorf("result key/scale = %q/%q, want %q/test", res.Key, res.Scale, wantKey)
	}
	if res.Cycles == 0 || res.SchemaVersion != sim.ExportSchemaVersion {
		t.Errorf("result body not a stamped export: cycles=%d schema=%q", res.Cycles, res.SchemaVersion)
	}
}

// TestDuplicateSubmissionCoalesces is the content-addressing
// acceptance check: two submissions of the same spec share one job and
// one fresh simulation, and the served result is byte-identical
// (modulo the envelope timestamp) to what the bench engine exports
// directly for the same key.
func TestDuplicateSubmissionCoalesces(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2})
	spec := testSpec()
	j1, fresh1, err1 := m.SubmitRun(spec)
	j2, fresh2, err2 := m.SubmitRun(spec)
	if err1 != nil || err2 != nil {
		t.Fatalf("submit: %v / %v", err1, err2)
	}
	if !fresh1 || fresh2 {
		t.Errorf("fresh flags = %v,%v; want true,false", fresh1, fresh2)
	}
	if j1 != j2 || j1.ID != RunJobID(spec) {
		t.Fatalf("submissions did not coalesce: %q vs %q", j1.ID, j2.ID)
	}
	<-j1.Done()
	if st := j1.State(); st != StateDone {
		t.Fatalf("state = %q, want done (err %q)", st, j1.View(false).Error)
	}
	if n := m.FreshRuns(); n != 1 {
		t.Errorf("FreshRuns = %d, want exactly 1 (singleflight)", n)
	}
	if got := counterValue(m.Registry(), CounterJobsCoalesced); got != 1 {
		t.Errorf("%s = %d, want 1", CounterJobsCoalesced, got)
	}

	// A third submission after completion is a pure cache hit.
	j3, fresh3, err := m.SubmitRun(spec)
	if err != nil || fresh3 || j3 != j1 {
		t.Fatalf("post-completion submit = (%p, fresh=%v, %v), want cached job %p", j3, fresh3, err, j1)
	}

	// Served result == direct engine result, modulo generated_at.
	var served RunResult
	if err := json.Unmarshal(j1.View(true).Result, &served); err != nil {
		t.Fatalf("served payload: %v", err)
	}
	direct := bench.NewSuite(apps.ScaleTest).
		Run("pagerank", "urand", sim.PFNone, bench.Variant{}).Export()
	servedBody := served.ResultJSON
	servedBody.GeneratedAt = ""
	direct.GeneratedAt = ""
	sb, _ := json.Marshal(servedBody)
	db, _ := json.Marshal(direct)
	if string(sb) != string(db) {
		t.Errorf("served result differs from direct engine export\nserved: %s\ndirect: %s", sb, db)
	}
}

// TestCancelMidRun cancels a running job and checks the cancellation
// reaches the simulator tick loop (observable through the
// telemetry.Default runs-cancelled counter) without poisoning the
// result cache.
func TestCancelMidRun(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	before := telemetry.Default.Counter(sim.CounterRunsCancelled).Load()

	j, _, err := m.SubmitRun(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitPhase(t, j, 10*time.Second) // the tick loop is demonstrably live
	j.Cancel("test cancel")
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job did not finish")
	}
	if st := j.State(); st != StateCanceled {
		t.Fatalf("state = %q, want canceled", st)
	}
	if after := telemetry.Default.Counter(sim.CounterRunsCancelled).Load(); after <= before {
		t.Errorf("%s did not increase (%d → %d): cancellation never reached the tick loop",
			sim.CounterRunsCancelled, before, after)
	}
	if got := counterValue(m.Registry(), CounterJobsCanceled); got != 1 {
		t.Errorf("%s = %d, want 1", CounterJobsCanceled, got)
	}

	// The cancelled generation must not wedge its content address: a
	// resubmission replaces it and completes.
	j2, fresh, err := m.SubmitRun(testSpec())
	if err != nil || !fresh {
		t.Fatalf("resubmit after cancel = (fresh=%v, %v), want fresh", fresh, err)
	}
	if j2 == j {
		t.Fatal("resubmission returned the dead generation")
	}
	<-j2.Done()
	if st := j2.State(); st != StateDone {
		t.Fatalf("resubmitted job state = %q, want done (err %q)", st, j2.View(false).Error)
	}
}

// TestAbandonment checks watcher bookkeeping: when the last watcher of
// a non-detached running job disconnects the job is cancelled, while a
// detached job survives the same sequence.
func TestAbandonment(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2})

	j, _, err := m.SubmitRun(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	release := m.Watch(j)
	waitState(t, j, StateRunning, 10*time.Second)
	release()
	release() // idempotent: second call must not double-decrement
	<-j.Done()
	if st := j.State(); st != StateCanceled {
		t.Fatalf("abandoned job state = %q, want canceled", st)
	}
	if got := counterValue(m.Registry(), CounterJobsAbandoned); got != 1 {
		t.Errorf("%s = %d, want 1", CounterJobsAbandoned, got)
	}

	spec := testSpec()
	spec.Prefetcher = "nextline" // distinct content address
	spec.Detach = true
	jd, _, err := m.SubmitRun(spec)
	if err != nil {
		t.Fatal(err)
	}
	rel2 := m.Watch(jd)
	waitState(t, jd, StateRunning, 10*time.Second)
	rel2()
	<-jd.Done()
	if st := jd.State(); st != StateDone {
		t.Fatalf("detached job state = %q, want done (err %q)", st, jd.View(false).Error)
	}
}

// TestQueueFullRejects fills a Workers=1/QueueDepth=1 manager and
// checks the third submission is rejected with ErrQueueFull.
func TestQueueFullRejects(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1, QueueDepth: 1})
	holdRuns(t, m, "test")

	j1, _, err := m.SubmitRun(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j1, StateRunning, 10*time.Second) // queue is empty again

	spec2 := testSpec()
	spec2.Prefetcher = "nextline"
	if _, _, err := m.SubmitRun(spec2); err != nil {
		t.Fatalf("second submit should queue: %v", err)
	}

	spec3 := testSpec()
	spec3.Prefetcher = "bingo"
	_, _, err = m.SubmitRun(spec3)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	if got := counterValue(m.Registry(), CounterQueueRejects); got != 1 {
		t.Errorf("%s = %d, want 1", CounterQueueRejects, got)
	}
	// The rejected spec is not registered under its content address.
	if _, err := m.Job(RunJobID(spec3)); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("rejected job is registered: err = %v", err)
	}
}

// TestShutdownDrains submits a job and shuts down: Shutdown must wait
// for it, and later submissions must see ErrDraining.
func TestShutdownDrains(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewManager(Options{DefaultScale: "test", Workers: 1, Registry: reg, Logf: t.Logf})
	j, _, err := m.SubmitRun(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := j.State(); st != StateDone {
		t.Fatalf("drained job state = %q, want done (err %q)", st, j.View(false).Error)
	}
	if _, _, err := m.SubmitRun(testSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after shutdown err = %v, want ErrDraining", err)
	}
	if !m.Draining() {
		t.Error("Draining() = false after Shutdown")
	}
	// Idempotent.
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestShutdownDeadlineCancels shuts down with an expired context: the
// in-flight job must be cancelled rather than waited for.
func TestShutdownDeadlineCancels(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewManager(Options{DefaultScale: "test", Workers: 1, Registry: reg, Logf: t.Logf})
	j, _, err := m.SubmitRun(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning, 10*time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: drain must cut over to cancellation
	if err := m.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown err = %v, want context.Canceled", err)
	}
	if st := j.State(); st != StateCanceled {
		t.Fatalf("job state = %q, want canceled", st)
	}
}

// TestExperimentJob runs a whole-table experiment job end to end.
// tableII is static (plans no simulations), so this exercises the
// experiment path without long runs; fig1 exercises prewarm + progress.
func TestExperimentJob(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	j, fresh, err := m.SubmitExperiment("tableII", RunSpec{Scale: "test"})
	if err != nil || !fresh {
		t.Fatalf("SubmitExperiment = (fresh=%v, %v)", fresh, err)
	}
	if j.ID != ExperimentJobID("test", "tableII") {
		t.Errorf("job ID = %q, want content address", j.ID)
	}
	<-j.Done()
	if st := j.State(); st != StateDone {
		t.Fatalf("state = %q, want done (err %q)", st, j.View(false).Error)
	}
	var res TableResult
	if err := json.Unmarshal(j.View(true).Result, &res); err != nil {
		t.Fatalf("payload: %v", err)
	}
	if res.Experiment != "tableII" || res.Table == nil || len(res.Table.Rows) == 0 {
		t.Errorf("table result = %+v, want populated tableII", res)
	}

	if _, _, err := m.SubmitExperiment("no-such-experiment", RunSpec{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestSubmitValidation rejects malformed specs at submission time.
func TestSubmitValidation(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	bad := []RunSpec{
		{Workload: "nope", Input: "urand", Scale: "test"},
		{Workload: "pagerank", Input: "nope", Scale: "test"},
		{Workload: "pagerank", Input: "urand", Prefetcher: "nope", Scale: "test"},
		{Workload: "pagerank", Input: "urand", Variant: "nope", Scale: "test"},
		{Workload: "pagerank", Input: "urand", Scale: "nope"},
	}
	for _, spec := range bad {
		if _, _, err := m.SubmitRun(spec); err == nil {
			t.Errorf("spec %+v accepted, want validation error", spec)
		}
	}
	if got := counterValue(m.Registry(), CounterJobsSubmitted); got != 0 {
		t.Errorf("%s = %d after rejected specs, want 0", CounterJobsSubmitted, got)
	}
}
