// Package serve is the experiment-serving layer: a long-lived daemon
// front-end (cmd/rnrd) over the parallel evaluation engine in
// internal/bench. It turns one-shot CLI simulations into a job service:
//
//   - POST /v1/runs submits a {workload, input, prefetcher, variant,
//     scale} simulation and returns a content-addressed job ID derived
//     from the bench memoisation key, so duplicate submissions coalesce
//     onto one job and, underneath, one singleflight cache entry.
//   - GET /v1/runs/{id} reports status and (when done) the stamped
//     result JSON; /v1/runs/{id}/events streams progress over SSE.
//   - POST /v1/experiments/{id} runs a whole paper artefact (a bench
//     table) as a job.
//
// Robustness is the design center: the job queue is bounded (full →
// 429 + Retry-After), every job carries a context with an optional
// timeout, client disconnect cancels abandoned jobs all the way down
// into the simulator tick loop, and shutdown drains in-flight work.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"slices"
	"strings"
	"sync"
	"time"

	"rnrsim/internal/apps"
	"rnrsim/internal/bench"
	"rnrsim/internal/coherence"
	"rnrsim/internal/multicore"
	"rnrsim/internal/sim"
)

// JobState is the lifecycle of a job. Transitions:
//
//	queued → running → done
//	                 → failed
//	queued|running   → canceled
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job kinds.
const (
	KindRun        = "run"
	KindExperiment = "experiment"
)

// RunSpec is the client-visible description of one simulation.
type RunSpec struct {
	Workload   string `json:"workload"`
	Input      string `json:"input"`
	Prefetcher string `json:"prefetcher"`
	// Variant is a stable variant name (see bench.NamedVariant):
	// "" or "plain", "ideal", "ctxsw", "recordall", "llcdest",
	// "ctl-*", "winN".
	Variant string `json:"variant,omitempty"`
	// Scale is "test", "bench" or "large"; empty uses the daemon's
	// default.
	Scale string `json:"scale,omitempty"`
	// Jobs, when non-empty, makes the submission a multi-programmed
	// co-run: entry k names the program scheduled on core k as
	// "workload.input" (or "workload/input"). A co-run machine attaches
	// the coherence directory and a 2-bank shared LLC; Prefetcher applies
	// to every core's private L2. Workload/Input must be left empty and
	// only the plain variant is accepted. The list is capped at the
	// coherence directory's core limit.
	Jobs []string `json:"jobs,omitempty"`
	// CrossCore attaches the cooperative cross-core LLC prefetcher to a
	// co-run (rejected without Jobs).
	CrossCore bool `json:"crosscore,omitempty"`
	// Detach opts the job out of abandonment cancellation: it runs to
	// completion even if every watching client disconnects.
	Detach bool `json:"detach,omitempty"`
	// LeaseSeconds, when > 0, puts the job under a renewable lease: if
	// the lease is not renewed (POST /v1/runs/{id}/lease) within the
	// window, the job is cancelled. This is the worker-mode contract a
	// cluster coordinator dispatches under — a coordinator that dies
	// mid-dispatch stops renewing and the worker reclaims the slot
	// instead of simulating for a client that will never read the
	// result. The lease does not participate in the content address, so
	// leased and unleased submissions of the same spec coalesce (a
	// coalesced resubmission renews an existing lease).
	LeaseSeconds int `json:"lease_seconds,omitempty"`
}

// ParseScale maps a wire scale name to apps.Scale.
func ParseScale(name string) (apps.Scale, bool) {
	switch name {
	case "test":
		return apps.ScaleTest, true
	case "bench":
		return apps.ScaleBench, true
	case "large":
		return apps.ScaleLarge, true
	}
	return 0, false
}

// ScaleNames lists the accepted wire scale names.
var ScaleNames = []string{"test", "bench", "large"}

// Normalize validates the spec and fills defaults (the exported form
// the cluster coordinator uses before dispatching). It is deliberately
// strict: everything a job would panic or spin on later is rejected at
// submission time with a client error.
func (sp *RunSpec) Normalize(defaultScale string) error {
	return sp.normalize(defaultScale)
}

// normalize validates the spec and fills defaults. It is deliberately
// strict: everything a job would panic or spin on later is rejected at
// submission time with a client error.
func (sp *RunSpec) normalize(defaultScale string) error {
	if sp.Scale == "" {
		sp.Scale = defaultScale
	}
	if sp.LeaseSeconds < 0 {
		return fmt.Errorf("lease_seconds must be >= 0 (got %d)", sp.LeaseSeconds)
	}
	if _, ok := ParseScale(sp.Scale); !ok {
		return fmt.Errorf("unknown scale %q (have %v)", sp.Scale, ScaleNames)
	}
	if sp.Prefetcher == "" {
		sp.Prefetcher = string(sim.PFNone)
	}
	if !slices.Contains(sim.AllPrefetchers, sim.PrefetcherKind(sp.Prefetcher)) {
		return fmt.Errorf("unknown prefetcher %q (have %v)", sp.Prefetcher, sim.AllPrefetchers)
	}
	if len(sp.Jobs) > 0 {
		if sp.Workload != "" || sp.Input != "" {
			return fmt.Errorf("jobs and workload/input are mutually exclusive")
		}
		if n := len(sp.Jobs); n > coherence.MaxCores {
			return fmt.Errorf("co-run lists %d jobs; the coherence directory tracks at most %d cores",
				n, coherence.MaxCores)
		}
		for k, raw := range sp.Jobs {
			j, err := multicore.ParseJob(raw)
			if err != nil {
				return fmt.Errorf("job %d: %w", k, err)
			}
			if !slices.Contains(apps.Workloads, j.Workload) {
				return fmt.Errorf("job %d: unknown workload %q (have %v)", k, j.Workload, apps.Workloads)
			}
			if !slices.Contains(apps.InputsFor(j.Workload), j.Input) {
				return fmt.Errorf("job %d: unknown input %q for workload %q (have %v)",
					k, j.Input, j.Workload, apps.InputsFor(j.Workload))
			}
			sp.Jobs[k] = j.String() // canonical "workload.input" form for the key
		}
		if v, ok := bench.NamedVariant(sp.Variant); !ok || v.Tag != "" {
			return fmt.Errorf("co-runs accept only the plain variant (got %q)", sp.Variant)
		}
		return nil
	}
	if sp.CrossCore {
		return fmt.Errorf("crosscore requires a co-run job list")
	}
	if !slices.Contains(apps.Workloads, sp.Workload) {
		return fmt.Errorf("unknown workload %q (have %v)", sp.Workload, apps.Workloads)
	}
	if !slices.Contains(apps.InputsFor(sp.Workload), sp.Input) {
		return fmt.Errorf("unknown input %q for workload %q (have %v)",
			sp.Input, sp.Workload, apps.InputsFor(sp.Workload))
	}
	if _, ok := bench.NamedVariant(sp.Variant); !ok {
		return fmt.Errorf("unknown variant %q (have %v, or winN)", sp.Variant, bench.VariantNames())
	}
	return nil
}

// key returns the memoisation key the spec resolves to: the bench run
// key for plain runs, a co-run key (job list + prefetcher + cross-core
// flag) for multi-programmed submissions.
func (sp RunSpec) key() string {
	if len(sp.Jobs) > 0 {
		x := ""
		if sp.CrossCore {
			x = "xcore"
		}
		return fmt.Sprintf("corun:%s/%s/%s", strings.Join(sp.Jobs, "+"), sp.Prefetcher, x)
	}
	v, _ := bench.NamedVariant(sp.Variant)
	return bench.RunKey(sp.Workload, sp.Input, sim.PrefetcherKind(sp.Prefetcher), v.Tag)
}

// RunJobID derives the content-addressed job ID of a run spec: a hash
// over the scale plus the bench memoisation key. Two submissions that
// would simulate the same thing therefore share one job (and one
// singleflight cache entry); detach does not participate, so a watcher
// of a detached job coalesces too.
func RunJobID(spec RunSpec) string {
	return jobID("r", spec.Scale+"|"+spec.key())
}

// ExperimentJobID derives the content-addressed job ID of a whole-table
// experiment job.
func ExperimentJobID(scale, experiment string) string {
	return jobID("x", scale+"|exp|"+experiment)
}

func jobID(prefix, key string) string {
	sum := sha256.Sum256([]byte("rnrd.v1|" + key))
	return prefix + hex.EncodeToString(sum[:])[:24]
}

// Job is one unit of serving work: a single simulation (KindRun) or a
// whole paper artefact (KindExperiment). Jobs are identified by a
// content-addressed ID, so the jobs map doubles as the daemon's
// content-addressed result cache.
type Job struct {
	ID         string
	Kind       string
	Spec       RunSpec // for KindRun (and Scale/Detach for experiments)
	Experiment string  // for KindExperiment

	ctx    context.Context
	cancel context.CancelFunc
	log    *EventLog
	done   chan struct{}

	mu          sync.Mutex
	state       JobState
	errMsg      string
	result      json.RawMessage
	created     time.Time
	started     time.Time
	finished    time.Time
	watchers    int
	lease       *time.Timer   // nil when the job is not leased
	leaseTTL    time.Duration // renewal window while leased
	onAbandoned func(*Job)    // set by the manager; called outside mu
}

func newJob(base context.Context, id, kind string, spec RunSpec, experiment string, timeout time.Duration) *Job {
	ctx, cancel := context.WithCancel(base)
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(base, timeout)
	}
	j := &Job{
		ID:         id,
		Kind:       kind,
		Spec:       spec,
		Experiment: experiment,
		ctx:        ctx,
		cancel:     cancel,
		log:        NewEventLog(),
		done:       make(chan struct{}),
		state:      StateQueued,
		created:    nowFn(),
	}
	if spec.LeaseSeconds > 0 {
		j.leaseTTL = time.Duration(spec.LeaseSeconds) * time.Second
		j.lease = time.AfterFunc(j.leaseTTL, func() {
			j.Cancel("lease expired")
		})
	}
	j.log.Publish(Event{Type: EventState, State: StateQueued})
	return j
}

// RenewLease resets a leased job's expiry window. It reports whether
// the job holds a live lease (an unleased or already-terminal job
// returns false). The renewed TTL is the one the job was created with.
func (j *Job) RenewLease() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lease == nil || j.state.Terminal() {
		return false
	}
	j.lease.Reset(j.leaseTTL)
	return true
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// setRunning flips queued → running (no-op if the job is already
// terminal, e.g. cancelled while queued).
func (j *Job) setRunning() bool {
	j.mu.Lock()
	if j.state != StateQueued {
		j.mu.Unlock()
		return false
	}
	j.state = StateRunning
	j.started = nowFn()
	j.mu.Unlock()
	j.log.Publish(Event{Type: EventState, State: StateRunning})
	return true
}

// finish moves the job to a terminal state, publishes the final event
// and releases the job's context resources. Idempotent: only the first
// call wins.
func (j *Job) finish(state JobState, result json.RawMessage, errMsg string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = result
	j.errMsg = errMsg
	j.finished = nowFn()
	if j.lease != nil {
		j.lease.Stop()
	}
	j.mu.Unlock()
	j.log.Publish(Event{Type: EventState, State: state, Error: errMsg})
	j.log.Close()
	j.cancel() // release the timeout timer / subtree
	close(j.done)
}

// Cancel requests cancellation: a queued job is finished immediately, a
// running job's context is cancelled (the simulator notices within one
// tick batch and the worker records the terminal state).
func (j *Job) Cancel(reason string) {
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	j.cancel()
	if queued {
		j.finish(StateCanceled, nil, reason)
	}
}

// addWatcher registers an interested client (an SSE stream or a
// blocking status poll).
func (j *Job) addWatcher() {
	j.mu.Lock()
	j.watchers++
	j.mu.Unlock()
}

// removeWatcher drops a client. When the last watcher of a
// non-detached, still-active job disconnects, the job is abandoned:
// its context is cancelled, which unwinds through bench.Suite into the
// simulator tick loop.
func (j *Job) removeWatcher() {
	j.mu.Lock()
	j.watchers--
	abandoned := j.watchers == 0 && !j.Spec.Detach && !j.state.Terminal()
	hook := j.onAbandoned
	j.mu.Unlock()
	if abandoned {
		if hook != nil {
			hook(j)
		}
		j.Cancel("abandoned: all watching clients disconnected")
	}
}

// JobView is the status/result JSON of a job, stamped with the export
// envelope.
type JobView struct {
	SchemaVersion string `json:"schema_version"`
	GeneratedAt   string `json:"generated_at"`

	ID         string   `json:"id"`
	Kind       string   `json:"kind"`
	State      JobState `json:"state"`
	Key        string   `json:"key,omitempty"` // bench memoisation key (runs)
	Spec       *RunSpec `json:"spec,omitempty"`
	Experiment string   `json:"experiment,omitempty"`
	Scale      string   `json:"scale,omitempty"`
	Error      string   `json:"error,omitempty"`

	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`
	Watchers int    `json:"watchers"`

	Result json.RawMessage `json:"result,omitempty"`
}

// View snapshots the job for serialisation. withResult=false omits the
// (potentially large) result payload, for listings.
func (j *Job) View(withResult bool) JobView {
	schema, generated := sim.Stamp()
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		SchemaVersion: schema,
		GeneratedAt:   generated,
		ID:            j.ID,
		Kind:          j.Kind,
		State:         j.state,
		Error:         j.errMsg,
		Created:       j.created.UTC().Format(time.RFC3339Nano),
		Watchers:      j.watchers,
	}
	switch j.Kind {
	case KindRun:
		spec := j.Spec
		v.Spec = &spec
		v.Key = spec.key()
		v.Scale = spec.Scale
	case KindExperiment:
		v.Experiment = j.Experiment
		v.Scale = j.Spec.Scale
	}
	if !j.started.IsZero() {
		v.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if withResult {
		v.Result = j.result
	}
	return v
}

// nowFn is stubbed in tests.
var nowFn = time.Now
