package serve

// store is the daemon's content-addressed job and result registry.
// Because job IDs are hashes of what the job computes (scale + bench
// memoisation key), the map *is* the result cache: a duplicate
// submission resolves to the live (or completed) job for that content,
// and its retained result JSON is served without re-simulation.
//
// Concurrency: store has no lock of its own — every method must be
// called with the owning Manager's mu held. That keeps
// lookup-then-enqueue atomic in the submission path without a second
// lock order to reason about.
type store struct {
	jobs  map[string]*Job
	order []string // insertion order, for stable listings
}

func newStore() *store {
	return &store{jobs: make(map[string]*Job)}
}

// get returns the job for a content address, if any.
func (st *store) get(id string) (*Job, bool) {
	j, ok := st.jobs[id]
	return j, ok
}

// put installs (or replaces) the job under its content address.
// Replacement happens when a previous generation of the same content
// failed or was cancelled: the old job object stays valid for clients
// still holding it, but the address now serves the fresh generation.
func (st *store) put(j *Job) {
	if _, existed := st.jobs[j.ID]; !existed {
		st.order = append(st.order, j.ID)
	}
	st.jobs[j.ID] = j
}

// list returns every current-generation job in insertion order.
func (st *store) list() []*Job {
	out := make([]*Job, 0, len(st.jobs))
	for _, id := range st.order {
		if j, ok := st.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// all returns the jobs without ordering guarantees (drain paths).
func (st *store) all() []*Job {
	out := make([]*Job, 0, len(st.jobs))
	for _, j := range st.jobs {
		out = append(out, j)
	}
	return out
}
