package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"rnrsim/internal/bench"
	"rnrsim/internal/sim"
	"rnrsim/internal/telemetry"
)

// Server is the HTTP front-end over a Manager. Routes (Go 1.22 pattern
// syntax):
//
//	GET  /healthz                 liveness (503 once draining)
//	GET  /metrics                 Prometheus text exposition
//	POST /v1/runs                 submit a run spec → job (202 / 200 coalesced)
//	GET  /v1/runs                 list jobs (runs and experiments)
//	GET  /v1/runs/{id}            job status + result (?wait=1 blocks)
//	DELETE /v1/runs/{id}          cancel
//	GET  /v1/runs/{id}/events     SSE progress stream
//	GET  /v1/experiments          experiment registry
//	POST /v1/experiments/{id}     submit a whole-table experiment job
type Server struct {
	m   *Manager
	mux *http.ServeMux
}

// NewServer wires the route table over a running manager.
func NewServer(m *Manager) *Server {
	s := &Server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	s.mux.HandleFunc("GET /v1/runs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/runs/{id}/lease", s.handleRenewLease)
	s.mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	s.mux.HandleFunc("POST /v1/experiments/{id}", s.handleSubmitExperiment)
	s.mux.HandleFunc("GET /v1/worker/status", s.handleWorkerStatus)
	return s
}

// ServeHTTP dispatches to the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	SchemaVersion string `json:"schema_version"`
	GeneratedAt   string `json:"generated_at"`
	Error         string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	schema, generated := sim.Stamp()
	writeJSON(w, status, errorBody{
		SchemaVersion: schema,
		GeneratedAt:   generated,
		Error:         fmt.Sprintf(format, args...),
	})
}

// writeSubmitError maps manager submission errors onto HTTP statuses:
// validation → 400, queue full → 429 + Retry-After, draining → 503.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		secs := int(s.m.RetryAfterJittered().Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.m.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteMetrics(w, 0, s.m.Registry(), telemetry.Default)
}

// handleSubmitRun submits a run. 202 for a freshly created job, 200 when
// the submission coalesced onto an existing one. ?wait=1 blocks until
// the job is terminal and returns the full result (the waiting client
// counts as a watcher: disconnecting mid-wait can abandon the job).
func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	if err := decodeBody(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j, fresh, err := s.m.SubmitRun(spec)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	s.respondSubmitted(w, r, j, fresh)
}

func (s *Server) handleSubmitExperiment(w http.ResponseWriter, r *http.Request) {
	var spec RunSpec
	if err := decodeBody(r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	j, fresh, err := s.m.SubmitExperiment(r.PathValue("id"), spec)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	s.respondSubmitted(w, r, j, fresh)
}

func (s *Server) respondSubmitted(w http.ResponseWriter, r *http.Request, j *Job, fresh bool) {
	if wantWait(r) {
		if !s.waitForJob(w, r, j) {
			return
		}
		writeJSON(w, http.StatusOK, j.View(true))
		return
	}
	status := http.StatusOK
	if fresh {
		status = http.StatusAccepted
	}
	writeJSON(w, status, j.View(false))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.m.Jobs()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View(false)
	}
	schema, generated := sim.Stamp()
	writeJSON(w, http.StatusOK, struct {
		SchemaVersion string    `json:"schema_version"`
		GeneratedAt   string    `json:"generated_at"`
		Jobs          []JobView `json:"jobs"`
	}{schema, generated, views})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.m.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if wantWait(r) && !j.State().Terminal() {
		if !s.waitForJob(w, r, j) {
			return
		}
	}
	writeJSON(w, http.StatusOK, j.View(true))
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.m.Cancel(id); err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	j, err := s.m.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, j.View(false))
}

// waitForJob blocks until the job is terminal or the client goes away.
// The client counts as a watcher for the duration, so a disconnect can
// abandon (and thereby cancel) the job. Returns false when the client
// disconnected (nothing can be written).
func (s *Server) waitForJob(w http.ResponseWriter, r *http.Request, j *Job) bool {
	release := s.m.Watch(j)
	defer release()
	select {
	case <-j.Done():
		return true
	case <-r.Context().Done():
		return false
	}
}

// handleEvents is the SSE stream: retained history replays first (so a
// late subscriber still sees queued/running), then live events follow
// until the job is terminal. A reconnecting client that presents
// Last-Event-ID (or ?last_event_id=N) replays only the events it
// missed. The subscriber is a watcher: when the last one disconnects
// from a non-detached active job, the job is cancelled.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.m.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	release := s.m.Watch(j)
	defer release()
	StreamSSE(w, r, j.log)
}

// handleRenewLease resets a leased job's expiry window. 404 for
// unknown addresses, 409 when the job exists but holds no live lease
// (never leased, or already terminal).
func (s *Server) handleRenewLease(w http.ResponseWriter, r *http.Request) {
	renewed, err := s.m.RenewLease(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if !renewed {
		writeError(w, http.StatusConflict, "job holds no live lease")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"renewed":true}`)
}

// handleWorkerStatus is the cluster heartbeat responder: one cheap GET
// a coordinator polls to judge this worker's health and load.
func (s *Server) handleWorkerStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.WorkerStatus())
}

// ExperimentInfo is one row of the experiment registry listing.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Runs  int    `json:"runs"` // planned simulations at the default scale
}

func (s *Server) handleListExperiments(w http.ResponseWriter, r *http.Request) {
	suite := s.m.suite(s.m.Options().DefaultScale)
	infos := make([]ExperimentInfo, 0, len(bench.ExperimentIDs))
	for _, id := range bench.ExperimentIDs {
		infos = append(infos, ExperimentInfo{
			ID:    id,
			Title: bench.ExperimentTitle(id),
			Runs:  len(suite.Plan(id)),
		})
	}
	schema, generated := sim.Stamp()
	writeJSON(w, http.StatusOK, struct {
		SchemaVersion string           `json:"schema_version"`
		GeneratedAt   string           `json:"generated_at"`
		DefaultScale  string           `json:"default_scale"`
		Scales        []string         `json:"scales"`
		Experiments   []ExperimentInfo `json:"experiments"`
	}{schema, generated, s.m.Options().DefaultScale, ScaleNames, infos})
}

// decodeBody decodes a JSON request body strictly (unknown fields are
// client errors). An empty body decodes to the zero value.
func decodeBody(r *http.Request, v any) error {
	if r.Body == nil || r.ContentLength == 0 {
		return nil
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func wantWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "1", "true", "yes":
		return true
	}
	return false
}
